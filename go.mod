module warper

go 1.22
