# Build/test entry points. `make check` is the full tier-1 flow the CI
# driver runs; `make race` exercises the concurrency-sensitive packages
# (HTTP serving, metrics registry) under the race detector.

GO ?= go

.PHONY: build test race vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The serving lock split and the atomic metrics registry are the two places
# new races would appear; keep them permanently under -race.
race:
	$(GO) test -race ./internal/serve/... ./internal/obs/...

vet:
	$(GO) vet ./...

check: build vet test race
