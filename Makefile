# Build/test entry points. `make check` is the full tier-1 flow the CI
# driver runs; `make race` sweeps the whole module under the race detector
# (-short skips training-heavy tests so the pass stays fast); `make lint`
# runs warperlint, the stdlib-only analyzer suite in internal/lint.

GO ?= go

.PHONY: build test race vet lint chaos check bench bench-serve bench-overload bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Module-wide race pass. Tests that spend their time in model training
# guard themselves with testing.Short(), so -short keeps this about the
# concurrency, not the math.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# warperlint enforces determinism, panic-safety, lock hygiene, error
# handling, and the module-wide call-graph contracts: hot-path
# allocation-freedom, atomic-field discipline, goroutine exits, and lock
# ordering (see internal/lint, DESIGN.md §13). Exits non-zero on any
# diagnostic.
lint:
	$(GO) run ./cmd/warperlint ./...

# Fault-injected soak: the WARPER_CHAOS gate enables the opt-in chaos tests
# (heavy injected errors/hangs under concurrent traffic, plus the overload
# soak: replica starvation + slow swaps + open breaker) on top of the
# always-on fault-tolerance tests, under the race detector. The soak writes
# its /debug/events adaptation journal to $(EVENTS_OUT); everything under
# artifacts/ is ignored by git and uploaded by CI as a workflow artifact.
EVENTS_OUT ?= artifacts/EVENTS_chaos.json
chaos:
	@mkdir -p $(dir $(CURDIR)/$(EVENTS_OUT))
	WARPER_CHAOS=1 WARPER_EVENTS_OUT=$(CURDIR)/$(EVENTS_OUT) $(GO) test -race -count=1 -run 'Chaos|Faulty|Degraded|Overload' ./internal/serve ./internal/resilience ./internal/warper

# Tier-2 benchmarks. bench: compute-core micro-benchmarks (nn/gbt/kernel +
# one full adaptation period) → BENCH_PR4.json, then the cross-PR trajectory
# table over every BENCH_*.json in the repo. bench-serve: concurrent
# /estimate serving throughput (single-lock baseline vs replica pool vs
# coalescer vs tracer envelope, byte-identity checked) → BENCH_PR5.json plus
# an adaptation-journal artifact, then the estimate-cache benchmark —
# Zipf(1.1) template workload, cached vs uncached, a 1-CPU pass and a
# GOMAXPROCS=2 pass, byte-identity held across a mid-run model swap →
# BENCH_PR9.json — and finally the binary-protocol benchmark: the columnar
# /estimate/batch endpoint vs scalar JSON over HTTP on the uncached path,
# with a zero-alloc batch assert and a GOMAXPROCS>=4 multi-core pass →
# BENCH_PR10.json. bench-smoke runs the quick variant of every suite: it
# proves the harnesses run, not the numbers.
bench:
	./scripts/bench.sh micro -out BENCH_PR4.json
	./scripts/bench_trajectory.sh

bench-serve:
	@mkdir -p $(CURDIR)/artifacts
	WARPER_EVENTS_OUT=$(CURDIR)/artifacts/EVENTS_servebench.json ./scripts/bench.sh serve -out BENCH_PR5.json
	./scripts/bench.sh zipf -out BENCH_PR9.json
	./scripts/bench.sh wire -out BENCH_PR10.json
	./scripts/bench_trajectory.sh

# Overload acceptance run: open-loop load at 2x measured saturation through
# the admission controller, health machine and fallback ladder. Fails on
# unbounded queue growth, late sheds, or post-recovery divergence; records
# shed-rate and degraded-vs-full GMQ in BENCH_PR8.json.
bench-overload:
	./scripts/bench.sh overload -out BENCH_PR8.json
	./scripts/bench_trajectory.sh

bench-smoke:
	./scripts/bench.sh micro -quick -out /tmp/bench-smoke.json
	./scripts/bench.sh serve -quick -out /tmp/bench-serve-smoke.json
	./scripts/bench.sh overload -quick -out /tmp/bench-overload-smoke.json
	./scripts/bench.sh zipf -quick -out /tmp/bench-zipf-smoke.json
	./scripts/bench.sh wire -quick -out /tmp/bench-wire-smoke.json
	./scripts/bench_trajectory.sh /tmp/bench-smoke.json /tmp/bench-serve-smoke.json /tmp/bench-zipf-smoke.json /tmp/bench-wire-smoke.json

check: build vet lint test race chaos
