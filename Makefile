# Build/test entry points. `make check` is the full tier-1 flow the CI
# driver runs; `make race` sweeps the whole module under the race detector
# (-short skips training-heavy tests so the pass stays fast); `make lint`
# runs warperlint, the stdlib-only analyzer suite in internal/lint.

GO ?= go

.PHONY: build test race vet lint chaos check bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Module-wide race pass. Tests that spend their time in model training
# guard themselves with testing.Short(), so -short keeps this about the
# concurrency, not the math.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# warperlint enforces determinism, panic-safety, lock hygiene and error
# handling (see internal/lint). Exits non-zero on any diagnostic.
lint:
	$(GO) run ./cmd/warperlint ./...

# Fault-injected soak: the WARPER_CHAOS gate enables the opt-in chaos tests
# (heavy injected errors/hangs under concurrent traffic) on top of the
# always-on fault-tolerance tests, under the race detector.
chaos:
	WARPER_CHAOS=1 $(GO) test -race -count=1 -run 'Chaos|Faulty|Degraded' ./internal/serve ./internal/resilience ./internal/warper

# Tier-2 micro-benchmarks for the compute core (nn/gbt/kernel + one full
# adaptation period), recorded to BENCH_PR4.json. bench-smoke is the
# single-iteration CI variant: it proves the harness runs, not the numbers.
bench:
	./scripts/bench.sh -out BENCH_PR4.json

bench-smoke:
	./scripts/bench.sh -quick -out /tmp/bench-smoke.json

check: build vet lint test race chaos
