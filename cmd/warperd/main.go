// Command warperd serves a Warper-adapted cardinality estimator over HTTP.
//
// It loads (or synthesizes) a table, trains a CE model on an initial
// workload, wraps it in a Warper adapter, and exposes:
//
//	POST /estimate     {"lows": [...], "highs": [...]}            → {"cardinality": N}
//	POST /estimate/batch        columnar binary batch frame (with -binary)
//	POST /estimate/batch/stream length-prefixed binary frames (with -binary)
//	POST /feedback     {"lows": [...], "highs": [...], "cardinality": N}
//	POST /period       run one adaptation period over buffered feedback
//	GET  /status       model, pool, thresholds, component costs
//	GET  /statusz      human-readable flight-recorder page (HTML)
//	GET  /metrics      Prometheus text exposition
//	GET  /debug/vars   JSON metric dump
//	GET  /debug/traces Chrome trace-event JSON of sampled requests
//	GET  /debug/events adaptation event journal (JSON)
//	GET  /debug/pprof/ CPU/heap profiles (only with -pprof)
//	GET  /healthz
//
// Logs are structured (log/slog): one summary line per adaptation period at
// info level, per-request lines at debug level (-log-level debug).
//
// Usage:
//
//	warperd -addr :8080 -dataset prsa                 # synthetic table
//	warperd -addr :8080 -csv mydata.csv -model lm-mlp # your own CSV
//	warperd -addr :8080 -pprof -log-level debug       # full observability
//	warperd -replicas 8 -batch-window 200us           # concurrent serving tuning
//	warperd -faults 0.2 -fault-hang 0.05 -annotate-timeout 500ms  # chaos mode
//	warperd -trace-sample 100 -drift-alarm-gmq 4      # drift flight recorder
//	warperd -estimate-timeout 50ms -shed-queue 256    # overload-safe serving
//	warperd -cache-entries 8192 -cache-shards 16      # estimate-cache tuning (-estimate-cache=false to disable)
//	warperd -binary                                   # columnar binary batch endpoints
package main

import (
	"context"
	"flag"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"time"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/resilience"
	"warper/internal/serve"
	"warper/internal/warper"
	"warper/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		ds        = flag.String("dataset", "prsa", "synthetic dataset: higgs, prsa or poker")
		csvPath   = flag.String("csv", "", "load the table from a CSV file instead")
		rows      = flag.Int("rows", 6000, "synthetic table rows")
		model     = flag.String("model", "lm-mlp", "CE model: lm-mlp, lm-gbt, lm-ply, lm-rbf")
		trainSize = flag.Int("train", 600, "initial training workload size")
		trainWkld = flag.String("workload", "w1", "initial workload spec (w1..w5, mixtures like w12)")
		seed      = flag.Int64("seed", 1, "random seed")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		pprofOn   = flag.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")

		// Concurrent serving. Replicas are deep model clones checked out per
		// estimate; batching coalesces queued estimates into one forward pass.
		replicas    = flag.Int("replicas", 0, "serving replicas (0 = GOMAXPROCS)")
		batchWindow = flag.Duration("batch-window", 0, "estimate micro-batching window (0 = off)")
		batchMax    = flag.Int("batch-max", 0, "max estimates per coalesced batch (0 = default 64)")

		// Overload safety. The deadline budgets how long an estimate may
		// queue for a replica before the fallback ladder (or a 429) answers;
		// the shed queue bounds admission; the health machine rides on top.
		estTimeout = flag.Duration("estimate-timeout", 0, "per-request /estimate deadline budget, overridable via X-Warper-Deadline-Ms (0 = wait forever)")
		shedQueue  = flag.Int("shed-queue", 0, "max estimates queued for a replica before load shedding (0 = max(64, 16*replicas))")
		fallback   = flag.Bool("fallback", true, "serve budget misses and degraded mode from the histogram fallback ladder instead of shedding")

		// Estimate cache. Entries are stamped with the serving generation, so
		// a model swap invalidates the whole cache with one atomic bump;
		// degraded/shed answers are never cached.
		// Binary protocol: the zero-copy columnar batch endpoints.
		binaryOn = flag.Bool("binary", false, "mount the columnar binary batch endpoints /estimate/batch and /estimate/batch/stream")

		estCache     = flag.Bool("estimate-cache", true, "answer repeated predicates from the generation-stamped estimate cache")
		cacheShards  = flag.Int("cache-shards", 0, "estimate-cache shards, rounded up to a power of two (0 = 8)")
		cacheEntries = flag.Int("cache-entries", 0, "estimate-cache capacity in entries across all shards (0 = 4096)")
		cacheFlush   = flag.Bool("cache-flush-on-alarm", true, "flush the estimate cache when the drift watch raises its alarm")

		// Fault tolerance. The resilience wrapper always guards period-time
		// annotation; the -faults* flags additionally inject deterministic
		// faults underneath it — the chaos-testing mode used to demo the
		// degradation ladder end to end.
		// Drift flight recorder. Tracing is off by default so /estimate stays
		// allocation-free; the drift watch always runs (it rides the feedback
		// path, not the hot path).
		traceSample = flag.Int("trace-sample", 0, "trace 1 in N requests (0 = tracing off)")
		traceBuf    = flag.Int("trace-buf", 0, "finished traces kept for /debug/traces (0 = default 64)")
		driftWindow = flag.Duration("drift-window", 0, "rolling q-error drift window (0 = default 5m)")
		driftAlarm  = flag.Float64("drift-alarm-gmq", 4, "windowed GMQ that raises the drift alarm (0 = off)")

		faultErr      = flag.Float64("faults", 0, "injected annotation error rate in [0,1] (testing)")
		faultHang     = flag.Float64("fault-hang", 0, "injected annotation hang rate in [0,1] (testing)")
		faultLatency  = flag.Duration("fault-latency", 0, "injected annotation latency (testing)")
		annTimeout    = flag.Duration("annotate-timeout", 2*time.Second, "per-attempt annotation deadline")
		annRetries    = flag.Int("annotate-retries", 3, "annotation attempts per call, including the first")
		periodTimeout = flag.Duration("period-timeout", 0, "deadline for one POST /period adaptation (0 = none)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	rng := rand.New(rand.NewSource(*seed))

	var tbl *dataset.Table
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			logger.Error("open csv", "path", *csvPath, "err", err)
			os.Exit(1)
		}
		tbl, err = dataset.FromCSV("csv", f, dataset.CSVOptions{HasHeader: true})
		if cerr := f.Close(); cerr != nil {
			logger.Warn("close csv", "path", *csvPath, "err", cerr)
		}
		if err != nil {
			logger.Error("parse csv", "path", *csvPath, "err", err)
			os.Exit(1)
		}
	} else {
		switch *ds {
		case "higgs":
			tbl = dataset.Higgs(*rows, rng)
		case "poker":
			tbl = dataset.Poker(*rows, rng)
		case "prsa":
			tbl = dataset.PRSA(*rows, rng)
		default:
			logger.Error("unknown dataset", "dataset", *ds)
			os.Exit(1)
		}
	}
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	logger.Info("table loaded", "name", tbl.Name, "rows", tbl.NumRows(), "cols", tbl.NumCols())

	var m ce.Estimator
	switch *model {
	case "lm-mlp":
		m = ce.NewLM(ce.LMMLP, sch, *seed)
	case "lm-gbt":
		m = ce.NewLM(ce.LMGBT, sch, *seed)
	case "lm-ply":
		m = ce.NewLM(ce.LMPly, sch, *seed)
	case "lm-rbf":
		m = ce.NewLM(ce.LMRBF, sch, *seed)
	default:
		logger.Error("unknown model", "model", *model)
		os.Exit(1)
	}
	g := workload.Parse(*trainWkld, tbl, sch, workload.Options{MaxConstrained: 2})
	train, err := ann.AnnotateAll(context.Background(), workload.Generate(g, *trainSize, rng))
	if err != nil {
		logger.Error("train workload annotation failed", "err", err)
		os.Exit(1)
	}
	if err := m.Train(train); err != nil {
		logger.Error("train failed", "err", err)
		os.Exit(1)
	}
	logger.Info("model trained",
		"model", m.Name(), "examples", len(train), "workload", g.Name(),
		"gmq_in_dist", ce.EvalGMQ(m, train))

	adapter, err := warper.New(warper.DefaultConfig(), m, sch, ann, train)
	if err != nil {
		logger.Error("build adapter failed", "err", err)
		os.Exit(1)
	}
	srv := serve.NewWithOptions(adapter, sch, serve.Options{
		Logger:        logger,
		EnablePprof:   *pprofOn,
		PeriodTimeout: *periodTimeout,
		Replicas:      *replicas,
		BatchWindow:   *batchWindow,
		BatchMax:      *batchMax,
		TraceSample:   *traceSample,
		TraceBuf:      *traceBuf,
		DriftWindow:   *driftWindow,
		DriftAlarmGMQ: *driftAlarm,

		EstimateTimeout: *estTimeout,
		ShedQueue:       *shedQueue,
		NoFallback:      !*fallback,

		EstimateCache:     *estCache,
		CacheShards:       *cacheShards,
		CacheEntries:      *cacheEntries,
		CacheFlushOnAlarm: *cacheFlush,

		BinaryProtocol: *binaryOn,
	})

	// Route period-time annotation through the resilience stack: optional
	// deterministic fault injection (-faults*) under retry/backoff, per-
	// attempt timeouts and a circuit breaker, reporting into the server's
	// /metrics registry and charging retries to the adapter's cost ledger.
	var src annotator.Source = ann
	if *faultErr > 0 || *faultHang > 0 || *faultLatency > 0 {
		src = resilience.NewFaulty(src, resilience.FaultPlan{
			ErrRate:  *faultErr,
			HangRate: *faultHang,
			Latency:  *faultLatency,
			Seed:     *seed,
		})
		logger.Warn("fault injection enabled",
			"err_rate", *faultErr, "hang_rate", *faultHang, "latency", *faultLatency)
	}
	adapter.SetSource(resilience.Wrap(src, resilience.Policy{
		MaxAttempts:    *annRetries,
		AttemptTimeout: *annTimeout,
		Seed:           *seed,
	}, srv.Metrics().ResilienceEvents()).WithCostLedger(adapter.Ledger))

	logger.Info("serving", "addr", *addr, "pprof", *pprofOn)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		logger.Error("listen", "err", err)
		os.Exit(1)
	}
}
