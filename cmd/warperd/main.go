// Command warperd serves a Warper-adapted cardinality estimator over HTTP.
//
// It loads (or synthesizes) a table, trains a CE model on an initial
// workload, wraps it in a Warper adapter, and exposes:
//
//	POST /estimate  {"lows": [...], "highs": [...]}            → {"cardinality": N}
//	POST /feedback  {"lows": [...], "highs": [...], "cardinality": N}
//	POST /period    run one adaptation period over buffered feedback
//	GET  /status    model, pool, thresholds, component costs
//	GET  /healthz
//
// Usage:
//
//	warperd -addr :8080 -dataset prsa                 # synthetic table
//	warperd -addr :8080 -csv mydata.csv -model lm-mlp # your own CSV
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/serve"
	"warper/internal/warper"
	"warper/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		ds        = flag.String("dataset", "prsa", "synthetic dataset: higgs, prsa or poker")
		csvPath   = flag.String("csv", "", "load the table from a CSV file instead")
		rows      = flag.Int("rows", 6000, "synthetic table rows")
		model     = flag.String("model", "lm-mlp", "CE model: lm-mlp, lm-gbt, lm-ply, lm-rbf")
		trainSize = flag.Int("train", 600, "initial training workload size")
		trainWkld = flag.String("workload", "w1", "initial workload spec (w1..w5, mixtures like w12)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	var tbl *dataset.Table
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			log.Fatalf("open csv: %v", err)
		}
		tbl, err = dataset.FromCSV("csv", f, dataset.CSVOptions{HasHeader: true})
		f.Close()
		if err != nil {
			log.Fatalf("parse csv: %v", err)
		}
	} else {
		switch *ds {
		case "higgs":
			tbl = dataset.Higgs(*rows, rng)
		case "poker":
			tbl = dataset.Poker(*rows, rng)
		case "prsa":
			tbl = dataset.PRSA(*rows, rng)
		default:
			log.Fatalf("unknown dataset %q", *ds)
		}
	}
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	log.Printf("table %q: %d rows × %d cols", tbl.Name, tbl.NumRows(), tbl.NumCols())

	var m ce.Estimator
	switch *model {
	case "lm-mlp":
		m = ce.NewLM(ce.LMMLP, sch, *seed)
	case "lm-gbt":
		m = ce.NewLM(ce.LMGBT, sch, *seed)
	case "lm-ply":
		m = ce.NewLM(ce.LMPly, sch, *seed)
	case "lm-rbf":
		m = ce.NewLM(ce.LMRBF, sch, *seed)
	default:
		log.Fatalf("unknown model %q", *model)
	}
	g := workload.Parse(*trainWkld, tbl, sch, workload.Options{MaxConstrained: 2})
	train := ann.AnnotateAll(workload.Generate(g, *trainSize, rng))
	m.Train(train)
	log.Printf("trained %s on %d labeled %s queries (GMQ %.2f in-distribution)",
		m.Name(), len(train), g.Name(), ce.EvalGMQ(m, train))

	adapter := warper.New(warper.DefaultConfig(), m, sch, ann, train)
	srv := serve.New(adapter, sch)
	log.Printf("serving on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
