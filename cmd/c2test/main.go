// Command c2test is a diagnostic for the c2 comparison: it runs RunC2 on one
// configuration and prints the method curves and speedups, for tuning the
// experiment scale.
package main

import (
	"flag"
	"fmt"
	"strings"

	"warper/internal/experiments"
)

func main() {
	var (
		ds      = flag.String("dataset", "prsa", "dataset")
		trainW  = flag.String("train", "w12", "train spec")
		newW    = flag.String("new", "w345", "new spec")
		model   = flag.String("model", "lm-mlp", "model")
		period  = flag.Int("period", 40, "arrivals per period")
		stream  = flag.Int("stream", 400, "stream size")
		runs    = flag.Int("runs", 1, "runs")
		seed    = flag.Int64("seed", 1, "seed")
		methods = flag.String("methods", "FT,Warper", "methods")
		genfrac = flag.Float64("genfrac", 0.1, "n_g fraction")
	)
	flag.Parse()
	sc := experiments.DefaultScale()
	sc.Warper.GenFraction = *genfrac
	sc.PeriodSize = *period
	sc.StreamSize = *stream
	sc.Runs = *runs
	res := experiments.RunC2(*ds, *trainW, *newW, *model, strings.Split(*methods, ","), sc, *seed)
	fmt.Println(res.CurveTable("c2test", fmt.Sprintf("%s %s→%s %s", *ds, *trainW, *newW, *model)).String())
	for _, m := range res.MethodOrder {
		if m == "FT" || m == "RT" {
			continue
		}
		d5, d8, d1 := res.Speedups(m)
		fmt.Printf("%s: Δ.5=%.1f Δ.8=%.1f Δ1=%.1f (δm=%.1f δjs=%.2f)\n", m, d5, d8, d1, res.DeltaM, res.DeltaJS)
	}
}
