// Command drifttest is a small diagnostic for drift severity: it reports the
// post-drift GMQ (α), the converged GMQ (β) and δ_m for combinations of
// datasets, workload pairs and predicate widths, helping tune the
// experiment scale so drifts are as pronounced as in the paper.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/workload"
)

func main() {
	var (
		ds      = flag.String("dataset", "prsa", "dataset")
		trainW  = flag.String("train", "w12", "training workload spec")
		newW    = flag.String("new", "w345", "new workload spec")
		rows    = flag.Int("rows", 6000, "table rows")
		nTrain  = flag.Int("ntrain", 600, "training queries")
		nTest   = flag.Int("ntest", 200, "test queries")
		maxCols = flag.Int("maxcols", 2, "max constrained columns")
		seed    = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	var tbl *dataset.Table
	switch *ds {
	case "higgs":
		tbl = dataset.Higgs(*rows, rng)
	case "poker":
		tbl = dataset.Poker(*rows, rng)
	default:
		tbl = dataset.PRSA(*rows, rng)
	}
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	opts := workload.Options{MinConstrained: 1, MaxConstrained: *maxCols}
	gT := workload.Parse(*trainW, tbl, sch, opts)
	gN := workload.Parse(*newW, tbl, sch, opts)

	ctx := context.Background()
	train := must1(ann.AnnotateAll(ctx, workload.Generate(gT, *nTrain, rng)))
	stream := must1(ann.AnnotateAll(ctx, workload.Generate(gN, *nTrain, rng)))
	testNew := must1(ann.AnnotateAll(ctx, workload.Generate(gN, *nTest, rng)))
	testTrain := must1(ann.AnnotateAll(ctx, workload.Generate(gT, *nTest, rng)))

	m := ce.NewLM(ce.LMMLP, sch, *seed+1)
	if err := m.Train(train); err != nil {
		log.Fatal(err)
	}
	oracle := ce.NewLM(ce.LMMLP, sch, *seed+2)
	if err := oracle.Train(stream); err != nil {
		log.Fatal(err)
	}

	inDist := ce.EvalGMQ(m, testTrain)
	alpha := ce.EvalGMQ(m, testNew)
	beta := ce.EvalGMQ(oracle, testNew)
	fmt.Printf("dataset=%s %s→%s rows=%d ntrain=%d maxcols=%d\n",
		*ds, *trainW, *newW, *rows, *nTrain, *maxCols)
	fmt.Printf("  in-dist GMQ=%.2f  post-drift α=%.2f  oracle β=%.2f  δm=%.2f\n",
		inDist, alpha, beta, alpha-beta)
}

func must1[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
