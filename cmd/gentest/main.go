// Command gentest diagnoses generated-query quality: cardinality
// distribution of GAN-generated predicates vs real new-workload predicates.
package main

import (
	"fmt"
	"log"
	"sort"

	"warper/internal/adapt"
	"warper/internal/experiments"
	"warper/internal/pool"
	"warper/internal/warper"
)

func main() {
	sc := experiments.DefaultScale()
	env := experiments.NewEnv("prsa", "w12", "w345", "lm-mlp", sc, 1)
	cfg := sc.Warper
	cfg.Seed = 2
	cfg.Gamma = sc.StreamSize
	cfg.GenFraction = 1.0
	m := env.Model.Clone()
	ad, err := warper.New(cfg, m, env.Sch, env.Ann, env.Train)
	if err != nil {
		log.Fatal(err)
	}
	periods := adapt.SplitPeriods(adapt.ArrivalsOf(env.Stream, true), sc.PeriodSize)
	for _, p := range periods {
		if _, err := ad.Period(p); err != nil {
			log.Fatal(err)
		}
	}
	var genCards, newCards []float64
	for _, e := range ad.Pool.Entries {
		if e.GT < 0 {
			continue
		}
		switch e.Source {
		case pool.SrcGen:
			genCards = append(genCards, e.GT)
		case pool.SrcNew:
			newCards = append(newCards, e.GT)
		}
	}
	sort.Float64s(genCards)
	sort.Float64s(newCards)
	q := func(xs []float64, p float64) float64 {
		if len(xs) == 0 {
			return -1
		}
		return xs[int(p*float64(len(xs)-1))]
	}
	rep := func(name string, xs []float64) {
		zeros := 0
		for _, x := range xs {
			if x < 10 {
				zeros++
			}
		}
		fmt.Printf("%s: n=%d card<theta=%d (%.0f%%)  p10=%.0f p50=%.0f p90=%.0f\n",
			name, len(xs), zeros, 100*float64(zeros)/float64(len(xs)),
			q(xs, 0.1), q(xs, 0.5), q(xs, 0.9))
	}
	rep("gen", genCards)
	rep("new", newCards)
}
