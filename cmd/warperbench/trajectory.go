package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// The -trajectory mode merges the BENCH_*.json reports the repo accumulates
// across PRs into one table, so `make bench` shows how the numbers moved
// over time instead of one isolated snapshot. When a benchmark appears in
// several reports the row carries its relative move against the previous
// report — the performance trajectory the mode is named for.

// loadedReport is one parsed benchmark report plus where it came from.
type loadedReport struct {
	path string
	rep  microReport
}

// runTrajectory prints the merged table for the given report paths; with no
// paths it globs BENCH_*.json in the working directory.
func runTrajectory(paths []string) error {
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			return err
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("trajectory: no BENCH_*.json reports found")
	}
	sort.Strings(paths)

	var reports []loadedReport
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		var rep microReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("%s: %v", p, err)
		}
		reports = append(reports, loadedReport{path: filepath.Base(p), rep: rep})
	}

	fmt.Printf("bench trajectory: %d reports\n\n", len(reports))
	fmt.Printf("%-30s %-18s %12s %10s %9s\n", "benchmark", "report", "ns/op", "allocs/op", "vs prev")

	// Benchmarks in first-seen order; each name's rows in report order, so
	// repeated names read as a time series.
	var names []string
	seen := map[string]bool{}
	for _, lr := range reports {
		for _, b := range lr.rep.Benchmarks {
			if !seen[b.Name] {
				seen[b.Name] = true
				names = append(names, b.Name)
			}
		}
	}
	for _, name := range names {
		prev := 0.0
		for _, lr := range reports {
			for _, b := range lr.rep.Benchmarks {
				if b.Name != name {
					continue
				}
				move := ""
				if prev > 0 {
					move = fmt.Sprintf("%+.1f%%", 100*(b.NsPerOp-prev)/prev)
				}
				fmt.Printf("%-30s %-18s %12.0f %10d %9s\n", name, lr.path, b.NsPerOp, b.AllocsPerOp, move)
				prev = b.NsPerOp
			}
		}
	}

	hasRatios := false
	for _, lr := range reports {
		for _, r := range lr.rep.Ratios {
			if !hasRatios {
				hasRatios = true
				fmt.Printf("\n%-30s %-18s %8s\n", "ratio", "report", "speedup")
			}
			fmt.Printf("%-30s %-18s %7.2fx\n", r.Name, lr.path, r.Speedup)
		}
	}

	fmt.Println()
	for _, lr := range reports {
		when := time.Unix(lr.rep.GeneratedUnix, 0).UTC().Format("2006-01-02")
		mode := "full"
		if lr.rep.Quick {
			mode = "quick"
		}
		fmt.Printf("%s: %s, %s, %s/%s, %d cpu\n",
			lr.path, when, mode, lr.rep.GOOS, lr.rep.GOARCH, lr.rep.NumCPU)
	}
	return nil
}
