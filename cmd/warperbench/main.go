// Command warperbench regenerates the tables and figures of the Warper
// paper's evaluation section. Each experiment prints the same rows/series
// the paper reports, computed over the synthetic substitutes documented in
// DESIGN.md.
//
// Usage:
//
//	warperbench -list
//	warperbench -exp table7a
//	warperbench -exp all -quick
//	warperbench -exp fig6 -runs 5 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"warper/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to run, or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		quick  = flag.Bool("quick", false, "use the shrunken quick scale")
		runs   = flag.Int("runs", 0, "override repetitions per configuration")
		seed   = flag.Int64("seed", 1, "base random seed")
		micro  = flag.Bool("micro", false, "run the compute-core micro-benchmarks and write JSON")
		sbench = flag.Bool("servebench", false, "run the concurrent /estimate serving benchmark and write JSON")
		over   = flag.Bool("overload", false, "with -servebench: drive open-loop load past saturation and record shed/fallback behavior")
		zipf   = flag.Float64("zipf", 0, "with -servebench: run the estimate-cache benchmark under a Zipf-skewed template workload with this exponent (> 1)")
		binary = flag.Bool("binary", false, "with -servebench: run the columnar binary batch protocol benchmark against scalar JSON")
		traj   = flag.Bool("trajectory", false, "merge BENCH_*.json reports (or the given paths) into one trajectory table")
		out    = flag.String("out", "", "output path (default BENCH_PR4.json for -micro, BENCH_PR5.json for -servebench, BENCH_PR8.json for -overload, BENCH_PR9.json for -zipf, BENCH_PR10.json for -binary)")
	)
	flag.Parse()

	if *traj {
		if err := runTrajectory(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "trajectory:", err)
			os.Exit(1)
		}
		return
	}

	if *micro {
		path := *out
		if path == "" {
			path = "BENCH_PR4.json"
		}
		if err := runMicro(path, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "micro:", err)
			os.Exit(1)
		}
		return
	}
	if *sbench {
		path := *out
		if *binary {
			if path == "" {
				path = "BENCH_PR10.json"
			}
			if err := runWireBench(path, *quick); err != nil {
				fmt.Fprintln(os.Stderr, "wirebench:", err)
				os.Exit(1)
			}
			return
		}
		if *zipf > 0 {
			if path == "" {
				path = "BENCH_PR9.json"
			}
			if err := runZipfBench(path, *quick, *zipf); err != nil {
				fmt.Fprintln(os.Stderr, "zipf:", err)
				os.Exit(1)
			}
			return
		}
		if *over {
			if path == "" {
				path = "BENCH_PR8.json"
			}
			if err := runOverloadBench(path, *quick); err != nil {
				fmt.Fprintln(os.Stderr, "overload:", err)
				os.Exit(1)
			}
			return
		}
		if path == "" {
			path = "BENCH_PR5.json"
		}
		if err := runServeBench(path, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "servebench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: warperbench -exp <id>|all [-quick] [-runs N] [-seed S]")
		fmt.Fprintln(os.Stderr, "known experiments:", strings.Join(experiments.Names(), " "))
		os.Exit(2)
	}

	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	if *runs > 0 {
		sc.Runs = *runs
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.Names()
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		run, err := experiments.Lookup(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		for _, t := range run(sc, *seed) {
			fmt.Println(t.String())
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
