package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/gbt"
	"warper/internal/kernel"
	"warper/internal/nn"
	"warper/internal/query"
	"warper/internal/warper"
	"warper/internal/workload"
)

// The -micro mode runs the tier-2 compute-core micro-benchmarks (nn train
// step, gbt fit, kernel solve, end-to-end adaptation period) through
// testing.Benchmark and writes the results as JSON (BENCH_PR4.json in the
// repo records one committed trajectory). Batched/reference pairs are
// reported together with their speedup ratio so the acceptance numbers are
// part of the artifact, not a claim in prose.

// microResult is one benchmark entry in the JSON output.
type microResult struct {
	Name          string  `json:"name"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
}

// microRatio records a reference/optimized speedup.
type microRatio struct {
	Name        string  `json:"name"`
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	Speedup     float64 `json:"speedup"`
}

// microReport is the whole JSON document.
type microReport struct {
	GeneratedUnix int64         `json:"generated_unix"`
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	NumCPU        int           `json:"num_cpu"`
	Quick         bool          `json:"quick"`
	Benchmarks    []microResult `json:"benchmarks"`
	Ratios        []microRatio  `json:"ratios"`
	// Overload records the -servebench -overload run (BENCH_PR8.json):
	// shed/fallback behavior at 2x saturation. Nil for every other mode.
	Overload *overloadReport `json:"overload,omitempty"`
	// Cache records the -servebench -zipf run (BENCH_PR9.json): estimate-
	// cache hit rate and hot-hit latency under a Zipf-skewed predicate
	// workload, byte-identity checked across a mid-run model swap. Nil for
	// every other mode.
	Cache *cacheReport `json:"cache,omitempty"`
	// Wire records the -servebench -binary run (BENCH_PR10.json): the
	// columnar binary batch protocol against scalar JSON, its zero-alloc
	// steady-state gate, and the GOMAXPROCS≥4 multi-core pass. Nil for
	// every other mode.
	Wire *wireReport `json:"wire,omitempty"`
}

// cacheReport is the estimate-cache section of the -zipf report.
type cacheReport struct {
	ZipfExponent float64 `json:"zipf_exponent"`
	Templates    int     `json:"templates"`
	Requests     int     `json:"requests"`
	HitRate      float64 `json:"hit_rate"`
	HotHitNs     float64 `json:"hot_hit_ns"`
	// SwapChecked records that a POST /period model swap ran mid-workload
	// and every post-swap answer matched the post-swap reference clone.
	SwapChecked bool `json:"swap_checked"`
}

// runMicro executes the micro-benchmark suite and writes the report to out.
func runMicro(out string, quick bool) error {
	// testing.Benchmark honors the -test.benchtime flag; register the
	// testing flags and pin a small iteration budget in quick (CI smoke)
	// mode so the step stays seconds, not minutes.
	testing.Init()
	if quick {
		if err := flag.Set("test.benchtime", "1x"); err != nil {
			return err
		}
	}

	rep := &microReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Quick:         quick,
	}

	record := func(name string, samplesPerOp int, r testing.BenchmarkResult) {
		res := microResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if samplesPerOp > 0 && r.NsPerOp() > 0 {
			res.SamplesPerSec = float64(samplesPerOp) / (float64(r.NsPerOp()) / 1e9)
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Printf("%-28s %10d ns/op %8d B/op %6d allocs/op\n",
			name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	ratio := func(name, num, den string) {
		var nv, dv float64
		for _, b := range rep.Benchmarks {
			if b.Name == num {
				nv = b.NsPerOp
			}
			if b.Name == den {
				dv = b.NsPerOp
			}
		}
		if nv > 0 && dv > 0 {
			rep.Ratios = append(rep.Ratios, microRatio{Name: name, Numerator: num, Denominator: den, Speedup: nv / dv})
			fmt.Printf("%-28s %.2fx\n", name, nv/dv)
		}
	}

	benchNN(record, quick)
	ratio("nn_train_step_speedup", "nn_train_step_reference", "nn_train_step_batched")
	ratio("nn_forward_speedup", "nn_forward_reference", "nn_batch_forward")

	benchGBT(record, quick)
	ratio("gbt_fit_speedup", "gbt_fit_reference", "gbt_fit_presorted")

	benchKernel(record, quick)
	if err := benchPeriod(record, quick); err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// benchNN measures the paper Table 3 MLP shape (3×FC-128, batch 32) on the
// batched SIMD training path and the frozen per-sample reference.
func benchNN(record func(string, int, testing.BenchmarkResult), quick bool) {
	const batch, in, out = 32, 18, 16
	newNet := func() *nn.Network { return nn.MLP(in, 128, 3, out, rand.New(rand.NewSource(7))) }
	rng := rand.New(rand.NewSource(8))
	xs := make([][]float64, batch)
	ys := make([][]float64, batch)
	for i := range xs {
		xs[i] = randVec(rng, in)
		ys[i] = randVec(rng, out)
	}

	net := newNet()
	opt := nn.NewAdam(1e-3)
	if _, err := net.TrainBatch(xs, ys, nn.MSE{}, opt); err != nil { // warm scratch
		panic(err)
	}
	record("nn_train_step_batched", batch, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := net.TrainBatch(xs, ys, nn.MSE{}, opt); err != nil {
				b.Fatal(err)
			}
		}
	}))

	ref := newNet()
	refOpt := nn.NewAdam(1e-3)
	record("nn_train_step_reference", batch, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nn.ReferenceTrainBatch(ref, xs, ys, nn.MSE{}, refOpt)
		}
	}))

	m := nn.NewMat(batch, in)
	m.CopyFromRows(xs)
	record("nn_batch_forward", batch, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net.BatchForward(m)
		}
	}))
	record("nn_forward_reference", batch, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				nn.ReferenceForward(ref, x)
			}
		}
	}))
}

// benchGBT measures the presorted exact-greedy ensemble fit against the
// frozen sort-per-node reference at the paper's LM-gbt shape.
func benchGBT(record func(string, int, testing.BenchmarkResult), quick bool) {
	n, d, cfg := 1000, 18, gbt.Config{Stages: 120, Rate: 0.05, MaxDepth: 4, MinLeafSize: 3}
	if quick {
		n, cfg.Stages = 300, 20
	}
	rng := rand.New(rand.NewSource(9))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = randVec(rng, d)
		y[i] = rng.NormFloat64()
	}
	record("gbt_fit_presorted", n*cfg.Stages, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gbt.Fit(X, y, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record("gbt_fit_reference", n*cfg.Stages, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gbt.ReferenceFit(X, y, cfg)
		}
	}))
}

// benchKernel measures a full KRR fit (parallel Gram build + Cholesky).
func benchKernel(record func(string, int, testing.BenchmarkResult), quick bool) {
	n, d := 600, 18
	if quick {
		n = 200
	}
	rng := rand.New(rand.NewSource(10))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = randVec(rng, d)
		y[i] = rng.NormFloat64()
	}
	cfg := kernel.DefaultRBFConfig()
	cfg.MaxAnchors = n
	record("kernel_fit_rbf", n, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := kernel.Fit(X, y, cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))
}

// benchPeriod measures one end-to-end adaptation period (detect → GAN →
// generate → pick → annotate → update) over a PRSA-like table with a
// drifted workload, the serving /period hot path.
func benchPeriod(record func(string, int, testing.BenchmarkResult), quick bool) error {
	nTrain, nNew := 500, 160
	if quick {
		nTrain, nNew = 200, 60
	}
	rng := rand.New(rand.NewSource(11))
	tbl := dataset.PRSA(3000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	ctx := context.Background()
	gTrain := workload.New("w1", tbl, sch, workload.Options{MaxConstrained: 2})
	gNew := workload.New("w4", tbl, sch, workload.Options{MaxConstrained: 2})
	train, err := ann.AnnotateAll(ctx, workload.Generate(gTrain, nTrain, rng))
	if err != nil {
		return err
	}
	newQ, err := ann.AnnotateAll(ctx, workload.Generate(gNew, nNew, rng))
	if err != nil {
		return err
	}

	lm := ce.NewLM(ce.LMMLP, sch, 31)
	if err := lm.Train(train); err != nil {
		return err
	}
	cfg := warper.DefaultConfig()
	cfg.Hidden = 64
	cfg.Depth = 2
	cfg.NIters = 50
	cfg.Gamma = 150
	cfg.PickSize = 150
	cfg.Canaries = 5
	cfg.JSThreshold = 0.02
	ad, err := warper.New(cfg, lm, sch, ann, train)
	if err != nil {
		return err
	}
	arrivals := make([]warper.Arrival, len(newQ))
	for i, lq := range newQ {
		arrivals[i] = warper.Arrival{Pred: lq.Pred, GT: lq.Card, HasGT: true}
	}
	record("period_end_to_end", len(arrivals), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ad.Period(arrivals); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return nil
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
