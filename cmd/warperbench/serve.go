package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/obs"
	"warper/internal/query"
	"warper/internal/serve"
	"warper/internal/warper"
	"warper/internal/workload"
)

// The -servebench mode measures /estimate serving throughput at a fixed
// concurrent client count, comparing the replica-pool server (direct and
// micro-batched) against the single-lock design it replaced. Every served
// answer is checked against a reference clone, so the speedup numbers in
// BENCH_PR5.json are certified byte-identical, not approximate.

// serveClients is the concurrency level of the acceptance criterion: eight
// clients issuing estimates back to back.
const serveClients = 8

// lockedEstimator reproduces the pre-replica-pool serving core, including
// its per-request lock-wait span: one model, one mutex, every estimate
// serialized through both.
type lockedEstimator struct {
	mu       sync.Mutex
	m        ce.Estimator
	lockWait *obs.Histogram
}

func (s *lockedEstimator) Estimate(p query.Predicate) float64 {
	sp := obs.StartSpan(s.lockWait)
	s.mu.Lock()
	sp.End()
	defer s.mu.Unlock()
	return s.m.Estimate(p)
}

// servePasses is how many interleaved measurement passes each configuration
// gets; the reported number is the fastest pass, which strips scheduler and
// machine noise the same way for every configuration.
const servePasses = 3

// runServeBench executes the serving benchmark and writes the report to out.
func runServeBench(out string, quick bool) error {
	nTrain, total := 500, 100000
	if quick {
		nTrain, total = 200, 5000
	}
	rng := rand.New(rand.NewSource(17))
	tbl := dataset.PRSA(3000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	ctx := context.Background()
	gTrain := workload.New("w1", tbl, sch, workload.Options{MaxConstrained: 2})
	gServe := workload.New("w4", tbl, sch, workload.Options{MaxConstrained: 2})
	train, err := ann.AnnotateAll(ctx, workload.Generate(gTrain, nTrain, rng))
	if err != nil {
		return err
	}
	lm := ce.NewLM(ce.LMMLP, sch, 31)
	if err := lm.Train(train); err != nil {
		return err
	}
	ad, err := warper.New(warper.DefaultConfig(), lm, sch, ann, train)
	if err != nil {
		return err
	}

	// A fixed predicate set with reference answers from a private clone:
	// the byte-identity oracle for every serving configuration below.
	preds := make([]query.Predicate, 256)
	want := make([]float64, len(preds))
	ref := lm.Clone()
	for i := range preds {
		preds[i] = gServe.Gen(rng).Normalize(sch)
		want[i] = ref.Estimate(preds[i])
	}

	rep := &microReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Quick:         quick,
	}

	// measure drives total estimates through est from serveClients
	// goroutines and returns the wall-clock ns per estimate.
	measure := func(name string, est func(query.Predicate) float64) (float64, error) {
		var next atomic.Int64
		var bad atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < serveClients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := next.Add(1) - 1
					if n >= int64(total) {
						return
					}
					i := int(n) % len(preds)
					if got := est(preds[i]); got != want[i] {
						bad.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if bad.Load() > 0 {
			return 0, fmt.Errorf("%s: %d of %d estimates diverged from the reference", name, bad.Load(), total)
		}
		return float64(elapsed.Nanoseconds()) / float64(total), nil
	}

	// The three serving cores under test. The baseline is the single-lock
	// design this PR removed; the other two are the live serve.Server in its
	// direct-checkout and micro-batched configurations.
	locked := &lockedEstimator{
		m:        lm.Clone(),
		lockWait: obs.NewRegistry().Histogram("lock_wait_seconds", obs.LatencyOpts()),
	}
	direct := serve.NewWithOptions(ad, sch, serve.Options{Replicas: serveClients})
	defer direct.Close()
	batched := serve.NewWithOptions(ad, sch, serve.Options{
		Replicas:    serveClients,
		BatchWindow: 200 * time.Microsecond,
		BatchMax:    serveClients,
	})
	defer batched.Close()

	// The flight-recorder acceptance check rides along: the tracer envelope
	// the HTTP handler wraps around every estimate (Acquire → EnterStage →
	// Finish) must cost nothing when sampling is off. These two wrappers
	// reproduce that envelope around the replica-pool path with sampling off
	// and fully on.
	tracerOff := obs.NewTracer(0, 64)
	tracerOn := obs.NewTracer(1, 64)
	envelope := func(tr *obs.Tracer) func(query.Predicate) float64 {
		return func(p query.Predicate) float64 {
			t := tr.Acquire("estimate")
			t.EnterStage("infer")
			v := direct.Estimate(p)
			tr.Finish(t)
			return v
		}
	}

	configs := []struct {
		name string
		est  func(query.Predicate) float64
	}{
		{"serve_estimate_single_lock", locked.Estimate},
		{"serve_estimate_replicas", direct.Estimate},
		{"serve_estimate_coalesced", batched.Estimate},
		{"serve_estimate_tracer_off", envelope(tracerOff)},
		{"serve_estimate_traced", envelope(tracerOn)},
	}

	// Allocation acceptance: with sampling off the tracer envelope must add
	// exactly zero allocations per estimate over the bare replica path.
	allocsPer := func(est func(query.Predicate) float64) float64 {
		i := 0
		return testing.AllocsPerRun(512, func() {
			est(preds[i%len(preds)])
			i++
		})
	}
	aBare := allocsPer(direct.Estimate)
	aOff := allocsPer(envelope(tracerOff))
	aOn := allocsPer(envelope(tracerOn))
	fmt.Printf("allocs/op: replicas %.2f, tracer-off %.2f, traced %.2f\n", aBare, aOff, aOn)
	if aOff > aBare {
		return fmt.Errorf("tracing off added allocations on the estimate path: %.2f -> %.2f allocs/op", aBare, aOff)
	}
	allocsByName := map[string]float64{
		"serve_estimate_replicas":   aBare,
		"serve_estimate_tracer_off": aOff,
		"serve_estimate_traced":     aOn,
	}

	best := make(map[string]float64, len(configs))
	for pass := 0; pass < servePasses; pass++ {
		for _, cf := range configs {
			ns, err := measure(cf.name, cf.est)
			if err != nil {
				return err
			}
			fmt.Printf("pass %d  %-28s %10.0f ns/op\n", pass+1, cf.name, ns)
			if b, ok := best[cf.name]; !ok || ns < b {
				best[cf.name] = ns
			}
		}
	}
	for _, cf := range configs {
		nsPerOp := best[cf.name]
		rep.Benchmarks = append(rep.Benchmarks, microResult{
			Name:          cf.name,
			Iterations:    total * servePasses,
			NsPerOp:       nsPerOp,
			AllocsPerOp:   int64(allocsByName[cf.name] + 0.5),
			SamplesPerSec: 1e9 / nsPerOp,
		})
		fmt.Printf("%-28s %10.0f ns/op %12.0f est/s  (best of %d, %d clients, byte-identical)\n",
			cf.name, nsPerOp, 1e9/nsPerOp, servePasses, serveClients)
	}
	bh := batched.Metrics().Reg.Histogram("warper_estimate_batch_rows", obs.HistogramOpts{Start: 1, Growth: 2, Count: 10})
	if bh.Count() > 0 {
		fmt.Printf("coalesced batches: %d, mean size %.2f\n", bh.Count(), bh.Mean())
	}

	ratio := func(name, num, den string) {
		var nv, dv float64
		for _, b := range rep.Benchmarks {
			if b.Name == num {
				nv = b.NsPerOp
			}
			if b.Name == den {
				dv = b.NsPerOp
			}
		}
		if nv > 0 && dv > 0 {
			rep.Ratios = append(rep.Ratios, microRatio{Name: name, Numerator: num, Denominator: den, Speedup: nv / dv})
			fmt.Printf("%-28s %.2fx\n", name, nv/dv)
		}
	}
	ratio("serve_replicas_speedup", "serve_estimate_single_lock", "serve_estimate_replicas")
	ratio("serve_coalesced_speedup", "serve_estimate_single_lock", "serve_estimate_coalesced")
	// ≈1.00x is the acceptance target: tracing off must be free.
	ratio("serve_tracer_off_overhead", "serve_estimate_tracer_off", "serve_estimate_replicas")

	// Snapshot the adaptation event journal as a CI artifact when asked: one
	// empty-buffer period gives the journal real period_start/period_end/
	// model_swap content to capture.
	if path := os.Getenv("WARPER_EVENTS_OUT"); path != "" {
		h := batched.Handler()
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("POST", "/period", nil))
		if rw.Code != 200 {
			return fmt.Errorf("events artifact: POST /period = %d", rw.Code)
		}
		rw = httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/events", nil))
		if rw.Code != 200 {
			return fmt.Errorf("events artifact: GET /debug/events = %d", rw.Code)
		}
		if err := os.WriteFile(path, rw.Body.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
