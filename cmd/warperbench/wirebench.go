package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/obs"
	"warper/internal/query"
	"warper/internal/serve"
	"warper/internal/warper"
	"warper/internal/wire"
	"warper/internal/workload"
)

// The -servebench -binary mode measures the columnar binary batch protocol
// against the scalar JSON protocol over real HTTP: the same predicates, the
// same server, the same client concurrency, with every answer checked
// against a reference clone. The acceptance criteria ride along as hard
// gates: the binary path must carry at least wireMinSpeedup times the JSON
// throughput on an uncached workload, and the in-process batch entry point
// (EstimateBatchWire) must serve a warmed steady state with zero
// allocations per batch. A second measurement pass pins GOMAXPROCS to at
// least 4 so multi-core machines record the replica-pool parallel win the
// 1-CPU CI box cannot show.

// wireBenchRows is the batch size the binary clients post per request: the
// amortization unit the protocol exists for.
const wireBenchRows = 64

// wireMinSpeedup is the acceptance floor for binary-over-JSON throughput.
const wireMinSpeedup = 2.0

// wireMP is the GOMAXPROCS floor of the multi-core pass.
const wireMP = 4

// wireReport is the binary-protocol section of the -binary report.
type wireReport struct {
	BatchRows int `json:"batch_rows"`
	Clients   int `json:"clients"`
	// BinarySpeedup is JSON ns-per-estimate over binary ns-per-estimate at
	// the process's own GOMAXPROCS; the ≥2x acceptance gate.
	BinarySpeedup float64 `json:"binary_speedup"`
	// AllocsPerBatch is the steady-state allocation count of one in-process
	// EstimateBatchWire call on warmed pooled buffers; the zero-alloc gate.
	AllocsPerBatch float64 `json:"allocs_per_batch"`
	// GOMAXPROCS / MPGOMAXPROCS record the scheduler width of the base and
	// multi-core passes; NumCPU in the enclosing report tells a reader
	// whether MP numbers had real cores behind them.
	GOMAXPROCS      int     `json:"gomaxprocs"`
	MPGOMAXPROCS    int     `json:"mp_gomaxprocs"`
	MPBinarySpeedup float64 `json:"mp_binary_speedup"`
	// MPReplicasSpeedup re-runs PR 5's single-lock vs replica-pool
	// comparison under the widened scheduler: the parallel win the 1-CPU
	// recording of BENCH_PR5.json could not prove.
	MPReplicasSpeedup float64 `json:"mp_replicas_speedup"`
	// SwapChecked records that a POST /period model swap ran after the
	// measurements and the binary answers stayed byte-identical to JSON,
	// with the echoed generation advancing.
	SwapChecked bool `json:"swap_checked"`
}

// runWireBench executes the binary-protocol benchmark and writes the
// report to out.
func runWireBench(out string, quick bool) error {
	nTrain, total := 500, 100000
	if quick {
		nTrain, total = 200, 5000
	}
	rng := rand.New(rand.NewSource(23))
	tbl := dataset.PRSA(3000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	ctx := context.Background()
	gTrain := workload.New("w1", tbl, sch, workload.Options{MaxConstrained: 2})
	gServe := workload.New("w4", tbl, sch, workload.Options{MaxConstrained: 2})
	train, err := ann.AnnotateAll(ctx, workload.Generate(gTrain, nTrain, rng))
	if err != nil {
		return err
	}
	lm := ce.NewLM(ce.LMMLP, sch, 31)
	if err := lm.Train(train); err != nil {
		return err
	}
	ad, err := warper.New(warper.DefaultConfig(), lm, sch, ann, train)
	if err != nil {
		return err
	}

	// The cache stays off: the acceptance gate is over the uncached serving
	// path, where every row pays a replica checkout and a forward pass.
	srv := serve.NewWithOptions(ad, sch, serve.Options{
		Replicas:       serveClients,
		BinaryProtocol: true,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A fixed predicate pool with reference answers from a private clone:
	// the byte-identity oracle for both protocols.
	preds := make([]query.Predicate, 256)
	want := make([]float64, len(preds))
	ref := lm.Clone()
	for i := range preds {
		preds[i] = gServe.Gen(rng).Normalize(sch)
		want[i] = ref.Estimate(preds[i])
	}

	// Pre-built binary request frames tiling the pool, one response oracle
	// slice per frame.
	nFrames := len(preds) / wireBenchRows
	frames := make([][]byte, nFrames)
	frameWant := make([][]float64, nFrames)
	for f := 0; f < nFrames; f++ {
		batch := preds[f*wireBenchRows : (f+1)*wireBenchRows]
		frames[f], err = wire.AppendRequest(nil, 0, batch, false)
		if err != nil {
			return err
		}
		frameWant[f] = want[f*wireBenchRows : (f+1)*wireBenchRows]
	}

	rep := &microReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Quick:         quick,
	}
	wrep := &wireReport{
		BatchRows:  wireBenchRows,
		Clients:    serveClients,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	client := ts.Client()

	// measureHTTP drives total estimates through one request function from
	// serveClients goroutines and returns wall-clock ns per estimate. The
	// request function answers how many estimates one call carried and how
	// many diverged from the reference.
	measureHTTP := func(name string, perCall int, do func(i int) (int, error)) (float64, error) {
		var next atomic.Int64
		var bad atomic.Int64
		errCh := make(chan error, serveClients)
		var wg sync.WaitGroup
		calls := total / perCall
		start := time.Now()
		for w := 0; w < serveClients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := next.Add(1) - 1
					if n >= int64(calls) {
						return
					}
					diverged, err := do(int(n))
					if err != nil {
						select {
						case errCh <- fmt.Errorf("%s: %w", name, err):
						default:
						}
						return
					}
					bad.Add(int64(diverged))
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errCh:
			return 0, err
		default:
		}
		if bad.Load() > 0 {
			return 0, fmt.Errorf("%s: %d of %d estimates diverged from the reference", name, bad.Load(), total)
		}
		return float64(elapsed.Nanoseconds()) / float64(calls*perCall), nil
	}

	jsonCall := func(i int) (int, error) {
		k := i % len(preds)
		body, err := json.Marshal(map[string]any{"lows": preds[k].Lows, "highs": preds[k].Highs})
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		var er struct {
			Cardinality float64 `json:"cardinality"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			return 0, err
		}
		if er.Cardinality != want[k] {
			return 1, nil
		}
		return 0, nil
	}

	// binaryDo posts one pre-built frame and reports how many of its rows
	// diverged from the reference (measureHTTP already knows perCall).
	binaryDo := func(i int) (int, error) {
		f := i % nFrames
		resp, err := client.Post(ts.URL+"/estimate/batch", "application/x-warper-batch", bytes.NewReader(frames[f]))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, err
		}
		_, cards, err := wire.DecodeResponse(raw, nil)
		if err != nil {
			return 0, err
		}
		if len(cards) != wireBenchRows {
			return 0, fmt.Errorf("%d cards, want %d", len(cards), wireBenchRows)
		}
		diverged := 0
		for j, c := range cards {
			if c != frameWant[f][j] {
				diverged++
			}
		}
		return diverged, nil
	}

	// Zero-allocation gate: warm every pooled buffer through the in-process
	// entry point, then assert the steady state allocates nothing per batch.
	dst := make([]byte, 0, wire.HeaderSize+8*wireBenchRows)
	var benchErr error
	for i := 0; i < 130; i++ {
		if dst, benchErr = srv.EstimateBatchWire(dst[:0], frames[i%nFrames], time.Time{}); benchErr != nil {
			return fmt.Errorf("warm EstimateBatchWire: %w", benchErr)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(128, func() {
		dst, benchErr = srv.EstimateBatchWire(dst[:0], frames[i%nFrames], time.Time{})
		i++
	})
	if benchErr != nil {
		return fmt.Errorf("steady EstimateBatchWire: %w", benchErr)
	}
	wrep.AllocsPerBatch = allocs
	fmt.Printf("allocs/batch: in-process binary %.2f (%d rows)\n", allocs, wireBenchRows)
	if allocs != 0 {
		return fmt.Errorf("binary steady path allocates: %.2f allocs per %d-row batch, want 0", allocs, wireBenchRows)
	}

	// Base pass at the process's own GOMAXPROCS, best of servePasses.
	record := func(name string, ns float64, perCall int) {
		rep.Benchmarks = append(rep.Benchmarks, microResult{
			Name:          name,
			Iterations:    total * servePasses,
			NsPerOp:       ns,
			SamplesPerSec: 1e9 / ns,
		})
		fmt.Printf("%-28s %10.0f ns/est %12.0f est/s  (best of %d, %d clients, batch %d)\n",
			name, ns, 1e9/ns, servePasses, serveClients, perCall)
	}
	bestOf := func(name string, perCall int, do func(int) (int, error)) (float64, error) {
		best := 0.0
		for pass := 0; pass < servePasses; pass++ {
			ns, err := measureHTTP(name, perCall, do)
			if err != nil {
				return 0, err
			}
			fmt.Printf("pass %d  %-28s %10.0f ns/est\n", pass+1, name, ns)
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}

	jsonNs, err := bestOf("wire_estimate_json", 1, jsonCall)
	if err != nil {
		return err
	}
	binNs, err := bestOf("wire_estimate_binary", wireBenchRows, binaryDo)
	if err != nil {
		return err
	}
	record("wire_estimate_json", jsonNs, 1)
	record("wire_estimate_binary", binNs, wireBenchRows)
	wrep.BinarySpeedup = jsonNs / binNs
	rep.Ratios = append(rep.Ratios, microRatio{
		Name: "wire_binary_speedup", Numerator: "wire_estimate_json",
		Denominator: "wire_estimate_binary", Speedup: wrep.BinarySpeedup,
	})
	fmt.Printf("%-28s %.2fx\n", "wire_binary_speedup", wrep.BinarySpeedup)
	if wrep.BinarySpeedup < wireMinSpeedup {
		return fmt.Errorf("binary speedup %.2fx is below the %.1fx acceptance floor",
			wrep.BinarySpeedup, wireMinSpeedup)
	}

	// Multi-core pass: widen the scheduler to at least wireMP and repeat
	// the protocol comparison, plus PR 5's single-lock vs replica-pool
	// comparison in-process (no HTTP) so the parallel win is isolated from
	// transport cost.
	mp := runtime.GOMAXPROCS(0)
	if mp < wireMP {
		mp = wireMP
	}
	prev := runtime.GOMAXPROCS(mp)
	wrep.MPGOMAXPROCS = mp
	fmt.Printf("multi-core pass: GOMAXPROCS %d → %d (NumCPU %d)\n", prev, mp, runtime.NumCPU())

	jsonMP, err := bestOf("wire_estimate_json_mp", 1, jsonCall)
	if err != nil {
		runtime.GOMAXPROCS(prev)
		return err
	}
	binMP, err := bestOf("wire_estimate_binary_mp", wireBenchRows, binaryDo)
	if err != nil {
		runtime.GOMAXPROCS(prev)
		return err
	}
	record("wire_estimate_json_mp", jsonMP, 1)
	record("wire_estimate_binary_mp", binMP, wireBenchRows)
	wrep.MPBinarySpeedup = jsonMP / binMP
	rep.Ratios = append(rep.Ratios, microRatio{
		Name: "wire_binary_speedup_mp", Numerator: "wire_estimate_json_mp",
		Denominator: "wire_estimate_binary_mp", Speedup: wrep.MPBinarySpeedup,
	})
	fmt.Printf("%-28s %.2fx\n", "wire_binary_speedup_mp", wrep.MPBinarySpeedup)

	// PR 5's comparison under the widened scheduler: the locked baseline
	// serializes every estimate; the replica pool runs them in parallel.
	locked := &lockedEstimator{
		m:        lm.Clone(),
		lockWait: obs.NewRegistry().Histogram("lock_wait_seconds", obs.LatencyOpts()),
	}
	measureLocal := func(name string, est func(query.Predicate) float64) (float64, error) {
		return measureHTTP(name, 1, func(i int) (int, error) {
			k := i % len(preds)
			if est(preds[k]) != want[k] {
				return 1, nil
			}
			return 0, nil
		})
	}
	lockNs, err := measureLocal("serve_estimate_single_lock_mp", locked.Estimate)
	if err != nil {
		runtime.GOMAXPROCS(prev)
		return err
	}
	replNs, err := measureLocal("serve_estimate_replicas_mp", srv.Estimate)
	if err != nil {
		runtime.GOMAXPROCS(prev)
		return err
	}
	runtime.GOMAXPROCS(prev)
	record("serve_estimate_single_lock_mp", lockNs, 1)
	record("serve_estimate_replicas_mp", replNs, 1)
	wrep.MPReplicasSpeedup = lockNs / replNs
	rep.Ratios = append(rep.Ratios, microRatio{
		Name: "serve_replicas_speedup_mp", Numerator: "serve_estimate_single_lock_mp",
		Denominator: "serve_estimate_replicas_mp", Speedup: wrep.MPReplicasSpeedup,
	})
	fmt.Printf("%-28s %.2fx\n", "serve_replicas_speedup_mp", wrep.MPReplicasSpeedup)

	// Identity across a model swap: buffer labeled feedback, run a period,
	// and require the binary batch to stay byte-identical to JSON with the
	// echoed generation advancing.
	if err := wireSwapCheck(ts, client, srv, preds); err != nil {
		return err
	}
	wrep.SwapChecked = true
	fmt.Println("swap check: binary == json after POST /period, generation advanced")

	rep.Wire = wrep
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// wireSwapCheck swaps the serving model through the HTTP surface and
// verifies the two protocols still answer identically, with the binary
// generation echo advancing across the swap.
func wireSwapCheck(ts *httptest.Server, client *http.Client, srv *serve.Server, preds []query.Predicate) error {
	batch := preds[:wireBenchRows]
	genBefore, before, err := wirePostBatch(ts, client, batch)
	if err != nil {
		return fmt.Errorf("swap check (pre): %w", err)
	}
	_ = before
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 30; i++ {
		p := preds[rng.Intn(len(preds))]
		body, err := json.Marshal(map[string]any{
			"lows": p.Lows, "highs": p.Highs, "cardinality": float64(1 + rng.Intn(50)),
		})
		if err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+"/feedback", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("swap check: feedback status %d", resp.StatusCode)
		}
	}
	resp, err := client.Post(ts.URL+"/period", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("swap check: period status %d", resp.StatusCode)
	}
	genAfter, after, err := wirePostBatch(ts, client, batch)
	if err != nil {
		return fmt.Errorf("swap check (post): %w", err)
	}
	if genAfter <= genBefore {
		return fmt.Errorf("swap check: generation echo %d → %d did not advance", genBefore, genAfter)
	}
	for i, c := range after {
		body, err := json.Marshal(map[string]any{"lows": batch[i].Lows, "highs": batch[i].Highs})
		if err != nil {
			return err
		}
		jr, err := client.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		var er struct {
			Cardinality float64 `json:"cardinality"`
		}
		derr := json.NewDecoder(jr.Body).Decode(&er)
		_ = jr.Body.Close()
		if derr != nil {
			return derr
		}
		if er.Cardinality != c {
			return fmt.Errorf("swap check: pred %d binary %v != json %v", i, c, er.Cardinality)
		}
	}
	return nil
}

// wirePostBatch posts one binary batch and returns the echoed generation
// and the decoded cardinalities.
func wirePostBatch(ts *httptest.Server, client *http.Client, batch []query.Predicate) (uint64, []float64, error) {
	frame, err := wire.AppendRequest(nil, 0, batch, false)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(ts.URL+"/estimate/batch", "application/x-warper-batch", bytes.NewReader(frame))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	h, cards, err := wire.DecodeResponse(raw, nil)
	if err != nil {
		return 0, nil, err
	}
	return h.Generation, cards, nil
}
