package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/serve"
	"warper/internal/warper"
	"warper/internal/workload"
)

// The -servebench -zipf mode measures the drift-aware estimate cache: a
// Zipf-skewed predicate workload (repeated templates, the shape a plan cache
// or a dashboard's canned queries produces) against the cached and uncached
// replica-pool server, plus hit/miss/invalidate micro-benchmarks. Every
// served answer — including across a mid-run POST /period model swap — is
// checked byte-identical against a reference clone, and the cache-hit path
// is hard-asserted allocation-free. Results land in BENCH_PR9.json.

// zipfTemplates is the predicate template pool the Zipf distribution draws
// from; the cache's default capacity comfortably exceeds it, so the steady-
// state miss rate is the re-warm cost after invalidations, not capacity.
const zipfTemplates = 512

// runZipfBench executes the cache benchmark and writes the report to out.
func runZipfBench(out string, quick bool, zipfS float64) error {
	if zipfS <= 1 {
		return fmt.Errorf("zipf exponent must be > 1, got %v", zipfS)
	}
	nTrain, total, templates := 500, 100000, zipfTemplates
	hotIters := 2000000
	if quick {
		nTrain, total, templates, hotIters = 200, 5000, 128, 200000
	}
	rng := rand.New(rand.NewSource(17))
	tbl := dataset.PRSA(3000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	ctx := context.Background()
	gTrain := workload.New("w1", tbl, sch, workload.Options{MaxConstrained: 2})
	gServe := workload.New("w4", tbl, sch, workload.Options{MaxConstrained: 2})
	train, err := ann.AnnotateAll(ctx, workload.Generate(gTrain, nTrain, rng))
	if err != nil {
		return err
	}
	lm := ce.NewLM(ce.LMMLP, sch, 31)
	if err := lm.Train(train); err != nil {
		return err
	}
	ad, err := warper.New(warper.DefaultConfig(), lm, sch, ann, train)
	if err != nil {
		return err
	}

	tpl := make([]query.Predicate, templates)
	want := make([]float64, templates)
	ref := lm.Clone()
	for i := range tpl {
		tpl[i] = gServe.Gen(rng).Normalize(sch)
		want[i] = ref.Estimate(tpl[i])
	}

	rep := &microReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Quick:         quick,
	}

	// ---- Micro-benchmarks: hit, miss, invalidate -------------------------

	cached := serve.NewWithOptions(ad, sch, serve.Options{
		Replicas:      serveClients,
		EstimateCache: true,
	})
	defer cached.Close()
	hot := tpl[0]
	cached.Estimate(hot) // populate: everything after this is a hit

	// The acceptance gate of the whole design: a cache hit must allocate
	// exactly nothing — the free-listed key scratch and the lock-free probe
	// leave no garbage behind.
	aHit := testing.AllocsPerRun(2048, func() { cached.Estimate(hot) })
	if aHit != 0 {
		return fmt.Errorf("cache-hit path allocates: %.2f allocs/op (must be 0)", aHit)
	}
	var sink float64
	start := time.Now()
	for i := 0; i < hotIters; i++ {
		sink += cached.Estimate(hot)
	}
	hotNs := float64(time.Since(start).Nanoseconds()) / float64(hotIters)
	_ = sink
	fmt.Printf("%-28s %10.2f ns/op  %.0f allocs/op\n", "serve_cache_hit", hotNs, aHit)
	if !quick && hotNs > 200 {
		return fmt.Errorf("cache hit = %.0f ns/op, acceptance target is < 200 ns", hotNs)
	}

	// Miss micro: a deliberately tiny cache (one shard, one probe group)
	// with a rotating predicate pool far beyond it — every estimate probes,
	// misses, runs the model and inserts over a live entry.
	tiny := serve.NewWithOptions(ad, sch, serve.Options{
		Replicas:      serveClients,
		EstimateCache: true,
		CacheShards:   1,
		CacheEntries:  4,
	})
	defer tiny.Close()
	missIters := hotIters / 20
	start = time.Now()
	for i := 0; i < missIters; i++ {
		tiny.Estimate(tpl[i%templates])
	}
	missNs := float64(time.Since(start).Nanoseconds()) / float64(missIters)
	aMiss := testing.AllocsPerRun(512, func() { tiny.Estimate(tpl[0]) })
	fmt.Printf("%-28s %10.2f ns/op  %.0f allocs/op\n", "serve_cache_miss", missNs, aMiss)

	// Invalidate micro: a wholesale flush plus the re-warming estimate. The
	// flush itself is one atomic add; the journal event it appends is the
	// deliberate (allocating) audit trail.
	invIters := missIters
	start = time.Now()
	for i := 0; i < invIters; i++ {
		cached.InvalidateEstimateCache()
		cached.Estimate(hot)
	}
	invNs := float64(time.Since(start).Nanoseconds()) / float64(invIters)
	fmt.Printf("%-28s %10.2f ns/op\n", "serve_cache_invalidate", invNs)

	rep.Benchmarks = append(rep.Benchmarks,
		microResult{Name: "serve_cache_hit", Iterations: hotIters, NsPerOp: hotNs,
			AllocsPerOp: int64(aHit + 0.5), SamplesPerSec: 1e9 / hotNs},
		microResult{Name: "serve_cache_miss", Iterations: missIters, NsPerOp: missNs,
			AllocsPerOp: int64(aMiss + 0.5), SamplesPerSec: 1e9 / missNs},
		microResult{Name: "serve_cache_invalidate", Iterations: invIters, NsPerOp: invNs,
			SamplesPerSec: 1e9 / invNs},
	)

	// ---- Throughput: cached vs uncached, 1 CPU and GOMAXPROCS=2 ----------

	// measure drives total estimates through est from serveClients
	// goroutines, byte-identity checked, returning wall-clock ns/op.
	measure := func(name string, est func(query.Predicate) float64) (float64, error) {
		var next, bad atomic.Int64
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < serveClients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := next.Add(1) - 1
					if n >= int64(total) {
						return
					}
					i := int(n) % templates
					if got := est(tpl[i]); got != want[i] {
						bad.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(t0)
		if bad.Load() > 0 {
			return 0, fmt.Errorf("%s: %d of %d estimates diverged from the reference", name, bad.Load(), total)
		}
		return float64(elapsed.Nanoseconds()) / float64(total), nil
	}

	uncached := serve.NewWithOptions(ad, sch, serve.Options{Replicas: serveClients})
	defer uncached.Close()
	configs := []struct {
		name string
		est  func(query.Predicate) float64
	}{
		{"serve_estimate_replicas", uncached.Estimate},
		{"serve_estimate_cached", cached.Estimate},
	}
	record := func(suffix string) error {
		best := make(map[string]float64, len(configs))
		for pass := 0; pass < servePasses; pass++ {
			for _, cf := range configs {
				ns, err := measure(cf.name+suffix, cf.est)
				if err != nil {
					return err
				}
				fmt.Printf("pass %d  %-28s %10.0f ns/op\n", pass+1, cf.name+suffix, ns)
				if b, ok := best[cf.name]; !ok || ns < b {
					best[cf.name] = ns
				}
			}
		}
		for _, cf := range configs {
			ns := best[cf.name]
			rep.Benchmarks = append(rep.Benchmarks, microResult{
				Name:          cf.name + suffix,
				Iterations:    total * servePasses,
				NsPerOp:       ns,
				SamplesPerSec: 1e9 / ns,
			})
			fmt.Printf("%-28s %10.0f ns/op %12.0f est/s  (best of %d, %d clients, byte-identical)\n",
				cf.name+suffix, ns, 1e9/ns, servePasses, serveClients)
		}
		return nil
	}
	if err := record(""); err != nil {
		return err
	}
	// The multi-core pass: the cache's lock-free lookup should scale where
	// the single free-list channel contends. GOMAXPROCS is restored before
	// anything else runs.
	prev := runtime.GOMAXPROCS(2)
	errMP := record("_mp")
	runtime.GOMAXPROCS(prev)
	if errMP != nil {
		return errMP
	}

	ratio := func(name, num, den string) {
		var nv, dv float64
		for _, b := range rep.Benchmarks {
			if b.Name == num {
				nv = b.NsPerOp
			}
			if b.Name == den {
				dv = b.NsPerOp
			}
		}
		if nv > 0 && dv > 0 {
			rep.Ratios = append(rep.Ratios, microRatio{Name: name, Numerator: num, Denominator: den, Speedup: nv / dv})
			fmt.Printf("%-28s %.2fx\n", name, nv/dv)
		}
	}

	// ---- Zipf workload with a mid-run model swap -------------------------

	// A fresh server so the hit/miss counters start at zero for this phase.
	zs := serve.NewWithOptions(ad, sch, serve.Options{
		Replicas:      serveClients,
		EstimateCache: true,
	})
	defer zs.Close()
	hits := zs.Metrics().Reg.Counter("estimate_cache_hits_total")
	misses := zs.Metrics().Reg.Counter("estimate_cache_misses_total")

	// One shared Zipf index stream (rand.Zipf is not goroutine-safe), drawn
	// up front and consumed through an atomic cursor, so the measured loop
	// does no RNG work and every run sees the same skew.
	zrng := rand.New(rand.NewSource(23))
	zf := rand.NewZipf(zrng, zipfS, 1, uint64(templates-1))
	idx := make([]int32, total)
	for i := range idx {
		idx[i] = int32(zf.Uint64())
	}
	zwant := make([]float64, templates)
	copy(zwant, want)

	runPhase := func(lo, hi int) (time.Duration, error) {
		var cur, bad atomic.Int64
		cur.Store(int64(lo))
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < serveClients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := cur.Add(1) - 1
					if n >= int64(hi) {
						return
					}
					i := idx[n]
					if got := zs.Estimate(tpl[i]); got != zwant[i] {
						bad.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		el := time.Since(t0)
		if bad.Load() > 0 {
			return 0, fmt.Errorf("zipf: %d estimates diverged from the reference", bad.Load())
		}
		return el, nil
	}

	elapsedA, err := runPhase(0, total/2)
	if err != nil {
		return err
	}
	// Mid-run model swap: one empty-buffer adaptation period bumps the
	// serving generation, wholesale-invalidating the cache. The reference
	// answers are recomputed from the post-swap source, so phase B certifies
	// the cache never serves a pre-swap cardinality.
	rw := httptest.NewRecorder()
	zs.Handler().ServeHTTP(rw, httptest.NewRequest("POST", "/period", nil))
	if rw.Code != 200 {
		return fmt.Errorf("zipf mid-run swap: POST /period = %d", rw.Code)
	}
	post := zs.Estimator().Clone()
	for i := range tpl {
		zwant[i] = post.Estimate(tpl[i])
	}
	elapsedB, err := runPhase(total/2, total)
	if err != nil {
		return err
	}

	h, m := hits.Value(), misses.Value()
	hitRate := float64(h) / float64(h+m)
	zNs := float64((elapsedA + elapsedB).Nanoseconds()) / float64(total)
	fmt.Printf("%-28s %10.0f ns/op  hit rate %.4f (%d hits / %d misses, swap mid-run)\n",
		"serve_zipf_cached", zNs, hitRate, h, m)
	if hitRate < 0.8 {
		return fmt.Errorf("zipf(%.2f) hit rate = %.4f, acceptance target is >= 0.80", zipfS, hitRate)
	}
	rep.Benchmarks = append(rep.Benchmarks, microResult{
		Name:          "serve_zipf_cached",
		Iterations:    total,
		NsPerOp:       zNs,
		SamplesPerSec: 1e9 / zNs,
	})
	rep.Cache = &cacheReport{
		ZipfExponent: zipfS,
		Templates:    templates,
		Requests:     total,
		HitRate:      hitRate,
		HotHitNs:     hotNs,
		SwapChecked:  true,
	}

	ratio("serve_cache_speedup", "serve_estimate_replicas", "serve_estimate_cached")
	ratio("serve_cache_speedup_mp", "serve_estimate_replicas_mp", "serve_estimate_cached_mp")

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
