package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/metrics"
	"warper/internal/query"
	"warper/internal/resilience"
	"warper/internal/serve"
	"warper/internal/warper"
	"warper/internal/workload"
)

// The -servebench -overload mode is the acceptance harness for overload-safe
// serving: it measures the server's closed-loop saturation throughput (with
// replica starvation injected so saturation is reachable on any machine),
// then drives open-loop arrivals at twice that rate and records what the
// admission controller, health machine and fallback ladder do with the
// excess. The run fails — not just reports — when the admission queue grows
// past its bound, a shed response overstays the deadline budget, or answers
// are not byte-identical to the reference once the chaos stops.

// overloadReport is the JSON record of one overload run, embedded in the
// microReport written to BENCH_PR8.json.
type overloadReport struct {
	// Load shape.
	SaturationPerSec float64 `json:"saturation_per_sec"`
	TargetPerSec     float64 `json:"target_per_sec"`
	BudgetMs         float64 `json:"budget_ms"`
	DurationMs       float64 `json:"duration_ms"`
	ShedQueue        int64   `json:"shed_queue"`
	StarveHoldUs     float64 `json:"starve_hold_us"`

	// Outcome counts: every request is exactly one of ok/degraded/shed.
	Requests int64            `json:"requests"`
	OK       int64            `json:"ok"`
	Degraded int64            `json:"degraded"`
	Shed     int64            `json:"shed"`
	Reasons  map[string]int64 `json:"reasons"`

	// Bound checks the run asserts on.
	MaxQueueDepth    int64   `json:"max_queue_depth"`
	MaxShedLatencyMs float64 `json:"max_shed_latency_ms"`

	// Fallback accuracy: GMQ vs exact counts, for the full model over the
	// whole predicate set and for the degraded (ladder) answers actually
	// served during overload.
	FullGMQ     float64 `json:"full_gmq"`
	DegradedGMQ float64 `json:"degraded_gmq"`

	FinalHealth string `json:"final_health"`
}

// overloadStats accumulates per-response outcomes. One mutex is plenty: the
// arrival rate is tens of thousands per second, far below mutex throughput,
// and the stats lock is on the bench harness side, not the server's path.
type overloadStats struct {
	mu         sync.Mutex
	ok         int64
	degraded   int64
	shed       int64
	reasons    map[string]int64
	okLogQ     float64
	degLogQ    float64
	maxShedLat time.Duration
}

func (st *overloadStats) record(out serve.EstimateOutcome, card, truth float64, lat time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case out.Shed:
		st.shed++
		st.reasons[out.Reason]++
		if lat > st.maxShedLat {
			st.maxShedLat = lat
		}
	case out.Degraded:
		st.degraded++
		st.reasons[out.Reason]++
		st.degLogQ += math.Log(metrics.QError(card, truth))
	default:
		st.ok++
		st.okLogQ += math.Log(metrics.QError(card, truth))
	}
}

// runOverloadBench executes the overload benchmark and writes the report.
func runOverloadBench(out string, quick bool) error {
	nTrain := 500
	satDur, dur := 400*time.Millisecond, 2*time.Second
	if quick {
		nTrain = 200
		satDur, dur = 150*time.Millisecond, 600*time.Millisecond
	}
	// The shapes are chosen so 2x saturation exercises every rung: the
	// excess arrival rate times the budget exceeds the queue bound (so the
	// queue caps out and sheds), the full queue's drain time exceeds the
	// budget (so queued requests time out into the fallback ladder), and
	// QueueHigh (= shedQueue/2) is crossed (so the health machine reaches
	// shedding and its admission rule sheds too).
	const (
		budget     = 5 * time.Millisecond
		shedQueue  = 64
		starveHold = 100 * time.Microsecond
		step       = 2 * time.Millisecond // dispatcher batch interval
	)

	rng := rand.New(rand.NewSource(17))
	tbl := dataset.PRSA(3000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	ctx := context.Background()
	gTrain := workload.New("w1", tbl, sch, workload.Options{MaxConstrained: 2})
	gServe := workload.New("w4", tbl, sch, workload.Options{MaxConstrained: 2})
	train, err := ann.AnnotateAll(ctx, workload.Generate(gTrain, nTrain, rng))
	if err != nil {
		return err
	}
	lm := ce.NewLM(ce.LMMLP, sch, 31)
	if err := lm.Train(train); err != nil {
		return err
	}
	ad, err := warper.New(warper.DefaultConfig(), lm, sch, ann, train)
	if err != nil {
		return err
	}

	// The predicate set, its exact cardinalities (the GMQ denominator), and
	// the full model's reference answers (the byte-identity oracle).
	preds := make([]query.Predicate, 256)
	want := make([]float64, len(preds))
	truth := make([]float64, len(preds))
	ref := lm.Clone()
	for i := range preds {
		preds[i] = gServe.Gen(rng).Normalize(sch)
		want[i] = ref.Estimate(preds[i])
		if truth[i], err = ann.Count(ctx, preds[i]); err != nil {
			return err
		}
	}
	fullGMQ := metrics.GMQ(want, truth)

	// Replica starvation makes saturation machine-independent: every
	// checkout holds its replica for starveHold, so the pool's service rate
	// is ~replicas/starveHold regardless of how fast the model infers.
	faults := resilience.NewServeFaults(resilience.ServeFaultPlan{
		StarveEvery: 1,
		StarveHold:  starveHold,
	})
	srv := serve.NewWithOptions(ad, sch, serve.Options{
		Replicas:        serveClients,
		EstimateTimeout: budget,
		ShedQueue:       shedQueue,
		ServeFaults:     faults,
		Health:          serve.HealthConfig{EvalInterval: 20 * time.Millisecond},
	})
	defer srv.Close()

	// Phase 1: closed-loop saturation. serveClients clients back to back,
	// blocking path, byte-checked against the reference clone.
	sat, err := measureSaturation(srv, preds, want, satDur)
	if err != nil {
		return err
	}
	target := 2 * sat
	fmt.Printf("saturation %12.0f est/s (closed loop, %d clients)\n", sat, serveClients)
	fmt.Printf("target     %12.0f est/s (open loop, 2x saturation)\n", target)

	// Phase 2: open-loop overload. A dispatcher releases perStep requests
	// every step on a fixed schedule — arrivals do not wait for completions,
	// which is what makes queue growth possible and the bound meaningful. A
	// sampler drives the health machine's clock and watches queue depth.
	st := &overloadStats{reasons: make(map[string]int64)}
	var maxDepth int64
	done := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				srv.Tick(now)
				if d := srv.QueueDepth(); d > maxDepth {
					maxDepth = d
				}
			}
		}
	}()

	perStep := int(target * step.Seconds())
	if perStep < 1 {
		perStep = 1
	}
	steps := int(dur / step)
	var wg sync.WaitGroup
	start := time.Now()
	idx := 0
	for s := 0; s < steps; s++ {
		if d := time.Until(start.Add(time.Duration(s) * step)); d > 0 {
			time.Sleep(d)
		}
		for j := 0; j < perStep; j++ {
			i := idx % len(preds)
			idx++
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				card, o := srv.EstimateBudget(preds[i], t0.Add(budget))
				st.record(o, card, truth[i], time.Since(t0))
			}(i)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(done)
	sampler.Wait()

	// Phase 3: recovery. Chaos off, let the queue drain and the health
	// machine walk back to healthy, then re-verify byte-identity: overload
	// must not have perturbed the served model.
	faults.Disable()
	time.Sleep(budget + 50*time.Millisecond)
	recoverBy := time.Now().Add(5 * time.Second)
	for srv.HealthState() != serve.Healthy && time.Now().Before(recoverBy) {
		srv.Estimate(preds[0]) // keep the wait window fed with healthy samples
		srv.Tick(time.Now())
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.HealthState(); got != serve.Healthy {
		return fmt.Errorf("overload: server did not recover to healthy (state %v)", got)
	}
	for i := range preds {
		if got := srv.Estimate(preds[i]); got != want[i] {
			return fmt.Errorf("overload: post-recovery estimate %d diverged from the reference", i)
		}
	}

	rep := &microReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Quick:         quick,
	}
	olr := &overloadReport{
		SaturationPerSec: sat,
		TargetPerSec:     target,
		BudgetMs:         float64(budget) / 1e6,
		DurationMs:       float64(elapsed) / 1e6,
		ShedQueue:        shedQueue,
		StarveHoldUs:     float64(starveHold) / 1e3,
		Requests:         st.ok + st.degraded + st.shed,
		OK:               st.ok,
		Degraded:         st.degraded,
		Shed:             st.shed,
		Reasons:          st.reasons,
		MaxQueueDepth:    maxDepth,
		MaxShedLatencyMs: float64(st.maxShedLat) / 1e6,
		FullGMQ:          fullGMQ,
		FinalHealth:      srv.HealthState().String(),
	}
	if st.degraded > 0 {
		olr.DegradedGMQ = math.Exp(st.degLogQ / float64(st.degraded))
	}
	rep.Overload = olr

	fmt.Printf("requests %d: ok %d, degraded %d, shed %d  (%.0f est/s offered)\n",
		olr.Requests, st.ok, st.degraded, st.shed, float64(olr.Requests)/elapsed.Seconds())
	for r, n := range st.reasons {
		fmt.Printf("  reason %-12s %d\n", r, n)
	}
	fmt.Printf("max queue depth %d (bound %d), max shed latency %.2fms (budget %.2fms)\n",
		maxDepth, int64(shedQueue), olr.MaxShedLatencyMs, olr.BudgetMs)
	fmt.Printf("GMQ: full model %.3f, degraded answers %.3f\n", fullGMQ, olr.DegradedGMQ)

	// Acceptance: bounded queue, sheds within budget, both ladder rungs
	// exercised, healthy and byte-identical afterwards (checked above).
	// The depth slack covers arrivals sampled between their reservation and
	// its rollback; the latency slack covers timer-wakeup scheduling noise.
	if maxDepth > shedQueue+int64(serveClients)*8 {
		return fmt.Errorf("overload: queue depth %d grew past the %d bound", maxDepth, int64(shedQueue))
	}
	if st.maxShedLat > budget+250*time.Millisecond {
		return fmt.Errorf("overload: shed response took %v, budget %v", st.maxShedLat, budget)
	}
	if st.shed == 0 {
		return fmt.Errorf("overload: no requests shed at 2x saturation — load shedding untested")
	}
	if st.degraded == 0 {
		return fmt.Errorf("overload: no degraded answers at 2x saturation — fallback ladder untested")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// measureSaturation drives the blocking estimate path closed-loop from
// serveClients goroutines for about d and returns completions per second,
// verifying every answer against the reference.
func measureSaturation(srv *serve.Server, preds []query.Predicate, want []float64, d time.Duration) (float64, error) {
	var wg sync.WaitGroup
	var total, bad int64
	var mu sync.Mutex
	start := time.Now()
	stop := start.Add(d)
	for w := 0; w < serveClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n, b int64
			for i := w; time.Now().Before(stop); i++ {
				j := i % len(preds)
				if got := srv.Estimate(preds[j]); got != want[j] {
					b++
				}
				n++
			}
			mu.Lock()
			total += n
			bad += b
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if bad > 0 {
		return 0, fmt.Errorf("saturation: %d estimates diverged from the reference", bad)
	}
	return float64(total) / elapsed.Seconds(), nil
}
