// Command driftviz emits the 2-d PCA projections the paper uses to
// visualize predicate workloads (§2, Figures 1/5/7) as CSV on stdout:
// one row per predicate with its workload label and PCA coordinates.
//
// Usage:
//
//	driftviz -dataset prsa -workloads w1,w2,w3,w4,w5 -n 200 > points.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"warper/internal/dataset"
	"warper/internal/mathx"
	"warper/internal/query"
	"warper/internal/workload"
)

func main() {
	var (
		ds    = flag.String("dataset", "prsa", "dataset: higgs, prsa or poker")
		specs = flag.String("workloads", "w1,w2,w3,w4,w5", "comma-separated workload specs")
		n     = flag.Int("n", 200, "predicates per workload")
		rows  = flag.Int("rows", 6000, "dataset rows")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var tbl *dataset.Table
	switch *ds {
	case "higgs":
		tbl = dataset.Higgs(*rows, rng)
	case "prsa":
		tbl = dataset.PRSA(*rows, rng)
	case "poker":
		tbl = dataset.Poker(*rows, rng)
	default:
		fmt.Fprintln(os.Stderr, "unknown dataset", *ds)
		os.Exit(2)
	}
	sch := query.SchemaOf(tbl)
	opts := workload.Options{MinConstrained: 1, MaxConstrained: 2}

	type labeled struct {
		spec string
		pred query.Predicate
	}
	var all []labeled
	for _, spec := range strings.Split(*specs, ",") {
		spec = strings.TrimSpace(spec)
		g := workload.Parse(spec, tbl, sch, opts)
		for _, p := range workload.Generate(g, *n, rng) {
			all = append(all, labeled{spec, p})
		}
	}
	d := sch.FeatureDim()
	X := mathx.NewMatrix(len(all), d)
	for i, lp := range all {
		copy(X.Data[i*d:(i+1)*d], lp.pred.Featurize(sch))
	}
	pca := mathx.FitPCA(X, 2)

	fmt.Println("workload,x,y")
	for i, lp := range all {
		z := pca.Project(X.Row(i))
		fmt.Printf("%s,%.6f,%.6f\n", lp.spec, z[0], z[1])
	}
}
