// Command warperlint runs the project's static-analysis suite (package
// internal/lint) over the module: determinism of the algorithm packages,
// panic-freedom of the serving path, lock hygiene in internal/serve,
// dropped-error detection everywhere, and the module-wide call-graph
// rules — hot-path allocation-freedom, atomic-field discipline, goroutine
// exit paths, and lock-order acyclicity. It exits non-zero when any
// diagnostic survives //lint:allow suppression, so it can gate
// scripts/check.sh and CI.
//
// Usage:
//
//	warperlint [-rules] [-rule name] [-json] [./... | dir ...]
//
// ./... (the default) lints the whole module. A directory argument lints
// just that package directory — useful for spot-checking a fixture:
//
//	warperlint internal/lint/testdata/src/panicfree/ce
//
// -rule runs a single analyzer by name; -json emits diagnostics as a JSON
// array on stdout (CI uploads it as an artifact). Load and analysis
// durations are logged to stderr either way. Run from anywhere inside the
// module.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"warper/internal/lint"
)

// jsonDiagnostic is the machine-readable wire form of one diagnostic.
type jsonDiagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

func main() {
	rules := flag.Bool("rules", false, "list the analyzers and exit")
	rule := flag.String("rule", "", "run only the named analyzer")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	flag.Parse()

	if *rules {
		for _, a := range lint.All() {
			kind := "per-package"
			if a.ModuleWide() {
				kind = "module-wide (call graph)"
			}
			fmt.Printf("%-16s %-24s scope: %s\n", a.Name, kind, a.Scope())
			fmt.Printf("%-16s %s\n", "", a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *rule != "" {
		a := lint.ByName(*rule)
		if a == nil {
			fmt.Fprintf(os.Stderr, "warperlint: unknown rule %q (see -rules)\n", *rule)
			os.Exit(2)
		}
		analyzers = []*lint.Analyzer{a}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "warperlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "warperlint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	t0 := time.Now()
	var pkgs []*lint.Package
	for _, arg := range args {
		if arg == "./..." {
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(os.Stderr, "warperlint:", err)
				os.Exit(2)
			}
			pkgs = append(pkgs, all...)
			continue
		}
		abs, err := filepath.Abs(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "warperlint:", err)
			os.Exit(2)
		}
		// The synthetic import path ends in the directory's base name, so
		// per-package analyzer scoping works the same as in a module load.
		pkg, err := loader.LoadDir("dir/"+filepath.Base(abs), abs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "warperlint:", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, pkg)
	}
	loadDur := time.Since(t0)

	t1 := time.Now()
	diags := lint.RunAnalyzers(pkgs, analyzers)
	fmt.Fprintf(os.Stderr, "warperlint: loaded %d package(s) in %s, analyzed in %s\n",
		len(pkgs), loadDur.Round(time.Millisecond), time.Since(t1).Round(time.Millisecond))

	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Rule:    d.Rule,
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "warperlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "warperlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
