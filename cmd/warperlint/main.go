// Command warperlint runs the project's static-analysis suite (package
// internal/lint) over the module: determinism of the algorithm packages,
// panic-freedom of the serving path, lock hygiene in internal/serve, and
// dropped-error detection everywhere. It exits non-zero when any
// diagnostic survives //lint:allow suppression, so it can gate
// scripts/check.sh and CI.
//
// Usage:
//
//	warperlint [-rules] [./... | dir ...]
//
// ./... (the default) lints the whole module. A directory argument lints
// just that package directory — useful for spot-checking a fixture:
//
//	warperlint internal/lint/testdata/src/panicfree/ce
//
// Run from anywhere inside the module.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"warper/internal/lint"
)

func main() {
	rules := flag.Bool("rules", false, "list the analyzers and exit")
	flag.Parse()

	if *rules {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "warperlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "warperlint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		if arg == "./..." {
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(os.Stderr, "warperlint:", err)
				os.Exit(2)
			}
			pkgs = append(pkgs, all...)
			continue
		}
		abs, err := filepath.Abs(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "warperlint:", err)
			os.Exit(2)
		}
		// The synthetic import path ends in the directory's base name, so
		// per-package analyzer scoping works the same as in a module load.
		pkg, err := loader.LoadDir("dir/"+filepath.Base(abs), abs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "warperlint:", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := lint.RunAnalyzers(pkgs, lint.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "warperlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
