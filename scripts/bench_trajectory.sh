#!/usr/bin/env bash
# Merge the repo's BENCH_*.json benchmark reports into one trajectory
# table: every benchmark from every report, with the relative move where
# the same benchmark appears in several reports. `make bench` runs this
# after regenerating BENCH_PR4.json; pass explicit report paths to compare
# a subset.
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./cmd/warperbench -trajectory "$@"
