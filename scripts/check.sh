#!/usr/bin/env sh
# Tier-1 verification flow: build, vet, warperlint, full test suite, a
# module-wide race pass (training-heavy tests skip themselves under -short),
# and the fault-injected chaos soak. Mirrors `make check` for environments
# without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go run ./cmd/warperlint ./..."
go run ./cmd/warperlint ./...

echo "== go test ./..."
go test ./...

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== chaos (WARPER_CHAOS=1 fault-injected soak)"
WARPER_CHAOS=1 go test -race -count=1 -run 'Chaos|Faulty|Degraded' \
	./internal/serve ./internal/resilience ./internal/warper

echo "OK"
