#!/usr/bin/env sh
# Tier-1 verification flow: build, vet, warperlint, full test suite, a
# module-wide race pass (training-heavy tests skip themselves under -short),
# and the fault-injected chaos soak. Mirrors `make check` for environments
# without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

# The JSON report lands in warperlint.json for the CI artifact upload;
# warperlint logs its load/analyze durations to stderr either way. The
# file is written even when diagnostics fail the run, so the artifact
# shows what fired.
echo "== go run ./cmd/warperlint -json ./... (report: warperlint.json)"
go run ./cmd/warperlint -json ./... > warperlint.json

echo "== go test ./..."
go test ./...

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== chaos (WARPER_CHAOS=1 fault-injected + overload soak)"
mkdir -p artifacts
WARPER_CHAOS=1 WARPER_EVENTS_OUT="$(pwd)/artifacts/EVENTS_chaos.json" \
	go test -race -count=1 -run 'Chaos|Faulty|Degraded|Overload' \
	./internal/serve ./internal/resilience ./internal/warper

# The committed estimate-cache and binary-protocol benchmark reports
# (make bench-serve) ride along with the CI artifact upload when present.
if [ -f BENCH_PR9.json ]; then
	cp BENCH_PR9.json artifacts/
fi
if [ -f BENCH_PR10.json ]; then
	cp BENCH_PR10.json artifacts/
fi

echo "OK"
