#!/usr/bin/env sh
# Tier-1 verification flow: build, vet, full test suite, then the race
# detector over the concurrency-sensitive packages (HTTP serving + metrics
# registry). Mirrors `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/serve/... ./internal/obs/..."
go test -race ./internal/serve/... ./internal/obs/...

echo "OK"
