#!/usr/bin/env bash
# Tier-2 benchmarks. Two suites:
#
#   bench.sh micro  [...]   compute-core micro-benchmarks (nn train step,
#                           gbt fit, kernel solve, one adaptation period)
#                           → BENCH_PR4.json
#   bench.sh serve  [...]   concurrent /estimate serving benchmark: 8
#                           clients against the single-lock baseline, the
#                           replica pool, and the micro-batching coalescer,
#                           every answer checked byte-identical
#                           → BENCH_PR5.json
#   bench.sh overload [...] overload acceptance: open-loop load at 2x
#                           measured saturation through admission control,
#                           the health machine and the fallback ladder
#                           → BENCH_PR8.json
#
# With no suite argument, micro runs (the historical default). Remaining
# arguments pass through: -quick for the CI smoke variant, -out for the
# output path.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=-micro
case "${1:-}" in
micro)
	shift
	;;
serve)
	mode=-servebench
	shift
	;;
overload)
	mode="-servebench -overload"
	shift
	;;
esac
# shellcheck disable=SC2086 # mode is intentionally word-split (flag list)
exec go run ./cmd/warperbench $mode "$@"
