#!/usr/bin/env bash
# Tier-2 micro-benchmarks for the compute core: nn train step, gbt fit,
# kernel solve, and an end-to-end adaptation period. Writes BENCH_PR4.json
# (ns/op, B/op, allocs/op, samples/sec, and reference-vs-optimized speedup
# ratios). Pass -quick for the single-iteration CI smoke variant, and -out
# to change the output path.
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./cmd/warperbench -micro "$@"
