#!/usr/bin/env bash
# Tier-2 benchmarks. Two suites:
#
#   bench.sh micro  [...]   compute-core micro-benchmarks (nn train step,
#                           gbt fit, kernel solve, one adaptation period)
#                           → BENCH_PR4.json
#   bench.sh serve  [...]   concurrent /estimate serving benchmark: 8
#                           clients against the single-lock baseline, the
#                           replica pool, and the micro-batching coalescer,
#                           every answer checked byte-identical
#                           → BENCH_PR5.json
#
# With no suite argument, micro runs (the historical default). Remaining
# arguments pass through: -quick for the CI smoke variant, -out for the
# output path.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=-micro
case "${1:-}" in
micro)
	shift
	;;
serve)
	mode=-servebench
	shift
	;;
esac
exec go run ./cmd/warperbench "$mode" "$@"
