#!/usr/bin/env bash
# Tier-2 benchmarks. Two suites:
#
#   bench.sh micro  [...]   compute-core micro-benchmarks (nn train step,
#                           gbt fit, kernel solve, one adaptation period)
#                           → BENCH_PR4.json
#   bench.sh serve  [...]   concurrent /estimate serving benchmark: 8
#                           clients against the single-lock baseline, the
#                           replica pool, and the micro-batching coalescer,
#                           every answer checked byte-identical
#                           → BENCH_PR5.json
#   bench.sh overload [...] overload acceptance: open-loop load at 2x
#                           measured saturation through admission control,
#                           the health machine and the fallback ladder
#                           → BENCH_PR8.json
#   bench.sh zipf   [...]   estimate-cache benchmark: Zipf(1.1)-skewed
#                           template workload against the cached and
#                           uncached server (1-CPU and GOMAXPROCS=2),
#                           hit/miss/invalidate micros, zero-alloc hit
#                           assert, byte-identity across a mid-run swap
#                           → BENCH_PR9.json
#   bench.sh wire   [...]   binary-protocol benchmark: the columnar
#                           /estimate/batch endpoint against scalar JSON
#                           over HTTP (uncached), zero-alloc batch assert,
#                           a GOMAXPROCS>=4 multi-core pass, byte-identity
#                           across a mid-run swap
#                           → BENCH_PR10.json
#
# With no suite argument, micro runs (the historical default). Remaining
# arguments pass through: -quick for the CI smoke variant, -out for the
# output path.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=-micro
case "${1:-}" in
micro)
	shift
	;;
serve)
	mode=-servebench
	shift
	;;
overload)
	mode="-servebench -overload"
	shift
	;;
zipf)
	mode="-servebench -zipf 1.1"
	shift
	;;
wire)
	mode="-servebench -binary"
	shift
	;;
esac
# shellcheck disable=SC2086 # mode is intentionally word-split (flag list)
exec go run ./cmd/warperbench $mode "$@"
