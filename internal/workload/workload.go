// Package workload implements the five predicate-generation methods from
// Table 5 of the paper (w1–w5), mixtures of them (the paper's "w12/345"
// notation means training on a w1+w2 mixture and drifting to a w3+w4+w5
// mixture), and drift schedules for the continuous-drift experiments.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"warper/internal/dataset"
	"warper/internal/query"
)

// Generator produces random predicates from one workload distribution.
type Generator interface {
	Gen(rng *rand.Rand) query.Predicate
	Name() string
}

// Options tunes the shared behaviour of the w1–w5 generators.
type Options struct {
	// MaxConstrained caps how many columns a predicate constrains; the rest
	// span the full column range (§2). Defaults to 3.
	MaxConstrained int
	// MinConstrained floors the constrained-column count. Defaults to 1.
	MinConstrained int
}

func (o Options) withDefaults() Options {
	if o.MaxConstrained <= 0 {
		o.MaxConstrained = 3
	}
	if o.MinConstrained <= 0 {
		o.MinConstrained = 1
	}
	if o.MinConstrained > o.MaxConstrained {
		o.MinConstrained = o.MaxConstrained
	}
	return o
}

// base carries the table, schema and options shared by all generators.
type base struct {
	tbl  *dataset.Table
	sch  *query.Schema
	opts Options
}

// pickCols selects which columns this predicate constrains.
func (b *base) pickCols(rng *rand.Rand) []int {
	d := b.sch.NumCols()
	k := b.opts.MinConstrained
	if span := b.opts.MaxConstrained - b.opts.MinConstrained; span > 0 {
		k += rng.Intn(span + 1)
	}
	if k > d {
		k = d
	}
	perm := rng.Perm(d)
	cols := perm[:k]
	sort.Ints(cols)
	return cols
}

// W1 draws {low, high} from r(C) uniformly at random.
type W1 struct{ base }

// Gen implements Generator.
func (w *W1) Gen(rng *rand.Rand) query.Predicate {
	p := query.NewFullRange(w.sch)
	for _, c := range w.pickCols(rng) {
		lo := w.sch.Mins[c] + rng.Float64()*(w.sch.Maxs[c]-w.sch.Mins[c])
		hi := w.sch.Mins[c] + rng.Float64()*(w.sch.Maxs[c]-w.sch.Mins[c])
		p.SetRange(c, lo, hi)
	}
	return p.Normalize(w.sch)
}

// Name implements Generator.
func (w *W1) Name() string { return "w1" }

// W2 draws bounds from a logarithmic transform of r(C): uniform in log-space,
// which concentrates predicates near the low end of each column.
type W2 struct{ base }

// Gen implements Generator.
func (w *W2) Gen(rng *rand.Rand) query.Predicate {
	p := query.NewFullRange(w.sch)
	for _, c := range w.pickCols(rng) {
		lo := w.logDraw(c, rng)
		hi := w.logDraw(c, rng)
		p.SetRange(c, lo, hi)
	}
	return p.Normalize(w.sch)
}

func (w *W2) logDraw(c int, rng *rand.Rand) float64 {
	mn, mx := w.sch.Mins[c], w.sch.Maxs[c]
	off := 1 - mn // shift so the range starts at 1 for the log transform
	llo, lhi := math.Log(mn+off), math.Log(mx+off)
	u := llo + rng.Float64()*(lhi-llo)
	return math.Exp(u) - off
}

// Name implements Generator.
func (w *W2) Name() string { return "w2" }

// W3 centers each range on a uniformly sampled data row and adds a random
// width drawn from r(C) — predicates follow the data distribution.
type W3 struct{ base }

// Gen implements Generator.
func (w *W3) Gen(rng *rand.Rand) query.Predicate {
	p := query.NewFullRange(w.sch)
	r := rng.Intn(w.tbl.NumRows())
	for _, c := range w.pickCols(rng) {
		center := w.tbl.Cols[c].Vals[r]
		width := rng.Float64() * (w.sch.Maxs[c] - w.sch.Mins[c]) * 0.5
		p.SetRange(c, center-width/2, center+width/2)
	}
	return p.Normalize(w.sch)
}

// Name implements Generator.
func (w *W3) Name() string { return "w3" }

// W4 sets bounds to min(Ĉ), max(Ĉ) over a sample of k rows — range width
// grows with the sample size, covering the data's dense regions.
type W4 struct {
	base
	// MaxSample caps the per-predicate row sample; defaults to 50.
	MaxSample int
}

// Gen implements Generator.
func (w *W4) Gen(rng *rand.Rand) query.Predicate {
	maxS := w.MaxSample
	if maxS <= 0 {
		maxS = 50
	}
	p := query.NewFullRange(w.sch)
	k := 2 + rng.Intn(maxS-1)
	n := w.tbl.NumRows()
	for _, c := range w.pickCols(rng) {
		vals := w.tbl.Cols[c].Vals
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < k; i++ {
			v := vals[rng.Intn(n)]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		p.SetRange(c, lo, hi)
	}
	return p.Normalize(w.sch)
}

// Name implements Generator.
func (w *W4) Name() string { return "w4" }

// W5 centers ranges on a row sampled stratified by value frequency (rare
// values are as likely as common ones), plus a random width — predicates
// over-sample the tails of the data.
type W5 struct {
	base
	strata map[int][][]int // column → frequency strata → row indices
	// builtVersion/builtRows invalidate the cached strata when the
	// underlying table mutates (data drifts re-shape the rows).
	builtVersion int
	builtRows    int
}

const w5Strata = 8

func (w *W5) buildStrata() {
	if w.strata != nil && w.builtVersion == w.tbl.Version && w.builtRows == w.tbl.NumRows() {
		return
	}
	w.builtVersion = w.tbl.Version
	w.builtRows = w.tbl.NumRows()
	w.strata = make(map[int][][]int)
	n := w.tbl.NumRows()
	for c := 0; c < w.sch.NumCols(); c++ {
		vals := w.tbl.Cols[c].Vals
		// Quantize values so real columns get meaningful frequencies.
		span := w.sch.Maxs[c] - w.sch.Mins[c]
		keyOf := func(v float64) int {
			if span <= 0 {
				return 0
			}
			k := int((v - w.sch.Mins[c]) / span * 64)
			if k > 63 {
				k = 63
			}
			return k
		}
		freq := make(map[int]int)
		for i := 0; i < n; i++ {
			freq[keyOf(vals[i])]++
		}
		// Order keys by frequency, carve into strata of roughly equal key
		// counts.
		keys := make([]int, 0, len(freq))
		for k := range freq {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return freq[keys[a]] < freq[keys[b]] })
		stratumOf := make(map[int]int, len(keys))
		for i, k := range keys {
			stratumOf[k] = i * w5Strata / len(keys)
		}
		strata := make([][]int, w5Strata)
		for i := 0; i < n; i++ {
			s := stratumOf[keyOf(vals[i])]
			strata[s] = append(strata[s], i)
		}
		w.strata[c] = strata
	}
}

// Gen implements Generator.
func (w *W5) Gen(rng *rand.Rand) query.Predicate {
	w.buildStrata()
	p := query.NewFullRange(w.sch)
	for _, c := range w.pickCols(rng) {
		strata := w.strata[c]
		var rows []int
		for tries := 0; tries < 16 && len(rows) == 0; tries++ {
			rows = strata[rng.Intn(len(strata))]
		}
		if len(rows) == 0 {
			continue
		}
		center := w.tbl.Cols[c].Vals[rows[rng.Intn(len(rows))]]
		width := rng.Float64() * (w.sch.Maxs[c] - w.sch.Mins[c]) * 0.5
		p.SetRange(c, center-width/2, center+width/2)
	}
	return p.Normalize(w.sch)
}

// Name implements Generator.
func (w *W5) Name() string { return "w5" }

// New constructs a single wᵢ generator ("w1".."w5") over the table.
func New(kind string, tbl *dataset.Table, sch *query.Schema, opts Options) Generator {
	b := base{tbl: tbl, sch: sch, opts: opts.withDefaults()}
	switch kind {
	case "w1":
		return &W1{b}
	case "w2":
		return &W2{b}
	case "w3":
		return &W3{b}
	case "w4":
		return &W4{base: b}
	case "w5":
		return &W5{base: b}
	default:
		panic("workload: unknown generator " + kind)
	}
}

// Mixture draws from component generators uniformly at random, modelling the
// paper's combined workloads like "w12" (uniform mix of w1 and w2).
type Mixture struct {
	Gens []Generator
	name string
}

// NewMixture builds a uniform mixture.
func NewMixture(gens ...Generator) *Mixture {
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.Name()
	}
	return &Mixture{Gens: gens, name: "mix(" + strings.Join(names, "+") + ")"}
}

// Gen implements Generator.
func (m *Mixture) Gen(rng *rand.Rand) query.Predicate {
	return m.Gens[rng.Intn(len(m.Gens))].Gen(rng)
}

// Name implements Generator.
func (m *Mixture) Name() string { return m.name }

// Parse builds a generator from the paper's compact notation: "w1" is a
// single method, "w12" the uniform mixture of w1 and w2, "w345" the mixture
// of w3, w4, w5, and so on.
func Parse(spec string, tbl *dataset.Table, sch *query.Schema, opts Options) Generator {
	if !strings.HasPrefix(spec, "w") || len(spec) < 2 {
		panic("workload: bad spec " + spec)
	}
	digits := spec[1:]
	if len(digits) == 1 {
		return New(spec, tbl, sch, opts)
	}
	var gens []Generator
	for _, d := range digits {
		if d < '1' || d > '5' {
			panic(fmt.Sprintf("workload: bad spec %q", spec))
		}
		gens = append(gens, New("w"+string(d), tbl, sch, opts))
	}
	return NewMixture(gens...)
}

// Generate draws n predicates from g.
func Generate(g Generator, n int, rng *rand.Rand) []query.Predicate {
	out := make([]query.Predicate, n)
	for i := range out {
		out[i] = g.Gen(rng)
	}
	return out
}
