package workload

import (
	"math/rand"

	"warper/internal/dataset"
)

// Phase is one stretch of a drift schedule: which workload generates the
// incoming queries, for how many adaptation periods, and an optional data
// mutation applied once when the phase begins (for combined data+workload
// drifts such as Drift C in §4.2).
type Phase struct {
	Gen     Generator
	Periods int
	// OnEnter, if non-nil, mutates the table when the phase starts.
	OnEnter func(t *dataset.Table, rng *rand.Rand)
}

// Schedule sequences phases over adaptation periods, reproducing the drift
// shapes of Figure 2: one-shot drifts, persistent drifts, alternating drifts
// and combinations. After the last phase the final generator persists.
type Schedule struct {
	Phases []Phase
}

// NewSchedule builds a schedule from phases.
func NewSchedule(phases ...Phase) *Schedule { return &Schedule{Phases: phases} }

// PhaseAt returns the phase active at the given zero-based period and whether
// that period is the phase's first (so OnEnter should fire).
func (s *Schedule) PhaseAt(period int) (Phase, bool) {
	acc := 0
	for _, p := range s.Phases {
		if period < acc+p.Periods {
			return p, period == acc
		}
		acc += p.Periods
	}
	last := s.Phases[len(s.Phases)-1]
	return last, false
}

// TotalPeriods returns the sum of phase lengths.
func (s *Schedule) TotalPeriods() int {
	n := 0
	for _, p := range s.Phases {
		n += p.Periods
	}
	return n
}
