package workload

import (
	"math"
	"math/rand"
	"testing"

	"warper/internal/dataset"
	"warper/internal/query"
)

func testTable(t *testing.T) (*dataset.Table, *query.Schema) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	tbl := dataset.PRSA(2000, rng)
	return tbl, query.SchemaOf(tbl)
}

func TestAllGeneratorsProduceValidPredicates(t *testing.T) {
	tbl, sch := testTable(t)
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []string{"w1", "w2", "w3", "w4", "w5"} {
		g := New(kind, tbl, sch, Options{})
		if g.Name() != kind {
			t.Errorf("Name = %q, want %q", g.Name(), kind)
		}
		for i := 0; i < 200; i++ {
			p := g.Gen(rng)
			if p.Dim() != sch.NumCols() {
				t.Fatalf("%s: dim = %d", kind, p.Dim())
			}
			for c := 0; c < p.Dim(); c++ {
				if p.Lows[c] > p.Highs[c] {
					t.Fatalf("%s: inverted range at col %d: [%v,%v]", kind, c, p.Lows[c], p.Highs[c])
				}
				if p.Lows[c] < sch.Mins[c]-1e-9 || p.Highs[c] > sch.Maxs[c]+1e-9 {
					t.Fatalf("%s: out-of-range bounds at col %d", kind, c)
				}
			}
		}
	}
}

func TestConstrainedColumnCounts(t *testing.T) {
	tbl, sch := testTable(t)
	rng := rand.New(rand.NewSource(2))
	g := New("w1", tbl, sch, Options{MinConstrained: 2, MaxConstrained: 2})
	for i := 0; i < 50; i++ {
		p := g.Gen(rng)
		constrained := 0
		for c := 0; c < p.Dim(); c++ {
			if p.Lows[c] > sch.Mins[c] || p.Highs[c] < sch.Maxs[c] {
				constrained++
			}
		}
		// w1 draws bounds uniformly, so both bounds exactly hitting the
		// column limits has probability ~0; require exactly 2.
		if constrained != 2 {
			t.Fatalf("constrained %d columns, want 2", constrained)
		}
	}
}

func TestW2SkewsLow(t *testing.T) {
	// On a column with a wide positive range, w2 bound midpoints should sit
	// far below w1's.
	tbl, sch := testTable(t)
	rng := rand.New(rand.NewSource(3))
	opts := Options{MinConstrained: 1, MaxConstrained: 1}
	mid := func(g Generator) float64 {
		var s float64
		var n int
		for i := 0; i < 2000; i++ {
			p := g.Gen(rng)
			c := tbl.ColIndex("pm25") // wide, positive range
			if p.Lows[c] > sch.Mins[c] || p.Highs[c] < sch.Maxs[c] {
				s += (p.Lows[c] + p.Highs[c]) / 2
				n++
			}
		}
		return s / float64(n)
	}
	m1 := mid(New("w1", tbl, sch, opts))
	m2 := mid(New("w2", tbl, sch, opts))
	if m2 >= m1*0.8 {
		t.Errorf("w2 midpoint %v not clearly below w1 midpoint %v", m2, m1)
	}
}

func TestW3CentersOnData(t *testing.T) {
	// w3 ranges should contain at least one actual data value far more often
	// than w1 on a skewed column.
	tbl, sch := testTable(t)
	rng := rand.New(rand.NewSource(4))
	opts := Options{MinConstrained: 1, MaxConstrained: 1}
	hitRate := func(g Generator) float64 {
		hits := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			p := g.Gen(rng)
			row := make([]float64, sch.NumCols())
			found := false
			for r := 0; r < tbl.NumRows() && !found; r++ {
				if p.Matches(tbl.Row(r, row)) {
					found = true
				}
			}
			if found {
				hits++
			}
		}
		return float64(hits) / trials
	}
	h3 := hitRate(New("w3", tbl, sch, opts))
	if h3 < 0.9 {
		t.Errorf("w3 hit rate = %v, want >= 0.9 (ranges centered on rows)", h3)
	}
}

func TestW4WidthGrowsWithSample(t *testing.T) {
	tbl, sch := testTable(t)
	rng := rand.New(rand.NewSource(5))
	g := New("w4", tbl, sch, Options{MinConstrained: 1, MaxConstrained: 1}).(*W4)
	g.MaxSample = 3
	narrow := avgWidth(g, sch, rng, 500)
	g2 := New("w4", tbl, sch, Options{MinConstrained: 1, MaxConstrained: 1}).(*W4)
	g2.MaxSample = 200
	wide := avgWidth(g2, sch, rng, 500)
	if narrow >= wide {
		t.Errorf("w4 width with k<=3 (%v) should be below k<=200 (%v)", narrow, wide)
	}
}

func avgWidth(g Generator, sch *query.Schema, rng *rand.Rand, n int) float64 {
	var s float64
	var cnt int
	for i := 0; i < n; i++ {
		p := g.Gen(rng)
		for c := 0; c < p.Dim(); c++ {
			span := sch.Maxs[c] - sch.Mins[c]
			if span <= 0 {
				continue
			}
			w := (p.Highs[c] - p.Lows[c]) / span
			if w < 1-1e-9 { // constrained column
				s += w
				cnt++
			}
		}
	}
	return s / float64(cnt)
}

func TestMixtureDrawsFromAllComponents(t *testing.T) {
	tbl, sch := testTable(t)
	rng := rand.New(rand.NewSource(6))
	opts := Options{MinConstrained: 1, MaxConstrained: 1}
	m := NewMixture(New("w1", tbl, sch, opts), New("w3", tbl, sch, opts))
	if m.Name() != "mix(w1+w3)" {
		t.Errorf("Name = %q", m.Name())
	}
	// Just exercise generation; component choice is random.
	for i := 0; i < 100; i++ {
		p := m.Gen(rng)
		if p.Dim() != sch.NumCols() {
			t.Fatal("bad predicate from mixture")
		}
	}
}

func TestParseSpecs(t *testing.T) {
	tbl, sch := testTable(t)
	if g := Parse("w1", tbl, sch, Options{}); g.Name() != "w1" {
		t.Errorf("Parse(w1) = %q", g.Name())
	}
	if g := Parse("w12", tbl, sch, Options{}); g.Name() != "mix(w1+w2)" {
		t.Errorf("Parse(w12) = %q", g.Name())
	}
	if g := Parse("w345", tbl, sch, Options{}); g.Name() != "mix(w3+w4+w5)" {
		t.Errorf("Parse(w345) = %q", g.Name())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad spec")
		}
	}()
	Parse("w9", tbl, sch, Options{})
}

func TestGenerateCount(t *testing.T) {
	tbl, sch := testTable(t)
	rng := rand.New(rand.NewSource(7))
	ps := Generate(New("w1", tbl, sch, Options{}), 25, rng)
	if len(ps) != 25 {
		t.Errorf("Generate returned %d", len(ps))
	}
}

func TestScheduleSequencing(t *testing.T) {
	tbl, sch := testTable(t)
	opts := Options{}
	g1 := New("w1", tbl, sch, opts)
	g2 := New("w2", tbl, sch, opts)
	entered := 0
	sched := NewSchedule(
		Phase{Gen: g1, Periods: 3},
		Phase{Gen: g2, Periods: 2, OnEnter: func(*dataset.Table, *rand.Rand) { entered++ }},
	)
	if sched.TotalPeriods() != 5 {
		t.Errorf("TotalPeriods = %d", sched.TotalPeriods())
	}
	p, first := sched.PhaseAt(0)
	if p.Gen.Name() != "w1" || !first {
		t.Error("period 0 wrong")
	}
	p, first = sched.PhaseAt(2)
	if p.Gen.Name() != "w1" || first {
		t.Error("period 2 wrong")
	}
	p, first = sched.PhaseAt(3)
	if p.Gen.Name() != "w2" || !first {
		t.Error("period 3 wrong")
	}
	// Past the end, the last phase persists without re-entering.
	p, first = sched.PhaseAt(99)
	if p.Gen.Name() != "w2" || first {
		t.Error("period 99 wrong")
	}
	if entered != 0 {
		t.Error("OnEnter should not fire from PhaseAt")
	}
}

func TestW5OversamplesRareValues(t *testing.T) {
	// Build a table where value 0 dominates and value 100 is rare; w5 should
	// center on the rare value far more often than its base rate.
	vals := make([]float64, 1000)
	for i := 900; i < 1000; i++ {
		vals[i] = 100
	}
	tbl := dataset.NewTable("skew", &dataset.Column{Name: "x", Type: dataset.Real, Vals: vals})
	sch := query.SchemaOf(tbl)
	rng := rand.New(rand.NewSource(8))
	g := New("w5", tbl, sch, Options{MinConstrained: 1, MaxConstrained: 1})
	nearRare := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		p := g.Gen(rng)
		mid := (p.Lows[0] + p.Highs[0]) / 2
		if math.Abs(mid-100) < 30 {
			nearRare++
		}
	}
	// Base rate of the rare value is 10%; stratified sampling should push it
	// well above that.
	if float64(nearRare)/trials < 0.25 {
		t.Errorf("w5 centered near rare value only %d/%d times", nearRare, trials)
	}
}
