package gbt

import (
	"math/rand"
	"testing"
)

// Paper Table 3 ensemble shape for LM-gbt: 120 stages, rate 0.05, depth 4,
// min leaf 3, on an 18-feature query workload.
func benchData() ([][]float64, []float64, Config) {
	rng := rand.New(rand.NewSource(7))
	X, y := randData(rng, 1000, 18, 0)
	return X, y, Config{Stages: 120, Rate: 0.05, MaxDepth: 4, MinLeafSize: 3}
}

// BenchmarkGBTFitPresorted is the optimized path: transpose + presort once,
// stable partitions and prefix-sum scans per node.
func BenchmarkGBTFitPresorted(b *testing.B) {
	X, y, cfg := benchData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(X, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBTFitReference is the frozen sort-per-node baseline.
func BenchmarkGBTFitReference(b *testing.B) {
	X, y, cfg := benchData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReferenceFit(X, y, cfg)
	}
}
