package gbt

import (
	"math"
	"math/rand"
	"testing"
)

func TestTreeFitsStepFunction(t *testing.T) {
	// y = 0 for x<0.5, 10 for x>=0.5 — one split suffices.
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x := float64(i) / 100
		X = append(X, []float64{x})
		if x < 0.5 {
			y = append(y, 0)
		} else {
			y = append(y, 10)
		}
	}
	tree, err := FitTree(X, y, TreeConfig{MaxDepth: 2, MinLeafSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0.1}); math.Abs(got) > 1e-9 {
		t.Errorf("predict(0.1) = %v, want 0", got)
	}
	if got := tree.Predict([]float64{0.9}); math.Abs(got-10) > 1e-9 {
		t.Errorf("predict(0.9) = %v, want 10", got)
	}
}

func TestTreeSelectsInformativeFeature(t *testing.T) {
	// Feature 0 is noise; feature 1 drives the target.
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := rng.Float64()
		b := rng.Float64()
		X = append(X, []float64{a, b})
		if b > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	tree, err := FitTree(X, y, TreeConfig{MaxDepth: 1, MinLeafSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tree.root.Feature != 1 {
		t.Errorf("root split on feature %d, want 1", tree.root.Feature)
	}
	if math.Abs(tree.root.Threshold-0.5) > 0.05 {
		t.Errorf("threshold = %v, want ~0.5", tree.root.Threshold)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		x := rng.Float64()
		X = append(X, []float64{x})
		y = append(y, math.Sin(10*x))
	}
	for _, depth := range []int{0, 1, 2, 4} {
		tree, err := FitTree(X, y, TreeConfig{MaxDepth: depth, MinLeafSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.Depth(); got > depth {
			t.Errorf("depth = %d, limit %d", got, depth)
		}
	}
}

func TestTreeMinLeafSize(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 0, 10, 10}
	tree, err := FitTree(X, y, TreeConfig{MaxDepth: 5, MinLeafSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Only 4 samples with min leaf 3 → no split possible.
	if tree.root.Feature != -1 {
		t.Error("tree split despite MinLeafSize")
	}
	if math.Abs(tree.root.Value-5) > 1e-9 {
		t.Errorf("leaf value = %v, want 5", tree.root.Value)
	}
}

func TestTreeConstantTargetIsLeaf(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{7, 7, 7, 7}
	tree, err := FitTree(X, y, TreeConfig{MaxDepth: 5, MinLeafSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Errorf("constant target produced %d leaves", tree.NumLeaves())
	}
}

func TestBoostingReducesTrainError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a := rng.Float64()
		b := rng.Float64()
		X = append(X, []float64{a, b})
		y = append(y, 3*a*a+math.Sin(6*b))
	}
	mse := func(r *Regressor) float64 {
		var s float64
		for i := range X {
			d := r.Predict(X[i]) - y[i]
			s += d * d
		}
		return s / float64(len(X))
	}
	weak, err := Fit(X, y, Config{Stages: 1, Rate: 0.1, MaxDepth: 3, MinLeafSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Fit(X, y, Config{Stages: 200, Rate: 0.1, MaxDepth: 3, MinLeafSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mse(strong) >= mse(weak)/4 {
		t.Errorf("boosting barely helped: weak=%v strong=%v", mse(weak), mse(strong))
	}
}

func TestBoostingGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(a, b float64) float64 { return 2*a - b }
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		y = append(y, f(a, b))
	}
	r, err := Fit(X, y, Config{Stages: 300, Rate: 0.1, MaxDepth: 3, MinLeafSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for i := 0; i < 100; i++ {
		a, b := rng.Float64(), rng.Float64()
		d := r.Predict([]float64{a, b}) - f(a, b)
		s += d * d
	}
	if s/100 > 0.02 {
		t.Errorf("test MSE = %v, want < 0.02", s/100)
	}
}

func TestRegressorEmptyTrainingData(t *testing.T) {
	r, err := Fit(nil, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{1, 2}); got != 0 {
		t.Errorf("empty regressor predicts %v, want 0", got)
	}
}

func TestRegressorNumTrees(t *testing.T) {
	X := [][]float64{{0}, {1}}
	y := []float64{0, 1}
	r, err := Fit(X, y, Config{Stages: 7, Rate: 0.1, MaxDepth: 1, MinLeafSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumTrees() != 7 {
		t.Errorf("NumTrees = %d, want 7", r.NumTrees())
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, DefaultConfig()); err == nil {
		t.Error("Fit accepted mismatched lengths")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}, DefaultConfig()); err == nil {
		t.Error("Fit accepted ragged rows")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1, 2}, TreeConfig{MaxDepth: 1, MinLeafSize: 1}); err == nil {
		t.Error("FitTree accepted mismatched lengths")
	}
}
