package gbt

import "sort"

// This file freezes the original sort-per-node tree fitting as an equivalence
// oracle and benchmark baseline for the presorted grower in tree.go. The only
// change from the seed implementation is an explicit (value, index) tie-break
// in the per-node sort, which pins down the scan order the presorted path
// reproduces — with it, both implementations accumulate every prefix sum in
// the same order and fit byte-identical trees. It must not be optimized.

// ReferenceFitTree grows a regression tree by re-sorting the node's samples
// on every feature at every node. Inputs must be well-formed (callers
// validate); it is retained for tests and benchmarks only.
func ReferenceFitTree(X [][]float64, y []float64, cfg TreeConfig) *Tree {
	if cfg.MinLeafSize < 1 {
		cfg.MinLeafSize = 1
	}
	if len(y) == 0 {
		return &Tree{root: &treeNode{Feature: -1}}
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	return &Tree{root: referenceGrow(X, y, idx, cfg, 0)}
}

// ReferenceFit trains a boosted ensemble using ReferenceFitTree per stage.
func ReferenceFit(X [][]float64, y []float64, cfg Config) *Regressor {
	r := &Regressor{cfg: cfg}
	if len(y) == 0 {
		return r
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	r.base = mean

	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = mean
	}
	resid := make([]float64, len(y))
	tc := TreeConfig{MaxDepth: cfg.MaxDepth, MinLeafSize: cfg.MinLeafSize}
	for m := 0; m < cfg.Stages; m++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tree := ReferenceFitTree(X, resid, tc)
		r.trees = append(r.trees, tree)
		for i := range pred {
			pred[i] += cfg.Rate * tree.Predict(X[i])
		}
	}
	return r
}

func referenceMean(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func referenceGrow(X [][]float64, y []float64, idx []int, cfg TreeConfig, depth int) *treeNode {
	node := &treeNode{Feature: -1, Value: referenceMean(y, idx)}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeafSize {
		return node
	}
	feat, thr, gain := referenceBestSplit(X, y, idx, cfg.MinLeafSize)
	if feat < 0 || gain <= cfg.MinImpurement {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeafSize || len(right) < cfg.MinLeafSize {
		return node
	}
	node.Feature = feat
	node.Threshold = thr
	node.Left = referenceGrow(X, y, left, cfg, depth+1)
	node.Right = referenceGrow(X, y, right, cfg, depth+1)
	return node
}

func referenceBestSplit(X [][]float64, y []float64, idx []int, minLeaf int) (feature int, threshold, gain float64) {
	n := len(idx)
	if n < 2*minLeaf {
		return -1, 0, 0
	}
	var totalSum, totalSq float64
	for _, i := range idx {
		totalSum += y[i]
		totalSq += y[i] * y[i]
	}
	parentSSE := totalSq - totalSum*totalSum/float64(n)

	feature = -1
	d := len(X[idx[0]])
	order := make([]int, n)
	for f := 0; f < d; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool {
			va, vb := X[order[a]][f], X[order[b]][f]
			if va != vb {
				return va < vb
			}
			return order[a] < order[b]
		})
		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			i := order[k]
			leftSum += y[i]
			leftSq += y[i] * y[i]
			nl := k + 1
			nr := n - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			if X[order[k]][f] == X[order[k+1]][f] {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/float64(nl)) + (rightSq - rightSum*rightSum/float64(nr))
			g := parentSSE - sse
			if g > gain {
				gain = g
				feature = f
				threshold = 0.5 * (X[order[k]][f] + X[order[k+1]][f])
			}
		}
	}
	return feature, threshold, gain
}
