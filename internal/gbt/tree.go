// Package gbt implements gradient-boosted regression trees with squared
// loss. It backs the LM-gbt cardinality-estimator variant from §4.1.2 of the
// Warper paper (sklearn GradientBoostingRegressor in the original; this is a
// faithful reimplementation of the same algorithm). Tree ensembles cannot be
// fine-tuned, so the estimator built on this package re-trains from scratch
// on every update, exactly as the paper describes.
//
// Tree growth uses the presorted exact-greedy algorithm: feature indices are
// sorted once (by value, ties broken by sample index so results do not depend
// on sort stability), and node partitions keep each feature's order with a
// stable split instead of re-sorting per node. Split scans accumulate prefix
// sums in the same per-feature sorted order as the sort-per-node reference in
// reference.go, so fitted trees are byte-identical to it.
package gbt

import (
	"errors"
	"math"
	"sort"

	"warper/internal/parallel"
)

// treeNode is one node of a regression tree. Leaves have Feature == -1.
type treeNode struct {
	Feature   int // -1 for leaf
	Threshold float64
	Left      *treeNode
	Right     *treeNode
	Value     float64 // leaf prediction
}

// Tree is a single regression tree fit with exact greedy splits on SSE.
type Tree struct {
	root *treeNode
}

// TreeConfig controls regression-tree growth.
type TreeConfig struct {
	MaxDepth      int // maximum tree depth; 0 means a single leaf
	MinLeafSize   int // minimum samples in each child after a split
	MinImpurement float64
}

// parallelScanMin is the node size below which the per-feature split scans
// run serially; tiny nodes are not worth the dispatch overhead. The result is
// identical either way (per-feature bests are reduced in ascending feature
// order).
const parallelScanMin = 256

// grower holds the presorted state shared by every tree of an ensemble fit:
// column-major feature values, per-feature sorted index arrays, and the node
// sample list in original relative order (so leaf means and node totals
// accumulate in the same order as the reference implementation).
type grower struct {
	cols [][]float64 // cols[f][i] = X[i][f]
	y    []float64
	cfg  TreeConfig

	master [][]int // per-feature indices sorted by (value, index); never mutated
	ord    [][]int // working copy, stably partitioned during growth
	rows   []int   // node samples in original relative order
	rows0  []int   // 0..n-1, copied into rows before each tree
	tmp    []int   // partition scratch

	// Per-feature split-scan results for the current node.
	gains []float64
	thrs  []float64
}

func newGrower(X [][]float64, y []float64, cfg TreeConfig) *grower {
	if cfg.MinLeafSize < 1 {
		cfg.MinLeafSize = 1
	}
	n := len(y)
	d := 0
	if n > 0 {
		d = len(X[0])
	}
	g := &grower{y: y, cfg: cfg}
	g.cols = make([][]float64, d)
	for f := 0; f < d; f++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = X[i][f]
		}
		g.cols[f] = col
	}
	g.master = make([][]int, d)
	g.ord = make([][]int, d)
	for f := 0; f < d; f++ {
		m := make([]int, n)
		for i := range m {
			m[i] = i
		}
		col := g.cols[f]
		sort.Slice(m, func(a, b int) bool {
			va, vb := col[m[a]], col[m[b]]
			if va != vb {
				return va < vb
			}
			return m[a] < m[b]
		})
		g.master[f] = m
		g.ord[f] = make([]int, n)
	}
	g.rows0 = make([]int, n)
	for i := range g.rows0 {
		g.rows0[i] = i
	}
	g.rows = make([]int, n)
	g.tmp = make([]int, n)
	g.gains = make([]float64, d)
	g.thrs = make([]float64, d)
	return g
}

// fitTree grows one tree over the current targets in g.y, resetting the
// working index arrays from the presorted masters.
func (g *grower) fitTree() *Tree {
	for f := range g.ord {
		copy(g.ord[f], g.master[f])
	}
	copy(g.rows, g.rows0)
	return &Tree{root: g.grow(0, len(g.rows), 0)}
}

func (g *grower) grow(lo, hi, depth int) *treeNode {
	node := &treeNode{Feature: -1, Value: g.mean(lo, hi)}
	n := hi - lo
	if depth >= g.cfg.MaxDepth || n < 2*g.cfg.MinLeafSize {
		return node
	}
	feat, thr, gain := g.bestSplit(lo, hi)
	if feat < 0 || gain <= g.cfg.MinImpurement {
		return node
	}
	nl := g.partition(lo, hi, feat, thr)
	if nl < g.cfg.MinLeafSize || n-nl < g.cfg.MinLeafSize {
		return node
	}
	node.Feature = feat
	node.Threshold = thr
	node.Left = g.grow(lo, lo+nl, depth+1)
	node.Right = g.grow(lo+nl, hi, depth+1)
	return node
}

func (g *grower) mean(lo, hi int) float64 {
	if hi == lo {
		return 0
	}
	var s float64
	for _, i := range g.rows[lo:hi] {
		s += g.y[i]
	}
	return s / float64(hi-lo)
}

// bestSplit scans every feature's presorted index range with a prefix-sum
// sweep. Features are scanned independently (in parallel for large nodes) and
// reduced in ascending feature order with a strict comparison — the same
// winner a serial ascending scan picks.
func (g *grower) bestSplit(lo, hi int) (feature int, threshold, gain float64) {
	n := hi - lo
	minLeaf := g.cfg.MinLeafSize
	if n < 2*minLeaf {
		return -1, 0, 0
	}
	var totalSum, totalSq float64
	for _, i := range g.rows[lo:hi] {
		totalSum += g.y[i]
		totalSq += g.y[i] * g.y[i]
	}
	parentSSE := totalSq - totalSum*totalSum/float64(n)

	d := len(g.cols)
	scan := func(f int) {
		ord := g.ord[f][lo:hi]
		col := g.cols[f]
		bestG, bestT := 0.0, 0.0
		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			i := ord[k]
			yi := g.y[i]
			leftSum += yi
			leftSq += yi * yi
			nl := k + 1
			nr := n - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			// Skip ties: can't split between equal feature values.
			v, vNext := col[i], col[ord[k+1]]
			if v == vNext {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/float64(nl)) + (rightSq - rightSum*rightSum/float64(nr))
			gn := parentSSE - sse
			if gn > bestG {
				bestG = gn
				bestT = 0.5 * (v + vNext)
			}
		}
		g.gains[f] = bestG
		g.thrs[f] = bestT
	}
	if n >= parallelScanMin && d > 1 {
		parallel.For(d, scan)
	} else {
		for f := 0; f < d; f++ {
			scan(f)
		}
	}
	feature = -1
	for f := 0; f < d; f++ {
		if g.gains[f] > gain {
			gain = g.gains[f]
			feature = f
			threshold = g.thrs[f]
		}
	}
	return feature, threshold, gain
}

// partition stably splits rows and every feature's sorted index range on
// col[feat] <= thr, keeping left-going entries first in their original
// relative order. Each per-feature range therefore stays sorted by
// (value, index), and rows stays in original relative order — the invariants
// the split scans and leaf means rely on.
func (g *grower) partition(lo, hi, feat int, thr float64) int {
	col := g.cols[feat]
	split := func(a []int) int {
		nl := 0
		t := g.tmp[:0]
		for _, i := range a {
			if col[i] <= thr {
				a[nl] = i
				nl++
			} else {
				t = append(t, i)
			}
		}
		copy(a[nl:], t)
		return nl
	}
	nl := split(g.rows[lo:hi])
	for f := range g.ord {
		split(g.ord[f][lo:hi])
	}
	return nl
}

// FitTree grows a regression tree on rows X (each a feature vector) and
// targets y. It returns an error when X and y lengths differ or the feature
// rows are ragged.
func FitTree(X [][]float64, y []float64, cfg TreeConfig) (*Tree, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	if len(y) == 0 {
		return &Tree{root: &treeNode{Feature: -1}}, nil
	}
	return newGrower(X, y, cfg).fitTree(), nil
}

func validate(X [][]float64, y []float64) error {
	if len(X) != len(y) {
		return errors.New("gbt: X and y length mismatch")
	}
	if len(X) == 0 {
		return nil
	}
	d := len(X[0])
	for _, row := range X {
		if len(row) != d {
			return errors.New("gbt: ragged feature rows")
		}
	}
	return nil
}

// Predict returns the tree's output for x.
func (t *Tree) Predict(x []float64) float64 {
	node := t.root
	for node.Feature >= 0 {
		if x[node.Feature] <= node.Threshold {
			node = node.Left
		} else {
			node = node.Right
		}
	}
	return node.Value
}

// Depth returns the depth of the tree (a lone leaf has depth 0).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.Feature < 0 {
		return 0
	}
	l, r := nodeDepth(n.Left), nodeDepth(n.Right)
	return 1 + int(math.Max(float64(l), float64(r)))
}

// NumLeaves returns the number of leaves in the tree.
func (t *Tree) NumLeaves() int { return countLeaves(t.root) }

func countLeaves(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.Feature < 0 {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}
