// Package gbt implements gradient-boosted regression trees with squared
// loss. It backs the LM-gbt cardinality-estimator variant from §4.1.2 of the
// Warper paper (sklearn GradientBoostingRegressor in the original; this is a
// faithful reimplementation of the same algorithm). Tree ensembles cannot be
// fine-tuned, so the estimator built on this package re-trains from scratch
// on every update, exactly as the paper describes.
package gbt

import (
	"math"
	"sort"
)

// treeNode is one node of a regression tree. Leaves have Feature == -1.
type treeNode struct {
	Feature   int // -1 for leaf
	Threshold float64
	Left      *treeNode
	Right     *treeNode
	Value     float64 // leaf prediction
}

// Tree is a single regression tree fit with exact greedy splits on SSE.
type Tree struct {
	root *treeNode
}

// TreeConfig controls regression-tree growth.
type TreeConfig struct {
	MaxDepth      int // maximum tree depth; 0 means a single leaf
	MinLeafSize   int // minimum samples in each child after a split
	MinImpurement float64
}

// FitTree grows a regression tree on rows X (each a feature vector) and
// targets y.
func FitTree(X [][]float64, y []float64, cfg TreeConfig) *Tree {
	if len(X) != len(y) {
		panic("gbt: X and y length mismatch")
	}
	if cfg.MinLeafSize < 1 {
		cfg.MinLeafSize = 1
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	return &Tree{root: growNode(X, y, idx, cfg, 0)}
}

func meanOf(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func growNode(X [][]float64, y []float64, idx []int, cfg TreeConfig, depth int) *treeNode {
	node := &treeNode{Feature: -1, Value: meanOf(y, idx)}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeafSize {
		return node
	}
	feat, thr, gain := bestSplit(X, y, idx, cfg.MinLeafSize)
	if feat < 0 || gain <= cfg.MinImpurement {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeafSize || len(right) < cfg.MinLeafSize {
		return node
	}
	node.Feature = feat
	node.Threshold = thr
	node.Left = growNode(X, y, left, cfg, depth+1)
	node.Right = growNode(X, y, right, cfg, depth+1)
	return node
}

// bestSplit scans every feature with a sorted sweep and returns the split
// that maximizes SSE reduction. It returns feature -1 when no valid split
// exists.
func bestSplit(X [][]float64, y []float64, idx []int, minLeaf int) (feature int, threshold, gain float64) {
	n := len(idx)
	if n < 2*minLeaf {
		return -1, 0, 0
	}
	var totalSum, totalSq float64
	for _, i := range idx {
		totalSum += y[i]
		totalSq += y[i] * y[i]
	}
	parentSSE := totalSq - totalSum*totalSum/float64(n)

	feature = -1
	d := len(X[idx[0]])
	order := make([]int, n)
	for f := 0; f < d; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			i := order[k]
			leftSum += y[i]
			leftSq += y[i] * y[i]
			nl := k + 1
			nr := n - nl
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			// Skip ties: can't split between equal feature values.
			if X[order[k]][f] == X[order[k+1]][f] {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/float64(nl)) + (rightSq - rightSum*rightSum/float64(nr))
			g := parentSSE - sse
			if g > gain {
				gain = g
				feature = f
				threshold = 0.5 * (X[order[k]][f] + X[order[k+1]][f])
			}
		}
	}
	return feature, threshold, gain
}

// Predict returns the tree's output for x.
func (t *Tree) Predict(x []float64) float64 {
	node := t.root
	for node.Feature >= 0 {
		if x[node.Feature] <= node.Threshold {
			node = node.Left
		} else {
			node = node.Right
		}
	}
	return node.Value
}

// Depth returns the depth of the tree (a lone leaf has depth 0).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.Feature < 0 {
		return 0
	}
	l, r := nodeDepth(n.Left), nodeDepth(n.Right)
	return 1 + int(math.Max(float64(l), float64(r)))
}

// NumLeaves returns the number of leaves in the tree.
func (t *Tree) NumLeaves() int { return countLeaves(t.root) }

func countLeaves(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.Feature < 0 {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}
