package gbt

// Config controls a gradient-boosted ensemble.
type Config struct {
	Stages      int     // number of boosting rounds
	Rate        float64 // shrinkage / learning rate (paper uses 1e-2 for LM-gbt)
	MaxDepth    int     // per-tree depth
	MinLeafSize int
}

// DefaultConfig mirrors the paper's LM-gbt settings: learning rate 1e-2 with
// sklearn-style defaults for the ensemble shape.
func DefaultConfig() Config {
	return Config{Stages: 100, Rate: 1e-2, MaxDepth: 3, MinLeafSize: 2}
}

// Regressor is a gradient-boosted regression ensemble for squared loss:
// F_0 = mean(y); F_m = F_{m-1} + rate * tree_m(residuals).
type Regressor struct {
	cfg   Config
	base  float64
	trees []*Tree
}

// Fit trains the ensemble from scratch. Boosted trees cannot be incrementally
// fine-tuned, so estimator code calls Fit again on every model update. The
// feature matrix is transposed and presorted once; every boosting stage
// reuses those orders, so the per-stage cost is linear scans only.
func Fit(X [][]float64, y []float64, cfg Config) (*Regressor, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	r := &Regressor{cfg: cfg}
	if len(y) == 0 {
		return r, nil
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	r.base = mean

	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = mean
	}
	resid := make([]float64, len(y))
	tc := TreeConfig{MaxDepth: cfg.MaxDepth, MinLeafSize: cfg.MinLeafSize}
	g := newGrower(X, resid, tc)
	for m := 0; m < cfg.Stages; m++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tree := g.fitTree()
		r.trees = append(r.trees, tree)
		for i := range pred {
			pred[i] += cfg.Rate * tree.Predict(X[i])
		}
	}
	return r, nil
}

// Predict returns the ensemble output for x.
func (r *Regressor) Predict(x []float64) float64 {
	out := r.base
	for _, t := range r.trees {
		out += r.cfg.Rate * t.Predict(x)
	}
	return out
}

// NumTrees returns the number of fitted boosting stages.
func (r *Regressor) NumTrees() int { return len(r.trees) }
