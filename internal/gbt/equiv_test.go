package gbt

import (
	"math/rand"
	"testing"

	"warper/internal/parallel"
)

func randData(rng *rand.Rand, n, d, dup int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			if dup > 1 {
				// Quantize to force duplicate feature values (tie handling).
				row[j] = float64(rng.Intn(dup)) / float64(dup)
			} else {
				row[j] = rng.NormFloat64()
			}
		}
		X[i] = row
		y[i] = rng.NormFloat64()
	}
	return X, y
}

func sameTree(t *testing.T, a, b *treeNode) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatal("tree shapes differ (nil mismatch)")
	}
	if a == nil {
		return
	}
	if a.Feature != b.Feature || a.Threshold != b.Threshold || a.Value != b.Value {
		t.Fatalf("nodes differ: {%d %v %v} vs {%d %v %v}",
			a.Feature, a.Threshold, a.Value, b.Feature, b.Threshold, b.Value)
	}
	sameTree(t, a.Left, b.Left)
	sameTree(t, a.Right, b.Right)
}

// TestPresortedTreeMatchesReference: the presorted grower must produce trees
// byte-identical to the sort-per-node reference, including on data with
// heavy feature-value ties.
func TestPresortedTreeMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		n, d int
		dup  int
	}{
		{"continuous", 300, 5, 1},
		{"ties", 300, 4, 7},
		{"tiny", 9, 3, 1},
		{"one-feature", 100, 1, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			X, y := randData(rng, tc.n, tc.d, tc.dup)
			cfg := TreeConfig{MaxDepth: 5, MinLeafSize: 3}
			got, err := FitTree(X, y, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := ReferenceFitTree(X, y, cfg)
			sameTree(t, got.root, want.root)
		})
	}
}

// TestPresortedEnsembleMatchesReference: full boosted fits agree
// byte-identically across all stages (paper Table 3 shape).
func TestPresortedEnsembleMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	X, y := randData(rng, 400, 6, 5)
	cfg := Config{Stages: 30, Rate: 0.05, MaxDepth: 4, MinLeafSize: 3}
	got, err := Fit(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceFit(X, y, cfg)
	if got.base != want.base || len(got.trees) != len(want.trees) {
		t.Fatalf("ensemble shape differs: base %v vs %v, %d vs %d trees",
			got.base, want.base, len(got.trees), len(want.trees))
	}
	for m := range got.trees {
		sameTree(t, got.trees[m].root, want.trees[m].root)
	}
}

// TestFitIdenticalAtAnyWorkerCount: feature-parallel split scans must not
// change the fitted ensemble at any worker count (node sizes above and below
// the parallel threshold both appear).
func TestFitIdenticalAtAnyWorkerCount(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	X, y := randData(rng, 600, 5, 1)
	cfg := Config{Stages: 10, Rate: 0.1, MaxDepth: 4, MinLeafSize: 3}

	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	want, err := Fit(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		parallel.SetWorkers(w)
		got, err := Fit(X, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for m := range want.trees {
			sameTree(t, got.trees[m].root, want.trees[m].root)
		}
	}
}
