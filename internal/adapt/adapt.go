// Package adapt implements the adaptation baselines the paper compares
// Warper against (§4.1): fine-tuning (FT, with re-training RT for models
// that cannot fine-tune), Mixture (MIX), Gaussian-noise data augmentation
// (AUG) and hard-example mining (HEM) — plus a shared period-driven runner
// that produces the adaptation curves (GMQ vs. consumed new-workload
// queries) behind Figures 6 and 8 and the Δ speedups of Tables 7, 8 and 10.
package adapt

import (
	"context"
	"math/rand"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/metrics"
	"warper/internal/query"
	"warper/internal/warper"
)

// Method consumes one period of newly arrived queries at a time and keeps
// its CE model as adapted as it can manage.
type Method interface {
	Name() string
	// Step processes one adaptation period's arrivals. A failed step (an
	// annotation or model-update failure) leaves the method's model in its
	// pre-step state where possible and is reported as an error.
	Step(arrivals []warper.Arrival) error
	// Model returns the live CE model.
	Model() ce.Estimator
	// AnnotationsSpent reports the cumulative ground-truth computations the
	// method has requested beyond the labels that arrived with queries.
	AnnotationsSpent() int
}

// --- FT / RT ----------------------------------------------------------------

// FT fine-tunes the model with each period's labeled arrivals; for models
// with a re-train update policy it re-trains on everything seen so far
// (the paper's RT fallback).
type FT struct {
	m        ce.Estimator
	history  []query.Labeled // initial training + all labeled arrivals
	nameOver string
}

// NewFT wraps a trained model with the original training corpus (needed by
// re-train models).
func NewFT(m ce.Estimator, train []query.Labeled) *FT {
	return &FT{m: m, history: append([]query.Labeled(nil), train...)}
}

// Name implements Method.
func (f *FT) Name() string {
	if f.nameOver != "" {
		return f.nameOver
	}
	if f.m.Policy() == ce.Retrain {
		return "RT"
	}
	return "FT"
}

// Step implements Method.
func (f *FT) Step(arrivals []warper.Arrival) error {
	labeled := labeledOf(arrivals)
	if len(labeled) == 0 {
		return nil
	}
	f.history = append(f.history, labeled...)
	if f.m.Policy() == ce.Retrain {
		return f.m.Update(f.history)
	}
	return f.m.Update(labeled)
}

// Model implements Method.
func (f *FT) Model() ce.Estimator { return f.m }

// AnnotationsSpent implements Method: FT never requests extra annotations.
func (f *FT) AnnotationsSpent() int { return 0 }

// --- MIX ---------------------------------------------------------------------

// MIX updates the model with a combination of the original training workload
// and the newly arrived labeled queries, improving generalization when the
// distributions overlap.
type MIX struct {
	m     ce.Estimator
	train []query.Labeled
	seen  []query.Labeled
	rng   *rand.Rand
}

// NewMIX builds the mixture baseline.
func NewMIX(m ce.Estimator, train []query.Labeled, seed int64) *MIX {
	return &MIX{m: m, train: train, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Method.
func (x *MIX) Name() string { return "MIX" }

// Step implements Method: each period updates on the new labeled arrivals
// plus an equal-sized random draw from the original training workload.
func (x *MIX) Step(arrivals []warper.Arrival) error {
	labeled := labeledOf(arrivals)
	if len(labeled) == 0 {
		return nil
	}
	x.seen = append(x.seen, labeled...)
	mixed := append([]query.Labeled(nil), labeled...)
	for i := 0; i < len(labeled) && len(x.train) > 0; i++ {
		mixed = append(mixed, x.train[x.rng.Intn(len(x.train))])
	}
	if x.m.Policy() == ce.Retrain {
		all := append(append([]query.Labeled(nil), x.train...), x.seen...)
		return x.m.Update(all)
	}
	return x.m.Update(mixed)
}

// Model implements Method.
func (x *MIX) Model() ce.Estimator { return x.m }

// AnnotationsSpent implements Method.
func (x *MIX) AnnotationsSpent() int { return 0 }

// --- AUG ---------------------------------------------------------------------

// AUG augments each period's arrivals with Gaussian-noise copies (std = 10%
// of each column's range, §4.1) and annotates the synthetic queries.
type AUG struct {
	m   ce.Estimator
	ann *annotator.Annotator
	sch *query.Schema
	rng *rand.Rand
	// GenFraction matches Warper's n_g = frac·n_t (default 0.1).
	GenFraction float64
	history     []query.Labeled
	spent       int
}

// NewAUG builds the augmentation baseline.
func NewAUG(m ce.Estimator, sch *query.Schema, ann *annotator.Annotator, train []query.Labeled, seed int64) *AUG {
	return &AUG{
		m: m, ann: ann, sch: sch,
		rng:         rand.New(rand.NewSource(seed)),
		GenFraction: 0.1,
		history:     append([]query.Labeled(nil), train...),
	}
}

// Name implements Method.
func (a *AUG) Name() string { return "AUG" }

// Noisy returns a copy of p with N(0, (0.1·range)²) noise on each bound.
func (a *AUG) Noisy(p query.Predicate) query.Predicate {
	out := p.Clone()
	for i := range out.Lows {
		span := a.sch.Maxs[i] - a.sch.Mins[i]
		out.Lows[i] += a.rng.NormFloat64() * 0.1 * span
		out.Highs[i] += a.rng.NormFloat64() * 0.1 * span
	}
	return out.Normalize(a.sch)
}

// Step implements Method.
func (a *AUG) Step(arrivals []warper.Arrival) error {
	labeled := labeledOf(arrivals)
	nGen := int(a.GenFraction * float64(len(arrivals)))
	var synth []query.Predicate
	for i := 0; i < nGen && len(arrivals) > 0; i++ {
		src := arrivals[a.rng.Intn(len(arrivals))]
		synth = append(synth, a.Noisy(src.Pred))
	}
	if len(synth) > 0 {
		annotated, err := a.ann.AnnotateAll(context.Background(), synth)
		if err != nil {
			return err
		}
		a.spent += len(synth)
		labeled = append(labeled, annotated...)
	}
	if len(labeled) == 0 {
		return nil
	}
	a.history = append(a.history, labeled...)
	if a.m.Policy() == ce.Retrain {
		return a.m.Update(a.history)
	}
	return a.m.Update(labeled)
}

// Model implements Method.
func (a *AUG) Model() ce.Estimator { return a.m }

// AnnotationsSpent implements Method.
func (a *AUG) AnnotationsSpent() int { return a.spent }

// --- HEM ---------------------------------------------------------------------

// HEM (hard-example mining) weights the arrivals by the model's evaluation
// error — high-error queries are replicated in the update set — and adds the
// same Gaussian noise as AUG for robustness. It needs ground truth for the
// new queries and annotates any that arrive unlabeled.
type HEM struct {
	m       ce.Estimator
	ann     *annotator.Annotator
	sch     *query.Schema
	rng     *rand.Rand
	history []query.Labeled
	spent   int
}

// NewHEM builds the hard-example-mining baseline.
func NewHEM(m ce.Estimator, sch *query.Schema, ann *annotator.Annotator, train []query.Labeled, seed int64) *HEM {
	return &HEM{
		m: m, ann: ann, sch: sch,
		rng:     rand.New(rand.NewSource(seed)),
		history: append([]query.Labeled(nil), train...),
	}
}

// Name implements Method.
func (h *HEM) Name() string { return "HEM" }

// Step implements Method.
func (h *HEM) Step(arrivals []warper.Arrival) error {
	var labeled []query.Labeled
	for _, ar := range arrivals {
		if ar.HasGT {
			labeled = append(labeled, query.Labeled{Pred: ar.Pred, Card: ar.GT})
		} else {
			card, err := h.ann.Count(context.Background(), ar.Pred)
			if err != nil {
				return err
			}
			labeled = append(labeled, query.Labeled{Pred: ar.Pred, Card: card})
			h.spent++
		}
	}
	if len(labeled) == 0 {
		return nil
	}
	// Weighted replication by q-error: every query appears once, the
	// hardest examples up to three more times.
	var update []query.Labeled
	for _, lq := range labeled {
		update = append(update, lq)
		qe := metrics.QError(h.m.Estimate(lq.Pred), lq.Card)
		reps := 0
		switch {
		case qe >= 32:
			reps = 3
		case qe >= 8:
			reps = 2
		case qe >= 2:
			reps = 1
		}
		for r := 0; r < reps; r++ {
			// Noisy replica (AUG-style) for robustness; labels come from a
			// fresh annotation.
			span := func(i int) float64 { return h.sch.Maxs[i] - h.sch.Mins[i] }
			noisy := lq.Pred.Clone()
			for i := range noisy.Lows {
				noisy.Lows[i] += h.rng.NormFloat64() * 0.1 * span(i)
				noisy.Highs[i] += h.rng.NormFloat64() * 0.1 * span(i)
			}
			noisy = noisy.Normalize(h.sch)
			card, err := h.ann.Count(context.Background(), noisy)
			if err != nil {
				return err
			}
			update = append(update, query.Labeled{Pred: noisy, Card: card})
			h.spent++
		}
	}
	h.history = append(h.history, update...)
	if h.m.Policy() == ce.Retrain {
		return h.m.Update(h.history)
	}
	return h.m.Update(update)
}

// Model implements Method.
func (h *HEM) Model() ce.Estimator { return h.m }

// AnnotationsSpent implements Method.
func (h *HEM) AnnotationsSpent() int { return h.spent }

// --- Warper as a Method -------------------------------------------------------

// WarperMethod adapts the warper.Adapter to the Method interface.
type WarperMethod struct {
	Adapter *warper.Adapter
}

// NewWarper wraps an Adapter.
func NewWarper(a *warper.Adapter) *WarperMethod { return &WarperMethod{Adapter: a} }

// Name implements Method.
func (w *WarperMethod) Name() string { return "Warper" }

// Step implements Method.
func (w *WarperMethod) Step(arrivals []warper.Arrival) error {
	_, err := w.Adapter.Period(arrivals)
	return err
}

// Model implements Method.
func (w *WarperMethod) Model() ce.Estimator { return w.Adapter.M }

// AnnotationsSpent implements Method.
func (w *WarperMethod) AnnotationsSpent() int {
	n := 0
	for _, e := range w.Adapter.Pool.Entries {
		if e.Source != 0 && e.GT >= 0 { // non-train entries with labels
			n++
		}
	}
	return n
}

func labeledOf(arrivals []warper.Arrival) []query.Labeled {
	var out []query.Labeled
	for _, ar := range arrivals {
		if ar.HasGT {
			out = append(out, query.Labeled{Pred: ar.Pred, Card: ar.GT})
		}
	}
	return out
}
