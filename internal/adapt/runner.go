package adapt

import (
	"warper/internal/ce"
	"warper/internal/metrics"
	"warper/internal/obs"
	"warper/internal/query"
	"warper/internal/warper"
)

// Runner drives a Method through a sequence of adaptation periods and
// records its adaptation curve: GMQ on a hold-out test set as a function of
// the cumulative number of new-workload queries consumed. The curve's first
// point (0 queries) is the post-drift, pre-adaptation error α.
type Runner struct {
	Test []query.Labeled
	// QErrHist, when non-nil, receives every per-query q-error measured
	// while evaluating the curve — the same log-scale histogram the serving
	// stack exposes on /metrics, so offline experiment reports and live
	// dashboards read the identical distribution summary.
	QErrHist *obs.Histogram
}

// Run executes every period and returns the curve. The test set is never
// shown to the method. A failed step aborts the run with the curve recorded
// so far.
func (r *Runner) Run(m Method, periods [][]warper.Arrival) (*metrics.Curve, error) {
	curve := &metrics.Curve{}
	curve.Append(0, r.eval(m.Model()))
	consumed := 0
	for _, p := range periods {
		if err := m.Step(p); err != nil {
			return curve, err
		}
		consumed += len(p)
		curve.Append(float64(consumed), r.eval(m.Model()))
	}
	return curve, nil
}

// eval measures the model's GMQ on the test set, feeding per-query q-errors
// into QErrHist when attached.
func (r *Runner) eval(m ce.Estimator) float64 {
	if r.QErrHist == nil {
		return ce.EvalGMQ(m, r.Test)
	}
	ests := make([]float64, len(r.Test))
	acts := make([]float64, len(r.Test))
	for i, lq := range r.Test {
		ests[i] = m.Estimate(lq.Pred)
		acts[i] = lq.Card
		r.QErrHist.Observe(metrics.QError(ests[i], acts[i]))
	}
	return metrics.GMQ(ests, acts)
}

// SplitPeriods chops a stream of arrivals into fixed-size periods (the last
// period may be short).
func SplitPeriods(arrivals []warper.Arrival, perPeriod int) [][]warper.Arrival {
	if perPeriod <= 0 {
		perPeriod = 1
	}
	var out [][]warper.Arrival
	for start := 0; start < len(arrivals); start += perPeriod {
		end := start + perPeriod
		if end > len(arrivals) {
			end = len(arrivals)
		}
		out = append(out, arrivals[start:end])
	}
	return out
}

// ArrivalsOf converts labeled queries into arrivals, optionally hiding the
// labels (the c3 scenarios).
func ArrivalsOf(lqs []query.Labeled, withGT bool) []warper.Arrival {
	out := make([]warper.Arrival, len(lqs))
	for i, lq := range lqs {
		out[i] = warper.Arrival{Pred: lq.Pred, GT: lq.Card, HasGT: withGT}
	}
	return out
}
