package adapt

import (
	"context"
	"math/rand"
	"testing"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/metrics"
	"warper/internal/obs"
	"warper/internal/query"
	"warper/internal/warper"
	"warper/internal/workload"
)

type env struct {
	tbl   *dataset.Table
	sch   *query.Schema
	ann   *annotator.Annotator
	train []query.Labeled
	newQ  []query.Labeled
	test  []query.Labeled
}

func newEnv(t *testing.T) *env {
	t.Helper()
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	rng := rand.New(rand.NewSource(77))
	tbl := dataset.PRSA(3000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	gTrain := workload.New("w1", tbl, sch, workload.Options{MaxConstrained: 2})
	gNew := workload.New("w4", tbl, sch, workload.Options{MaxConstrained: 2})
	return &env{
		tbl: tbl, sch: sch, ann: ann,
		train: annAll(t, ann, workload.Generate(gTrain, 500, rng)),
		newQ:  annAll(t, ann, workload.Generate(gNew, 300, rng)),
		test:  annAll(t, ann, workload.Generate(gNew, 120, rng)),
	}
}

func (e *env) trainedLM(seed int64) *ce.LM {
	lm := ce.NewLM(ce.LMMLP, e.sch, seed)
	if err := lm.Train(e.train); err != nil {
		panic("test fixture train failed: " + err.Error())
	}
	return lm
}

func TestFTImprovesOnNewWorkload(t *testing.T) {
	e := newEnv(t)
	ft := NewFT(e.trainedLM(1), e.train)
	if ft.Name() != "FT" {
		t.Errorf("Name = %q", ft.Name())
	}
	r := &Runner{Test: e.test}
	curve := runOK(t, r, ft, SplitPeriods(ArrivalsOf(e.newQ, true), 60))
	if curve.Final() >= curve.Initial() {
		t.Errorf("FT curve did not improve: %v -> %v", curve.Initial(), curve.Final())
	}
	if ft.AnnotationsSpent() != 0 {
		t.Error("FT must not spend annotations")
	}
}

func TestRunnerFeedsQErrorHistogram(t *testing.T) {
	e := newEnv(t)
	ft := NewFT(e.trainedLM(8), e.train)
	h := obs.NewHistogram(obs.QErrorOpts())
	r := &Runner{Test: e.test, QErrHist: h}
	periods := SplitPeriods(ArrivalsOf(e.newQ[:120], true), 60)
	curve := runOK(t, r, ft, periods)
	// One evaluation per curve point, one observation per test query.
	want := int64(curve.Len() * len(e.test))
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	// q-errors are ≥ 1, so the histogram median must be too.
	if q := h.Quantile(0.5); q < 0.5 {
		t.Errorf("p50 q-error = %v, implausibly small", q)
	}
}

func TestRTNameForRetrainModels(t *testing.T) {
	e := newEnv(t)
	gbt := ce.NewLM(ce.LMGBT, e.sch, 2)
	if err := gbt.Train(e.train); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if got := NewFT(gbt, e.train).Name(); got != "RT" {
		t.Errorf("Name = %q, want RT", got)
	}
}

func TestFTSkipsUnlabeledPeriods(t *testing.T) {
	e := newEnv(t)
	lm := e.trainedLM(3)
	before := ce.EvalGMQ(lm, e.test)
	ft := NewFT(lm, e.train)
	if err := ft.Step(ArrivalsOf(e.newQ[:50], false)); err != nil { // no labels → no update
		t.Fatalf("Step: %v", err)
	}
	if after := ce.EvalGMQ(lm, e.test); after != before {
		t.Error("FT updated the model without labels")
	}
}

func TestMIXUsesTrainingQueries(t *testing.T) {
	e := newEnv(t)
	mix := NewMIX(e.trainedLM(4), e.train, 9)
	r := &Runner{Test: e.test}
	curve := runOK(t, r, mix, SplitPeriods(ArrivalsOf(e.newQ, true), 60))
	if curve.Final() >= curve.Initial() {
		t.Errorf("MIX did not improve: %v -> %v", curve.Initial(), curve.Final())
	}
	if mix.AnnotationsSpent() != 0 {
		t.Error("MIX must not spend annotations")
	}
}

func TestAUGSpendsAnnotationsAndImproves(t *testing.T) {
	e := newEnv(t)
	aug := NewAUG(e.trainedLM(5), e.sch, e.ann, e.train, 10)
	r := &Runner{Test: e.test}
	curve := runOK(t, r, aug, SplitPeriods(ArrivalsOf(e.newQ, true), 60))
	// This model seed starts with a small drift gap; require only that AUG
	// does not materially degrade the model while it spends annotations.
	if curve.Final() > curve.Initial()*1.1 {
		t.Errorf("AUG degraded the model: %v -> %v", curve.Initial(), curve.Final())
	}
	if aug.AnnotationsSpent() == 0 {
		t.Error("AUG should annotate synthetic queries")
	}
	// n_g = 10% of n_t.
	want := 0
	for _, p := range SplitPeriods(ArrivalsOf(e.newQ, true), 60) {
		want += len(p) / 10
	}
	if aug.AnnotationsSpent() != want {
		t.Errorf("AUG spent %d annotations, want %d", aug.AnnotationsSpent(), want)
	}
}

func TestAUGNoisyStaysValid(t *testing.T) {
	e := newEnv(t)
	aug := NewAUG(e.trainedLM(6), e.sch, e.ann, e.train, 11)
	for i := 0; i < 100; i++ {
		p := aug.Noisy(e.newQ[i%len(e.newQ)].Pred)
		for c := range p.Lows {
			if p.Lows[c] > p.Highs[c] || p.Lows[c] < e.sch.Mins[c]-1e-9 || p.Highs[c] > e.sch.Maxs[c]+1e-9 {
				t.Fatal("Noisy produced invalid predicate")
			}
		}
	}
}

func TestHEMAnnotatesUnlabeledAndReplicatesHard(t *testing.T) {
	e := newEnv(t)
	hem := NewHEM(e.trainedLM(7), e.sch, e.ann, e.train, 12)
	if err := hem.Step(ArrivalsOf(e.newQ[:40], false)); err != nil { // unlabeled → must annotate
		t.Fatalf("Step: %v", err)
	}
	if hem.AnnotationsSpent() < 40 {
		t.Errorf("HEM spent %d annotations, want >= 40", hem.AnnotationsSpent())
	}
	r := &Runner{Test: e.test}
	curve := runOK(t, r, hem, SplitPeriods(ArrivalsOf(e.newQ[40:], true), 60))
	if curve.Final() >= curve.Initial() {
		t.Errorf("HEM did not improve: %v -> %v", curve.Initial(), curve.Final())
	}
}

func TestWarperMethodIntegration(t *testing.T) {
	e := newEnv(t)
	lm := e.trainedLM(8)
	cfg := warper.DefaultConfig()
	cfg.Hidden = 64
	cfg.Depth = 2
	cfg.NIters = 50
	cfg.Gamma = 150
	cfg.PickSize = 150
	ad, err := warper.New(cfg, lm, e.sch, e.ann, e.train)
	if err != nil {
		t.Fatalf("warper.New: %v", err)
	}
	wm := NewWarper(ad)
	if wm.Name() != "Warper" {
		t.Errorf("Name = %q", wm.Name())
	}
	r := &Runner{Test: e.test}
	curve := runOK(t, r, wm, SplitPeriods(ArrivalsOf(e.newQ, true), 60))
	if curve.Final() >= curve.Initial() {
		t.Errorf("Warper did not improve: %v -> %v", curve.Initial(), curve.Final())
	}
	if wm.AnnotationsSpent() == 0 {
		t.Error("Warper should have labeled generated/new entries")
	}
}

func TestSplitPeriods(t *testing.T) {
	arr := make([]warper.Arrival, 10)
	ps := SplitPeriods(arr, 4)
	if len(ps) != 3 || len(ps[0]) != 4 || len(ps[2]) != 2 {
		t.Errorf("SplitPeriods shape wrong: %d periods", len(ps))
	}
	if got := SplitPeriods(arr, 0); len(got) != 10 {
		t.Errorf("zero period size should default to 1, got %d periods", len(got))
	}
}

func TestArrivalsOf(t *testing.T) {
	e := newEnv(t)
	withGT := ArrivalsOf(e.newQ[:5], true)
	withoutGT := ArrivalsOf(e.newQ[:5], false)
	for i := range withGT {
		if !withGT[i].HasGT || withGT[i].GT != e.newQ[i].Card {
			t.Error("labels lost")
		}
		if withoutGT[i].HasGT {
			t.Error("labels leaked")
		}
	}
}

// runOK unwraps Runner.Run for methods that cannot fail on the fixture.
func runOK(t *testing.T, r *Runner, m Method, periods [][]warper.Arrival) *metrics.Curve {
	t.Helper()
	c, err := r.Run(m, periods)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return c
}

func annAll(t *testing.T, ann *annotator.Annotator, ps []query.Predicate) []query.Labeled {
	t.Helper()
	out, err := ann.AnnotateAll(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
