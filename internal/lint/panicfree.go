package lint

import (
	"go/ast"
	"go/types"
)

// PanicFree guards the §6.4 robustness claim: a failed repair (kernel
// solve, dimension mismatch, malformed query) must surface as an error the
// adapter and HTTP layer can absorb, never as a panic that kills warperd.
// The rule covers every package reachable from internal/serve's request
// path — including the compute core (nn, gbt, kernel) the estimators train
// and infer through; offline harnesses (experiments, examples, cmd) may
// still panic.
var PanicFree = &Analyzer{
	Name:     "panicfree",
	Doc:      "serving-path packages must return errors instead of panicking",
	Packages: []string{"serve", "warper", "ce", "annotator", "resilience", "nn", "gbt", "kernel", "wire"},
	Run:      runPanicFree,
}

func runPanicFree(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true // shadowed identifier, not the builtin
			}
			pass.Reportf(call.Pos(), "panic on the serving path in package %s: return an error so a failed repair keeps the previous model serving", pass.Pkg.Name())
			return true
		})
	}
}
