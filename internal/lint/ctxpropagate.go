package lint

import (
	"go/ast"
	"go/types"
)

// CtxPropagate guards the fault-tolerance contract of the annotation
// pipeline: inside internal/resilience and internal/annotator every
// blocking operation must honor the caller's context.Context, because the
// degradation ladder (per-attempt timeouts, the per-period annotation
// deadline, /period request cancellation) only works if cancellation
// actually reaches the scan loops and backoff waits. The rule flags, in any
// function with a context.Context in scope (own parameter or one captured
// by a closure):
//
//   - time.Sleep — an uninterruptible wait; block in a select with
//     ctx.Done() and a time.Timer instead, and
//   - calls whose first parameter is a context.Context but that are handed
//     a fresh context.Background()/context.TODO(), severing the caller's
//     deadline and cancellation.
var CtxPropagate = &Analyzer{
	Name:     "ctxpropagate",
	Doc:      "resilience/annotator code must pass its in-scope context to blocking calls",
	Packages: []string{"resilience", "annotator"},
	Run:      runCtxPropagate,
}

func runCtxPropagate(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || !hasCtxParam(pass, ft) {
				// Keep descending: a nested func literal may declare its
				// own context parameter.
				return true
			}
			// The whole body — including closures, which capture ctx — is
			// in scope. Stop the outer walk so nothing is reported twice.
			checkCtxBody(pass, body)
			return false
		})
	}
}

// hasCtxParam reports whether the function type declares a context.Context
// parameter.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(pass.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxBody reports context-ignoring blocking calls anywhere in a body
// that has a context.Context in scope.
func checkCtxBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				pass.Reportf(call.Pos(), "time.Sleep with a context.Context in scope in package %s: wait in a select with ctx.Done() and a time.Timer instead", pass.Pkg.Name())
				return true
			}
		}
		// A callee that accepts a context as its first parameter but is
		// handed a fresh root context ignores the one in scope.
		sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
		if !ok || sig.Params().Len() == 0 || len(call.Args) == 0 {
			return true
		}
		if !isCtxType(sig.Params().At(0).Type()) {
			return true
		}
		if name := freshCtxCall(pass, call.Args[0]); name != "" {
			pass.Reportf(call.Args[0].Pos(), "context.%s passed to %s with a context.Context in scope: propagate the caller's ctx so deadlines and cancellation reach the call", name, ctxCalleeName(call))
		}
		return true
	})
}

// freshCtxCall returns "Background" or "TODO" when the expression is a
// direct context.Background()/context.TODO() call, else "".
func freshCtxCall(pass *Pass, e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// ctxCalleeName renders the called expression for the diagnostic.
func ctxCalleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	default:
		return "call"
	}
}
