package lint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader is shared across tests so the stdlib source importer's
// work (parsing sync, time, fmt, …) is paid once.
var (
	loaderOnce sync.Once
	fixLoader  *Loader
	loaderErr  error
)

func fixtureLoad(t *testing.T, rel string) *Package {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			loaderErr = err
			return
		}
		fixLoader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := fixLoader.LoadDir("fixture/"+rel, abs)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return pkg
}

// expectation is one `// want "regex"` comment in a fixture.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

func collectWants(t *testing.T, pkg *Package) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex: %v", pos.Filename, pos.Line, err)
				}
				out = append(out, expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// checkFixture runs one analyzer over a fixture and matches diagnostics
// against the `// want` comments line by line.
func checkFixture(t *testing.T, a *Analyzer, rel string) []Diagnostic {
	t.Helper()
	pkg := fixtureLoad(t, rel)
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	wants := collectWants(t, pkg)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return diags
}

func TestNondeterminismFixture(t *testing.T) {
	diags := checkFixture(t, Nondeterminism, "nondeterminism/nn")
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4", len(diags))
	}
}

func TestPanicFreeFixture(t *testing.T) {
	diags := checkFixture(t, PanicFree, "panicfree/ce")
	if len(diags) != 1 {
		t.Errorf("got %d diagnostics, want 1 (shadowed panic must not count)", len(diags))
	}
}

func TestPanicFreeComputeCoreFixture(t *testing.T) {
	diags := checkFixture(t, PanicFree, "panicfree/nn")
	if len(diags) != 1 {
		t.Errorf("got %d diagnostics, want 1 (lint:allow'd platform stub must not count)", len(diags))
	}
}

func TestLockHygieneFixture(t *testing.T) {
	diags := checkFixture(t, LockHygiene, "lockhygiene/serve")
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4 (TryLock, post-unlock calls, and refreshMu are exempt)", len(diags))
	}
}

func TestCtxPropagateFixture(t *testing.T) {
	diags := checkFixture(t, CtxPropagate, "ctxpropagate/resilience")
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4 (derived contexts, selects, and ctx-free funcs are exempt)", len(diags))
	}
}

func TestObsNamesFixture(t *testing.T) {
	diags := checkFixture(t, ObsNames, "obsnames/app")
	if len(diags) != 11 {
		t.Errorf("got %d diagnostics, want 11 (non-Registry receivers and lint:allow lines are exempt)", len(diags))
	}
}

func TestErrcheckLiteFixture(t *testing.T) {
	diags := checkFixture(t, ErrcheckLite, "errcheck/app")
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2", len(diags))
	}
}

// TestAllowSuppressesExactlyOne pins the suppression contract: two
// identical violations, one directive, one surviving diagnostic.
func TestAllowSuppressesExactlyOne(t *testing.T) {
	diags := checkFixture(t, PanicFree, "allow/ce")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1", len(diags))
	}
	if !strings.Contains(diags[0].Message, "panic on the serving path") {
		t.Errorf("surviving diagnostic = %q", diags[0].Message)
	}
}

func TestHotPathAllocFixture(t *testing.T) {
	diags := checkFixture(t, HotPathAlloc, "hotpathalloc/serve")
	if len(diags) != 15 {
		t.Errorf("got %d diagnostics, want 15 (panic args, allow-pruned decls/edges, the cache's free-list-miss allow, and unreachable helpers are exempt)", len(diags))
	}
}

func TestHotPathAllocWireFixture(t *testing.T) {
	diags := checkFixture(t, HotPathAlloc, "hotpathalloc/wire")
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6 (the grow-once slab allow, panic args, the pruned Dump, and unreachableGrow are exempt)", len(diags))
	}
}

func TestAtomicSanityFixture(t *testing.T) {
	diags := checkFixture(t, AtomicSanity, "atomicsanity/app")
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3 (constructors, atomic sites, and typed atomics are exempt)", len(diags))
	}
}

func TestGoroutineLeakFixture(t *testing.T) {
	diags := checkFixture(t, GoroutineLeak, "goroutineleak/serve")
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3 (channel ranges, ctx selects, and allowed spawns are exempt)", len(diags))
	}
}

func TestLockOrderFixture(t *testing.T) {
	diags := checkFixture(t, LockOrder, "lockorder/serve")
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2 (TryLock, refreshMu, and direct slow calls are exempt)", len(diags))
	}
}

// TestAllowStatementScope pins the widened suppression contract: a
// directive above or inside a multi-line statement covers diagnostics
// reported on the statement's inner lines, and the undirected twin is
// still reported.
func TestAllowStatementScope(t *testing.T) {
	diags := checkFixture(t, CtxPropagate, "allowstmt/resilience")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (both directives must reach the wrapped call's inner line)", len(diags))
	}
}

// TestScopeByLastSegment pins the package-scoping rule: an analyzer with a
// Packages list skips paths whose last segment is not listed.
func TestScopeByLastSegment(t *testing.T) {
	if !Nondeterminism.applies("warper/internal/nn") {
		t.Error("internal/nn should be in scope")
	}
	if Nondeterminism.applies("warper/internal/serve") {
		t.Error("internal/serve should be out of scope for nondeterminism")
	}
	if !ErrcheckLite.applies("warper/cmd/warperd") {
		t.Error("empty Packages must mean every package")
	}
}

// TestDiagnosticFormat pins the file:line:col rendering warperlint prints.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{
		Rule:    "panicfree",
		Pos:     token.Position{Filename: "a.go", Line: 3, Column: 7},
		Message: "boom",
	}
	if got, want := d.String(), "a.go:3:7: boom (panicfree)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestLoadAllModule loads and type-checks the entire module — the same
// work `go run ./cmd/warperlint ./...` does. Skipped in -short runs: the
// stdlib source importer makes the first load take several seconds.
func TestLoadAllModule(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is slow under the source importer")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded %d packages, expected the whole module", len(pkgs))
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{"warper/internal/serve", "warper/internal/ce", "warper/cmd/warperd"} {
		if !seen[want] {
			t.Errorf("module load missed %s", want)
		}
	}
	// The shipped tree must be clean: this is the tier-1 gate.
	if diags := RunAnalyzers(pkgs, All()); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected diagnostic on clean tree: %s", d)
		}
	}
}
