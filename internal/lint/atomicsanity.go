package lint

// AtomicSanity guards the module's mixed-access invariant: once any code
// reaches a variable through the sync/atomic package functions, every
// other access must be atomic too — a single plain read or write
// re-introduces the data race the atomic was bought to remove, and the
// race detector only catches it if a test happens to interleave the two.
// The replica pool's generation counters and the tracer's sequence
// numbers live or die by this.
//
// The rule is module-wide (a field can be accessed atomically in one
// package and plainly in another) and two-pass: first collect every
// variable whose address is passed to a sync/atomic function, then flag
// every plain use of those variables anywhere else. The one exemption is
// constructor-shaped code — functions named New*/new*, reset, or init —
// where single-owner initialization before publication is the idiom.
//
// The typed atomics (atomic.Int64, atomic.Pointer[T], …) the module
// prefers are immune by construction — their fields cannot be read
// plainly — so a clean tree under this rule plus typed atomics means the
// invariant holds by type, not by discipline.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var AtomicSanity = &Analyzer{
	Name:      "atomicsanity",
	Doc:       "variables accessed via sync/atomic must never be read or written plainly outside their constructor",
	RunModule: runAtomicSanity,
}

func runAtomicSanity(mp *ModulePass) {
	// Pass 1: every variable whose address reaches a sync/atomic
	// function, with the first such site for the diagnostic message.
	atomicVars := map[*types.Var]token.Pos{}
	// exempt marks the &v operands themselves, so pass 2 does not flag
	// the atomic call sites that defined the set.
	exempt := map[ast.Expr]bool{}
	for _, pkg := range mp.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // typed-atomic method: safe by construction
				}
				if len(call.Args) == 0 {
					return true
				}
				addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				operand := unparen(addr.X)
				if v := varOf(info, operand); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = call.Pos()
					}
					exempt[operand] = true
				}
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: plain uses anywhere outside constructors.
	for _, pkg := range mp.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			// Declaration ranges of constructor-shaped functions.
			var ctors [][2]token.Pos
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				name := fd.Name.Name
				if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
					strings.EqualFold(name, "reset") || name == "init" {
					ctors = append(ctors, [2]token.Pos{fd.Pos(), fd.End()})
				}
			}
			inCtor := func(pos token.Pos) bool {
				for _, r := range ctors {
					if r[0] <= pos && pos <= r[1] {
						return true
					}
				}
				return false
			}
			ast.Inspect(f, func(x ast.Node) bool {
				e, ok := x.(ast.Expr)
				if !ok || exempt[e] {
					return true
				}
				var v *types.Var
				switch e.(type) {
				case *ast.SelectorExpr, *ast.Ident:
					v = varOf(info, e)
				default:
					return true
				}
				if v == nil {
					return true
				}
				first, isAtomic := atomicVars[v]
				if !isAtomic || inCtor(e.Pos()) {
					return true
				}
				_, isSel := e.(*ast.SelectorExpr)
				if !isSel {
					// A bare ident both names fields in selectors (already
					// handled) and plain vars; only flag idents that are the
					// whole access, not the Sel half of a selector.
					if id := e.(*ast.Ident); info.Uses[id] != v {
						return true
					}
					if v.IsField() {
						return true // the x.f selector case reports instead
					}
				}
				mp.Reportf(e.Pos(),
					"%s is accessed via sync/atomic (first at %s) but read or written plainly here; every access must be atomic",
					v.Name(), mp.Fset.Position(first))
				return !isSel // don't descend into a reported selector twice
			})
		}
	}
}

// varOf resolves an expression to the variable it names: a struct field
// via selector, or a plain variable via identifier.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch n := e.(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := info.Uses[n.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[n].(*types.Var); ok {
			return v
		}
	}
	return nil
}
