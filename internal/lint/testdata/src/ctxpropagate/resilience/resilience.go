// Package resilience is a lint fixture: its import-path segment places it
// in the ctxpropagate analyzer's scope.
package resilience

import (
	"context"
	"time"
)

func slow(ctx context.Context, n int) error { return ctx.Err() }

// badSleep waits uninterruptibly despite holding a cancellable context.
func badSleep(ctx context.Context) error {
	time.Sleep(time.Millisecond) // want "time.Sleep with a context.Context in scope"
	return ctx.Err()
}

// badBackground severs the caller's deadline by minting a fresh root.
func badBackground(ctx context.Context) error {
	return slow(context.Background(), 1) // want "context.Background passed to slow"
}

// badTODOInClosure shows closures capture the enclosing ctx, keeping it in
// scope inside the literal.
func badTODOInClosure(ctx context.Context) error {
	f := func() error {
		return slow(context.TODO(), 2) // want "context.TODO passed to slow"
	}
	_ = ctx
	return f()
}

// badSleepInLitParam: a literal with its own ctx parameter is in scope even
// when the enclosing function is not.
var badSleepInLitParam = func(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "time.Sleep with a context.Context in scope"
	_ = ctx
}

// goodPropagate threads the caller's context through.
func goodPropagate(ctx context.Context) error { return slow(ctx, 3) }

// goodDerived narrows the caller's context rather than replacing it.
func goodDerived(ctx context.Context) error {
	sub, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	return slow(sub, 4)
}

// goodTimer blocks in a select so cancellation is honored.
func goodTimer(ctx context.Context) error {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// goodNoCtx has no context in scope; blocking here is the caller's problem.
func goodNoCtx() { time.Sleep(time.Millisecond) }

// goodRoot has no context in scope, so starting a fresh root is legitimate.
func goodRoot() error { return slow(context.Background(), 5) }
