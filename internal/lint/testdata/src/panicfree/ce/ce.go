// Package ce is a lint fixture: its import-path segment places it in the
// panicfree analyzer's scope.
package ce

import "errors"

// Fit panics on failure — exactly what the rule forbids on the serving
// path.
func Fit(ok bool) {
	if !ok {
		panic("kernel fit failed") // want "panic on the serving path"
	}
}

// FitErr returns the error instead; no diagnostic.
func FitErr(ok bool) error {
	if !ok {
		return errors.New("kernel fit failed")
	}
	return nil
}

// shadowed proves a local function named panic is not the builtin.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
