// Package nn is a lint fixture: its import-path segment places it in the
// panicfree analyzer's compute-core scope (nn/gbt/kernel).
package nn

import "errors"

// TrainBatch panics on a shape mismatch — forbidden now that the compute
// core is on the serving path.
func TrainBatch(rows int) {
	if rows == 0 {
		panic("nn: empty batch") // want "panic on the serving path"
	}
}

// TrainBatchErr returns the error instead; no diagnostic.
func TrainBatchErr(rows int) error {
	if rows == 0 {
		return errors.New("nn: empty batch")
	}
	return nil
}

// simdStub carries an allow directive: unreachable platform stubs are the
// one sanctioned panic in the compute core.
func simdStub() {
	panic("nn: simd unavailable") //lint:allow panicfree unreachable: simdEnabled is false on this platform
}
