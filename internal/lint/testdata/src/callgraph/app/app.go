// Package app is the golden fixture for the call-graph layer: recursion,
// interface dispatch, method values, closures, and go/defer edges. The
// Estimator interface mirrors ce.Estimator's dispatch shape with two
// implementations, so CHA fan-out is observable.
package app

type Estimator interface{ Estimate(x float64) float64 }

type LM struct{ w float64 }

func (m *LM) Estimate(x float64) float64 { return m.w * x }

type Hist struct{ b []float64 }

func (h *Hist) Estimate(x float64) float64 { return h.b[0] + x }

// Dispatch calls through the interface: CHA resolves to both
// implementations.
func Dispatch(e Estimator, x float64) float64 { return e.Estimate(x) }

// Even and Odd are mutually recursive; graph construction must terminate
// and keep both edges.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// Spawn exercises every remaining edge kind from one body.
func Spawn(e Estimator) {
	go worker(e)    // EdgeGo
	defer cleanup() // EdgeDefer

	f := e.Estimate // EdgeMethodValue, CHA fan-out
	_ = f

	add := func(a, b float64) float64 { return a + b } // EdgeClosure
	_ = add

	func() { // EdgeCall: literal invoked in place
		_ = Dispatch(e, 1)
	}()
}

func worker(e Estimator) { _ = Dispatch(e, 2) }

func cleanup() {}
