// Package ce is a lint fixture for //lint:allow: two identical violations,
// one suppressed, so exactly one diagnostic must survive.
package ce

// Checked panics with a directive on the line above: suppressed.
func Checked(ok bool) {
	if !ok {
		//lint:allow panicfree startup-only validation
		panic("validated at startup")
	}
}

// Unchecked panics without a directive: reported.
func Unchecked(ok bool) {
	if !ok {
		panic("no directive") // want "panic on the serving path"
	}
}
