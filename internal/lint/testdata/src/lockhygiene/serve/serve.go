// Package serve is a lint fixture: its import-path segment places it in
// the lockhygiene analyzer's scope.
package serve

import (
	"os"
	"sync"
)

type model struct{}

func (m *model) Update(_ []float64) error { return nil }
func (m *model) Estimate() float64        { return 1 }

type server struct {
	mu       sync.Mutex
	periodMu sync.Mutex
	model    *model
}

// badUpdateUnderLock trains the model while holding the serving lock.
func (s *server) badUpdateUnderLock(xs []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.Update(xs) // want "under a held sync lock"
}

// badIOUnderLock reads a file while holding the lock.
func (s *server) badIOUnderLock() {
	s.mu.Lock()
	_, _ = os.ReadFile("/etc/hostname") // want "os.ReadFile under a held sync lock"
	s.mu.Unlock()
}

// goodShortLock releases the lock before the slow call.
func (s *server) goodShortLock(xs []float64) error {
	s.mu.Lock()
	m := s.model
	s.mu.Unlock()
	return m.Update(xs)
}

// goodTryLock mirrors handlePeriod: a non-blocking latch may span a full
// repair, so TryLock regions are exempt.
func (s *server) goodTryLock(xs []float64) error {
	if !s.periodMu.TryLock() {
		return nil
	}
	defer s.periodMu.Unlock()
	return s.model.Update(xs)
}
