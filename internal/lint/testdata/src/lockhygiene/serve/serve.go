// Package serve is a lint fixture: its import-path segment places it in
// the lockhygiene analyzer's scope.
package serve

import (
	"os"
	"sync"
)

type model struct{}

func (m *model) Update(_ []float64) error { return nil }
func (m *model) Estimate() float64        { return 1 }

type server struct {
	mu       sync.Mutex
	periodMu sync.Mutex
	model    *model
}

// badUpdateUnderLock trains the model while holding the serving lock.
func (s *server) badUpdateUnderLock(xs []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model.Update(xs) // want "under a held sync lock"
}

// badIOUnderLock reads a file while holding the lock.
func (s *server) badIOUnderLock() {
	s.mu.Lock()
	_, _ = os.ReadFile("/etc/hostname") // want "os.ReadFile under a held sync lock"
	s.mu.Unlock()
}

// goodShortLock releases the lock before the slow call.
func (s *server) goodShortLock(xs []float64) error {
	s.mu.Lock()
	m := s.model
	s.mu.Unlock()
	return m.Update(xs)
}

// goodTryLock mirrors handlePeriod: a non-blocking latch may span a full
// repair, so TryLock regions are exempt.
func (s *server) goodTryLock(xs []float64) error {
	if !s.periodMu.TryLock() {
		return nil
	}
	defer s.periodMu.Unlock()
	return s.model.Update(xs)
}

type replica struct{ model *model }

type replicaPool struct {
	free      chan *replica
	mu        sync.Mutex
	refreshMu sync.Mutex
}

// badCheckoutLock funnels every estimate through a mutex — the exact
// single-lock bottleneck the replica pool exists to remove.
func (p *replicaPool) badCheckoutLock() *replica {
	p.mu.Lock() // want "on the replica checkout path"
	defer p.mu.Unlock()
	return <-p.free
}

// goodRefresh: refreshMu serializes rare post-swap re-clones and is the
// one sanctioned lock on pool methods.
func (p *replicaPool) goodRefresh(r *replica) {
	p.refreshMu.Lock()
	defer p.refreshMu.Unlock()
	r.model = &model{}
}

// Estimate reintroduces a blocking serving lock on the public estimate
// path, which must stay channel-only.
func (s *server) Estimate() float64 {
	s.mu.Lock() // want "on the replica checkout path"
	defer s.mu.Unlock()
	return s.model.Estimate()
}
