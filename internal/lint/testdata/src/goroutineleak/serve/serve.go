// Package serve is the goroutineleak fixture: goroutines with and
// without a reachable exit construct, spawned directly, through named
// functions, through interface dispatch, and through an unresolvable
// function value.
package serve

import "context"

type Worker struct {
	tasks chan int
}

// ok: range over a channel exits when the channel closes.
func (w *Worker) startDrain() {
	go func() {
		for range w.tasks {
		}
	}()
}

// ok: select with ctx.Done.
func (w *Worker) startCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-w.tasks:
				_ = t
			}
		}
	}()
}

// ok: the exit lives transitively in a named function.
func (w *Worker) startNamed(ctx context.Context) {
	go w.loop(ctx)
}

func (w *Worker) loop(ctx context.Context) {
	for ctx.Err() == nil {
	}
}

// leak: busy loop with no exit construct anywhere.
func (w *Worker) startHot() {
	go func() { // want "no reachable ctx.Done"
		for {
		}
	}()
}

// leak: a func-typed value cannot be resolved statically.
func (w *Worker) startFire(f func()) {
	go f() // want "cannot be resolved statically"
}

// allowed: documented one-shot.
func (w *Worker) startSanctioned() {
	//lint:allow goroutineleak fixture: bounded one-shot loop for the test
	go func() {
		for {
		}
	}()
}

// Interface dispatch: CHA fans out to both implementations, and the one
// without an exit is reported.
type runner interface{ run(ctx context.Context) }

type good struct{}

func (g *good) run(ctx context.Context) { <-ctx.Done() }

type bad struct{}

func (b *bad) run(ctx context.Context) {
	for {
	}
}

func spawn(r runner, ctx context.Context) {
	go r.run(ctx) // want "no reachable ctx.Done"
}
