// Package serve is the lockorder fixture: an AB/BA inversion where one
// half is transitive, TryLock and refreshMu exemptions, a deferred-unlock
// region, and a transitive slow call under a lock.
package serve

import "sync"

type Server struct {
	mu sync.Mutex
	st sync.Mutex
}

type Journal struct {
	mu sync.Mutex
}

type Model struct{}

func (m *Model) Update(x float64) {}

// ab acquires mu then st directly.
func (s *Server) ab() {
	s.mu.Lock()
	s.st.Lock() // want "lock acquisition cycle"
	s.st.Unlock()
	s.mu.Unlock()
}

// ba acquires st, then mu three frames away: the inversion only exists
// module-wide.
func (s *Server) ba() {
	s.st.Lock()
	s.lockMuIndirect()
	s.st.Unlock()
}

func (s *Server) lockMuIndirect() {
	s.mu.Lock()
	s.mu.Unlock()
}

// try holds mu via TryLock while taking j.mu; inverse takes j.mu then mu.
// That would be a cycle if TryLock opened a region — it must not, because
// a non-blocking acquisition cannot deadlock.
func (s *Server) try(j *Journal) {
	if !s.mu.TryLock() {
		return
	}
	j.mu.Lock()
	j.mu.Unlock()
	s.mu.Unlock()
}

func (s *Server) inverse(j *Journal) {
	j.mu.Lock()
	s.lockMuIndirect()
	j.mu.Unlock()
}

// periodUnderLock shields slow work behind a helper: lockhygiene cannot
// see it, lockorder's transitive check must.
func (s *Server) periodUnderLock(m *Model) {
	s.mu.Lock()
	s.repair(m) // want "transitively reaches m.Update"
	s.mu.Unlock()
}

func (s *Server) repair(m *Model) {
	m.Update(1)
}

// directSlow is lockhygiene's beat: lockorder stays silent on direct
// slow calls so the same line is not reported twice.
func (s *Server) directSlow(m *Model) {
	s.mu.Lock()
	m.Update(2)
	s.mu.Unlock()
}

// refresher keeps refreshMu's sanctioned exemption from the hygiene
// check (though not from ordering).
type refresher struct {
	refreshMu sync.Mutex
}

func (r *refresher) refresh(s *Server, m *Model) {
	r.refreshMu.Lock()
	s.repair(m)
	r.refreshMu.Unlock()
}

// deferred pins the deferred-unlock region shape: the region runs to the
// end of the statement list, and the edge st → tracer.tmu is acyclic.
type tracer struct {
	tmu sync.Mutex
}

func (s *Server) deferred(tr *tracer) {
	s.st.Lock()
	defer s.st.Unlock()
	tr.tmu.Lock()
	tr.tmu.Unlock()
}
