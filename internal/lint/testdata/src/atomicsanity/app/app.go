// Package app is the atomicsanity fixture: legacy sync/atomic package
// functions applied to plain fields and globals, mixed with plain
// accesses. Constructor-shaped code is exempt; typed atomics are immune
// by construction.
package app

import "sync/atomic"

type counter struct {
	n   int64
	gen uint64
	ok  int64
}

func NewCounter() *counter {
	c := &counter{}
	c.n = 0 // constructor: single-owner init before publication is exempt
	return c
}

func (c *counter) bump() {
	atomic.AddInt64(&c.n, 1)
	atomic.StoreUint64(&c.gen, 7)
}

func (c *counter) read() int64 {
	return c.n // want "accessed via sync/atomic"
}

func (c *counter) mix() {
	c.gen++ // want "accessed via sync/atomic"
	v := atomic.LoadUint64(&c.gen)
	_ = v
}

func (c *counter) fine() int64 {
	return atomic.LoadInt64(&c.n)
}

// ok is never touched atomically; plain access is plain access.
func (c *counter) plainOnly() int64 {
	c.ok++
	return c.ok
}

var global int64

func touchGlobal() {
	atomic.AddInt64(&global, 1)
}

func readGlobal() int64 {
	return global // want "accessed via sync/atomic"
}

// typed atomics never trip the rule: their value cannot be read plainly.
type typed struct{ n atomic.Int64 }

func (t *typed) bump() int64 {
	t.n.Add(1)
	return t.n.Load()
}
