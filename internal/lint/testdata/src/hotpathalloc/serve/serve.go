// Package serve is the hotpathalloc fixture: a miniature serving stack
// whose handleEstimate / Estimate / checkout / checkin shape mirrors the
// real one, with every allocating construct the rule knows about on the
// reachable side and allocation-heavy code behind allow pruning or
// unreachability on the other.
package serve

import "fmt"

type Estimator interface{ Estimate(x float64) float64 }

type replica struct{ model Estimator }

type replicaPool struct{ free chan *replica }

type Server struct {
	pool  *replicaPool
	cache *estimateCache
	buf   []float64
	tag   string
}

// estimateCache mirrors the real cache's shape: a lock-free probe (get), a
// serialized insert (put), and a free-listed key scratch whose miss branch
// is the one sanctioned allocation on the lookup path.
type estimateCache struct {
	scratch chan []float64
	keys    []uint64
	trail   []float64
}

// get is rooted directly: pure index arithmetic, nothing to flag.
func (c *estimateCache) get(key []float64, h uint64) (float64, bool) {
	for i := range key {
		if c.keys[i%len(c.keys)] != h {
			return 0, false
		}
	}
	return key[0], true
}

// put is rooted directly; its bookkeeping must stay allocation-free too.
func (c *estimateCache) put(key []float64, h uint64) {
	c.trail = append(c.trail, key[0]) // want "append may grow"
	c.keys[0] = h
}

// cacheLookup carries the sanctioned free-list-miss allocation behind a
// statement allow, and one unsanctioned allocation that must still fire.
func (s *Server) cacheLookup(x float64) float64 {
	var key []float64
	select {
	case key = <-s.cache.scratch:
	default:
		//lint:allow hotpathalloc fixture: key-scratch free-list miss allocates once, recycled on release
		key = make([]float64, 4)
	}
	probe := &estimateCache{} // want "composite literal escapes"
	_ = probe
	v, _ := s.cache.get(key, uint64(x))
	return v
}

// cheap is the zero-alloc implementation: nothing to flag.
type cheap struct{ w float64 }

func (c *cheap) Estimate(x float64) float64 { return c.w * x }

// boxy is reachable only through interface dispatch; its allocation must
// still be found, proving the CHA fan-out.
type boxy struct{}

func (b *boxy) Estimate(x float64) float64 {
	tmp := []float64{x} // want "slice literal allocates"
	return tmp[0]
}

// heavy allocates by design; the decl-level allow prunes the whole
// function from the hot-path walk.
//
//lint:allow hotpathalloc fixture: heavyweight model allocates by design
func (h *heavy) Estimate(x float64) float64 {
	buf := make([]float64, 8)
	return buf[0] + x
}

type heavy struct{}

func (p *replicaPool) checkout() *replica { return <-p.free }

func (p *replicaPool) checkin(r *replica) {
	select {
	case p.free <- r:
	default:
	}
}

func (s *Server) handleEstimate(x float64) float64 {
	if x < 0 {
		panic(fmt.Sprintf("bad %v", x)) // panic arguments are exempt
	}
	r := s.pool.checkout()
	defer s.pool.checkin(r)
	out := r.model.Estimate(x)
	//lint:allow hotpathalloc fixture: sampled slow branch is sanctioned
	s.slowPath(x)
	go s.logit(x) // want "go statement allocates"
	return out
}

func (s *Server) Estimate(x float64) float64 {
	tmp := make([]float64, 4) // want "make allocates"
	s.buf = append(s.buf, x)  // want "append may grow"
	p := new(replica)         // want "new allocates"
	_ = p
	m := map[string]float64{"q": x} // want "map literal allocates"
	_ = m
	r := &replica{} // want "composite literal escapes"
	_ = r
	msg := fmt.Sprintln(x) // want "fmt.Sprintln allocates"
	name := "q" + s.tag    // want "string concatenation allocates"
	bs := []byte(name)     // want "conversion copies"
	_ = bs
	sink(x) // want "interface boxing of float64"
	var v any
	v = msg // want "interface boxing of string"
	_ = v
	k := x
	f := func() float64 { return k } // want "closure capturing k allocates"
	return tmp[0] + f()
}

// slowPath allocates, but its only call site carries an allow: the edge
// is cut and nothing here is reported.
func (s *Server) slowPath(x float64) {
	s.buf = append(s.buf, make([]float64, 16)...)
}

func (s *Server) logit(x float64) { _ = x }

func sink(v any) { _ = v }

// unreachableHelper is never called from a hot-path root: its allocation
// is out of scope.
func unreachableHelper() []int { return make([]int, 9) }
