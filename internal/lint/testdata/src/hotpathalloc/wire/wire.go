// Package wire is the hotpathalloc fixture for the binary batch codec: a
// miniature Buffer whose DecodeBatch / EncodeResponse / ReadFrame roots
// mirror the real codec — header arithmetic, subslice views and reclaimed
// request storage on the zero-alloc side, the sanctioned grow-once slab
// behind a statement allow, and every other allocation flagged.
package wire

import "io"

type Request struct {
	Rows  int
	Preds [][]float64
}

type Buffer struct {
	In     []byte
	Out    []byte
	Req    Request
	floats []float64
	lp     [4]byte
}

// DecodeBatch: header reads and subslice views allocate nothing; the slab
// grow is sanctioned once, but the per-row append is not (the real codec
// pre-sizes Preds to the row count before slicing views out).
func (b *Buffer) DecodeBatch(cols int) error {
	if len(b.In) < 24 {
		return io.ErrUnexpectedEOF
	}
	rows := int(b.In[16])
	need := rows * cols
	if cap(b.floats) < need {
		//lint:allow hotpathalloc fixture: grow-once decode slab, reused across frames
		b.floats = make([]float64, need)
	}
	view := b.floats[:need]
	b.Req.Rows = rows
	b.Req.Preds = b.Req.Preds[:0]
	for i := 0; i < rows; i++ {
		b.Req.Preds = append(b.Req.Preds, view[i*cols:(i+1)*cols]) // want "append may grow"
	}
	return nil
}

// EncodeResponse reclaims the request's backing storage, which is free;
// the unsanctioned grow and the label copy are the violations.
func (b *Buffer) EncodeResponse(cards []float64) {
	out := b.In[:0]
	for i := range cards {
		out = append(out, byte(i)) // want "append may grow"
	}
	label := []byte(b.debugLabel()) // want "conversion copies"
	_ = label
	b.Out = out
}

// ReadFrame reads the length prefix into buffer-owned scratch (free); the
// drain-on-error fallback allocates and must be flagged. Dump is pruned by
// its decl-level allow even though this call site reaches it.
func (b *Buffer) ReadFrame(r io.Reader) error {
	if _, err := io.ReadFull(r, b.lp[:]); err != nil {
		_ = b.Dump()
		body, _ := io.ReadAll(r) // want "io.ReadAll allocates"
		_ = body
		return err
	}
	if int(b.lp[0]) > cap(b.In) {
		panic("frame too large for fixture") // panic arguments are exempt
	}
	return b.fill(r)
}

// fill is reachable from ReadFrame: its scratch and boxing must be
// flagged through the call-graph walk, not just at the root.
func (b *Buffer) fill(r io.Reader) error {
	tmp := make([]byte, 16) // want "make allocates"
	var v any
	v = len(tmp) // want "interface boxing of int"
	_ = v
	_, err := io.ReadFull(r, tmp)
	return err
}

func (b *Buffer) debugLabel() string { return "wire" }

// Dump allocates by design; the decl-level allow prunes the whole
// function from the walk even though ReadFrame's error branch calls it.
//
//lint:allow hotpathalloc fixture: diagnostics dump is off the hot path
func (b *Buffer) Dump() []string {
	return []string{"rows", "cols"}
}

// unreachableGrow is never called from a rooted codec path: out of scope.
func unreachableGrow() []byte { return make([]byte, 64) }
