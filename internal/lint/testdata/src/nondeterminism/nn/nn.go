// Package nn is a lint fixture: its import-path segment places it in the
// nondeterminism analyzer's scope.
package nn

import (
	"math/rand"
	"time"
)

// Bad draws from the global source and reads the wall clock.
func Bad() float64 {
	t := time.Now()     // want "time.Now in algorithm package"
	v := rand.Float64() // want "global math/rand.Float64"
	rand.Seed(42)       // want "global math/rand.Seed"
	return v + float64(t.Unix()%2) + float64(rand.Intn(3)) // want "global math/rand.Intn"
}

// Good uses only an injected, seeded source.
func Good(rng *rand.Rand) float64 {
	fresh := rand.New(rand.NewSource(7)) // constructors are fine
	return rng.Float64() + fresh.Float64()
}
