// Package resilience pins the statement-scoped reach of //lint:allow: a
// directive above (or inside) a multi-line statement must cover a
// diagnostic reported on an inner line of that statement — here the
// context.Background() argument on the wrapped call's second line — and
// the same shape without a directive must still be reported.
package resilience

import "context"

func do(ctx context.Context, n int) error { return ctx.Err() }

// covered: the directive precedes the statement, the diagnostic lands
// two lines below it, inside the statement's span.
func covered(ctx context.Context) {
	//lint:allow ctxpropagate fixture: statement-scoped suppression
	_ = do(
		context.Background(),
		1,
	)
}

// coveredSibling: the directive trails a different line of the same
// statement than the one the diagnostic lands on.
func coveredSibling(ctx context.Context) {
	_ = do(
		context.Background(),
		2, //lint:allow ctxpropagate fixture: directive elsewhere in the statement
	)
}

// uncovered twin: same shape, no directive, still reported.
func uncovered(ctx context.Context) {
	_ = do(
		context.Background(), // want "passed to do with a context.Context in scope"
		3,
	)
}
