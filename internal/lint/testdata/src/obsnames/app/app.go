// Package app is a lint fixture for the obsnames rule. Its Registry type
// stands in for obs.Registry: the rule matches any receiver named Registry,
// so the fixture needs no module imports.
package app

type Registry struct{}
type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type HistogramOpts struct{}

func (r *Registry) Counter(name string, labels ...string) *Counter { return nil }
func (r *Registry) Gauge(name string, labels ...string) *Gauge     { return nil }
func (r *Registry) Histogram(name string, opts HistogramOpts, labels ...string) *Histogram {
	return nil
}

// notRegistry has the same method names but a different receiver type; the
// rule must ignore it.
type notRegistry struct{}

func (notRegistry) Counter(name string) *Counter { return nil }

const viaConstant = "request_latency"

func register(r *Registry, other notRegistry) {
	r.Counter("warper_requests_total")
	r.Counter("badRequests_total")  // want "not snake_case"
	r.Counter("warper_reqs_count")  // want "must end in _total"
	r.Counter("_leading_total")     // want "not snake_case"
	r.Gauge("warper_pool_size")
	r.Gauge("PoolSize") // want "not snake_case"
	r.Histogram("warper_latency_seconds", HistogramOpts{})
	r.Histogram("warper_payload_bytes", HistogramOpts{})
	r.Histogram("warper_qerror_ratio", HistogramOpts{})
	r.Histogram("warper_latency", HistogramOpts{})     // want "must end in a unit suffix"
	r.Histogram(viaConstant, HistogramOpts{})          // want "must end in a unit suffix"
	r.Gauge("warper_latency_seconds")                  // want "registered as both histogram and gauge"
	other.Counter("notARegistry.soAnythingGoes")       // different receiver: ignored
	//lint:allow obsnames legacy dashboard name kept during migration
	r.Counter("legacy.dotted.name")

	// Overload-safety names (PR 8): serve-prefixed gauges and per-reason
	// labeled counters must pass; a reason-style counter missing _total must
	// still be caught.
	r.Gauge("serve_health_state")
	r.Counter("estimate_fallback_total", "reason", "timeout")
	r.Counter("estimate_shed_total", "reason", "queue_full")
	r.Counter("estimate_fallback", "reason", "breaker") // want "must end in _total"

	// Estimate-cache names (PR 9): event counters end in _total, the
	// occupancy gauge is a bare noun; a camel-cased cache counter must
	// still be caught.
	r.Counter("estimate_cache_hits_total")
	r.Counter("estimate_cache_misses_total")
	r.Counter("estimate_cache_evictions_total")
	r.Counter("estimate_cache_invalidations_total")
	r.Gauge("estimate_cache_entries")
	r.Counter("estimateCacheHits_total") // want "not snake_case"

	// Binary wire protocol names (PR 10): event counters end in _total and
	// the batch-size histogram uses the _rows unit; a unitless histogram and
	// a camel-cased wire counter must still be caught.
	r.Counter("wire_batches_total")
	r.Counter("wire_rows_total")
	r.Counter("wire_decode_errors_total")
	r.Counter("wire_buffer_misses_total")
	r.Histogram("wire_batch_rows", HistogramOpts{})
	r.Histogram("wire_batch_size", HistogramOpts{}) // want "must end in a unit suffix"
	r.Counter("wireBatches_total")                  // want "not snake_case"
}
