// Package app is a lint fixture for errcheck-lite, which runs on every
// package.
package app

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fallible() error               { return errors.New("boom") }
func fallible2() (int, error)       { return 0, errors.New("boom") }
func infallible() int               { return 1 }

// Bad drops errors silently.
func Bad() {
	fallible()  // want "result of fallible includes an error"
	fallible2() // want "result of fallible2 includes an error"
}

// Good handles, discards explicitly, defers, or calls exempt printers.
func Good(f *os.File) error {
	if err := fallible(); err != nil {
		return err
	}
	_ = fallible()
	defer f.Close()
	infallible()
	fmt.Println("status")
	fmt.Fprintln(os.Stderr, "status")
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	return nil
}
