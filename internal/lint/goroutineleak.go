package lint

// GoroutineLeak pins the lifecycle half of the resilience story: every
// goroutine spawned by the serving, adaptation, and worker packages must
// be able to find its way out — transitively reach a ctx.Done()/ctx.Err()
// check or a channel receive (including range-over-channel) that a
// closing sender unblocks. A goroutine without one outlives its server,
// pins its captures, and turns every test binary into a slow leak; the
// ROADMAP's multi-tenant fleet work multiplies whatever leaks today.
//
// The check walks the call graph from each go statement's resolved
// target (function, method, CHA interface fan-out, or function literal)
// and searches every reachable body for an exit construct. Exit
// detection is syntactic and deliberately generous — any channel receive
// counts, because the module's worker pools exit by draining a closed
// task channel. Goroutines whose target cannot be resolved (a func-typed
// variable) are flagged too: an invisible lifecycle is as reviewable as
// a missing one, and //lint:allow goroutineleak with a reason is the
// explicit override.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var GoroutineLeak = &Analyzer{
	Name:      "goroutineleak",
	Doc:       "every go statement in serving/adaptation packages must transitively reach a ctx.Done()/channel-receive exit",
	Packages:  []string{"serve", "resilience", "obs", "adapt", "annotator", "parallel"},
	RunModule: runGoroutineLeak,
}

func runGoroutineLeak(mp *ModulePass) {
	exitMemo := map[*CGNode]bool{}
	for _, pkg := range mp.Pkgs {
		if !mp.Analyzer.applies(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				gs, ok := x.(*ast.GoStmt)
				if !ok {
					return true
				}
				if mp.Allowed(gs.Pos()) {
					return true
				}
				targets := mp.Graph.ResolveCall(pkg, gs.Call)
				if len(targets) == 0 {
					mp.Reportf(gs.Pos(), "goroutine target cannot be resolved statically; give it a ctx.Done()/channel exit in a named function or add //lint:allow goroutineleak with a reason")
					return true
				}
				for _, t := range targets {
					if !exitReachable(t, exitMemo, map[*CGNode]bool{}) {
						mp.Reportf(gs.Pos(), "goroutine (%s) has no reachable ctx.Done()/channel-receive exit and may outlive its owner", t.Name)
						break
					}
				}
				return true
			})
		}
	}
}

// exitReachable reports whether n or any transitive callee contains an
// exit construct.
func exitReachable(n *CGNode, memo map[*CGNode]bool, walking map[*CGNode]bool) bool {
	if v, ok := memo[n]; ok {
		return v
	}
	if walking[n] {
		return false // recursion: no exit found on this path yet
	}
	walking[n] = true
	found := hasExitConstruct(n)
	for _, e := range n.Out {
		if found {
			break
		}
		found = exitReachable(e.Callee, memo, walking)
	}
	delete(walking, n)
	memo[n] = found
	return found
}

// hasExitConstruct scans n's own body (excluding nested literals, which
// are separate nodes) for a channel receive, a range over a channel, or
// a ctx.Done()/ctx.Err() call.
func hasExitConstruct(n *CGNode) bool {
	if n.Body == nil {
		return false
	}
	info := n.Pkg.Info
	found := false
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch v := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			sel, ok := unparen(v.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			full := fn.FullName()
			if full == "(context.Context).Done" || full == "(context.Context).Err" {
				found = true
			}
		}
		return !found
	})
	return found
}
