package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked module package.
type Package struct {
	Path  string // import path, e.g. warper/internal/serve
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks module packages using only the standard
// library: module-internal imports are resolved against the module root,
// everything else is delegated to the source importer (the gc importer is
// unusable here — modern Go toolchains no longer ship compiled stdlib
// archives).
type Loader struct {
	// Module is the module path from go.mod (e.g. "warper").
	Module string
	// Root is the absolute directory containing go.mod.
	Root string
	// Build selects which build-constrained files LoadDir admits; nil
	// means build.Default, i.e. the host platform. Overriding GOARCH/GOOS
	// here lets tests pin that a tagged pair (the AVX2 kernels in
	// simd_amd64.go vs the portable simd_other.go) stays loadable — and
	// therefore lintable — no matter which architecture runs the linter.
	Build *build.Context

	Fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// buildContext returns the file-matching context: Build if set, else the
// host default.
func (l *Loader) buildContext() *build.Context {
	if l.Build != nil {
		return l.Build
	}
	return &build.Default
}

// NewLoader builds a loader for the module rooted at root, reading the
// module path from go.mod.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Module: module,
		Root:   root,
		Fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*Package{},
	}, nil
}

// Import implements types.Importer, routing module-internal paths to the
// loader's own checker and everything else to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg.Types, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.LoadDir(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Test files and testdata are excluded: the lint rules govern
// shipped code, and tests legitimately panic and drop errors. Build
// constraints are honored for the loader's build context (the host
// platform unless Build overrides it), so of a GOARCH-split pair
// (e.g. simd_amd64.go / simd_other.go) exactly one side is loaded, same as
// go build.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := l.buildContext().MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// LoadAll loads every package in the module, in deterministic path order.
// Directories named testdata, hidden directories, and directories with no
// non-test Go files are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
