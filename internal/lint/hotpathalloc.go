package lint

// HotPathAlloc statically enforces the zero-allocation serving promise
// that bench-serve's AllocsPerRun envelope only samples at runtime: no
// allocating construct may be reachable from the /estimate handler, the
// replica checkout/checkin path, batched inference, or the tracer's
// off/sampled bookkeeping. PR 4–6 bought the module model-owned scratch
// buffers, a recycled trace pool, and a channel free-list precisely so
// these paths never touch the garbage collector; this rule pins the
// property through every refactor by walking the call graph from the
// serving roots and flagging:
//
//   - make, new, growing append
//   - map/slice composite literals, and &T{...} (escaping construction)
//   - capturing closures and go statements
//   - fmt / encoding/json and a curated set of allocating stdlib calls
//   - interface boxing of non-pointer values (call args and assignments)
//   - non-constant string concatenation and string<->[]byte conversions
//
// Constructs inside panic(...) arguments are exempt: a panic is already
// the end of the request, and its message formatting may allocate.
//
// Suppression composes with the call graph: //lint:allow hotpathalloc on
// a call site cuts that edge (the callee runs on a sanctioned slow
// branch), and on a function declaration prunes the whole function (the
// heavyweight MSCN estimator allocates by design; the zero-alloc promise
// covers the LM serving configuration).
//
// Known approximations, both documented in DESIGN.md §13: calls through
// func-typed variables are invisible (under-approximation), and CHA
// interface fan-out visits implementations the runtime would never pick
// (over-approximation, answered with decl-level allows).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var HotPathAlloc = &Analyzer{
	Name:      "hotpathalloc",
	Doc:       "no allocating constructs reachable from the /estimate, checkout, inference, or tracer hot paths",
	Packages:  []string{"serve", "obs", "ce", "nn", "gbt", "kernel", "query", "wire"},
	RunModule: runHotPathAlloc,
}

// hotPathRoots are the serving entry points the zero-alloc promise
// covers, mirroring the bench-serve runtime envelope: the HTTP estimate
// handler and the public Estimate method, replica checkout/checkin, the
// tracer paths every request pays, and batched inference.
var hotPathRoots = []string{
	"serve.(*Server).handleEstimate",
	"serve.(*Server).Estimate",
	"serve.(*Server).EstimateBudget",
	"serve.(*replicaPool).checkout",
	"serve.(*replicaPool).checkoutDeadline",
	"serve.(*replicaPool).tryCheckout",
	"serve.(*replicaPool).checkin",
	// The estimate cache's lookup and insert paths run on every request
	// when the cache is enabled; rooting them (in addition to reaching them
	// through Estimate) keeps the zero-alloc proof local to the cache.
	"serve.(*Server).cacheLookup",
	"serve.(*Server).cacheFill",
	"serve.(*estimateCache).get",
	"serve.(*estimateCache).put",
	"obs.(*Tracer).Acquire",
	"obs.(*Trace).EnterStage",
	"obs.(*Tracer).Finish",
	"nn.(*Network).InferBatch",
	// The binary batch protocol: handlers, the group-serving loop, the
	// embeddable entry point, and the wire codec's decode/encode pair all
	// ride the same zero-alloc promise as the scalar /estimate path.
	"serve.(*Server).handleEstimateBatch",
	"serve.(*Server).handleEstimateStream",
	"serve.(*Server).serveWireBatch",
	"serve.(*Server).EstimateBatchWire",
	"wire.(*Buffer).DecodeBatch",
	"wire.(*Buffer).EncodeResponse",
	"wire.(*Buffer).ReadFrame",
}

// allocPkgs: every function in these packages allocates (or may), and
// none belongs on the hot path.
var allocPkgs = map[string]bool{
	"fmt":           true,
	"encoding/json": true,
	"reflect":       true,
	"regexp":        true,
}

// allocFuncs is the curated set of allocating stdlib functions outside
// allocPkgs, keyed by types.Func.FullName.
var allocFuncs = map[string]bool{
	"errors.New": true, "errors.Join": true,
	"strings.Repeat": true, "strings.Join": true, "strings.Split": true,
	"strings.SplitN": true, "strings.Fields": true, "strings.Replace": true,
	"strings.ReplaceAll": true, "strings.ToUpper": true, "strings.ToLower": true,
	"(*strings.Builder).String": true,
	"(*bytes.Buffer).String":    true,
	"bytes.NewBuffer":           true, "bytes.NewReader": true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatFloat": true,
	"strconv.Quote": true,
	"sort.Slice":    true, "sort.SliceStable": true,
	"time.After": true, "time.NewTimer": true, "time.NewTicker": true, "time.Tick": true,
	"context.WithCancel": true, "context.WithTimeout": true,
	"context.WithDeadline": true, "context.WithValue": true,
	"io.ReadAll": true, "os.ReadFile": true,
}

func runHotPathAlloc(mp *ModulePass) {
	g := mp.Graph
	visited := map[*CGNode]bool{}
	for _, rootName := range hotPathRoots {
		for _, root := range g.Named(rootName) {
			hotPathDFS(mp, root, rootName, visited)
		}
	}
}

// hotPathDFS walks reachable nodes, pruning decl-level allows and
// allowed call sites, and scans each body once for allocating constructs.
func hotPathDFS(mp *ModulePass, n *CGNode, path string, visited map[*CGNode]bool) {
	if visited[n] {
		return
	}
	visited[n] = true
	if mp.Allowed(n.Pos) {
		return // decl-level allow: the whole function is sanctioned
	}
	if n.Body != nil {
		scanAllocs(mp, n, path)
	}
	for _, e := range n.Out {
		if mp.Allowed(e.Pos) {
			continue // call-site allow: this edge is a sanctioned slow branch
		}
		next := path
		if !visited[e.Callee] {
			next = path + " → " + e.Callee.Name
		}
		hotPathDFS(mp, e.Callee, next, visited)
	}
}

// scanAllocs flags allocating constructs in n's own body, excluding
// nested function literals (separate nodes) and panic arguments.
func scanAllocs(mp *ModulePass, n *CGNode, path string) {
	info := n.Pkg.Info
	report := func(pos token.Pos, what string) {
		mp.Reportf(pos, "%s on the zero-alloc hot path (via %s)", what, path)
	}

	// panic(...) argument ranges are exempt: formatting a crash message
	// may allocate, and one line cannot carry two allow directives.
	var panicArgs [][2]token.Pos
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				panicArgs = append(panicArgs, [2]token.Pos{call.Lparen, call.Rparen})
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicArgs {
			if r[0] <= pos && pos <= r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(n.Body, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		if inPanic(x.Pos()) {
			return false
		}
		switch v := x.(type) {
		case *ast.FuncLit:
			if caps := captures(info, v); len(caps) > 0 {
				report(v.Pos(), "closure capturing "+strings.Join(caps, ", ")+" allocates")
			}
			return false // the literal's body is scanned as its own node
		case *ast.GoStmt:
			report(v.Pos(), "go statement allocates a goroutine")
		case *ast.CallExpr:
			scanCallAlloc(mp, info, v, report)
		case *ast.CompositeLit:
			switch info.TypeOf(v).Underlying().(type) {
			case *types.Map:
				report(v.Pos(), "map literal allocates")
			case *types.Slice:
				report(v.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if cl, ok := unparen(v.X).(*ast.CompositeLit); ok {
					if _, isStruct := info.TypeOf(cl).Underlying().(*types.Struct); isStruct {
						report(v.Pos(), "&composite literal escapes to the heap")
					}
				}
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isStringType(info.TypeOf(v)) && info.Types[v].Value == nil {
				// Flag only the outermost concat of a chain.
				report(v.Pos(), "non-constant string concatenation allocates")
				return false
			}
		case *ast.AssignStmt:
			scanBoxingAssign(info, v, report)
		}
		return true
	})
}

// scanCallAlloc flags allocation arising from one call expression:
// builtins, conversions, allocating stdlib callees, and interface boxing
// of arguments.
func scanCallAlloc(mp *ModulePass, info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	fun := unparen(call.Fun)

	// Conversions: only string <-> []byte/[]rune copies allocate.
	if tv, ok := info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.TypeOf(call.Args[0])
		if (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src)) {
			report(call.Pos(), "string/[]byte conversion copies and allocates")
		}
		return
	}

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	var fn *types.Func
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ = info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[f.Sel].(*types.Func)
	}
	if fn != nil && fn.Pkg() != nil {
		if allocPkgs[fn.Pkg().Path()] || allocFuncs[fn.FullName()] {
			report(call.Pos(), fn.FullName()+" allocates")
			return
		}
	}

	// Interface boxing: a concrete non-pointer-shaped argument passed to
	// an interface parameter forces a heap copy.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // f(xs...) passes the slice through, no per-arg boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || boxFree(at) || isUntypedNil(info, arg) {
			continue
		}
		report(arg.Pos(), "interface boxing of "+at.String()+" allocates")
	}
}

// scanBoxingAssign flags assignments that box a concrete value into an
// interface-typed location.
func scanBoxingAssign(info *types.Info, as *ast.AssignStmt, report func(token.Pos, string)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := info.TypeOf(lhs)
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		rt := info.TypeOf(as.Rhs[i])
		if rt == nil || types.IsInterface(rt) || boxFree(rt) || isUntypedNil(info, as.Rhs[i]) {
			continue
		}
		report(as.Rhs[i].Pos(), "interface boxing of "+rt.String()+" allocates")
	}
}

// captures lists variables a function literal closes over: objects used
// inside the literal but declared outside it, excluding package-level
// names and struct fields.
func captures(info *types.Info, lit *ast.FuncLit) []string {
	var out []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level: no capture
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal (params, locals)
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	return out
}

// boxFree reports whether values of t fit an interface's data word
// without allocating: pointer-shaped types.
func boxFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
