package lint

// This file builds a module-wide call graph over the loaded packages so
// analyzers can check transitive properties — "no allocation reachable
// from the estimate handler", "every goroutine reaches an exit", "no lock
// cycle" — that per-package AST walks cannot see.
//
// Resolution is CHA-style (class hierarchy analysis) over go/types:
//
//   - direct calls and method calls on concrete receivers resolve to the
//     single declared function;
//   - interface method calls fan out to that method on every module named
//     type whose method set satisfies the interface (types.Implements),
//     which over-approximates the dynamic targets but never misses one
//     that lives in this module;
//   - method values (s.handleEstimate passed as a handler) and method
//     expressions get EdgeMethodValue edges with the same resolution;
//   - function literals are first-class nodes, reached by EdgeClosure
//     (built and passed around) or by the direct kind when invoked in
//     place; go f(...) and defer f(...) mark their edges EdgeGo/EdgeDefer.
//
// Known holes, deliberate for a stdlib-only analyzer: calls through
// func-typed variables and struct fields are unresolved (no edge), and
// package-level variable initializers have no node. Rules that rely on
// the graph document which side of over/under-approximation they sit on.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EdgeKind classifies how a call-graph edge is taken.
type EdgeKind uint8

const (
	// EdgeCall is a direct static call to a declared function or a
	// method on a concrete receiver.
	EdgeCall EdgeKind = iota
	// EdgeDynamic is an interface method call, resolved by CHA to every
	// module implementation.
	EdgeDynamic
	// EdgeMethodValue is a method value or method expression reference;
	// the method may run later, from anywhere the value flows.
	EdgeMethodValue
	// EdgeClosure is a reference to a function literal that is not
	// invoked on the spot.
	EdgeClosure
	// EdgeGo is a call spawned as a goroutine.
	EdgeGo
	// EdgeDefer is a deferred call.
	EdgeDefer
)

// String names the kind for golden tests and diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDynamic:
		return "dynamic"
	case EdgeMethodValue:
		return "methodvalue"
	case EdgeClosure:
		return "closure"
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	}
	return "unknown"
}

// A CGEdge is one outgoing call edge.
type CGEdge struct {
	Callee *CGNode
	Pos    token.Pos // call or reference site
	Kind   EdgeKind
}

// A CGNode is one function in the graph: a declared function or method
// (Obj set) or a function literal (Lit set).
type CGNode struct {
	// Name is the stable display name: pkgname.Func,
	// pkgname.(*Recv).Method, pkgname.Recv.Method, or parent$n for the
	// n-th function literal inside parent.
	Name string
	Obj  *types.Func
	Lit  *ast.FuncLit
	Pkg  *Package
	Body *ast.BlockStmt // nil for body-less (assembly-backed) declarations
	Pos  token.Pos      // declaration site, where decl-level //lint:allow applies
	Out  []CGEdge
}

// A CallGraph is the module-wide graph plus the indexes rules query.
type CallGraph struct {
	Fset *token.FileSet
	Pkgs []*Package

	funcs  map[*types.Func]*CGNode
	lits   map[*ast.FuncLit]*CGNode
	byName map[string][]*CGNode
	nodes  []*CGNode

	// named holds every non-interface named type in the module, the CHA
	// universe; chaCache memoizes per (interface, method) fan-outs.
	named    []*types.Named
	chaCache map[chaKey][]*CGNode
}

type chaKey struct {
	iface  *types.Interface
	method string
}

// BuildCallGraph constructs the graph over the loaded packages. Node and
// edge order is deterministic: declaration order within files, sorted
// package order as loaded, and name-sorted CHA fan-outs.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Pkgs:     pkgs,
		funcs:    map[*types.Func]*CGNode{},
		lits:     map[*ast.FuncLit]*CGNode{},
		byName:   map[string][]*CGNode{},
		chaCache: map[chaKey][]*CGNode{},
	}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	// Pass 1: index declared functions and the CHA type universe.
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.named = append(g.named, named)
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{
					Name: funcDisplayName(fn),
					Obj:  fn,
					Pkg:  pkg,
					Body: fd.Body,
					Pos:  fd.Pos(),
				}
				g.funcs[fn] = n
				g.byName[n.Name] = append(g.byName[n.Name], n)
				g.nodes = append(g.nodes, n)
			}
		}
	}
	// Pass 2: edges (function literals are discovered and walked here).
	for _, n := range g.nodes[:len(g.nodes):len(g.nodes)] {
		if n.Body != nil {
			g.walk(n, n.Body)
		}
	}
	return g
}

// FuncNode returns the node for a declared function, or nil.
func (g *CallGraph) FuncNode(fn *types.Func) *CGNode { return g.funcs[fn] }

// LitNode returns the node for a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *CGNode { return g.lits[lit] }

// Named returns every node with the given display name. Real module code
// yields one node; fixtures that mirror package names may add more.
func (g *CallGraph) Named(name string) []*CGNode { return g.byName[name] }

// Nodes returns every node, name-sorted for deterministic iteration.
func (g *CallGraph) Nodes() []*CGNode {
	out := append([]*CGNode(nil), g.nodes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// ResolveCall resolves a call expression in pkg to its possible module
// callees, the same way edge construction does. Used by rules that start
// from a syntactic site (a go statement) rather than a node.
func (g *CallGraph) ResolveCall(pkg *Package, call *ast.CallExpr) []*CGNode {
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		if n := g.lits[lit]; n != nil {
			return []*CGNode{n}
		}
		return nil
	}
	targets, _ := g.resolveTargets(pkg, call.Fun)
	return targets
}

// walk adds the edges out of n, whose body statements live in root.
// Nested function literals become their own nodes and are walked
// recursively; the outer walk does not descend into them.
func (g *CallGraph) walk(n *CGNode, root *ast.BlockStmt) {
	pkg := n.Pkg
	info := pkg.Info

	// First pass: which expressions are call Funs, which calls are
	// spawned/deferred, and which literals are invoked in place.
	callKind := map[*ast.CallExpr]EdgeKind{}
	callFun := map[ast.Expr]bool{}
	litKind := map[*ast.FuncLit]EdgeKind{}
	ast.Inspect(root, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			callKind[v.Call] = EdgeGo
		case *ast.DeferStmt:
			callKind[v.Call] = EdgeDefer
		case *ast.CallExpr:
			fun := unparen(v.Fun)
			callFun[fun] = true
			if lit, ok := fun.(*ast.FuncLit); ok {
				k, spawned := callKind[v]
				if !spawned {
					k = EdgeCall
				}
				litKind[lit] = k
			}
		}
		return true
	})
	// go/defer statements nested inside literals are classified by the
	// literal's own recursive walk, which recomputes these maps.

	ast.Inspect(root, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			child := g.litNode(n, v)
			kind, invoked := litKind[v]
			if !invoked {
				kind = EdgeClosure
			}
			n.Out = append(n.Out, CGEdge{Callee: child, Pos: v.Pos(), Kind: kind})
			g.walk(child, v.Body)
			return false
		case *ast.CallExpr:
			if _, ok := unparen(v.Fun).(*ast.FuncLit); ok {
				return true // edge added by the FuncLit case
			}
			kind, spawned := callKind[v]
			if !spawned {
				kind = EdgeCall
			}
			targets, dynamic := g.resolveTargets(pkg, v.Fun)
			for _, t := range targets {
				k := kind
				if dynamic && k == EdgeCall {
					k = EdgeDynamic
				}
				n.Out = append(n.Out, CGEdge{Callee: t, Pos: v.Pos(), Kind: k})
			}
			return true
		case *ast.SelectorExpr:
			if callFun[v] {
				return true // handled as a call
			}
			sel := info.Selections[v]
			if sel == nil || (sel.Kind() != types.MethodVal && sel.Kind() != types.MethodExpr) {
				return true
			}
			targets, _ := g.resolveTargets(pkg, v)
			for _, t := range targets {
				n.Out = append(n.Out, CGEdge{Callee: t, Pos: v.Pos(), Kind: EdgeMethodValue})
			}
			return true
		}
		return true
	})
}

// litNode creates (or returns) the node for a function literal nested in
// parent, named parent$1, parent$2, … in source order.
func (g *CallGraph) litNode(parent *CGNode, lit *ast.FuncLit) *CGNode {
	if n, ok := g.lits[lit]; ok {
		return n
	}
	seq := 1
	for _, e := range parent.Out {
		if e.Callee.Lit != nil {
			seq++
		}
	}
	n := &CGNode{
		Name: fmt.Sprintf("%s$%d", parent.Name, seq),
		Lit:  lit,
		Pkg:  parent.Pkg,
		Body: lit.Body,
		Pos:  lit.Pos(),
	}
	g.lits[lit] = n
	g.byName[n.Name] = append(g.byName[n.Name], n)
	g.nodes = append(g.nodes, n)
	return n
}

// resolveTargets resolves a call/reference expression to module nodes.
// dynamic reports interface dispatch (the targets are a CHA fan-out).
func (g *CallGraph) resolveTargets(pkg *Package, fun ast.Expr) (targets []*CGNode, dynamic bool) {
	info := pkg.Info
	switch v := unparen(fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			if n := g.funcs[fn]; n != nil {
				return []*CGNode{n}, false
			}
		}
	case *ast.SelectorExpr:
		sel := info.Selections[v]
		if sel == nil {
			// Package-qualified call: pkg.Fn.
			if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
				if n := g.funcs[fn]; n != nil {
					return []*CGNode{n}, false
				}
			}
			return nil, false
		}
		if sel.Kind() != types.MethodVal && sel.Kind() != types.MethodExpr {
			return nil, false // func-typed field: unresolved
		}
		recv := sel.Recv()
		if sel.Kind() == types.MethodExpr {
			// T.Method: the receiver type is the first param's type.
			if sig, ok := sel.Type().(*types.Signature); ok && sig.Params().Len() > 0 {
				recv = sig.Params().At(0).Type()
			}
		}
		if iface, ok := recv.Underlying().(*types.Interface); ok {
			return g.cha(iface, v.Sel.Name), true
		}
		if fn, ok := sel.Obj().(*types.Func); ok {
			if n := g.funcs[fn]; n != nil {
				return []*CGNode{n}, false
			}
		}
	case *ast.IndexExpr:
		return g.resolveTargets(pkg, v.X) // generic instantiation
	}
	return nil, false
}

// cha returns the node for method name on every module named type whose
// method set (value or pointer) satisfies iface, name-sorted.
func (g *CallGraph) cha(iface *types.Interface, name string) []*CGNode {
	key := chaKey{iface, name}
	if out, ok := g.chaCache[key]; ok {
		return out
	}
	var out []*CGNode
	seen := map[*CGNode]bool{}
	for _, named := range g.named {
		var recv types.Type = named
		if !types.Implements(named, iface) {
			if !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			recv = types.NewPointer(named)
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := g.funcs[fn]; n != nil && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	g.chaCache[key] = out
	return out
}

// funcDisplayName renders a stable pkgname-qualified name for a declared
// function: pkg.Func, pkg.Recv.Method, or pkg.(*Recv).Method.
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := false
	if p, ok := t.(*types.Pointer); ok {
		ptr = true
		t = p.Elem()
	}
	recv := "?"
	if n, ok := t.(*types.Named); ok {
		recv = n.Obj().Name()
	}
	if ptr {
		return fmt.Sprintf("%s.(*%s).%s", pkg, recv, fn.Name())
	}
	return fmt.Sprintf("%s.%s.%s", pkg, recv, fn.Name())
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
