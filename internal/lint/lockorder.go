package lint

// LockOrder lifts the lock discipline from per-function to module-wide.
// Two properties are checked over the call graph:
//
//  1. Ordering. Every blocking Lock/RLock opens a region (to the matching
//     Unlock in the same statement list, or the end of the list for
//     deferred/implicit unlocks — the same region shape lockhygiene
//     uses). Any mutex acquired inside the region — directly, in a
//     nested block, or transitively through module calls — adds an edge
//     held → acquired to a module-wide acquisition graph. A cycle in
//     that graph is a latent deadlock between serving, pool, and
//     observability locks, and is reported even when the two halves of
//     the inversion live in different packages.
//
//  2. Transitive hygiene. lockhygiene flags slow work (training,
//     annotation, I/O) called directly under a lock in internal/serve;
//     this rule extends the same check through the call graph, so a
//     helper that reaches model.Update three frames down is caught at
//     the call site under the lock.
//
// TryLock never opens a region — a non-blocking acquisition cannot
// deadlock, which is exactly why handlePeriod's period latch uses it —
// and refreshMu keeps its sanctioned exemption from the hygiene check
// (but not from ordering: a cycle through refreshMu is still a cycle).
// Goroutine and closure edges are followed conservatively: work spawned
// while a lock is held can run while it is held.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "module-wide mutex acquisition graph must be cycle-free; no slow work transitively under serve locks",
	Packages:  []string{"serve", "pool", "obs"},
	RunModule: runLockOrder,
}

// lockEdge is one held → acquired observation with its acquisition site.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
}

// lockOrderState carries the per-run memoization.
type lockOrderState struct {
	mp        *ModulePass
	g         *CallGraph
	summaries map[*CGNode][]*types.Var // locks acquired by node or callees
	inSummary map[*CGNode]bool
	slowMemo  map[*CGNode]string // transitive slow-work description, "" = none
	inSlow    map[*CGNode]bool
	edges     []lockEdge
	edgeSeen  map[[2]*types.Var]bool
	display   map[*types.Var]string
	hygSeen   map[token.Pos]bool // transitive-hygiene report dedup
}

func runLockOrder(mp *ModulePass) {
	st := &lockOrderState{
		mp:        mp,
		g:         mp.Graph,
		summaries: map[*CGNode][]*types.Var{},
		inSummary: map[*CGNode]bool{},
		slowMemo:  map[*CGNode]string{},
		inSlow:    map[*CGNode]bool{},
		edgeSeen:  map[[2]*types.Var]bool{},
		display:   map[*types.Var]string{},
		hygSeen:   map[token.Pos]bool{},
	}
	st.buildDisplayNames()
	for _, n := range st.g.Nodes() {
		if n.Body != nil {
			st.scanRegions(n, n.Body.List, nil)
		}
	}
	st.reportCycles()
}

// buildDisplayNames maps struct-field mutexes to pkg.Type.field names so
// diagnostics read the same from every acquisition site.
func (st *lockOrderState) buildDisplayNames() {
	for _, named := range st.g.named {
		s, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < s.NumFields(); i++ {
			f := s.Field(i)
			st.display[f] = fmt.Sprintf("%s.%s.%s", named.Obj().Pkg().Name(), named.Obj().Name(), f.Name())
		}
	}
}

func (st *lockOrderState) name(v *types.Var) string {
	if d, ok := st.display[v]; ok {
		return d
	}
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// scanRegions walks one statement list. held carries the lock keys open
// at this point (outer regions included). For every statement it records
// direct acquisitions and call-carried acquisitions against every held
// lock, and recurses into nested lists. A Lock opens a region scanned
// recursively with the key held; the outer loop resumes at the matching
// unlock so no statement is charged twice.
func (st *lockOrderState) scanRegions(n *CGNode, stmts []ast.Stmt, held []*types.Var) {
	for i := 0; i < len(stmts); i++ {
		stm := stmts[i]
		// Nested statement lists inherit the currently-held set; the
		// non-list parts (conditions, range operands) are charged here.
		switch v := stm.(type) {
		case *ast.BlockStmt:
			st.scanRegions(n, v.List, held)
			continue
		case *ast.IfStmt:
			if v.Init != nil {
				st.scanRegions(n, []ast.Stmt{v.Init}, held)
			}
			st.noteNodeCalls(n, v.Cond, held)
			st.scanRegions(n, v.Body.List, held)
			switch els := v.Else.(type) {
			case *ast.BlockStmt:
				st.scanRegions(n, els.List, held)
			case *ast.IfStmt:
				st.scanRegions(n, []ast.Stmt{els}, held)
			}
			continue
		case *ast.ForStmt:
			if v.Cond != nil {
				st.noteNodeCalls(n, v.Cond, held)
			}
			st.scanRegions(n, v.Body.List, held)
			continue
		case *ast.RangeStmt:
			st.noteNodeCalls(n, v.X, held)
			st.scanRegions(n, v.Body.List, held)
			continue
		case *ast.SwitchStmt:
			if v.Tag != nil {
				st.noteNodeCalls(n, v.Tag, held)
			}
			st.scanClauses(n, v.Body, held)
			continue
		case *ast.TypeSwitchStmt:
			st.scanClauses(n, v.Body, held)
			continue
		case *ast.SelectStmt:
			st.scanClauses(n, v.Body, held)
			continue
		case *ast.LabeledStmt:
			st.scanRegions(n, []ast.Stmt{v.Stmt}, held)
			continue
		}

		key, kind := st.mutexCallKey(n, stm)
		if kind == "Lock" || kind == "RLock" {
			// Direct acquisition while other locks are held.
			st.noteAcquire(n, key, stm.Pos(), held)
			// Open the region: to the matching unlock, else end of list.
			end := len(stmts)
			recvText := mutexRecvText(stm)
			for j := i + 1; j < len(stmts); j++ {
				if mutexRecvText(stmts[j]) == recvText {
					if _, k := st.mutexCallKey(n, stmts[j]); k == "Unlock" || k == "RUnlock" {
						end = j
						break
					}
				}
			}
			if key != nil {
				st.scanRegions(n, stmts[i+1:end], append(held[:len(held):len(held)], key))
				i = end - 1 // resume at the unlock; the region is charged
				continue
			}
		}

		st.noteStmtCalls(n, stm, held)
	}
}

// scanClauses scans each case/comm clause body of a switch or select.
func (st *lockOrderState) scanClauses(n *CGNode, body *ast.BlockStmt, held []*types.Var) {
	for _, cl := range body.List {
		switch c := cl.(type) {
		case *ast.CaseClause:
			st.scanRegions(n, c.Body, held)
		case *ast.CommClause:
			if c.Comm != nil {
				st.scanRegions(n, []ast.Stmt{c.Comm}, held)
			}
			st.scanRegions(n, c.Body, held)
		}
	}
}

// noteStmtCalls charges every call in a simple statement against the
// held set.
func (st *lockOrderState) noteStmtCalls(n *CGNode, stm ast.Stmt, held []*types.Var) {
	st.noteNodeCalls(n, stm, held)
}

// noteNodeCalls records, for every call under the node, the locks the
// callee transitively acquires (as ordering edges) and transitive slow
// work (as hygiene diagnostics, serve package only). Function literals
// invoked in place are followed; closures merely constructed here run
// elsewhere and are skipped — deferred unlock closures must not extend
// the region.
func (st *lockOrderState) noteNodeCalls(n *CGNode, node ast.Node, held []*types.Var) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(node, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
			if ln := st.g.LitNode(lit); ln != nil {
				st.noteCallee(n, ln, call.Pos(), held)
			}
			return true
		}
		targets, _ := st.g.resolveTargets(n.Pkg, call.Fun)
		for _, t := range targets {
			st.noteCallee(n, t, call.Pos(), held)
		}
		return true
	})
}

// noteCallee charges one resolved callee against the held set: ordering
// edges for its lock summary, and a transitive-hygiene diagnostic when a
// serve lock shields slow work through it.
func (st *lockOrderState) noteCallee(n *CGNode, t *CGNode, pos token.Pos, held []*types.Var) {
	for _, lk := range st.lockSummary(t) {
		st.noteAcquire(n, lk, pos, held)
	}
	if n.Pkg.Types.Name() != "serve" {
		return
	}
	if st.mp.Allowed(pos) {
		return
	}
	for _, h := range held {
		if strings.Contains(st.name(h), "refreshMu") {
			continue // sanctioned: rare post-swap re-clone serialization
		}
		if directlySlow(t) {
			continue // lockhygiene reports direct slow calls itself
		}
		if desc := st.slowReach(t); desc != "" && !st.hygSeen[pos] {
			st.hygSeen[pos] = true
			st.mp.Reportf(pos, "call to %s transitively reaches %s while %s is held: move slow work off the lock",
				t.Name, desc, st.name(h))
			return
		}
	}
}

// noteAcquire records held → key edges.
func (st *lockOrderState) noteAcquire(n *CGNode, key *types.Var, pos token.Pos, held []*types.Var) {
	if key == nil || st.mp.Allowed(pos) {
		return
	}
	for _, h := range held {
		k := [2]*types.Var{h, key}
		if st.edgeSeen[k] {
			continue
		}
		st.edgeSeen[k] = true
		st.edges = append(st.edges, lockEdge{from: h, to: key, pos: pos})
	}
}

// lockSummary returns every lock key n or its transitive callees acquire
// via blocking Lock/RLock, memoized, cycle-safe.
func (st *lockOrderState) lockSummary(n *CGNode) []*types.Var {
	if s, ok := st.summaries[n]; ok {
		return s
	}
	if st.inSummary[n] {
		return nil
	}
	st.inSummary[n] = true
	defer delete(st.inSummary, n)
	seen := map[*types.Var]bool{}
	var acc []*types.Var
	add := func(v *types.Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			acc = append(acc, v)
		}
	}
	if n.Body != nil {
		ast.Inspect(n.Body, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false // separate node, reached through its edge below
			}
			es, ok := x.(*ast.ExprStmt)
			if !ok {
				return true
			}
			if key, kind := st.mutexCallKey(n, es); kind == "Lock" || kind == "RLock" {
				add(key)
			}
			return true
		})
	}
	for _, e := range n.Out {
		for _, v := range st.lockSummary(e.Callee) {
			add(v)
		}
	}
	st.summaries[n] = acc
	return acc
}

// slowReach returns a description of slow work (training methods,
// annotation, I/O packages) reachable from n, or "".
func (st *lockOrderState) slowReach(n *CGNode) string {
	if d, ok := st.slowMemo[n]; ok {
		return d
	}
	if st.inSlow[n] {
		return ""
	}
	st.inSlow[n] = true
	defer delete(st.inSlow, n)
	desc := directSlowCall(n)
	if desc == "" {
		for _, e := range n.Out {
			if d := st.slowReach(e.Callee); d != "" {
				desc = d + " (via " + e.Callee.Name + ")"
				break
			}
		}
	}
	st.slowMemo[n] = desc
	return desc
}

// directlySlow reports whether n itself is one of the slow-named module
// methods lockhygiene already flags at direct call sites.
func directlySlow(n *CGNode) bool {
	if n.Obj == nil {
		return false
	}
	name := n.Obj.Name()
	if slowMethods[name] {
		return true
	}
	return name == "Count" && n.Obj.Pkg() != nil && strings.HasSuffix(n.Obj.Pkg().Path(), "/annotator")
}

// directSlowCall scans n's own body for a call to a slow module method
// or an I/O package function, mirroring lockhygiene's direct check.
func directSlowCall(n *CGNode) string {
	if n.Body == nil {
		return ""
	}
	info := n.Pkg.Info
	out := ""
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if out != "" {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			if ioPackages[fn.Pkg().Path()] {
				out = fn.Pkg().Name() + "." + fn.Name()
			}
			return true
		}
		isModule := strings.Contains(fn.Pkg().Path(), "/") || fn.Pkg().Path() == n.Pkg.Types.Path()
		if !isModule {
			return true
		}
		if slowMethods[fn.Name()] || (fn.Name() == "Count" && strings.HasSuffix(fn.Pkg().Path(), "/annotator")) {
			out = types.ExprString(sel.X) + "." + fn.Name()
		}
		return true
	})
	return out
}

// mutexCallKey resolves a plain `x.Lock()`-shaped statement to the mutex
// variable it locks and the method name. TryLock is reported as its own
// kind and never opens a region.
func (st *lockOrderState) mutexCallKey(n *CGNode, stm ast.Stmt) (*types.Var, string) {
	es, ok := stm.(*ast.ExprStmt)
	if !ok {
		return nil, ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := n.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	return varOf(n.Pkg.Info, unparen(sel.X)), fn.Name()
}

// mutexRecvText renders the receiver of a mutex-method statement for
// matching Lock to its Unlock, the same way lockhygiene does.
func mutexRecvText(stm ast.Stmt) string {
	es, ok := stm.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return types.ExprString(sel.X)
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports each cycle once, at its lexicographically-first
// edge's site.
func (st *lockOrderState) reportCycles() {
	if len(st.edges) == 0 {
		return
	}
	adj := map[*types.Var][]lockEdge{}
	for _, e := range st.edges {
		adj[e.from] = append(adj[e.from], e)
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return st.name(adj[v][i].to) < st.name(adj[v][j].to) })
	}
	// Order roots deterministically by display name.
	var roots []*types.Var
	for v := range adj {
		roots = append(roots, v)
	}
	sort.Slice(roots, func(i, j int) bool { return st.name(roots[i]) < st.name(roots[j]) })

	reported := map[string]bool{}
	var path []lockEdge
	onPath := map[*types.Var]bool{}
	var dfs func(v *types.Var)
	dfs = func(v *types.Var) {
		if len(path) > 32 {
			return // depth cap; module lock graphs are tiny
		}
		onPath[v] = true
		for _, e := range adj[v] {
			if onPath[e.to] {
				// Extract the cycle from the path suffix starting at e.to.
				var cyc []lockEdge
				for i := 0; i < len(path); i++ {
					if path[i].from == e.to {
						cyc = append(cyc, path[i:]...)
						break
					}
				}
				cyc = append(cyc, e)
				st.reportCycle(cyc, reported)
				continue
			}
			path = append(path, e)
			dfs(e.to)
			path = path[:len(path)-1]
		}
		delete(onPath, v)
	}
	for _, r := range roots {
		dfs(r)
	}
}

// reportCycle renders one cycle, canonicalized so each distinct cycle is
// reported exactly once regardless of discovery order.
func (st *lockOrderState) reportCycle(cyc []lockEdge, reported map[string]bool) {
	if len(cyc) == 0 {
		return
	}
	// Rotate so the lexicographically-smallest lock name leads.
	lead := 0
	for i := range cyc {
		if st.name(cyc[i].from) < st.name(cyc[lead].from) {
			lead = i
		}
	}
	rot := append(append([]lockEdge{}, cyc[lead:]...), cyc[:lead]...)
	var b strings.Builder
	for i, e := range rot {
		if i > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(st.name(e.from))
	}
	b.WriteString(" → ")
	b.WriteString(st.name(rot[0].from))
	key := b.String()
	if reported[key] {
		return
	}
	reported[key] = true
	st.mp.Reportf(rot[0].pos, "lock acquisition cycle %s is a latent deadlock: acquire these locks in one global order", key)
}
