package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockHygiene keeps the serving lock short. PR 1 measured lock-wait as the
// dominant head-of-line latency source and moved adaptation off the
// estimate lock via clone/swap; this rule pins that property: inside
// internal/serve, no model training/updating, no annotation, and no I/O
// may run while a sync.Mutex or sync.RWMutex is held via a blocking
// Lock/RLock. TryLock-guarded regions are exempt — handlePeriod
// intentionally holds its non-blocking period latch across a full repair.
//
// The replica-pool rework adds a second property: the checkout path —
// replicaPool methods and the server's Estimate method — must stay
// lock-free, handing replicas over through the free-list channel. Any
// blocking Lock/RLock there reintroduces the single-lock bottleneck this
// module exists to remove. refreshMu is the one sanctioned exception: it
// serializes rare post-swap re-clones, off the common path.
var LockHygiene = &Analyzer{
	Name:     "lockhygiene",
	Doc:      "no model updates, annotation, or I/O while holding a sync lock in internal/serve",
	Packages: []string{"serve"},
	Run:      runLockHygiene,
}

// slowMethods are module methods that train, retrain, or scan tables —
// work that must never run under the serving lock.
var slowMethods = map[string]bool{
	"Train": true, "Update": true, "TrainJoin": true, "UpdateJoin": true,
	"Period": true, "AnnotateAll": true,
}

// ioPackages whose calls count as I/O under a lock.
var ioPackages = map[string]bool{
	"os": true, "io": true, "net": true, "net/http": true, "bufio": true,
}

func runLockHygiene(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
				if body != nil && onCheckoutPath(fn) {
					reportCheckoutLocks(pass, body)
				}
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkLockedRegions(pass, body.List)
			}
			return true
		})
	}
}

// onCheckoutPath reports whether fn belongs to the replica checkout hot
// path: any method on the replica pool, or the server's public Estimate.
func onCheckoutPath(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	recv := recvTypeName(fn.Recv.List[0].Type)
	if recv == "replicaPool" {
		return true
	}
	return fn.Name.Name == "Estimate" && strings.EqualFold(recv, "server")
}

// recvTypeName unwraps a receiver type expression to its base identifier.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// reportCheckoutLocks flags every blocking Lock/RLock in a checkout-path
// body. refreshMu is exempt by name, matching the sanctioned design.
func reportCheckoutLocks(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		recv, kind := mutexCall(pass, es)
		if kind != "Lock" && kind != "RLock" {
			return true
		}
		if strings.Contains(recv, "refreshMu") {
			return true
		}
		pass.Reportf(es.Pos(), "blocking %s of %s on the replica checkout path: hand replicas over the free-list channel instead", kind, recv)
		return true
	})
}

// checkLockedRegions scans one statement list. A blocking Lock/RLock on a
// sync mutex opens a locked region that runs to the matching
// Unlock/RUnlock on the same receiver in this list, or to the end of the
// list when the unlock is deferred (or missing). Nested blocks are scanned
// recursively with their own regions.
func checkLockedRegions(pass *Pass, stmts []ast.Stmt) {
	for i, st := range stmts {
		if blk, ok := st.(*ast.BlockStmt); ok {
			checkLockedRegions(pass, blk.List)
			continue
		}
		recv, kind := mutexCall(pass, st)
		if kind != "Lock" && kind != "RLock" {
			continue
		}
		end := len(stmts)
		for j := i + 1; j < len(stmts); j++ {
			r, k := mutexCall(pass, stmts[j])
			if r == recv && (k == "Unlock" || k == "RUnlock") {
				end = j
				break
			}
		}
		for _, locked := range stmts[i+1 : end] {
			reportSlowCalls(pass, locked)
		}
	}
}

// mutexCall reports the receiver text and method name when st is a plain
// call to a sync.Mutex/RWMutex method (Lock, RLock, Unlock, RUnlock, …).
// Deferred unlocks are deliberately not treated as region ends.
func mutexCall(pass *Pass, st ast.Stmt) (recv, method string) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return "", ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

// reportSlowCalls flags slow-method and I/O calls anywhere inside the
// statement, including nested closures (a closure built under the lock is
// overwhelmingly invoked under it in this codebase).
func reportSlowCalls(pass *Pass, st ast.Stmt) {
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			if ioPackages[fn.Pkg().Path()] {
				pass.Reportf(call.Pos(), "%s.%s under a held sync lock: do I/O outside the serving lock", fn.Pkg().Name(), fn.Name())
			}
			return true
		}
		if !slowMethods[fn.Name()] && !(fn.Name() == "Count" && strings.HasSuffix(fn.Pkg().Path(), "/annotator")) {
			return true
		}
		// Only module types: a same-named method on a stdlib type is fine.
		if fn.Pkg().Path() != pass.Pkg.Path() && !strings.Contains(fn.Pkg().Path(), "/") {
			return true
		}
		pass.Reportf(call.Pos(), "%s.%s under a held sync lock: clone and swap instead of updating in place", types.ExprString(sel.X), fn.Name())
		return true
	})
}
