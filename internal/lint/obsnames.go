package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// ObsNames enforces the metric-naming contract of the obs registry: every
// name registered through Registry.Counter/Gauge/Histogram must be
// snake_case, counters must end in _total, histograms must carry a unit
// suffix, and one name must keep one kind. The registry panics on a kind
// clash at runtime; this rule catches it — and the silent naming drift the
// registry cannot see — at lint time, so /metrics stays queryable by the
// dashboards the README documents.
//
// Gauges carry no mandatory suffix (a pool size or threshold has no unit),
// but still must be snake_case. Deliberate exceptions (e.g. a legacy name
// kept for a migration) use //lint:allow obsnames. Renamed metrics exported
// through AliasHistogram are exempt: the alias is the legacy name.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "obs metric names must be snake_case with a kind-appropriate unit suffix, one kind per name",
	Run:  runObsNames,
}

// metricSnakeRE matches lower_snake_case metric names.
var metricSnakeRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// histogramSuffixes are the unit suffixes a histogram name may end with.
var histogramSuffixes = []string{"_seconds", "_bytes", "_total", "_ratio", "_rows"}

// registeredKind remembers where a metric name was first registered and as
// what, for the one-kind-per-name check.
type registeredKind struct {
	kind string
	pos  token.Pos
}

func runObsNames(pass *Pass) {
	kinds := map[string]registeredKind{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var kind string
			switch sel.Sel.Name {
			case "Counter":
				kind = "counter"
			case "Gauge":
				kind = "gauge"
			case "Histogram":
				kind = "histogram"
			default:
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil || !isRegistryType(recv.Type()) {
				return true
			}
			// Only constant names are checkable; a computed name (none exist
			// in the tree today) is the caller's responsibility.
			tv, ok := pass.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			name := constant.StringVal(tv.Value)
			pos := call.Args[0].Pos()

			if !metricSnakeRE.MatchString(name) {
				pass.Reportf(pos, "metric name %q is not snake_case", name)
				return true
			}
			switch kind {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					pass.Reportf(pos, "counter %q must end in _total", name)
				}
			case "histogram":
				if !hasAnySuffix(name, histogramSuffixes) {
					pass.Reportf(pos, "histogram %q must end in a unit suffix (%s)",
						name, strings.Join(histogramSuffixes, ", "))
				}
			}
			if prev, seen := kinds[name]; seen {
				if prev.kind != kind {
					pass.Reportf(pos, "metric %q registered as both %s and %s", name, prev.kind, kind)
				}
			} else {
				kinds[name] = registeredKind{kind: kind, pos: pos}
			}
			return true
		})
	}
}

// isRegistryType reports whether t is (a pointer to) a type named Registry —
// the obs registry, or a fixture standing in for it.
func isRegistryType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// hasAnySuffix reports whether s ends with any of the suffixes.
func hasAnySuffix(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}
