package lint

import (
	"go/ast"
	"go/types"
)

// ErrcheckLite catches silently dropped error returns: a call used as a
// bare statement whose results include an error. This is how the original
// panic-to-error refactor stays honest — converting a panic to a returned
// error is worthless if a caller then discards it. Explicit discards
// (`_ = f()`), deferred calls, and tests are out of scope, as is the
// fmt.Print family (stdout writes in reports and examples).
var ErrcheckLite = &Analyzer{
	Name: "errcheck-lite",
	Doc:  "error returns must be handled or explicitly discarded",
	Run:  runErrcheckLite,
}

// errcheckExempt lists full function names whose error results may be
// dropped: best-effort stdout/stderr printing.
var errcheckExempt = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
}

// infallibleWriters are receiver types documented to always return a nil
// error (strings.Builder, bytes.Buffer), so dropping it carries no risk.
var infallibleWriters = map[string]bool{
	"*strings.Builder": true, "strings.Builder": true,
	"*bytes.Buffer": true, "bytes.Buffer": true,
}

func runErrcheckLite(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) {
				return true
			}
			if name := calleeName(pass, call); name != "" && errcheckExempt[name] {
				return true
			}
			if infallibleReceiver(pass, call) || consoleFprint(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s includes an error that is silently dropped", calleeLabel(pass, call))
			return true
		})
	}
}

// infallibleReceiver reports whether the call is a method on a writer that
// never fails (strings.Builder, bytes.Buffer) — including fmt.Fprint*
// calls whose destination is such a writer.
func infallibleReceiver(pass *Pass, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				return infallibleWriters[recv.Type().String()]
			}
		}
	}
	return false
}

// consoleFprint reports whether the call is fmt.Fprint* writing to
// os.Stdout/os.Stderr or to an infallible in-memory writer: console
// output in CLIs is best-effort by convention, mirroring the fmt.Print
// exemption.
func consoleFprint(pass *Pass, call *ast.CallExpr) bool {
	name := calleeName(pass, call)
	if name != "fmt.Fprint" && name != "fmt.Fprintf" && name != "fmt.Fprintln" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	dst := call.Args[0]
	if tv, ok := pass.Info.Types[dst]; ok && infallibleWriters[tv.Type.String()] {
		return true
	}
	sel, ok := dst.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
		(obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

// returnsError reports whether the call's result type is or contains error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if isErrorType(tv.Type) {
		return true
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// calleeName returns pkg.Func for package-level callees, "" otherwise.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// calleeLabel renders the call target for the diagnostic message.
func calleeLabel(pass *Pass, call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
