// Package lint is a dependency-free static-analysis framework for the
// warper module, built only on the standard library's go/parser and
// go/types. It exists because the invariants that make the paper's results
// reproducible — seed-determinism of every training path, a serving stack
// that degrades instead of dying, no slow work under the serving lock —
// are not expressible as go vet checks, yet regress silently under
// ordinary refactoring.
//
// The framework loads every package in the module (tests excluded),
// type-checks it with the source importer, and runs project-specific
// analyzers that report file:line diagnostics. A diagnostic can be
// suppressed at the offending line with a directive comment:
//
//	//lint:allow <rule> [reason...]
//
// placed either on the same line as the violation or on the line directly
// above it. Each directive suppresses diagnostics of that rule on its own
// line and the line below only, so one allow cannot blanket a file.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one project invariant over a single type-checked
// package.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:allow.
	Name string
	// Doc is a one-line description shown by warperlint -rules.
	Doc string
	// Packages restricts the analyzer to packages whose import path's
	// last segment is in the list. Empty means every package.
	Packages []string
	// Run inspects the package and reports diagnostics via the pass.
	Run func(*Pass)
}

// applies reports whether the analyzer runs on the given import path.
func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	seg := pkgPath
	if i := strings.LastIndex(pkgPath, "/"); i >= 0 {
		seg = pkgPath[i+1:]
	}
	for _, p := range a.Packages {
		if p == seg {
			return true
		}
	}
	return false
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one rule violation at one source position.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String formats the diagnostic as file:line:col: message (rule).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	rule string
	file string
	line int
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lint:allow"

// collectAllows extracts every //lint:allow directive in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) []allowDirective {
	var out []allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, allowDirective{rule: fields[0], file: pos.Filename, line: pos.Line})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive: same rule, same
// file, and the directive sits on the diagnostic's line or the line above.
func suppressed(d Diagnostic, allows []allowDirective) bool {
	for _, a := range allows {
		if a.rule == d.Rule && a.file == d.Pos.Filename &&
			(a.line == d.Pos.Line || a.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}

// RunAnalyzers runs every applicable analyzer over each loaded package and
// returns the surviving (non-suppressed) diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if !a.applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if !suppressed(d, allows) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Column < out[j].Pos.Column
	})
	return out
}

// All returns every analyzer warperlint ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		PanicFree,
		LockHygiene,
		ErrcheckLite,
		CtxPropagate,
		ObsNames,
	}
}
