// Package lint is a dependency-free static-analysis framework for the
// warper module, built only on the standard library's go/parser and
// go/types. It exists because the invariants that make the paper's results
// reproducible — seed-determinism of every training path, a serving stack
// that degrades instead of dying, no slow work under the serving lock —
// are not expressible as go vet checks, yet regress silently under
// ordinary refactoring.
//
// The framework loads every package in the module (tests excluded),
// type-checks it with the source importer, and runs project-specific
// analyzers that report file:line diagnostics. Analyzers come in two
// shapes: local ones see a single package at a time (Run), and
// module-wide ones see every loaded package plus a CHA-style call graph
// over them (RunModule) — the latter carry the transitive invariants
// (hot-path allocation-freedom, goroutine exits, lock ordering) that no
// per-package view can check.
//
// A diagnostic can be suppressed with a directive comment:
//
//	//lint:allow <rule> [reason...]
//
// placed on the violating line, on the line directly above it, or
// anywhere inside the violating statement. A directive covers its own
// line, the next line, and the full line range of the enclosing or
// directly-following statement — so a violation deep inside a multi-line
// wrapped call is suppressible at the statement head, and a directive
// above a compound statement (an if-block of intentional allocations,
// say) covers that whole statement. It still cannot blanket a file: the
// reach of every allow is visible from the code shape below it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one project invariant. Local analyzers (Run) see one
// type-checked package at a time; module-wide analyzers (RunModule) see
// the whole loaded module and its call graph. Exactly one of Run and
// RunModule is set.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:allow.
	Name string
	// Doc is a one-line description shown by warperlint -rules.
	Doc string
	// Packages restricts the analyzer to packages whose import path's
	// last segment is in the list. Empty means every package. For
	// module-wide analyzers the list documents where diagnostics land;
	// the call graph underneath always spans every loaded package.
	Packages []string
	// Run inspects one package and reports diagnostics via the pass.
	Run func(*Pass)
	// RunModule inspects the whole module through a ModulePass carrying
	// every loaded package and the call graph built over them.
	RunModule func(*ModulePass)
}

// ModuleWide reports whether the analyzer needs the whole module and its
// call graph rather than one package at a time.
func (a *Analyzer) ModuleWide() bool { return a.RunModule != nil }

// Scope renders the analyzer's package scope for warperlint -rules.
func (a *Analyzer) Scope() string {
	if len(a.Packages) == 0 {
		return "all packages"
	}
	return strings.Join(a.Packages, ",")
}

// applies reports whether the analyzer runs on the given import path.
func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	seg := pkgPath
	if i := strings.LastIndex(pkgPath, "/"); i >= 0 {
		seg = pkgPath[i+1:]
	}
	for _, p := range a.Packages {
		if p == seg {
			return true
		}
	}
	return false
}

// A Pass carries one local analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// A ModulePass carries one module-wide analyzer's view of every loaded
// package and the call graph over them.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Graph    *CallGraph

	allows []allowDirective
	diags  []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether pos is covered by a //lint:allow directive for
// this analyzer's rule. Module-wide analyzers use it to prune call-graph
// traversal: an allow on a call site cuts the edge, an allow on a
// function declaration prunes the whole function.
func (p *ModulePass) Allowed(pos token.Pos) bool {
	where := p.Fset.Position(pos)
	for _, a := range p.allows {
		if a.rule == p.Analyzer.Name && a.file == where.Filename &&
			a.start <= where.Line && where.Line <= a.end {
			return true
		}
	}
	return false
}

// A Diagnostic is one rule violation at one source position.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String formats the diagnostic as file:line:col: message (rule).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// allowDirective is one parsed //lint:allow comment, covering the line
// range [start, end] in file.
type allowDirective struct {
	rule  string
	file  string
	start int
	end   int
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lint:allow"

// stmtSpan is the line range of one statement, used to widen directive
// coverage to full statements.
type stmtSpan struct {
	start, end int
	compound   bool // if/for/range/switch/select: eligible as following, not enclosing
}

// collectAllows extracts every //lint:allow directive in the files and
// computes its coverage range: the directive's own line and the next,
// widened to the full span of (a) the smallest simple statement enclosing
// the directive — so a trailing comment inside a multi-line wrapped call
// covers the whole call — and (b) the statement starting on the next
// line — so a directive above a wrapped call or an intentional compound
// block covers all of it. Compound statements (if/for/switch/…) never
// count as enclosing: a directive floating inside their body covers only
// its neighborhood, not the whole block.
func collectAllows(fset *token.FileSet, files []*ast.File) []allowDirective {
	var out []allowDirective
	for _, f := range files {
		var spans []stmtSpan
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			switch st.(type) {
			case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
				return true // bodies are covered via their inner statements
			}
			sp := stmtSpan{
				start: fset.Position(st.Pos()).Line,
				end:   fset.Position(st.End()).Line,
			}
			switch st.(type) {
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
				*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
				sp.compound = true
			}
			spans = append(spans, sp)
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				d := allowDirective{rule: fields[0], file: pos.Filename, start: pos.Line, end: pos.Line + 1}
				// Smallest simple statement enclosing the directive line.
				enc := -1
				for i, s := range spans {
					if s.compound || s.start > pos.Line || s.end < pos.Line {
						continue
					}
					if enc < 0 || s.end-s.start < spans[enc].end-spans[enc].start {
						enc = i
					}
				}
				// Smallest statement starting on the line below.
				next := -1
				for i, s := range spans {
					if s.start != pos.Line+1 {
						continue
					}
					if next < 0 || s.end-s.start < spans[next].end-spans[next].start {
						next = i
					}
				}
				for _, i := range []int{enc, next} {
					if i < 0 {
						continue
					}
					if spans[i].start < d.start {
						d.start = spans[i].start
					}
					if spans[i].end > d.end {
						d.end = spans[i].end
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive: same rule, same
// file, diagnostic line inside the directive's coverage range.
func suppressed(d Diagnostic, allows []allowDirective) bool {
	for _, a := range allows {
		if a.rule == d.Rule && a.file == d.Pos.Filename &&
			a.start <= d.Pos.Line && d.Pos.Line <= a.end {
			return true
		}
	}
	return false
}

// RunAnalyzers runs every applicable analyzer over the loaded packages and
// returns the surviving (non-suppressed) diagnostics sorted by position.
// Local analyzers run per package; module-wide analyzers run once over the
// whole set, with the call graph built lazily on first need.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	var allAllows []allowDirective
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		allAllows = append(allAllows, allows...)
		for _, a := range analyzers {
			if a.ModuleWide() || !a.applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if !suppressed(d, allows) {
					out = append(out, d)
				}
			}
		}
	}
	var graph *CallGraph
	for _, a := range analyzers {
		if !a.ModuleWide() {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     graph.Fset,
			Pkgs:     pkgs,
			Graph:    graph,
			allows:   allAllows,
		}
		a.RunModule(mp)
		for _, d := range mp.diags {
			if !suppressed(d, allAllows) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// All returns every analyzer warperlint ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		PanicFree,
		LockHygiene,
		ErrcheckLite,
		CtxPropagate,
		ObsNames,
		HotPathAlloc,
		AtomicSanity,
		GoroutineLeak,
		LockOrder,
	}
}

// ByName returns the shipped analyzer with the given rule name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
