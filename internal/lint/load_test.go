package lint

import (
	"go/build"
	"path/filepath"
	"testing"
)

// loadNN loads warper/internal/nn under the given GOARCH and returns the
// base names of the files that made it into the package.
func loadNN(t *testing.T, goarch string) map[string]bool {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if goarch != "" {
		ctx := build.Default
		ctx.GOARCH = goarch
		l.Build = &ctx
	}
	pkg, err := l.LoadDir("warper/internal/nn", filepath.Join(root, "internal", "nn"))
	if err != nil {
		t.Fatalf("GOARCH=%s: %v", goarch, err)
	}
	names := map[string]bool{}
	for _, f := range pkg.Files {
		names[filepath.Base(pkg.Fset.Position(f.Pos()).Filename)] = true
	}
	return names
}

// TestLoaderBuildContext pins that the Loader sees build-tagged files
// through its configurable context rather than the host platform: an amd64
// context must load the AVX2 kernel declarations and drop the portable
// fallback, and a non-amd64 context the reverse — regardless of the GOARCH
// this test itself runs on. Without this, the lint rules would silently
// skip whichever side of a tagged pair the CI host does not build.
func TestLoaderBuildContext(t *testing.T) {
	for _, tc := range []struct {
		goarch    string
		want, not string
	}{
		{"amd64", "simd_amd64.go", "simd_other.go"},
		{"arm64", "simd_other.go", "simd_amd64.go"},
	} {
		names := loadNN(t, tc.goarch)
		if !names[tc.want] {
			t.Errorf("GOARCH=%s: %s not loaded (got %v)", tc.goarch, tc.want, names)
		}
		if names[tc.not] {
			t.Errorf("GOARCH=%s: %s loaded but should be excluded", tc.goarch, tc.not)
		}
	}
}

// TestLoaderDefaultContextMatchesHost pins the nil-Build default: the same
// file set build.Default would select.
func TestLoaderDefaultContextMatchesHost(t *testing.T) {
	names := loadNN(t, "")
	wantAVX := build.Default.GOARCH == "amd64"
	if names["simd_amd64.go"] != wantAVX || names["simd_other.go"] == wantAVX {
		t.Errorf("host GOARCH=%s: got files %v", build.Default.GOARCH, names)
	}
}
