package lint

import (
	"go/ast"
	"go/types"
)

// Nondeterminism enforces the reproducibility contract behind every table
// in the paper: algorithm packages must draw randomness only from injected
// *rand.Rand values (seeded per Config.Seed) and must never read the wall
// clock directly. A single rand.Intn or time.Now in a training loop makes
// Tables 5–9 unreproducible across runs.
var Nondeterminism = &Analyzer{
	Name:     "nondeterminism",
	Doc:      "algorithm packages must not use time.Now or the global math/rand source",
	Packages: []string{"nn", "gbt", "kernel", "ce", "warper", "drift", "pool", "resilience"},
	Run:      runNondeterminism,
}

func runNondeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. (*rand.Rand).Float64) have a receiver and are
			// exactly the injected-RNG style the rule mandates.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(), "time.Now in algorithm package %s: route wall-clock through simclock or the obs seam", pass.Pkg.Name())
				}
			case "math/rand":
				// Constructors build injected sources; everything else is
				// the shared global source.
				if fn.Name() != "New" && fn.Name() != "NewSource" && fn.Name() != "NewZipf" {
					pass.Reportf(sel.Pos(), "global math/rand.%s in algorithm package %s: inject a seeded *rand.Rand instead", fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
}
