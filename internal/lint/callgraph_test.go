package lint

import (
	"go/ast"
	"path/filepath"
	"reflect"
	"testing"
)

// edgeList renders a node's out-edges as "kind callee" strings, the
// golden form the fixture assertions compare against.
func edgeList(n *CGNode) []string {
	var out []string
	for _, e := range n.Out {
		out = append(out, e.Kind.String()+" "+e.Callee.Name)
	}
	return out
}

// TestCallGraphFixture pins edge construction over the callgraph/app
// fixture: recursion, CHA interface fan-out, method values, closures,
// in-place literal invocation, and go/defer kinds.
func TestCallGraphFixture(t *testing.T) {
	pkg := fixtureLoad(t, "callgraph/app")
	g := BuildCallGraph([]*Package{pkg})

	get := func(name string) *CGNode {
		t.Helper()
		ns := g.Named(name)
		if len(ns) != 1 {
			t.Fatalf("Named(%q) = %d nodes, want 1", name, len(ns))
		}
		return ns[0]
	}

	// Interface dispatch fans out to every implementation, name-sorted.
	if got, want := edgeList(get("app.Dispatch")), []string{
		"dynamic app.(*Hist).Estimate",
		"dynamic app.(*LM).Estimate",
	}; !reflect.DeepEqual(got, want) {
		t.Errorf("app.Dispatch edges = %v, want %v", got, want)
	}

	// Mutual recursion terminates and keeps both edges.
	if got, want := edgeList(get("app.Even")), []string{"call app.Odd"}; !reflect.DeepEqual(got, want) {
		t.Errorf("app.Even edges = %v, want %v", got, want)
	}
	if got, want := edgeList(get("app.Odd")), []string{"call app.Even"}; !reflect.DeepEqual(got, want) {
		t.Errorf("app.Odd edges = %v, want %v", got, want)
	}

	// Spawn: go, defer, method value (CHA fan-out), closure, and an
	// in-place invoked literal, in source order.
	if got, want := edgeList(get("app.Spawn")), []string{
		"go app.worker",
		"defer app.cleanup",
		"methodvalue app.(*Hist).Estimate",
		"methodvalue app.(*LM).Estimate",
		"closure app.Spawn$1",
		"call app.Spawn$2",
	}; !reflect.DeepEqual(got, want) {
		t.Errorf("app.Spawn edges = %v, want %v", got, want)
	}

	// The invoked literal is a real node with its own edges.
	if got, want := edgeList(get("app.Spawn$2")), []string{"call app.Dispatch"}; !reflect.DeepEqual(got, want) {
		t.Errorf("app.Spawn$2 edges = %v, want %v", got, want)
	}

	// ResolveCall resolves a syntactic go statement the same way edge
	// construction does.
	var goCall *ast.CallExpr
	for _, f := range pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			if gs, ok := x.(*ast.GoStmt); ok && goCall == nil {
				goCall = gs.Call
			}
			return goCall == nil
		})
	}
	if goCall == nil {
		t.Fatal("fixture has no go statement")
	}
	targets := g.ResolveCall(pkg, goCall)
	if len(targets) != 1 || targets[0].Name != "app.worker" {
		t.Errorf("ResolveCall(go …) = %v, want [app.worker]", edgeNames(targets))
	}
}

func edgeNames(ns []*CGNode) []string {
	var out []string
	for _, n := range ns {
		out = append(out, n.Name)
	}
	return out
}

// TestCallGraphModule builds the graph over the real module and checks
// the properties the hot-path rules depend on: every serving root
// resolves, and interface dispatch through ce.Estimator reaches the LM
// implementation from the estimate handler. Skipped in -short runs with
// the rest of the full-module loads.
func TestCallGraphModule(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is slow under the source importer")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph(pkgs)

	for _, rootName := range hotPathRoots {
		if len(g.Named(rootName)) == 0 {
			t.Errorf("hot-path root %s has no node in the module graph", rootName)
		}
	}

	// BFS from the estimate handler must cross an interface dispatch into
	// the LM estimator.
	starts := g.Named("serve.(*Server).handleEstimate")
	if len(starts) == 0 {
		t.Fatal("no serve.(*Server).handleEstimate node")
	}
	seen := map[*CGNode]bool{}
	queue := append([]*CGNode{}, starts...)
	foundLM := false
	for len(queue) > 0 && !foundLM {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, e := range n.Out {
			if e.Kind == EdgeDynamic && e.Callee.Name == "ce.(*LM).Estimate" {
				foundLM = true
			}
			queue = append(queue, e.Callee)
		}
	}
	if !foundLM {
		t.Error("no dynamic-dispatch path from the estimate handler to ce.(*LM).Estimate")
	}
}
