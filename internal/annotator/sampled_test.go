package annotator

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/workload"
)

func TestSampledApproximatesExactCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := dataset.PRSA(8000, rng)
	sch := query.SchemaOf(tbl)
	exact := New(tbl)
	approx := newSampledOK(t, tbl, 0.2, rng)
	g := workload.New("w3", tbl, sch, workload.Options{MaxConstrained: 1})

	var relErrSum float64
	n := 0
	for i := 0; i < 40; i++ {
		p := g.Gen(rng)
		truth := countOK(t, exact, p)
		if truth < 100 {
			continue // relative error meaningless on tiny counts
		}
		est, err := approx.Count(context.Background(), p)
		if err != nil {
			t.Fatalf("Count: %v", err)
		}
		relErrSum += math.Abs(est-truth) / truth
		n++
	}
	if n == 0 {
		t.Skip("no large-count probes drawn")
	}
	if mean := relErrSum / float64(n); mean > 0.25 {
		t.Errorf("mean relative error = %v at 20%% sample, want < 0.25", mean)
	}
}

func TestSampledScalesFullSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl := dataset.PRSA(500, rng)
	sch := query.SchemaOf(tbl)
	exact := New(tbl)
	approx := newSampledOK(t, tbl, 1.0, rng)
	if approx.SampleSize() != 500 {
		t.Fatalf("SampleSize = %d", approx.SampleSize())
	}
	p := query.NewFullRange(sch)
	p.SetRange(1, 0, 80)
	got, err := approx.Count(context.Background(), p)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if want := countOK(t, exact, p); got != want {
		t.Errorf("full-rate sample must be exact: %v vs %v", got, want)
	}
}

func TestSampledIsCheaperPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := dataset.PRSA(8000, rng)
	sch := query.SchemaOf(tbl)
	approx := newSampledOK(t, tbl, 0.05, rng)
	if approx.SampleSize() != 400 {
		t.Errorf("SampleSize = %d, want 400", approx.SampleSize())
	}
	full := query.NewFullRange(sch)
	got, err := approx.Count(context.Background(), full)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if got != 8000 {
		t.Errorf("scaled full count = %v, want 8000", got)
	}
}

func TestSampledAnnotateAll(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tbl := dataset.PRSA(1000, rng)
	sch := query.SchemaOf(tbl)
	approx := newSampledOK(t, tbl, 0.5, rng)
	g := workload.New("w1", tbl, sch, workload.Options{})
	out, err := approx.AnnotateAll(context.Background(), workload.Generate(g, 10, rng))
	if err != nil {
		t.Fatalf("AnnotateAll: %v", err)
	}
	if len(out) != 10 || approx.Queries != 10 {
		t.Errorf("AnnotateAll bookkeeping wrong: %d results, %d queries", len(out), approx.Queries)
	}
}

func TestSampledBadRateError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := dataset.PRSA(100, rng)
	for _, rate := range []float64{0, -0.1, 1.5} {
		if _, err := NewSampled(tbl, rate, rng); err == nil {
			t.Errorf("rate %v should be rejected", rate)
		}
	}
}

// newSampledOK unwraps NewSampled for valid rates.
func newSampledOK(t *testing.T, tbl *dataset.Table, rate float64, rng *rand.Rand) *Sampled {
	t.Helper()
	s, err := NewSampled(tbl, rate, rng)
	if err != nil {
		t.Fatalf("NewSampled: %v", err)
	}
	return s
}
