package annotator

import (
	"context"
	"math/rand"
	"testing"

	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/workload"
)

func smallTable() *dataset.Table {
	return dataset.NewTable("t",
		&dataset.Column{Name: "a", Type: dataset.Real, Vals: []float64{1, 2, 3, 4, 5}},
		&dataset.Column{Name: "b", Type: dataset.Real, Vals: []float64{10, 20, 30, 40, 50}},
	)
}

func TestCountExact(t *testing.T) {
	tbl := smallTable()
	a := New(tbl)
	s := query.SchemaOf(tbl)

	full := query.NewFullRange(s)
	if got := countOK(t, a, full); got != 5 {
		t.Errorf("full count = %v, want 5", got)
	}
	p := query.NewFullRange(s)
	p.SetRange(0, 2, 4)
	if got := countOK(t, a, p); got != 3 {
		t.Errorf("count [2,4] = %v, want 3", got)
	}
	p2 := query.NewFullRange(s)
	p2.SetRange(0, 2, 4)
	p2.SetRange(1, 35, 100)
	if got := countOK(t, a, p2); got != 1 {
		t.Errorf("conjunctive count = %v, want 1", got)
	}
	empty := query.NewFullRange(s)
	empty.SetRange(0, 1.1, 1.9)
	if got := countOK(t, a, empty); got != 0 {
		t.Errorf("empty count = %v, want 0", got)
	}
}

func TestCountInclusiveBounds(t *testing.T) {
	tbl := smallTable()
	a := New(tbl)
	s := query.SchemaOf(tbl)
	p := query.NewFullRange(s)
	p.SetEquals(0, 3)
	if got := countOK(t, a, p); got != 1 {
		t.Errorf("equality count = %v, want 1", got)
	}
}

func TestAnnotateAllAgreesWithCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := dataset.PRSA(1500, rng)
	s := query.SchemaOf(tbl)
	g := workload.New("w3", tbl, s, workload.Options{})
	preds := workload.Generate(g, 30, rng)

	a := New(tbl)
	batch, err := a.AnnotateAll(context.Background(), preds)
	if err != nil {
		t.Fatalf("AnnotateAll: %v", err)
	}
	b := New(tbl)
	for i, lp := range batch {
		if got := countOK(t, b, preds[i]); got != lp.Card {
			t.Fatalf("pred %d: batch=%v single=%v", i, lp.Card, got)
		}
	}
}

func TestCostMeters(t *testing.T) {
	tbl := smallTable()
	a := New(tbl)
	s := query.SchemaOf(tbl)
	countOK(t, a, query.NewFullRange(s))
	countOK(t, a, query.NewFullRange(s))
	if a.Queries != 2 {
		t.Errorf("Queries = %d", a.Queries)
	}
	if a.RowsScanned != 10 {
		t.Errorf("RowsScanned = %d", a.RowsScanned)
	}
	if a.MeanCostPerQuery() < 0 {
		t.Error("negative mean cost")
	}
	a.ResetMeters()
	if a.Queries != 0 || a.RowsScanned != 0 || a.Elapsed != 0 {
		t.Error("ResetMeters incomplete")
	}
}

func TestCountDimMismatchError(t *testing.T) {
	a := New(smallTable())
	if _, err := a.Count(context.Background(), query.Predicate{Lows: []float64{0}, Highs: []float64{1}}); err == nil {
		t.Fatal("expected error for dimension mismatch")
	}
}

func joinFixture() (*dataset.Table, *dataset.Table) {
	// orders: key 1..4; lineitem references orders with known fan-out.
	orders := dataset.NewTable("orders",
		&dataset.Column{Name: "okey", Type: dataset.Real, Vals: []float64{1, 2, 3, 4}},
		&dataset.Column{Name: "total", Type: dataset.Real, Vals: []float64{100, 200, 300, 400}},
	)
	lineitem := dataset.NewTable("lineitem",
		&dataset.Column{Name: "okey", Type: dataset.Real, Vals: []float64{1, 1, 2, 3, 3, 3}},
		&dataset.Column{Name: "qty", Type: dataset.Real, Vals: []float64{5, 6, 7, 8, 9, 10}},
	)
	return orders, lineitem
}

func TestJoinCountNoPredicates(t *testing.T) {
	orders, lineitem := joinFixture()
	ja := NewJoin(orders, lineitem)
	q := query.NewJoinQuery("lineitem", "orders").AddJoin("lineitem", "okey", "orders", "okey")
	// Every lineitem row matches exactly one order: 6 results.
	if got := joinCountOK(t, ja, q); got != 6 {
		t.Errorf("join count = %v, want 6", got)
	}
}

func TestJoinCountWithPredicates(t *testing.T) {
	orders, lineitem := joinFixture()
	ja := NewJoin(orders, lineitem)
	so := query.SchemaOf(orders)
	sl := query.SchemaOf(lineitem)

	q := query.NewJoinQuery("lineitem", "orders").AddJoin("lineitem", "okey", "orders", "okey")
	po := query.NewFullRange(so)
	po.SetRange(1, 250, 500) // orders 3 and 4
	q.SetPred("orders", po)
	// Lineitems for order 3: rows with okey=3 → 3 rows; order 4 has none.
	if got := joinCountOK(t, ja, q); got != 3 {
		t.Errorf("join count = %v, want 3", got)
	}

	pl := query.NewFullRange(sl)
	pl.SetRange(1, 9, 100) // qty in {9, 10}: two rows, both okey=3
	q.SetPred("lineitem", pl)
	if got := joinCountOK(t, ja, q); got != 2 {
		t.Errorf("join count = %v, want 2", got)
	}
}

func TestJoinCountThreeWay(t *testing.T) {
	orders, lineitem := joinFixture()
	cust := dataset.NewTable("cust",
		&dataset.Column{Name: "ckey", Type: dataset.Real, Vals: []float64{10, 20}},
	)
	// Attach a ckey column to orders: orders 1,2 → cust 10; 3,4 → cust 20.
	orders.Cols = append(orders.Cols, &dataset.Column{
		Name: "ckey", Type: dataset.Real, Vals: []float64{10, 10, 20, 20},
	})
	ja := NewJoin(orders, lineitem, cust)
	q := query.NewJoinQuery("lineitem", "orders", "cust").
		AddJoin("lineitem", "okey", "orders", "okey").
		AddJoin("orders", "ckey", "cust", "ckey")
	// All 6 lineitems join through to a customer.
	if got := joinCountOK(t, ja, q); got != 6 {
		t.Errorf("3-way join count = %v, want 6", got)
	}
}

func TestJoinDisconnectedError(t *testing.T) {
	orders, lineitem := joinFixture()
	ja := NewJoin(orders, lineitem)
	q := query.NewJoinQuery("lineitem", "orders") // no join conditions
	if _, err := ja.Count(context.Background(), q); err == nil {
		t.Fatal("expected error for disconnected join")
	}
}

func TestJoinUnknownTableError(t *testing.T) {
	orders, _ := joinFixture()
	ja := NewJoin(orders)
	q := query.NewJoinQuery("nope")
	if _, err := ja.Count(context.Background(), q); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

func TestJoinAnnotateAll(t *testing.T) {
	orders, lineitem := joinFixture()
	ja := NewJoin(orders, lineitem)
	q := query.NewJoinQuery("lineitem", "orders").AddJoin("lineitem", "okey", "orders", "okey")
	out, err := ja.AnnotateAll(context.Background(), []*query.JoinQuery{q, q})
	if err != nil {
		t.Fatalf("AnnotateAll: %v", err)
	}
	if len(out) != 2 || out[0].Card != 6 || out[1].Card != 6 {
		t.Errorf("AnnotateAll = %+v", out)
	}
	if ja.Queries != 2 {
		t.Errorf("Queries = %d", ja.Queries)
	}
}

// countOK unwraps Count for well-formed test predicates.
func countOK(t *testing.T, a *Annotator, p query.Predicate) float64 {
	t.Helper()
	c, err := a.Count(context.Background(), p)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	return c
}

// joinCountOK unwraps JoinAnnotator.Count for well-formed test queries.
func joinCountOK(t *testing.T, ja *JoinAnnotator, q *query.JoinQuery) float64 {
	t.Helper()
	c, err := ja.Count(context.Background(), q)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	return c
}
