// Package annotator computes ground-truth cardinalities for predicates — the
// 𝔸 module of Figure 4. The paper implements 𝔸 in C++ against the DBMS; here
// it scans the in-memory columnar tables directly. It also meters its own
// cost (scanned rows and wall time) because annotation is the dominant term
// c_gt of Warper's cost model (§4.3).
//
// Annotation is the only adaptation step that touches an external system in
// production, so every entry point takes a context and returns an error: a
// cancelled request or a failed count must degrade the period, not abort the
// process (see the Source interface and internal/resilience).
package annotator

import (
	"context"
	"fmt"
	"sync"
	"time"

	"warper/internal/dataset"
	"warper/internal/query"
)

// Annotator answers count(*) queries over a single table.
type Annotator struct {
	tbl *dataset.Table

	// mu guards the cost meters below. Count runs concurrently on the
	// serving path (parallel annotation, /estimate traffic during a
	// period), so meter updates must be synchronized; reading the fields
	// directly is safe only once all concurrent callers have quiesced.
	mu          sync.Mutex
	Queries     int
	RowsScanned int64
	Elapsed     time.Duration
}

// New returns an annotator over the table.
func New(t *dataset.Table) *Annotator { return &Annotator{tbl: t} }

// Table returns the underlying table (live, not a copy).
func (a *Annotator) Table() *dataset.Table { return a.tbl }

// Count returns the exact number of rows matching the predicate. A
// predicate whose dimensionality does not match the table is reported as an
// error: annotation runs on the adaptation path of a long-lived server, so a
// malformed predicate must not kill the process. Cancelling ctx stops the
// scan within ctxCheckRows rows.
func (a *Annotator) Count(ctx context.Context, p query.Predicate) (float64, error) {
	start := time.Now()
	n := a.tbl.NumRows()
	if p.Dim() != a.tbl.NumCols() {
		return 0, fmt.Errorf("annotator: predicate dim %d vs table cols %d", p.Dim(), a.tbl.NumCols())
	}
	cols := a.tbl.Cols
	count := 0
rows:
	for r := 0; r < n; r++ {
		if r%ctxCheckRows == 0 && ctx.Err() != nil {
			return 0, ctx.Err()
		}
		for c := range cols {
			v := cols[c].Vals[r]
			if v < p.Lows[c] || v > p.Highs[c] {
				continue rows
			}
		}
		count++
	}
	a.addCost(1, int64(n), time.Since(start))
	return float64(count), nil
}

// AnnotateAll labels every predicate, scanning the table once per batch row
// pass (all predicates are evaluated in a single sweep, mirroring the
// "batching predicates into a single evaluation tree" optimization the paper
// mentions in §2). A dimension mismatch anywhere in the batch, or a
// cancelled context, fails the whole batch.
func (a *Annotator) AnnotateAll(ctx context.Context, ps []query.Predicate) ([]query.Labeled, error) {
	start := time.Now()
	n := a.tbl.NumRows()
	for i := range ps {
		if ps[i].Dim() != a.tbl.NumCols() {
			return nil, fmt.Errorf("annotator: predicate %d dim %d vs table cols %d",
				i, ps[i].Dim(), a.tbl.NumCols())
		}
	}
	counts := make([]int, len(ps))
	cols := a.tbl.Cols
	row := make([]float64, len(cols))
	for r := 0; r < n; r++ {
		if r%ctxCheckRows == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		for c := range cols {
			row[c] = cols[c].Vals[r]
		}
		for i := range ps {
			if ps[i].Matches(row) {
				counts[i]++
			}
		}
	}
	out := make([]query.Labeled, len(ps))
	for i, p := range ps {
		out[i] = query.Labeled{Pred: p, Card: float64(counts[i])}
	}
	a.addCost(len(ps), int64(n), time.Since(start)) // one shared scan
	return out, nil
}

// addCost charges a finished annotation to the meters.
func (a *Annotator) addCost(queries int, rows int64, d time.Duration) {
	a.mu.Lock()
	a.Queries += queries
	a.RowsScanned += rows
	a.Elapsed += d
	a.mu.Unlock()
}

// MeanCostPerQuery returns the measured mean annotation latency, which the
// experiment harness charges to the virtual clock. Returns 0 before any
// query ran.
func (a *Annotator) MeanCostPerQuery() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.Queries == 0 {
		return 0
	}
	return a.Elapsed / time.Duration(a.Queries)
}

// ResetMeters zeroes the cost meters.
func (a *Annotator) ResetMeters() {
	a.mu.Lock()
	a.Queries = 0
	a.RowsScanned = 0
	a.Elapsed = 0
	a.mu.Unlock()
}

// CountDisjunction returns the exact number of rows matching at least one
// disjunct (rows are counted once even when several disjuncts match). A
// disjunct whose dimensionality does not match the table is an error, like
// Count's.
func (a *Annotator) CountDisjunction(ctx context.Context, d query.Disjunction) (float64, error) {
	start := time.Now()
	for i, p := range d {
		if p.Dim() != a.tbl.NumCols() {
			return 0, fmt.Errorf("annotator: disjunct %d dim %d vs table cols %d",
				i, p.Dim(), a.tbl.NumCols())
		}
	}
	n := a.tbl.NumRows()
	row := make([]float64, a.tbl.NumCols())
	count := 0
	for r := 0; r < n; r++ {
		if r%ctxCheckRows == 0 && ctx.Err() != nil {
			return 0, ctx.Err()
		}
		if d.Matches(a.tbl.Row(r, row)) {
			count++
		}
	}
	a.addCost(1, int64(n), time.Since(start))
	return float64(count), nil
}
