// Package annotator computes ground-truth cardinalities for predicates — the
// 𝔸 module of Figure 4. The paper implements 𝔸 in C++ against the DBMS; here
// it scans the in-memory columnar tables directly. It also meters its own
// cost (scanned rows and wall time) because annotation is the dominant term
// c_gt of Warper's cost model (§4.3).
package annotator

import (
	"fmt"
	"time"

	"warper/internal/dataset"
	"warper/internal/query"
)

// Annotator answers count(*) queries over a single table.
type Annotator struct {
	tbl *dataset.Table

	// Cost meters.
	Queries     int
	RowsScanned int64
	Elapsed     time.Duration
}

// New returns an annotator over the table.
func New(t *dataset.Table) *Annotator { return &Annotator{tbl: t} }

// Table returns the underlying table (live, not a copy).
func (a *Annotator) Table() *dataset.Table { return a.tbl }

// Count returns the exact number of rows matching the predicate. A
// predicate whose dimensionality does not match the table is reported as an
// error: annotation runs on the adaptation path of a long-lived server, so a
// malformed predicate must not kill the process.
func (a *Annotator) Count(p query.Predicate) (float64, error) {
	start := time.Now()
	n := a.tbl.NumRows()
	if p.Dim() != a.tbl.NumCols() {
		return 0, fmt.Errorf("annotator: predicate dim %d vs table cols %d", p.Dim(), a.tbl.NumCols())
	}
	cols := a.tbl.Cols
	count := 0
rows:
	for r := 0; r < n; r++ {
		for c := range cols {
			v := cols[c].Vals[r]
			if v < p.Lows[c] || v > p.Highs[c] {
				continue rows
			}
		}
		count++
	}
	a.Queries++
	a.RowsScanned += int64(n)
	a.Elapsed += time.Since(start)
	return float64(count), nil
}

// AnnotateAll labels every predicate, scanning the table once per batch row
// pass (all predicates are evaluated in a single sweep, mirroring the
// "batching predicates into a single evaluation tree" optimization the paper
// mentions in §2).
func (a *Annotator) AnnotateAll(ps []query.Predicate) []query.Labeled {
	start := time.Now()
	n := a.tbl.NumRows()
	counts := make([]int, len(ps))
	cols := a.tbl.Cols
	row := make([]float64, len(cols))
	for r := 0; r < n; r++ {
		for c := range cols {
			row[c] = cols[c].Vals[r]
		}
		for i := range ps {
			if ps[i].Matches(row) {
				counts[i]++
			}
		}
	}
	out := make([]query.Labeled, len(ps))
	for i, p := range ps {
		out[i] = query.Labeled{Pred: p, Card: float64(counts[i])}
	}
	a.Queries += len(ps)
	a.RowsScanned += int64(n) // one shared scan
	a.Elapsed += time.Since(start)
	return out
}

// MeanCostPerQuery returns the measured mean annotation latency, which the
// experiment harness charges to the virtual clock. Returns 0 before any
// query ran.
func (a *Annotator) MeanCostPerQuery() time.Duration {
	if a.Queries == 0 {
		return 0
	}
	return a.Elapsed / time.Duration(a.Queries)
}

// ResetMeters zeroes the cost meters.
func (a *Annotator) ResetMeters() {
	a.Queries = 0
	a.RowsScanned = 0
	a.Elapsed = 0
}

// CountDisjunction returns the exact number of rows matching at least one
// disjunct (rows are counted once even when several disjuncts match).
func (a *Annotator) CountDisjunction(d query.Disjunction) float64 {
	start := time.Now()
	n := a.tbl.NumRows()
	row := make([]float64, a.tbl.NumCols())
	count := 0
	for r := 0; r < n; r++ {
		if d.Matches(a.tbl.Row(r, row)) {
			count++
		}
	}
	a.Queries++
	a.RowsScanned += int64(n)
	a.Elapsed += time.Since(start)
	return float64(count)
}
