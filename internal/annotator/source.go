package annotator

import (
	"context"

	"warper/internal/query"
)

// Source is the annotation seam between Warper and whatever executes
// ground-truth counts. In this reproduction every implementation scans
// in-memory tables, but in production 𝔸 issues count(*) queries against a
// live DBMS — a call that can be slow, flaky, or down. The interface is
// therefore context-aware (callers bound and cancel annotation work) and
// fallible (a failed count surfaces as an error the adaptation loop can
// absorb instead of a lost period).
//
// Implementations: *Annotator (exact), *Sampled (approximate), *Parallel
// (fan-out over worker goroutines), and the wrappers in
// internal/resilience (retry/breaker hardening, fault injection). The
// JoinAnnotator follows the same shape over join queries but is not a
// Source — its query type differs.
type Source interface {
	// Count returns the cardinality of one predicate. It returns promptly
	// with ctx.Err() once the context is cancelled.
	Count(ctx context.Context, p query.Predicate) (float64, error)
	// AnnotateAll labels a batch of predicates. An error means the batch is
	// incomplete and no partial results are returned; callers that want
	// per-predicate degradation should loop over Count instead.
	AnnotateAll(ctx context.Context, ps []query.Predicate) ([]query.Labeled, error)
}

// Interface conformance of the in-package annotators.
var (
	_ Source = (*Annotator)(nil)
	_ Source = (*Sampled)(nil)
	_ Source = (*Parallel)(nil)
)

// ctxCheckRows is how many rows the scan loops process between context
// polls: frequent enough that cancellation lands within microseconds on the
// tables this reproduction uses, rare enough that the atomic load in
// ctx.Err() stays invisible next to the per-row comparisons.
const ctxCheckRows = 4096
