package annotator

import (
	"context"
	"fmt"
	"sync"
	"time"

	"warper/internal/dataset"
	"warper/internal/query"
)

// JoinAnnotator answers count(*) for key–foreign-key join queries over a
// registry of tables, executing left-deep hash joins over the filtered
// inputs. It backs the ground truth for the MSCN join experiments (§4.1.2).
type JoinAnnotator struct {
	tables map[string]*dataset.Table

	// mu guards the cost meters against concurrent Count calls.
	mu      sync.Mutex
	Queries int
	Elapsed time.Duration
}

// NewJoin builds a join annotator over the given tables.
func NewJoin(tables ...*dataset.Table) *JoinAnnotator {
	m := make(map[string]*dataset.Table, len(tables))
	for _, t := range tables {
		m[t.Name] = t
	}
	return &JoinAnnotator{tables: m}
}

// Table returns a registered table by name, or nil.
func (ja *JoinAnnotator) Table(name string) *dataset.Table { return ja.tables[name] }

// Count executes the join query and returns its exact cardinality.
//
// The plan is left-deep in the order of q.Tables: filtered rows of the first
// table seed the working set; each later table is hash-joined in on the join
// conditions that connect it to tables already joined. Every table in
// q.Tables must be connected by the time it is reached; malformed queries
// (unknown table, dimension mismatch, disconnected join) are reported as
// errors rather than panics. Cancelling ctx stops the join between row
// batches.
func (ja *JoinAnnotator) Count(ctx context.Context, q *query.JoinQuery) (float64, error) {
	start := time.Now()
	defer func() {
		ja.mu.Lock()
		ja.Queries++
		ja.Elapsed += time.Since(start)
		ja.mu.Unlock()
	}()
	if len(q.Tables) == 0 {
		return 0, nil
	}
	// Working set: multiset of join-relevant column values per joined table.
	// We track, for each intermediate result row, the values of every column
	// that a *future* join condition needs.
	type rowRef struct {
		vals map[string]float64 // "table.col" → value
	}

	neededCols := make(map[string]map[string]bool) // table → cols needed by joins
	for _, jc := range q.Joins {
		addNeed(neededCols, jc.LeftTable, jc.LeftCol)
		addNeed(neededCols, jc.RightTable, jc.RightCol)
	}

	filtered := func(name string) ([]rowRef, error) {
		t := ja.tables[name]
		if t == nil {
			return nil, fmt.Errorf("annotator: unknown table %q", name)
		}
		pred, hasPred := q.Preds[name]
		if hasPred && pred.Dim() != t.NumCols() {
			return nil, fmt.Errorf("annotator: predicate dim %d vs table %q cols %d", pred.Dim(), name, t.NumCols())
		}
		var out []rowRef
		row := make([]float64, t.NumCols())
		for r := 0; r < t.NumRows(); r++ {
			if r%ctxCheckRows == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			t.Row(r, row)
			if hasPred && !pred.Matches(row) {
				continue
			}
			ref := rowRef{vals: map[string]float64{}}
			for col := range neededCols[name] {
				ref.vals[name+"."+col] = row[t.ColIndex(col)]
			}
			out = append(out, ref)
		}
		return out, nil
	}

	joined := map[string]bool{q.Tables[0]: true}
	current, err := filtered(q.Tables[0])
	if err != nil {
		return 0, err
	}

	for _, name := range q.Tables[1:] {
		// Find the join conditions connecting `name` to the joined set.
		var conds []query.JoinCond
		for _, jc := range q.Joins {
			if jc.LeftTable == name && joined[jc.RightTable] ||
				jc.RightTable == name && joined[jc.LeftTable] {
				conds = append(conds, jc)
			}
		}
		if len(conds) == 0 {
			return 0, fmt.Errorf("annotator: table %q not connected to the join so far", name)
		}
		newRows, err := filtered(name)
		if err != nil {
			return 0, err
		}
		// Hash the new table's rows by the composite key of its join cols.
		type key string
		buildKey := func(ref rowRef, fromNew bool) key {
			k := ""
			for _, jc := range conds {
				var tbl, col string
				if fromNew == (jc.LeftTable == name) {
					tbl, col = jc.LeftTable, jc.LeftCol
				} else {
					tbl, col = jc.RightTable, jc.RightCol
				}
				k += fmt.Sprintf("%g|", ref.vals[tbl+"."+col])
			}
			return key(k)
		}
		hash := make(map[key][]rowRef, len(newRows))
		for _, ref := range newRows {
			k := buildKey(ref, true)
			hash[k] = append(hash[k], ref)
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		var next []rowRef
		for _, ref := range current {
			k := buildKey(ref, false)
			for _, m := range hash[k] {
				merged := rowRef{vals: map[string]float64{}}
				for c, v := range ref.vals {
					merged.vals[c] = v
				}
				for c, v := range m.vals {
					merged.vals[c] = v
				}
				next = append(next, merged)
			}
		}
		current = next
		joined[name] = true
	}
	return float64(len(current)), nil
}

// AnnotateAll labels a batch of join queries. The first malformed query or
// a cancelled context aborts the batch.
func (ja *JoinAnnotator) AnnotateAll(ctx context.Context, qs []*query.JoinQuery) ([]query.LabeledJoin, error) {
	out := make([]query.LabeledJoin, len(qs))
	for i, q := range qs {
		card, err := ja.Count(ctx, q)
		if err != nil {
			return nil, err
		}
		out[i] = query.LabeledJoin{Query: q, Card: card}
	}
	return out, nil
}

func addNeed(m map[string]map[string]bool, table, col string) {
	if m[table] == nil {
		m[table] = map[string]bool{}
	}
	m[table][col] = true
}
