package annotator

import (
	"context"
	"math/rand"
	"testing"

	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/workload"
)

func TestParallelAnnotateMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := dataset.PRSA(2000, rng)
	sch := query.SchemaOf(tbl)
	g := workload.New("w3", tbl, sch, workload.Options{})
	preds := workload.Generate(g, 40, rng)

	serial, err := New(tbl).AnnotateAll(context.Background(), preds)
	if err != nil {
		t.Fatalf("AnnotateAll: %v", err)
	}
	for _, workers := range []int{0, 1, 4} {
		par, err := ParallelAnnotate(context.Background(), tbl, preds, workers)
		if err != nil {
			t.Fatalf("ParallelAnnotate: %v", err)
		}
		for i := range serial {
			if par[i].Card != serial[i].Card {
				t.Fatalf("workers=%d pred %d: %v vs %v", workers, i, par[i].Card, serial[i].Card)
			}
		}
	}
}

func TestParallelAnnotateEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl := dataset.PRSA(100, rng)
	out, err := ParallelAnnotate(context.Background(), tbl, nil, 4)
	if err != nil {
		t.Fatalf("ParallelAnnotate: %v", err)
	}
	if len(out) != 0 {
		t.Errorf("empty input produced %d results", len(out))
	}
}
