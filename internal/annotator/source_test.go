package annotator

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/workload"
)

// TestCancelledContextStopsCount pins the Source contract: a cancelled
// context surfaces as ctx.Err() from every entry point instead of a full
// scan's worth of wasted work.
func TestCancelledContextStopsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := dataset.PRSA(9000, rng)
	sch := query.SchemaOf(tbl)
	g := workload.New("w1", tbl, sch, workload.Options{})
	preds := workload.Generate(g, 8, rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	a := New(tbl)
	if _, err := a.Count(ctx, preds[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("Count err = %v, want context.Canceled", err)
	}
	if _, err := a.AnnotateAll(ctx, preds); !errors.Is(err, context.Canceled) {
		t.Errorf("AnnotateAll err = %v, want context.Canceled", err)
	}
	if _, err := a.CountDisjunction(ctx, query.Disjunction(preds[:2])); !errors.Is(err, context.Canceled) {
		t.Errorf("CountDisjunction err = %v, want context.Canceled", err)
	}
	s := newSampledOK(t, tbl, 0.5, rng)
	if _, err := s.Count(ctx, preds[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("Sampled.Count err = %v, want context.Canceled", err)
	}
	if _, err := ParallelAnnotate(ctx, tbl, preds, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("ParallelAnnotate err = %v, want context.Canceled", err)
	}
	// A cancelled annotation charges nothing to the cost meters.
	if a.Queries != 0 {
		t.Errorf("cancelled work was metered: Queries = %d", a.Queries)
	}
}

// TestParallelSourceMatchesExact pins the Parallel Source adapter against
// the serial exact annotator.
func TestParallelSourceMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tbl := dataset.PRSA(1500, rng)
	sch := query.SchemaOf(tbl)
	g := workload.New("w2", tbl, sch, workload.Options{})
	preds := workload.Generate(g, 16, rng)

	exact := New(tbl)
	par := NewParallel(tbl, 4)
	ctx := context.Background()
	got, err := par.AnnotateAll(ctx, preds)
	if err != nil {
		t.Fatalf("Parallel.AnnotateAll: %v", err)
	}
	for i, lp := range got {
		if want := countOK(t, exact, preds[i]); lp.Card != want {
			t.Fatalf("pred %d: parallel=%v exact=%v", i, lp.Card, want)
		}
	}
	c, err := par.Count(ctx, preds[0])
	if err != nil {
		t.Fatalf("Parallel.Count: %v", err)
	}
	if want := countOK(t, exact, preds[0]); c != want {
		t.Errorf("Parallel.Count = %v, want %v", c, want)
	}
}

// TestAnnotateAllDimMismatch pins the batch-path error contract added with
// the Source interface: a malformed predicate fails the batch with an error
// rather than matching nothing silently.
func TestAnnotateAllDimMismatch(t *testing.T) {
	tbl := smallTable()
	bad := []query.Predicate{{Lows: []float64{0}, Highs: []float64{1}}}
	if _, err := New(tbl).AnnotateAll(context.Background(), bad); err == nil {
		t.Error("exact AnnotateAll accepted a dim-mismatched predicate")
	}
	if _, err := ParallelAnnotate(context.Background(), tbl, bad, 2); err == nil {
		t.Error("ParallelAnnotate accepted a dim-mismatched predicate")
	}
	rng := rand.New(rand.NewSource(1))
	s := newSampledOK(t, tbl, 1, rng)
	if _, err := s.AnnotateAll(context.Background(), bad); err == nil {
		t.Error("Sampled.AnnotateAll accepted a dim-mismatched predicate")
	}
}
