package annotator

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"warper/internal/dataset"
	"warper/internal/query"
)

// Sampled is an approximate annotator that counts over a fixed row sample
// and scales up — the sampling-based labeling alternative §2 discusses
// ("some prior works suggest using samples; ... sampling-induced errors can
// affect model quality"). It trades annotation cost for label noise; the
// BenchmarkSampledAnnotator ablation quantifies the trade. On the serving
// path it doubles as the degradation fallback: when the exact source is
// down, noisy labels beat no labels (see warper.Adapter).
type Sampled struct {
	tbl   *dataset.Table
	rows  []int   // sampled row indices
	scale float64 // NumRows / len(rows)

	// mu guards the cost meters; Count can run concurrently when Sampled
	// serves as the degradation fallback.
	mu      sync.Mutex
	Queries int
	Elapsed time.Duration
}

// NewSampled draws a uniform row sample of the given rate (0 < rate <= 1).
func NewSampled(t *dataset.Table, rate float64, rng *rand.Rand) (*Sampled, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("annotator: sample rate %v outside (0, 1]", rate)
	}
	n := t.NumRows()
	k := int(float64(n) * rate)
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(n)
	rows := append([]int(nil), perm[:k]...)
	return &Sampled{tbl: t, rows: rows, scale: float64(n) / float64(k)}, nil
}

// SampleSize returns the number of sampled rows.
func (s *Sampled) SampleSize() int { return len(s.rows) }

// Count returns the scaled-up approximate cardinality.
func (s *Sampled) Count(ctx context.Context, p query.Predicate) (float64, error) {
	start := time.Now()
	if p.Dim() != s.tbl.NumCols() {
		return 0, fmt.Errorf("annotator: predicate dim %d vs table cols %d", p.Dim(), s.tbl.NumCols())
	}
	row := make([]float64, s.tbl.NumCols())
	hits := 0
	for i, r := range s.rows {
		if i%ctxCheckRows == 0 && ctx.Err() != nil {
			return 0, ctx.Err()
		}
		if p.Matches(s.tbl.Row(r, row)) {
			hits++
		}
	}
	s.mu.Lock()
	s.Queries++
	s.Elapsed += time.Since(start)
	s.mu.Unlock()
	return float64(hits) * s.scale, nil
}

// AnnotateAll labels every predicate approximately.
func (s *Sampled) AnnotateAll(ctx context.Context, ps []query.Predicate) ([]query.Labeled, error) {
	out := make([]query.Labeled, len(ps))
	for i, p := range ps {
		card, err := s.Count(ctx, p)
		if err != nil {
			return nil, err
		}
		out[i] = query.Labeled{Pred: p, Card: card}
	}
	return out, nil
}
