package annotator

import (
	"fmt"
	"math/rand"
	"time"

	"warper/internal/dataset"
	"warper/internal/query"
)

// Sampled is an approximate annotator that counts over a fixed row sample
// and scales up — the sampling-based labeling alternative §2 discusses
// ("some prior works suggest using samples; ... sampling-induced errors can
// affect model quality"). It trades annotation cost for label noise; the
// BenchmarkSampledAnnotator ablation quantifies the trade.
type Sampled struct {
	tbl     *dataset.Table
	rows    []int   // sampled row indices
	scale   float64 // NumRows / len(rows)
	Queries int
	Elapsed time.Duration
}

// NewSampled draws a uniform row sample of the given rate (0 < rate <= 1).
func NewSampled(t *dataset.Table, rate float64, rng *rand.Rand) (*Sampled, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("annotator: sample rate %v outside (0, 1]", rate)
	}
	n := t.NumRows()
	k := int(float64(n) * rate)
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(n)
	rows := append([]int(nil), perm[:k]...)
	return &Sampled{tbl: t, rows: rows, scale: float64(n) / float64(k)}, nil
}

// SampleSize returns the number of sampled rows.
func (s *Sampled) SampleSize() int { return len(s.rows) }

// Count returns the scaled-up approximate cardinality.
func (s *Sampled) Count(p query.Predicate) float64 {
	start := time.Now()
	row := make([]float64, s.tbl.NumCols())
	hits := 0
	for _, r := range s.rows {
		if p.Matches(s.tbl.Row(r, row)) {
			hits++
		}
	}
	s.Queries++
	s.Elapsed += time.Since(start)
	return float64(hits) * s.scale
}

// AnnotateAll labels every predicate approximately.
func (s *Sampled) AnnotateAll(ps []query.Predicate) []query.Labeled {
	out := make([]query.Labeled, len(ps))
	for i, p := range ps {
		out[i] = query.Labeled{Pred: p, Card: s.Count(p)}
	}
	return out
}
