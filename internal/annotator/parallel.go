package annotator

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"warper/internal/dataset"
	"warper/internal/query"
)

// ParallelAnnotate labels predicates with a pool of worker goroutines, each
// scanning the (read-only) table independently. The paper's extended report
// describes a multi-threaded variant of Algorithm 1; annotation is its
// dominant parallelizable cost, and this helper lets deployments with spare
// cores fan it out. workers <= 0 uses GOMAXPROCS.
//
// Cancelling ctx stops the fan-out early: the feeder hands out no further
// predicates, in-flight scans bail within ctxCheckRows rows, and the call
// returns ctx.Err() with no partial results.
func ParallelAnnotate(ctx context.Context, t *dataset.Table, preds []query.Predicate, workers int) ([]query.Labeled, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(preds) {
		workers = len(preds)
	}
	out := make([]query.Labeled, len(preds))
	if len(preds) == 0 {
		return out, nil
	}
	for i := range preds {
		if preds[i].Dim() != t.NumCols() {
			return nil, fmt.Errorf("annotator: predicate %d dim %d vs table cols %d",
				i, preds[i].Dim(), t.NumCols())
		}
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := t.NumRows()
			cols := t.Cols
			for i := range next {
				if ctx.Err() != nil {
					continue // drain the channel without scanning
				}
				p := preds[i]
				count := 0
			rows:
				for r := 0; r < n; r++ {
					if r%ctxCheckRows == 0 && ctx.Err() != nil {
						break
					}
					for c := range cols {
						v := cols[c].Vals[r]
						if v < p.Lows[c] || v > p.Highs[c] {
							continue rows
						}
					}
					count++
				}
				out[i] = query.Labeled{Pred: p, Card: float64(count)}
			}
		}()
	}
feed:
	for i := range preds {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Parallel adapts ParallelAnnotate to the Source interface, so the fan-out
// path plugs into the same resilience wrappers as the serial annotators.
type Parallel struct {
	Tbl *dataset.Table
	// Workers bounds the goroutine pool; <= 0 uses GOMAXPROCS.
	Workers int
}

// NewParallel returns a parallel Source over the table.
func NewParallel(t *dataset.Table, workers int) *Parallel {
	return &Parallel{Tbl: t, Workers: workers}
}

// Count implements Source with a single-worker scan.
func (p *Parallel) Count(ctx context.Context, pred query.Predicate) (float64, error) {
	out, err := ParallelAnnotate(ctx, p.Tbl, []query.Predicate{pred}, 1)
	if err != nil {
		return 0, err
	}
	return out[0].Card, nil
}

// AnnotateAll implements Source.
func (p *Parallel) AnnotateAll(ctx context.Context, preds []query.Predicate) ([]query.Labeled, error) {
	return ParallelAnnotate(ctx, p.Tbl, preds, p.Workers)
}
