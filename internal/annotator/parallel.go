package annotator

import (
	"runtime"
	"sync"

	"warper/internal/dataset"
	"warper/internal/query"
)

// ParallelAnnotate labels predicates with a pool of worker goroutines, each
// scanning the (read-only) table independently. The paper's extended report
// describes a multi-threaded variant of Algorithm 1; annotation is its
// dominant parallelizable cost, and this helper lets deployments with spare
// cores fan it out. workers <= 0 uses GOMAXPROCS.
func ParallelAnnotate(t *dataset.Table, preds []query.Predicate, workers int) []query.Labeled {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(preds) {
		workers = len(preds)
	}
	out := make([]query.Labeled, len(preds))
	if len(preds) == 0 {
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := t.NumRows()
			cols := t.Cols
			for i := range next {
				p := preds[i]
				count := 0
			rows:
				for r := 0; r < n; r++ {
					for c := range cols {
						v := cols[c].Vals[r]
						if v < p.Lows[c] || v > p.Highs[c] {
							continue rows
						}
					}
					count++
				}
				out[i] = query.Labeled{Pred: p, Card: float64(count)}
			}
		}()
	}
	for i := range preds {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
