package obs

// P2 is a streaming quantile sketch implementing the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers track the running quantile
// with O(1) memory and O(1) update cost, no sample buffer. The flight
// recorder uses it for rolling q-error quantiles over the drift window,
// where a full histogram per window slot would cost more than the signal
// is worth and an exact sample buffer would be unbounded.
//
// A P2 is not safe for concurrent use; callers (the drift watch) guard it
// with their own mutex.
type P2 struct {
	p float64 // target quantile in (0,1)
	n int     // observations seen

	// The five markers: heights (estimated values) and actual positions
	// (1-based ranks), plus the desired positions and their per-observation
	// increments. Until five observations arrive, q holds the raw samples.
	q    [5]float64
	pos  [5]float64
	want [5]float64
	dw   [5]float64
}

// NewP2 returns a sketch estimating the p-quantile, p in (0,1).
func NewP2(p float64) *P2 {
	s := &P2{}
	s.Reset(p)
	return s
}

// Reset empties the sketch and re-targets it at quantile p (keep the old
// target by passing the same value). The drift watch resets its sketches at
// each window boundary, making them tumbling-window estimators.
func (s *P2) Reset(p float64) {
	if p <= 0 {
		p = 0.5
	}
	if p >= 1 {
		p = 0.99
	}
	*s = P2{p: p}
	s.dw = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// Count returns the number of observations since the last reset.
func (s *P2) Count() int { return s.n }

// Observe folds one value into the sketch.
func (s *P2) Observe(v float64) {
	if s.n < 5 {
		// Bootstrap: collect the first five samples sorted.
		i := s.n
		s.q[i] = v
		for i > 0 && s.q[i-1] > s.q[i] {
			s.q[i-1], s.q[i] = s.q[i], s.q[i-1]
			i--
		}
		s.n++
		if s.n == 5 {
			for j := range s.pos {
				s.pos[j] = float64(j + 1)
			}
			s.want = [5]float64{1, 1 + 2*s.p, 1 + 4*s.p, 3 + 2*s.p, 5}
		}
		return
	}

	// Find the cell k such that q[k] <= v < q[k+1], stretching the extremes.
	var k int
	switch {
	case v < s.q[0]:
		s.q[0] = v
		k = 0
	case v >= s.q[4]:
		s.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.want {
		s.want[i] += s.dw[i]
	}
	s.n++

	// Adjust the three interior markers toward their desired positions with
	// the piecewise-parabolic (P²) update, falling back to linear when the
	// parabola would breach a neighbor.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qn := s.parabolic(i, sign)
			if s.q[i-1] < qn && qn < s.q[i+1] {
				s.q[i] = qn
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by d (±1).
func (s *P2) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+d)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-d)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

// linear is the fallback height prediction along the segment toward the
// neighbor in direction d.
func (s *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// Quantile returns the current estimate: the middle marker once five
// observations exist, the exact order statistic before that, and 0 on an
// empty sketch.
func (s *P2) Quantile() float64 {
	switch {
	case s.n == 0:
		return 0
	case s.n < 5:
		// Exact small-sample quantile by nearest rank on the sorted prefix.
		idx := int(s.p * float64(s.n))
		if idx >= s.n {
			idx = s.n - 1
		}
		return s.q[idx]
	default:
		return s.q[2]
	}
}
