package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, families in sorted
// name order, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
		return err
	default:
		return writeHistogram(w, f.name, s.labels, s.h)
	}
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatFloat(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// bucketLabels merges an le label into an existing (possibly empty) label
// suffix.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", le)
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, no exponent for small magnitudes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PrometheusHandler serves GET /metrics.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// histogramJSON is the /debug/vars shape of a histogram.
type histogramJSON struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot returns every metric as a JSON-marshalable map keyed by
// name{labels}: counters as int64, gauges as float64, histograms as
// {count, sum, mean, p50, p95, p99, buckets}.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.sortedSeries() {
			key := f.name + s.labels
			switch f.kind {
			case kindCounter:
				out[key] = s.c.Value()
			case kindGauge:
				out[key] = s.g.Value()
			default:
				h := s.h
				buckets := h.Buckets()
				for i := range buckets {
					if math.IsInf(buckets[i].UpperBound, 1) {
						// JSON has no +Inf; mark the overflow bucket with -1.
						buckets[i].UpperBound = -1
					}
				}
				out[key] = histogramJSON{
					Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
					P50: h.Quantile(0.5), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
					Buckets: buckets,
				}
			}
		}
	}
	return out
}

// VarsHandler serves GET /debug/vars as a JSON dump of Snapshot.
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// AttachPprof mounts the net/http/pprof handlers on mux under /debug/pprof/.
// Callers gate this behind a config flag: profiles expose internals and cost
// CPU, so production deployments opt in explicitly.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
