// Package obs is the observability substrate of the serving stack: a
// dependency-free metrics registry (atomic counters, gauges and log-scale
// histograms suited to q-error and latency distributions) plus a lightweight
// span timer, with Prometheus text exposition and an expvar-style JSON dump.
//
// Every metric value is updated with atomic operations, so recording is safe
// from any goroutine and cheap enough for per-request hot paths; the registry
// mutex only guards metric *creation* and export iteration.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters never decrease).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (pool size, thresholds, …).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind distinguishes families during export; a name registered twice
// with different kinds is a programming error.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) time series inside a family.
type series struct {
	labels string // rendered {k="v",…} suffix, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	kind   metricKind
	help   string
	series map[string]*series // keyed by rendered label suffix
}

// Registry holds named metrics and renders them for exposition. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Help attaches exposition help text to a metric name.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = help
	} else {
		r.families[name] = &family{name: name, help: help, series: map[string]*series{}}
	}
}

// labelSuffix renders alternating key/value pairs as a deterministic
// {k="v",…} suffix. Keys are sorted so the same label set always maps to the
// same series regardless of argument order.
func labelSuffix(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, escapeLabel(p.v))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes backslash, quote and newline per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// seriesFor finds or creates the series for (name, labels), enforcing kind
// consistency across the family.
func (r *Registry) seriesFor(name string, kind metricKind, labels []string) *series {
	suffix := labelSuffix(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	} else if len(f.series) == 0 {
		f.kind = kind // help-only placeholder adopts the first real kind
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, f.kind, kind))
	}
	s := f.series[suffix]
	if s == nil {
		s = &series{labels: suffix}
		f.series[suffix] = s
	}
	return s
}

// Counter returns the counter for name with the given alternating key/value
// label pairs, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.seriesFor(name, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.seriesFor(name, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for name and labels, creating it with opts
// on first use (later calls ignore opts and return the existing histogram).
func (r *Registry) Histogram(name string, opts HistogramOpts, labels ...string) *Histogram {
	s := r.seriesFor(name, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = NewHistogram(opts)
	}
	return s.h
}

// AliasHistogram exposes an existing histogram under a second name — the
// one-release bridge when a metric is renamed: dashboards watching the old
// name keep seeing the same data while they migrate. The alias shares the
// histogram, so the two exported families are always identical. Panics if
// the alias name is already registered as a different kind.
func (r *Registry) AliasHistogram(alias string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[alias]
	if f == nil {
		f = &family{name: alias, kind: kindHistogram, series: map[string]*series{}}
		r.families[alias] = f
	} else if len(f.series) == 0 {
		f.kind = kindHistogram
	} else if f.kind != kindHistogram {
		panic(fmt.Sprintf("obs: alias %q already registered as %v", alias, f.kind))
	}
	s := f.series[""]
	if s == nil {
		s = &series{}
		f.series[""] = s
	}
	s.h = h
}

// snapshotFamilies returns families and series in deterministic order for
// exposition.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		if len(f.series) == 0 {
			continue // help-only entry, nothing to expose
		}
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series ordered by label suffix.
func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}
