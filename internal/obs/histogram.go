package obs

import (
	"math"
	"sync/atomic"
)

// HistogramOpts shapes a log-scale histogram: bucket i covers values up to
// Start·Growth^i, with one overflow bucket above the last bound. Log-spaced
// buckets fit the two distributions Warper cares about — latencies spanning
// microseconds to seconds and q-errors spanning 1 to 10^6 — with a small,
// fixed bucket count.
type HistogramOpts struct {
	// Start is the upper bound of the first bucket (must be > 0).
	Start float64
	// Growth is the multiplicative factor between bucket bounds (must be > 1).
	Growth float64
	// Count is the number of finite buckets (≥ 1).
	Count int
}

func (o HistogramOpts) withDefaults() HistogramOpts {
	if o.Start <= 0 {
		o.Start = 1e-4
	}
	if o.Growth <= 1 {
		o.Growth = 2
	}
	if o.Count < 1 {
		o.Count = 24
	}
	return o
}

// LatencyOpts covers 100µs to ~420s in 22 buckets (growth ×2), suited to
// request and period-stage durations in seconds.
func LatencyOpts() HistogramOpts { return HistogramOpts{Start: 1e-4, Growth: 2, Count: 22} }

// QErrorOpts covers q-errors from 1 to ~10^6 in 20 buckets (growth ×2);
// q-errors are ≥ 1 by construction so Start=1 wastes nothing.
func QErrorOpts() HistogramOpts { return HistogramOpts{Start: 1, Growth: 2, Count: 20} }

// Histogram is a fixed-bucket log-scale histogram with atomic recording.
type Histogram struct {
	bounds  []float64 // ascending upper bounds of the finite buckets
	buckets []atomic.Int64
	over    atomic.Int64 // values above the last bound
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a histogram from opts (zero fields take defaults).
func NewHistogram(opts HistogramOpts) *Histogram {
	opts = opts.withDefaults()
	h := &Histogram{
		bounds:  make([]float64, opts.Count),
		buckets: make([]atomic.Int64, opts.Count),
	}
	ub := opts.Start
	for i := range h.bounds {
		h.bounds[i] = ub
		ub *= opts.Growth
	}
	return h
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Binary search for the first bound ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.bounds) {
		h.buckets[lo].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the average observation, or 0 before any observation.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bucket is one exported histogram bucket: the count of observations at or
// below UpperBound. UpperBound is +Inf for the overflow bucket.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// Buckets returns the non-cumulative per-bucket counts, overflow last. The
// snapshot is not atomic across buckets — concurrent observations may land
// between reads — which is fine for monitoring.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.bounds)+1)
	for i, ub := range h.bounds {
		out = append(out, Bucket{UpperBound: ub, Count: h.buckets[i].Load()})
	}
	out = append(out, Bucket{UpperBound: math.Inf(1), Count: h.over.Load()})
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) by log-linear interpolation
// inside the owning bucket. It returns 0 before any observation; overflow
// observations report the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]int64, len(h.buckets))
	var n int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		n += counts[i]
	}
	n += h.over.Load()
	return quantileFromCounts(h.bounds, counts, n, q)
}

// quantileFromCounts interpolates the q-quantile over explicit per-bucket
// counts (total includes the overflow bucket). Shared between live
// histograms and the windowed bucket deltas computed by Windows.
func quantileFromCounts(bounds []float64, counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range counts {
		c := float64(counts[i])
		if cum+c >= rank && c > 0 {
			lower := bounds[i] / geomRatio(bounds, i)
			if i == 0 {
				// First bucket: interpolate from 0 (latency) — but a
				// log-scale start near 1 (q-error) makes 0 misleading, so
				// use half the bound as the nominal lower edge.
				lower = bounds[0] / 2
			}
			frac := (rank - cum) / c
			return lower * math.Pow(bounds[i]/lower, frac)
		}
		cum += c
	}
	return bounds[len(bounds)-1]
}

// geomRatio returns the growth ratio at bucket i (bounds are geometric, so
// any adjacent pair gives it).
func geomRatio(bounds []float64, i int) float64 {
	if i > 0 {
		return bounds[i] / bounds[i-1]
	}
	if len(bounds) > 1 {
		return bounds[1] / bounds[0]
	}
	return 2
}
