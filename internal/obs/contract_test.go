package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanEndAtMostOnce pins the End contract: the first call records, every
// later call returns 0 and observes nothing, so a defer plus an explicit
// early End cannot double-count.
func TestSpanEndAtMostOnce(t *testing.T) {
	h := NewHistogram(LatencyOpts())
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("first End = %v, want > 0", d)
	}
	if d := sp.End(); d != 0 {
		t.Errorf("second End = %v, want 0", d)
	}
	if h.Count() != 1 {
		t.Errorf("histogram recorded %d observations, want 1", h.Count())
	}

	// The defer-plus-early-End idiom the contract exists for.
	h2 := NewHistogram(LatencyOpts())
	func() {
		sp := StartSpan(h2)
		defer sp.End()
		sp.End()
	}()
	if h2.Count() != 1 {
		t.Errorf("defer+early End recorded %d, want 1", h2.Count())
	}
}

// TestGaugeAddConcurrent hammers the CAS loop in Gauge.Add from many
// goroutines; the final value must be the exact sum (run under -race to
// validate the loop's memory ordering).
func TestGaugeAddConcurrent(t *testing.T) {
	var g Gauge
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				g.Add(-0.5)
			}
		}()
	}
	wg.Wait()
	want := float64(workers * perWorker * 0.5)
	if got := g.Value(); math.Abs(got-want) > 1e-6 {
		t.Errorf("gauge = %v, want %v", got, want)
	}
}

// TestAliasHistogramSharesData verifies the rename bridge: the alias family
// exports the same observations as the canonical name.
func TestAliasHistogramSharesData(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("replica_checkout_wait_seconds", LatencyOpts())
	r.AliasHistogram("estimate_lock_wait_seconds", h)
	h.Observe(0.01)
	h.Observe(0.02)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"replica_checkout_wait_seconds_count 2",
		"estimate_lock_wait_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// The alias shares the histogram, so later observations appear in both.
	h.Observe(0.03)
	sb.Reset()
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "estimate_lock_wait_seconds_count 3") {
		t.Error("alias did not track the canonical histogram")
	}
}

func TestAliasHistogramKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("taken_total")
	defer func() {
		if recover() == nil {
			t.Error("aliasing over a counter name did not panic")
		}
	}()
	r.AliasHistogram("taken_total", NewHistogram(LatencyOpts()))
}
