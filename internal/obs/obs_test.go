package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "handler", "estimate")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters never decrease
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels → same counter; label order must not matter.
	if r.Counter("reqs_total", "handler", "estimate") != c {
		t.Error("re-registration returned a different counter")
	}
	c2 := r.Counter("reqs_total", "code", "200", "handler", "x")
	c3 := r.Counter("reqs_total", "handler", "x", "code", "200")
	if c2 != c3 {
		t.Error("label order changed series identity")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pool_size")
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge = %v, want 7.5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram(HistogramOpts{Start: 1, Growth: 2, Count: 4}) // bounds 1,2,4,8
	for _, v := range []float64{0.5, 1, 1.5, 3, 7, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+3+7+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	bs := h.Buckets()
	wantCounts := []int64{2, 1, 1, 1, 1} // ≤1, ≤2, ≤4, ≤8, overflow
	if len(bs) != len(wantCounts) {
		t.Fatalf("buckets = %d, want %d", len(bs), len(wantCounts))
	}
	for i, want := range wantCounts {
		if bs[i].Count != want {
			t.Errorf("bucket[%d] = %d, want %d", i, bs[i].Count, want)
		}
	}
	if !math.IsInf(bs[len(bs)-1].UpperBound, 1) {
		t.Error("last bucket should be +Inf")
	}
	// The median of 6 observations lands in the ≤2 bucket (1 < q50 ≤ 2).
	if q := h.Quantile(0.5); q < 0.5 || q > 2 {
		t.Errorf("p50 = %v, want within (0.5, 2]", q)
	}
	// Quantiles are monotone in q.
	if h.Quantile(0.2) > h.Quantile(0.9) {
		t.Error("quantiles not monotone")
	}
	if q := h.Quantile(1); q != 8 {
		t.Errorf("p100 with overflow = %v, want last finite bound 8", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(QErrorOpts())
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", LatencyOpts()).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Errorf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h", LatencyOpts()).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestSpanRecords(t *testing.T) {
	h := NewHistogram(LatencyOpts())
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Error("span duration should be positive")
	}
	if h.Count() != 1 {
		t.Errorf("histogram count = %d, want 1", h.Count())
	}
	var zero Span
	if zero.End() != 0 {
		t.Error("zero span should be inert")
	}
}

func TestStagesSequence(t *testing.T) {
	var got []string
	st := NewStages(func(stage string, d time.Duration) {
		if d < 0 {
			t.Errorf("stage %s negative duration", stage)
		}
		got = append(got, stage)
	})
	st.At("detect")
	st.At("generate")
	st.At("update")
	st.Close()
	st.Close() // idempotent
	want := []string{"detect", "generate", "update"}
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stage[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Nil sink must be safe.
	NewStages(nil).At("x")
}
