package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGolden locks the exposition format byte-for-byte on a small
// deterministic registry: HELP/TYPE headers, sorted families, label
// rendering, cumulative histogram buckets.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Help("warper_http_requests_total", "HTTP requests by handler and code.")
	r.Counter("warper_http_requests_total", "handler", "estimate", "code", "200").Add(3)
	r.Counter("warper_http_requests_total", "handler", "period", "code", "409").Inc()
	r.Gauge("warper_pi").Set(1.5)
	h := r.Histogram("warper_qerror", HistogramOpts{Start: 1, Growth: 10, Count: 3})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP warper_http_requests_total HTTP requests by handler and code.
# TYPE warper_http_requests_total counter
warper_http_requests_total{code="200",handler="estimate"} 3
warper_http_requests_total{code="409",handler="period"} 1
# TYPE warper_pi gauge
warper_pi 1.5
# TYPE warper_qerror histogram
warper_qerror_bucket{le="1"} 1
warper_qerror_bucket{le="10"} 2
warper_qerror_bucket{le="100"} 2
warper_qerror_bucket{le="+Inf"} 3
warper_qerror_sum 5005.5
warper_qerror_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestVarsJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", "v").Add(7)
	r.Gauge("g").Set(2.25)
	h := r.Histogram("h", HistogramOpts{Start: 1, Growth: 2, Count: 3})
	h.Observe(1.5)
	h.Observe(100)

	rec := httptest.NewRecorder()
	r.VarsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("vars output is not valid JSON: %v", err)
	}
	var c int64
	if err := json.Unmarshal(got[`c{k="v"}`], &c); err != nil || c != 7 {
		t.Errorf("counter round-trip = %d, %v", c, err)
	}
	var g float64
	if err := json.Unmarshal(got["g"], &g); err != nil || g != 2.25 {
		t.Errorf("gauge round-trip = %v, %v", g, err)
	}
	var hj struct {
		Count   int64   `json:"count"`
		Sum     float64 `json:"sum"`
		Buckets []struct {
			Le    float64 `json:"le"`
			Count int64   `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(got["h"], &hj); err != nil {
		t.Fatalf("histogram round-trip: %v", err)
	}
	if hj.Count != 2 || hj.Sum != 101.5 {
		t.Errorf("histogram = %+v", hj)
	}
	if n := len(hj.Buckets); n != 4 {
		t.Fatalf("buckets = %d, want 4", n)
	}
	if hj.Buckets[3].Le != -1 || hj.Buckets[3].Count != 1 {
		t.Errorf("overflow bucket = %+v", hj.Buckets[3])
	}
}

func TestPrometheusHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	rec := httptest.NewRecorder()
	r.PrometheusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain") {
		t.Errorf("content-type = %q", rec.Header().Get("Content-Type"))
	}
	if !strings.Contains(rec.Body.String(), "x 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestAttachPprof(t *testing.T) {
	mux := http.NewServeMux()
	AttachPprof(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("pprof index = %d", rec.Code)
	}
}
