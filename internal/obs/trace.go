package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the request-tracing half of the flight recorder: a
// sampled, allocation-bounded per-request trace through the serving stages
// (handler → coalescer → replica checkout → batched inference), retained in
// a fixed ring and exportable as Chrome trace-event JSON, plus top-K
// exemplar capture for the worst and slowest requests.
//
// The binding constraint is the estimate hot path: with sampling off, the
// only cost a request pays is one atomic load in Tracer.Acquire. Trace
// structs are pre-allocated and recycled through a free list, so tracing a
// request never allocates either — the ring and the free list together own
// every Trace that will ever exist.

// maxTraceStages bounds the per-trace stage array. The serving path has
// five stages today; the headroom absorbs future splits without a realloc.
const maxTraceStages = 8

// TraceStage is one timed stage inside a trace, as an offset from the
// trace start.
type TraceStage struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start"`
	Dur   time.Duration `json:"dur"`
}

// Trace records one sampled request. Exactly one goroutine owns a trace
// between Acquire and Finish, so stage recording needs no synchronization.
type Trace struct {
	ID      uint64
	Handler string
	Start   time.Time
	// BatchSize and Generation capture which serving configuration answered:
	// how many coalesced requests shared the forward pass and which model
	// generation's replica ran it.
	BatchSize  int
	Generation uint64

	stages [maxTraceStages]TraceStage
	n      int
	cur    string // open stage name, "" when none
	curAt  time.Time
	total  time.Duration // set by Finish
}

// reset prepares a recycled trace for a new request.
func (t *Trace) reset(id uint64, handler string, now time.Time) {
	t.ID = id
	t.Handler = handler
	t.Start = now
	t.BatchSize = 0
	t.Generation = 0
	t.n = 0
	t.cur = ""
	t.total = 0
}

// EnterStage closes the open stage (if any) and opens the named one. Safe
// to call on a nil trace, so call sites need no guards.
func (t *Trace) EnterStage(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.closeStage(now)
	t.cur = name
	t.curAt = now
}

// closeStage ends the open stage at now.
func (t *Trace) closeStage(now time.Time) {
	if t.cur == "" {
		return
	}
	if t.n < len(t.stages) {
		t.stages[t.n] = TraceStage{Name: t.cur, Start: t.curAt.Sub(t.Start), Dur: now.Sub(t.curAt)}
		t.n++
	}
	t.cur = ""
}

// Stages returns the recorded stages. Valid only after Finish, or while the
// owning goroutine still holds the trace.
func (t *Trace) Stages() []TraceStage { return t.stages[:t.n] }

// Total returns the request's wall-clock duration (set by Finish).
func (t *Trace) Total() time.Duration { return t.total }

// Tracer samples requests and retains the last `buf` finished traces in a
// ring. All Trace structs are pre-allocated: `buf` live in the ring plus
// `buf` circulating through the free list, so concurrent sampled requests
// beyond the free list's depth simply go untraced rather than allocating.
type Tracer struct {
	// every is the sampling interval: trace one request in every `every`.
	// 0 disables tracing; the Acquire fast path is a single atomic load.
	every atomic.Int64
	seq   atomic.Uint64 // request counter driving the deterministic sampler
	ids   atomic.Uint64 // trace ID allocator

	free chan *Trace

	mu    sync.Mutex
	ring  []*Trace // finished traces, oldest overwritten
	n     int
	next  int
	total uint64 // finished traces ever

	// Sampled and Dropped count sampling decisions and free-list starvation;
	// the serving metrics export them.
	Sampled atomic.Int64
	Dropped atomic.Int64
}

// NewTracer builds a tracer retaining buf finished traces (minimum 8),
// sampling one request in every `every` (0 = off).
func NewTracer(every, buf int) *Tracer {
	if buf < 8 {
		buf = 8
	}
	t := &Tracer{
		free: make(chan *Trace, 2*buf),
		ring: make([]*Trace, buf),
	}
	// 2*buf total: once the ring fills with buf finished traces, every
	// Finish recycles its eviction back here, leaving buf circulating
	// through the free list indefinitely.
	for i := 0; i < 2*buf; i++ {
		t.free <- &Trace{}
	}
	t.SetSample(every)
	return t
}

// SetSample changes the sampling interval: trace one request in every n
// (0 or negative disables).
func (t *Tracer) SetSample(n int) {
	if n < 0 {
		n = 0
	}
	t.every.Store(int64(n))
}

// Sampling reports whether the tracer is currently sampling at all.
func (t *Tracer) Sampling() bool { return t.every.Load() > 0 }

// Acquire returns a trace for this request, or nil when tracing is off,
// the request is not sampled, or every pre-allocated trace is in flight.
// The disabled path is one atomic load.
func (t *Tracer) Acquire(handler string) *Trace {
	every := t.every.Load()
	if every == 0 {
		return nil
	}
	if t.seq.Add(1)%uint64(every) != 0 {
		return nil
	}
	t.Sampled.Add(1)
	select {
	case tr := <-t.free:
		tr.reset(t.ids.Add(1), handler, time.Now())
		return tr
	default:
		t.Dropped.Add(1)
		return nil
	}
}

// Finish closes the trace's open stage and publishes it into the ring,
// evicting the oldest finished trace back onto the free list. Safe on nil.
func (t *Tracer) Finish(tr *Trace) {
	if tr == nil {
		return
	}
	now := time.Now()
	tr.closeStage(now)
	tr.total = now.Sub(tr.Start)
	t.mu.Lock()
	evicted := t.ring[t.next]
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.total++
	t.mu.Unlock()
	if evicted != nil {
		// The channel send is the happens-before edge between this ring slot
		// read and the next owner's reset.
		t.free <- evicted
	}
}

// Snapshot copies the finished traces, oldest-first. The copies are
// detached values: the ring entries they came from may be recycled
// immediately after.
func (t *Tracer) Snapshot() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, *t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Total returns how many traces ever finished.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the JSON-object flavor of the format.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders traces as Chrome trace-event JSON: one complete
// event per trace spanning the whole request, one per recorded stage,
// timestamped relative to the earliest trace start. Each trace gets its ID
// as the tid, so concurrent requests stack as separate tracks.
func WriteChromeTrace(w io.Writer, traces []Trace) error {
	var epoch time.Time
	for i := range traces {
		if epoch.IsZero() || traces[i].Start.Before(epoch) {
			epoch = traces[i].Start
		}
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	file := chromeTraceFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for i := range traces {
		tr := &traces[i]
		base := tr.Start.Sub(epoch)
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: tr.Handler, Ph: "X", Ts: us(base), Dur: us(tr.total), Pid: 1, Tid: tr.ID,
			Args: map[string]any{
				"trace_id":   tr.ID,
				"batch_size": tr.BatchSize,
				"generation": tr.Generation,
			},
		})
		for _, st := range tr.Stages() {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: st.Name, Ph: "X", Ts: us(base + st.Start), Dur: us(st.Dur), Pid: 1, Tid: tr.ID,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// Exemplar pins one noteworthy request — a worst-q-error or slowest
// outlier — with enough context to reproduce it: the predicate, the
// estimate vs. the truth, and the trace that carried it.
type Exemplar struct {
	TraceID   uint64    `json:"trace_id,omitempty"`
	Time      time.Time `json:"time"`
	QError    float64   `json:"q_error,omitempty"`
	Latency   float64   `json:"latency_seconds,omitempty"`
	Predicate string    `json:"predicate,omitempty"`
	Estimate  float64   `json:"estimate,omitempty"`
	Truth     float64   `json:"truth,omitempty"`
}

// Exemplars keeps two bounded top-K sets: the worst q-error requests seen
// through feedback and the slowest sampled requests. A cheap atomic
// threshold check keeps non-outliers from ever touching the mutex.
type Exemplars struct {
	k int

	qFloor atomic.Uint64 // float64 bits of the smallest retained q-error
	sFloor atomic.Uint64 // float64 bits of the smallest retained latency

	mu      sync.Mutex
	worstQ  []Exemplar // sorted descending by QError
	slowest []Exemplar // sorted descending by Latency
}

// NewExemplars retains the top k (minimum 1) of each kind.
func NewExemplars(k int) *Exemplars {
	if k < 1 {
		k = 1
	}
	return &Exemplars{k: k}
}

// OfferQError offers a feedback-time q-error outlier.
func (e *Exemplars) OfferQError(x Exemplar) {
	if f := e.qFloor.Load(); f != 0 && x.QError <= math.Float64frombits(f) {
		return
	}
	e.mu.Lock()
	e.worstQ = insertTopK(e.worstQ, x, e.k, func(a, b Exemplar) bool { return a.QError > b.QError })
	if len(e.worstQ) == e.k {
		e.qFloor.Store(math.Float64bits(e.worstQ[len(e.worstQ)-1].QError))
	}
	e.mu.Unlock()
}

// OfferSlow offers a sampled slow request.
func (e *Exemplars) OfferSlow(x Exemplar) {
	if f := e.sFloor.Load(); f != 0 && x.Latency <= math.Float64frombits(f) {
		return
	}
	e.mu.Lock()
	e.slowest = insertTopK(e.slowest, x, e.k, func(a, b Exemplar) bool { return a.Latency > b.Latency })
	if len(e.slowest) == e.k {
		e.sFloor.Store(math.Float64bits(e.slowest[len(e.slowest)-1].Latency))
	}
	e.mu.Unlock()
}

// WorstQ returns the worst-q-error exemplars, worst first.
func (e *Exemplars) WorstQ() []Exemplar {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Exemplar(nil), e.worstQ...)
}

// Slowest returns the slowest-request exemplars, slowest first.
func (e *Exemplars) Slowest() []Exemplar {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Exemplar(nil), e.slowest...)
}

// insertTopK inserts x into the descending-sorted set, keeping at most k.
func insertTopK(set []Exemplar, x Exemplar, k int, more func(a, b Exemplar) bool) []Exemplar {
	i := len(set)
	for i > 0 && more(x, set[i-1]) {
		i--
	}
	if i >= k {
		return set
	}
	set = append(set, Exemplar{})
	copy(set[i+1:], set[i:])
	set[i] = x
	if len(set) > k {
		set = set[:k]
	}
	return set
}
