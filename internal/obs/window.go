package obs

import (
	"sort"
	"sync"
	"time"
)

// Windows gives every registry metric a recent-window view alongside its
// lifetime aggregate, without touching the recording hot path at all: it is
// a fixed-size ring of whole-registry snapshots taken at a coarse cadence
// (the slot duration), and a windowed reading is simply "live value minus
// the snapshot from one window ago". Counters become rates, histograms
// become windowed bucket deltas — which yield windowed count, mean and
// quantiles exactly, because a log-bucket histogram is just a vector of
// counters — and gauges report their current value plus its change since
// the base snapshot.
//
// All cost sits on the snapshot/read path (a scrape, a /statusz render, a
// feedback tick); Observe/Inc/Add stay the single atomic ops they were.
type Windows struct {
	reg *Registry

	mu    sync.Mutex
	slots []windowSample // ring, oldest overwritten
	n     int            // filled slots
	next  int            // ring write index
	span  time.Duration  // total window covered by the ring
	slot  time.Duration  // min spacing between snapshots
	last  time.Time      // time of the newest snapshot
}

// windowSample is one point-in-time capture of every metric value.
type windowSample struct {
	at       time.Time
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]histSample
}

// histSample captures a histogram's cumulative state: per-bucket counts
// (overflow last), total count and sum. bounds aliases the histogram's
// immutable bounds slice.
type histSample struct {
	bounds []float64
	counts []int64 // len(bounds)+1, overflow last
	count  int64
	sum    float64
}

// windowSlots is the ring granularity: the window is covered by this many
// snapshots, so the windowed view's age error is at most span/windowSlots.
const windowSlots = 12

// NewWindows builds a window tracker over reg covering span (how far back
// the recent-window view reaches). Spans below one second clamp to it.
func NewWindows(reg *Registry, span time.Duration) *Windows {
	if span < time.Second {
		span = time.Second
	}
	return &Windows{
		reg:   reg,
		slots: make([]windowSample, windowSlots),
		span:  span,
		slot:  span / windowSlots,
	}
}

// Span returns the window width.
func (w *Windows) Span() time.Duration { return w.span }

// Tick takes a registry snapshot if at least one slot duration has passed
// since the previous one. It is called opportunistically from scrape and
// feedback paths — never from the estimate hot path — so an idle server
// simply has a stale window, not a broken one.
func (w *Windows) Tick(now time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.last.IsZero() && now.Sub(w.last) < w.slot {
		return
	}
	w.slots[w.next] = w.capture(now)
	w.next = (w.next + 1) % len(w.slots)
	if w.n < len(w.slots) {
		w.n++
	}
	w.last = now
}

// capture reads every metric in the registry. Histogram snapshots are not
// atomic across buckets — standard monitoring semantics.
func (w *Windows) capture(now time.Time) windowSample {
	s := windowSample{
		at:       now,
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]histSample{},
	}
	for _, f := range w.reg.snapshotFamilies() {
		for _, sr := range f.sortedSeries() {
			key := f.name + sr.labels
			switch f.kind {
			case kindCounter:
				s.counters[key] = sr.c.Value()
			case kindGauge:
				s.gauges[key] = sr.g.Value()
			default:
				h := sr.h
				hs := histSample{
					bounds: h.bounds,
					counts: make([]int64, len(h.buckets)+1),
					sum:    h.Sum(),
				}
				for i := range h.buckets {
					hs.counts[i] = h.buckets[i].Load()
					hs.count += hs.counts[i]
				}
				hs.counts[len(h.buckets)] = h.over.Load()
				hs.count += hs.counts[len(h.buckets)]
				s.hists[key] = hs
			}
		}
	}
	return s
}

// WindowStat is the recent-window reading of one metric series.
type WindowStat struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Counters: the increase over the window and its per-second rate.
	Delta int64   `json:"delta,omitempty"`
	Rate  float64 `json:"rate,omitempty"`
	// Gauges: the current value and its change over the window (zero when
	// the series was born inside the window, so no base reading exists).
	Value  float64 `json:"value,omitempty"`
	Change float64 `json:"change,omitempty"`
	// Histograms: windowed count, mean and quantiles.
	Count int64   `json:"count,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
	// Lifetime aggregates for the alongside view: counter value, histogram
	// count, or gauge value again.
	Lifetime float64 `json:"lifetime"`
}

// WindowView is one consistent windowed reading of the whole registry.
type WindowView struct {
	From    time.Time    `json:"from"`
	To      time.Time    `json:"to"`
	Seconds float64      `json:"seconds"`
	Stats   []WindowStat `json:"stats"`
}

// View returns the recent-window reading: live values diffed against the
// oldest retained snapshot. Before the first Tick the window is empty and
// the view spans zero seconds with lifetime values only.
func (w *Windows) View(now time.Time) WindowView {
	w.mu.Lock()
	var base windowSample
	if w.n > 0 {
		oldest := w.next - w.n
		if oldest < 0 {
			oldest += len(w.slots)
		}
		base = w.slots[oldest]
	}
	w.mu.Unlock()

	live := w.capture(now)
	view := WindowView{From: base.at, To: now}
	if !base.at.IsZero() {
		view.Seconds = now.Sub(base.at).Seconds()
	}

	keys := make([]string, 0, len(live.counters)+len(live.gauges)+len(live.hists))
	for k := range live.counters {
		keys = append(keys, k)
	}
	for k := range live.gauges {
		keys = append(keys, k)
	}
	for k := range live.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		if v, ok := live.counters[k]; ok {
			st := WindowStat{Name: k, Kind: "counter", Delta: v - base.counters[k], Lifetime: float64(v)}
			if st.Delta < 0 {
				st.Delta = v // series born inside the window
			}
			if view.Seconds > 0 {
				st.Rate = float64(st.Delta) / view.Seconds
			}
			view.Stats = append(view.Stats, st)
			continue
		}
		if v, ok := live.gauges[k]; ok {
			st := WindowStat{Name: k, Kind: "gauge", Value: v, Lifetime: v}
			if bv, ok := base.gauges[k]; ok {
				st.Change = v - bv
			}
			view.Stats = append(view.Stats, st)
			continue
		}
		hs := live.hists[k]
		st := WindowStat{Name: k, Kind: "histogram", Lifetime: float64(hs.count)}
		bs := base.hists[k]
		deltas := make([]int64, len(hs.counts))
		var dcount int64
		dsum := hs.sum
		for i := range hs.counts {
			deltas[i] = hs.counts[i]
			if bs.counts != nil && i < len(bs.counts) {
				deltas[i] -= bs.counts[i]
			}
			if deltas[i] < 0 { // racing snapshot; clamp
				deltas[i] = 0
			}
			dcount += deltas[i]
		}
		if bs.counts != nil {
			dsum -= bs.sum
		}
		st.Count = dcount
		if dcount > 0 {
			st.Mean = dsum / float64(dcount)
			st.P50 = quantileFromCounts(hs.bounds, deltas[:len(hs.bounds)], dcount, 0.5)
			st.P95 = quantileFromCounts(hs.bounds, deltas[:len(hs.bounds)], dcount, 0.95)
			st.P99 = quantileFromCounts(hs.bounds, deltas[:len(hs.bounds)], dcount, 0.99)
		}
		view.Stats = append(view.Stats, st)
	}
	return view
}
