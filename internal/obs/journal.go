package obs

import (
	"sync"
	"time"
)

// Event is one adaptation-lifecycle record in the journal: what the serving
// stack decided (a period started, a model swapped in, the breaker opened,
// the drift watch fired) and why, correlated to request traces by ID.
type Event struct {
	// Seq is the global append order; it never resets, so gaps at the head
	// of a snapshot reveal how many events the bounded buffer evicted.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind names the lifecycle event (period_start, period_end, model_swap,
	// breaker, degrade_*, period_rollback, drift_alarm, drift_clear).
	Kind string `json:"kind"`
	// TraceID links the event to a request trace when one caused it
	// (0 = none).
	TraceID uint64 `json:"trace_id,omitempty"`
	// Fields carries the event payload (counts, durations, generations).
	Fields map[string]any `json:"fields,omitempty"`
}

// Journal is a bounded append-only event log: a ring buffer that keeps the
// newest capacity events and counts what it evicted. Appends are rare
// (lifecycle cadence, not request cadence), so a plain mutex is the right
// tool; readers get a consistent ordered copy.
type Journal struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // seq of the next appended event == total appended
	now  func() time.Time
}

// NewJournal returns a journal retaining the last capacity events
// (minimum 16).
func NewJournal(capacity int) *Journal {
	if capacity < 16 {
		capacity = 16
	}
	return &Journal{buf: make([]Event, 0, capacity), now: time.Now}
}

// SetClock replaces the timestamp source, for deterministic tests and
// simclock-driven harnesses.
func (j *Journal) SetClock(now func() time.Time) {
	j.mu.Lock()
	j.now = now
	j.mu.Unlock()
}

// Append records one event. fields may be nil; the map is retained, so
// callers must not mutate it afterwards.
func (j *Journal) Append(kind string, traceID uint64, fields map[string]any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ev := Event{Seq: j.next, Time: j.now(), Kind: kind, TraceID: traceID, Fields: fields}
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, ev)
	} else {
		j.buf[int(j.next)%cap(j.buf)] = ev
	}
	j.next++
}

// Snapshot returns the retained events oldest-first.
func (j *Journal) Snapshot() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.buf))
	if len(j.buf) < cap(j.buf) {
		out = append(out, j.buf...)
		return out
	}
	head := int(j.next) % cap(j.buf) // oldest retained
	out = append(out, j.buf[head:]...)
	out = append(out, j.buf[:head]...)
	return out
}

// Total returns how many events were ever appended; Total minus the
// snapshot length is the eviction count.
func (j *Journal) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}
