package obs

import "time"

// Span measures one timed section and records its duration, in seconds, into
// a histogram. The zero Span is inert: End on it returns 0 and records
// nothing, so callers can thread optional instrumentation without nil checks.
type Span struct {
	h     *Histogram
	start time.Time
	ended bool
}

// StartSpan begins timing against h (which may be nil).
func StartSpan(h *Histogram) Span {
	return Span{h: h, start: time.Now()}
}

// End stops the span, records the elapsed seconds and returns the duration.
// It is safe to call on a zero Span, and at most the first call records: a
// second End on the same span returns 0 and observes nothing, so a defer
// plus an explicit early End cannot double-count a histogram.
func (s *Span) End() time.Duration {
	if s.ended || s.start.IsZero() {
		return 0
	}
	s.ended = true
	d := time.Since(s.start)
	if s.h != nil {
		s.h.Observe(d.Seconds())
	}
	return d
}

// Stages times a sequence of named stages within one operation: each call to
// At closes the previous stage and opens the next, and Close closes the last
// one. Durations are reported through the sink callback in call order,
// making it easy to adapt to any observer interface.
type Stages struct {
	sink  func(stage string, d time.Duration)
	cur   string
	start time.Time
}

// NewStages begins a staged timing run. A nil sink makes every method a
// no-op.
func NewStages(sink func(stage string, d time.Duration)) *Stages {
	return &Stages{sink: sink}
}

// At closes the current stage (if any) and starts the named one.
func (t *Stages) At(stage string) {
	if t == nil || t.sink == nil {
		return
	}
	now := time.Now()
	if t.cur != "" {
		t.sink(t.cur, now.Sub(t.start))
	}
	t.cur = stage
	t.start = now
}

// Close ends the current stage.
func (t *Stages) Close() {
	if t == nil || t.sink == nil || t.cur == "" {
		return
	}
	t.sink(t.cur, time.Since(t.start))
	t.cur = ""
}
