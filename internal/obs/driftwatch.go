package obs

import (
	"math"
	"sync"
	"time"
)

// DriftWatch is the operational "when to adapt" signal: it consumes the
// feedback-time q-error stream, maintains the geometric mean q-error (GMQ)
// over a rolling time window, and raises an alarm when the window breaches
// a configured threshold. Warper's detector answers the same question once
// per adaptation period from annotated samples; the watch answers it
// continuously from live feedback, so an operator (or an automated period
// trigger) sees drift the moment accuracy degrades instead of at the next
// period boundary.
//
// The window is a ring of per-slot (count, Σlog q) aggregates — GMQ over
// any span of slots is exp(Σlog/Σcount), so rolling the window is O(slots)
// arithmetic, no sample retention. Rolling quantiles come from P² sketches
// restarted at each full window turnover (tumbling semantics: cheap,
// bounded, and within one window length of the rolling truth).
type DriftWatch struct {
	mu sync.Mutex

	window   time.Duration
	slot     time.Duration
	alarmGMQ float64 // 0 disables alarms
	minCount int

	slots    []driftSlot
	cur      int
	curStart time.Time
	started  bool

	p50, p95, p99 *P2
	sketchStart   time.Time

	alarm      bool
	alarmSince time.Time
}

// driftSlot aggregates the q-errors observed during one slot interval.
type driftSlot struct {
	count  int
	sumLog float64
}

// driftSlots is the ring granularity; window boundaries are accurate to
// window/driftSlots.
const driftSlots = 12

// defaultDriftMinCount is the observation floor below which the watch
// refuses to alarm: a two-sample window breaching the GMQ threshold is
// noise, not drift.
const defaultDriftMinCount = 20

// NewDriftWatch builds a watch over a rolling window, alarming when the
// windowed GMQ reaches alarmGMQ (0 = never alarm; the windowed GMQ is
// still maintained for display). Windows under one second clamp to it.
func NewDriftWatch(window time.Duration, alarmGMQ float64) *DriftWatch {
	if window < time.Second {
		window = time.Second
	}
	return &DriftWatch{
		window:   window,
		slot:     window / driftSlots,
		alarmGMQ: alarmGMQ,
		minCount: defaultDriftMinCount,
		slots:    make([]driftSlot, driftSlots),
		p50:      NewP2(0.5),
		p95:      NewP2(0.95),
		p99:      NewP2(0.99),
	}
}

// SetMinCount overrides the minimum windowed observation count required
// before the alarm may fire (default 20).
func (d *DriftWatch) SetMinCount(n int) {
	d.mu.Lock()
	d.minCount = n
	d.mu.Unlock()
}

// Threshold returns the configured alarm GMQ (0 = alarming disabled).
func (d *DriftWatch) Threshold() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alarmGMQ
}

// DriftState is one reading of the watch.
type DriftState struct {
	// WindowGMQ is the geometric mean q-error over the rolling window;
	// 1.0 (perfect) when the window is empty.
	WindowGMQ float64 `json:"window_gmq"`
	// Count is the number of feedback observations in the window.
	Count int `json:"count"`
	// P50/P95/P99 are tumbling-window q-error quantiles from the P² sketches.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// Alarm is the current alarm state; AlarmSince its raise time.
	Alarm      bool      `json:"alarm"`
	AlarmSince time.Time `json:"alarm_since"`
	// Threshold and Window echo the configuration for display.
	Threshold float64       `json:"threshold"`
	Window    time.Duration `json:"window"`
}

// DriftTransition reports an alarm edge produced by one Observe call.
type DriftTransition int

const (
	// DriftNone: no alarm state change.
	DriftNone DriftTransition = iota
	// DriftRaised: the windowed GMQ crossed the threshold upwards.
	DriftRaised
	// DriftCleared: the windowed GMQ fell back below the threshold.
	DriftCleared
)

// Observe folds one feedback q-error (≥ 1) into the window at the given
// time and returns the resulting state plus any alarm transition. The
// caller turns transitions into journal events and gauge updates.
func (d *DriftWatch) Observe(q float64, now time.Time) (DriftState, DriftTransition) {
	if q < 1 || math.IsNaN(q) || math.IsInf(q, 0) {
		q = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.roll(now)
	d.slots[d.cur].count++
	d.slots[d.cur].sumLog += math.Log(q)
	d.p50.Observe(q)
	d.p95.Observe(q)
	d.p99.Observe(q)
	return d.readLocked(now)
}

// State returns the current reading, rolling the window forward to now so
// stale slots age out even without new feedback. Aging alone can move the
// windowed GMQ across the threshold — most commonly the alarm clearing
// because feedback stopped entirely and the bad slots expired — so State
// reports alarm transitions exactly like Observe; callers should turn them
// into journal events and gauge updates the same way.
func (d *DriftWatch) State(now time.Time) (DriftState, DriftTransition) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.roll(now)
	return d.readLocked(now)
}

// readLocked computes the windowed state and applies any alarm edge it
// implies. Shared by Observe and State so the alarm tracks the window
// whether it changed by new feedback or by slots aging out.
func (d *DriftWatch) readLocked(now time.Time) (DriftState, DriftTransition) {
	st := d.stateLocked()
	tr := DriftNone
	if d.alarmGMQ > 0 {
		switch {
		case !d.alarm && st.Count >= d.minCount && st.WindowGMQ >= d.alarmGMQ:
			d.alarm = true
			d.alarmSince = now
			tr = DriftRaised
		case d.alarm && st.WindowGMQ < d.alarmGMQ:
			d.alarm = false
			d.alarmSince = time.Time{}
			tr = DriftCleared
		}
		st.Alarm = d.alarm
		st.AlarmSince = d.alarmSince
	}
	return st, tr
}

// roll advances the ring so the current slot covers now, zeroing every
// slot the advance skipped. A gap longer than the window clears the ring.
func (d *DriftWatch) roll(now time.Time) {
	if !d.started {
		d.started = true
		d.curStart = now
		return
	}
	for now.Sub(d.curStart) >= d.slot {
		d.cur = (d.cur + 1) % len(d.slots)
		d.slots[d.cur] = driftSlot{}
		d.curStart = d.curStart.Add(d.slot)
		if now.Sub(d.curStart) >= d.window {
			// Idle longer than the whole window: everything is stale.
			for i := range d.slots {
				d.slots[i] = driftSlot{}
			}
			d.curStart = now
			d.resetSketchesLocked(now)
			break
		}
	}
	// Tumble the quantile sketches once per full window.
	if d.sketchStart.IsZero() {
		d.sketchStart = now
	} else if now.Sub(d.sketchStart) >= d.window {
		d.resetSketchesLocked(now)
	}
}

func (d *DriftWatch) resetSketchesLocked(now time.Time) {
	d.p50.Reset(0.5)
	d.p95.Reset(0.95)
	d.p99.Reset(0.99)
	d.sketchStart = now
}

func (d *DriftWatch) stateLocked() DriftState {
	var count int
	var sumLog float64
	for _, s := range d.slots {
		count += s.count
		sumLog += s.sumLog
	}
	gmq := 1.0
	if count > 0 {
		gmq = math.Exp(sumLog / float64(count))
	}
	return DriftState{
		WindowGMQ:  gmq,
		Count:      count,
		P50:        d.p50.Quantile(),
		P95:        d.p95.Quantile(),
		P99:        d.p99.Quantile(),
		Alarm:      d.alarm,
		AlarmSince: d.alarmSince,
		Threshold:  d.alarmGMQ,
		Window:     d.window,
	}
}
