package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// --- P² sketch ---------------------------------------------------------------

func TestP2AgainstExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []float64{0.5, 0.95, 0.99} {
		sk := NewP2(p)
		n := 5000
		vals := make([]float64, n)
		for i := range vals {
			// Log-normal-ish q-error shaped data.
			vals[i] = math.Exp(rng.NormFloat64())
			sk.Observe(vals[i])
		}
		sort.Float64s(vals)
		exact := vals[int(p*float64(n))]
		got := sk.Quantile()
		// P² is an approximation; accept 15% relative error on this smooth
		// distribution (it is typically far tighter).
		if math.Abs(got-exact)/exact > 0.15 {
			t.Errorf("p=%v: P² = %v, exact = %v", p, got, exact)
		}
		if sk.Count() != n {
			t.Errorf("count = %d, want %d", sk.Count(), n)
		}
	}
}

func TestP2SmallSamplesExact(t *testing.T) {
	sk := NewP2(0.5)
	if sk.Quantile() != 0 {
		t.Error("empty sketch should report 0")
	}
	sk.Observe(3)
	sk.Observe(1)
	sk.Observe(2)
	// Median of {1,2,3} by nearest rank.
	if got := sk.Quantile(); got != 2 {
		t.Errorf("small-sample median = %v, want 2", got)
	}
	sk.Reset(0.5)
	if sk.Count() != 0 || sk.Quantile() != 0 {
		t.Error("reset did not empty the sketch")
	}
}

func TestP2MonotoneStream(t *testing.T) {
	sk := NewP2(0.95)
	for i := 1; i <= 1000; i++ {
		sk.Observe(float64(i))
	}
	got := sk.Quantile()
	if got < 850 || got > 1000 {
		t.Errorf("p95 of 1..1000 = %v, want ≈950", got)
	}
}

// --- Journal -----------------------------------------------------------------

func TestJournalAppendAndEviction(t *testing.T) {
	j := NewJournal(16)
	for i := 0; i < 40; i++ {
		j.Append("k", uint64(i), map[string]any{"i": i})
	}
	evs := j.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	if j.Total() != 40 {
		t.Errorf("total = %d, want 40", j.Total())
	}
	// Oldest-first, contiguous seq, newest = 39.
	for i, ev := range evs {
		if want := uint64(24 + i); ev.Seq != want {
			t.Errorf("event[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.Append("k", 0, nil)
				_ = j.Snapshot()
			}
		}()
	}
	wg.Wait()
	if j.Total() != 800 {
		t.Errorf("total = %d, want 800", j.Total())
	}
}

// --- Tracer ------------------------------------------------------------------

func TestTracerSamplingAndStages(t *testing.T) {
	tr := NewTracer(1, 8)
	x := tr.Acquire("estimate")
	if x == nil {
		t.Fatal("sample-every-1 tracer returned nil")
	}
	x.EnterStage("decode")
	x.EnterStage("infer")
	x.BatchSize = 4
	x.Generation = 2
	tr.Finish(x)

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d, want 1", len(snap))
	}
	got := snap[0]
	if got.BatchSize != 4 || got.Generation != 2 || got.Handler != "estimate" {
		t.Errorf("trace fields = %+v", got)
	}
	stages := got.Stages()
	if len(stages) != 2 || stages[0].Name != "decode" || stages[1].Name != "infer" {
		t.Fatalf("stages = %+v", stages)
	}
	// Stage sum must be ≈ the request total (no gaps between EnterStage calls).
	var sum time.Duration
	for _, s := range stages {
		sum += s.Dur
	}
	if got.Total() < sum {
		t.Errorf("total %v < stage sum %v", got.Total(), sum)
	}
}

func TestTracerDisabledReturnsNil(t *testing.T) {
	tr := NewTracer(0, 8)
	for i := 0; i < 100; i++ {
		if tr.Acquire("x") != nil {
			t.Fatal("disabled tracer sampled a request")
		}
	}
	// Nil traces are inert everywhere.
	var nilTrace *Trace
	nilTrace.EnterStage("a")
	tr.Finish(nil)
}

func TestTracerBoundedUnderLoad(t *testing.T) {
	tr := NewTracer(1, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				x := tr.Acquire("estimate")
				x.EnterStage("infer")
				tr.Finish(x)
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Snapshot()); n != 8 {
		t.Errorf("ring retained %d traces, want 8", n)
	}
	if tr.Sampled.Load() == 0 {
		t.Error("nothing sampled")
	}
	// Sequential acquire/finish must keep succeeding forever: with at most
	// one trace in flight, the free list can never starve, no matter how
	// many traces have already flowed through the ring.
	dropped := tr.Dropped.Load()
	for i := 0; i < 100; i++ {
		x := tr.Acquire("estimate")
		if x == nil {
			t.Fatalf("sequential acquire %d returned nil: free list starved", i)
		}
		tr.Finish(x)
	}
	if got := tr.Dropped.Load(); got != dropped {
		t.Errorf("sequential acquire/finish dropped %d traces", got-dropped)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer(1, 8)
	for i := 0; i < 3; i++ {
		x := tr.Acquire("estimate")
		x.EnterStage("checkout")
		x.EnterStage("infer")
		tr.Finish(x)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	// 3 traces × (1 request event + 2 stage events).
	if len(file.TraceEvents) != 9 {
		t.Fatalf("events = %d, want 9", len(file.TraceEvents))
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" || ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("bad event %+v", ev)
		}
	}
	// Empty input still renders a valid file.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("empty trace file is invalid JSON")
	}
}

// --- Exemplars ---------------------------------------------------------------

func TestExemplarsTopK(t *testing.T) {
	e := NewExemplars(3)
	for _, q := range []float64{5, 2, 9, 1, 7, 3} {
		e.OfferQError(Exemplar{QError: q})
	}
	got := e.WorstQ()
	if len(got) != 3 || got[0].QError != 9 || got[1].QError != 7 || got[2].QError != 5 {
		t.Errorf("worstQ = %+v", got)
	}
	for _, l := range []float64{0.1, 0.5, 0.2, 0.9} {
		e.OfferSlow(Exemplar{Latency: l})
	}
	slow := e.Slowest()
	if len(slow) != 3 || slow[0].Latency != 0.9 {
		t.Errorf("slowest = %+v", slow)
	}
}

func TestExemplarsConcurrent(t *testing.T) {
	e := NewExemplars(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				e.OfferQError(Exemplar{QError: 1 + rng.Float64()*100})
				e.OfferSlow(Exemplar{Latency: rng.Float64()})
			}
		}(int64(w))
	}
	wg.Wait()
	q := e.WorstQ()
	if len(q) != 8 {
		t.Fatalf("retained %d, want 8", len(q))
	}
	for i := 1; i < len(q); i++ {
		if q[i].QError > q[i-1].QError {
			t.Errorf("worstQ not sorted: %v after %v", q[i].QError, q[i-1].QError)
		}
	}
}

// --- DriftWatch --------------------------------------------------------------

func TestDriftWatchAlarmLifecycle(t *testing.T) {
	d := NewDriftWatch(time.Minute, 4)
	d.SetMinCount(5)
	t0 := time.Unix(1000, 0)

	// Healthy feedback: no alarm.
	var st DriftState
	var tr DriftTransition
	for i := 0; i < 10; i++ {
		st, tr = d.Observe(1.5, t0.Add(time.Duration(i)*time.Second))
		if tr != DriftNone {
			t.Fatalf("healthy stream transitioned: %v", tr)
		}
	}
	if st.Alarm || st.WindowGMQ > 2 {
		t.Fatalf("healthy state = %+v", st)
	}

	// Drift: large q-errors push the windowed GMQ over the threshold.
	raised := false
	for i := 0; i < 20; i++ {
		st, tr = d.Observe(100, t0.Add(time.Duration(10+i)*time.Second))
		if tr == DriftRaised {
			raised = true
		}
	}
	if !raised || !st.Alarm {
		t.Fatalf("alarm not raised: %+v", st)
	}
	if st.WindowGMQ < 4 {
		t.Errorf("window GMQ = %v, want ≥ 4", st.WindowGMQ)
	}

	// Recovery: good feedback after the window ages the bad slots out.
	cleared := false
	for i := 0; i < 200; i++ {
		st, tr = d.Observe(1.1, t0.Add(time.Duration(30+i)*time.Second))
		if tr == DriftCleared {
			cleared = true
		}
	}
	if !cleared || st.Alarm {
		t.Fatalf("alarm not cleared: %+v", st)
	}
}

func TestDriftWatchWindowAgesOut(t *testing.T) {
	d := NewDriftWatch(time.Minute, 0) // alarms off, window still maintained
	t0 := time.Unix(0, 0)
	for i := 0; i < 30; i++ {
		d.Observe(50, t0.Add(time.Duration(i)*time.Second))
	}
	if st, _ := d.State(t0.Add(30 * time.Second)); st.Count != 30 {
		t.Fatalf("count = %d, want 30", st.Count)
	}
	// Two windows later everything is stale.
	st, _ := d.State(t0.Add(3 * time.Minute))
	if st.Count != 0 || st.WindowGMQ != 1 {
		t.Errorf("stale state = %+v", st)
	}
}

func TestDriftWatchStateClearsStalledAlarm(t *testing.T) {
	d := NewDriftWatch(time.Minute, 4)
	d.SetMinCount(5)
	t0 := time.Unix(0, 0)
	raised := false
	for i := 0; i < 30; i++ {
		if _, tr := d.Observe(100, t0.Add(time.Duration(i)*time.Second)); tr == DriftRaised {
			raised = true
		}
	}
	if !raised {
		t.Fatal("alarm never raised")
	}
	// Feedback stops entirely. Two windows later the bad slots have aged
	// out; a read must clear the alarm rather than leave it raised against
	// a perfect windowed GMQ.
	st, tr := d.State(t0.Add(5 * time.Minute))
	if tr != DriftCleared {
		t.Fatalf("transition = %v, want DriftCleared", tr)
	}
	if st.Alarm || st.WindowGMQ != 1 {
		t.Errorf("post-clear state = %+v", st)
	}
	// Further reads are steady state: no duplicate clear transitions.
	if _, tr := d.State(t0.Add(6 * time.Minute)); tr != DriftNone {
		t.Errorf("second read transitioned again: %v", tr)
	}
}

func TestDriftWatchMinCountGate(t *testing.T) {
	d := NewDriftWatch(time.Minute, 2)
	t0 := time.Unix(0, 0)
	// Huge q-errors but below the default min count: no alarm.
	var tr DriftTransition
	for i := 0; i < defaultDriftMinCount-1; i++ {
		_, tr = d.Observe(1e6, t0.Add(time.Duration(i)*time.Millisecond))
		if tr != DriftNone {
			t.Fatal("alarm fired below the observation floor")
		}
	}
}

// --- Windows -----------------------------------------------------------------

func TestWindowsCounterRatesAndHistogramDeltas(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	h := r.Histogram("lat_seconds", HistogramOpts{Start: 0.001, Growth: 10, Count: 4})
	g := r.Gauge("pool")

	w := NewWindows(r, 12*time.Second) // 1s slots
	t0 := time.Unix(100, 0)

	c.Add(100)
	h.Observe(0.01)
	g.Set(5)
	w.Tick(t0)

	// Inside the window: 50 more requests, two slower observations.
	c.Add(50)
	h.Observe(0.5)
	h.Observe(0.5)
	g.Set(7)
	view := w.View(t0.Add(10 * time.Second))

	stats := map[string]WindowStat{}
	for _, st := range view.Stats {
		stats[st.Name] = st
	}
	cs := stats["reqs_total"]
	if cs.Delta != 50 {
		t.Errorf("counter delta = %d, want 50", cs.Delta)
	}
	if math.Abs(cs.Rate-5) > 0.01 {
		t.Errorf("rate = %v, want 5/s", cs.Rate)
	}
	if cs.Lifetime != 150 {
		t.Errorf("lifetime = %v, want 150", cs.Lifetime)
	}
	hs := stats["lat_seconds"]
	if hs.Count != 2 {
		t.Errorf("windowed histogram count = %d, want 2", hs.Count)
	}
	if math.Abs(hs.Mean-0.5) > 1e-9 {
		t.Errorf("windowed mean = %v, want 0.5", hs.Mean)
	}
	// The lifetime view still sees all three observations.
	if hs.Lifetime != 3 {
		t.Errorf("histogram lifetime = %v, want 3", hs.Lifetime)
	}
	// Windowed p50 must sit in the 0.5 bucket, not be dragged down by the
	// pre-window 0.01 observation.
	if hs.P50 < 0.1 {
		t.Errorf("windowed p50 = %v, polluted by pre-window data", hs.P50)
	}
	gs := stats["pool"]
	if gs.Value != 7 {
		t.Errorf("gauge value = %v, want 7", gs.Value)
	}
	if gs.Change != 2 {
		t.Errorf("gauge change = %v, want 2 (5 → 7 inside the window)", gs.Change)
	}
}

func TestWindowsTickCadenceAndRing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	w := NewWindows(r, 12*time.Second)
	t0 := time.Unix(0, 0)
	// Ticks faster than the slot duration collapse into one.
	w.Tick(t0)
	w.Tick(t0.Add(100 * time.Millisecond))
	w.mu.Lock()
	n := w.n
	w.mu.Unlock()
	if n != 1 {
		t.Fatalf("sub-slot tick was recorded: n = %d", n)
	}
	// Fill far past the ring: the base must slide forward, bounding the span.
	for i := 1; i <= 100; i++ {
		c.Inc()
		w.Tick(t0.Add(time.Duration(i) * time.Second))
	}
	view := w.View(t0.Add(101 * time.Second))
	if view.Seconds > 13 {
		t.Errorf("window spans %.1fs, want ≤ 13s (ring must bound it)", view.Seconds)
	}
	if view.Stats[0].Delta >= 100 {
		t.Errorf("delta = %d covers the whole lifetime; window not rolling", view.Stats[0].Delta)
	}
}

func TestWindowsConcurrent(t *testing.T) {
	r := NewRegistry()
	w := NewWindows(r, 2*time.Second)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Counter("c_total").Inc()
					r.Histogram("h_seconds", LatencyOpts()).Observe(0.001)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		w.Tick(time.Now())
		_ = w.View(time.Now())
	}
	close(stop)
	wg.Wait()
}
