package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"warper/internal/dataset"
)

func testSchema() *Schema {
	return &Schema{
		Table: "t",
		Names: []string{"a", "b", "c"},
		Types: []dataset.ColType{dataset.Real, dataset.Real, dataset.Categorical},
		Mins:  []float64{0, -10, 0},
		Maxs:  []float64{100, 10, 4},
	}
}

func TestNewFullRangeMatchesEverything(t *testing.T) {
	s := testSchema()
	p := NewFullRange(s)
	if !p.Matches([]float64{0, -10, 0}) || !p.Matches([]float64{100, 10, 4}) || !p.Matches([]float64{50, 0, 2}) {
		t.Error("full range must match all in-range rows")
	}
	if p.Volume(s) != 1 {
		t.Errorf("Volume = %v, want 1", p.Volume(s))
	}
}

func TestMatchesBounds(t *testing.T) {
	s := testSchema()
	p := NewFullRange(s)
	p.SetRange(0, 10, 20)
	if p.Matches([]float64{9.99, 0, 2}) || p.Matches([]float64{20.01, 0, 2}) {
		t.Error("out-of-range row matched")
	}
	if !p.Matches([]float64{10, 0, 2}) || !p.Matches([]float64{20, 0, 2}) {
		t.Error("boundary rows must match (inclusive ranges)")
	}
}

func TestSetEquals(t *testing.T) {
	s := testSchema()
	p := NewFullRange(s)
	p.SetEquals(2, 3)
	if !p.Matches([]float64{50, 0, 3}) || p.Matches([]float64{50, 0, 2}) {
		t.Error("equality check wrong")
	}
}

func TestNormalizeSwapsAndClamps(t *testing.T) {
	s := testSchema()
	p := NewFullRange(s)
	p.SetRange(0, 80, 20)   // inverted
	p.SetRange(1, -50, 500) // out of range
	p = p.Normalize(s)
	if p.Lows[0] != 20 || p.Highs[0] != 80 {
		t.Errorf("swap failed: [%v,%v]", p.Lows[0], p.Highs[0])
	}
	if p.Lows[1] != -10 || p.Highs[1] != 10 {
		t.Errorf("clamp failed: [%v,%v]", p.Lows[1], p.Highs[1])
	}
}

func TestNormalizeDisjointRange(t *testing.T) {
	s := testSchema()
	p := NewFullRange(s)
	p.SetRange(0, 200, 300) // entirely above column max
	p = p.Normalize(s)
	if p.Lows[0] != p.Highs[0] {
		t.Errorf("disjoint range should become a point: [%v,%v]", p.Lows[0], p.Highs[0])
	}
	if p.Lows[0] < 0 || p.Lows[0] > 100 {
		t.Errorf("pinned point out of range: %v", p.Lows[0])
	}
}

func TestFeaturizeLayout(t *testing.T) {
	s := testSchema()
	p := NewFullRange(s)
	p.SetRange(0, 25, 75)
	f := p.Featurize(s)
	if len(f) != 6 {
		t.Fatalf("feature len = %d", len(f))
	}
	if math.Abs(f[0]-0.25) > 1e-12 || math.Abs(f[3]-0.75) > 1e-12 {
		t.Errorf("col 0 features = %v, %v", f[0], f[3])
	}
	// Full-range columns featurize to [0,1].
	if f[1] != 0 || f[4] != 1 {
		t.Errorf("col 1 features = %v, %v", f[1], f[4])
	}
}

// FeaturizeInto is the zero-allocation path behind Featurize; the two must
// agree bit for bit on arbitrary predicates.
func TestFeaturizeIntoMatchesFeaturize(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(8))
	buf := make([]float64, 2*len(s.Names))
	for i := 0; i < 200; i++ {
		p := NewFullRange(s)
		for c := range s.Names {
			span := s.Maxs[c] - s.Mins[c]
			p.SetRange(c, s.Mins[c]+rng.Float64()*span, s.Mins[c]+rng.Float64()*span)
		}
		p = p.Normalize(s)
		want := p.Featurize(s)
		p.FeaturizeInto(s, buf)
		for j := range want {
			if buf[j] != want[j] {
				t.Fatalf("pred %d feature %d: FeaturizeInto = %v, Featurize = %v", i, j, buf[j], want[j])
			}
		}
	}
}

func TestFeaturizeIntoBadBufferPanics(t *testing.T) {
	s := testSchema()
	p := NewFullRange(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.FeaturizeInto(s, make([]float64, 3)) // needs 6
}

func TestFeaturizeDimMismatchPanics(t *testing.T) {
	s := testSchema()
	p := Predicate{Lows: []float64{0}, Highs: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Featurize(s)
}

func TestUnfeaturizeRoundTrip(t *testing.T) {
	s := testSchema()
	p := NewFullRange(s)
	p.SetRange(0, 10, 60)
	p.SetRange(1, -5, 5)
	p.SetEquals(2, 2)
	q := Unfeaturize(p.Featurize(s), s)
	for i := range p.Lows {
		if math.Abs(q.Lows[i]-p.Lows[i]) > 1e-9 || math.Abs(q.Highs[i]-p.Highs[i]) > 1e-9 {
			t.Errorf("col %d: got [%v,%v], want [%v,%v]", i, q.Lows[i], q.Highs[i], p.Lows[i], p.Highs[i])
		}
	}
}

func TestUnfeaturizeRoundsCategoricals(t *testing.T) {
	s := testSchema()
	f := make([]float64, 6)
	f[2] = 0.6 // low of categorical col with range [0,4] → 2.4 → rounds to 2
	f[5] = 0.6
	p := Unfeaturize(f, s)
	if p.Lows[2] != 2 || p.Highs[2] != 2 {
		t.Errorf("categorical bounds = [%v,%v], want [2,2]", p.Lows[2], p.Highs[2])
	}
}

// Property: Unfeaturize always produces a predicate that is already
// normalized (low ≤ high, inside schema bounds), for arbitrary feature input.
func TestUnfeaturizeAlwaysNormalized(t *testing.T) {
	s := testSchema()
	f := func(raw [6]float64) bool {
		feats := raw[:]
		for i, v := range feats {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				feats[i] = 0.5
			}
		}
		p := Unfeaturize(feats, s)
		for i := range p.Lows {
			if p.Lows[i] > p.Highs[i] {
				return false
			}
			if p.Lows[i] < s.Mins[i]-1e-9 || p.Highs[i] > s.Maxs[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: normalization is idempotent.
func TestNormalizeIdempotent(t *testing.T) {
	s := testSchema()
	f := func(raw [6]float64) bool {
		p := Predicate{Lows: make([]float64, 3), Highs: make([]float64, 3)}
		for i := 0; i < 3; i++ {
			lo, hi := raw[i], raw[3+i]
			if math.IsNaN(lo) || math.IsInf(lo, 0) {
				lo = 0
			}
			if math.IsNaN(hi) || math.IsInf(hi, 0) {
				hi = 1
			}
			p.Lows[i], p.Highs[i] = lo, hi
		}
		once := p.Clone().Normalize(s)
		twice := once.Clone().Normalize(s)
		for i := 0; i < 3; i++ {
			if once.Lows[i] != twice.Lows[i] || once.Highs[i] != twice.Highs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestVolumeMonotonicInWidth(t *testing.T) {
	s := testSchema()
	narrow := NewFullRange(s)
	narrow.SetRange(0, 40, 60)
	wide := NewFullRange(s)
	wide.SetRange(0, 20, 80)
	if narrow.Volume(s) >= wide.Volume(s) {
		t.Error("narrower box should have smaller volume")
	}
}

func TestSchemaOf(t *testing.T) {
	tbl := dataset.NewTable("x",
		&dataset.Column{Name: "u", Type: dataset.Real, Vals: []float64{2, 8, 5}},
		&dataset.Column{Name: "v", Type: dataset.Categorical, Vals: []float64{0, 1, 1}},
	)
	s := SchemaOf(tbl)
	if s.Table != "x" || s.NumCols() != 2 || s.FeatureDim() != 4 {
		t.Fatalf("schema = %+v", s)
	}
	if s.Mins[0] != 2 || s.Maxs[0] != 8 {
		t.Errorf("ranges = %v %v", s.Mins, s.Maxs)
	}
	if s.Types[1] != dataset.Categorical {
		t.Error("type not preserved")
	}
}

func TestJoinQueryBuilders(t *testing.T) {
	j := NewJoinQuery("l", "o").AddJoin("l", "orderkey", "o", "orderkey")
	s := testSchema()
	j.SetPred("l", NewFullRange(s))
	if len(j.Tables) != 2 || len(j.Joins) != 1 || len(j.Preds) != 1 {
		t.Fatalf("join query = %+v", j)
	}
	c := j.Clone()
	c.Preds["l"].Lows[0] = 99
	if j.Preds["l"].Lows[0] == 99 {
		t.Error("Clone aliases predicates")
	}
}
