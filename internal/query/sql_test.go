package query

import (
	"strings"
	"testing"
)

func TestWhereClauseForms(t *testing.T) {
	s := testSchema() // cols a [0,100], b [-10,10], c [0,4]
	p := NewFullRange(s)
	if got := p.WhereClause(s); got != "TRUE" {
		t.Errorf("full range = %q", got)
	}
	p.SetRange(0, 10, 20)
	if got := p.WhereClause(s); got != "a BETWEEN 10 AND 20" {
		t.Errorf("two-sided = %q", got)
	}
	p.SetRange(0, 0, 20) // at column min → one-sided
	if got := p.WhereClause(s); got != "a <= 20" {
		t.Errorf("one-sided low = %q", got)
	}
	p.SetRange(0, 10, 100) // at column max
	if got := p.WhereClause(s); got != "a >= 10" {
		t.Errorf("one-sided high = %q", got)
	}
	p.SetEquals(0, 42)
	if got := p.WhereClause(s); got != "a = 42" {
		t.Errorf("equality = %q", got)
	}
	p.SetRange(1, -5, 5)
	if got := p.WhereClause(s); got != "a = 42 AND b BETWEEN -5 AND 5" {
		t.Errorf("conjunction = %q", got)
	}
}

func TestCountSQL(t *testing.T) {
	s := testSchema()
	p := NewFullRange(s)
	p.SetEquals(2, 3)
	want := "SELECT count(*) FROM t WHERE c = 3"
	if got := p.CountSQL(s); got != want {
		t.Errorf("CountSQL = %q, want %q", got, want)
	}
}

func TestJoinSQL(t *testing.T) {
	s := testSchema()
	s2 := testSchema()
	s2.Table = "u"
	j := NewJoinQuery("t", "u").AddJoin("t", "a", "u", "a")
	pt := NewFullRange(s)
	pt.SetRange(0, 10, 20)
	j.SetPred("t", pt)
	got := j.SQL(map[string]*Schema{"t": s, "u": s2})
	if !strings.Contains(got, "FROM t, u") ||
		!strings.Contains(got, "t.a = u.a") ||
		!strings.Contains(got, "t.a BETWEEN 10 AND 20") {
		t.Errorf("join SQL = %q", got)
	}
}

func TestJoinSQLMissingSchema(t *testing.T) {
	j := NewJoinQuery("ghost")
	got := j.SQL(map[string]*Schema{})
	if !strings.Contains(got, "missing schema") {
		t.Errorf("SQL = %q", got)
	}
}
