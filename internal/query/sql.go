package query

import (
	"fmt"
	"strings"
)

// SQL rendering turns predicates back into the WHERE clauses they model —
// useful for debugging, for logging what the annotator is counting, and for
// replaying workloads against a real DBMS.

// WhereClause renders the predicate as a SQL boolean expression against the
// schema's column names. Unconstrained columns (spanning the full range) are
// omitted; equality collapses to `col = v`; one-sided ranges render a single
// comparison. A predicate with no constrained columns renders as "TRUE".
func (p Predicate) WhereClause(s *Schema) string {
	var parts []string
	for i := range p.Lows {
		lo, hi := p.Lows[i], p.Highs[i]
		atMin := lo <= s.Mins[i]
		atMax := hi >= s.Maxs[i]
		name := s.Names[i]
		switch {
		case atMin && atMax:
			// Unconstrained.
		case lo == hi:
			parts = append(parts, fmt.Sprintf("%s = %s", name, fnum(lo)))
		case atMin:
			parts = append(parts, fmt.Sprintf("%s <= %s", name, fnum(hi)))
		case atMax:
			parts = append(parts, fmt.Sprintf("%s >= %s", name, fnum(lo)))
		default:
			parts = append(parts, fmt.Sprintf("%s BETWEEN %s AND %s", name, fnum(lo), fnum(hi)))
		}
	}
	if len(parts) == 0 {
		return "TRUE"
	}
	return strings.Join(parts, " AND ")
}

// CountSQL renders the full count(*) query the predicate models (§2).
func (p Predicate) CountSQL(s *Schema) string {
	return fmt.Sprintf("SELECT count(*) FROM %s WHERE %s", s.Table, p.WhereClause(s))
}

// SQL renders a join query as a count(*) statement over the joined tables.
// schemas must cover every table in the query.
func (j *JoinQuery) SQL(schemas map[string]*Schema) string {
	var conds []string
	for _, jc := range j.Joins {
		conds = append(conds, fmt.Sprintf("%s.%s = %s.%s",
			jc.LeftTable, jc.LeftCol, jc.RightTable, jc.RightCol))
	}
	for _, t := range j.Tables {
		sch, ok := schemas[t]
		if !ok {
			conds = append(conds, fmt.Sprintf("/* missing schema for %s */", t))
			continue
		}
		if p, ok := j.Preds[t]; ok {
			if w := p.WhereClause(sch); w != "TRUE" {
				conds = append(conds, prefixCols(w, t))
			}
		}
	}
	where := "TRUE"
	if len(conds) > 0 {
		where = strings.Join(conds, " AND ")
	}
	return fmt.Sprintf("SELECT count(*) FROM %s WHERE %s", strings.Join(j.Tables, ", "), where)
}

// prefixCols qualifies the column references of a single-table WHERE clause
// with its table name. The clause grammar is the restricted one WhereClause
// emits, so a token-level rewrite is safe.
func prefixCols(clause, table string) string {
	tokens := strings.Split(clause, " ")
	expectCol := true
	inBetween := false
	for i, tok := range tokens {
		switch tok {
		case "BETWEEN":
			inBetween = true
			continue
		case "AND":
			if inBetween {
				inBetween = false // BETWEEN x AND y — not a conjunction
			} else {
				expectCol = true
			}
			continue
		case "=", "<=", ">=", "TRUE":
			continue
		}
		if expectCol {
			tokens[i] = table + "." + tok
			expectCol = false
		}
	}
	return strings.Join(tokens, " ")
}

// fnum formats a float without trailing zeros.
func fnum(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
