package query

// Disjunction is an OR of conjunctive range predicates:
// ⋁_j ⋀_i l_ij ≤ Col_i ≤ u_ij. §2 of the paper notes that the CE model
// class generalizes to disjunctions "using multiple calls"; the ce package
// provides the combination rule and the annotator counts them exactly.
type Disjunction []Predicate

// Matches reports whether the row satisfies at least one disjunct.
func (d Disjunction) Matches(row []float64) bool {
	for _, p := range d {
		if p.Matches(row) {
			return true
		}
	}
	return false
}

// Normalize normalizes every disjunct in place and returns d.
func (d Disjunction) Normalize(s *Schema) Disjunction {
	for i := range d {
		d[i] = d[i].Normalize(s)
	}
	return d
}

// Clone deep-copies the disjunction.
func (d Disjunction) Clone() Disjunction {
	out := make(Disjunction, len(d))
	for i, p := range d {
		out[i] = p.Clone()
	}
	return out
}
