package query

// JoinCond is one key–foreign-key equi-join condition between two tables.
type JoinCond struct {
	LeftTable  string
	LeftCol    string
	RightTable string
	RightCol   string
}

// JoinQuery is a select-project-join query over a set of tables with one
// conjunctive range predicate per table (possibly full-range), the class of
// queries the MSCN model supports (§2).
type JoinQuery struct {
	Tables []string
	Joins  []JoinCond
	Preds  map[string]Predicate
}

// NewJoinQuery builds a join query over the named tables.
func NewJoinQuery(tables ...string) *JoinQuery {
	return &JoinQuery{Tables: tables, Preds: make(map[string]Predicate)}
}

// AddJoin appends a join condition.
func (j *JoinQuery) AddJoin(lt, lc, rt, rc string) *JoinQuery {
	j.Joins = append(j.Joins, JoinCond{LeftTable: lt, LeftCol: lc, RightTable: rt, RightCol: rc})
	return j
}

// SetPred assigns the per-table predicate.
func (j *JoinQuery) SetPred(table string, p Predicate) *JoinQuery {
	j.Preds[table] = p
	return j
}

// Clone deep-copies the join query.
func (j *JoinQuery) Clone() *JoinQuery {
	c := &JoinQuery{
		Tables: append([]string(nil), j.Tables...),
		Joins:  append([]JoinCond(nil), j.Joins...),
		Preds:  make(map[string]Predicate, len(j.Preds)),
	}
	for t, p := range j.Preds {
		c.Preds[t] = p.Clone()
	}
	return c
}

// LabeledJoin pairs a join query with its ground-truth cardinality.
type LabeledJoin struct {
	Query *JoinQuery
	Card  float64
}
