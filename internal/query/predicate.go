// Package query defines the predicate classes the paper's CE models support
// (§2): conjunctions of per-column range checks
//
//	SELECT count(*) FROM T WHERE ⋀_i l_i ≤ Col_i ≤ u_i
//
// plus key–foreign-key join queries for the MSCN join experiments. Equality
// predicates set l_i = u_i; one-sided ranges pin the open end to the column
// min or max; untouched columns span the full column range.
package query

import (
	"fmt"
	"math"

	"warper/internal/dataset"
)

// Schema captures the per-column metadata needed to normalize and featurize
// predicates against a table: value ranges and column types.
type Schema struct {
	Table string
	Names []string
	Types []dataset.ColType
	Mins  []float64
	Maxs  []float64
}

// SchemaOf snapshots a table's schema, including current column ranges.
func SchemaOf(t *dataset.Table) *Schema {
	mins, maxs := t.Ranges()
	s := &Schema{Table: t.Name, Mins: mins, Maxs: maxs}
	for _, c := range t.Cols {
		s.Names = append(s.Names, c.Name)
		s.Types = append(s.Types, c.Type)
	}
	return s
}

// NumCols returns the number of columns in the schema.
func (s *Schema) NumCols() int { return len(s.Names) }

// FeatureDim returns the featurization width, 2·d.
func (s *Schema) FeatureDim() int { return 2 * len(s.Names) }

// Predicate is a conjunctive range predicate over every column of one table,
// in raw column units. len(Lows) == len(Highs) == d.
type Predicate struct {
	Lows  []float64
	Highs []float64
}

// NewFullRange returns the predicate that matches every row: each column
// spans [min, max].
func NewFullRange(s *Schema) Predicate {
	p := Predicate{Lows: make([]float64, s.NumCols()), Highs: make([]float64, s.NumCols())}
	copy(p.Lows, s.Mins)
	copy(p.Highs, s.Maxs)
	return p
}

// Clone deep-copies the predicate.
func (p Predicate) Clone() Predicate {
	q := Predicate{Lows: make([]float64, len(p.Lows)), Highs: make([]float64, len(p.Highs))}
	copy(q.Lows, p.Lows)
	copy(q.Highs, p.Highs)
	return q
}

// Dim returns the number of columns constrained by the predicate.
func (p Predicate) Dim() int { return len(p.Lows) }

// SetRange constrains column i to [lo, hi].
func (p Predicate) SetRange(i int, lo, hi float64) {
	p.Lows[i] = lo
	p.Highs[i] = hi
}

// SetEquals constrains column i to exactly v (l_i = u_i per §2).
func (p Predicate) SetEquals(i int, v float64) { p.SetRange(i, v, v) }

// Matches reports whether the row satisfies every range check.
func (p Predicate) Matches(row []float64) bool {
	for i, v := range row {
		if v < p.Lows[i] || v > p.Highs[i] {
			return false
		}
	}
	return true
}

// Normalize clamps the predicate into the schema's column ranges and swaps
// any inverted bounds so that low ≤ high holds everywhere. It returns the
// predicate for chaining.
func (p Predicate) Normalize(s *Schema) Predicate {
	for i := range p.Lows {
		lo, hi := p.Lows[i], p.Highs[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		lo = math.Max(lo, s.Mins[i])
		hi = math.Min(hi, s.Maxs[i])
		if lo > hi { // disjoint from the column range; pin to an empty point
			lo = mathClamp(lo, s.Mins[i], s.Maxs[i])
			hi = lo
		}
		p.Lows[i], p.Highs[i] = lo, hi
	}
	return p
}

// Featurize converts the predicate to the LM layout
// {low₁..low_d, high₁..high_d} with each bound scaled into [0,1] by the
// column range (§3.2, §4.1). Constant columns map to 0.
func (p Predicate) Featurize(s *Schema) []float64 {
	f := make([]float64, 2*p.Dim())
	p.FeaturizeInto(s, f)
	return f
}

// FeaturizeInto writes the Featurize layout into f, which must have length
// 2·d. It performs no allocation, so batched serving paths can reuse one
// feature buffer across requests.
func (p Predicate) FeaturizeInto(s *Schema, f []float64) {
	d := p.Dim()
	if d != s.NumCols() {
		panic(fmt.Sprintf("query: predicate dim %d vs schema %d", d, s.NumCols()))
	}
	if len(f) != 2*d {
		panic(fmt.Sprintf("query: feature buffer len %d vs 2·%d", len(f), d))
	}
	for i := 0; i < d; i++ {
		span := s.Maxs[i] - s.Mins[i]
		if span <= 0 {
			f[i], f[d+i] = 0, 0
			continue
		}
		f[i] = mathClamp((p.Lows[i]-s.Mins[i])/span, 0, 1)
		f[d+i] = mathClamp((p.Highs[i]-s.Mins[i])/span, 0, 1)
	}
}

// Unfeaturize is the inverse of Featurize: it maps a feature vector (any real
// values; they are clamped into [0,1]) back to a normalized predicate. The
// generator 𝔾 emits feature-space vectors which this converts into
// well-formed predicates.
func Unfeaturize(f []float64, s *Schema) Predicate {
	d := s.NumCols()
	if len(f) != 2*d {
		panic(fmt.Sprintf("query: feature len %d vs 2·%d", len(f), d))
	}
	p := Predicate{Lows: make([]float64, d), Highs: make([]float64, d)}
	for i := 0; i < d; i++ {
		span := s.Maxs[i] - s.Mins[i]
		lo := s.Mins[i] + mathClamp(f[i], 0, 1)*span
		hi := s.Mins[i] + mathClamp(f[d+i], 0, 1)*span
		if s.Types[i] == dataset.Categorical {
			lo = math.Round(lo)
			hi = math.Round(hi)
		}
		p.Lows[i], p.Highs[i] = lo, hi
	}
	return p.Normalize(s)
}

// Volume returns the fraction of the normalized predicate box relative to
// the full schema box — a cheap proxy for selectivity under uniformity.
func (p Predicate) Volume(s *Schema) float64 {
	v := 1.0
	for i := range p.Lows {
		span := s.Maxs[i] - s.Mins[i]
		if span <= 0 {
			continue
		}
		v *= mathClamp((p.Highs[i]-p.Lows[i])/span, 0, 1)
	}
	return v
}

func mathClamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Labeled pairs a predicate with its ground-truth cardinality; the basic
// training example for workload-driven CE models.
type Labeled struct {
	Pred Predicate
	Card float64
}
