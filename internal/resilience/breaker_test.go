package resilience

import (
	"errors"
	"sync"
	"testing"
)

var errBoom = errors.New("boom")

// TestBreakerLifecycle walks the full closed → open → half-open → closed /
// open cycle and pins the deterministic count-based transitions.
func TestBreakerLifecycle(t *testing.T) {
	var transitions []State
	b := NewBreaker(BreakerConfig{OpenAfter: 3, ProbeEvery: 4}, func(s State) {
		transitions = append(transitions, s)
	})

	if got := b.State(); got != Closed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	// Interleaved success resets the failure streak.
	for _, err := range []error{errBoom, errBoom, nil, errBoom, errBoom} {
		if !b.Allow() {
			t.Fatal("closed breaker rejected a call")
		}
		b.Record(err)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after interleaved failures = %v, want closed", got)
	}
	// Third consecutive failure trips it.
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
	b.Record(errBoom)
	if got := b.State(); got != Open {
		t.Fatalf("state after %d consecutive failures = %v, want open", 3, got)
	}
	// Rejected calls 1..3 fail fast; the 4th becomes the half-open probe.
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatalf("open breaker allowed rejected call %d", i+1)
		}
	}
	if !b.Allow() {
		t.Fatal("ProbeEvery-th call was not promoted to a probe")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	// Concurrent calls during the probe are rejected.
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second call")
	}
	// Failed probe re-opens; the reject counter restarts.
	b.Record(errBoom)
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatalf("re-opened breaker allowed rejected call %d", i+1)
		}
	}
	if !b.Allow() {
		t.Fatal("second probe not granted")
	}
	// Successful probe closes.
	b.Record(nil)
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}

	want := []State{Open, HalfOpen, Open, HalfOpen, Closed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Disabled: true, OpenAfter: 1}, nil)
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatal("disabled breaker rejected a call")
		}
		b.Record(errBoom)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("disabled breaker state = %v, want closed", got)
	}
}

// TestBreakerConcurrentHammer drives the state machine from many goroutines
// under -race: the invariant checked is simply that the breaker never
// deadlocks or corrupts state (final state must be a valid enum member).
func TestBreakerConcurrentHammer(t *testing.T) {
	b := NewBreaker(BreakerConfig{OpenAfter: 3, ProbeEvery: 2}, func(State) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.Record(errBoom)
					} else {
						b.Record(nil)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s := b.State(); s != Closed && s != Open && s != HalfOpen {
		t.Fatalf("breaker in invalid state %d", int(s))
	}
}
