package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"warper/internal/annotator"
	"warper/internal/query"
)

// FaultPlan describes a deterministic fault schedule for a Faulty source.
// All probabilities are per call (Count or AnnotateAll — a batch is one
// "RPC"); draws come from one seeded RNG in call order, so a given plan
// replays identically across runs with the same call sequence.
type FaultPlan struct {
	// ErrRate is the probability a call fails immediately with ErrInjected.
	ErrRate float64
	// HangRate is the probability a call blocks until its context is
	// cancelled (modeling a stuck DBMS connection). It is evaluated after
	// ErrRate on the same draw: u < ErrRate → error, u < ErrRate+HangRate
	// → hang.
	HangRate float64
	// Latency adds a uniform delay in [Latency/2, Latency) to calls that
	// neither fail nor hang, modeling a slow source. Zero adds none.
	Latency time.Duration
	// Seed seeds the fault RNG.
	Seed int64
}

// Faulty wraps an annotator.Source with deterministic fault injection. It is
// the test double for the resilience stack: chaos tests, the golden
// partial-period test, and warperd's -faults flag all build one of these.
// Safe for concurrent use.
type Faulty struct {
	src  annotator.Source
	plan FaultPlan

	mu    sync.Mutex
	rng   *rand.Rand
	calls int
	// Fault counters, readable via Stats.
	errs  int
	hangs int
}

var _ annotator.Source = (*Faulty)(nil)

// NewFaulty wraps src with the given fault plan.
func NewFaulty(src annotator.Source, plan FaultPlan) *Faulty {
	return &Faulty{src: src, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Stats returns (calls, injected errors, injected hangs) so far.
func (f *Faulty) Stats() (calls, errs, hangs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.errs, f.hangs
}

type faultKind int

const (
	faultNone faultKind = iota
	faultErr
	faultHang
)

// decide consumes exactly two RNG draws per call (fault selector + latency
// jitter) regardless of outcome, so the fault sequence of later calls does
// not depend on earlier outcomes' branches.
func (f *Faulty) decide() (faultKind, time.Duration, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	n := f.calls
	u := f.rng.Float64()
	lat := time.Duration(0)
	if f.plan.Latency > 0 {
		lat = time.Duration((0.5 + 0.5*f.rng.Float64()) * float64(f.plan.Latency))
	} else {
		_ = f.rng.Float64()
	}
	switch {
	case u < f.plan.ErrRate:
		f.errs++
		return faultErr, 0, n
	case u < f.plan.ErrRate+f.plan.HangRate:
		f.hangs++
		return faultHang, 0, n
	default:
		return faultNone, lat, n
	}
}

// inject applies the decided fault. It returns a non-nil error for injected
// faults; faultNone falls through (after any latency) so the caller invokes
// the wrapped source.
func (f *Faulty) inject(ctx context.Context) error {
	kind, lat, n := f.decide()
	switch kind {
	case faultErr:
		return fmt.Errorf("call %d: %w", n, ErrInjected)
	case faultHang:
		// Model a stuck connection: block until the caller gives up.
		<-ctx.Done()
		return ctx.Err()
	default:
		if lat > 0 {
			t := time.NewTimer(lat)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
}

// Count implements annotator.Source.
func (f *Faulty) Count(ctx context.Context, p query.Predicate) (float64, error) {
	if err := f.inject(ctx); err != nil {
		return 0, err
	}
	return f.src.Count(ctx, p)
}

// AnnotateAll implements annotator.Source; the batch is one fault draw.
func (f *Faulty) AnnotateAll(ctx context.Context, ps []query.Predicate) ([]query.Labeled, error) {
	if err := f.inject(ctx); err != nil {
		return nil, err
	}
	return f.src.AnnotateAll(ctx, ps)
}
