// Package resilience hardens the annotation path of the Warper pipeline.
//
// Annotation (the 𝔸 module, §4.3) is the only adaptation stage that talks to
// an external system in production — the DBMS executing ground-truth counts.
// That dependency can time out, fail transiently, or hang. This package wraps
// any annotator.Source with per-attempt timeouts, capped exponential backoff
// with seeded jitter, and a counting circuit breaker, so a flaky ground-truth
// source degrades a period instead of stalling or killing the server.
//
// Everything here is deterministic by construction: jitter comes from an
// injected seeded *rand.Rand (never the global source), and the breaker is
// count-based (consecutive failures / rejected-call counters) rather than
// wall-clock based, so two runs with the same seed and fault plan transition
// identically. The package is covered by the nondeterminism and panicfree
// lint rules alongside the algorithm packages.
package resilience

import (
	"errors"
	"time"
)

// ErrOpen is returned (without touching the underlying source) when the
// circuit breaker rejects a call.
var ErrOpen = errors.New("resilience: circuit breaker open")

// ErrInjected marks a fault produced by the Faulty test harness, so tests
// can tell injected failures from real ones.
var ErrInjected = errors.New("resilience: injected fault")

// State is a circuit-breaker state.
type State int

const (
	// Closed: calls flow through; consecutive failures are counted.
	Closed State = iota
	// Open: calls are rejected with ErrOpen; every cfg.ProbeEvery-th
	// rejected call is promoted to a half-open probe instead.
	Open
	// HalfOpen: a single probe call is in flight; its outcome decides
	// whether the breaker closes or re-opens.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Events is an optional observation seam, mirroring warper.Observer: the
// wrapper reports retries, attempt timeouts, and breaker transitions here so
// the serve layer can export them as metrics without this package importing
// obs. Nil callbacks are skipped. Callbacks run synchronously on the calling
// goroutine and must not call back into the wrapper.
type Events struct {
	// Retry fires before each re-attempt, with the 1-based number of the
	// attempt that just failed and its error.
	Retry func(attempt int, err error)
	// Timeout fires when an attempt was killed by the per-attempt deadline
	// (not by the caller's context).
	Timeout func(attempt int)
	// BreakerState fires on every breaker state transition.
	BreakerState func(s State)
}

// Charger receives busy-time charges for failed or retried attempts, so the
// experiment harness can account wasted annotation work against the virtual
// clock exactly like useful work (§4.3). *simclock.Ledger satisfies it.
type Charger interface {
	Charge(name string, d time.Duration)
}

// RetryCharge is the ledger component name under which the wrapper charges
// the measured duration of failed annotation attempts.
const RetryCharge = "annotate_retry"
