package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"warper/internal/query"
	"warper/internal/simclock"
)

// scripted is a Source whose call outcomes follow a fixed script: entry i
// is the error returned by call i (nil = success, card 1). Calls past the
// script succeed. hang entries block until ctx is cancelled.
type scripted struct {
	mu     sync.Mutex
	script []error
	calls  int
}

var errHang = errors.New("scripted hang sentinel")

func (s *scripted) next() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.calls
	s.calls++
	if i < len(s.script) {
		return s.script[i]
	}
	return nil
}

func (s *scripted) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *scripted) Count(ctx context.Context, p query.Predicate) (float64, error) {
	err := s.next()
	if err == errHang {
		<-ctx.Done()
		return 0, ctx.Err()
	}
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func (s *scripted) AnnotateAll(ctx context.Context, ps []query.Predicate) ([]query.Labeled, error) {
	err := s.next()
	if err == errHang {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if err != nil {
		return nil, err
	}
	out := make([]query.Labeled, len(ps))
	for i, p := range ps {
		out[i] = query.Labeled{Pred: p, Card: 1}
	}
	return out, nil
}

func fastPolicy() Policy {
	return Policy{
		MaxAttempts:    3,
		AttemptTimeout: 50 * time.Millisecond,
		BaseBackoff:    time.Microsecond,
		MaxBackoff:     4 * time.Microsecond,
		Seed:           1,
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	src := &scripted{script: []error{errBoom, errBoom, nil}}
	var retries int
	r := Wrap(src, fastPolicy(), Events{Retry: func(int, error) { retries++ }})
	v, err := r.Count(context.Background(), query.Predicate{})
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if v != 1 {
		t.Errorf("Count = %v, want 1", v)
	}
	if src.Calls() != 3 {
		t.Errorf("underlying calls = %d, want 3", src.Calls())
	}
	if retries != 2 {
		t.Errorf("retry events = %d, want 2", retries)
	}
}

func TestRetryExhaustionWrapsLastError(t *testing.T) {
	src := &scripted{script: []error{errBoom, errBoom, errBoom}}
	r := Wrap(src, fastPolicy(), Events{})
	_, err := r.Count(context.Background(), query.Predicate{})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want wrapped errBoom", err)
	}
	if src.Calls() != 3 {
		t.Errorf("underlying calls = %d, want 3", src.Calls())
	}
}

// TestAttemptTimeoutFiresTimeoutEvent pins the hang path: a per-attempt
// deadline kills a hung call, records a timeout event, and retries.
func TestAttemptTimeoutFiresTimeoutEvent(t *testing.T) {
	src := &scripted{script: []error{errHang, nil}}
	var timeouts int
	pol := fastPolicy()
	pol.AttemptTimeout = 10 * time.Millisecond
	r := Wrap(src, pol, Events{Timeout: func(int) { timeouts++ }})
	v, err := r.Count(context.Background(), query.Predicate{})
	if err != nil {
		t.Fatalf("Count after hang: %v", err)
	}
	if v != 1 {
		t.Errorf("Count = %v, want 1", v)
	}
	if timeouts != 1 {
		t.Errorf("timeout events = %d, want 1", timeouts)
	}
}

// TestParentCancellationWinsOverRetry pins the abort-vs-degrade contract:
// when the caller's context is done, do() returns its error immediately and
// does not keep retrying.
func TestParentCancellationWinsOverRetry(t *testing.T) {
	src := &scripted{script: []error{errHang, errHang, errHang}}
	pol := fastPolicy()
	pol.AttemptTimeout = time.Minute // only the parent deadline can fire
	r := Wrap(src, pol, Events{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := r.Count(ctx, query.Predicate{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want parent deadline", err)
	}
	if src.Calls() != 1 {
		t.Errorf("underlying calls = %d, want 1 (no retry after parent deadline)", src.Calls())
	}
}

// TestFailedAttemptsChargedToLedger pins satellite 2: every failed attempt
// charges its measured duration under RetryCharge, and Ledger.Calls exposes
// the attempt count.
func TestFailedAttemptsChargedToLedger(t *testing.T) {
	src := &scripted{script: []error{errBoom, errBoom, nil}}
	led := simclock.NewLedger()
	r := Wrap(src, fastPolicy(), Events{}).WithCostLedger(led)
	if _, err := r.Count(context.Background(), query.Predicate{}); err != nil {
		t.Fatalf("Count: %v", err)
	}
	if got := led.Calls(RetryCharge); got != 2 {
		t.Errorf("ledger calls under %q = %d, want 2", RetryCharge, got)
	}
	// Successful final attempt is not charged as waste.
	if led.Calls(RetryCharge) != 2 || led.Get(RetryCharge) < 0 {
		t.Errorf("unexpected ledger state: %v", led)
	}
}

// TestBreakerOpensAndFailsFast wires breaker + retry: once the failure
// streak trips the breaker, subsequent calls fail fast with ErrOpen without
// touching the source.
func TestBreakerOpensAndFailsFast(t *testing.T) {
	src := &scripted{script: []error{errBoom, errBoom, errBoom, errBoom, errBoom, errBoom}}
	pol := fastPolicy()
	pol.Breaker = BreakerConfig{OpenAfter: 3, ProbeEvery: 100}
	var states []State
	r := Wrap(src, pol, Events{BreakerState: func(s State) { states = append(states, s) }})

	// First call: 3 attempts, all fail → breaker open.
	if _, err := r.Count(context.Background(), query.Predicate{}); !errors.Is(err, errBoom) {
		t.Fatalf("first call err = %v, want errBoom", err)
	}
	if got := r.Breaker().State(); got != Open {
		t.Fatalf("breaker state = %v, want open", got)
	}
	calls := src.Calls()
	// Second call: all attempts rejected by the breaker, source untouched.
	if _, err := r.Count(context.Background(), query.Predicate{}); !errors.Is(err, ErrOpen) {
		t.Fatalf("second call err = %v, want ErrOpen", err)
	}
	if src.Calls() != calls {
		t.Errorf("open breaker leaked %d calls to the source", src.Calls()-calls)
	}
	if len(states) != 1 || states[0] != Open {
		t.Errorf("state transitions = %v, want [open]", states)
	}
}

// TestSeededRunsAreIdentical pins the determinism acceptance criterion at
// the wrapper level: same seed + same script → identical call counts and
// identical jitter sequence (observed via ledger charges being the same
// count; durations differ but the control flow must not).
func TestSeededRunsAreIdentical(t *testing.T) {
	run := func() (int, error) {
		src := &scripted{script: []error{errBoom, nil, errBoom, errBoom, nil}}
		r := Wrap(src, fastPolicy(), Events{})
		var firstErr error
		for i := 0; i < 3; i++ {
			if _, err := r.Count(context.Background(), query.Predicate{}); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return src.Calls(), firstErr
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 {
		t.Errorf("call counts differ across seeded runs: %d vs %d", c1, c2)
	}
	if (e1 == nil) != (e2 == nil) {
		t.Errorf("error outcomes differ across seeded runs: %v vs %v", e1, e2)
	}
}

// TestResilientAnnotateAllBatchRetry pins that AnnotateAll retries the whole
// batch as one unit.
func TestResilientAnnotateAllBatchRetry(t *testing.T) {
	src := &scripted{script: []error{errBoom, nil}}
	r := Wrap(src, fastPolicy(), Events{})
	ps := make([]query.Predicate, 4)
	out, err := r.AnnotateAll(context.Background(), ps)
	if err != nil {
		t.Fatalf("AnnotateAll: %v", err)
	}
	if len(out) != 4 {
		t.Fatalf("len(out) = %d, want 4", len(out))
	}
	if src.Calls() != 2 {
		t.Errorf("underlying batch calls = %d, want 2", src.Calls())
	}
}
