package resilience

import "sync"

// BreakerConfig parameterizes the counting circuit breaker. Zero values take
// defaults, following the repo's Config convention.
type BreakerConfig struct {
	// OpenAfter is the number of consecutive failures that trips the
	// breaker from Closed to Open. Default 5.
	OpenAfter int
	// ProbeEvery promotes every N-th rejected call in the Open state to a
	// half-open probe. The breaker is deliberately count-based rather than
	// time-based so its transitions are a pure function of the call
	// sequence (reproducible under the seeded fault plans). Default 8.
	ProbeEvery int
	// Disabled short-circuits the breaker: Allow always passes and the
	// state stays Closed. Used when resilience is configured retry-only.
	Disabled bool
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.OpenAfter <= 0 {
		c.OpenAfter = 5
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 8
	}
	return c
}

// Breaker is a deterministic counting circuit breaker.
//
// Closed → Open after cfg.OpenAfter consecutive failures. While Open, calls
// are rejected, except that every cfg.ProbeEvery-th rejected call transitions
// to HalfOpen and proceeds as the probe. The probe's outcome moves the
// breaker back to Closed (success) or Open (failure). While a probe is in
// flight, all other calls are rejected.
//
// Breaker is safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    State
	failures int // consecutive failures while Closed
	rejected int // rejected calls while Open, since last transition
	onState  func(State)
}

// NewBreaker returns a Closed breaker. onState, if non-nil, fires on every
// state transition (synchronously, with the breaker's lock held — it must
// not call back into the breaker).
func NewBreaker(cfg BreakerConfig, onState func(State)) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), onState: onState}
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed. A false return means the caller
// should fail fast with ErrOpen. Every allowed call must be matched by one
// Record call.
func (b *Breaker) Allow() bool {
	if b.cfg.Disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		return false // probe already in flight
	default: // Open
		b.rejected++
		if b.rejected%b.cfg.ProbeEvery == 0 {
			b.setState(HalfOpen)
			return true
		}
		return false
	}
}

// Record reports the outcome of an allowed call.
func (b *Breaker) Record(err error) {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		if err == nil {
			b.failures = 0
			b.setState(Closed)
		} else {
			b.rejected = 0
			b.setState(Open)
		}
	case Closed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.OpenAfter {
			b.failures = 0
			b.rejected = 0
			b.setState(Open)
		}
	default:
		// Open: a straggler finishing after the breaker tripped; the
		// trip already accounted for the failure streak.
	}
}

func (b *Breaker) setState(s State) {
	if b.state == s {
		return
	}
	b.state = s
	if b.onState != nil {
		b.onState(s)
	}
}
