package resilience

import (
	"sync"
	"testing"
	"time"
)

// TestServeFaultsCountSchedule pins the count-based determinism: exactly
// every StarveEvery-th checkout is held, independent of timing.
func TestServeFaultsCountSchedule(t *testing.T) {
	f := NewServeFaults(ServeFaultPlan{StarveEvery: 3, StarveHold: time.Millisecond})
	var holds []int
	for i := 1; i <= 9; i++ {
		if f.CheckoutHold() > 0 {
			holds = append(holds, i)
		}
	}
	want := []int{3, 6, 9}
	if len(holds) != len(want) {
		t.Fatalf("held checkouts %v, want %v", holds, want)
	}
	for i := range want {
		if holds[i] != want[i] {
			t.Fatalf("held checkouts %v, want %v", holds, want)
		}
	}
	if c, s, _ := f.Stats(); c != 9 || s != 3 {
		t.Errorf("Stats = (%d, %d), want (9, 3)", c, s)
	}
}

// TestServeFaultsDisable verifies Disable stops all injection and Enable
// re-arms it, the knob the overload soak uses to end its chaos phase.
func TestServeFaultsDisable(t *testing.T) {
	f := NewServeFaults(ServeFaultPlan{StarveEvery: 1, StarveHold: time.Millisecond, SwapDelay: time.Millisecond})
	if f.CheckoutHold() == 0 {
		t.Fatal("armed plan with StarveEvery=1 must hold every checkout")
	}
	if f.SwapHold() == 0 {
		t.Fatal("armed plan must stall swaps")
	}
	f.Disable()
	if f.CheckoutHold() != 0 || f.SwapHold() != 0 {
		t.Fatal("disabled plan must not inject")
	}
	f.Enable()
	if f.CheckoutHold() == 0 {
		t.Fatal("re-enabled plan must inject again")
	}
}

// TestServeFaultsConcurrent exercises the lock-free counters under the race
// detector: the exact set of starved checkouts depends on interleaving, but
// the total starve count must match the schedule's share of calls.
func TestServeFaultsConcurrent(t *testing.T) {
	f := NewServeFaults(ServeFaultPlan{StarveEvery: 4, StarveHold: time.Microsecond})
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.CheckoutHold()
			}
		}()
	}
	wg.Wait()
	c, s, _ := f.Stats()
	if c != workers*per {
		t.Fatalf("checkouts = %d, want %d", c, workers*per)
	}
	if want := int64(workers * per / 4); s != want {
		t.Errorf("starved = %d, want %d", s, want)
	}
}
