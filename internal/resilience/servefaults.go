package resilience

import (
	"sync/atomic"
	"time"
)

// ServeFaultPlan describes a deterministic fault schedule for the serving
// path, the overload counterpart of FaultPlan's annotation faults. Where
// FaultPlan models a flaky ground-truth source, ServeFaultPlan models the
// serving layer's own failure modes: replicas held hostage by slow
// inference (starvation), model swaps that take far too long (a stuck or
// slow period), and — combined with FaultPlan.HangRate on the annotation
// source — adaptation periods that never finish.
//
// The schedule is count-based rather than probability-based, following the
// circuit breaker's design: every decision is a pure function of the call
// sequence, so a given plan replays identically across runs with the same
// traffic and the chaos tests stay deterministic without any RNG.
type ServeFaultPlan struct {
	// StarveEvery holds every N-th replica checkout for StarveHold before
	// returning it to the caller, modeling a slow forward pass that keeps
	// the replica out of the free list and starves the admission queue.
	// 0 disables checkout starvation.
	StarveEvery int
	// StarveHold is how long a starved checkout holds its replica.
	StarveHold time.Duration
	// SwapDelay is added inside every model swap, modeling a slow clone of
	// a large model (the window during which replicas serve the previous
	// generation and the health tracker sees a swap in flight).
	SwapDelay time.Duration
}

// ServeFaults injects the plan onto a serving stack. The injector itself
// never sleeps: it answers "how long should this call stall", and the serve
// layer applies the stall, so the decision logic stays pure and this
// package stays free of uninterruptible waits. Safe for concurrent use;
// every method is lock-free (the serve checkout path must not acquire
// locks).
type ServeFaults struct {
	plan ServeFaultPlan

	// disabled flips the whole plan off at runtime, so a soak test can
	// stop injecting and watch the server recover.
	disabled atomic.Bool

	checkouts atomic.Int64
	starved   atomic.Int64
	swaps     atomic.Int64
}

// NewServeFaults builds an injector for the plan.
func NewServeFaults(plan ServeFaultPlan) *ServeFaults {
	return &ServeFaults{plan: plan}
}

// CheckoutHold reports how long the current replica checkout should be held
// before the replica is handed to the request: non-zero for every
// plan.StarveEvery-th checkout, zero otherwise.
func (f *ServeFaults) CheckoutHold() time.Duration {
	n := f.checkouts.Add(1)
	if f.disabled.Load() || f.plan.StarveEvery <= 0 || f.plan.StarveHold <= 0 {
		return 0
	}
	if n%int64(f.plan.StarveEvery) != 0 {
		return 0
	}
	f.starved.Add(1)
	return f.plan.StarveHold
}

// SwapHold reports how long the current model swap should stall.
func (f *ServeFaults) SwapHold() time.Duration {
	f.swaps.Add(1)
	if f.disabled.Load() {
		return 0
	}
	return f.plan.SwapDelay
}

// Disable turns all injection off; subsequent calls report zero holds. Used
// by soak tests to end the chaos phase and assert recovery.
func (f *ServeFaults) Disable() { f.disabled.Store(true) }

// Enable re-arms the plan after a Disable.
func (f *ServeFaults) Enable() { f.disabled.Store(false) }

// Stats returns (checkouts seen, checkouts starved, swaps seen).
func (f *ServeFaults) Stats() (checkouts, starved, swaps int64) {
	return f.checkouts.Load(), f.starved.Load(), f.swaps.Load()
}
