package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"warper/internal/annotator"
	"warper/internal/query"
	"warper/internal/simclock"
)

// Policy parameterizes the resilient annotation wrapper. Zero values take
// defaults.
type Policy struct {
	// MaxAttempts bounds tries per call, including the first. Default 3.
	MaxAttempts int
	// AttemptTimeout is the per-attempt deadline layered under the
	// caller's context. Default 2s; negative disables.
	AttemptTimeout time.Duration
	// BaseBackoff is the pre-jitter wait after the first failure; each
	// retry doubles it up to MaxBackoff. Defaults 5ms / 250ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed seeds the jitter RNG. The wrapper never touches the global
	// math/rand source, so equal seeds give equal backoff sequences.
	Seed int64
	// Breaker configures the circuit breaker shared by all calls through
	// one wrapper.
	Breaker BreakerConfig
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = 2 * time.Second
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	return p
}

// Resilient wraps an annotator.Source with retries, per-attempt timeouts,
// and a circuit breaker. It implements annotator.Source itself, so it can
// stand anywhere an annotator does — including under another wrapper.
//
// Resilient is safe for concurrent use; the jitter RNG is mutex-guarded.
type Resilient struct {
	src     annotator.Source
	pol     Policy
	breaker *Breaker
	events  Events
	charger Charger

	mu  sync.Mutex
	rng *rand.Rand
}

var _ annotator.Source = (*Resilient)(nil)

// Wrap builds a resilient source around src. events callbacks may be nil.
func Wrap(src annotator.Source, pol Policy, events Events) *Resilient {
	pol = pol.withDefaults()
	return &Resilient{
		src:     src,
		pol:     pol,
		breaker: NewBreaker(pol.Breaker, events.BreakerState),
		events:  events,
		rng:     rand.New(rand.NewSource(pol.Seed)),
	}
}

// WithCostLedger directs failed-attempt durations to c under RetryCharge
// and returns the wrapper for chaining.
func (r *Resilient) WithCostLedger(c Charger) *Resilient {
	r.charger = c
	return r
}

// Breaker exposes the wrapper's breaker, mainly so tests and the serve
// layer can read its state.
func (r *Resilient) Breaker() *Breaker { return r.breaker }

// Unwrap returns the wrapped source.
func (r *Resilient) Unwrap() annotator.Source { return r.src }

// Count implements annotator.Source with the retry/breaker discipline.
func (r *Resilient) Count(ctx context.Context, p query.Predicate) (float64, error) {
	var v float64
	err := r.do(ctx, func(actx context.Context) error {
		var e error
		v, e = r.src.Count(actx, p)
		return e
	})
	if err != nil {
		return 0, err
	}
	return v, nil
}

// AnnotateAll implements annotator.Source. The whole batch is one attempt:
// a mid-batch failure retries the batch, matching the all-or-nothing
// contract of the underlying sources.
func (r *Resilient) AnnotateAll(ctx context.Context, ps []query.Predicate) ([]query.Labeled, error) {
	var out []query.Labeled
	err := r.do(ctx, func(actx context.Context) error {
		var e error
		out, e = r.src.AnnotateAll(actx, ps)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// do runs op with up to pol.MaxAttempts tries. The caller's ctx always wins:
// its cancellation or deadline aborts the loop immediately (including backoff
// waits) and is returned verbatim, so callers can distinguish "the period was
// cancelled" from "the source kept failing".
func (r *Resilient) do(ctx context.Context, op func(context.Context) error) error {
	var lastErr error
	for attempt := 1; attempt <= r.pol.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !r.breaker.Allow() {
			lastErr = ErrOpen
		} else {
			actx, cancel := r.attemptCtx(ctx)
			w := simclock.StartWatch()
			err := op(actx)
			d := w.Stop()
			cancel()
			if err == nil {
				r.breaker.Record(nil)
				return nil
			}
			r.breaker.Record(err)
			// A failed attempt still burned real annotation work;
			// charge it so the virtual-clock cost model sees faults.
			if r.charger != nil {
				r.charger.Charge(RetryCharge, d)
			}
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				// The per-attempt deadline fired, not the caller's.
				if r.events.Timeout != nil {
					r.events.Timeout(attempt)
				}
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			lastErr = err
		}
		if attempt == r.pol.MaxAttempts {
			break
		}
		if r.events.Retry != nil {
			r.events.Retry(attempt, lastErr)
		}
		if err := r.backoff(ctx, attempt); err != nil {
			return err
		}
	}
	return fmt.Errorf("resilience: %d attempts failed: %w", r.pol.MaxAttempts, lastErr)
}

func (r *Resilient) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.pol.AttemptTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, r.pol.AttemptTimeout)
}

// backoff waits min(MaxBackoff, BaseBackoff·2^(attempt-1)) scaled by a
// uniform jitter factor in [0.5, 1), honoring ctx cancellation.
func (r *Resilient) backoff(ctx context.Context, attempt int) error {
	d := r.pol.BaseBackoff
	for i := 1; i < attempt && d < r.pol.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.pol.MaxBackoff {
		d = r.pol.MaxBackoff
	}
	r.mu.Lock()
	jitter := 0.5 + 0.5*r.rng.Float64()
	r.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
