package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"warper/internal/query"
)

// TestFaultyDeterministicSequence pins the core harness property: two Faulty
// wrappers with the same plan replay the exact same fault sequence.
func TestFaultyDeterministicSequence(t *testing.T) {
	plan := FaultPlan{ErrRate: 0.3, Seed: 42}
	run := func() []bool {
		f := NewFaulty(&scripted{}, plan)
		outcomes := make([]bool, 50)
		for i := range outcomes {
			_, err := f.Count(context.Background(), query.Predicate{})
			outcomes[i] = err == nil
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at call %d: %v vs %v", i, a[i], b[i])
		}
	}
	f := NewFaulty(&scripted{}, plan)
	for i := 0; i < 50; i++ {
		f.Count(context.Background(), query.Predicate{}) //nolint:errcheck // outcome counted via Stats
	}
	calls, errs, hangs := f.Stats()
	if calls != 50 || hangs != 0 {
		t.Fatalf("Stats = (%d, %d, %d), want 50 calls, 0 hangs", calls, errs, hangs)
	}
	// With ErrRate 0.3 over 50 seeded draws the count is fixed; pin it
	// loosely so a different rand version fails loudly, not flakily.
	if errs == 0 || errs == 50 {
		t.Errorf("injected errors = %d, want some but not all of 50", errs)
	}
}

// TestFaultyErrorIsErrInjected pins error identity so callers can tell
// injected faults from real ones.
func TestFaultyErrorIsErrInjected(t *testing.T) {
	f := NewFaulty(&scripted{}, FaultPlan{ErrRate: 1, Seed: 1})
	if _, err := f.Count(context.Background(), query.Predicate{}); !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", err)
	}
	if _, err := f.AnnotateAll(context.Background(), nil); !errors.Is(err, ErrInjected) {
		t.Errorf("AnnotateAll err = %v, want ErrInjected", err)
	}
}

// TestFaultyHangBlocksUntilCancel pins the hang fault: the call must block
// until its context dies, then surface ctx.Err().
func TestFaultyHangBlocksUntilCancel(t *testing.T) {
	f := NewFaulty(&scripted{}, FaultPlan{HangRate: 1, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Count(ctx, query.Predicate{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("hang returned before the context deadline")
	}
	_, _, hangs := f.Stats()
	if hangs != 1 {
		t.Errorf("hangs = %d, want 1", hangs)
	}
}

// TestFaultyLatencyDelaysCall pins the latency fault path.
func TestFaultyLatencyDelaysCall(t *testing.T) {
	f := NewFaulty(&scripted{}, FaultPlan{Latency: 10 * time.Millisecond, Seed: 1})
	start := time.Now()
	if _, err := f.Count(context.Background(), query.Predicate{}); err != nil {
		t.Fatalf("Count: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("latency fault added only %v, want >= Latency/2", d)
	}
	// Latency also honors cancellation.
	f2 := NewFaulty(&scripted{}, FaultPlan{Latency: time.Minute, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := f2.Count(ctx, query.Predicate{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("latency under cancelled ctx: err = %v, want deadline exceeded", err)
	}
}

// TestFaultyUnderResilientRecovers is the integration smoke test: a 30%
// error rate source behind the resilient wrapper still completes a batch of
// calls, because retries absorb the transient failures.
func TestFaultyUnderResilientRecovers(t *testing.T) {
	f := NewFaulty(&scripted{}, FaultPlan{ErrRate: 0.3, Seed: 7})
	pol := fastPolicy()
	pol.MaxAttempts = 5
	r := Wrap(f, pol, Events{})
	ok := 0
	for i := 0; i < 20; i++ {
		if _, err := r.Count(context.Background(), query.Predicate{}); err == nil {
			ok++
		}
	}
	if ok < 18 {
		t.Errorf("only %d/20 calls succeeded through retries at 30%% fault rate", ok)
	}
}
