package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"warper/internal/query"
	"warper/internal/tpch"
)

// Property tests on the cost model and plan chooser.

func propFixture() (*Engine, *query.Schema, *query.Schema) {
	rng := rand.New(rand.NewSource(77))
	db := tpch.Generate(tpch.Config{Orders: 800}, rng)
	eng := New(db)
	return eng, query.SchemaOf(db.Lineitem), query.SchemaOf(db.Orders)
}

// randPred builds a valid predicate from two raw floats on one column.
func randPred(sch *query.Schema, col int, a, b float64) query.Predicate {
	p := query.NewFullRange(sch)
	span := sch.Maxs[col] - sch.Mins[col]
	lo := sch.Mins[col] + clamp01(a)*span
	hi := sch.Mins[col] + clamp01(b)*span
	p.SetRange(col, lo, hi)
	return p.Normalize(sch)
}

func clamp01(x float64) float64 {
	if x != x || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Property: every scenario, every estimate — output rows identical and cost
// strictly positive; latency proportional to cost.
func TestExecutionInvariants(t *testing.T) {
	eng, schL, schO := propFixture()
	f := func(a, b, c, d float64, el, eo uint32) bool {
		predL := randPred(schL, tpch.LColQuantity, a, b)
		predO := randPred(schO, tpch.OColTotalPrice, c, d)
		var out []int
		for _, s := range []Scenario{S1BufferSpill, S2JoinType, S3BitmapSide} {
			st := eng.Run(s, predL, predO, float64(el%10000), float64(eo%10000))
			if st.Cost <= 0 {
				return false
			}
			if st.Latency != time.Duration(st.Cost*nsPerOp) {
				return false
			}
			out = append(out, st.OutputRows)
		}
		return out[0] == out[1] && out[1] == out[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: the true-cardinality plan is never more expensive than the plan
// chosen from arbitrary estimates (plan optimality of the cost model).
func TestTrueCardPlanIsOptimal(t *testing.T) {
	eng, schL, schO := propFixture()
	f := func(a, b, c, d float64, el, eo uint32) bool {
		predL := randPred(schL, tpch.LColQuantity, a, b)
		predO := randPred(schO, tpch.OColTotalPrice, c, d)
		// True cardinalities from a reference execution.
		ref := eng.Run(S2JoinType, predL, predO, 1e18, 1e18) // hash join path
		trueL, trueO := float64(ref.FilteredL), float64(ref.FilteredO)
		for _, s := range []Scenario{S1BufferSpill, S2JoinType, S3BitmapSide} {
			good, bad := eng.LatencyGap(s, predL, predO, float64(el%100000), float64(eo%100000), trueL, trueO)
			if bad < good {
				// An estimate-driven plan beat the true-cardinality plan:
				// the plan chooser would be suboptimal under truth.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
