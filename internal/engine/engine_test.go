package engine

import (
	"context"
	"math/rand"
	"testing"

	"warper/internal/annotator"
	"warper/internal/query"
	"warper/internal/tpch"
)

type fixture struct {
	eng   *Engine
	schL  *query.Schema
	schO  *query.Schema
	wideL query.Predicate // selects most of lineitem
	wideO query.Predicate // selects most of orders
	tinyL query.Predicate
	tinyO query.Predicate
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	db := tpch.Generate(tpch.Config{Orders: 2000}, rng)
	eng := New(db)
	schL := query.SchemaOf(db.Lineitem)
	schO := query.SchemaOf(db.Orders)

	wideL := query.NewFullRange(schL)
	wideO := query.NewFullRange(schO)
	tinyL := query.NewFullRange(schL)
	tinyL.SetRange(tpch.LColQuantity, 1, 2) // few rows
	tinyO := query.NewFullRange(schO)
	mx := schO.Maxs[tpch.OColTotalPrice]
	tinyO.SetRange(tpch.OColTotalPrice, mx*0.97, mx)
	return &fixture{eng: eng, schL: schL, schO: schO,
		wideL: wideL, wideO: wideO, tinyL: tinyL.Normalize(schL), tinyO: tinyO.Normalize(schO)}
}

func (f *fixture) trueCards(t *testing.T, pl, po query.Predicate) (float64, float64) {
	t.Helper()
	al := annotator.New(f.eng.DB.Lineitem)
	ao := annotator.New(f.eng.DB.Orders)
	cl, err := al.Count(context.Background(), pl)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	co, err := ao.Count(context.Background(), po)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	return cl, co
}

func TestS1UnderestimateCausesMidSpill(t *testing.T) {
	f := newFixture(t)
	trueL, trueO := f.trueCards(t, f.wideL, f.wideO)
	good := f.eng.Run(S1BufferSpill, f.wideL, f.wideO, trueL, trueO)
	if good.SpilledMid {
		t.Error("true-cardinality plan should pre-partition, not overflow")
	}
	// Underestimate: planner skips pre-partitioning, overflows mid-build.
	bad := f.eng.Run(S1BufferSpill, f.wideL, f.wideO, 10, 10)
	if !bad.SpilledMid {
		t.Fatal("underestimate should cause an unplanned spill")
	}
	if bad.Latency <= good.Latency {
		t.Errorf("unplanned spill (%v) should be slower than planned (%v)", bad.Latency, good.Latency)
	}
	// Paper reports ≈2.1× worst-case for S1; require a sizable gap.
	if ratio := float64(bad.Latency) / float64(good.Latency); ratio < 1.2 || ratio > 10 {
		t.Errorf("S1 gap = %.2f, want within [1.2, 10]", ratio)
	}
}

func TestS1OverestimateOnlyPlansSpill(t *testing.T) {
	f := newFixture(t)
	trueL, trueO := f.trueCards(t, f.wideL, f.tinyO)
	good := f.eng.Run(S1BufferSpill, f.wideL, f.tinyO, trueL, trueO)
	// Overestimate: spill planned unnecessarily — costs a bit, never
	// catastrophic (matches the paper: "over-estimates waste memory but
	// have little impact").
	bad := f.eng.Run(S1BufferSpill, f.wideL, f.tinyO, trueL, 1e9)
	if bad.SpilledMid {
		t.Error("overestimate must not overflow")
	}
	if ratio := float64(bad.Latency) / float64(good.Latency); ratio > 3 {
		t.Errorf("overestimate penalty %.2f× too harsh", ratio)
	}
}

func TestS2UnderestimatePicksDisastrousNL(t *testing.T) {
	f := newFixture(t)
	trueL, trueO := f.trueCards(t, f.wideL, f.wideO)
	good := f.eng.Run(S2JoinType, f.wideL, f.wideO, trueL, trueO)
	if good.Plan.UseNL {
		t.Fatal("true cardinalities should pick hash join for wide inputs")
	}
	bad := f.eng.Run(S2JoinType, f.wideL, f.wideO, 5, 5)
	if !bad.Plan.UseNL || !bad.NLDisaster {
		t.Fatal("underestimates should pick a nested loop over large inputs")
	}
	ratio := float64(bad.Latency) / float64(good.Latency)
	// Paper reports up to 306×; our scaled tables should still show a
	// catastrophic gap.
	if ratio < 20 {
		t.Errorf("S2 gap = %.1f×, want >= 20×", ratio)
	}
	if good.OutputRows != bad.OutputRows {
		t.Errorf("plans disagree on results: %d vs %d", good.OutputRows, bad.OutputRows)
	}
}

func TestS2NLFineForTinyInputs(t *testing.T) {
	f := newFixture(t)
	f.eng.NLThresholdRows = 400 // both filtered inputs land under this
	trueL, trueO := f.trueCards(t, f.tinyL, f.tinyO)
	good := f.eng.Run(S2JoinType, f.tinyL, f.tinyO, trueL, trueO)
	if !good.Plan.UseNL {
		t.Fatal("tiny inputs should use nested loop")
	}
	if good.NLDisaster {
		t.Error("NL over tiny inputs flagged as disaster")
	}
}

func TestS3WrongBitmapSideCostsMore(t *testing.T) {
	f := newFixture(t)
	// Orders filtered tiny, lineitem wide: bitmap belongs on orders.
	trueL, trueO := f.trueCards(t, f.wideL, f.tinyO)
	good := f.eng.Run(S3BitmapSide, f.wideL, f.tinyO, trueL, trueO)
	if !good.Plan.BitmapOnOrders {
		t.Fatal("true cardinalities should build the bitmap on orders")
	}
	// Estimates inverted: bitmap lands on the big lineitem side.
	bad := f.eng.Run(S3BitmapSide, f.wideL, f.tinyO, 10, 1e9)
	if bad.Plan.BitmapOnOrders {
		t.Fatal("inverted estimates should build on lineitem")
	}
	if !bad.WrongBitmap {
		t.Error("wrong side not flagged")
	}
	ratio := float64(bad.Latency) / float64(good.Latency)
	if ratio < 1.3 {
		t.Errorf("S3 gap = %.2f×, want >= 1.3×", ratio)
	}
	if good.OutputRows != bad.OutputRows {
		t.Errorf("plans disagree on results: %d vs %d", good.OutputRows, bad.OutputRows)
	}
}

func TestAllPlansAgreeOnOutput(t *testing.T) {
	f := newFixture(t)
	trueL, trueO := f.trueCards(t, f.tinyL, f.wideO)
	var outs []int
	for _, s := range []Scenario{S1BufferSpill, S2JoinType, S3BitmapSide} {
		outs = append(outs, f.eng.Run(s, f.tinyL, f.wideO, trueL, trueO).OutputRows)
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Errorf("scenarios disagree on join output: %v", outs)
	}
}

func TestLatencyGap(t *testing.T) {
	f := newFixture(t)
	trueL, trueO := f.trueCards(t, f.wideL, f.wideO)
	goodLat, badLat := f.eng.LatencyGap(S2JoinType, f.wideL, f.wideO, 5, 5, trueL, trueO)
	if badLat <= goodLat {
		t.Errorf("LatencyGap: bad %v <= good %v", badLat, goodLat)
	}
}

func TestScenarioString(t *testing.T) {
	if S1BufferSpill.String() == "" || S2JoinType.String() == "" || S3BitmapSide.String() == "" {
		t.Error("empty scenario strings")
	}
}
