// Package engine is a miniature cost-based query executor reproducing the
// three plan decisions of §4.2 that a production query optimizer makes from
// cardinality estimates:
//
//	S1  whether a hash-join build side fits in memory or must spill,
//	S2  nested-loop vs hash join,
//	S3  which join input to build a semi-join bitmap on.
//
// The engine executes real joins over the generated TPC-H-shaped tables;
// only the *plan choice* comes from the (possibly wrong) estimates, exactly
// as in the paper's setup where estimates are injected into the optimizer's
// memo. Latency is a deterministic cost model (row operations × calibrated
// per-op time), making the experiments reproducible on any machine while
// preserving the relative latency gaps between good and bad plans.
package engine

import (
	"time"

	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/tpch"
)

// Scenario selects which §4.2 plan decision is exercised.
type Scenario int

// The three end-to-end scenarios of Table 9.
const (
	S1BufferSpill Scenario = iota
	S2JoinType
	S3BitmapSide
)

// String returns the scenario label used in the paper.
func (s Scenario) String() string {
	switch s {
	case S1BufferSpill:
		return "S1-buffer-spill"
	case S2JoinType:
		return "S2-join-type"
	case S3BitmapSide:
		return "S3-bitmap-side"
	default:
		return "unknown"
	}
}

// Cost-model constants, in abstract row operations. The ratios are chosen so
// the good-vs-bad plan latency gaps land near the paper's Table 9 (≈2× for
// spills, orders of magnitude for a misplanned nested-loop join, ≈5× for the
// wrong bitmap side).
const (
	costScanRow    = 1.0
	costHashBuild  = 2.0
	costHashProbe  = 1.5
	costSpillRow   = 5.0  // write + re-read of a spilled partition row
	costNLCompare  = 0.25 // one inner-loop comparison
	costBitmapSet  = 0.5
	costBitmapTest = 0.25
	costOutputRow  = 1.0
)

// nsPerOp converts cost units into simulated latency.
const nsPerOp = 100

// Engine executes the Figure 1 query template
// SELECT ... FROM lineitem L JOIN orders O ON l_orderkey = o_orderkey
// WHERE <pred on L> AND <pred on O>.
type Engine struct {
	DB *tpch.DB
	// MemBudgetRows is the hash-join build-side memory budget for S1.
	MemBudgetRows int
	// NLThresholdRows is the per-input cardinality below which the planner
	// prefers a nested-loop join in S2.
	NLThresholdRows int
}

// New returns an engine with budget defaults scaled to the DB size.
func New(db *tpch.DB) *Engine {
	return &Engine{
		DB:              db,
		MemBudgetRows:   db.Orders.NumRows() / 8,
		NLThresholdRows: db.Orders.NumRows() / 16,
	}
}

// MemBudgetLRows is the S1 build-side budget on the lineitem input, scaled
// from the orders budget by the tables' size ratio.
func (e *Engine) MemBudgetLRows() int {
	if e.DB.Orders.NumRows() == 0 {
		return e.MemBudgetRows
	}
	return e.MemBudgetRows * e.DB.Lineitem.NumRows() / e.DB.Orders.NumRows()
}

// Plan is the optimizer's decision for one query.
type Plan struct {
	Scenario Scenario
	// UseNL selects nested-loop join (S2).
	UseNL bool
	// SpillPlanned pre-partitions the build side (S1).
	SpillPlanned bool
	// BitmapOnOrders builds the semi-join bitmap on the orders side (S3);
	// otherwise on lineitem.
	BitmapOnOrders bool
}

// Stats reports one execution.
type Stats struct {
	Plan        Plan
	FilteredL   int
	FilteredO   int
	OutputRows  int
	Cost        float64
	Latency     time.Duration
	SpilledMid  bool // S1: unplanned spill during build
	NLDisaster  bool // S2: nested loop over large inputs
	WrongBitmap bool // S3: bitmap built on the larger filtered input
}

// ChoosePlan makes the §4.2 plan decision from cardinality *estimates*.
func (e *Engine) ChoosePlan(s Scenario, estL, estO float64) Plan {
	p := Plan{Scenario: s}
	switch s {
	case S1BufferSpill:
		// S1 builds the hash table on the predicated lineitem input (the
		// paper's Figure 1 template drifts the L predicate); pre-partition
		// when its estimate exceeds the memory budget. Under-estimates skip
		// the pre-partitioning and pay a mid-build overflow instead.
		p.SpillPlanned = estL > float64(e.MemBudgetLRows())
	case S2JoinType:
		p.UseNL = estL <= float64(e.NLThresholdRows) && estO <= float64(e.NLThresholdRows)
	case S3BitmapSide:
		p.BitmapOnOrders = estO <= estL
	}
	return p
}

// filter scans a table with the predicate, returning matching row indices.
func filter(t *dataset.Table, p query.Predicate) []int {
	var out []int
	row := make([]float64, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		if p.Matches(t.Row(r, row)) {
			out = append(out, r)
		}
	}
	return out
}

// Execute runs the query under the given plan and returns measured stats.
// predL/predO are the actual predicates; the plan may have been chosen from
// arbitrarily wrong estimates.
func (e *Engine) Execute(plan Plan, predL, predO query.Predicate) Stats {
	L, O := e.DB.Lineitem, e.DB.Orders
	st := Stats{Plan: plan}
	cost := float64(L.NumRows()+O.NumRows()) * costScanRow // table scans

	lRows := filter(L, predL)
	oRows := filter(O, predO)
	st.FilteredL = len(lRows)
	st.FilteredO = len(oRows)

	lKeys := L.Cols[tpch.LColOrderKey].Vals
	oKeys := O.Cols[tpch.OColOrderKey].Vals

	switch {
	case plan.UseNL:
		// Nested loop: compare every filtered pair.
		cost += float64(len(lRows)) * float64(len(oRows)) * costNLCompare
		matches := 0
		for _, lr := range lRows {
			k := lKeys[lr]
			for _, or := range oRows {
				if oKeys[or] == k {
					matches++
				}
			}
		}
		st.OutputRows = matches
		cost += float64(matches) * costOutputRow
		if len(lRows) > e.NLThresholdRows || len(oRows) > e.NLThresholdRows {
			st.NLDisaster = true
		}

	case plan.Scenario == S3BitmapSide:
		// Semi-join bitmap: build on one input, pre-filter the other, then
		// hash join. The wrong (larger) build side costs more to build and
		// filters less.
		build, probe := oRows, lRows
		buildKeys, probeKeys := oKeys, lKeys
		if !plan.BitmapOnOrders {
			build, probe = lRows, oRows
			buildKeys, probeKeys = lKeys, oKeys
		}
		bitmap := make(map[float64]struct{}, len(build))
		for _, r := range build {
			bitmap[buildKeys[r]] = struct{}{}
		}
		cost += float64(len(build)) * costBitmapSet
		var surviving []int
		for _, r := range probe {
			if _, ok := bitmap[probeKeys[r]]; ok {
				surviving = append(surviving, r)
			}
		}
		cost += float64(len(probe)) * costBitmapTest
		// Hash join between build side and surviving probe rows.
		st.OutputRows = hashJoinCount(build, buildKeys, surviving, probeKeys)
		cost += float64(len(build))*costHashBuild + float64(len(surviving))*costHashProbe
		cost += float64(st.OutputRows) * costOutputRow
		st.WrongBitmap = len(build) > len(probe)

	default:
		// Hash join. S1 builds on the predicated lineitem input with a
		// memory budget; S2's hash path builds on orders (the smaller base
		// table) without spill modelling.
		build, probe := oRows, lRows
		buildKeys, probeKeys := oKeys, lKeys
		budget := -1 // no budget: spills cannot occur
		if plan.Scenario == S1BufferSpill {
			build, probe = lRows, oRows
			buildKeys, probeKeys = lKeys, oKeys
			budget = e.MemBudgetLRows()
		}
		if budget >= 0 {
			if plan.SpillPlanned {
				// Grace-style pre-partitioning: both inputs written and
				// re-read once.
				cost += float64(len(build)+len(probe)) * costSpillRow
			} else if len(build) > budget {
				// Unplanned overflow: the partially built table is flushed
				// and both inputs re-partitioned mid-flight — much more
				// expensive than having planned the spill.
				cost += float64(budget) * costHashBuild // wasted build work
				cost += float64(len(build)+len(probe)) * costSpillRow * 2.5
				st.SpilledMid = true
			}
		}
		st.OutputRows = hashJoinCount(build, buildKeys, probe, probeKeys)
		cost += float64(len(build))*costHashBuild + float64(len(probe))*costHashProbe
		cost += float64(st.OutputRows) * costOutputRow
	}

	st.Cost = cost
	st.Latency = time.Duration(cost * nsPerOp)
	return st
}

// hashJoinCount counts join matches building on the first input.
func hashJoinCount(build []int, buildKeys []float64, probe []int, probeKeys []float64) int {
	ht := make(map[float64]int, len(build))
	for _, r := range build {
		ht[buildKeys[r]]++
	}
	out := 0
	for _, r := range probe {
		out += ht[probeKeys[r]]
	}
	return out
}

// Run chooses a plan from the estimates and executes it.
func (e *Engine) Run(s Scenario, predL, predO query.Predicate, estL, estO float64) Stats {
	return e.Execute(e.ChoosePlan(s, estL, estO), predL, predO)
}

// LatencyGap runs the same query with true-cardinality planning and with the
// given estimates, returning (goodLatency, actualLatency).
func (e *Engine) LatencyGap(s Scenario, predL, predO query.Predicate, estL, estO, trueL, trueO float64) (time.Duration, time.Duration) {
	good := e.Run(s, predL, predO, trueL, trueO)
	actual := e.Run(s, predL, predO, estL, estO)
	return good.Latency, actual.Latency
}
