package drift

import (
	"context"
	"math/rand"
	"testing"

	"warper/internal/annotator"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/workload"
)

func driftsFixture(t *testing.T) (*dataset.Table, *query.Schema) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	tbl := dataset.PRSA(3000, rng)
	return tbl, query.SchemaOf(tbl)
}

func TestDeltaJSIdenticalWorkloadsNearZero(t *testing.T) {
	tbl, sch := driftsFixture(t)
	rng := rand.New(rand.NewSource(2))
	g := workload.New("w1", tbl, sch, workload.Options{})
	a := workload.Generate(g, 300, rng)
	b := workload.Generate(g, 300, rng)
	js := DeltaJS(a, b, sch, DefaultJSConfig())
	if js > 0.15 {
		t.Errorf("δ_js of same distribution = %v, want near 0", js)
	}
}

func TestDeltaJSDifferentWorkloadsLarger(t *testing.T) {
	tbl, sch := driftsFixture(t)
	rng := rand.New(rand.NewSource(3))
	g1 := workload.New("w1", tbl, sch, workload.Options{})
	g4 := workload.New("w4", tbl, sch, workload.Options{})
	a := workload.Generate(g1, 300, rng)
	b := workload.Generate(g1, 300, rng)
	c := workload.Generate(g4, 300, rng)
	same := DeltaJS(a, b, sch, DefaultJSConfig())
	diff := DeltaJS(a, c, sch, DefaultJSConfig())
	if diff <= same {
		t.Errorf("δ_js(w1,w4)=%v should exceed δ_js(w1,w1)=%v", diff, same)
	}
	if diff <= 0 || diff > 1 {
		t.Errorf("δ_js out of range: %v", diff)
	}
}

func TestDeltaJSSymmetric(t *testing.T) {
	tbl, sch := driftsFixture(t)
	rng := rand.New(rand.NewSource(4))
	a := workload.Generate(workload.New("w1", tbl, sch, workload.Options{}), 150, rng)
	b := workload.Generate(workload.New("w3", tbl, sch, workload.Options{}), 150, rng)
	ab := DeltaJS(a, b, sch, DefaultJSConfig())
	ba := DeltaJS(b, a, sch, DefaultJSConfig())
	if diff := ab - ba; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("not symmetric: %v vs %v", ab, ba)
	}
}

func TestDeltaJSEmptyInputs(t *testing.T) {
	_, sch := driftsFixture(t)
	if got := DeltaJS(nil, nil, sch, DefaultJSConfig()); got != 0 {
		t.Errorf("empty δ_js = %v", got)
	}
}

func TestCanariesDetectDataDrift(t *testing.T) {
	tbl, sch := driftsFixture(t)
	rng := rand.New(rand.NewSource(5))
	ann := annotator.New(tbl)
	g := workload.New("w3", tbl, sch, workload.Options{})
	can, err := NewCanaries(context.Background(), 10, g, ann, rng)
	if err != nil {
		t.Fatalf("NewCanaries: %v", err)
	}
	if can.Len() != 10 {
		t.Fatalf("Len = %d", can.Len())
	}
	if got := maxRelOK(t, can, ann); got != 0 {
		t.Errorf("unchanged table rel change = %v, want 0", got)
	}
	dataset.SortTruncateHalf(tbl, 1)
	if got := maxRelOK(t, can, ann); got < 0.1 {
		t.Errorf("rel change after truncation = %v, want >= 0.1", got)
	}
	if err := can.Rebase(context.Background(), ann); err != nil {
		t.Fatalf("Rebase: %v", err)
	}
	if got := maxRelOK(t, can, ann); got != 0 {
		t.Errorf("after rebase = %v, want 0", got)
	}
}

func TestDataTelemetryChangedRows(t *testing.T) {
	tbl, _ := driftsFixture(t)
	ann := annotator.New(tbl)
	d := &DataTelemetry{}
	if detectOK(t, d, 0.01, ann) {
		t.Error("1% changed rows should not trigger with 5% threshold")
	}
	if !detectOK(t, d, 0.2, ann) {
		t.Error("20% changed rows should trigger")
	}
}

func TestDataTelemetryCanaryPath(t *testing.T) {
	tbl, sch := driftsFixture(t)
	rng := rand.New(rand.NewSource(6))
	ann := annotator.New(tbl)
	g := workload.New("w3", tbl, sch, workload.Options{})
	can, err := NewCanaries(context.Background(), 8, g, ann, rng)
	if err != nil {
		t.Fatalf("NewCanaries: %v", err)
	}
	d := &DataTelemetry{Canaries: can}
	if detectOK(t, d, 0, ann) {
		t.Error("no drift yet")
	}
	dataset.UpdateDrift(tbl, 1.0, 2.0, rng)
	if !detectOK(t, d, 0, ann) {
		t.Error("canaries missed a full-table update")
	}
}

// maxRelOK/detectOK unwrap canary probes over schemas that match by
// construction.
func maxRelOK(t *testing.T, c *Canaries, ann *annotator.Annotator) float64 {
	t.Helper()
	v, err := c.MaxRelChange(context.Background(), ann)
	if err != nil {
		t.Fatalf("MaxRelChange: %v", err)
	}
	return v
}

func detectOK(t *testing.T, d *DataTelemetry, changedFrac float64, ann *annotator.Annotator) bool {
	t.Helper()
	hit, err := d.Detect(context.Background(), changedFrac, ann)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	return hit
}
