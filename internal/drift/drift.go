// Package drift implements the drift metrics of §3.1 and §4.1: the intrinsic
// workload-distance δ_js (PCA reduction → per-dimension quantization →
// histogram → symmetric Jensen-Shannon divergence) and the data-drift
// telemetry (changed-row fraction plus canary predicates whose cardinality
// is re-checked against the live table).
package drift

import (
	"context"
	"math"
	"math/rand"

	"warper/internal/mathx"
	"warper/internal/query"
	"warper/internal/workload"
)

// Counter is the slice of the annotation Source the drift telemetry needs:
// a single ground-truth count. Accepting the narrow interface (rather than
// *annotator.Annotator) lets the adapter route canary probes through the
// same resilience wrapper as regular annotation, so a flaky source degrades
// telemetry instead of crashing detection.
type Counter interface {
	Count(ctx context.Context, p query.Predicate) (float64, error)
}

// JSConfig controls the δ_js computation. The paper uses k=10 PCA dimensions
// and m=3 bins per dimension.
type JSConfig struct {
	K int // PCA dimensions
	M int // bins per dimension
}

// DefaultJSConfig returns the paper's k=10, m=3.
func DefaultJSConfig() JSConfig { return JSConfig{K: 10, M: 3} }

// DeltaJS measures the workload distance between predicate sets A and B in
// [0,1]: featurize each predicate, fit a PCA on the union, reduce to k dims,
// quantize each dimension into m bins, histogram the resulting bucket ids and
// return the symmetric Jensen-Shannon divergence of the two histograms.
func DeltaJS(a, b []query.Predicate, sch *query.Schema, cfg JSConfig) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if cfg.K <= 0 || cfg.M <= 1 {
		cfg = DefaultJSConfig()
	}
	d := sch.FeatureDim()
	k := cfg.K
	if k > d {
		k = d
	}
	// Cap k so the histogram stays denser than ~4 samples per occupied
	// bucket region; with few queries, a 3^10-bucket histogram would report
	// large divergence even for identical distributions (pure sparseness
	// bias). The paper's k=10 assumes thousands of queries per workload.
	n := len(a) + len(b)
	for k > 1 && pow(cfg.M, k) > maxInt(16, n/4) {
		k--
	}
	union := mathx.NewMatrix(len(a)+len(b), d)
	for i, p := range a {
		copy(union.Data[i*d:(i+1)*d], p.Featurize(sch))
	}
	for i, p := range b {
		copy(union.Data[(len(a)+i)*d:(len(a)+i+1)*d], p.Featurize(sch))
	}
	pca := mathx.FitPCA(union, k)
	proj := pca.ProjectAll(union)

	// Per-dimension quantization ranges from the union.
	mins := make([]float64, k)
	maxs := make([]float64, k)
	for j := 0; j < k; j++ {
		mins[j], maxs[j] = math.Inf(1), math.Inf(-1)
	}
	for i := 0; i < proj.Rows; i++ {
		row := proj.Row(i)
		for j := 0; j < k; j++ {
			if row[j] < mins[j] {
				mins[j] = row[j]
			}
			if row[j] > maxs[j] {
				maxs[j] = row[j]
			}
		}
	}
	buckets := 1
	for j := 0; j < k; j++ {
		buckets *= cfg.M
	}
	ha := mathx.NewHistogram(buckets)
	hb := mathx.NewHistogram(buckets)
	for i := 0; i < proj.Rows; i++ {
		id := bucketID(proj.Row(i), mins, maxs, cfg.M)
		if i < len(a) {
			ha.AddBucket(id)
		} else {
			hb.AddBucket(id)
		}
	}
	return mathx.JSDivergence(ha.Normalized(), hb.Normalized())
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
		if out > 1<<30 {
			return 1 << 30
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bucketID maps a k-dim point to a base-m composite bucket index.
func bucketID(row mathx.Vector, mins, maxs []float64, m int) int {
	id := 0
	for j := range row {
		span := maxs[j] - mins[j]
		bin := 0
		if span > 0 {
			bin = int((row[j] - mins[j]) / span * float64(m))
			if bin >= m {
				bin = m - 1
			}
			if bin < 0 {
				bin = 0
			}
		}
		id = id*m + bin
	}
	return id
}

// Canaries are probe predicates with remembered cardinalities: if their
// counts change on the live table, the data has drifted (§3.1 "measuring the
// change in ground truth cardinality for a few canary predicates").
type Canaries struct {
	preds []query.Predicate
	cards []float64
}

// NewCanaries draws n probe predicates from the given workload and records
// their current cardinalities. Annotation failures (a generator producing
// predicates outside the table's schema) surface as an error.
func NewCanaries(ctx context.Context, n int, gen workload.Generator, cnt Counter, rng *rand.Rand) (*Canaries, error) {
	c := &Canaries{}
	for i := 0; i < n; i++ {
		p := gen.Gen(rng)
		card, err := cnt.Count(ctx, p)
		if err != nil {
			return nil, err
		}
		c.preds = append(c.preds, p)
		c.cards = append(c.cards, card)
	}
	return c, nil
}

// MaxRelChange re-evaluates every canary and returns the largest relative
// cardinality change.
func (c *Canaries) MaxRelChange(ctx context.Context, cnt Counter) (float64, error) {
	var worst float64
	for i, p := range c.preds {
		now, err := cnt.Count(ctx, p)
		if err != nil {
			return 0, err
		}
		base := math.Max(c.cards[i], 1)
		rel := math.Abs(now-c.cards[i]) / base
		if rel > worst {
			worst = rel
		}
	}
	return worst, nil
}

// Rebase re-records current cardinalities (after the model has adapted to a
// data drift).
func (c *Canaries) Rebase(ctx context.Context, cnt Counter) error {
	for i, p := range c.preds {
		card, err := cnt.Count(ctx, p)
		if err != nil {
			return err
		}
		c.cards[i] = card
	}
	return nil
}

// Len returns the number of canary predicates.
func (c *Canaries) Len() int { return len(c.preds) }

// DataTelemetry combines the two §3.1 data-drift signals into one detector.
type DataTelemetry struct {
	Canaries *Canaries
	// ChangedRowThreshold triggers on Table.ChangedFraction (default 0.05).
	ChangedRowThreshold float64
	// CanaryThreshold triggers on canary relative change (default 0.10).
	CanaryThreshold float64
}

// Detect reports whether the table has drifted since the last reset/rebase.
func (d *DataTelemetry) Detect(ctx context.Context, changedFraction float64, cnt Counter) (bool, error) {
	rowThr := d.ChangedRowThreshold
	if rowThr <= 0 {
		rowThr = 0.05
	}
	if changedFraction >= rowThr {
		return true, nil
	}
	canThr := d.CanaryThreshold
	if canThr <= 0 {
		canThr = 0.10
	}
	if d.Canaries == nil {
		return false, nil
	}
	rel, err := d.Canaries.MaxRelChange(ctx, cnt)
	if err != nil {
		return false, err
	}
	return rel >= canThr, nil
}
