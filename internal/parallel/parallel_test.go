package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		SetWorkers(workers)
		t.Cleanup(func() { SetWorkers(0) })
		for _, n := range []int{0, 1, 3, 64, 1000} {
			counts := make([]int32, n)
			For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: item %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	SetWorkers(4)
	t.Cleanup(func() { SetWorkers(0) })
	var total atomic.Int64
	For(8, func(i int) {
		For(8, func(j int) { total.Add(1) })
	})
	if got := total.Load(); got != 64 {
		t.Fatalf("nested For ran %d inner items, want 64", got)
	}
}

func TestRunnerCoversEveryItemAcrossCycles(t *testing.T) {
	for _, workers := range []int{1, 3} {
		SetWorkers(workers)
		t.Cleanup(func() { SetWorkers(0) })
		var counts []int32
		r := NewRunner(func(i int) { atomic.AddInt32(&counts[i], 1) })
		// Growing and shrinking cycle sizes exercise the cross-cycle
		// counter-reset path.
		for _, n := range []int{4, 16, 2, 9, 16} {
			counts = make([]int32, n)
			r.Run(n)
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: item %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestRunnerZeroAllocsSteadyState(t *testing.T) {
	SetWorkers(2)
	t.Cleanup(func() { SetWorkers(0) })
	var sink atomic.Int64
	r := NewRunner(func(i int) { sink.Add(int64(i)) })
	r.Run(8) // warm the pool
	avg := testing.AllocsPerRun(100, func() { r.Run(8) })
	if avg != 0 {
		t.Errorf("Runner.Run allocates %v per cycle, want 0", avg)
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(-5)
	if Workers() < 1 {
		t.Errorf("Workers() = %d after reset, want >= 1", Workers())
	}
}
