// Package parallel is the compute-core scheduling layer shared by the
// numeric packages (nn, gbt, kernel). It provides a persistent worker pool
// with allocation-free dispatch, so steady-state training loops can fan
// work out across CPUs without churning the garbage collector, plus a
// process-wide worker-count override used by the determinism tests to pin
// the pool to an arbitrary width.
//
// Determinism contract: the pool schedules work items in an arbitrary
// order, so callers must make every item independent — disjoint output
// ranges, per-item scratch — and perform any floating-point reduction
// themselves in a fixed item order after Wait returns. Under that contract
// results are byte-identical at any worker count, which is what the chaos
// tests and the nondeterminism lint rule rely on.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// task is one unit of work flowing through the pool. Tasks travel by value
// through a buffered channel, so dispatch allocates nothing.
type task struct {
	fn func(int)
	i  int
	wg *sync.WaitGroup
}

var (
	// workerOverride, when > 0, caps the number of items run concurrently.
	// 1 forces fully inline serial execution.
	workerOverride atomic.Int64

	poolOnce  sync.Once
	poolTasks chan task
)

// Workers reports the effective worker count: the override when set,
// otherwise GOMAXPROCS.
func Workers() int {
	if w := workerOverride.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker count; n <= 0 restores the GOMAXPROCS
// default. It exists for tests and benchmarks that pin the trainer to a
// specific width; results are identical at any setting by construction.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
}

// startPool lazily starts the process-wide worker goroutines. The pool is
// sized to the machine (not the override): the override only gates whether
// callers dispatch to it at all, so shrinking it never requires stopping
// goroutines.
func startPool() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 1 {
			n = 1
		}
		poolTasks = make(chan task, 4*n+16)
		for i := 0; i < n; i++ {
			go func() {
				for t := range poolTasks {
					t.fn(t.i)
					if t.wg != nil {
						t.wg.Done()
					}
				}
			}()
		}
	})
}

// Runner repeatedly fans a fixed worker function out over item ranges with
// zero allocations per cycle: the drain closure is built once, helpers are
// enqueued by value, and completion is tracked per item. It is built once
// per scratch arena and reused for every training step.
//
// A Runner must not have two Run calls in flight at once, and fn must treat
// items as independent (disjoint outputs; caller reduces in fixed order).
type Runner struct {
	fn      func(int)
	n       atomic.Int64
	next    atomic.Int64
	helpers sync.WaitGroup
	drain   func(int)
}

// NewRunner builds a Runner around fn. The per-cycle item count is passed
// to Run; fn(i) is invoked for i in [0, n).
func NewRunner(fn func(int)) *Runner {
	r := &Runner{fn: fn}
	r.drain = func(int) {
		for {
			i := r.next.Add(1)
			if i >= r.n.Load() {
				return
			}
			r.fn(int(i))
		}
	}
	return r
}

// Run executes fn(i) for i in [0, n), inline when the pool is pinned to one
// worker (or n == 1), otherwise across the pool with the calling goroutine
// participating. Helper dispatch never blocks, so Run cannot deadlock even
// on a saturated pool — the caller then drains every item itself. Run waits
// for its helpers before returning, so no helper ever observes a later
// cycle's counters.
func (r *Runner) Run(n int) {
	if n <= 0 {
		return
	}
	if n == 1 || Workers() == 1 {
		for i := 0; i < n; i++ {
			r.fn(i)
		}
		return
	}
	startPool()
	r.n.Store(int64(n))
	r.next.Store(-1)
	helpers := Workers() - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	for w := 0; w < helpers; w++ {
		r.helpers.Add(1)
		select {
		case poolTasks <- task{fn: r.drain, wg: &r.helpers}:
		default:
			r.helpers.Done()
		}
	}
	r.drain(0)
	r.helpers.Wait()
}

// For runs fn(i) for i in [0, n) across the pool and waits for completion.
// It is the convenience entry point for coarse-grained loops (per-feature
// split scans, Gram-matrix rows); it allocates a closure per call, so hot
// loops that must stay allocation-free should hold a Group and a persistent
// closure instead.
//
// The calling goroutine participates in draining the work items, and helper
// dispatch never blocks, so For cannot deadlock even when every pool worker
// is busy (including the nested case of a For inside a pool task — the
// caller just runs every item itself).
func For(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if n == 1 || Workers() == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	startPool()
	var items sync.WaitGroup
	items.Add(n)
	var next atomic.Int64
	next.Store(-1)
	drain := func(int) {
		for {
			i := int(next.Add(1))
			if i >= n {
				return
			}
			fn(i)
			items.Done()
		}
	}
	helpers := Workers() - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	for w := 0; w < helpers; w++ {
		// Best-effort enqueue: a full queue means the pool is saturated and
		// the caller will drain the items itself. A helper that runs after
		// the items are gone exits immediately.
		select {
		case poolTasks <- task{fn: drain}:
		default:
		}
	}
	drain(0)
	items.Wait()
}
