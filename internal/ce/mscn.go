package ce

import (
	"fmt"
	"math/rand"

	"warper/internal/nn"
	"warper/internal/query"
)

// Catalog describes the tables and the key–foreign-key join graph an MSCN
// model can see; it fixes the featurization (table one-hots, join one-hots,
// padded per-table predicate features).
type Catalog struct {
	Order   []string
	Schemas map[string]*query.Schema
	Joins   []query.JoinCond
	maxCols int
}

// NewCatalog builds a catalog over the given schemas (ordered as passed).
func NewCatalog(schemas ...*query.Schema) *Catalog {
	c := &Catalog{Schemas: make(map[string]*query.Schema, len(schemas))}
	for _, s := range schemas {
		c.Order = append(c.Order, s.Table)
		c.Schemas[s.Table] = s
		if s.NumCols() > c.maxCols {
			c.maxCols = s.NumCols()
		}
	}
	return c
}

// AddJoin registers a joinable edge in the catalog.
func (c *Catalog) AddJoin(lt, lc, rt, rc string) *Catalog {
	c.Joins = append(c.Joins, query.JoinCond{LeftTable: lt, LeftCol: lc, RightTable: rt, RightCol: rc})
	return c
}

// tableIndex returns the position of a table in the catalog order, or -1.
func (c *Catalog) tableIndex(name string) int {
	for i, t := range c.Order {
		if t == name {
			return i
		}
	}
	return -1
}

// joinIndex matches a join condition against the catalog (either
// orientation), or -1.
func (c *Catalog) joinIndex(jc query.JoinCond) int {
	for i, k := range c.Joins {
		if k == jc {
			return i
		}
		if k.LeftTable == jc.RightTable && k.LeftCol == jc.RightCol &&
			k.RightTable == jc.LeftTable && k.RightCol == jc.LeftCol {
			return i
		}
	}
	return -1
}

// tableFeatDim is the width of one table-set element: a table one-hot plus
// the padded predicate featurization.
func (c *Catalog) tableFeatDim() int { return len(c.Order) + 2*c.maxCols }

// MSCN training-schedule constants (§4.1: batch 32, lr 1e-3).
const (
	mscnHidden         = 32
	mscnTrainEpochs    = 40
	mscnFinetuneEpochs = 8
	mscnBatch          = 32
	mscnRate           = 1e-3
)

// MSCN is a simplified multi-set convolutional network: a per-table MLP
// pooled by averaging, an optional per-join MLP pooled the same way, and an
// output MLP over the concatenated pooled vectors, predicting
// log-cardinality. For single-table use the join branch is dropped,
// matching the paper's "simplified version ... removing the join condition
// and bitmap inputs".
type MSCN struct {
	Catalog *Catalog

	tableNet *nn.Network
	joinNet  *nn.Network // nil when the catalog has no joins
	outNet   *nn.Network
	rng      *rand.Rand
}

// NewMSCN builds an untrained MSCN over a catalog.
func NewMSCN(c *Catalog, seed int64) *MSCN {
	rng := rand.New(rand.NewSource(seed))
	m := &MSCN{Catalog: c, rng: rng}
	m.initNets()
	return m
}

func (m *MSCN) initNets() {
	c := m.Catalog
	m.tableNet = nn.MLP(c.tableFeatDim(), mscnHidden, 1, mscnHidden, m.rng)
	outIn := mscnHidden
	if len(c.Joins) > 0 {
		m.joinNet = nn.MLP(len(c.Joins), mscnHidden, 1, mscnHidden, m.rng)
		outIn += mscnHidden
	}
	m.outNet = nn.MLP(outIn, mscnHidden, 1, 1, m.rng)
}

// featurize builds the set elements for a join query. Queries outside the
// catalog (unknown table, unregistered join) are reported as errors: they
// reach this point from live traffic, so they must not kill the process.
func (m *MSCN) featurize(q *query.JoinQuery) (tables, joins [][]float64, err error) {
	c := m.Catalog
	for _, name := range q.Tables {
		ti := c.tableIndex(name)
		if ti < 0 {
			return nil, nil, fmt.Errorf("ce: mscn query references unknown table %q", name)
		}
		s := c.Schemas[name]
		f := make([]float64, c.tableFeatDim())
		f[ti] = 1
		pred, ok := q.Preds[name]
		if !ok {
			pred = query.NewFullRange(s)
		}
		pf := pred.Featurize(s)
		d := s.NumCols()
		// Pack lows then highs into the padded region.
		copy(f[len(c.Order):len(c.Order)+d], pf[:d])
		copy(f[len(c.Order)+c.maxCols:len(c.Order)+c.maxCols+d], pf[d:])
		tables = append(tables, f)
	}
	for _, jc := range q.Joins {
		ji := c.joinIndex(jc)
		if ji < 0 {
			return nil, nil, fmt.Errorf("ce: mscn query uses unregistered join %s.%s=%s.%s",
				jc.LeftTable, jc.LeftCol, jc.RightTable, jc.RightCol)
		}
		f := make([]float64, len(c.Joins))
		f[ji] = 1
		joins = append(joins, f)
	}
	return tables, joins, nil
}

// mscnBatchCtx carries the flattened set elements and per-query offsets of
// one batched pass: query r owns table-element rows [tOff[r], tOff[r+1]) and
// join-element rows [jOff[r], jOff[r+1]) of the flattened matrices. Backward
// needs the offsets to scatter pooled gradients back per element.
type mscnBatchCtx struct {
	nT, nJ     int
	tOff, jOff []int
	oin        nn.Mat
}

// batchedForward runs a whole slice of queries through the model with three
// batched passes (table branch, join branch, output MLP) instead of one
// network call per set element. Every query's set elements are flattened
// into shared matrices, pooled per query, and fed to the output net as one
// minibatch. Per-row results are byte-identical to the per-query forward:
// the batched kernels reproduce Forward exactly and the pooling loop
// accumulates and divides in the same order.
func (m *MSCN) batchedForward(qs []*query.JoinQuery) (nn.Mat, *mscnBatchCtx, error) {
	b := len(qs)
	c := m.Catalog
	ctx := &mscnBatchCtx{tOff: make([]int, b+1), jOff: make([]int, b+1)}
	var tRows, jRows [][]float64
	for r, q := range qs {
		tables, joins, err := m.featurize(q)
		if err != nil {
			return nn.Mat{}, nil, err
		}
		tRows = append(tRows, tables...)
		jRows = append(jRows, joins...)
		ctx.tOff[r+1] = len(tRows)
		ctx.jOff[r+1] = len(jRows)
	}
	ctx.nT, ctx.nJ = len(tRows), len(jRows)
	width := mscnHidden
	if m.joinNet != nil {
		width = 2 * mscnHidden
	}
	ctx.oin = nn.NewMat(b, width)
	if len(tRows) > 0 {
		tm := nn.NewMat(len(tRows), c.tableFeatDim())
		tm.CopyFromRows(tRows)
		poolMean(m.tableNet.BatchForward(tm), ctx.tOff, ctx.oin, 0)
	}
	if m.joinNet != nil && len(jRows) > 0 {
		jm := nn.NewMat(len(jRows), len(c.Joins))
		jm.CopyFromRows(jRows)
		poolMean(m.joinNet.BatchForward(jm), ctx.jOff, ctx.oin, mscnHidden)
	}
	return m.outNet.BatchForward(ctx.oin), ctx, nil
}

// poolMean writes the average of element rows [off[r], off[r+1]) into
// dst.Row(r)[col:col+elem.Cols] for every query r. Queries with no elements
// keep the zero vector (matching the per-query forward).
func poolMean(elem nn.Mat, off []int, dst nn.Mat, col int) {
	for r := 0; r+1 < len(off); r++ {
		lo, hi := off[r], off[r+1]
		if hi == lo {
			continue
		}
		row := dst.Row(r)[col : col+elem.Cols]
		for e := lo; e < hi; e++ {
			for i, v := range elem.Row(e) {
				row[i] += v
			}
		}
		n := float64(hi - lo)
		for i := range row {
			row[i] /= n
		}
	}
}

// scatterMean distributes the pooled gradient gIn.Row(r)[col:col+H] over the
// element rows [off[r], off[r+1]): mean pooling means each element receives
// g/n.
func scatterMean(gIn nn.Mat, off []int, dst nn.Mat, col int) {
	for r := 0; r+1 < len(off); r++ {
		lo, hi := off[r], off[r+1]
		if hi == lo {
			continue
		}
		n := float64(hi - lo)
		src := gIn.Row(r)[col:]
		for e := lo; e < hi; e++ {
			row := dst.Row(e)
			for i := range row {
				row[i] = src[i] / n
			}
		}
	}
}

// forward computes the model output for a single query (the point-estimate
// path behind EstimateJoin).
func (m *MSCN) forward(q *query.JoinQuery) (float64, error) {
	preds, _, err := m.batchedForward([]*query.JoinQuery{q})
	if err != nil {
		return 0, err
	}
	return preds.Row(0)[0], nil
}

// trainMinibatch runs one batched gradient step: batched forwards, the MSE
// gradient at the output, and batched backwards that scatter each query's
// pooled gradient over its set elements. This replaces the old per-element
// Forward/Backward loop (which had to re-run Forward per element just to
// refresh layer caches before each Backward).
func (m *MSCN) trainMinibatch(qs []*query.JoinQuery, targets []float64, opt nn.Optimizer) error {
	preds, ctx, err := m.batchedForward(qs)
	if err != nil {
		return err
	}
	b := len(qs)
	gOut := nn.NewMat(b, 1)
	for r := 0; r < b; r++ {
		gOut.Row(r)[0] = preds.Row(r)[0] - targets[r] // d(½(p−t)²)/dp
	}
	m.zeroGrad()
	gIn := m.outNet.BatchBackward(gOut)
	if ctx.nT > 0 {
		gT := nn.NewMat(ctx.nT, mscnHidden)
		scatterMean(gIn, ctx.tOff, gT, 0)
		m.tableNet.BatchBackward(gT)
	}
	if m.joinNet != nil && ctx.nJ > 0 {
		gJ := nn.NewMat(ctx.nJ, mscnHidden)
		scatterMean(gIn, ctx.jOff, gJ, mscnHidden)
		m.joinNet.BatchBackward(gJ)
	}
	scale := 1 / float64(b)
	for _, p := range m.params() {
		for i := range p.G {
			p.G[i] *= scale
		}
	}
	opt.Step(m.params())
	return nil
}

func (m *MSCN) params() []*nn.Param {
	ps := append([]*nn.Param{}, m.tableNet.Params()...)
	if m.joinNet != nil {
		ps = append(ps, m.joinNet.Params()...)
	}
	return append(ps, m.outNet.Params()...)
}

func (m *MSCN) zeroGrad() {
	for _, p := range m.params() {
		p.ZeroGrad()
	}
}

// trainEpochs runs minibatch MSE training in log space. A query outside the
// catalog aborts the epoch loop with an error (the nets keep whatever state
// the completed batches left behind; callers keep serving a pre-update clone).
func (m *MSCN) trainEpochs(examples []query.LabeledJoin, epochs int) error {
	if len(examples) == 0 {
		return nil
	}
	opt := nn.NewAdam(mscnRate)
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	qs := make([]*query.JoinQuery, 0, mscnBatch)
	targets := make([]float64, 0, mscnBatch)
	for e := 0; e < epochs; e++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += mscnBatch {
			end := start + mscnBatch
			if end > len(idx) {
				end = len(idx)
			}
			qs, targets = qs[:0], targets[:0]
			for _, j := range idx[start:end] {
				qs = append(qs, examples[j].Query)
				targets = append(targets, cardToTarget(examples[j].Card))
			}
			if err := m.trainMinibatch(qs, targets, opt); err != nil {
				return err
			}
		}
		opt.EndEpoch()
	}
	return nil
}

// TrainJoin implements JoinEstimator: fresh weights, full epoch budget.
func (m *MSCN) TrainJoin(examples []query.LabeledJoin) error {
	m.initNets()
	return m.trainEpochs(examples, mscnTrainEpochs)
}

// UpdateJoin implements JoinEstimator: a few fine-tuning epochs.
func (m *MSCN) UpdateJoin(examples []query.LabeledJoin) error {
	return m.trainEpochs(examples, mscnFinetuneEpochs)
}

// EstimateJoin implements JoinEstimator.
func (m *MSCN) EstimateJoin(q *query.JoinQuery) (float64, error) {
	pred, err := m.forward(q)
	if err != nil {
		return 0, err
	}
	return targetToCard(pred), nil
}

// EstimateJoinAll implements BatchJoinEstimator: all queries are answered
// with three batched forward passes. Results are identical to calling
// EstimateJoin per query.
func (m *MSCN) EstimateJoinAll(qs []*query.JoinQuery, out []float64) error {
	if len(qs) != len(out) {
		return fmt.Errorf("ce: EstimateJoinAll got %d queries but %d outputs", len(qs), len(out))
	}
	if len(qs) == 0 {
		return nil
	}
	preds, _, err := m.batchedForward(qs)
	if err != nil {
		return err
	}
	for r := range out {
		out[r] = targetToCard(preds.Row(r)[0])
	}
	return nil
}

// singleTableQuery wraps a predicate on the catalog's only table.
func (m *MSCN) singleTableQuery(p query.Predicate) *query.JoinQuery {
	if len(m.Catalog.Order) != 1 {
		// API-misuse guard at the Estimator/JoinEstimator boundary: a
		// multi-table MSCN is never wired behind the single-table serving
		// path, so this cannot fire on live traffic.
		panic("ce: single-table MSCN API requires a one-table catalog") //lint:allow panicfree single-table API misuse guard
	}
	name := m.Catalog.Order[0]
	q := query.NewJoinQuery(name)
	q.SetPred(name, p)
	return q
}

func (m *MSCN) toJoinExamples(examples []query.Labeled) []query.LabeledJoin {
	out := make([]query.LabeledJoin, len(examples))
	for i, ex := range examples {
		out[i] = query.LabeledJoin{Query: m.singleTableQuery(ex.Pred), Card: ex.Card}
	}
	return out
}

// Train implements Estimator for the single-table configuration.
func (m *MSCN) Train(examples []query.Labeled) error {
	return m.TrainJoin(m.toJoinExamples(examples))
}

// Update implements Estimator for the single-table configuration.
func (m *MSCN) Update(examples []query.Labeled) error {
	return m.UpdateJoin(m.toJoinExamples(examples))
}

// Estimate implements Estimator for the single-table configuration.
//
//lint:allow hotpathalloc MSCN is the heavyweight configuration; the zero-alloc serving envelope covers the LM estimator
func (m *MSCN) Estimate(p query.Predicate) float64 {
	// singleTableQuery always produces an in-catalog query, so EstimateJoin
	// cannot fail here.
	est, _ := m.EstimateJoin(m.singleTableQuery(p))
	return est
}

// EstimateAll implements BatchEstimator for the single-table configuration.
//
//lint:allow hotpathalloc MSCN is the heavyweight configuration; the zero-alloc serving envelope covers the LM estimator
func (m *MSCN) EstimateAll(ps []query.Predicate, out []float64) {
	qs := make([]*query.JoinQuery, len(ps))
	for i := range ps {
		qs[i] = m.singleTableQuery(ps[i])
	}
	// singleTableQuery queries are always in-catalog, so the batched pass
	// cannot fail; fall back to per-query estimates defensively anyway.
	if err := m.EstimateJoinAll(qs, out); err != nil {
		for i := range ps {
			out[i] = m.Estimate(ps[i])
		}
	}
}

// Policy implements Estimator: MSCN fine-tunes (§4.1).
func (m *MSCN) Policy() UpdatePolicy { return FineTune }

// Name implements Estimator.
func (m *MSCN) Name() string { return "mscn" }

// Clone implements Estimator.
func (m *MSCN) Clone() Estimator {
	c := &MSCN{Catalog: m.Catalog, rng: rand.New(rand.NewSource(m.rng.Int63()))}
	c.tableNet = m.tableNet.Clone()
	if m.joinNet != nil {
		c.joinNet = m.joinNet.Clone()
	}
	c.outNet = m.outNet.Clone()
	return c
}
