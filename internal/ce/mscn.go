package ce

import (
	"fmt"
	"math/rand"

	"warper/internal/nn"
	"warper/internal/query"
)

// Catalog describes the tables and the key–foreign-key join graph an MSCN
// model can see; it fixes the featurization (table one-hots, join one-hots,
// padded per-table predicate features).
type Catalog struct {
	Order   []string
	Schemas map[string]*query.Schema
	Joins   []query.JoinCond
	maxCols int
}

// NewCatalog builds a catalog over the given schemas (ordered as passed).
func NewCatalog(schemas ...*query.Schema) *Catalog {
	c := &Catalog{Schemas: make(map[string]*query.Schema, len(schemas))}
	for _, s := range schemas {
		c.Order = append(c.Order, s.Table)
		c.Schemas[s.Table] = s
		if s.NumCols() > c.maxCols {
			c.maxCols = s.NumCols()
		}
	}
	return c
}

// AddJoin registers a joinable edge in the catalog.
func (c *Catalog) AddJoin(lt, lc, rt, rc string) *Catalog {
	c.Joins = append(c.Joins, query.JoinCond{LeftTable: lt, LeftCol: lc, RightTable: rt, RightCol: rc})
	return c
}

// tableIndex returns the position of a table in the catalog order, or -1.
func (c *Catalog) tableIndex(name string) int {
	for i, t := range c.Order {
		if t == name {
			return i
		}
	}
	return -1
}

// joinIndex matches a join condition against the catalog (either
// orientation), or -1.
func (c *Catalog) joinIndex(jc query.JoinCond) int {
	for i, k := range c.Joins {
		if k == jc {
			return i
		}
		if k.LeftTable == jc.RightTable && k.LeftCol == jc.RightCol &&
			k.RightTable == jc.LeftTable && k.RightCol == jc.LeftCol {
			return i
		}
	}
	return -1
}

// tableFeatDim is the width of one table-set element: a table one-hot plus
// the padded predicate featurization.
func (c *Catalog) tableFeatDim() int { return len(c.Order) + 2*c.maxCols }

// MSCN training-schedule constants (§4.1: batch 32, lr 1e-3).
const (
	mscnHidden         = 32
	mscnTrainEpochs    = 40
	mscnFinetuneEpochs = 8
	mscnBatch          = 32
	mscnRate           = 1e-3
)

// MSCN is a simplified multi-set convolutional network: a per-table MLP
// pooled by averaging, an optional per-join MLP pooled the same way, and an
// output MLP over the concatenated pooled vectors, predicting
// log-cardinality. For single-table use the join branch is dropped,
// matching the paper's "simplified version ... removing the join condition
// and bitmap inputs".
type MSCN struct {
	Catalog *Catalog

	tableNet *nn.Network
	joinNet  *nn.Network // nil when the catalog has no joins
	outNet   *nn.Network
	rng      *rand.Rand
}

// NewMSCN builds an untrained MSCN over a catalog.
func NewMSCN(c *Catalog, seed int64) *MSCN {
	rng := rand.New(rand.NewSource(seed))
	m := &MSCN{Catalog: c, rng: rng}
	m.initNets()
	return m
}

func (m *MSCN) initNets() {
	c := m.Catalog
	m.tableNet = nn.MLP(c.tableFeatDim(), mscnHidden, 1, mscnHidden, m.rng)
	outIn := mscnHidden
	if len(c.Joins) > 0 {
		m.joinNet = nn.MLP(len(c.Joins), mscnHidden, 1, mscnHidden, m.rng)
		outIn += mscnHidden
	}
	m.outNet = nn.MLP(outIn, mscnHidden, 1, 1, m.rng)
}

// featurize builds the set elements for a join query. Queries outside the
// catalog (unknown table, unregistered join) are reported as errors: they
// reach this point from live traffic, so they must not kill the process.
func (m *MSCN) featurize(q *query.JoinQuery) (tables, joins [][]float64, err error) {
	c := m.Catalog
	for _, name := range q.Tables {
		ti := c.tableIndex(name)
		if ti < 0 {
			return nil, nil, fmt.Errorf("ce: mscn query references unknown table %q", name)
		}
		s := c.Schemas[name]
		f := make([]float64, c.tableFeatDim())
		f[ti] = 1
		pred, ok := q.Preds[name]
		if !ok {
			pred = query.NewFullRange(s)
		}
		pf := pred.Featurize(s)
		d := s.NumCols()
		// Pack lows then highs into the padded region.
		copy(f[len(c.Order):len(c.Order)+d], pf[:d])
		copy(f[len(c.Order)+c.maxCols:len(c.Order)+c.maxCols+d], pf[d:])
		tables = append(tables, f)
	}
	for _, jc := range q.Joins {
		ji := c.joinIndex(jc)
		if ji < 0 {
			return nil, nil, fmt.Errorf("ce: mscn query uses unregistered join %s.%s=%s.%s",
				jc.LeftTable, jc.LeftCol, jc.RightTable, jc.RightCol)
		}
		f := make([]float64, len(c.Joins))
		f[ji] = 1
		joins = append(joins, f)
	}
	return tables, joins, nil
}

type mscnCache struct {
	tables [][]float64
	joins  [][]float64
	outIn  []float64
}

// forward computes the model output for a query, returning the intermediate
// inputs needed by backward.
func (m *MSCN) forward(q *query.JoinQuery) (float64, *mscnCache, error) {
	tables, joins, err := m.featurize(q)
	if err != nil {
		return 0, nil, err
	}
	pooledT := make([]float64, mscnHidden)
	for _, f := range tables {
		out := m.tableNet.Forward(f)
		for i, v := range out {
			pooledT[i] += v
		}
	}
	if n := float64(len(tables)); n > 0 {
		for i := range pooledT {
			pooledT[i] /= n
		}
	}
	outIn := pooledT
	if m.joinNet != nil {
		pooledJ := make([]float64, mscnHidden)
		for _, f := range joins {
			out := m.joinNet.Forward(f)
			for i, v := range out {
				pooledJ[i] += v
			}
		}
		if n := float64(len(joins)); n > 0 {
			for i := range pooledJ {
				pooledJ[i] /= n
			}
		}
		outIn = append(append(make([]float64, 0, 2*mscnHidden), pooledT...), pooledJ...)
	}
	pred := m.outNet.Forward(outIn)[0]
	return pred, &mscnCache{tables: tables, joins: joins, outIn: outIn}, nil
}

// backward accumulates gradients for one example given dLoss/dPred.
func (m *MSCN) backward(grad float64, cache *mscnCache) {
	// outNet caches are fresh from forward (one example at a time).
	gIn := m.outNet.Backward([]float64{grad})
	gT := gIn[:mscnHidden]
	if n := float64(len(cache.tables)); n > 0 {
		for _, f := range cache.tables {
			m.tableNet.Forward(f) // refresh per-layer caches for this element
			scaled := make([]float64, mscnHidden)
			for i, g := range gT {
				scaled[i] = g / n
			}
			m.tableNet.Backward(scaled)
		}
	}
	if m.joinNet != nil && len(cache.joins) > 0 {
		gJ := gIn[mscnHidden:]
		n := float64(len(cache.joins))
		for _, f := range cache.joins {
			m.joinNet.Forward(f)
			scaled := make([]float64, mscnHidden)
			for i, g := range gJ {
				scaled[i] = g / n
			}
			m.joinNet.Backward(scaled)
		}
	}
}

func (m *MSCN) params() []*nn.Param {
	ps := append([]*nn.Param{}, m.tableNet.Params()...)
	if m.joinNet != nil {
		ps = append(ps, m.joinNet.Params()...)
	}
	return append(ps, m.outNet.Params()...)
}

func (m *MSCN) zeroGrad() {
	for _, p := range m.params() {
		p.ZeroGrad()
	}
}

// trainEpochs runs minibatch MSE training in log space. A query outside the
// catalog aborts the epoch loop with an error (the nets keep whatever state
// the completed batches left behind; callers keep serving a pre-update clone).
func (m *MSCN) trainEpochs(examples []query.LabeledJoin, epochs int) error {
	if len(examples) == 0 {
		return nil
	}
	opt := nn.NewAdam(mscnRate)
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += mscnBatch {
			end := start + mscnBatch
			if end > len(idx) {
				end = len(idx)
			}
			m.zeroGrad()
			for _, j := range idx[start:end] {
				ex := examples[j]
				pred, cache, err := m.forward(ex.Query)
				if err != nil {
					return err
				}
				target := cardToTarget(ex.Card)
				m.backward(pred-target, cache) // d(½(p−t)²)/dp
			}
			scale := 1 / float64(end-start)
			for _, p := range m.params() {
				for i := range p.G {
					p.G[i] *= scale
				}
			}
			opt.Step(m.params())
		}
		opt.EndEpoch()
	}
	return nil
}

// TrainJoin implements JoinEstimator: fresh weights, full epoch budget.
func (m *MSCN) TrainJoin(examples []query.LabeledJoin) error {
	m.initNets()
	return m.trainEpochs(examples, mscnTrainEpochs)
}

// UpdateJoin implements JoinEstimator: a few fine-tuning epochs.
func (m *MSCN) UpdateJoin(examples []query.LabeledJoin) error {
	return m.trainEpochs(examples, mscnFinetuneEpochs)
}

// EstimateJoin implements JoinEstimator.
func (m *MSCN) EstimateJoin(q *query.JoinQuery) (float64, error) {
	pred, _, err := m.forward(q)
	if err != nil {
		return 0, err
	}
	return targetToCard(pred), nil
}

// singleTableQuery wraps a predicate on the catalog's only table.
func (m *MSCN) singleTableQuery(p query.Predicate) *query.JoinQuery {
	if len(m.Catalog.Order) != 1 {
		// API-misuse guard at the Estimator/JoinEstimator boundary: a
		// multi-table MSCN is never wired behind the single-table serving
		// path, so this cannot fire on live traffic.
		panic("ce: single-table MSCN API requires a one-table catalog") //lint:allow panicfree single-table API misuse guard
	}
	name := m.Catalog.Order[0]
	q := query.NewJoinQuery(name)
	q.SetPred(name, p)
	return q
}

func (m *MSCN) toJoinExamples(examples []query.Labeled) []query.LabeledJoin {
	out := make([]query.LabeledJoin, len(examples))
	for i, ex := range examples {
		out[i] = query.LabeledJoin{Query: m.singleTableQuery(ex.Pred), Card: ex.Card}
	}
	return out
}

// Train implements Estimator for the single-table configuration.
func (m *MSCN) Train(examples []query.Labeled) error {
	return m.TrainJoin(m.toJoinExamples(examples))
}

// Update implements Estimator for the single-table configuration.
func (m *MSCN) Update(examples []query.Labeled) error {
	return m.UpdateJoin(m.toJoinExamples(examples))
}

// Estimate implements Estimator for the single-table configuration.
func (m *MSCN) Estimate(p query.Predicate) float64 {
	// singleTableQuery always produces an in-catalog query, so EstimateJoin
	// cannot fail here.
	est, _ := m.EstimateJoin(m.singleTableQuery(p))
	return est
}

// Policy implements Estimator: MSCN fine-tunes (§4.1).
func (m *MSCN) Policy() UpdatePolicy { return FineTune }

// Name implements Estimator.
func (m *MSCN) Name() string { return "mscn" }

// Clone implements Estimator.
func (m *MSCN) Clone() Estimator {
	c := &MSCN{Catalog: m.Catalog, rng: rand.New(rand.NewSource(m.rng.Int63()))}
	c.tableNet = m.tableNet.Clone()
	if m.joinNet != nil {
		c.joinNet = m.joinNet.Clone()
	}
	c.outNet = m.outNet.Clone()
	return c
}
