package ce

import (
	"testing"

	"warper/internal/query"
)

// Re-train-backed LM variants share the immutable fitted model across
// clones; a re-fit must replace the original's pointer without touching
// clones.
func TestRetrainBackendCloneIsolation(t *testing.T) {
	_, sch, train, test := fixture(t, 300, 60)
	for _, v := range []LMVariant{LMGBT, LMPly, LMRBF} {
		lm := NewLM(v, sch, 51)
		lm.Train(train)
		clone := lm.Clone()
		before := EvalGMQ(clone, test)
		// Re-train the original on a skewed subset; the clone must not move.
		lm.Update(train[:50])
		after := EvalGMQ(clone, test)
		if before != after {
			t.Errorf("%s: clone changed after original re-trained: %v -> %v", v, before, after)
		}
		// And the original must have actually changed.
		if got := EvalGMQ(lm, test); got == before {
			t.Logf("%s: original unchanged after Update (possible but unusual)", v)
		}
	}
}

func TestMSCNCloneIsolation(t *testing.T) {
	_, sch, train, test := fixture(t, 300, 60)
	m := NewMSCN(NewCatalog(sch), 52)
	m.Train(train)
	clone := m.Clone()
	before := EvalGMQ(clone, test)
	m.Update(train[:50])
	if after := EvalGMQ(clone, test); after != before {
		t.Error("MSCN clone shares weights with original")
	}
}

// TestCloneIntoEstimateIdentical pins the InPlaceCloner contract for every
// LM variant: after CloneInto, the destination answers bit-identically to
// the source, including on the batched path.
func TestCloneIntoEstimateIdentical(t *testing.T) {
	_, sch, train, test := fixture(t, 250, 40)
	for _, v := range []LMVariant{LMMLP, LMGBT, LMPly, LMRBF} {
		src := NewLM(v, sch, 11)
		dst := NewLM(v, sch, 12)
		trainOK(t, src, train)
		trainOK(t, dst, train[:150]) // different weights than src
		if !src.CloneInto(dst) {
			t.Fatalf("%s: CloneInto refused matching shapes", v)
		}
		preds := make([]query.Predicate, len(test))
		for i, l := range test {
			preds[i] = l.Pred
		}
		out := make([]float64, len(preds))
		dst.EstimateAll(preds, out)
		for i, p := range preds {
			want := src.Estimate(p)
			if got := dst.Estimate(p); got != want {
				t.Fatalf("%s: dst.Estimate = %v, src = %v", v, got, want)
			}
			if out[i] != want {
				t.Fatalf("%s: dst.EstimateAll[%d] = %v, src = %v", v, i, out[i], want)
			}
		}
	}
}

// TestCloneIntoIsolation checks that CloneInto severs all mutable state:
// updating the source afterwards must not move the destination's answers.
func TestCloneIntoIsolation(t *testing.T) {
	_, sch, train, test := fixture(t, 250, 40)
	src := NewLM(LMMLP, sch, 13)
	dst := NewLM(LMMLP, sch, 14)
	trainOK(t, src, train)
	trainOK(t, dst, train[:150])
	if !src.CloneInto(dst) {
		t.Fatal("CloneInto refused matching shapes")
	}
	before := EvalGMQ(dst, test)
	updateOK(t, src, train[:100])
	if after := EvalGMQ(dst, test); after != before {
		t.Errorf("destination moved with the source: before=%v after=%v", before, after)
	}
}

// TestCloneIntoRejectsMismatch checks the fallback seam: incompatible
// destinations are refused so callers fall back to a full Clone.
func TestCloneIntoRejectsMismatch(t *testing.T) {
	_, sch, train, _ := fixture(t, 250, 1)
	src := NewLM(LMMLP, sch, 15)
	trainOK(t, src, train)

	other := NewLM(LMGBT, sch, 16)
	trainOK(t, other, train[:150])
	if src.CloneInto(other) {
		t.Error("CloneInto accepted a different variant")
	}
	if src.CloneInto(src) {
		t.Error("CloneInto accepted the receiver itself")
	}
	// A destination built on a different schema object is refused even if
	// the shapes happen to agree: normalization state could differ.
	_, sch2, _, _ := fixture(t, 1, 1)
	foreign := NewLM(LMMLP, sch2, 17)
	if src.CloneInto(foreign) {
		t.Error("CloneInto accepted a destination on a different schema")
	}
}

func TestUpdatePolicyString(t *testing.T) {
	if FineTune.String() != "fine-tune" || Retrain.String() != "re-train" {
		t.Error("policy strings wrong")
	}
}
