package ce

import (
	"testing"
)

// Re-train-backed LM variants share the immutable fitted model across
// clones; a re-fit must replace the original's pointer without touching
// clones.
func TestRetrainBackendCloneIsolation(t *testing.T) {
	_, sch, train, test := fixture(t, 300, 60)
	for _, v := range []LMVariant{LMGBT, LMPly, LMRBF} {
		lm := NewLM(v, sch, 51)
		lm.Train(train)
		clone := lm.Clone()
		before := EvalGMQ(clone, test)
		// Re-train the original on a skewed subset; the clone must not move.
		lm.Update(train[:50])
		after := EvalGMQ(clone, test)
		if before != after {
			t.Errorf("%s: clone changed after original re-trained: %v -> %v", v, before, after)
		}
		// And the original must have actually changed.
		if got := EvalGMQ(lm, test); got == before {
			t.Logf("%s: original unchanged after Update (possible but unusual)", v)
		}
	}
}

func TestMSCNCloneIsolation(t *testing.T) {
	_, sch, train, test := fixture(t, 300, 60)
	m := NewMSCN(NewCatalog(sch), 52)
	m.Train(train)
	clone := m.Clone()
	before := EvalGMQ(clone, test)
	m.Update(train[:50])
	if after := EvalGMQ(clone, test); after != before {
		t.Error("MSCN clone shares weights with original")
	}
}

func TestUpdatePolicyString(t *testing.T) {
	if FineTune.String() != "fine-tune" || Retrain.String() != "re-train" {
		t.Error("policy strings wrong")
	}
}
