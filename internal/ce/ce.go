// Package ce implements the learned cardinality-estimation models that
// Warper adapts: the LM family (Dutt et al., VLDB'19) with MLP, gradient-
// boosted-tree, polynomial-kernel and RBF-kernel regression backends, and a
// simplified MSCN (Kipf et al., CIDR'19) set model covering both single-table
// and join cardinalities.
//
// Warper treats these models as black boxes behind the Estimator interface:
// it only estimates, evaluates and updates — never inspects structure —
// matching the paper's model-agnosticism requirement (§3.2).
package ce

import (
	"math"

	"warper/internal/metrics"
	"warper/internal/query"
)

// UpdatePolicy distinguishes how a model incorporates new labeled queries.
type UpdatePolicy int

// Update policies (§3.2: "neural networks are iteratively trained and can be
// fine-tuned but tree-based models usually need to be re-trained").
const (
	FineTune UpdatePolicy = iota
	Retrain
)

// String returns the policy name.
func (p UpdatePolicy) String() string {
	if p == FineTune {
		return "fine-tune"
	}
	return "re-train"
}

// Estimator is the black-box CE model 𝕄: any function that emits a
// cardinality for a predicate and can update itself with labeled predicates.
//
// Train and Update return an error instead of panicking when a backend
// cannot produce a model (e.g. a kernel solve fails): a failed repair must
// leave the caller free to keep serving the previous model (§6.4
// robustness). An estimator whose Update returned an error may be in a
// partially updated state; callers should discard it in favor of a clone
// taken before the update.
type Estimator interface {
	// Train builds the model from scratch on the given corpus.
	Train(examples []query.Labeled) error
	// Update incorporates labeled examples: a few fine-tuning epochs for
	// iterative models, a full re-train for the rest. Callers with a
	// Retrain-policy model must pass the entire corpus they want the new
	// model built from.
	Update(examples []query.Labeled) error
	// Estimate returns the predicted cardinality for a predicate.
	//
	// Estimate is NOT safe for concurrent use on one model value: forward
	// passes write model-owned scratch buffers (layer activations, batch
	// feature matrices). Concurrent serving must give each goroutine its
	// own clone — see Clone and the serve package's replica pool.
	Estimate(p query.Predicate) float64
	// Policy reports whether Update fine-tunes or re-trains.
	Policy() UpdatePolicy
	// Clone returns an independent deep copy of the current model.
	//
	// The clone contract, which the replica-pool serving path depends on:
	//   - the clone shares NO mutable state with the source: parameters are
	//     deep-copied and scratch buffers are never aliased, so the clone
	//     and the source can run Estimate concurrently with each other;
	//   - the clone is estimate-identical to the source: Estimate on the
	//     clone returns bit-identical float64s for every predicate;
	//   - Clone may read (and advance) the source's RNG to seed the clone's,
	//     so Clone itself must not race with other Clone/Train/Update calls
	//     on the same source.
	Clone() Estimator
	Name() string
}

// InPlaceCloner is implemented by estimators that can overwrite a previous
// clone in place, reusing its parameter and scratch memory. The serving
// replica pool uses it so a model swap re-points N replicas without
// re-allocating N models.
type InPlaceCloner interface {
	Estimator
	// CloneInto makes dst estimate-identical to the receiver, reusing
	// dst's memory where shapes allow. It reports false — leaving dst
	// untouched — when dst is not a compatible target (different concrete
	// type, variant, or dimensions); callers then fall back to Clone.
	CloneInto(dst Estimator) bool
}

// JoinEstimator extends Estimator to key–foreign-key join queries (MSCN).
// EstimateJoin reports an error for queries outside the model's catalog
// (unknown table, unregistered join) rather than panicking.
type JoinEstimator interface {
	TrainJoin(examples []query.LabeledJoin) error
	UpdateJoin(examples []query.LabeledJoin) error
	EstimateJoin(q *query.JoinQuery) (float64, error)
}

// BatchEstimator is implemented by estimators that can answer many
// predicates in one pass (e.g. LM-mlp's batched forward). Results must be
// identical to calling Estimate per predicate.
type BatchEstimator interface {
	Estimator
	// EstimateAll writes the estimate for ps[i] into out[i].
	// len(out) must equal len(ps).
	EstimateAll(ps []query.Predicate, out []float64)
}

// EvalGMQ evaluates an estimator on a labeled test set and returns the GMQ.
// Estimators implementing BatchEstimator are evaluated with one batched
// inference call instead of len(test) per-query forwards.
func EvalGMQ(e Estimator, test []query.Labeled) float64 {
	ests := make([]float64, len(test))
	acts := make([]float64, len(test))
	for i, lq := range test {
		acts[i] = lq.Card
	}
	if be, ok := e.(BatchEstimator); ok && len(test) > 0 {
		ps := make([]query.Predicate, len(test))
		for i, lq := range test {
			ps[i] = lq.Pred
		}
		be.EstimateAll(ps, ests)
	} else {
		for i, lq := range test {
			ests[i] = e.Estimate(lq.Pred)
		}
	}
	return metrics.GMQ(ests, acts)
}

// BatchJoinEstimator is implemented by join estimators that can answer many
// queries in one batched pass. Results must be identical to calling
// EstimateJoin per query.
type BatchJoinEstimator interface {
	JoinEstimator
	// EstimateJoinAll writes the estimate for qs[i] into out[i].
	EstimateJoinAll(qs []*query.JoinQuery, out []float64) error
}

// EvalJoinGMQ evaluates a join estimator on labeled join queries. Queries
// the model cannot featurize make it return an error. Estimators
// implementing BatchJoinEstimator are evaluated with one batched call.
func EvalJoinGMQ(e JoinEstimator, test []query.LabeledJoin) (float64, error) {
	ests := make([]float64, len(test))
	acts := make([]float64, len(test))
	for i, lq := range test {
		acts[i] = lq.Card
	}
	if be, ok := e.(BatchJoinEstimator); ok && len(test) > 0 {
		qs := make([]*query.JoinQuery, len(test))
		for i, lq := range test {
			qs[i] = lq.Query
		}
		if err := be.EstimateJoinAll(qs, ests); err != nil {
			return 0, err
		}
	} else {
		for i, lq := range test {
			est, err := e.EstimateJoin(lq.Query)
			if err != nil {
				return 0, err
			}
			ests[i] = est
		}
	}
	return metrics.GMQ(ests, acts), nil
}

// Cardinality targets are regressed in log space: wide dynamic range plus
// the q-error metric make log the natural scale.

// cardToTarget maps a cardinality to the regression target log(1+card).
func cardToTarget(card float64) float64 {
	if card < 0 {
		card = 0
	}
	return math.Log1p(card)
}

// targetToCard inverts cardToTarget with clamping to non-negative values.
func targetToCard(t float64) float64 {
	c := math.Expm1(t)
	if c < 0 {
		return 0
	}
	if math.IsInf(c, 1) || math.IsNaN(c) {
		return math.MaxFloat64
	}
	return c
}
