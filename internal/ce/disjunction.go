package ce

import "warper/internal/query"

// EstimateDisjunction estimates the cardinality of an OR of predicates with
// one Estimate call per disjunct ("multiple calls for disjunctions", §2),
// combining them under a disjunct-independence assumption:
//
//	|A ∪ B ∪ …| ≈ N · (1 − ∏_j (1 − |A_j|/N))
//
// which is exact for disjoint predicates' upper regime and never exceeds N.
// nRows is the table cardinality used to normalize selectivities.
func EstimateDisjunction(e Estimator, d query.Disjunction, nRows float64) float64 {
	if len(d) == 0 || nRows <= 0 {
		return 0
	}
	missAll := 1.0
	for _, p := range d {
		sel := e.Estimate(p) / nRows
		if sel < 0 {
			sel = 0
		}
		if sel > 1 {
			sel = 1
		}
		missAll *= 1 - sel
	}
	return nRows * (1 - missAll)
}
