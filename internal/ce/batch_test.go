package ce

import (
	"testing"

	"warper/internal/query"
)

var (
	_ BatchEstimator     = (*LM)(nil)
	_ BatchEstimator     = (*MSCN)(nil)
	_ BatchJoinEstimator = (*MSCN)(nil)
)

// TestLMBatchedEstimateMatchesPerQuery: EstimateAll must be bit-equal to
// calling Estimate per predicate (the batched forward is byte-identical to
// the per-sample forward by construction).
func TestLMBatchedEstimateMatchesPerQuery(t *testing.T) {
	_, sch, train, test := fixture(t, 200, 64)
	lm := NewLM(LMMLP, sch, 41)
	trainOK(t, lm, train)

	ps := make([]query.Predicate, len(test))
	for i, lq := range test {
		ps[i] = lq.Pred
	}
	out := make([]float64, len(ps))
	lm.EstimateAll(ps, out)
	for i, p := range ps {
		if want := lm.Estimate(p); out[i] != want {
			t.Fatalf("query %d: batched %v != per-query %v", i, out[i], want)
		}
	}
}

// TestLMBatchedEstimateNonMLPBackends: the per-row fallback must agree with
// Estimate for the tree and kernel backends too.
func TestLMBatchedEstimateNonMLPBackends(t *testing.T) {
	_, sch, train, test := fixture(t, 150, 32)
	for _, v := range []LMVariant{LMGBT, LMRBF} {
		lm := NewLM(v, sch, 42)
		trainOK(t, lm, train)
		ps := make([]query.Predicate, len(test))
		for i, lq := range test {
			ps[i] = lq.Pred
		}
		out := make([]float64, len(ps))
		lm.EstimateAll(ps, out)
		for i, p := range ps {
			if want := lm.Estimate(p); out[i] != want {
				t.Fatalf("%s query %d: batched %v != per-query %v", v, i, out[i], want)
			}
		}
	}
}

// TestMSCNBatchedEstimateMatchesPerQuery: the three-pass batched forward
// (table branch, join branch, output MLP) must reproduce per-query
// EstimateJoin bit-for-bit, set pooling included.
func TestMSCNBatchedEstimateMatchesPerQuery(t *testing.T) {
	_, sch, train, test := fixture(t, 200, 48)
	m := NewMSCN(NewCatalog(sch), 43)
	if err := m.Train(train); err != nil {
		t.Fatal(err)
	}

	ps := make([]query.Predicate, len(test))
	for i, lq := range test {
		ps[i] = lq.Pred
	}
	out := make([]float64, len(ps))
	m.EstimateAll(ps, out)
	for i, p := range ps {
		if want := m.Estimate(p); out[i] != want {
			t.Fatalf("query %d: batched %v != per-query %v", i, out[i], want)
		}
	}
}

// TestMSCNEstimateJoinAllErrors: length mismatches and out-of-catalog
// queries are reported as errors, not panics.
func TestMSCNEstimateJoinAllErrors(t *testing.T) {
	_, sch, _, _ := fixture(t, 1, 1)
	m := NewMSCN(NewCatalog(sch), 44)
	if err := m.EstimateJoinAll(make([]*query.JoinQuery, 2), make([]float64, 3)); err == nil {
		t.Error("length mismatch must error")
	}
	bad := query.NewJoinQuery("no-such-table")
	if err := m.EstimateJoinAll([]*query.JoinQuery{bad}, make([]float64, 1)); err == nil {
		t.Error("unknown table must error")
	}
	if err := m.EstimateJoinAll(nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}
