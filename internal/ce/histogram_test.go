package ce

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"warper/internal/annotator"
	"warper/internal/dataset"
	"warper/internal/metrics"
	"warper/internal/query"
	"warper/internal/workload"
)

func histFixture(t *testing.T) (*dataset.Table, *query.Schema, *annotator.Annotator) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	tbl := dataset.PRSA(4000, rng)
	return tbl, query.SchemaOf(tbl), annotator.New(tbl)
}

func TestHistogramFullRangeIsRowCount(t *testing.T) {
	tbl, sch, _ := histFixture(t)
	h := NewHistogramEstimator(tbl, 64)
	got := h.Estimate(query.NewFullRange(sch))
	if math.Abs(got-float64(tbl.NumRows())) > 1 {
		t.Errorf("full-range estimate = %v, want %d", got, tbl.NumRows())
	}
}

func TestHistogramSingleColumnAccuracy(t *testing.T) {
	tbl, sch, ann := histFixture(t)
	h := NewHistogramEstimator(tbl, 64)
	rng := rand.New(rand.NewSource(32))
	g := workload.New("w1", tbl, sch, workload.Options{MinConstrained: 1, MaxConstrained: 1})
	var ests, acts []float64
	for i := 0; i < 60; i++ {
		p := g.Gen(rng)
		ests = append(ests, h.Estimate(p))
		acts = append(acts, annCountOK(t, ann, p))
	}
	// Single-column ranges have no independence error; equi-depth binning
	// should be quite accurate.
	if gmq := metrics.GMQ(ests, acts); gmq > 2.0 {
		t.Errorf("single-column GMQ = %v, want < 2", gmq)
	}
}

func TestHistogramWorkloadDriftImmunity(t *testing.T) {
	// A data-driven estimator's accuracy must not change when only the
	// workload drifts — the §2 contrast with workload-driven models.
	tbl, sch, ann := histFixture(t)
	h := NewHistogramEstimator(tbl, 64)
	rng := rand.New(rand.NewSource(33))
	opts := workload.Options{MinConstrained: 1, MaxConstrained: 1}
	gmqOn := func(spec string) float64 {
		g := workload.New(spec, tbl, sch, opts)
		var ests, acts []float64
		for i := 0; i < 60; i++ {
			p := g.Gen(rng)
			ests = append(ests, h.Estimate(p))
			acts = append(acts, annCountOK(t, ann, p))
		}
		return metrics.GMQ(ests, acts)
	}
	g1 := gmqOn("w1")
	g4 := gmqOn("w4")
	if g4 > g1*2.5 {
		t.Errorf("histogram degraded across workloads: w1=%v w4=%v", g1, g4)
	}
}

func TestHistogramStaleAfterDataDriftUntilUpdate(t *testing.T) {
	tbl, sch, _ := histFixture(t)
	h := NewHistogramEstimator(tbl, 64)
	full := query.NewFullRange(sch)
	before := h.Estimate(full)
	dataset.SortTruncateHalf(tbl, 1)
	// Without Update the estimator still reports the old row count.
	if got := h.Estimate(full); got != before {
		t.Errorf("estimate changed without rebuild: %v vs %v", got, before)
	}
	if err := h.Update(nil); err != nil {
		t.Fatalf("Update: %v", err)
	}
	after := h.Estimate(query.NewFullRange(query.SchemaOf(tbl)))
	if math.Abs(after-float64(tbl.NumRows())) > 1 {
		t.Errorf("post-rebuild full-range = %v, want %d", after, tbl.NumRows())
	}
}

func TestHistogramImplementsEstimator(t *testing.T) {
	tbl, _, _ := histFixture(t)
	var e Estimator = NewHistogramEstimator(tbl, 16)
	if e.Name() != "histogram" || e.Policy() != Retrain {
		t.Error("metadata wrong")
	}
	c := e.Clone().(*HistogramEstimator)
	c.bounds[0][0] = -999
	if e.(*HistogramEstimator).bounds[0][0] == -999 {
		t.Error("Clone aliases bounds")
	}
}

func TestHistogramEqualityPredicates(t *testing.T) {
	tbl, sch, ann := histFixture(t)
	h := NewHistogramEstimator(tbl, 64)
	// Categorical equality: station has 5 distinct values with heavy mass.
	c := tbl.ColIndex("station")
	p := query.NewFullRange(sch)
	p.SetEquals(c, 2)
	est := h.Estimate(p)
	truth := annCountOK(t, ann, p)
	if est <= 0 {
		t.Fatalf("equality estimate = %v, want > 0", est)
	}
	if q := metrics.QError(est, truth); q > 5 {
		t.Errorf("equality q-error = %v (est %v, true %v)", q, est, truth)
	}
}

// annCountOK unwraps annotator.Count for well-formed predicates.
func annCountOK(t *testing.T, ann *annotator.Annotator, p query.Predicate) float64 {
	t.Helper()
	c, err := ann.Count(context.Background(), p)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	return c
}

// TestHistogramEstimateAllocationFree pins the fallback-ladder contract:
// serving a degraded estimate from the histogram tier must not allocate
// (both massLE and massLT binary searches are hand-rolled for this).
func TestHistogramEstimateAllocationFree(t *testing.T) {
	tbl, sch, _ := histFixture(t)
	h := NewHistogramEstimator(tbl, 64)
	rng := rand.New(rand.NewSource(7))
	ps := make([]query.Predicate, 16)
	for i := range ps {
		p := query.NewFullRange(sch)
		c := rng.Intn(sch.NumCols())
		lo := sch.Mins[c] + rng.Float64()*(sch.Maxs[c]-sch.Mins[c])/2
		p.SetRange(c, lo, lo+(sch.Maxs[c]-sch.Mins[c])/4)
		ps[i] = p
	}
	i := 0
	if allocs := testing.AllocsPerRun(256, func() {
		h.Estimate(ps[i%len(ps)])
		i++
	}); allocs > 0 {
		t.Errorf("HistogramEstimator.Estimate allocates %.2f/op, want 0", allocs)
	}
}
