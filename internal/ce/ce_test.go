package ce

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"warper/internal/annotator"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/workload"
)

// fixture builds a PRSA-like table with a labeled train/test split from w1.
func fixture(t *testing.T, nTrain, nTest int) (*dataset.Table, *query.Schema, []query.Labeled, []query.Labeled) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	tbl := dataset.PRSA(4000, rng)
	sch := query.SchemaOf(tbl)
	g := workload.New("w1", tbl, sch, workload.Options{MaxConstrained: 2})
	ann := annotator.New(tbl)
	train := annAll(t, ann, workload.Generate(g, nTrain, rng))
	test := annAll(t, ann, workload.Generate(g, nTest, rng))
	return tbl, sch, train, test
}

func TestCardTargetRoundTrip(t *testing.T) {
	for _, c := range []float64{0, 1, 10, 1234, 1e6} {
		got := targetToCard(cardToTarget(c))
		if math.Abs(got-c) > 1e-6*(1+c) {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
	if targetToCard(-100) != 0 {
		t.Error("negative targets must clamp to 0")
	}
}

func TestLMMLPLearnsWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	_, sch, train, test := fixture(t, 800, 150)
	lm := NewLM(LMMLP, sch, 1)
	trainOK(t, lm, train)
	gmq := EvalGMQ(lm, test)
	if gmq > 4.0 {
		t.Errorf("LM-mlp in-distribution GMQ = %v, want < 4", gmq)
	}
	if lm.Policy() != FineTune || lm.Name() != "lm-mlp" {
		t.Error("metadata wrong")
	}
}

func TestLMGBTLearnsWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	_, sch, train, test := fixture(t, 600, 150)
	lm := NewLM(LMGBT, sch, 2)
	trainOK(t, lm, train)
	if gmq := EvalGMQ(lm, test); gmq > 5.0 {
		t.Errorf("LM-gbt GMQ = %v, want < 5", gmq)
	}
	if lm.Policy() != Retrain {
		t.Error("GBT should be a re-train model")
	}
}

func TestLMKernelVariantsLearnWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	_, sch, train, test := fixture(t, 600, 150)
	for _, v := range []LMVariant{LMPly, LMRBF} {
		lm := NewLM(v, sch, 3)
		trainOK(t, lm, train)
		if gmq := EvalGMQ(lm, test); gmq > 8.0 {
			t.Errorf("%s GMQ = %v, want < 8", v, gmq)
		}
		if lm.Policy() != Retrain {
			t.Errorf("%s should be a re-train model", v)
		}
	}
}

func TestLMFineTuneImprovesOnDriftedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	rng := rand.New(rand.NewSource(7))
	tbl := dataset.PRSA(4000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	gTrain := workload.New("w1", tbl, sch, workload.Options{MaxConstrained: 2})
	gNew := workload.New("w3", tbl, sch, workload.Options{MaxConstrained: 2})
	train := annAll(t, ann, workload.Generate(gTrain, 800, rng))
	newQ := annAll(t, ann, workload.Generate(gNew, 400, rng))
	testQ := annAll(t, ann, workload.Generate(gNew, 150, rng))

	lm := NewLM(LMMLP, sch, 4)
	trainOK(t, lm, train)
	before := EvalGMQ(lm, testQ)
	for i := 0; i < 3; i++ {
		updateOK(t, lm, newQ)
	}
	after := EvalGMQ(lm, testQ)
	if after >= before {
		t.Errorf("fine-tuning did not improve: before=%v after=%v", before, after)
	}
}

func TestLMCloneIsIndependent(t *testing.T) {
	_, sch, train, test := fixture(t, 300, 50)
	lm := NewLM(LMMLP, sch, 5)
	trainOK(t, lm, train)
	clone := lm.Clone()
	before := EvalGMQ(clone, test)
	updateOK(t, lm, train[:100])
	after := EvalGMQ(clone, test)
	if before != after {
		t.Error("clone shares weights with original")
	}
}

func TestUnknownVariantPanics(t *testing.T) {
	_, sch, _, _ := fixture(t, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLM("lm-nope", sch, 0)
}

func TestMSCNSingleTableLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	_, sch, train, test := fixture(t, 600, 150)
	m := NewMSCN(NewCatalog(sch), 6)
	trainOK(t, m, train)
	if gmq := EvalGMQ(m, test); gmq > 5.0 {
		t.Errorf("MSCN single-table GMQ = %v, want < 5", gmq)
	}
	if m.Policy() != FineTune || m.Name() != "mscn" {
		t.Error("metadata wrong")
	}
}

func joinFixture(t *testing.T) (*annotator.JoinAnnotator, *Catalog, []query.LabeledJoin, []query.LabeledJoin) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	// Orders with keys, lineitem with FK fanout.
	nOrders := 400
	okey := make([]float64, nOrders)
	total := make([]float64, nOrders)
	for i := range okey {
		okey[i] = float64(i)
		total[i] = rng.Float64() * 1000
	}
	orders := dataset.NewTable("orders",
		&dataset.Column{Name: "okey", Type: dataset.Real, Vals: okey},
		&dataset.Column{Name: "total", Type: dataset.Real, Vals: total},
	)
	nLine := 2000
	lkey := make([]float64, nLine)
	qty := make([]float64, nLine)
	for i := range lkey {
		lkey[i] = float64(rng.Intn(nOrders))
		qty[i] = rng.Float64() * 50
	}
	lineitem := dataset.NewTable("lineitem",
		&dataset.Column{Name: "okey", Type: dataset.Real, Vals: lkey},
		&dataset.Column{Name: "qty", Type: dataset.Real, Vals: qty},
	)
	ja := annotator.NewJoin(orders, lineitem)
	so, sl := query.SchemaOf(orders), query.SchemaOf(lineitem)
	cat := NewCatalog(sl, so).AddJoin("lineitem", "okey", "orders", "okey")

	gen := func(n int) []query.LabeledJoin {
		var qs []*query.JoinQuery
		for i := 0; i < n; i++ {
			q := query.NewJoinQuery("lineitem", "orders").AddJoin("lineitem", "okey", "orders", "okey")
			pl := query.NewFullRange(sl)
			lo := rng.Float64() * 50
			hi := lo + rng.Float64()*(50-lo)
			pl.SetRange(1, lo, hi)
			q.SetPred("lineitem", pl.Normalize(sl))
			po := query.NewFullRange(so)
			lo2 := rng.Float64() * 1000
			hi2 := lo2 + rng.Float64()*(1000-lo2)
			po.SetRange(1, lo2, hi2)
			q.SetPred("orders", po.Normalize(so))
			qs = append(qs, q)
		}
		out, err := ja.AnnotateAll(context.Background(), qs)
		if err != nil {
			t.Fatalf("AnnotateAll: %v", err)
		}
		return out
	}
	return ja, cat, gen(500), gen(100)
}

func TestMSCNJoinLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	_, cat, train, test := joinFixture(t)
	m := NewMSCN(cat, 7)
	if err := m.TrainJoin(train); err != nil {
		t.Fatalf("TrainJoin: %v", err)
	}
	if gmq := joinGMQOK(t, m, test); gmq > 6.0 {
		t.Errorf("MSCN join GMQ = %v, want < 6", gmq)
	}
}

func TestMSCNUpdateImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	_, cat, train, test := joinFixture(t)
	m := NewMSCN(cat, 8)
	if err := m.TrainJoin(train[:50]); err != nil { // deliberately undertrained
		t.Fatalf("TrainJoin: %v", err)
	}
	before := joinGMQOK(t, m, test)
	for i := 0; i < 5; i++ {
		if err := m.UpdateJoin(train); err != nil {
			t.Fatalf("UpdateJoin: %v", err)
		}
	}
	after := joinGMQOK(t, m, test)
	if after >= before {
		t.Errorf("UpdateJoin did not improve: before=%v after=%v", before, after)
	}
}

func TestMSCNUnknownTableError(t *testing.T) {
	_, sch, _, _ := fixture(t, 1, 1)
	m := NewMSCN(NewCatalog(sch), 9)
	q := query.NewJoinQuery("ghost")
	if _, err := m.EstimateJoin(q); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

func TestMSCNSingleTableAPIRequiresOneTable(t *testing.T) {
	_, cat, _, _ := joinFixture(t)
	m := NewMSCN(cat, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Estimate(query.Predicate{Lows: []float64{0}, Highs: []float64{1}})
}

func TestEvalGMQPerfectEstimator(t *testing.T) {
	_, _, train, _ := fixture(t, 20, 0)
	e := perfect{m: map[string]float64{}}
	for _, ex := range train {
		e.m[key(ex.Pred)] = ex.Card
	}
	if gmq := EvalGMQ(e, train); gmq != 1 {
		t.Errorf("perfect estimator GMQ = %v, want 1", gmq)
	}
}

type perfect struct{ m map[string]float64 }

func key(p query.Predicate) string {
	s := ""
	for i := range p.Lows {
		s += string(rune(int(p.Lows[i]*7)%96+32)) + string(rune(int(p.Highs[i]*13)%96+32))
	}
	return s
}

func (p perfect) Train([]query.Labeled) error        { return nil }
func (p perfect) Update([]query.Labeled) error       { return nil }
func (p perfect) Estimate(q query.Predicate) float64 { return p.m[key(q)] }
func (p perfect) Policy() UpdatePolicy               { return FineTune }
func (p perfect) Clone() Estimator                   { return p }
func (p perfect) Name() string                       { return "perfect" }

// trainOK/updateOK unwrap Train/Update in tests, where fits succeed by
// construction.
func trainOK(t *testing.T, m Estimator, ex []query.Labeled) {
	t.Helper()
	if err := m.Train(ex); err != nil {
		t.Fatalf("Train: %v", err)
	}
}

func updateOK(t *testing.T, m Estimator, ex []query.Labeled) {
	t.Helper()
	if err := m.Update(ex); err != nil {
		t.Fatalf("Update: %v", err)
	}
}

func joinGMQOK(t *testing.T, m JoinEstimator, test []query.LabeledJoin) float64 {
	t.Helper()
	gmq, err := EvalJoinGMQ(m, test)
	if err != nil {
		t.Fatalf("EvalJoinGMQ: %v", err)
	}
	return gmq
}

func annAll(t *testing.T, ann *annotator.Annotator, ps []query.Predicate) []query.Labeled {
	t.Helper()
	out, err := ann.AnnotateAll(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
