package ce

import (
	"fmt"
	"math/rand"

	"warper/internal/gbt"
	"warper/internal/kernel"
	"warper/internal/nn"
	"warper/internal/query"
)

// LM is the lightweight range-predicate model of Dutt et al.: the predicate
// featurization {low₁..low_d, high₁..high_d} (normalized by column ranges)
// fed to a regression backend predicting log-cardinality. The paper's LM-mlp,
// LM-gbt, LM-ply and LM-rbf variants correspond to the four backends here.
type LM struct {
	Schema  *query.Schema
	backend lmBackend
	name    string
	policy  UpdatePolicy
	rng     *rand.Rand

	// batchBuf backs the feature matrix EstimateAll builds for batched MLP
	// inference; featBuf backs the single feature vector Estimate builds.
	// Both are model-owned scratch (like the layers' forward buffers):
	// grown on demand, reused across calls, and never shared between
	// clones — Clone resets them so two models can serve concurrently.
	batchBuf []float64
	featBuf  []float64
}

// lmBackend is the pluggable regressor behind LM. fit and finetune report
// failures (a kernel solve that does not converge) as errors so the caller
// can keep its previous model instead of dying mid-adaptation.
type lmBackend interface {
	fit(X [][]float64, y []float64, rng *rand.Rand) error
	// finetune runs a few incremental epochs; it returns false when the
	// backend only supports re-training.
	finetune(X [][]float64, y []float64, rng *rand.Rand) (bool, error)
	predict(x []float64) float64
	clone() lmBackend
	// cloneInto copies the backend's model into dst in place, reusing
	// dst's memory; false means dst is shape-incompatible and untouched.
	cloneInto(dst lmBackend) bool
}

// LMVariant names an LM backend.
type LMVariant string

// LM variants evaluated in the paper (§4.1.2).
const (
	LMMLP LMVariant = "lm-mlp"
	LMGBT LMVariant = "lm-gbt"
	LMPly LMVariant = "lm-ply"
	LMRBF LMVariant = "lm-rbf"
)

// NewLM builds an untrained LM of the given variant over a schema. seed
// controls weight initialization and training shuffles.
func NewLM(variant LMVariant, s *query.Schema, seed int64) *LM {
	rng := rand.New(rand.NewSource(seed))
	lm := &LM{Schema: s, name: string(variant), rng: rng}
	switch variant {
	case LMMLP:
		lm.backend = newMLPBackend(s.FeatureDim(), rng)
		lm.policy = FineTune
	case LMGBT:
		lm.backend = &gbtBackend{cfg: gbt.Config{Stages: 120, Rate: 0.05, MaxDepth: 4, MinLeafSize: 3}}
		lm.policy = Retrain
	case LMPly:
		lm.backend = &krrBackend{cfg: kernel.DefaultPolyConfig()}
		lm.policy = Retrain
	case LMRBF:
		lm.backend = &krrBackend{cfg: kernel.DefaultRBFConfig()}
		lm.policy = Retrain
	default:
		// Constructor-time configuration validation: unreachable from the
		// serving path, which only ever sees successfully built models.
		panic("ce: unknown LM variant " + string(variant)) //lint:allow panicfree startup config validation
	}
	return lm
}

// Train implements Estimator.
func (lm *LM) Train(examples []query.Labeled) error {
	X, y := lm.featurizeAll(examples)
	return lm.backend.fit(X, y, lm.rng)
}

// Update implements Estimator: fine-tune when supported, otherwise re-train
// on the given examples.
func (lm *LM) Update(examples []query.Labeled) error {
	X, y := lm.featurizeAll(examples)
	ok, err := lm.backend.finetune(X, y, lm.rng)
	if err != nil {
		return err
	}
	if !ok {
		return lm.backend.fit(X, y, lm.rng)
	}
	return nil
}

// Estimate implements Estimator. The featurization goes through the
// model-owned scratch vector, so per-row serving (the tree and kernel
// backends, and the non-batch interface fallback) allocates nothing after
// the first call.
func (lm *LM) Estimate(p query.Predicate) float64 {
	in := lm.Schema.FeatureDim()
	if cap(lm.featBuf) < in {
		lm.featBuf = make([]float64, in) //lint:allow hotpathalloc grow-once feature scratch; steady state reuses its capacity
	}
	f := lm.featBuf[:in]
	p.FeaturizeInto(lm.Schema, f)
	return targetToCard(lm.backend.predict(f))
}

// EstimateAll implements BatchEstimator: the MLP backend answers the whole
// slice with one batched forward pass through the minibatch kernels; the
// tree and kernel backends predict row by row (their per-row cost is the
// model walk itself, there is nothing to batch).
func (lm *LM) EstimateAll(ps []query.Predicate, out []float64) {
	if len(ps) != len(out) {
		panic("ce: EstimateAll length mismatch") //lint:allow panicfree caller-side slice-length contract
	}
	if mlp, ok := lm.backend.(*mlpBackend); ok && len(ps) > 0 {
		// Featurize straight into the model-owned batch matrix, so the
		// steady-state serving coalescer performs no allocations here.
		in := lm.Schema.FeatureDim()
		need := len(ps) * in
		if cap(lm.batchBuf) < need {
			lm.batchBuf = make([]float64, need) //lint:allow hotpathalloc grow-once batch matrix; steady state reuses its capacity
		}
		X := nn.Mat{Rows: len(ps), Cols: in, Stride: in, Data: lm.batchBuf[:need]}
		for i := range ps {
			ps[i].FeaturizeInto(lm.Schema, X.Row(i))
		}
		mlp.predictAllMat(X, out)
		for i := range out {
			out[i] = targetToCard(out[i])
		}
		return
	}
	for i := range ps {
		out[i] = lm.Estimate(ps[i])
	}
}

// Policy implements Estimator.
func (lm *LM) Policy() UpdatePolicy { return lm.policy }

// Name implements Estimator.
func (lm *LM) Name() string { return lm.name }

// Clone implements Estimator. The clone gets fresh backend scratch and its
// own batch buffer, so it can serve estimates concurrently with the source.
func (lm *LM) Clone() Estimator {
	c := *lm
	c.backend = lm.backend.clone()
	c.rng = rand.New(rand.NewSource(lm.rng.Int63()))
	c.batchBuf = nil
	c.featBuf = nil
	return &c
}

// CloneInto implements InPlaceCloner: it makes dst estimate-identical to lm
// while reusing dst's parameter and scratch memory. dst must be an LM of
// the same variant over the same schema (the shape a replica refreshed from
// an earlier generation of the same model always has).
func (lm *LM) CloneInto(dst Estimator) bool {
	d, ok := dst.(*LM)
	if !ok || d == lm || d.name != lm.name || d.Schema != lm.Schema {
		return false
	}
	if !lm.backend.cloneInto(d.backend) {
		return false
	}
	d.policy = lm.policy
	d.rng = rand.New(rand.NewSource(lm.rng.Int63()))
	return true
}

func (lm *LM) featurizeAll(examples []query.Labeled) ([][]float64, []float64) {
	X := make([][]float64, len(examples))
	y := make([]float64, len(examples))
	for i, ex := range examples {
		X[i] = ex.Pred.Featurize(lm.Schema)
		y[i] = cardToTarget(ex.Card)
	}
	return X, y
}

// --- MLP backend -----------------------------------------------------------

// Training-schedule constants for the MLP backend, following §4.1: batch
// size 32 and learning rate 1e-3.
const (
	mlpTrainEpochs    = 60
	mlpFinetuneEpochs = 8
	mlpBatch          = 32
	mlpRate           = 1e-3
	mlpHidden         = 64
	mlpDepth          = 2
)

type mlpBackend struct {
	net *nn.Network
	in  int
}

func newMLPBackend(in int, rng *rand.Rand) *mlpBackend {
	return &mlpBackend{net: nn.MLP(in, mlpHidden, mlpDepth, 1, rng), in: in}
}

func (b *mlpBackend) fit(X [][]float64, y []float64, rng *rand.Rand) error {
	// Re-train from scratch: fresh weights, full epoch budget.
	b.net = nn.MLP(b.in, mlpHidden, mlpDepth, 1, rng)
	return b.run(X, y, mlpTrainEpochs, rng)
}

func (b *mlpBackend) finetune(X [][]float64, y []float64, rng *rand.Rand) (bool, error) {
	return true, b.run(X, y, mlpFinetuneEpochs, rng)
}

func (b *mlpBackend) run(X [][]float64, y []float64, epochs int, rng *rand.Rand) error {
	if len(X) == 0 {
		return nil
	}
	ys := make([][]float64, len(y))
	for i, v := range y {
		ys[i] = []float64{v}
	}
	_, err := b.net.Fit(X, ys, nn.MSE{}, nn.NewAdam(mlpRate), epochs, mlpBatch, rng)
	return err
}

func (b *mlpBackend) predict(x []float64) float64 { return b.net.Forward(x)[0] }

// predictAllMat runs one batched forward pass over the rows of X, using the
// network's minibatch kernels instead of X.Rows per-sample Forward calls.
// X must already hold the featurized predicates. The tile-resident
// InferBatch path serves full 4-row blocks without materializing activation
// matrices; where it cannot run it falls back to BatchForward, which is
// byte-identical by the same contract.
func (b *mlpBackend) predictAllMat(X nn.Mat, out []float64) {
	if b.net.InferBatch(X, out) {
		return
	}
	//lint:allow hotpathalloc fallback for layer kinds the in-place kernels cannot drive; LM's MLP stays on InferBatch
	y := b.net.BatchForward(X)
	for i := range out {
		out[i] = y.Row(i)[0]
	}
}

func (b *mlpBackend) clone() lmBackend { return &mlpBackend{net: b.net.Clone(), in: b.in} }

func (b *mlpBackend) cloneInto(dst lmBackend) bool {
	d, ok := dst.(*mlpBackend)
	if !ok || d == b || d.in != b.in {
		return false
	}
	return b.net.CloneInto(d.net)
}

// --- GBT backend -----------------------------------------------------------

type gbtBackend struct {
	cfg   gbt.Config
	model *gbt.Regressor
}

func (b *gbtBackend) fit(X [][]float64, y []float64, _ *rand.Rand) error {
	m, err := gbt.Fit(X, y, b.cfg)
	if err != nil {
		// Keep the previous ensemble (if any); a failed re-train must not
		// leave the estimator without a model mid-adaptation.
		return fmt.Errorf("ce: gbt fit failed: %w", err)
	}
	b.model = m
	return nil
}

func (b *gbtBackend) finetune([][]float64, []float64, *rand.Rand) (bool, error) {
	return false, nil
}

func (b *gbtBackend) predict(x []float64) float64 {
	if b.model == nil {
		return 0
	}
	return b.model.Predict(x)
}

func (b *gbtBackend) clone() lmBackend {
	// The fitted ensemble is immutable after Fit, so sharing it is safe; a
	// subsequent fit replaces the pointer rather than mutating trees.
	return &gbtBackend{cfg: b.cfg, model: b.model}
}

func (b *gbtBackend) cloneInto(dst lmBackend) bool {
	d, ok := dst.(*gbtBackend)
	if !ok {
		return false
	}
	d.cfg, d.model = b.cfg, b.model // immutable ensemble: pointer copy suffices
	return true
}

// --- Kernel ridge backend (LM-ply / LM-rbf) ---------------------------------

type krrBackend struct {
	cfg   kernel.Config
	model *kernel.Regressor
}

func (b *krrBackend) fit(X [][]float64, y []float64, rng *rand.Rand) error {
	m, err := kernel.Fit(X, y, b.cfg, rng)
	if err != nil {
		// Gram matrix not PD at this regularization; retry stiffer rather
		// than leaving a stale model behind.
		cfg := b.cfg
		cfg.Lambda *= 100
		m, err = kernel.Fit(X, y, cfg, rng)
		if err != nil {
			// Both solves failed: keep the previous model (if any) and let
			// the caller decide — on the serving path a failed repair must
			// not kill the estimator process.
			return fmt.Errorf("ce: kernel fit failed: %w", err)
		}
	}
	b.model = m
	return nil
}

func (b *krrBackend) finetune([][]float64, []float64, *rand.Rand) (bool, error) {
	return false, nil
}

func (b *krrBackend) predict(x []float64) float64 {
	if b.model == nil {
		return 0
	}
	return b.model.Predict(x)
}

func (b *krrBackend) clone() lmBackend { return &krrBackend{cfg: b.cfg, model: b.model} }

func (b *krrBackend) cloneInto(dst lmBackend) bool {
	d, ok := dst.(*krrBackend)
	if !ok {
		return false
	}
	d.cfg, d.model = b.cfg, b.model // fitted regressor is immutable: pointer copy
	return true
}
