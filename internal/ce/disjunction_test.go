package ce

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"warper/internal/annotator"
	"warper/internal/dataset"
	"warper/internal/metrics"
	"warper/internal/query"
	"warper/internal/workload"
)

func TestEstimateDisjunctionDisjointSums(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tbl := dataset.PRSA(4000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	h := NewHistogramEstimator(tbl, 64)

	// Two disjoint ranges on the same column.
	c := tbl.ColIndex("temp")
	mid := (sch.Mins[c] + sch.Maxs[c]) / 2
	p1 := query.NewFullRange(sch)
	p1.SetRange(c, sch.Mins[c], mid-1)
	p2 := query.NewFullRange(sch)
	p2.SetRange(c, mid+1, sch.Maxs[c])
	d := query.Disjunction{p1.Normalize(sch), p2.Normalize(sch)}

	est := EstimateDisjunction(h, d, float64(tbl.NumRows()))
	truth := disjOK(t, ann, d)
	if q := metrics.QError(est, truth); q > 1.5 {
		t.Errorf("disjoint disjunction q-error = %v (est %v, true %v)", q, est, truth)
	}
	// The combination must not double-count past the table size.
	full := query.Disjunction{query.NewFullRange(sch), query.NewFullRange(sch)}
	if got := EstimateDisjunction(h, full, float64(tbl.NumRows())); got > float64(tbl.NumRows())+1 {
		t.Errorf("disjunction exceeded table size: %v", got)
	}
}

func TestEstimateDisjunctionRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tbl := dataset.PRSA(4000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	h := NewHistogramEstimator(tbl, 64)
	g := workload.New("w1", tbl, sch, workload.Options{MinConstrained: 1, MaxConstrained: 1})

	var ests, acts []float64
	for i := 0; i < 30; i++ {
		d := query.Disjunction{g.Gen(rng), g.Gen(rng)}
		ests = append(ests, EstimateDisjunction(h, d, float64(tbl.NumRows())))
		acts = append(acts, disjOK(t, ann, d))
	}
	if gmq := metrics.GMQ(ests, acts); gmq > 2.5 {
		t.Errorf("disjunction GMQ = %v, want < 2.5", gmq)
	}
}

func TestEstimateDisjunctionEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tbl := dataset.PRSA(200, rng)
	h := NewHistogramEstimator(tbl, 16)
	if got := EstimateDisjunction(h, nil, 200); got != 0 {
		t.Errorf("empty disjunction = %v", got)
	}
	if got := EstimateDisjunction(h, query.Disjunction{}, 0); got != 0 {
		t.Errorf("zero rows = %v", got)
	}
}

func TestDisjunctionMatchesAndClone(t *testing.T) {
	p1 := query.Predicate{Lows: []float64{0}, Highs: []float64{1}}
	p2 := query.Predicate{Lows: []float64{5}, Highs: []float64{6}}
	d := query.Disjunction{p1, p2}
	if !d.Matches([]float64{0.5}) || !d.Matches([]float64{5.5}) || d.Matches([]float64{3}) {
		t.Error("Matches wrong")
	}
	c := d.Clone()
	c[0].Lows[0] = 99
	if d[0].Lows[0] == 99 {
		t.Error("Clone aliases")
	}
	if math.IsNaN(d[0].Lows[0]) {
		t.Error("unexpected NaN")
	}
}

func disjOK(t *testing.T, ann *annotator.Annotator, d query.Disjunction) float64 {
	t.Helper()
	v, err := ann.CountDisjunction(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
