package ce

import (
	"math"
	"sort"

	"warper/internal/dataset"
	"warper/internal/query"
)

// HistogramEstimator is a classical, non-learned baseline: per-column
// equi-depth histograms combined under the attribute-value-independence
// assumption. §2 of the paper contrasts workload-driven models with
// data-driven ones — this estimator is the simplest member of the latter
// family: it ignores the query workload entirely, so workload drifts cannot
// hurt it, but it must be rebuilt after data drifts and its independence
// assumption caps accuracy on correlated columns.
type HistogramEstimator struct {
	tbl  *dataset.Table
	bins int
	// bounds[c] holds the bin edges of column c (len bins+1, ascending).
	bounds  [][]float64
	numRows float64
	// builtVersion invalidates against table mutations.
	builtVersion int
}

// NewHistogramEstimator builds equi-depth histograms with the given number
// of bins per column.
func NewHistogramEstimator(t *dataset.Table, bins int) *HistogramEstimator {
	if bins < 1 {
		bins = 64
	}
	h := &HistogramEstimator{tbl: t, bins: bins}
	h.rebuild()
	return h
}

func (h *HistogramEstimator) rebuild() {
	h.builtVersion = h.tbl.Version
	h.numRows = float64(h.tbl.NumRows())
	h.bounds = make([][]float64, h.tbl.NumCols())
	for c, col := range h.tbl.Cols {
		sorted := append([]float64(nil), col.Vals...)
		sort.Float64s(sorted)
		edges := make([]float64, h.bins+1)
		for b := 0; b <= h.bins; b++ {
			if len(sorted) == 0 {
				edges[b] = 0
				continue
			}
			idx := b * (len(sorted) - 1) / h.bins
			edges[b] = sorted[idx]
		}
		h.bounds[c] = edges
	}
}

// selectivity estimates the fraction of rows with lo <= col <= hi as
// massLE(hi) - massLT(lo), which handles duplicate-edge runs (heavy values
// in equi-depth histograms) and equality predicates correctly.
func (h *HistogramEstimator) selectivity(c int, lo, hi float64) float64 {
	edges := h.bounds[c]
	if len(edges) < 2 || h.numRows == 0 {
		return 1
	}
	sel := h.massLE(edges, hi) - h.massLT(edges, lo)
	if sel <= 0 && lo == hi && lo >= edges[0] && lo <= edges[len(edges)-1] {
		// Equality on a non-heavy value inside the domain: half a bin.
		sel = 0.5 / float64(len(edges)-1)
	}
	return mathClamp01(sel)
}

// massLE returns the approximate fraction of values <= x. Duplicate-edge
// runs (bins whose both edges equal a heavy value) count fully.
func (h *HistogramEstimator) massLE(edges []float64, x float64) float64 {
	last := len(edges) - 1
	if x < edges[0] {
		return 0
	}
	if x >= edges[last] {
		return 1
	}
	// Largest b with edges[b] <= x. Hand-rolled binary search: a
	// sort.Search closure would capture edges and x, and this runs on the
	// allocation-free serving path.
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if edges[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	ub := lo - 1
	if edges[ub] == x {
		return float64(ub) / float64(last)
	}
	frac := 0.0
	if span := edges[ub+1] - edges[ub]; span > 0 {
		frac = (x - edges[ub]) / span
	}
	return (float64(ub) + frac) / float64(last)
}

// massLT returns the approximate fraction of values strictly below x.
// Duplicate-edge runs at x are excluded.
func (h *HistogramEstimator) massLT(edges []float64, x float64) float64 {
	last := len(edges) - 1
	if x <= edges[0] {
		return 0
	}
	if x > edges[last] {
		return 1
	}
	// Smallest b with edges[b] >= x. Hand-rolled like massLE: this runs on
	// the serving fallback path, which must stay allocation-free.
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if edges[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	lb := lo
	if lb <= last && edges[lb] == x {
		return float64(lb) / float64(last)
	}
	b := lb - 1
	frac := 0.0
	if span := edges[b+1] - edges[b]; span > 0 {
		frac = (x - edges[b]) / span
	}
	return (float64(b) + frac) / float64(last)
}

// Estimate implements Estimator under attribute-value independence.
// Estimates deliberately go stale after a data drift until Update rebuilds
// the histograms — data-driven models have no incremental adaptation path
// (the §2 contrast this baseline exists to demonstrate).
func (h *HistogramEstimator) Estimate(p query.Predicate) float64 {
	sel := 1.0
	for c := range h.bounds {
		sel *= h.selectivity(c, p.Lows[c], p.Highs[c])
	}
	return sel * h.numRows
}

// Train implements Estimator: histograms ignore the workload; building
// happens from the data.
func (h *HistogramEstimator) Train([]query.Labeled) error { h.rebuild(); return nil }

// Update implements Estimator: rebuild from the current table (the only
// adaptation a data-driven model supports).
func (h *HistogramEstimator) Update([]query.Labeled) error { h.rebuild(); return nil }

// Policy implements Estimator.
func (h *HistogramEstimator) Policy() UpdatePolicy { return Retrain }

// Clone implements Estimator.
func (h *HistogramEstimator) Clone() Estimator {
	c := *h
	c.bounds = make([][]float64, len(h.bounds))
	for i, b := range h.bounds {
		c.bounds[i] = append([]float64(nil), b...)
	}
	return &c
}

// Name implements Estimator.
func (h *HistogramEstimator) Name() string { return "histogram" }

func mathClamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
