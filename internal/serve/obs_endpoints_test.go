package serve

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMetricsExposition drives the full estimate→feedback→period flow and
// checks GET /metrics: valid exposition format and every required family.
func TestMetricsExposition(t *testing.T) {
	_, ts, _, ann, gNew := newTestServer(t)
	rng := rand.New(rand.NewSource(7))
	// One estimate, 25 labeled feedback items, one period.
	p := gNew.Gen(rng)
	postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
	for i := 0; i < 25; i++ {
		q := gNew.Gen(rng)
		card := countOK(t, ann, q)
		postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: q.Lows, Highs: q.Highs},
			Cardinality:   &card,
		}, nil)
	}
	postJSON(t, ts.URL+"/period", struct{}{}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every non-comment line must match the exposition sample syntax.
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|-?[0-9][0-9eE.+-]*)$`)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}

	// Required families and series from the acceptance criteria.
	for _, want := range []string{
		`warper_http_requests_total{code="200",handler="estimate"} 1`,
		`warper_http_requests_total{code="200",handler="feedback"} 25`,
		`warper_http_requests_total{code="200",handler="period"} 1`,
		`warper_http_request_seconds_bucket{handler="estimate",le="+Inf"} 1`,
		`warper_qerror_count 25`,
		`warper_period_stage_seconds_count{stage="detect"} 1`,
		`warper_period_stage_seconds_count{stage="generate"} 1`,
		`warper_period_stage_seconds_count{stage="pick"} 1`,
		`warper_period_stage_seconds_count{stage="annotate"} 1`,
		`warper_period_stage_seconds_count{stage="update"} 1`,
		`warper_periods_total 1`,
		"warper_pool_size ",
		"warper_pool_labeled ",
		"warper_pi ",
		"warper_gamma ",
		"warper_delta_m ",
		"warper_delta_js ",
		"warper_estimate_lock_wait_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDebugVarsRoundTrip(t *testing.T) {
	_, ts, sch, _, gNew := newTestServer(t)
	_ = sch
	p := gNew.Gen(rand.New(rand.NewSource(3)))
	postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars = %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("vars not valid JSON: %v", err)
	}
	var reqs int64
	if err := json.Unmarshal(vars[`warper_http_requests_total{code="200",handler="estimate"}`], &reqs); err != nil || reqs != 1 {
		t.Errorf("estimate counter = %d, %v (keys: %d)", reqs, err, len(vars))
	}
	var lat struct {
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(vars[`warper_http_request_seconds{handler="estimate"}`], &lat); err != nil || lat.Count != 1 {
		t.Errorf("latency histogram = %+v, %v", lat, err)
	}
}

func TestPeriodConflictReturns409(t *testing.T) {
	srv, ts, _, _, _ := newTestServer(t)
	// Simulate an in-flight period by holding the period lock.
	srv.periodMu.Lock()
	defer srv.periodMu.Unlock()
	r := postJSON(t, ts.URL+"/period", struct{}{}, nil)
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", r.StatusCode)
	}
	if got := srv.Metrics().Reg.Counter(mPeriodConflicts).Value(); got != 1 {
		t.Errorf("conflict counter = %d, want 1", got)
	}
}

func TestPeriodRejectsBadContentTypeAndBody(t *testing.T) {
	_, ts, _, _, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/period", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("bad content-type status = %d, want 415", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/period", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d, want 400", resp.StatusCode)
	}
	// Empty body stays accepted.
	resp, err = http.Post(ts.URL+"/period", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("empty body status = %d, want 200", resp.StatusCode)
	}
}

func TestPprofGatedByOption(t *testing.T) {
	srv, ts, _, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof should be off by default")
	}
	// Same server, pprof-enabled handler.
	srv.pprof = true
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index = %d, want 200", resp.StatusCode)
	}
}

// TestEstimatesServableDuringPeriod verifies the head-of-line fix: while an
// adaptation period runs, estimates keep completing. Run with -race this
// also proves the clone/swap dance is data-race free.
func TestEstimatesServableDuringPeriod(t *testing.T) {
	srv, ts, _, ann, gNew := newTestServer(t)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		p := gNew.Gen(rng)
		card := countOK(t, ann, p)
		postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
			Cardinality:   &card,
		}, nil)
	}
	periodDone := make(chan int, 1)
	go func() {
		r := postJSON(t, ts.URL+"/period", struct{}{}, nil)
		periodDone <- r.StatusCode
	}()
	// Wait until the period actually holds the period lock — or has already
	// finished (batched component training can complete a period faster
	// than this poll loop observes the lock).
	deadline := time.Now().Add(5 * time.Second)
	for srv.periodMu.TryLock() {
		srv.periodMu.Unlock()
		select {
		case code := <-periodDone:
			periodDone <- code // re-buffer for the final status check
			goto estimates
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("period never started")
		}
		time.Sleep(time.Millisecond)
	}
estimates:
	// Estimates must complete while the period is in flight.
	served := 0
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 5; i++ {
		p := gNew.Gen(rng)
		b, _ := json.Marshal(predicateJSON{Lows: p.Lows, Highs: p.Highs})
		resp, err := client.Post(ts.URL+"/estimate", "application/json", strings.NewReader(string(b)))
		if err != nil {
			t.Fatalf("estimate during period: %v", err)
		}
		if resp.StatusCode == http.StatusOK {
			served++
		}
		resp.Body.Close()
	}
	if served != 5 {
		t.Errorf("served %d/5 estimates during period", served)
	}
	if code := <-periodDone; code != http.StatusOK {
		t.Fatalf("period status = %d", code)
	}
}

// TestConcurrentHammer drives estimate, feedback, period and status
// concurrently; with -race it proves the locking discipline.
func TestConcurrentHammer(t *testing.T) {
	_, ts, _, ann, gNew := newTestServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 15; i++ {
				p := gNew.Gen(rng)
				switch i % 3 {
				case 0:
					postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
				case 1:
					card := countOK(t, ann, p)
					postJSON(t, ts.URL+"/feedback", feedbackRequest{
						predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
						Cardinality:   &card,
					}, nil)
				default:
					resp, err := http.Get(ts.URL + "/status")
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(int64(w) + 100)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			r := postJSON(t, ts.URL+"/period", struct{}{}, nil)
			if r.StatusCode != http.StatusOK && r.StatusCode != http.StatusConflict {
				t.Errorf("period status = %d", r.StatusCode)
			}
		}
	}()
	wg.Wait()
	// The server must still be coherent afterwards.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-hammer /metrics = %d", resp.StatusCode)
	}
}
