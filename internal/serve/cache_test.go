package serve

import (
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warper/internal/ce"
	"warper/internal/query"
)

// constEst is a trivially correct estimator whose answer is a fixed value:
// swapping constEst{v: n} where n tracks the pool generation turns the
// cached cardinality itself into a generation witness — a cache hit showing
// a value other than the current generation's constant is a stale-serve bug.
type constEst struct{ v float64 }

func (c *constEst) Train([]query.Labeled) error  { return nil }
func (c *constEst) Update([]query.Labeled) error { return nil }
func (c *constEst) Estimate(query.Predicate) float64 {
	return c.v
}
func (c *constEst) Policy() ce.UpdatePolicy { return ce.FineTune }
func (c *constEst) Clone() ce.Estimator     { return &constEst{v: c.v} }
func (c *constEst) Name() string            { return "const" }

// cacheKey builds a distinct keyLen-word key from a seed value.
func cacheKey(keyLen int, seed float64) []float64 {
	k := make([]float64, keyLen)
	for i := range k {
		k[i] = seed + float64(i)/16
	}
	return k
}

func TestEstimateCachePutGet(t *testing.T) {
	c := newEstimateCache(4, 2, 64, NewMetrics())
	key := cacheKey(4, 0.5)
	h := cacheHash(key)
	gen, epoch := uint64(1), c.epoch.Load()

	if _, ok := c.get(key, h, gen, epoch); ok {
		t.Fatal("hit on an empty cache")
	}
	c.put(key, h, gen, epoch, 42)
	card, ok := c.get(key, h, gen, epoch)
	if !ok || card != 42 {
		t.Fatalf("get = %v, %v; want 42, true", card, ok)
	}
	if n := c.entries(); n != 1 {
		t.Fatalf("entries = %d, want 1", n)
	}

	// A different generation must miss: the swap's atomic bump is the
	// wholesale invalidation.
	if _, ok := c.get(key, h, gen+1, epoch); ok {
		t.Error("hit across a generation bump")
	}
	// A flush makes every entry invisible under the new epoch.
	c.flushAll()
	if _, ok := c.get(key, h, gen, c.epoch.Load()); ok {
		t.Error("hit across a flush epoch bump")
	}
	// The pre-flush epoch still matches its own stamp: the insert-racing-a-
	// flush convention (stamp the pre-flush epoch) relies on lookups always
	// passing the CURRENT epoch, which no longer equals the stale stamp.
	if card, ok := c.get(key, h, gen, epoch); !ok || card != 42 {
		t.Fatalf("pre-flush epoch get = %v, %v; want 42, true", card, ok)
	}

	// Same-key insert refreshes in place: no new slot, new value.
	epoch = c.epoch.Load()
	c.put(key, h, gen+1, epoch, 43)
	if card, ok := c.get(key, h, gen+1, epoch); !ok || card != 43 {
		t.Fatalf("refreshed get = %v, %v; want 43, true", card, ok)
	}
	if n := c.entries(); n != 1 {
		t.Fatalf("entries after same-key refresh = %d, want 1", n)
	}
}

func TestEstimateCacheEviction(t *testing.T) {
	met := NewMetrics()
	// One shard of exactly cacheWays slots: every probe group covers the
	// whole shard, so cacheWays+1 live same-generation inserts must evict.
	c := newEstimateCache(4, 1, cacheWays, met)
	epoch := c.epoch.Load()
	keys := make([][]float64, cacheWays+1)
	for i := range keys {
		keys[i] = cacheKey(4, float64(i)+0.25)
		c.put(keys[i], cacheHash(keys[i]), 1, epoch, float64(i))
	}
	if met.cacheEvictions.Value() == 0 {
		t.Error("no eviction after overfilling a full probe group")
	}
	if n := c.entries(); n > int64(cacheWays) {
		t.Errorf("entries = %d beyond capacity %d", n, cacheWays)
	}
	// The newest insert must be resident (second-chance always finds a
	// victim for it).
	last := keys[cacheWays]
	if card, ok := c.get(last, cacheHash(last), 1, epoch); !ok || card != float64(cacheWays) {
		t.Errorf("newest insert not resident: get = %v, %v", card, ok)
	}

	// Stale (old-generation) entries are preferred victims: inserting at a
	// new generation reclaims them without charging an eviction.
	before := met.cacheEvictions.Value()
	k := cacheKey(4, 99.5)
	c.put(k, cacheHash(k), 2, epoch, 7)
	if got := met.cacheEvictions.Value(); got != before {
		t.Errorf("evictions %d -> %d; overwriting a stale generation should be free", before, got)
	}
}

func TestEstimateCacheHitByteIdentity(t *testing.T) {
	srv, _, sch, _, gNew := newTestServerOpts(t, Options{EstimateCache: true})
	rng := rand.New(rand.NewSource(7))
	ref := srv.Estimator().Clone()

	preds := make([]query.Predicate, 32)
	for i := range preds {
		preds[i] = gNew.Gen(rng).Normalize(sch)
	}
	// First pass populates, second pass must hit — and both must be
	// byte-identical to an uncached reference clone.
	for pass := 0; pass < 2; pass++ {
		for _, p := range preds {
			got, want := srv.Estimate(p), ref.Estimate(p)
			if got != want {
				t.Fatalf("pass %d: estimate = %v, want %v", pass, got, want)
			}
		}
	}
	hits, misses := srv.met.cacheHits.Value(), srv.met.cacheMisses.Value()
	if misses != int64(len(preds)) {
		t.Errorf("misses = %d, want %d", misses, len(preds))
	}
	if hits != int64(len(preds)) {
		t.Errorf("hits = %d, want %d", hits, len(preds))
	}
	if n := srv.met.cacheEntries; n.Value() != float64(len(preds)) {
		t.Errorf("estimate_cache_entries = %v, want %d", n.Value(), len(preds))
	}
}

func TestEstimateCacheSwapInvalidates(t *testing.T) {
	srv, _, sch, _, gNew := newTestServerOpts(t, Options{EstimateCache: true})
	p := gNew.Gen(rand.New(rand.NewSource(3))).Normalize(sch)

	srv.pool.swap(&constEst{v: 111})
	if got := srv.Estimate(p); got != 111 {
		t.Fatalf("estimate = %v, want 111", got)
	}
	if got := srv.Estimate(p); got != 111 {
		t.Fatalf("cached estimate = %v, want 111", got)
	}
	if srv.met.cacheHits.Value() == 0 {
		t.Fatal("second estimate did not hit the cache")
	}

	// Swap a model with a different answer: the very next estimate must see
	// the new model, never the cached old answer.
	srv.pool.swap(&constEst{v: 222})
	if got := srv.Estimate(p); got != 222 {
		t.Fatalf("post-swap estimate = %v, want 222 (stale cache served)", got)
	}
}

func TestEstimateCacheGenerationStamp(t *testing.T) {
	// The cached value doubles as a generation witness: after each swap the
	// model's constant equals the new pool generation, so any hit whose value
	// differs from the current generation is a cross-generation leak.
	srv, _, sch, _, gNew := newTestServerOpts(t, Options{EstimateCache: true})
	rng := rand.New(rand.NewSource(5))
	preds := make([]query.Predicate, 8)
	for i := range preds {
		preds[i] = gNew.Gen(rng).Normalize(sch)
	}
	for swap := 0; swap < 10; swap++ {
		gen := srv.pool.generation() + 1
		srv.pool.swap(&constEst{v: float64(gen)})
		if got := srv.pool.generation(); got != gen {
			t.Fatalf("generation = %d, want %d", got, gen)
		}
		for _, p := range preds {
			for rep := 0; rep < 2; rep++ { // miss+fill, then hit
				if got := srv.Estimate(p); got != float64(gen) {
					t.Fatalf("gen %d rep %d: estimate = %v (stale generation served)", gen, rep, got)
				}
			}
		}
	}
}

func TestEstimateCacheNeverCachesDegraded(t *testing.T) {
	srv, _, sch, _, gNew := newTestServerOpts(t, Options{
		EstimateCache: true,
		Replicas:      1,
	})
	p := gNew.Gen(rand.New(rand.NewSource(9))).Normalize(sch)
	want := srv.Estimator().Clone().Estimate(p)

	// Hold the only replica: a budgeted estimate must fall back — and the
	// degraded answer must not be inserted.
	r := srv.pool.checkout()
	card, out := srv.EstimateBudget(p, time.Now().Add(time.Millisecond))
	if !out.Degraded {
		t.Fatalf("outcome = %+v, want degraded", out)
	}
	if card == want {
		t.Fatalf("fallback answer equals model answer; test cannot distinguish them")
	}
	srv.pool.checkin(r)

	// The degraded answer must be gone: the next estimate misses again and
	// returns the full-model answer.
	card, out = srv.EstimateBudget(p, time.Time{})
	if out.Degraded || out.Shed {
		t.Fatalf("outcome = %+v, want full", out)
	}
	if card != want {
		t.Fatalf("post-recovery estimate = %v, want %v (degraded answer was cached)", card, want)
	}
	if hits := srv.met.cacheHits.Value(); hits != 0 {
		t.Errorf("hits = %d, want 0", hits)
	}
	if misses := srv.met.cacheMisses.Value(); misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
	// Now it is cached — a full-model answer.
	if card = srv.Estimate(p); card != want {
		t.Fatalf("cached estimate = %v, want %v", card, want)
	}
	if hits := srv.met.cacheHits.Value(); hits != 1 {
		t.Errorf("hits after full answer = %d, want 1", hits)
	}
}

func TestEstimateCacheNeverCachesShed(t *testing.T) {
	srv, _, sch, _, gNew := newTestServerOpts(t, Options{
		EstimateCache: true,
		Replicas:      1,
		NoFallback:    true,
	})
	p := gNew.Gen(rand.New(rand.NewSource(11))).Normalize(sch)
	want := srv.Estimator().Clone().Estimate(p)

	r := srv.pool.checkout()
	_, out := srv.EstimateBudget(p, time.Now().Add(time.Millisecond))
	if !out.Shed {
		t.Fatalf("outcome = %+v, want shed", out)
	}
	srv.pool.checkin(r)

	card, out := srv.EstimateBudget(p, time.Time{})
	if out.Shed || out.Degraded {
		t.Fatalf("outcome = %+v, want full", out)
	}
	if card != want {
		t.Fatalf("post-shed estimate = %v, want %v", card, want)
	}
	if hits := srv.met.cacheHits.Value(); hits != 0 {
		t.Errorf("hits = %d, want 0 (shed outcome was cached)", hits)
	}
}

func TestFeedbackCoherenceAndFlushOnAlarm(t *testing.T) {
	srv, ts, sch, ann, gNew := newTestServerOpts(t, Options{
		EstimateCache:     true,
		CacheFlushOnAlarm: true,
		DriftWindow:       time.Minute,
		DriftAlarmGMQ:     4,
	})
	p := gNew.Gen(rand.New(rand.NewSource(13))).Normalize(sch)
	_ = ann

	// Warm the cache, then post ground-truth feedback wildly off the
	// estimate. The feedback path re-estimates (hitting the cache) and its
	// q-error must still reach the drift watch — a cache that swallowed the
	// accuracy signal would never alarm.
	est := srv.Estimate(p)
	hitsBefore := srv.met.cacheHits.Value()
	missesBefore := srv.met.cacheMisses.Value()
	gt := est * 1e6
	// The drift watch refuses to alarm below its windowed observation floor
	// (default 20), so post well past it.
	for i := 0; i < 25; i++ {
		var fr feedbackResponse
		r := postJSON(t, ts.URL+"/feedback", map[string]any{
			"lows": p.Lows, "highs": p.Highs, "cardinality": gt,
		}, &fr)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("feedback %d: status %d", i, r.StatusCode)
		}
	}
	if hits := srv.met.cacheHits.Value(); hits <= hitsBefore {
		t.Errorf("feedback estimates bypassed the cache: hits %d -> %d", hitsBefore, hits)
	}
	if inv := srv.met.cacheInvalidations.Value(); inv == 0 {
		t.Fatal("drift alarm did not flush the cache")
	}
	var flushed bool
	for _, ev := range srv.rec.journal.Snapshot() {
		if ev.Kind == "cache_flush" {
			flushed = true
		}
	}
	if !flushed {
		t.Error("journal has no cache_flush event")
	}
	// The flush forced (at least) one recompute: the first feedback after
	// the alarm missed the emptied cache and re-inserted under the new
	// epoch. Either way the answer never drifts from the served model's.
	if misses := srv.met.cacheMisses.Value(); misses <= missesBefore {
		t.Errorf("flush caused no recompute: misses %d -> %d", missesBefore, misses)
	}
	if got := srv.Estimate(p); got != est {
		t.Fatalf("post-flush estimate = %v, want %v", got, est)
	}
}

func TestEstimateCacheSwapUnderLoad(t *testing.T) {
	// Swap-under-load soak: readers continuously estimate a fixed predicate
	// set while the main goroutine swaps estimate-identical clones and
	// flushes the cache. Every answer must stay byte-identical throughout —
	// under -race this also proves the seqlock publication is clean.
	srv, _, sch, _, gNew := newTestServerOpts(t, Options{
		EstimateCache: true,
		CacheEntries:  256, // small: force eviction churn under the soak
	})
	rng := rand.New(rand.NewSource(17))
	preds := make([]query.Predicate, 64)
	want := make([]float64, len(preds))
	ref := srv.Estimator().Clone()
	for i := range preds {
		preds[i] = gNew.Gen(rng).Normalize(sch)
		want[i] = ref.Estimate(preds[i])
	}

	var stop atomic.Bool
	var wrong atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				i := r.Intn(len(preds))
				if srv.Estimate(preds[i]) != want[i] {
					wrong.Add(1)
					return
				}
			}
		}(int64(w + 100))
	}
	src := srv.Estimator()
	for i := 0; i < 50; i++ {
		srv.pool.swap(src.Clone())
		if i%5 == 0 {
			srv.InvalidateEstimateCache()
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d estimates diverged from the reference during swaps", n)
	}
	if srv.met.cacheHits.Value() == 0 {
		t.Error("soak never hit the cache")
	}
}

func TestStatuszShowsCache(t *testing.T) {
	srv, ts, sch, _, gNew := newTestServerOpts(t, Options{EstimateCache: true})
	p := gNew.Gen(rand.New(rand.NewSource(19))).Normalize(sch)
	srv.Estimate(p)
	srv.Estimate(p)

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "Estimate cache") {
		t.Error("/statusz has no Estimate cache section")
	}
}

func TestStatuszCacheDisabled(t *testing.T) {
	_, ts, _, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "-estimate-cache") {
		t.Error("/statusz cache section missing its disabled hint")
	}
}
