package serve

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file implements the drift-aware estimate cache: a sharded,
// allocation-free predicate→cardinality map sitting in front of the replica
// pool. The paper's whole premise (§1, §3.1) is that the served model only
// changes at discrete adaptation-period boundaries — between two swaps the
// model is a pure function of the feature vector, so a repeated predicate
// can be answered from memory, byte-identical, without touching a replica.
//
// Correctness hangs on two stamps carried by every entry:
//
//   - gen: the replica-pool generation of the model that COMPUTED the
//     answer (not the generation current at insert time — a swap racing the
//     insert must leave the entry invisible, never serve it one generation
//     late). Lookups require an exact match with the pool's current
//     generation, so a model swap invalidates the whole cache with the one
//     atomic bump the pool already performs: no scan, no lock.
//   - epoch: the cache's flush epoch, read BEFORE the underlying estimate
//     began. InvalidateEstimateCache bumps the epoch; an insert racing a
//     flush is stamped with the pre-flush epoch and is therefore
//     conservatively invisible.
//
// The lookup path takes no lock. Entries are seqlock-style, but with every
// mutable word atomic (a classical seqlock's plain reads would be flagged by
// the race detector, and the swap-under-load soak runs under -race): a
// reader snapshots seq, reads the stamped words and the key, and accepts
// only if seq was even and unchanged. Writers (inserts only) serialize per
// shard on a mutex that no reader ever touches.
type estimateCache struct {
	shards []cacheShard
	// shardMask selects a shard from the hash's low bits (len(shards)-1,
	// power of two).
	shardMask uint64
	// keyLen is the feature-vector length (2·d); keys are compared word-wise
	// as raw float64 bits.
	keyLen int
	// capacity is the total entry count across shards, for /statusz.
	capacity int
	// epoch is the flush epoch: bumping it makes every existing entry
	// invisible (their stored epoch no longer matches). Entries are
	// reclaimed lazily by the insert path's victim scan.
	epoch atomic.Uint64
	// live counts slots holding an entry (including generation-stale ones
	// awaiting overwrite), exported as estimate_cache_entries.
	live atomic.Int64
	// scratch recycles featurization key buffers so the lookup path
	// allocates nothing; misses of the free-list allocate and the buffer
	// joins the pool on release.
	scratch chan []float64
	met     *Metrics
}

// cacheWays is the probe-group width: an entry may live in any of the
// cacheWays consecutive slots after its home slot, and eviction picks a
// second-chance victim within the group.
const cacheWays = 4

// cacheEntry is one cached answer. seq is the seqlock word: odd while a
// writer is mid-update, bumped to the next even value when the write is
// complete. All payload words are atomics so torn reads are impossible at
// the word level and the race detector sees only synchronized accesses; the
// seq validation makes the multi-word snapshot consistent.
type cacheEntry struct {
	seq   atomic.Uint64
	hash  atomic.Uint64
	gen   atomic.Uint64
	epoch atomic.Uint64
	// card holds math.Float64bits of the cached cardinality.
	card atomic.Uint64
	// used is the clock/second-chance reference bit.
	used atomic.Uint32
}

// cacheShard is one power-of-two slice of the cache. Readers index ents and
// keys lock-free; mu serializes inserts (victim choice + the seqlock write)
// and is never taken on the lookup path.
type cacheShard struct {
	mu   sync.Mutex
	ents []cacheEntry
	// keys is a flat slab of float64 bit patterns: ents[i]'s key occupies
	// keys[i*keyLen : (i+1)*keyLen].
	keys []atomic.Uint64
	// mask is len(ents)-1 (power of two).
	mask uint64
	// hand is the per-shard second-chance clock hand, advanced under mu.
	hand uint64
}

// Cache sizing defaults, overridable through Options.
const (
	defaultCacheShards  = 8
	defaultCacheEntries = 4096
	maxCacheShards      = 256
	// cacheScratchBufs bounds the key-buffer free-list; a burst of more
	// concurrent estimates than this allocates the overflow buffers once.
	cacheScratchBufs = 64
)

// nextPow2 rounds n up to the next power of two (n must be >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newEstimateCache builds a cache with keyLen-word keys over roughly
// `entries` total slots split across `shards` power-of-two shards.
func newEstimateCache(keyLen, shards, entries int, met *Metrics) *estimateCache {
	if shards <= 0 {
		shards = defaultCacheShards
	}
	shards = nextPow2(shards)
	if shards > maxCacheShards {
		shards = maxCacheShards
	}
	if entries <= 0 {
		entries = defaultCacheEntries
	}
	per := nextPow2((entries + shards - 1) / shards)
	if per < cacheWays {
		per = cacheWays
	}
	c := &estimateCache{
		shards:    make([]cacheShard, shards),
		shardMask: uint64(shards - 1),
		keyLen:    keyLen,
		capacity:  shards * per,
		scratch:   make(chan []float64, cacheScratchBufs),
		met:       met,
	}
	for i := range c.shards {
		c.shards[i].ents = make([]cacheEntry, per)
		c.shards[i].keys = make([]atomic.Uint64, per*keyLen)
		c.shards[i].mask = uint64(per - 1)
	}
	return c
}

// acquire takes a key scratch buffer off the free-list.
func (c *estimateCache) acquire() []float64 {
	select {
	case b := <-c.scratch:
		return b
	default:
	}
	return make([]float64, c.keyLen) //lint:allow hotpathalloc key-scratch free-list miss: only a burst beyond the pooled buffers allocates, and every buffer recycles on release
}

// release returns a key scratch buffer to the free-list.
func (c *estimateCache) release(b []float64) {
	select {
	case c.scratch <- b:
	default:
	}
}

// cacheHash mixes the feature vector's raw float64 bits: FNV-1a word-wise,
// then a murmur3-style finalizer so the low bits (shard) and high bits
// (slot) are independently well distributed.
func cacheHash(key []float64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range key {
		h = (h ^ math.Float64bits(v)) * 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// keyEqual compares the stored key starting at slot*keyLen with key,
// bit-exact. Atomic loads keep the race detector satisfied; the caller's
// seq validation rejects a torn mixture of two keys.
func (sh *cacheShard) keyEqual(slot, keyLen int, key []float64) bool {
	off := slot * keyLen
	for i, v := range key {
		if sh.keys[off+i].Load() != math.Float64bits(v) {
			return false
		}
	}
	return true
}

// get probes the cache for key (with hash h) against the given serving
// generation and flush epoch. It is lock-free: at most cacheWays seqlock
// reads. A hit marks the entry recently used for the second-chance clock.
func (c *estimateCache) get(key []float64, h, gen, epoch uint64) (float64, bool) {
	sh := &c.shards[h&c.shardMask]
	base := (h >> 32) & sh.mask
	for i := uint64(0); i < cacheWays; i++ {
		slot := (base + i) & sh.mask
		e := &sh.ents[slot]
		s1 := e.seq.Load()
		if s1 == 0 || s1&1 != 0 {
			continue // empty, or a writer is mid-update
		}
		if e.hash.Load() != h || e.gen.Load() != gen || e.epoch.Load() != epoch {
			continue
		}
		if !sh.keyEqual(int(slot), c.keyLen, key) {
			continue
		}
		card := math.Float64frombits(e.card.Load())
		if e.seq.Load() != s1 {
			continue // raced an insert; the snapshot may mix two entries
		}
		if e.used.Load() == 0 {
			e.used.Store(1)
		}
		return card, true
	}
	return 0, false
}

// put inserts an answer computed by generation gen under flush epoch
// `epoch` (both observed by the caller around the underlying estimate).
// Within the probe group it prefers, in order: the same key (refresh in
// place), an empty slot, a stale entry (old generation or epoch), then a
// second-chance eviction of a live entry.
func (c *estimateCache) put(key []float64, h, gen, epoch uint64, card float64) {
	sh := &c.shards[h&c.shardMask]
	base := (h >> 32) & sh.mask
	sh.mu.Lock()
	victim, empty, stale := -1, -1, -1
	for i := uint64(0); i < cacheWays; i++ {
		slot := int((base + i) & sh.mask)
		e := &sh.ents[slot]
		if e.seq.Load() == 0 {
			if empty < 0 {
				empty = slot
			}
			continue
		}
		if e.hash.Load() == h && sh.keyEqual(slot, c.keyLen, key) {
			victim = slot // same predicate: overwrite its slot
			break
		}
		if stale < 0 && (e.gen.Load() != gen || e.epoch.Load() != epoch) {
			stale = slot
		}
	}
	evicted, fresh := false, false
	switch {
	case victim >= 0:
	case empty >= 0:
		victim, fresh = empty, true
	case stale >= 0:
		victim = stale
	default:
		// Every way holds a live same-generation entry: second-chance scan.
		// The first pass clears reference bits; the second pass must find a
		// victim, so the loop is bounded at two laps.
		for lap := 0; lap < 2*cacheWays; lap++ {
			slot := int((base + sh.hand%cacheWays) & sh.mask)
			sh.hand++
			e := &sh.ents[slot]
			if e.used.Load() != 0 {
				e.used.Store(0)
				continue
			}
			victim = slot
			break
		}
		if victim < 0 {
			victim = int(base & sh.mask)
		}
		evicted = true
	}
	e := &sh.ents[victim]
	e.seq.Add(1) // odd: readers skip while the words below are in flux
	e.hash.Store(h)
	e.gen.Store(gen)
	e.epoch.Store(epoch)
	e.card.Store(math.Float64bits(card))
	off := victim * c.keyLen
	for i, v := range key {
		sh.keys[off+i].Store(math.Float64bits(v))
	}
	e.used.Store(1)
	e.seq.Add(1) // even: the entry is visible again
	sh.mu.Unlock()
	if fresh {
		c.met.cacheEntries.Set(float64(c.live.Add(1)))
	}
	if evicted {
		c.met.cacheEvictions.Inc()
	}
}

// flushAll makes every cached answer invisible by bumping the flush epoch.
// Slots stay occupied (and counted) until the insert path overwrites them.
func (c *estimateCache) flushAll() {
	c.epoch.Add(1)
}

// entries reports how many slots hold an entry.
func (c *estimateCache) entries() int64 { return c.live.Load() }
