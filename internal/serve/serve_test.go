package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/warper"
	"warper/internal/workload"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *query.Schema, *annotator.Annotator, workload.Generator) {
	t.Helper()
	return newTestServerOpts(t, Options{})
}

func newTestServerOpts(t *testing.T, sopts Options) (*Server, *httptest.Server, *query.Schema, *annotator.Annotator, workload.Generator) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	tbl := dataset.PRSA(2000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	opts := workload.Options{MaxConstrained: 2}
	gTrain := workload.New("w1", tbl, sch, opts)
	train := annAll(t, ann, workload.Generate(gTrain, 300, rng))
	lm := ce.NewLM(ce.LMMLP, sch, 1)
	if err := lm.Train(train); err != nil {
		t.Fatalf("Train: %v", err)
	}

	cfg := warper.DefaultConfig()
	cfg.Hidden = 32
	cfg.Depth = 2
	cfg.NIters = 20
	cfg.Gamma = 100
	cfg.PickSize = 60
	ad, err := warper.New(cfg, lm, sch, ann, train)
	if err != nil {
		t.Fatalf("warper.New: %v", err)
	}
	srv := NewWithOptions(ad, sch, sopts)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	gNew := workload.New("w4", tbl, sch, opts)
	return srv, ts, sch, ann, gNew
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts, _, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	srv, ts, sch, _, gNew := newTestServer(t)
	p := gNew.Gen(rand.New(rand.NewSource(1)))
	var resp estimateResponse
	r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	want := srv.Estimator().Estimate(p.Normalize(sch))
	if resp.Cardinality != want {
		t.Errorf("estimate = %v, want %v", resp.Cardinality, want)
	}
}

func TestEstimateRejectsBadDimensions(t *testing.T) {
	_, ts, _, _, _ := newTestServer(t)
	r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: []float64{1}, Highs: []float64{2}}, nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", r.StatusCode)
	}
}

func TestEstimateRejectsGarbage(t *testing.T) {
	_, ts, _, _, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewBufferString("not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestFeedbackPeriodStatusFlow(t *testing.T) {
	_, ts, _, ann, gNew := newTestServer(t)
	rng := rand.New(rand.NewSource(2))
	// Post 30 labeled feedback items from the drifted workload.
	for i := 0; i < 30; i++ {
		p := gNew.Gen(rng)
		card := countOK(t, ann, p)
		var fb feedbackResponse
		r := postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
			Cardinality:   &card,
		}, &fb)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("feedback status = %d", r.StatusCode)
		}
		if fb.Buffered != i+1 {
			t.Fatalf("buffered = %d, want %d", fb.Buffered, i+1)
		}
	}
	// Trigger an adaptation period.
	var pr periodResponse
	r := postJSON(t, ts.URL+"/period", struct{}{}, &pr)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("period status = %d", r.StatusCode)
	}
	if pr.Arrivals != 30 {
		t.Errorf("period consumed %d arrivals, want 30", pr.Arrivals)
	}
	// Status reflects the drained buffer and the period count.
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Buffered != 0 || st.Periods != 1 {
		t.Errorf("status = %+v", st)
	}
	if st.Model == "" || st.PoolSize == 0 {
		t.Errorf("status incomplete: %+v", st)
	}
}

func TestPeriodWithEmptyBuffer(t *testing.T) {
	_, ts, _, _, _ := newTestServer(t)
	var pr periodResponse
	r := postJSON(t, ts.URL+"/period", struct{}{}, &pr)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if pr.Arrivals != 0 {
		t.Errorf("arrivals = %d", pr.Arrivals)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts, _, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/estimate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /estimate should not be OK")
	}
	_ = fmt.Sprint() // keep fmt import for potential debugging
}

// countOK unwraps annotator.Count for generator-produced predicates.
func countOK(t *testing.T, ann *annotator.Annotator, p query.Predicate) float64 {
	t.Helper()
	c, err := ann.Count(context.Background(), p)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	return c
}

func annAll(t *testing.T, ann *annotator.Annotator, ps []query.Predicate) []query.Labeled {
	t.Helper()
	out, err := ann.AnnotateAll(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
