// Package serve exposes a Warper-adapted cardinality estimator over HTTP:
// a query optimizer (or anything else) asks for estimates, posts execution
// feedback, and triggers adaptation periods. This is the deployment shape
// §1 of the paper sketches — the CE model serves estimates continuously
// while Warper periodically repairs it against drifts.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"warper/internal/ce"
	"warper/internal/query"
	"warper/internal/warper"
)

// Server wires an Adapter behind an http.Handler. All handlers are safe for
// concurrent use; adaptation runs under the same lock as estimation so the
// model is never read mid-update.
type Server struct {
	mu      sync.Mutex
	adapter *warper.Adapter
	sch     *query.Schema
	buffer  []warper.Arrival
	periods int
}

// New builds a Server around an adapter.
func New(a *warper.Adapter, sch *query.Schema) *Server {
	return &Server{adapter: a, sch: sch}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", s.handleEstimate)
	mux.HandleFunc("POST /feedback", s.handleFeedback)
	mux.HandleFunc("POST /period", s.handlePeriod)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// predicateJSON is the wire form of a predicate.
type predicateJSON struct {
	Lows  []float64 `json:"lows"`
	Highs []float64 `json:"highs"`
}

func (s *Server) decodePredicate(pj predicateJSON) (query.Predicate, error) {
	d := s.sch.NumCols()
	if len(pj.Lows) != d || len(pj.Highs) != d {
		return query.Predicate{}, fmt.Errorf("predicate needs %d lows and highs, got %d/%d",
			d, len(pj.Lows), len(pj.Highs))
	}
	p := query.Predicate{Lows: pj.Lows, Highs: pj.Highs}
	return p.Normalize(s.sch), nil
}

type estimateRequest struct {
	predicateJSON
}

type estimateResponse struct {
	Cardinality float64 `json:"cardinality"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	p, err := s.decodePredicate(req.predicateJSON)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	card := s.adapter.M.Estimate(p)
	s.mu.Unlock()
	writeJSON(w, estimateResponse{Cardinality: card})
}

type feedbackRequest struct {
	predicateJSON
	// Cardinality is the observed true cardinality; negative or missing
	// means the query ran without execution feedback.
	Cardinality *float64 `json:"cardinality"`
}

type feedbackResponse struct {
	Buffered int `json:"buffered"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	p, err := s.decodePredicate(req.predicateJSON)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ar := warper.Arrival{Pred: p}
	if req.Cardinality != nil && *req.Cardinality >= 0 {
		ar.GT = *req.Cardinality
		ar.HasGT = true
	}
	s.mu.Lock()
	s.buffer = append(s.buffer, ar)
	n := len(s.buffer)
	s.mu.Unlock()
	writeJSON(w, feedbackResponse{Buffered: n})
}

type periodResponse struct {
	Mode      string  `json:"mode"`
	Arrivals  int     `json:"arrivals"`
	Generated int     `json:"generated"`
	Annotated int     `json:"annotated"`
	Updated   bool    `json:"updated"`
	DeltaM    float64 `json:"delta_m"`
	DeltaJS   float64 `json:"delta_js"`
}

func (s *Server) handlePeriod(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	arrivals := s.buffer
	s.buffer = nil
	rep := s.adapter.Period(arrivals)
	s.periods++
	s.mu.Unlock()
	writeJSON(w, periodResponse{
		Mode:      rep.Detection.Mode.String(),
		Arrivals:  len(arrivals),
		Generated: rep.Generated,
		Annotated: rep.Annotated,
		Updated:   rep.Updated,
		DeltaM:    rep.Detection.DeltaM,
		DeltaJS:   rep.Detection.DeltaJS,
	})
}

type statusResponse struct {
	Model    string  `json:"model"`
	PoolSize int     `json:"pool_size"`
	Labeled  int     `json:"labeled"`
	Buffered int     `json:"buffered"`
	Periods  int     `json:"periods"`
	Pi       float64 `json:"pi"`
	Gamma    int     `json:"gamma"`
	Costs    string  `json:"costs"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := statusResponse{
		Model:    s.adapter.M.Name(),
		PoolSize: s.adapter.Pool.Len(),
		Labeled:  s.adapter.Pool.CountLabeled(),
		Buffered: len(s.buffer),
		Periods:  s.periods,
		Pi:       s.adapter.Pi(),
		Gamma:    s.adapter.Gamma(),
		Costs:    s.adapter.Ledger.String(),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// Estimator returns the served model, for tests.
func (s *Server) Estimator() ce.Estimator { return s.adapter.M }
