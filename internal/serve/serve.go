// Package serve exposes a Warper-adapted cardinality estimator over HTTP:
// a query optimizer (or anything else) asks for estimates, posts execution
// feedback, and triggers adaptation periods. This is the deployment shape
// §1 of the paper sketches — the CE model serves estimates continuously
// while Warper periodically repairs it against drifts.
//
// Concurrency model: estimates run on a pool of independent model replicas
// checked out via a lock-free free-list (see replicas.go), so concurrent
// /estimate requests never serialize on a mutex. A short serving lock (mu)
// guards only the feedback buffer and status counters; a separate period
// lock serializes adaptation. An adaptation period mutates the adapter's
// model while the pool keeps serving private clones of the previous
// generation; the repaired model is swapped in with one atomic generation
// bump at the end, and replicas re-clone lazily — so estimates stay
// servable (and fast) while a period is in flight, instead of queueing
// behind a multi-second model update. The measured replica-checkout wait is
// exported so the win stays visible. An optional micro-batching coalescer
// (Options.BatchWindow) drains concurrent estimates into single batched
// forward passes.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"warper/internal/ce"
	"warper/internal/metrics"
	"warper/internal/obs"
	"warper/internal/query"
	"warper/internal/resilience"
	"warper/internal/warper"
	"warper/internal/wire"
)

// Options configures optional server features.
type Options struct {
	// Logger receives structured request/period logs; nil discards debug
	// logs and sends period summaries nowhere.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose internals and cost CPU.
	EnablePprof bool
	// PeriodTimeout bounds one POST /period invocation: the adaptation
	// runs under a context with this deadline (layered on the request's
	// own context, which already dies when the client disconnects). On
	// expiry the period aborts and the pre-period model keeps serving.
	// 0 = no extra deadline.
	PeriodTimeout time.Duration
	// Replicas is the serving-pool size: how many independent model clones
	// can estimate concurrently. 0 or negative defaults to GOMAXPROCS.
	Replicas int
	// BatchWindow enables the micro-batching coalescer: concurrent
	// estimates are drained into single batched forward passes, waiting at
	// most this long to accumulate a batch. 0 disables coalescing. The
	// results are bit-identical to per-request estimates (the
	// ce.BatchEstimator contract); the trade is a little p50 latency for
	// amortized inference cost under concurrency.
	BatchWindow time.Duration
	// BatchMax caps one coalesced batch. 0 defaults to 64.
	BatchMax int
	// TraceSample enables request tracing: one estimate (and period) request
	// in every TraceSample is traced through the serving stages and retained
	// for /debug/traces. 0 disables tracing; the disabled hot path costs one
	// atomic load and allocates nothing.
	TraceSample int
	// TraceBuf is how many finished traces /debug/traces retains (default 64).
	TraceBuf int
	// DriftWindow is the rolling window of the q-error drift watch
	// (default 5m).
	DriftWindow time.Duration
	// DriftAlarmGMQ raises the drift alarm (journal event + warper_drift_alarm
	// gauge) when the windowed geometric mean q-error reaches this value.
	// 0 disables alarming; the windowed GMQ is still tracked for /statusz.
	DriftAlarmGMQ float64
	// EstimateTimeout is the default per-request deadline budget for
	// /estimate: how long a request may queue for a replica before the
	// server answers from the fallback ladder (or sheds, when fallback is
	// off). Requests can override it with the X-Warper-Deadline-Ms header.
	// 0 preserves the legacy contract: wait forever, no admission bound.
	EstimateTimeout time.Duration
	// ShedQueue bounds the admission queue of deadline-carrying estimates;
	// arrival ShedQueue+1 is shed immediately with 429 + Retry-After. 0
	// defaults to max(64, 16×Replicas).
	ShedQueue int
	// NoFallback disables the estimator fallback ladder: budget misses and
	// degraded-state requests shed instead of answering from histograms.
	NoFallback bool
	// ServeFaults, when non-nil, injects the deterministic overload chaos
	// plan (replica starvation, slow swaps) into the serving pool.
	ServeFaults *resilience.ServeFaults
	// Health tunes the serving health state machine; zero fields default.
	Health HealthConfig
	// EstimateCache enables the generation-stamped predicate→cardinality
	// cache in front of the replica pool: repeated predicates are answered
	// byte-identically from memory until the next model swap (whose atomic
	// generation bump invalidates the whole cache). Degraded, shed and
	// deadline-missed answers are never cached.
	EstimateCache bool
	// CacheShards is the estimate-cache shard count, rounded up to a power
	// of two (0 = 8).
	CacheShards int
	// CacheEntries bounds the estimate cache's total capacity across all
	// shards (0 = 4096). Full probe groups evict second-chance style.
	CacheEntries int
	// CacheFlushOnAlarm flushes the estimate cache when the drift watch
	// raises its alarm, so stale pre-drift answers cannot mask the very
	// drift the recorder is watching.
	CacheFlushOnAlarm bool
	// BinaryProtocol mounts the columnar binary batch endpoints: POST
	// /estimate/batch (one frame per request) and POST /estimate/batch/stream
	// (length-prefixed frames on one connection). The wire format lives in
	// internal/wire; decoded predicates view the request bytes in place and
	// the steady path allocates nothing. Off by default.
	BinaryProtocol bool
}

// Server wires an Adapter behind an http.Handler. All handlers are safe for
// concurrent use.
type Server struct {
	// mu guards buffer, periods and status; it is held only for O(µs)
	// sections (a buffer append, a snapshot copy). Estimates never touch
	// it — they run on the replica pool.
	mu sync.Mutex
	// periodMu serializes adaptation; handlePeriod TryLocks it and answers
	// 409 when a period is already running.
	periodMu sync.Mutex

	adapter *warper.Adapter
	sch     *query.Schema
	// pool serves estimates from private model clones; handlePeriod swaps
	// a repaired model in with one atomic generation bump.
	pool *replicaPool
	// coal, when non-nil, drains concurrent estimates into batched forward
	// passes (Options.BatchWindow).
	coal *coalescer
	// cache, when non-nil, answers repeated predicates without touching the
	// pool; entries are generation-stamped, so a model swap invalidates them
	// wholesale (Options.EstimateCache).
	cache   *estimateCache
	buffer  []warper.Arrival
	periods int
	// status caches the adapter-derived fields of GET /status so the
	// handler never touches adapter state a running period may be mutating.
	status statusSnapshot

	met *Metrics
	// rec is the drift flight recorder: request tracer, adaptation event
	// journal, windowed telemetry and the rolling q-error drift watch.
	rec           *flightRecorder
	logger        *slog.Logger
	pprof         bool
	periodTimeout time.Duration

	// fb is the estimator fallback ladder (nil with Options.NoFallback):
	// the tier estimates drop to when the model cannot be reached in budget.
	fb *fallbackLadder
	// health is the serving health state machine; the estimate path reads
	// its state with one atomic load, tick paths evaluate it.
	health *healthTracker
	// estimateTimeout is the default /estimate deadline budget (0 = none).
	estimateTimeout time.Duration

	// wireOn mounts the binary batch endpoints; wireFree is their pooled
	// request-state free list (see binary.go).
	wireOn   bool
	wireFree chan *wireState
}

// statusSnapshot holds the /status fields refreshed under mu after every
// period.
type statusSnapshot struct {
	Model    string
	PoolSize int
	Labeled  int
	Pi       float64
	Gamma    int
	Costs    string
}

// New builds a Server around an adapter with default options.
func New(a *warper.Adapter, sch *query.Schema) *Server {
	return NewWithOptions(a, sch, Options{})
}

// NewWithOptions builds a Server with explicit options. The server installs
// its metric set as the adapter's Observer unless one is already attached.
// Servers with a batch window must be Closed when done.
func NewWithOptions(a *warper.Adapter, sch *query.Schema, opts Options) *Server {
	s := &Server{
		adapter:       a,
		sch:           sch,
		met:           NewMetrics(),
		logger:        opts.Logger,
		pprof:         opts.EnablePprof,
		periodTimeout: opts.PeriodTimeout,
	}
	if s.logger == nil {
		// Discard at a level above every call site rather than relying on
		// slog.DiscardHandler (Go 1.24+); go.mod targets 1.22.
		s.logger = slog.New(slog.NewTextHandler(io.Discard,
			&slog.HandlerOptions{Level: slog.Level(127)}))
	}
	s.rec = newFlightRecorder(s.met, opts)
	if a.Obs == nil {
		a.Obs = s.met
	}
	n := opts.Replicas
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	// The pool source is a private snapshot, never the adapter's own M:
	// replica refreshes advance the source's RNG, and the adapter's seeded
	// state must stay traffic-independent.
	s.pool = newReplicaPool(a.ModelSnapshot(), n, s.met)
	if opts.ShedQueue > 0 {
		s.pool.maxQueue = int64(opts.ShedQueue)
	}
	s.pool.faults = opts.ServeFaults
	s.estimateTimeout = opts.EstimateTimeout
	if !opts.NoFallback {
		// Build the fallback ladder up front: the histogram tier from the
		// adapter's live table, the scale prior from the initial model.
		// Construction is single-threaded, so probing the adapter's model
		// here cannot race a replica refresh.
		s.fb = newFallbackLadder()
		s.fb.refresh(a.Table(), a.M, sch)
	}
	s.health = newHealthTracker(opts.Health.withDefaults(s.pool.maxQueue), s.met, s.rec.journal)
	s.met.health = s.health
	if opts.BatchWindow > 0 {
		bm := opts.BatchMax
		if bm <= 0 {
			bm = 64
		}
		s.coal = newCoalescer(s.pool, opts.BatchWindow, bm, s.met, s.fb)
	}
	if opts.EstimateCache {
		s.cache = newEstimateCache(sch.FeatureDim(), opts.CacheShards, opts.CacheEntries, s.met)
		if opts.CacheFlushOnAlarm {
			// The drift watch raising its alarm means the cached pre-drift
			// answers are the ones masking the drift: flush them so feedback
			// keeps measuring the live model against the live data.
			s.rec.onDriftAlarm = s.InvalidateEstimateCache
		}
	}
	if opts.BinaryProtocol {
		s.wireOn = true
		s.wireFree = make(chan *wireState, wirePoolSize)
	}
	s.refreshStatusLocked()
	return s
}

// Close releases background serving resources (the batching dispatcher).
// Idempotent; only needed when Options.BatchWindow was set.
func (s *Server) Close() {
	if s.coal != nil {
		s.coal.Close()
	}
}

// Estimate answers one predicate on the served model — the in-process
// equivalent of POST /estimate, exported for embedding Warper without HTTP
// and for the serving benchmark. The predicate must already be normalized
// against the server's schema. Safe for concurrent use.
func (s *Server) Estimate(p query.Predicate) float64 {
	return s.estimate(p, nil)
}

// estimate is the traced form of Estimate: the estimate cache first (when
// enabled), then the coalesced/checkout path, populating the cache on the
// way out. With tr == nil the path is identical to before tracing existed —
// nil-receiver stage calls compile to cheap no-ops and nothing allocates.
func (s *Server) estimate(p query.Predicate, tr *obs.Trace) float64 {
	if s.cache == nil {
		card, _ := s.estimateUncached(p, tr)
		return card
	}
	pr, card, hit := s.cacheLookup(p, tr)
	if hit {
		return card
	}
	card, gen := s.estimateUncached(p, tr)
	s.cacheFill(pr, gen, card)
	return card
}

// estimateUncached runs one predicate through the coalescer or a directly
// checked-out replica, returning the answer and the serving generation of
// the model that computed it.
func (s *Server) estimateUncached(p query.Predicate, tr *obs.Trace) (float64, uint64) {
	if s.coal != nil {
		// Zero deadline: the batch outcome can only be the zero value.
		if card, gen, _, ok := s.coal.estimate(p, tr, time.Time{}); ok {
			return card, gen
		}
		// Coalescer closed: fall through to the direct checkout path.
	}
	tr.EnterStage("checkout")
	r := s.pool.checkout()
	return s.runOn(r, p, tr)
}

// runOn answers one predicate on a checked-out replica, returning the
// replica's serving generation alongside the answer (the cache stamps its
// entries with the generation that computed them, never the one current at
// insert time). The deferred checkin is the replica-leak guard: even a
// panicking model hands its replica back to the free list (forward scratch
// is overwritten per call, so the replica stays usable) before the panic
// reaches the recover middleware.
func (s *Server) runOn(r *replica, p query.Predicate, tr *obs.Trace) (float64, uint64) {
	defer s.pool.checkin(r)
	if tr != nil {
		tr.BatchSize = 1
		tr.Generation = r.gen
	}
	tr.EnterStage("infer")
	return r.model.Estimate(p), r.gen
}

// cacheProbe carries one request's cache interaction across the miss path:
// the featurized key (a free-list scratch buffer), its hash, and the
// generation + flush epoch the lookup ran against.
type cacheProbe struct {
	key   []float64
	hash  uint64
	epoch uint64
}

// cacheLookup featurizes p and probes the estimate cache. On a hit the
// scratch key is already released; on a miss the caller must hand the probe
// to cacheFill (which also releases it). The flush epoch is read before the
// lookup — and therefore before the underlying estimate a miss will run —
// so an insert racing InvalidateEstimateCache stamps the pre-flush epoch
// and stays conservatively invisible.
func (s *Server) cacheLookup(p query.Predicate, tr *obs.Trace) (cacheProbe, float64, bool) {
	tr.EnterStage("cache")
	pr := cacheProbe{key: s.cache.acquire(), epoch: s.cache.epoch.Load()}
	p.FeaturizeInto(s.sch, pr.key)
	pr.hash = cacheHash(pr.key)
	if card, ok := s.cache.get(pr.key, pr.hash, s.pool.generation(), pr.epoch); ok {
		s.cache.release(pr.key)
		s.met.cacheHits.Inc()
		return pr, card, true
	}
	s.met.cacheMisses.Inc()
	return pr, 0, false
}

// cacheFill completes a miss: gen is the serving generation that computed
// card, or 0 when the answer must not be cached (fallback-ladder, shed, or
// deadline-missed responses — a degraded answer served from cache after
// recovery would be a silent accuracy regression).
func (s *Server) cacheFill(pr cacheProbe, gen uint64, card float64) {
	if gen != 0 {
		s.cache.put(pr.key, pr.hash, gen, pr.epoch, card)
	}
	s.cache.release(pr.key)
}

// InvalidateEstimateCache drops every cached estimate by bumping the
// cache's flush epoch — one atomic add, no scan. Wired to the drift alarm
// under Options.CacheFlushOnAlarm and exported for embedders and the cache
// benchmarks. No-op when the cache is disabled.
func (s *Server) InvalidateEstimateCache() {
	if s.cache == nil {
		return
	}
	s.cache.flushAll()
	s.met.cacheInvalidations.Inc()
	s.rec.journal.Append("cache_flush", 0, map[string]any{
		"entries": s.cache.entries(),
	})
}

// Fallback and shed reasons, exported on the estimate_fallback_total and
// estimate_shed_total counters and in degraded response bodies.
const (
	reasonTimeout   = "timeout"    // checkout missed the deadline budget
	reasonBreaker   = "breaker"    // annotation breaker open, server degraded
	reasonDegraded  = "degraded"   // degraded health, no replica free
	reasonQueueFull = "queue_full" // bounded admission queue overflowed
	reasonShedding  = "shedding"   // shedding health, no replica free
	reasonDeadline  = "deadline"   // budget missed with fallback disabled
)

// EstimateOutcome reports how an estimate was (or was not) served: fully
// (zero value), from the fallback ladder (Degraded), or refused (Shed).
type EstimateOutcome struct {
	Degraded bool
	Shed     bool
	Reason   string
}

// EstimateBudget is Estimate under admission control: the deadline bounds
// how long the request may queue for a replica, and the outcome says whether
// the answer is the model's, the fallback ladder's, or a shed. A zero
// deadline waits forever (in healthy state). Safe for concurrent use.
func (s *Server) EstimateBudget(p query.Predicate, deadline time.Time) (float64, EstimateOutcome) {
	return s.estimateBudget(p, nil, deadline)
}

// estimateBudget is the overload-safe estimate path with the cache in
// front. A cache hit is admission-free — it consumes no replica and no
// queue slot — so hits serve even in degraded and shedding states: an exact
// model answer for ~100 ns is strictly better than a fallback answer or a
// 429. Only full-model answers are inserted; degraded and shed outcomes
// pass gen 0 to cacheFill, which refuses them.
func (s *Server) estimateBudget(p query.Predicate, tr *obs.Trace, deadline time.Time) (float64, EstimateOutcome) {
	if s.cache == nil {
		card, _, out := s.estimateBudgetUncached(p, tr, deadline)
		return card, out
	}
	pr, card, hit := s.cacheLookup(p, tr)
	if hit {
		return card, EstimateOutcome{}
	}
	card, gen, out := s.estimateBudgetUncached(p, tr, deadline)
	s.cacheFill(pr, gen, card)
	return card, out
}

// estimateBudgetUncached is the overload-safe estimate core: the health
// state picks the admission rule, the deadline budgets the replica wait,
// and the fallback ladder (when enabled) keeps budget misses answerable.
// The returned generation is the one that computed a full-model answer, or
// 0 for fallback/shed outcomes (which must never be cached).
func (s *Server) estimateBudgetUncached(p query.Predicate, tr *obs.Trace, deadline time.Time) (float64, uint64, EstimateOutcome) {
	switch s.health.current() {
	case Shedding:
		// Admit only what a free replica can absorb right now; everything
		// else is refused so the queue drains instead of growing.
		tr.EnterStage("checkout")
		if r, ok := s.pool.tryCheckout(); ok {
			card, gen := s.runOn(r, p, tr)
			return card, gen, EstimateOutcome{}
		}
		s.met.shedShedding.Inc()
		return 0, 0, EstimateOutcome{Shed: true, Reason: reasonShedding}
	case Degraded:
		// Serve from the model when it is immediately reachable, from the
		// fallback ladder otherwise — degraded mode never queues.
		tr.EnterStage("checkout")
		if r, ok := s.pool.tryCheckout(); ok {
			card, gen := s.runOn(r, p, tr)
			return card, gen, EstimateOutcome{}
		}
		if s.fb == nil {
			s.met.shedShedding.Inc()
			return 0, 0, EstimateOutcome{Shed: true, Reason: reasonShedding}
		}
		reason := reasonDegraded
		if s.health.breakerOpen.Load() {
			reason = reasonBreaker
			s.met.fbBreaker.Inc()
		} else {
			s.met.fbDegraded.Inc()
		}
		tr.EnterStage("fallback")
		return s.fb.estimate(p), 0, EstimateOutcome{Degraded: true, Reason: reason}
	}
	// Healthy: the normal coalesced/queued path, budgeted by the deadline.
	if s.coal != nil {
		if card, gen, bo, ok := s.coal.estimate(p, tr, deadline); ok {
			return s.resolveBatch(card, gen, bo)
		}
	}
	tr.EnterStage("checkout")
	r, err := s.pool.checkoutDeadline(deadline)
	if err == nil {
		card, gen := s.runOn(r, p, tr)
		return card, gen, EstimateOutcome{}
	}
	return s.resolveMiss(p, tr, err)
}

// resolveMiss turns a direct-path admission error into a fallback answer or
// a shed outcome.
func (s *Server) resolveMiss(p query.Predicate, tr *obs.Trace, err error) (float64, uint64, EstimateOutcome) {
	if err == errShed {
		s.met.shedQueueFull.Inc()
		return 0, 0, EstimateOutcome{Shed: true, Reason: reasonQueueFull}
	}
	// errCheckoutTimeout: answer from the ladder, or shed when it is off.
	if s.fb != nil {
		tr.EnterStage("fallback")
		s.met.fbTimeout.Inc()
		return s.fb.estimate(p), 0, EstimateOutcome{Degraded: true, Reason: reasonTimeout}
	}
	s.met.shedDeadline.Inc()
	return 0, 0, EstimateOutcome{Shed: true, Reason: reasonDeadline}
}

// resolveBatch maps a coalesced batch's outcome onto this member's outcome,
// charging the per-request fallback/shed counters. Only a full-model batch
// keeps its generation; degraded batches return 0 so they are never cached.
func (s *Server) resolveBatch(card float64, gen uint64, bo batchOutcome) (float64, uint64, EstimateOutcome) {
	switch {
	case bo.err == errShed:
		s.met.shedQueueFull.Inc()
		return 0, 0, EstimateOutcome{Shed: true, Reason: reasonQueueFull}
	case bo.err != nil:
		s.met.shedDeadline.Inc()
		return 0, 0, EstimateOutcome{Shed: true, Reason: reasonDeadline}
	case bo.degraded:
		s.met.fbTimeout.Inc()
		return card, 0, EstimateOutcome{Degraded: true, Reason: bo.reason}
	}
	return card, gen, EstimateOutcome{}
}

// Metrics exposes the server's metric set (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.met }

// refreshStatusLocked re-reads adapter state into the status cache. Callers
// must guarantee no period is concurrently mutating the adapter (holding
// periodMu, or during construction).
func (s *Server) refreshStatusLocked() {
	s.status = statusSnapshot{
		Model:    s.adapter.M.Name(),
		PoolSize: s.adapter.Pool.Len(),
		Labeled:  s.adapter.Pool.CountLabeled(),
		Pi:       s.adapter.Pi(),
		Gamma:    s.adapter.Gamma(),
		Costs:    s.adapter.Ledger.String(),
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", s.instrument("estimate", s.handleEstimate))
	if s.wireOn {
		mux.HandleFunc("POST /estimate/batch", s.instrument("estimate_batch", s.handleEstimateBatch))
		mux.HandleFunc("POST /estimate/batch/stream", s.instrument("estimate_stream", s.handleEstimateStream))
	}
	mux.HandleFunc("POST /feedback", s.instrument("feedback", s.handleFeedback))
	mux.HandleFunc("POST /period", s.instrument("period", s.handlePeriod))
	mux.HandleFunc("GET /status", s.instrument("status", s.handleStatus))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = fmt.Fprintln(w, "ok") // health probes ignore the body anyway
	})
	mux.Handle("GET /metrics", s.withTick(s.met.Reg.PrometheusHandler()))
	mux.Handle("GET /debug/vars", s.withTick(s.met.Reg.VarsHandler()))
	mux.HandleFunc("GET /debug/traces", s.instrument("traces", s.rec.handleTraces))
	mux.HandleFunc("GET /debug/events", s.instrument("events", s.rec.handleEvents))
	mux.HandleFunc("GET /statusz", s.instrument("statusz", s.handleStatusz))
	if s.pprof {
		obs.AttachPprof(mux)
	}
	return mux
}

// statusWriter captures the response code for request metrics and whether a
// response has started (the recover middleware can only substitute a 500
// before the first byte is written).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer (when it can flush) so the streaming
// batch endpoint can push each response frame as soon as it is encoded.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer so http.NewResponseController can
// reach its EnableFullDuplex/deadline controls through this wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

// instrument wraps a handler with panic recovery, request counting, latency
// recording and per-request debug logging.
//
// The recover layer is the last line of the panic-safety defense: the
// serving-path packages return errors instead of panicking (enforced by
// warperlint's panicfree rule), but a residual panic — say from a
// third-party model plugged in behind ce.Estimator — must cost one 500, not
// the whole warperd process. Panics are counted on serve_panics_total and
// logged with their stack.
func (s *Server) instrument(name string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panics.Inc()
				s.logger.Error("handler panic",
					"handler", name, "panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				sw.code = http.StatusInternalServerError
				if !sw.wrote {
					http.Error(sw.ResponseWriter, "internal error", http.StatusInternalServerError)
				}
			}
			d := time.Since(t0)
			s.met.requestDone(name, sw.code, d)
			s.logger.Debug("request",
				"handler", name, "code", sw.code, "dur_ms", float64(d.Microseconds())/1000)
		}()
		fn(sw, r)
	}
}

// predicateJSON is the wire form of a predicate.
type predicateJSON struct {
	Lows  []float64 `json:"lows"`
	Highs []float64 `json:"highs"`
}

func (s *Server) decodePredicate(pj predicateJSON) (query.Predicate, error) {
	d := s.sch.NumCols()
	if len(pj.Lows) != d || len(pj.Highs) != d {
		//lint:allow hotpathalloc malformed-request rejection; the error never forms on the steady path
		return query.Predicate{}, fmt.Errorf("predicate needs %d lows and highs, got %d/%d",
			d, len(pj.Lows), len(pj.Highs))
	}
	// Finiteness must be checked before Normalize: Normalize clamps ±Inf
	// into the schema's domain (masking it) and NaN survives its min/max
	// clamp — a NaN bound would flow into the feature vector, poison the
	// cache entry for that key, and produce garbage cardinalities silently.
	// Shared check with the binary decoder (wire.DecodeBatch).
	if wire.CheckFinite(pj.Lows) != nil || wire.CheckFinite(pj.Highs) != nil {
		return query.Predicate{}, wire.ErrNonFinite
	}
	p := query.Predicate{Lows: pj.Lows, Highs: pj.Highs}
	return p.Normalize(s.sch), nil
}

type estimateRequest struct {
	predicateJSON
}

type estimateResponse struct {
	Cardinality float64 `json:"cardinality"`
	// Degraded marks a fallback-ladder answer (with the reason it was
	// taken); omitted on full-model answers, so healthy responses are
	// byte-identical to the pre-admission-control wire format.
	Degraded bool   `json:"degraded,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// deadlineHeader lets one request override the server's default estimate
// budget, in integer milliseconds.
const deadlineHeader = "X-Warper-Deadline-Ms"

// estimateDeadline resolves one request's deadline budget: the header
// override when present, else the -estimate-timeout default; zero means
// unbudgeted. A header that is not a positive integer millisecond count is
// an error the caller answers with 400 — silently ignoring a client typo
// would degrade that client to wait-forever semantics unnoticed.
func (s *Server) estimateDeadline(r *http.Request) (time.Time, error) {
	d, err := s.estimateBudgetDur(r)
	if err != nil || d <= 0 {
		return time.Time{}, err
	}
	return time.Now().Add(d), nil
}

// estimateBudgetDur resolves the deadline budget as a duration — the
// streaming batch endpoint restarts the budget per frame, so it needs the
// duration, not one absolute deadline for the connection's lifetime.
func (s *Server) estimateBudgetDur(r *http.Request) (time.Duration, error) {
	d := s.estimateTimeout
	if h := r.Header.Get(deadlineHeader); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil || ms <= 0 {
			//lint:allow hotpathalloc malformed-request rejection; the error never forms on the steady path
			return 0, fmt.Errorf("%s: %q is not a positive integer millisecond count",
				deadlineHeader, h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	return d, nil
}

// decodeJSONStrict decodes exactly one JSON value from body into v: a
// second Decode must report io.EOF, otherwise the body carried trailing
// bytes after its payload ({"lows":[…]}{"oops"}) and the request is
// rejected. The binary decoder enforces the same contract with its exact
// frame-length check; both report wire.ErrTrailingData.
//
//lint:allow hotpathalloc HTTP decode boundary; the zero-alloc envelope covers the estimate core, not the JSON codec
func decodeJSONStrict(body io.Reader, v any) error {
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return wire.ErrTrailingData
	}
	return nil
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	// Acquire costs one atomic load when tracing is off and returns nil;
	// every stage call below is a nil-receiver no-op then.
	tr := s.rec.tracer.Acquire("estimate")
	tr.EnterStage("decode")
	r.Body = http.MaxBytesReader(w, r.Body, maxPeriodBody) //lint:allow hotpathalloc HTTP decode boundary; one body-cap wrapper per request, same codec layer as the decoder below
	var req estimateRequest
	if err := decodeJSONStrict(r.Body, &req); err != nil {
		s.rec.tracer.Finish(tr)
		httpError(w, decodeErrorCode(err), "decode: %v", err)
		return
	}
	p, err := s.decodePredicate(req.predicateJSON)
	if err != nil {
		s.rec.tracer.Finish(tr)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline, err := s.estimateDeadline(r)
	if err != nil {
		s.rec.tracer.Finish(tr)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The estimate runs on a checked-out replica (or through the batching
	// coalescer) — no serving mutex anywhere on this path. The health state
	// decides the admission rule; the deadline budgets the replica wait.
	card, out := s.estimateBudget(p, tr, deadline)
	if out.Shed {
		s.rec.tracer.Finish(tr)
		// A shed is a promise the server will recover if clients back off;
		// Retry-After makes the back-off explicit.
		w.Header().Set("Retry-After", "1")
		//lint:allow hotpathalloc shed responses are off the steady path by definition; the reason string boxes once per 429
		httpError(w, http.StatusTooManyRequests, "overloaded: %s", out.Reason)
		return
	}
	tr.EnterStage("respond")
	s.writeJSON(w, estimateResponse{Cardinality: card, Degraded: out.Degraded, Reason: out.Reason}) //lint:allow hotpathalloc HTTP encode boundary; one response-struct box per request
	//lint:allow hotpathalloc sampled-trace epilogue: the string render and exemplar offer never run on untraced requests
	if tr != nil {
		// Offer the request as a slowest-exemplar candidate before the ring
		// recycles the trace. Sampled requests only — the string render
		// never happens on untraced requests.
		lat := time.Since(tr.Start)
		s.rec.exemplars.OfferSlow(obs.Exemplar{
			TraceID:   tr.ID,
			Time:      tr.Start,
			Latency:   lat.Seconds(),
			Predicate: p.WhereClause(s.sch),
		})
		s.rec.tracer.Finish(tr)
	}
}

type feedbackRequest struct {
	predicateJSON
	// Cardinality is the observed true cardinality; negative or missing
	// means the query ran without execution feedback.
	Cardinality *float64 `json:"cardinality"`
}

type feedbackResponse struct {
	Buffered int `json:"buffered"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	// Same body cap as /period and /estimate: feedback bodies beyond the cap
	// answer 413 instead of being decoded unboundedly.
	r.Body = http.MaxBytesReader(w, r.Body, maxPeriodBody)
	var req feedbackRequest
	if err := decodeJSONStrict(r.Body, &req); err != nil {
		httpError(w, decodeErrorCode(err), "decode: %v", err)
		return
	}
	p, err := s.decodePredicate(req.predicateJSON)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ar := warper.Arrival{Pred: p}
	if req.Cardinality != nil && *req.Cardinality >= 0 {
		ar.GT = *req.Cardinality
		ar.HasGT = true
	}
	if ar.HasGT {
		// Feedback carrying ground truth measures the served model's live
		// q-error — the continuous accuracy signal the paper only gets
		// offline. The estimate runs on the replica pool, outside mu.
		est := s.Estimate(p)
		q := metrics.QError(est, ar.GT)
		s.met.qerr.Observe(q)
		// Feed the rolling drift watch; an alarm transition lands in the
		// event journal and on the warper_drift_alarm gauge. The exemplar
		// set pins the worst offenders with their predicates for /statusz.
		now := time.Now()
		s.rec.feedback(q, obs.Exemplar{
			Time:      now,
			QError:    q,
			Estimate:  est,
			Truth:     ar.GT,
			Predicate: p.WhereClause(s.sch),
		}, now)
	}
	s.mu.Lock()
	s.buffer = append(s.buffer, ar)
	n := len(s.buffer)
	s.mu.Unlock()
	s.met.buffered.Set(float64(n))
	// Feedback is a tick path: let the health machine reconsider with the
	// window the drift watch just advanced.
	s.evalHealth(time.Now())
	s.writeJSON(w, feedbackResponse{Buffered: n})
}

type periodResponse struct {
	Mode         string  `json:"mode"`
	Arrivals     int     `json:"arrivals"`
	Generated    int     `json:"generated"`
	Picked       int     `json:"picked"`
	Annotated    int     `json:"annotated"`
	Updated      bool    `json:"updated"`
	EarlyStopped bool    `json:"early_stopped"`
	DeltaM       float64 `json:"delta_m"`
	DeltaJS      float64 `json:"delta_js"`
	BusyMillis   float64 `json:"busy_ms"`
	// Degradation outcomes of the fault-tolerant annotation pipeline.
	Partial           bool `json:"partial,omitempty"`
	AnnotateFailed    int  `json:"annotate_failed,omitempty"`
	UsedFallback      bool `json:"used_fallback,omitempty"`
	TelemetryDegraded bool `json:"telemetry_degraded,omitempty"`
}

// maxPeriodBody caps a /period request body. Bodies beyond it are rejected
// outright rather than silently truncated.
const maxPeriodBody = 1 << 20

// validatePeriodBody enforces the /period request contract: an empty body,
// or a JSON object with a JSON content type, no larger than maxPeriodBody.
func validatePeriodBody(r *http.Request) (int, error) {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			return http.StatusUnsupportedMediaType,
				fmt.Errorf("content-type %q, want application/json", ct)
		}
	}
	// Read one byte past the cap so an oversize body is detected instead of
	// validating (and accepting) a truncated prefix of it.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPeriodBody+1))
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("read body: %v", err)
	}
	if len(body) > maxPeriodBody {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds %d bytes", maxPeriodBody)
	}
	if len(bytes.TrimSpace(body)) > 0 && !json.Valid(body) {
		return http.StatusBadRequest, fmt.Errorf("body is not valid JSON")
	}
	return 0, nil
}

func (s *Server) handlePeriod(w http.ResponseWriter, r *http.Request) {
	if code, err := validatePeriodBody(r); err != nil {
		httpError(w, code, "%v", err)
		return
	}
	// One period at a time: answer 409 instead of silently queueing a
	// second multi-second adaptation behind the first.
	if !s.periodMu.TryLock() {
		s.met.conflicts.Inc()
		httpError(w, http.StatusConflict, "adaptation period already running")
		return
	}
	defer s.periodMu.Unlock()

	// Mark the swap in flight for the health machine: a period stuck past
	// Health.MaxSwapAge degrades the server instead of silently serving an
	// ever-staler generation. Period edges are also tick paths, so health
	// reconsiders at both ends.
	s.health.swapStart.Store(time.Now().UnixNano())
	defer func() {
		s.health.swapStart.Store(0)
		s.Tick(time.Now())
	}()

	// Period requests ride the same sampler as estimates, so a journal
	// event can point at the trace that carried its period.
	tr := s.rec.tracer.Acquire("period")
	tr.EnterStage("period")
	defer s.rec.tracer.Finish(tr)
	var traceID uint64
	if tr != nil {
		traceID = tr.ID
	}

	// The replica pool serves private clones of the pre-period generation,
	// so the period below can mutate the adapter's model freely — estimates
	// never wait on it, and no serving-side clone is needed up front. The
	// pre-period clone here exists only for rollback on failure.
	pre := s.adapter.M.Clone()

	s.mu.Lock()
	arrivals := s.buffer
	s.buffer = nil
	s.mu.Unlock()
	nArrivals := len(arrivals)
	s.met.buffered.Set(0)
	s.rec.journal.Append("period_start", traceID, map[string]any{"arrivals": nArrivals})

	// Propagate the request context so a disconnected client or the
	// configured period deadline aborts the adaptation instead of leaving
	// it running unobserved; the rollback below reinstates the clone.
	ctx := r.Context()
	if s.periodTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.periodTimeout)
		defer cancel()
	}
	rep, perr := s.adapter.PeriodCtx(ctx, arrivals)
	if perr != nil {
		// Failed repair (§6.4 robustness): discard the possibly
		// half-updated model and reinstate the pre-period clone — the pool
		// is still serving that generation, so /estimate never sees the
		// failure. The consumed arrivals are re-buffered ahead of any
		// feedback that arrived mid-period: a failed period must not cost
		// the next one its drift evidence.
		s.mu.Lock()
		s.adapter.M = pre
		restored := make([]warper.Arrival, 0, len(arrivals)+len(s.buffer))
		restored = append(restored, arrivals...)
		restored = append(restored, s.buffer...)
		s.buffer = restored
		nBuffered := len(s.buffer)
		s.refreshStatusLocked()
		s.mu.Unlock()
		s.met.buffered.Set(float64(nBuffered))
		s.met.failures.Inc()
		s.rec.journal.Append("period_rollback", traceID, map[string]any{
			"error":      perr.Error(),
			"arrivals":   nArrivals,
			"rebuffered": nBuffered,
		})
		s.logger.Error("period failed",
			"err", perr, "arrivals", nArrivals, "mode", rep.Detection.Mode.String(),
			"annotate_failed", rep.AnnotateFailed)
		code := http.StatusInternalServerError
		if errors.Is(perr, context.DeadlineExceeded) || errors.Is(perr, context.Canceled) {
			code = http.StatusGatewayTimeout
		}
		httpError(w, code, "adaptation period failed: %v", perr)
		return
	}

	// Swap the repaired model in: one atomic generation bump. Replicas
	// re-clone from the new generation's private source lazily, at their
	// next checkout.
	s.pool.swap(s.adapter.M)
	if s.cache != nil {
		// The generation bump IS the cache invalidation: every entry is
		// stamped with the old generation and stops matching. Count it so
		// operators can tell wholesale invalidations from per-entry
		// evictions on /statusz.
		s.met.cacheInvalidations.Inc()
	}
	if s.fb != nil {
		// Refresh the fallback ladder against the post-period world: the
		// histogram tier re-reads the (possibly drifted) table, the scale
		// prior re-probes the just-swapped model. Under periodMu, so neither
		// is mid-mutation; the pool serves its own clone, so probing
		// adapter.M here races nothing.
		s.fb.refresh(s.adapter.Table(), s.adapter.M, s.sch)
	}
	s.rec.journal.Append("model_swap", traceID, map[string]any{
		"generation": s.pool.generation(),
		"model":      s.adapter.M.Name(),
		"updated":    rep.Updated,
	})
	s.mu.Lock()
	s.periods++
	s.refreshStatusLocked()
	s.mu.Unlock()

	s.logger.Info("period",
		"mode", rep.Detection.Mode.String(),
		"arrivals", nArrivals,
		"generated", rep.Generated,
		"picked", rep.Picked,
		"annotated", rep.Annotated,
		"updated", rep.Updated,
		"early_stopped", rep.EarlyStopped,
		"delta_m", rep.Detection.DeltaM,
		"delta_js", rep.Detection.DeltaJS,
		"pi", s.adapter.Pi(),
		"gamma", s.adapter.Gamma(),
		"busy_ms", float64(rep.Busy.Microseconds())/1000,
		"partial", rep.Partial,
		"annotate_failed", rep.AnnotateFailed,
		"used_fallback", rep.UsedFallback,
		"telemetry_degraded", rep.TelemetryDegraded)

	s.writeJSON(w, periodResponse{
		Mode:         rep.Detection.Mode.String(),
		Arrivals:     nArrivals,
		Generated:    rep.Generated,
		Picked:       rep.Picked,
		Annotated:    rep.Annotated,
		Updated:      rep.Updated,
		EarlyStopped: rep.EarlyStopped,
		DeltaM:       rep.Detection.DeltaM,
		DeltaJS:      rep.Detection.DeltaJS,
		BusyMillis:   float64(rep.Busy.Microseconds()) / 1000,

		Partial:           rep.Partial,
		AnnotateFailed:    rep.AnnotateFailed,
		UsedFallback:      rep.UsedFallback,
		TelemetryDegraded: rep.TelemetryDegraded,
	})
}

type statusResponse struct {
	Model    string  `json:"model"`
	PoolSize int     `json:"pool_size"`
	Labeled  int     `json:"labeled"`
	Buffered int     `json:"buffered"`
	Periods  int     `json:"periods"`
	Pi       float64 `json:"pi"`
	Gamma    int     `json:"gamma"`
	Costs    string  `json:"costs"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := statusResponse{
		Model:    s.status.Model,
		PoolSize: s.status.PoolSize,
		Labeled:  s.status.Labeled,
		Buffered: len(s.buffer),
		Periods:  s.periods,
		Pi:       s.status.Pi,
		Gamma:    s.status.Gamma,
		Costs:    s.status.Costs,
	}
	s.mu.Unlock()
	s.writeJSON(w, resp)
}

// writeJSON encodes v as the response body. By the time Encode can fail the
// 200 header (and possibly part of the body) is already on the wire, so a
// failure is logged rather than answered — writing a second status header
// into a half-sent body would corrupt the response, not repair it.
//
//lint:allow hotpathalloc HTTP encode boundary; the JSON encoder is the response codec, not the estimate core
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Error("response encode failed", "err", err)
	}
}

//lint:allow hotpathalloc error responses are off the steady-state path; formatting one may allocate
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// decodeErrorCode maps a body-decode failure to its status: 413 when the
// MaxBytesReader cap tripped, 400 otherwise.
//
//lint:allow hotpathalloc malformed-request rejection; errors.As only runs once a request has already failed
func decodeErrorCode(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// Estimator returns the serving generation's source model, for tests.
// Treat it as read-only: it backs every future replica refresh.
func (s *Server) Estimator() ce.Estimator {
	return s.pool.current()
}

// HealthState returns the current serving health state.
func (s *Server) HealthState() HealthState { return s.health.current() }

// QueueDepth returns how many estimates currently sit in the bounded
// admission queue, for overload benchmarks and soak tests asserting the
// queue stays bounded.
func (s *Server) QueueDepth() int64 { return s.pool.queueDepth() }
