package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"warper/internal/query"
	"warper/internal/wire"
)

// jsonBytes marshals one request body for tests that post raw bytes.
func jsonBytes(v any) ([]byte, error) {
	return json.Marshal(v)
}

// postWire posts one unframed binary request and decodes the response.
func postWire(t *testing.T, url string, frame []byte) (wire.ResponseHeader, []float64, int) {
	t.Helper()
	resp, err := http.Post(url, wireContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return wire.ResponseHeader{}, nil, resp.StatusCode
	}
	h, cards, err := wire.DecodeResponse(body, nil)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	return h, cards, resp.StatusCode
}

// TestWireBatchMatchesJSONAcrossSwap is the cross-protocol identity check:
// binary and JSON answers for the same predicates must be bit-identical,
// before and after a mid-run model swap — and the response generation echo
// must advance across the swap.
func TestWireBatchMatchesJSONAcrossSwap(t *testing.T) {
	_, ts, _, ann, gNew := newTestServerOpts(t, Options{BinaryProtocol: true})
	rng := rand.New(rand.NewSource(11))
	preds := make([]query.Predicate, 32)
	for i := range preds {
		preds[i] = gNew.Gen(rng)
	}
	check := func(stage string) uint64 {
		frame, err := wire.AppendRequest(nil, 0, preds, false)
		if err != nil {
			t.Fatalf("%s: AppendRequest: %v", stage, err)
		}
		h, cards, code := postWire(t, ts.URL+"/estimate/batch", frame)
		if code != http.StatusOK {
			t.Fatalf("%s: batch status = %d", stage, code)
		}
		if h.Degraded() || h.Err() || len(cards) != len(preds) {
			t.Fatalf("%s: header %+v with %d cards", stage, h, len(cards))
		}
		for i, p := range preds {
			var er estimateResponse
			r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &er)
			if r.StatusCode != http.StatusOK {
				t.Fatalf("%s: json status = %d", stage, r.StatusCode)
			}
			if cards[i] != er.Cardinality {
				t.Fatalf("%s: row %d binary %v != json %v", stage, i, cards[i], er.Cardinality)
			}
		}
		return h.Generation
	}
	genPre := check("pre-swap")
	if genPre == 0 {
		t.Fatal("pre-swap generation echo is 0")
	}
	// Buffer labeled feedback and run a period: the swap bumps the serving
	// generation even when the repair decides not to update.
	rng2 := rand.New(rand.NewSource(12))
	for i := 0; i < 30; i++ {
		p := gNew.Gen(rng2)
		card := countOK(t, ann, p)
		r := postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
			Cardinality:   &card,
		}, nil)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("feedback status = %d", r.StatusCode)
		}
	}
	if r := postJSON(t, ts.URL+"/period", struct{}{}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("period status = %d", r.StatusCode)
	}
	genPost := check("post-swap")
	if genPost <= genPre {
		t.Errorf("generation did not advance across the swap: %d → %d", genPre, genPost)
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	_, ts, sch, _, gNew := newTestServerOpts(t, Options{BinaryProtocol: true})
	p := gNew.Gen(rand.New(rand.NewSource(5)))
	valid, err := wire.AppendRequest(nil, 0, []query.Predicate{p}, false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		frame []byte
		want  int
	}{
		{"empty body", nil, http.StatusBadRequest},
		{"short header", valid[:10], http.StatusBadRequest},
		{"bad magic", func() []byte { f := append([]byte{}, valid...); f[0] ^= 0xff; return f }(), http.StatusBadRequest},
		{"bad version", func() []byte { f := append([]byte{}, valid...); f[4] = 9; return f }(), http.StatusBadRequest},
		{"trailing bytes", append(append([]byte{}, valid...), 1, 2, 3), http.StatusBadRequest},
		{"truncated payload", valid[:len(valid)-4], http.StatusBadRequest},
		{"forged row count", func() []byte {
			f := append([]byte{}, valid...)
			f[16], f[17], f[18] = 0xff, 0xff, 0xff
			return f
		}(), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if _, _, code := postWire(t, ts.URL+"/estimate/batch", tc.frame); code != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, code, tc.want)
		}
	}
	// Wrong column count for the serving schema: also 400.
	narrow := query.Predicate{Lows: p.Lows[:sch.NumCols()-1], Highs: p.Highs[:sch.NumCols()-1]}
	wrongCols, err := wire.AppendRequest(nil, 0, []query.Predicate{narrow}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, code := postWire(t, ts.URL+"/estimate/batch", wrongCols); code != http.StatusBadRequest {
		t.Errorf("wrong cols: status = %d, want 400", code)
	}
	// A body past the frame cap answers 413, like the JSON endpoints.
	if _, _, code := postWire(t, ts.URL+"/estimate/batch", make([]byte, maxWireBody+1)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize: status = %d, want 413", code)
	}
	// The canonical empty batch is valid: 200 with zero cards.
	empty, err := wire.AppendRequest(nil, 0, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if h, cards, code := postWire(t, ts.URL+"/estimate/batch", empty); code != http.StatusOK || len(cards) != 0 || h.Err() {
		t.Errorf("empty batch: code %d, %d cards, header %+v", code, len(cards), h)
	}
	// Binary endpoints must be absent without -binary.
	_, ts2, _, _, _ := newTestServer(t)
	if _, _, code := postWire(t, ts2.URL+"/estimate/batch", valid); code != http.StatusNotFound {
		t.Errorf("disabled server: status = %d, want 404", code)
	}
}

// TestWireRejectsNonFiniteAndCacheStaysClean pins the NaN bugfix at the
// cache boundary: a non-finite bound must be rejected before it can be
// featurized into a cache key, so the cache holds nothing afterwards.
func TestWireRejectsNonFiniteAndCacheStaysClean(t *testing.T) {
	srv, ts, _, _, gNew := newTestServerOpts(t, Options{BinaryProtocol: true, EstimateCache: true})
	p := gNew.Gen(rand.New(rand.NewSource(7)))
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		poisoned := query.Predicate{
			Lows:  append([]float64{}, p.Lows...),
			Highs: append([]float64{}, p.Highs...),
		}
		poisoned.Lows[0] = bad
		frame, err := wire.AppendRequest(nil, 0, []query.Predicate{poisoned}, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, code := postWire(t, ts.URL+"/estimate/batch", frame); code != http.StatusBadRequest {
			t.Fatalf("bound %v: status = %d, want 400", bad, code)
		}
	}
	if n := srv.cache.entries(); n != 0 {
		t.Fatalf("rejected requests left %d cache entries", n)
	}
	// A finite batch populates the cache, and a repeat answers identically
	// from it.
	frame, err := wire.AppendRequest(nil, 0, []query.Predicate{p}, false)
	if err != nil {
		t.Fatal(err)
	}
	_, first, code := postWire(t, ts.URL+"/estimate/batch", frame)
	if code != http.StatusOK {
		t.Fatalf("valid frame: status = %d", code)
	}
	if n := srv.cache.entries(); n != 1 {
		t.Fatalf("cache entries = %d after a full-model answer, want 1", n)
	}
	hitsBefore := srv.met.cacheHits.Value()
	_, second, code := postWire(t, ts.URL+"/estimate/batch", frame)
	if code != http.StatusOK || second[0] != first[0] {
		t.Fatalf("repeat = (%d, %v), want (200, %v)", code, second, first)
	}
	if srv.met.cacheHits.Value() != hitsBefore+1 {
		t.Errorf("repeat did not hit the cache")
	}
}

// TestDecodePredicateRejectsNonFinite pins the JSON-side half of the NaN
// bugfix at the decoder seam (valid JSON cannot carry NaN/Inf literals, so
// the HTTP layer cannot exercise it; embedders calling decodePredicate can).
func TestDecodePredicateRejectsNonFinite(t *testing.T) {
	srv, _, sch, _, gNew := newTestServer(t)
	p := gNew.Gen(rand.New(rand.NewSource(9)))
	if _, err := srv.decodePredicate(predicateJSON{Lows: p.Lows, Highs: p.Highs}); err != nil {
		t.Fatalf("finite predicate rejected: %v", err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		lows := append([]float64{}, p.Lows...)
		lows[0] = bad
		if _, err := srv.decodePredicate(predicateJSON{Lows: lows, Highs: p.Highs}); err != wire.ErrNonFinite {
			t.Errorf("low %v: err = %v, want ErrNonFinite", bad, err)
		}
		highs := append([]float64{}, p.Highs...)
		highs[sch.NumCols()-1] = bad
		if _, err := srv.decodePredicate(predicateJSON{Lows: p.Lows, Highs: highs}); err != wire.ErrNonFinite {
			t.Errorf("high %v: err = %v, want ErrNonFinite", bad, err)
		}
	}
}

// TestDeadlineHeaderMalformed pins the deadline-header bugfix: a header
// that is not a positive integer millisecond count answers 400 on both
// protocols instead of silently degrading to wait-forever semantics.
func TestDeadlineHeaderMalformed(t *testing.T) {
	_, ts, _, _, gNew := newTestServerOpts(t, Options{BinaryProtocol: true})
	p := gNew.Gen(rand.New(rand.NewSource(13)))
	jsonBody, err := jsonBytes(predicateJSON{Lows: p.Lows, Highs: p.Highs})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.AppendRequest(nil, 0, []query.Predicate{p}, false)
	if err != nil {
		t.Fatal(err)
	}
	post := func(url, ctype string, body []byte, hdr string) int {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ctype)
		if hdr != "" {
			req.Header.Set(deadlineHeader, hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	// Note: leading/trailing whitespace is trimmed by net/http before the
	// handler sees the header, so " 50" arrives as a valid "50".
	for _, bad := range []string{"abc", "0", "-5", "1.5", "50ms"} {
		if code := post(ts.URL+"/estimate", "application/json", jsonBody, bad); code != http.StatusBadRequest {
			t.Errorf("json %q: status = %d, want 400", bad, code)
		}
		if code := post(ts.URL+"/estimate/batch", wireContentType, frame, bad); code != http.StatusBadRequest {
			t.Errorf("batch %q: status = %d, want 400", bad, code)
		}
	}
	if code := post(ts.URL+"/estimate", "application/json", jsonBody, "5000"); code != http.StatusOK {
		t.Errorf("json valid header: status = %d, want 200", code)
	}
	if code := post(ts.URL+"/estimate/batch", wireContentType, frame, "5000"); code != http.StatusOK {
		t.Errorf("batch valid header: status = %d, want 200", code)
	}
	if code := post(ts.URL+"/estimate", "application/json", jsonBody, ""); code != http.StatusOK {
		t.Errorf("json no header: status = %d, want 200", code)
	}
}

// TestJSONTrailingGarbageRejected pins the strict-decode bugfix: a body
// that continues past its one JSON value answers 400 on /estimate and
// /feedback. Trailing whitespace stays accepted.
func TestJSONTrailingGarbageRejected(t *testing.T) {
	_, ts, _, _, gNew := newTestServer(t)
	p := gNew.Gen(rand.New(rand.NewSource(17)))
	body, err := jsonBytes(predicateJSON{Lows: p.Lows, Highs: p.Highs})
	if err != nil {
		t.Fatal(err)
	}
	post := func(url string, body []byte) int {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	garbage := append(append([]byte{}, body...), []byte(`{"oops":1}`)...)
	for _, url := range []string{ts.URL + "/estimate", ts.URL + "/feedback"} {
		if code := post(url, garbage); code != http.StatusBadRequest {
			t.Errorf("%s trailing value: status = %d, want 400", url, code)
		}
		if code := post(url, append(append([]byte{}, body...), ' ', '\n')); code != http.StatusOK {
			t.Errorf("%s trailing whitespace: status = %d, want 200", url, code)
		}
		if code := post(url, body); code != http.StatusOK {
			t.Errorf("%s clean body: status = %d, want 200", url, code)
		}
	}
}

// TestWireStream drives the length-prefixed streaming endpoint: two good
// frames answer two response frames, a garbage frame answers an in-band
// FlagError frame and ends the stream.
func TestWireStream(t *testing.T) {
	_, ts, _, _, gNew := newTestServerOpts(t, Options{BinaryProtocol: true})
	rng := rand.New(rand.NewSource(19))
	p1, p2 := gNew.Gen(rng), gNew.Gen(rng)
	var body []byte
	var err error
	body, err = wire.AppendRequest(body, 0, []query.Predicate{p1, p2}, true)
	if err != nil {
		t.Fatal(err)
	}
	body, err = wire.AppendRequest(body, 0, []query.Predicate{p1}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Third frame: well-framed garbage — the decoder must answer an error
	// frame, not a mid-stream HTTP status.
	body = append(body, 8, 0, 0, 0)
	body = append(body, []byte("garbage!")...)

	resp, err := http.Post(ts.URL+"/estimate/batch/stream", wireContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	b := wire.NewBuffer()
	var rows []int
	var errFrames int
	for {
		rerr := b.ReadFrame(resp.Body, 1<<20)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			t.Fatalf("ReadFrame: %v", rerr)
		}
		h, cards, derr := wire.DecodeResponse(b.In, nil)
		if derr != nil {
			t.Fatalf("DecodeResponse: %v", derr)
		}
		if h.Err() {
			errFrames++
			continue
		}
		rows = append(rows, len(cards))
	}
	if len(rows) != 2 || rows[0] != 2 || rows[1] != 1 {
		t.Errorf("answered rows = %v, want [2 1]", rows)
	}
	if errFrames != 1 {
		t.Errorf("error frames = %d, want 1", errFrames)
	}
}

// TestWireZeroAllocSteady is the hard zero-allocation assert on the binary
// steady path: once the buffer pool and every replica have reached their
// high-water shapes, a full in-process batch round trip (decode → group
// loop → inference → encode) allocates nothing.
func TestWireZeroAllocSteady(t *testing.T) {
	srv, _, _, _, gNew := newTestServerOpts(t, Options{BinaryProtocol: true, Replicas: 4})
	rng := rand.New(rand.NewSource(23))
	preds := make([]query.Predicate, 64)
	for i := range preds {
		preds[i] = gNew.Gen(rng)
	}
	frame, err := wire.AppendRequest(nil, 0, preds, false)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, wire.HeaderSize+8*len(preds))
	// Warm every replica (the free list is FIFO, so sequential calls rotate
	// through all of them, growing each one's batch scratch once) and the
	// pooled wire state.
	for i := 0; i < 8; i++ {
		if _, err := srv.EstimateBatchWire(dst[:0], frame, time.Time{}); err != nil {
			t.Fatalf("warm-up: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		out, err := srv.EstimateBatchWire(dst[:0], frame, time.Time{})
		if err != nil {
			t.Fatalf("EstimateBatchWire: %v", err)
		}
		if len(out) != cap(dst) {
			t.Fatalf("response = %d bytes, want %d", len(out), cap(dst))
		}
	})
	if allocs != 0 {
		t.Errorf("steady binary path allocates %v per batch, want 0", allocs)
	}
}
