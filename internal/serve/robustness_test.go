package serve

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/warper"
	"warper/internal/workload"
)

// panicModel wraps a trained estimator and panics on Estimate while armed.
// It stands in for a third-party model behind the ce.Estimator interface
// that does not follow the no-panic contract.
type panicModel struct {
	*ce.LM
	armed *atomic.Bool
}

func (p *panicModel) Estimate(q query.Predicate) float64 {
	if p.armed.Load() {
		panic("model exploded")
	}
	return p.LM.Estimate(q)
}

func (p *panicModel) Clone() ce.Estimator {
	return &panicModel{LM: p.LM.Clone().(*ce.LM), armed: p.armed}
}

// failUpdateModel simulates a kernel-fit failure: Update first mutates the
// underlying weights (a half-applied repair) and then reports failure, so
// a server that forgets to reinstate the pre-period clone would serve the
// corrupted model.
type failUpdateModel struct {
	*ce.LM
}

func (f *failUpdateModel) Update(examples []query.Labeled) error {
	if err := f.LM.Update(examples); err != nil {
		return err
	}
	return errors.New("ce: kernel fit failed: simulated singular system")
}

func (f *failUpdateModel) Clone() ce.Estimator {
	return &failUpdateModel{LM: f.LM.Clone().(*ce.LM)}
}

// robustnessEnv builds a server around the given model wrapper.
func robustnessEnv(t *testing.T, wrap func(*ce.LM) ce.Estimator) (*Server, *httptest.Server, *annotator.Annotator, workload.Generator) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	tbl := dataset.PRSA(2000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	opts := workload.Options{MaxConstrained: 2}
	gTrain := workload.New("w1", tbl, sch, opts)
	train := ann.AnnotateAll(workload.Generate(gTrain, 300, rng))
	lm := ce.NewLM(ce.LMMLP, sch, 1)
	if err := lm.Train(train); err != nil {
		t.Fatalf("Train: %v", err)
	}

	cfg := warper.DefaultConfig()
	cfg.Hidden = 32
	cfg.Depth = 2
	cfg.NIters = 20
	cfg.Gamma = 100
	cfg.PickSize = 60
	ad, err := warper.New(cfg, wrap(lm), sch, ann, train)
	if err != nil {
		t.Fatalf("warper.New: %v", err)
	}
	srv := New(ad, sch)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, ann, workload.New("w4", tbl, sch, opts)
}

// metricsBody fetches /metrics as text.
func metricsBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPanickingModelKeepsServing is the satellite regression test for the
// recover middleware: a model panic costs one 500 and one
// serve_panics_total increment — the process and the handler mux survive.
func TestPanickingModelKeepsServing(t *testing.T) {
	armed := &atomic.Bool{}
	_, ts, _, gNew := robustnessEnv(t, func(lm *ce.LM) ce.Estimator {
		return &panicModel{LM: lm, armed: armed}
	})
	rng := rand.New(rand.NewSource(7))
	p := gNew.Gen(rng)

	// Sanity: serving works before the panic.
	r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("pre-panic estimate = %d", r.StatusCode)
	}

	armed.Store(true)
	r = postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
	if r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking estimate = %d, want 500", r.StatusCode)
	}

	// The panic must not have killed the server or orphaned the serving
	// lock: the next requests complete normally.
	armed.Store(false)
	var est estimateResponse
	r = postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &est)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("post-panic estimate = %d, want 200", r.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d", resp.StatusCode)
	}
	if body := metricsBody(t, ts.URL); !strings.Contains(body, "serve_panics_total 1") {
		t.Error("serve_panics_total was not incremented to 1")
	}
}

// TestFailedPeriodKeepsPrePeriodModelServing is the acceptance-criteria
// test: a simulated kernel-fit failure during /period yields an error
// response while /estimate keeps serving the pre-period model — no process
// death, no half-updated weights.
func TestFailedPeriodKeepsPrePeriodModelServing(t *testing.T) {
	srv, ts, ann, gNew := robustnessEnv(t, func(lm *ce.LM) ce.Estimator {
		return &failUpdateModel{LM: lm}
	})
	rng := rand.New(rand.NewSource(13))

	// Feed drifted, labeled arrivals so the period detects drift and
	// reaches the (failing) model update.
	for i := 0; i < 30; i++ {
		p := gNew.Gen(rng)
		card := countOK(t, ann, p)
		postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
			Cardinality:   &card,
		}, nil)
	}

	probe := gNew.Gen(rng)
	var before estimateResponse
	if r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: probe.Lows, Highs: probe.Highs}, &before); r.StatusCode != http.StatusOK {
		t.Fatalf("pre-period estimate = %d", r.StatusCode)
	}

	r := postJSON(t, ts.URL+"/period", struct{}{}, nil)
	if r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing period = %d, want 500", r.StatusCode)
	}

	// The pre-period model must be serving: same estimate as before, even
	// though the failing Update mutated the adapter's copy first.
	var after estimateResponse
	if r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: probe.Lows, Highs: probe.Highs}, &after); r.StatusCode != http.StatusOK {
		t.Fatalf("post-failure estimate = %d, want 200", r.StatusCode)
	}
	if math.Abs(after.Cardinality-before.Cardinality) > 1e-9 {
		t.Errorf("estimate changed across failed period: %v -> %v (half-updated model serving?)",
			before.Cardinality, after.Cardinality)
	}
	// The served model and the adapter's model were both reset to the
	// pre-period clone.
	srv.mu.Lock()
	same := srv.model == srv.adapter.M
	srv.mu.Unlock()
	if !same {
		t.Error("served model and adapter model diverged after failed period")
	}
	if body := metricsBody(t, ts.URL); !strings.Contains(body, "warper_period_failures_total 1") {
		t.Error("warper_period_failures_total was not incremented to 1")
	}
	// The period latch must have been released: a retry reaches the model
	// again (and fails again) rather than 409ing forever.
	if r := postJSON(t, ts.URL+"/period", struct{}{}, nil); r.StatusCode == http.StatusConflict {
		t.Error("period latch leaked: retry answered 409")
	}
}
