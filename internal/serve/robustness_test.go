package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/resilience"
	"warper/internal/warper"
	"warper/internal/workload"
)

// panicModel wraps a trained estimator and panics on Estimate while armed.
// It stands in for a third-party model behind the ce.Estimator interface
// that does not follow the no-panic contract.
type panicModel struct {
	*ce.LM
	armed *atomic.Bool
}

func (p *panicModel) Estimate(q query.Predicate) float64 {
	if p.armed.Load() {
		panic("model exploded")
	}
	return p.LM.Estimate(q)
}

func (p *panicModel) Clone() ce.Estimator {
	return &panicModel{LM: p.LM.Clone().(*ce.LM), armed: p.armed}
}

// failUpdateModel simulates a kernel-fit failure: Update first mutates the
// underlying weights (a half-applied repair) and then reports failure, so
// a server that forgets to reinstate the pre-period clone would serve the
// corrupted model.
type failUpdateModel struct {
	*ce.LM
}

func (f *failUpdateModel) Update(examples []query.Labeled) error {
	if err := f.LM.Update(examples); err != nil {
		return err
	}
	return errors.New("ce: kernel fit failed: simulated singular system")
}

func (f *failUpdateModel) Clone() ce.Estimator {
	return &failUpdateModel{LM: f.LM.Clone().(*ce.LM)}
}

// robustnessEnv builds a server around the given model wrapper.
func robustnessEnv(t *testing.T, wrap func(*ce.LM) ce.Estimator) (*Server, *httptest.Server, *annotator.Annotator, workload.Generator) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	tbl := dataset.PRSA(2000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	opts := workload.Options{MaxConstrained: 2}
	gTrain := workload.New("w1", tbl, sch, opts)
	train := annAll(t, ann, workload.Generate(gTrain, 300, rng))
	lm := ce.NewLM(ce.LMMLP, sch, 1)
	if err := lm.Train(train); err != nil {
		t.Fatalf("Train: %v", err)
	}

	cfg := warper.DefaultConfig()
	cfg.Hidden = 32
	cfg.Depth = 2
	cfg.NIters = 20
	cfg.Gamma = 100
	cfg.PickSize = 60
	ad, err := warper.New(cfg, wrap(lm), sch, ann, train)
	if err != nil {
		t.Fatalf("warper.New: %v", err)
	}
	srv := New(ad, sch)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, ann, workload.New("w4", tbl, sch, opts)
}

// metricsBody fetches /metrics as text.
func metricsBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPanickingModelKeepsServing is the satellite regression test for the
// recover middleware: a model panic costs one 500 and one
// serve_panics_total increment — the process and the handler mux survive.
func TestPanickingModelKeepsServing(t *testing.T) {
	armed := &atomic.Bool{}
	_, ts, _, gNew := robustnessEnv(t, func(lm *ce.LM) ce.Estimator {
		return &panicModel{LM: lm, armed: armed}
	})
	rng := rand.New(rand.NewSource(7))
	p := gNew.Gen(rng)

	// Sanity: serving works before the panic.
	r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("pre-panic estimate = %d", r.StatusCode)
	}

	armed.Store(true)
	r = postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
	if r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking estimate = %d, want 500", r.StatusCode)
	}

	// The panic must not have killed the server or orphaned the serving
	// lock: the next requests complete normally.
	armed.Store(false)
	var est estimateResponse
	r = postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &est)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("post-panic estimate = %d, want 200", r.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d", resp.StatusCode)
	}
	if body := metricsBody(t, ts.URL); !strings.Contains(body, "serve_panics_total 1") {
		t.Error("serve_panics_total was not incremented to 1")
	}
}

// TestFailedPeriodKeepsPrePeriodModelServing is the acceptance-criteria
// test: a simulated kernel-fit failure during /period yields an error
// response while /estimate keeps serving the pre-period model — no process
// death, no half-updated weights.
func TestFailedPeriodKeepsPrePeriodModelServing(t *testing.T) {
	srv, ts, ann, gNew := robustnessEnv(t, func(lm *ce.LM) ce.Estimator {
		return &failUpdateModel{LM: lm}
	})
	rng := rand.New(rand.NewSource(13))

	// Feed drifted, labeled arrivals so the period detects drift and
	// reaches the (failing) model update.
	for i := 0; i < 30; i++ {
		p := gNew.Gen(rng)
		card := countOK(t, ann, p)
		postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
			Cardinality:   &card,
		}, nil)
	}

	probe := gNew.Gen(rng)
	var before estimateResponse
	if r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: probe.Lows, Highs: probe.Highs}, &before); r.StatusCode != http.StatusOK {
		t.Fatalf("pre-period estimate = %d", r.StatusCode)
	}

	r := postJSON(t, ts.URL+"/period", struct{}{}, nil)
	if r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing period = %d, want 500", r.StatusCode)
	}

	// The pre-period model must be serving: same estimate as before, even
	// though the failing Update mutated the adapter's copy first.
	var after estimateResponse
	if r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: probe.Lows, Highs: probe.Highs}, &after); r.StatusCode != http.StatusOK {
		t.Fatalf("post-failure estimate = %d, want 200", r.StatusCode)
	}
	if math.Abs(after.Cardinality-before.Cardinality) > 1e-9 {
		t.Errorf("estimate changed across failed period: %v -> %v (half-updated model serving?)",
			before.Cardinality, after.Cardinality)
	}
	// Both the adapter and the serving pool were reset to the pre-period
	// model: a direct estimate on either matches the pre-period response.
	norm := probe.Clone().Normalize(srv.sch)
	if got := srv.adapter.M.Estimate(norm); math.Abs(got-before.Cardinality) > 1e-9 {
		t.Errorf("adapter model not rolled back after failed period: estimate %v, want %v",
			got, before.Cardinality)
	}
	if got := srv.Estimator().Estimate(norm); math.Abs(got-before.Cardinality) > 1e-9 {
		t.Errorf("serving generation diverged after failed period: estimate %v, want %v",
			got, before.Cardinality)
	}
	if body := metricsBody(t, ts.URL); !strings.Contains(body, "warper_period_failures_total 1") {
		t.Error("warper_period_failures_total was not incremented to 1")
	}
	// The period latch must have been released: a retry reaches the model
	// again (and fails again) rather than 409ing forever.
	if r := postJSON(t, ts.URL+"/period", struct{}{}, nil); r.StatusCode == http.StatusConflict {
		t.Error("period latch leaked: retry answered 409")
	}
}

// faultyEnv builds a server whose adapter annotates through a deterministic
// fault injector under the resilience wrapper — the chaos-test configuration
// warperd's -faults flag produces.
func faultyEnv(t *testing.T, plan resilience.FaultPlan, pol resilience.Policy) (*Server, *httptest.Server, *annotator.Annotator, workload.Generator) {
	t.Helper()
	srv, ts, ann, gNew := robustnessEnv(t, func(lm *ce.LM) ce.Estimator { return lm })
	ad := srv.adapter
	faulty := resilience.NewFaulty(ad.Source(), plan)
	ad.SetSource(resilience.Wrap(faulty, pol, srv.Metrics().ResilienceEvents()).WithCostLedger(ad.Ledger))
	return srv, ts, ann, gNew
}

// chaosPolicy keeps retry waits near zero so fault-heavy tests stay fast.
func chaosPolicy(seed int64) resilience.Policy {
	return resilience.Policy{
		MaxAttempts:    3,
		AttemptTimeout: 50 * time.Millisecond,
		BaseBackoff:    time.Microsecond,
		MaxBackoff:     8 * time.Microsecond,
		Seed:           seed,
	}
}

// feedDrifted posts n labeled arrivals from the drifted workload.
func feedDrifted(t *testing.T, ts *httptest.Server, ann *annotator.Annotator, gNew workload.Generator, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p := gNew.Gen(rng)
		card := countOK(t, ann, p)
		postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
			Cardinality:   &card,
		}, nil)
	}
}

// metricValue extracts one un-labeled metric's value from /metrics text.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, fields[1], err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found on /metrics", name)
	return 0
}

// TestDegradedPeriodKeepsServing is the acceptance-criteria chaos test: with
// the fault injector dropping and hanging a fifth of annotation calls, a
// period still completes (degraded, not dead), /estimate keeps serving the
// repaired model, and the resilience counters are visible on /metrics.
func TestDegradedPeriodKeepsServing(t *testing.T) {
	_, ts, ann, gNew := faultyEnv(t,
		resilience.FaultPlan{ErrRate: 0.2, HangRate: 0.05, Seed: 5},
		chaosPolicy(5))
	rng := rand.New(rand.NewSource(17))
	feedDrifted(t, ts, ann, gNew, rng, 30)

	var pr periodResponse
	if r := postJSON(t, ts.URL+"/period", struct{}{}, &pr); r.StatusCode != http.StatusOK {
		t.Fatalf("faulty period = %d, want 200 (degrade, not die)", r.StatusCode)
	}
	if pr.Annotated == 0 {
		t.Error("degraded period obtained no labels at all")
	}

	p := gNew.Gen(rng)
	var est estimateResponse
	if r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &est); r.StatusCode != http.StatusOK {
		t.Fatalf("estimate after faulty period = %d, want 200", r.StatusCode)
	}

	body := metricsBody(t, ts.URL)
	if metricValue(t, body, "warper_annotate_retries_total") == 0 {
		t.Error("warper_annotate_retries_total = 0 under 25%% injected faults")
	}
	for _, name := range []string{
		"warper_annotate_timeouts_total", "warper_annotate_failed_total",
		"warper_breaker_state", "warper_period_partial_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
}

// TestConcurrentEstimatesDuringFaultyPeriod drives /estimate from several
// goroutines while a fault-injected period runs. Run under -race, it checks
// the clone/swap serving path and the resilience wrapper for data races, and
// that head-of-line traffic never observes an error.
func TestConcurrentEstimatesDuringFaultyPeriod(t *testing.T) {
	_, ts, ann, gNew := faultyEnv(t,
		resilience.FaultPlan{ErrRate: 0.25, HangRate: 0.05, Seed: 9},
		chaosPolicy(9))
	rng := rand.New(rand.NewSource(23))
	feedDrifted(t, ts, ann, gNew, rng, 30)

	// Pre-encode probe bodies so worker goroutines never touch the rng or t.
	var probes [][]byte
	for i := 0; i < 8; i++ {
		p := gNew.Gen(rng)
		b, err := json.Marshal(predicateJSON{Lows: p.Lows, Highs: p.Highs})
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, b)
	}

	var bad atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/estimate", "application/json",
					bytes.NewReader(probes[(w+i)%len(probes)]))
				if err != nil {
					bad.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
				}
			}
		}(w)
	}

	if r := postJSON(t, ts.URL+"/period", struct{}{}, nil); r.StatusCode != http.StatusOK {
		t.Errorf("faulty period under concurrent load = %d, want 200", r.StatusCode)
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("%d estimate requests failed while the faulty period ran", n)
	}
}

// TestSeededFaultyRunsAreByteIdentical pins the fault-injection determinism
// contract end to end: two servers built with identical seeds and fault
// plans produce byte-identical period outcomes and byte-identical estimate
// responses, wall-clock aside.
func TestSeededFaultyRunsAreByteIdentical(t *testing.T) {
	run := func() ([]byte, [][]byte) {
		plan := resilience.FaultPlan{ErrRate: 0.2, HangRate: 0.05, Seed: 5}
		_, ts, ann, gNew := faultyEnv(t, plan, chaosPolicy(5))
		rng := rand.New(rand.NewSource(41))
		feedDrifted(t, ts, ann, gNew, rng, 30)
		var pr periodResponse
		if r := postJSON(t, ts.URL+"/period", struct{}{}, &pr); r.StatusCode != http.StatusOK {
			t.Fatalf("period = %d", r.StatusCode)
		}
		pr.BusyMillis = 0 // the only wall-clock-dependent field
		rep, err := json.Marshal(pr)
		if err != nil {
			t.Fatal(err)
		}
		var ests [][]byte
		for i := 0; i < 20; i++ {
			p := gNew.Gen(rng)
			body, err := json.Marshal(predicateJSON{Lows: p.Lows, Highs: p.Highs})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("estimate %d = %d", i, resp.StatusCode)
			}
			ests = append(ests, raw)
		}
		return rep, ests
	}

	rep1, est1 := run()
	rep2, est2 := run()
	if !bytes.Equal(rep1, rep2) {
		t.Errorf("period reports differ across identically seeded runs:\n%s\n%s", rep1, rep2)
	}
	for i := range est1 {
		if !bytes.Equal(est1[i], est2[i]) {
			t.Errorf("estimate %d differs across identically seeded runs: %s vs %s", i, est1[i], est2[i])
		}
	}
}

// TestChaosSoak is the env-gated long chaos run behind `make chaos`: heavy
// fault injection, several periods, and constant concurrent traffic. The
// invariant is availability — /estimate and /healthz never fail — not period
// success; individual periods may degrade or abort under this fault rate.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("WARPER_CHAOS") == "" {
		t.Skip("chaos soak is opt-in: set WARPER_CHAOS=1 (or run `make chaos`)")
	}
	_, ts, ann, gNew := faultyEnv(t,
		resilience.FaultPlan{ErrRate: 0.35, HangRate: 0.1, Seed: 3},
		chaosPolicy(3))
	rng := rand.New(rand.NewSource(29))

	var bad atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var probes [][]byte
	for i := 0; i < 8; i++ {
		p := gNew.Gen(rng)
		b, err := json.Marshal(predicateJSON{Lows: p.Lows, Highs: p.Highs})
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, b)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/estimate", "application/json",
					bytes.NewReader(probes[(w+i)%len(probes)]))
				if err != nil {
					bad.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
				}
			}
		}(w)
	}

	completed := 0
	for round := 0; round < 3; round++ {
		feedDrifted(t, ts, ann, gNew, rng, 25)
		if r := postJSON(t, ts.URL+"/period", struct{}{}, nil); r.StatusCode == http.StatusOK {
			completed++
		}
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz round %d: %v", round, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz round %d = %d", round, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
	if completed == 0 {
		t.Error("no period completed across the chaos soak")
	}
	if n := bad.Load(); n != 0 {
		t.Errorf("%d estimate requests failed during the chaos soak", n)
	}

	// `make chaos` captures the adaptation event journal of the soak as a CI
	// artifact: the breaker transitions, degradation steps and model swaps
	// the fault injection provoked, in causal order.
	if path := os.Getenv("WARPER_EVENTS_OUT"); path != "" {
		resp, err := http.Get(ts.URL + "/debug/events")
		if err != nil {
			t.Fatalf("events artifact: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("events artifact: %v", err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatalf("events artifact: %v", err)
		}
		t.Logf("wrote adaptation event journal to %s", path)
	}
}
