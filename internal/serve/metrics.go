package serve

import (
	"strconv"
	"time"

	"warper/internal/obs"
	"warper/internal/resilience"
	"warper/internal/warper"
)

// Metric names exposed on GET /metrics. Kept as constants so tests and the
// README's operating guide cannot drift from the implementation.
const (
	mReqTotal   = "warper_http_requests_total"
	mReqSeconds = "warper_http_request_seconds"
	// mCheckoutWait is the renamed replica-wait histogram; the old name
	// below is exported as an alias for one release so dashboards watching
	// it keep seeing data while they migrate.
	mCheckoutWait    = "warper_replica_checkout_wait_seconds"
	mCheckoutWaitOld = "warper_estimate_lock_wait_seconds"
	mQError          = "warper_qerror_ratio"
	mQErrorOld       = "warper_qerror"
	mStageSeconds    = "warper_period_stage_seconds"
	mPeriodsTotal    = "warper_periods_total"
	mPeriodConflicts = "warper_period_conflicts_total"
	mPeriodFailures  = "warper_period_failures_total"
	mPanicsTotal     = "serve_panics_total"
	mGeneratedTotal  = "warper_generated_total"
	mAnnotatedTotal  = "warper_annotated_total"
	mUpdatesTotal    = "warper_model_updates_total"
	mEarlyStopsTotal = "warper_early_stops_total"
	mPoolSize        = "warper_pool_size"
	mPoolLabeled     = "warper_pool_labeled"
	mBuffered        = "warper_feedback_buffered"
	mPi              = "warper_pi"
	mGamma           = "warper_gamma"
	mDeltaM          = "warper_delta_m"
	mDeltaJS         = "warper_delta_js"
	mTrainSamples    = "warper_train_samples_total"
	mTrainThroughput = "warper_train_samples_per_second"

	// Replica-pool serving metrics.
	mReplicas      = "warper_serve_replicas"
	mCheckouts     = "warper_replica_checkouts_total"
	mCheckoutQueue = "warper_replica_checkout_queue"
	mRefreshes     = "warper_replica_refreshes_total"
	mSwapSeconds   = "warper_model_swap_seconds"
	mBatchRows     = "warper_estimate_batch_rows"
	mBatchRowsOld  = "warper_estimate_batch_size"

	// Flight-recorder metrics (rolling q-error drift watch).
	mDriftAlarm = "warper_drift_alarm"
	mDriftGMQ   = "warper_drift_window_gmq"

	// Overload-safety metrics (admission control + fallback ladder). Named
	// like serve_panics_total: serving-stack concerns, not adaptation ones,
	// so they carry the serve-side prefix style rather than warper_.
	mHealthState   = "serve_health_state"
	mFallbackTotal = "estimate_fallback_total"
	mShedTotal     = "estimate_shed_total"

	// Estimate-cache metrics (generation-stamped predicate→cardinality
	// cache in front of the replica pool). Serve-side prefix style, like
	// the overload metrics above.
	mCacheHits          = "estimate_cache_hits_total"
	mCacheMisses        = "estimate_cache_misses_total"
	mCacheEvictions     = "estimate_cache_evictions_total"
	mCacheInvalidations = "estimate_cache_invalidations_total"
	mCacheEntries       = "estimate_cache_entries"

	// Binary wire-protocol metrics (POST /estimate/batch and its streaming
	// variant). Serve-side prefix style, like the cache metrics above.
	mWireBatches      = "wire_batches_total"
	mWireRows         = "wire_rows_total"
	mWireDecodeErrors = "wire_decode_errors_total"
	mWireBatchRows    = "wire_batch_rows"
	mWireBufMisses    = "wire_buffer_misses_total"

	// Resilience metrics (fault-tolerant annotation pipeline).
	mAnnRetries    = "warper_annotate_retries_total"
	mAnnTimeouts   = "warper_annotate_timeouts_total"
	mAnnFailed     = "warper_annotate_failed_total"
	mAnnFallback   = "warper_annotate_fallback_total"
	mBreakerState  = "warper_breaker_state"
	mPeriodPartial = "warper_period_partial_total"
	mTelemetryDeg  = "warper_telemetry_degraded_total"
)

// Metrics holds every serving-stack metric. It implements warper.Observer,
// so wiring it as the adapter's Obs turns Period stage timings and summaries
// into histograms and gauges with no warper→obs dependency.
type Metrics struct {
	Reg *obs.Registry

	// rec, when non-nil, receives adaptation-lifecycle callbacks for the
	// flight recorder's event journal (set by NewWithOptions).
	rec *flightRecorder

	checkoutWait *obs.Histogram
	qerr         *obs.Histogram
	periods      *obs.Counter
	conflicts    *obs.Counter
	failures     *obs.Counter
	panics       *obs.Counter
	generated    *obs.Counter
	annotated    *obs.Counter
	updates      *obs.Counter
	earlyStop    *obs.Counter
	poolSize     *obs.Gauge
	labeled      *obs.Gauge
	buffered     *obs.Gauge
	pi           *obs.Gauge
	gamma        *obs.Gauge
	deltaM       *obs.Gauge
	deltaJS      *obs.Gauge
	trained      *obs.Counter
	trainTput    *obs.Gauge

	replicas      *obs.Gauge
	checkouts     *obs.Counter
	checkoutQueue *obs.Gauge
	refreshes     *obs.Counter
	swapSeconds   *obs.Histogram
	batchRows     *obs.Histogram

	driftAlarm *obs.Gauge
	driftGMQ   *obs.Gauge

	// health, when non-nil, mirrors the annotation breaker state into the
	// serving health machine (set by NewWithOptions).
	health      *healthTracker
	healthState *obs.Gauge
	// Per-reason fallback and shed counters, pre-created so the estimate hot
	// path increments a pointer instead of doing a labeled registry lookup
	// (which would allocate the label key).
	fbTimeout     *obs.Counter
	fbBreaker     *obs.Counter
	fbDegraded    *obs.Counter
	shedQueueFull *obs.Counter
	shedShedding  *obs.Counter
	shedDeadline  *obs.Counter

	// Estimate-cache counters, pre-created for the same reason: the lookup
	// path increments pointers, never does a registry lookup.
	cacheHits          *obs.Counter
	cacheMisses        *obs.Counter
	cacheEvictions     *obs.Counter
	cacheInvalidations *obs.Counter
	cacheEntries       *obs.Gauge

	// Binary wire-protocol counters, pre-created so the batch hot path
	// increments pointers, never does a labeled registry lookup.
	wireBatches      *obs.Counter
	wireRows         *obs.Counter
	wireDecodeErrors *obs.Counter
	wireBatchRows    *obs.Histogram
	wireBufMisses    *obs.Counter

	annRetries    *obs.Counter
	annTimeouts   *obs.Counter
	annFailed     *obs.Counter
	annFallback   *obs.Counter
	breakerState  *obs.Gauge
	periodPartial *obs.Counter
	telemetryDeg  *obs.Counter
}

// NewMetrics builds the serving metric set on a fresh registry.
func NewMetrics() *Metrics {
	r := obs.NewRegistry()
	r.Help(mReqTotal, "HTTP requests by handler and status code.")
	r.Help(mReqSeconds, "HTTP request latency in seconds, by handler.")
	r.Help(mCheckoutWait, "Time estimate requests wait to check out a serving replica.")
	r.Help(mCheckoutWaitOld, "Deprecated alias of "+mCheckoutWait+"; removed next release.")
	r.Help(mQError, "Observed q-error of served estimates, from execution feedback.")
	r.Help(mQErrorOld, "Deprecated alias of "+mQError+"; removed next release.")
	r.Help(mStageSeconds, "Adaptation period stage durations in seconds.")
	r.Help(mPeriodsTotal, "Completed adaptation periods.")
	r.Help(mPeriodConflicts, "Period requests rejected because one was already running.")
	r.Help(mPeriodFailures, "Adaptation periods that failed; the pre-period model kept serving.")
	r.Help(mPanicsTotal, "Handler panics converted to 500s by the recover middleware.")
	r.Help(mGeneratedTotal, "Synthetic queries generated across all periods.")
	r.Help(mAnnotatedTotal, "Ground-truth annotations spent across all periods.")
	r.Help(mUpdatesTotal, "Model updates applied across all periods.")
	r.Help(mEarlyStopsTotal, "Periods ended by the early-stop gain check.")
	r.Help(mPoolSize, "Query pool size after the last period.")
	r.Help(mPoolLabeled, "Labeled entries in the query pool after the last period.")
	r.Help(mBuffered, "Feedback arrivals buffered for the next period.")
	r.Help(mPi, "Current drift threshold pi.")
	r.Help(mGamma, "Current adequate-label threshold gamma.")
	r.Help(mDeltaM, "Accuracy-gap drift metric delta_m from the last period.")
	r.Help(mDeltaJS, "Workload-distance drift metric delta_js from the last period.")
	r.Help(mTrainSamples, "Minibatch rows consumed by component training across all periods.")
	r.Help(mTrainThroughput, "Component training throughput of the last period, in samples per second of busy time.")
	r.Help(mReplicas, "Serving replica-pool size.")
	r.Help(mCheckouts, "Replica checkouts: one per served estimate (or coalesced batch).")
	r.Help(mCheckoutQueue, "Estimate requests currently queued for a free replica.")
	r.Help(mRefreshes, "Replica re-clones after a model swap bumped the serving generation.")
	r.Help(mSwapSeconds, "Time to swap a repaired model into the serving pool (clone + generation bump).")
	r.Help(mBatchRows, "Coalesced estimate batch sizes, in predicates per forward pass.")
	r.Help(mBatchRowsOld, "Deprecated alias of "+mBatchRows+"; removed next release.")
	r.Help(mDriftAlarm, "Drift-watch alarm state: 1 while the windowed GMQ breaches the threshold.")
	r.Help(mDriftGMQ, "Geometric mean q-error over the drift watch's rolling window.")
	r.Help(mHealthState, "Serving health state: 0 healthy, 1 degraded, 2 shedding.")
	r.Help(mFallbackTotal, "Estimates answered by the fallback ladder instead of the model, by reason.")
	r.Help(mShedTotal, "Estimate requests shed by admission control (429), by reason.")
	r.Help(mCacheHits, "Estimates answered from the generation-stamped cache.")
	r.Help(mCacheMisses, "Estimates that probed the cache and fell through to the replica pool.")
	r.Help(mCacheEvictions, "Live cache entries overwritten because their probe group was full.")
	r.Help(mCacheInvalidations, "Wholesale cache invalidations: model swaps plus explicit/drift-alarm flushes.")
	r.Help(mCacheEntries, "Cache slots holding an entry (including generation-stale ones awaiting overwrite).")
	r.Help(mWireBatches, "Binary /estimate/batch requests (and stream frames) served.")
	r.Help(mWireRows, "Predicates served through the binary wire protocol.")
	r.Help(mWireDecodeErrors, "Binary frames rejected by the wire decoder (bad header, size, or non-finite bounds).")
	r.Help(mWireBatchRows, "Binary batch sizes, in predicates per request frame.")
	r.Help(mWireBufMisses, "Binary requests that found the wire buffer free list empty and allocated a fresh buffer.")
	r.Help(mAnnRetries, "Annotation attempts retried by the resilience wrapper.")
	r.Help(mAnnTimeouts, "Annotation attempts killed by the per-attempt deadline.")
	r.Help(mAnnFailed, "Annotation calls that failed for good within a period (after retries).")
	r.Help(mAnnFallback, "Periods whose labels came partly from the sampled fallback annotator.")
	r.Help(mBreakerState, "Annotation circuit-breaker state: 0 closed, 1 open, 2 half-open.")
	r.Help(mPeriodPartial, "Periods that proceeded with a partial annotation batch.")
	r.Help(mTelemetryDeg, "Periods whose canary telemetry or rebase was skipped after source failures.")
	m := &Metrics{
		Reg:          r,
		checkoutWait: r.Histogram(mCheckoutWait, obs.LatencyOpts()),
		qerr:         r.Histogram(mQError, obs.QErrorOpts()),
		periods:      r.Counter(mPeriodsTotal),
		conflicts:    r.Counter(mPeriodConflicts),
		failures:     r.Counter(mPeriodFailures),
		panics:       r.Counter(mPanicsTotal),
		generated:    r.Counter(mGeneratedTotal),
		annotated:    r.Counter(mAnnotatedTotal),
		updates:      r.Counter(mUpdatesTotal),
		earlyStop:    r.Counter(mEarlyStopsTotal),
		poolSize:     r.Gauge(mPoolSize),
		labeled:      r.Gauge(mPoolLabeled),
		buffered:     r.Gauge(mBuffered),
		pi:           r.Gauge(mPi),
		gamma:        r.Gauge(mGamma),
		deltaM:       r.Gauge(mDeltaM),
		deltaJS:      r.Gauge(mDeltaJS),
		trained:      r.Counter(mTrainSamples),
		trainTput:    r.Gauge(mTrainThroughput),

		replicas:      r.Gauge(mReplicas),
		checkouts:     r.Counter(mCheckouts),
		checkoutQueue: r.Gauge(mCheckoutQueue),
		refreshes:     r.Counter(mRefreshes),
		swapSeconds:   r.Histogram(mSwapSeconds, obs.LatencyOpts()),
		// Batch sizes span 1..BatchMax; log-scale buckets from 1 up.
		batchRows: r.Histogram(mBatchRows, obs.HistogramOpts{Start: 1, Growth: 2, Count: 10}),

		driftAlarm: r.Gauge(mDriftAlarm),
		driftGMQ:   r.Gauge(mDriftGMQ),

		healthState:   r.Gauge(mHealthState),
		fbTimeout:     r.Counter(mFallbackTotal, "reason", "timeout"),
		fbBreaker:     r.Counter(mFallbackTotal, "reason", "breaker"),
		fbDegraded:    r.Counter(mFallbackTotal, "reason", "degraded"),
		shedQueueFull: r.Counter(mShedTotal, "reason", "queue_full"),
		shedShedding:  r.Counter(mShedTotal, "reason", "shedding"),
		shedDeadline:  r.Counter(mShedTotal, "reason", "deadline"),

		cacheHits:          r.Counter(mCacheHits),
		cacheMisses:        r.Counter(mCacheMisses),
		cacheEvictions:     r.Counter(mCacheEvictions),
		cacheInvalidations: r.Counter(mCacheInvalidations),
		cacheEntries:       r.Gauge(mCacheEntries),

		wireBatches:      r.Counter(mWireBatches),
		wireRows:         r.Counter(mWireRows),
		wireDecodeErrors: r.Counter(mWireDecodeErrors),
		// Batch sizes span 1..maxWireRows; log-scale buckets from 1 up.
		wireBatchRows: r.Histogram(mWireBatchRows, obs.HistogramOpts{Start: 1, Growth: 2, Count: 14}),
		wireBufMisses: r.Counter(mWireBufMisses),

		annRetries:    r.Counter(mAnnRetries),
		annTimeouts:   r.Counter(mAnnTimeouts),
		annFailed:     r.Counter(mAnnFailed),
		annFallback:   r.Counter(mAnnFallback),
		breakerState:  r.Gauge(mBreakerState),
		periodPartial: r.Counter(mPeriodPartial),
		telemetryDeg:  r.Counter(mTelemetryDeg),
	}
	// One-release rename bridge: the old names export the same histograms.
	r.AliasHistogram(mCheckoutWaitOld, m.checkoutWait)
	r.AliasHistogram(mQErrorOld, m.qerr)
	r.AliasHistogram(mBatchRowsOld, m.batchRows)
	// Pre-create one histogram per period stage so /metrics shows the full
	// stage set from startup, not only after the first period.
	for _, st := range warper.StageNames {
		r.Histogram(mStageSeconds, obs.LatencyOpts(), "stage", st)
	}
	return m
}

// requestDone records one finished HTTP request.
func (m *Metrics) requestDone(handler string, code int, d time.Duration) {
	m.Reg.Counter(mReqTotal, "handler", handler, "code", strconv.Itoa(code)).Inc()
	m.Reg.Histogram(mReqSeconds, obs.LatencyOpts(), "handler", handler).Observe(d.Seconds())
}

// PeriodStage implements warper.Observer.
func (m *Metrics) PeriodStage(stage string, d time.Duration) {
	m.Reg.Histogram(mStageSeconds, obs.LatencyOpts(), "stage", stage).Observe(d.Seconds())
	if m.rec != nil {
		m.rec.noteStage(stage, d)
	}
}

// PeriodDone implements warper.Observer.
func (m *Metrics) PeriodDone(st warper.PeriodStats) {
	if m.rec != nil {
		m.rec.periodDone(st)
	}
	m.periods.Inc()
	m.generated.Add(int64(st.Generated))
	m.annotated.Add(int64(st.Annotated))
	if st.Updated {
		m.updates.Inc()
	}
	if st.EarlyStopped {
		m.earlyStop.Inc()
	}
	m.poolSize.Set(float64(st.PoolSize))
	m.labeled.Set(float64(st.Labeled))
	m.pi.Set(st.Pi)
	m.gamma.Set(float64(st.Gamma))
	m.deltaM.Set(st.DeltaM)
	m.deltaJS.Set(st.DeltaJS)
	m.trained.Add(int64(st.TrainedSamples))
	if s := st.Busy.Seconds(); s > 0 && st.TrainedSamples > 0 {
		m.trainTput.Set(float64(st.TrainedSamples) / s)
	}
	if st.Partial {
		m.periodPartial.Inc()
	}
	m.annFailed.Add(int64(st.AnnotateFailed))
	if st.UsedFallback {
		m.annFallback.Inc()
	}
	if st.TelemetryDegraded {
		m.telemetryDeg.Inc()
	}
}

// ResilienceEvents returns an Events seam that turns resilience wrapper
// callbacks into the warper_annotate_* and warper_breaker_state metrics.
// Wire it into resilience.Wrap when installing a resilient source on the
// served adapter.
func (m *Metrics) ResilienceEvents() resilience.Events {
	return resilience.Events{
		Retry:   func(int, error) { m.annRetries.Inc() },
		Timeout: func(int) { m.annTimeouts.Inc() },
		BreakerState: func(s resilience.State) {
			// Export the breaker state with a stable encoding: 0 closed,
			// 1 open, 2 half-open (the resilience.State values).
			m.breakerState.Set(float64(s))
			if m.health != nil {
				// An open annotation breaker is a degraded-health signal:
				// the adapter cannot repair the model right now, so serving
				// should stop betting on a fresh one. Half-open probes count
				// as open until they succeed.
				m.health.breakerOpen.Store(s != resilience.Closed)
			}
			if m.rec != nil {
				m.rec.journal.Append("breaker", 0, map[string]any{"state": s.String()})
			}
		},
	}
}
