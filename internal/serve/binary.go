// Binary batch serving: the HTTP side of the internal/wire protocol.
//
// POST /estimate/batch answers one columnar request frame; POST
// /estimate/batch/stream answers length-prefixed frames on one connection,
// flushing each response as it is encoded. Both run on pooled wireState
// units — a wire.Buffer plus the cache/miss scratch — checked out of a
// free list, so the steady path allocates nothing: decoded predicates view
// the request bytes in place, cache keys land in a per-state slab, and the
// response is encoded over the reclaimed request storage.
//
// The serving semantics match the JSON path group by group: rows are
// processed in wireGroupRows row groups, each group probes the estimate
// cache first, and the misses go through the same admission rules as
// estimateBudgetUncached (health state, deadline budget, fallback ladder).
// A shed anywhere sheds the whole request — a binary batch is one
// optimizer plan, and a half-answered plan is useless — so 429 (or a
// FlagShed frame on the stream) covers all rows.
package serve

import (
	"errors"
	"io"
	"net/http"
	"time"

	"warper/internal/ce"
	"warper/internal/obs"
	"warper/internal/query"
	"warper/internal/wire"
)

const (
	// wirePoolSize bounds the wireState free list; concurrent binary
	// requests beyond it allocate transient states (counted on
	// wire_buffer_misses_total) that the full list lets die.
	wirePoolSize = 64
	// maxWireRows caps one batch so a forged row count cannot force an
	// unbounded inference or scratch growth.
	maxWireRows = 8192
	// wireGroupRows is the row-group size: the unit at which cache probes,
	// admission control and tracer stages apply. One group's misses become
	// one replica checkout — large enough to amortize it, small enough
	// that a mid-batch model swap is visible within a batch.
	wireGroupRows = 256
	// maxWireBody caps a request frame, like maxPeriodBody for JSON bodies.
	maxWireBody = maxPeriodBody
	// wireContentType is the media type both binary endpoints speak.
	wireContentType = "application/x-warper-batch"
)

// errWireDisabled reports EstimateBatchWire on a server built without
// Options.BinaryProtocol.
var errWireDisabled = errors.New("serve: binary protocol not enabled")

// wireState is one pooled binary-request unit: the frame buffer plus every
// scratch slab the group loop needs. Single-owner between wireGet and
// wirePut; slices grow to their high-water mark once and stay.
type wireState struct {
	buf *wire.Buffer
	// cards accumulates the whole batch's answers (the response payload).
	cards []float64
	// keys/hashes hold one row group's featurized cache keys and hashes.
	keys   []float64
	hashes []uint64
	// missIdx/missPreds/missOuts gather a group's cache misses into the
	// packed batch one replica checkout answers.
	missIdx   []int
	missPreds []query.Predicate
	missOuts  []float64
}

// newWireState builds one pooled unit.
//
//lint:allow hotpathalloc free-list miss: a fresh wire state allocates once and is recycled by wirePut forever after
func newWireState() *wireState {
	return &wireState{buf: wire.NewBuffer()}
}

// wireGet checks a wireState out of the free list, allocating a fresh one
// (counted) when the list is empty.
func (s *Server) wireGet() (*wireState, error) {
	if s.wireFree == nil {
		return nil, errWireDisabled
	}
	select {
	case ws := <-s.wireFree:
		return ws, nil
	default:
		s.met.wireBufMisses.Inc()
		return newWireState(), nil
	}
}

// wirePut returns a wireState to the free list, dropping it when the list
// is already full.
func (s *Server) wirePut(ws *wireState) {
	select {
	case s.wireFree <- ws:
	default:
	}
}

// decodeWire parses the frame in ws.buf against the serving schema and
// normalizes the decoded predicates in place. The decoder has already
// proven every bound finite — Normalize after the check, never before,
// because Normalize clamps ±Inf (masking it) and lets NaN through.
func (s *Server) decodeWire(ws *wireState) error {
	if err := ws.buf.DecodeBatch(s.sch.NumCols(), maxWireRows); err != nil {
		return err
	}
	preds := ws.buf.Req.Preds
	for i := range preds {
		preds[i] = preds[i].Normalize(s.sch)
	}
	return nil
}

// handleEstimateBatch answers one request frame: decode, serve group by
// group, encode the response over the reclaimed request buffer.
func (s *Server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	tr := s.rec.tracer.Acquire("estimate_batch")
	deadline, err := s.estimateDeadline(r)
	if err != nil {
		s.rec.tracer.Finish(tr)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ws, err := s.wireGet()
	if err != nil {
		s.rec.tracer.Finish(tr)
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer s.wirePut(ws)
	tr.EnterStage("decode")
	r.Body = http.MaxBytesReader(w, r.Body, maxWireBody) //lint:allow hotpathalloc HTTP decode boundary; one body-cap wrapper per request, same codec layer as the JSON path
	if err := ws.buf.ReadAll(r.Body); err != nil {
		s.rec.tracer.Finish(tr)
		s.met.wireDecodeErrors.Inc()
		httpError(w, decodeErrorCode(err), "read: %v", err)
		return
	}
	if err := s.decodeWire(ws); err != nil {
		s.rec.tracer.Finish(tr)
		s.met.wireDecodeErrors.Inc()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	gen, degraded, reason, serr := s.serveWireBatch(ws, deadline, tr)
	if serr != nil {
		s.rec.tracer.Finish(tr)
		// Same shed contract as /estimate: a promise the server recovers
		// if clients back off.
		w.Header().Set("Retry-After", "1")
		//lint:allow hotpathalloc shed responses are off the steady path by definition; the reason string boxes once per 429
		httpError(w, http.StatusTooManyRequests, "overloaded: %s", reason)
		return
	}
	tr.EnterStage("respond")
	var flags uint16
	if degraded {
		flags |= wire.FlagDegraded
	}
	ws.buf.EncodeResponse(gen, flags, ws.cards, false)
	w.Header().Set("Content-Type", wireContentType)
	_, _ = w.Write(ws.buf.Out)
	s.wireDone(len(ws.cards))
	s.rec.tracer.Finish(tr)
}

// handleEstimateStream answers length-prefixed frames on one connection.
// Each frame restarts the deadline budget and flushes its response before
// the next read. A malformed frame answers an in-band FlagError frame and
// ends the stream (the framing itself is no longer trustworthy); a shed
// answers a FlagShed error frame and keeps the stream alive so the client
// can back off without reconnecting.
func (s *Server) handleEstimateStream(w http.ResponseWriter, r *http.Request) {
	budget, err := s.estimateBudgetDur(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ws, err := s.wireGet()
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer s.wirePut(ws)
	// HTTP/1.x is half-duplex by default: once the first response frame is
	// written the server stops serving body reads, which would truncate the
	// stream after one frame. Full duplex restores read-after-write.
	_ = http.NewResponseController(w).EnableFullDuplex()
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", wireContentType)
	for {
		tr := s.rec.tracer.Acquire("estimate_stream")
		tr.EnterStage("decode")
		if err := ws.buf.ReadFrame(r.Body, maxWireBody); err != nil {
			s.rec.tracer.Finish(tr)
			if err == io.EOF {
				return // clean end of stream
			}
			s.met.wireDecodeErrors.Inc()
			ws.buf.EncodeError(0, true)
			_, _ = w.Write(ws.buf.Out)
			return
		}
		if err := s.decodeWire(ws); err != nil {
			s.rec.tracer.Finish(tr)
			s.met.wireDecodeErrors.Inc()
			ws.buf.EncodeError(0, true)
			_, _ = w.Write(ws.buf.Out)
			return
		}
		var deadline time.Time
		if budget > 0 {
			deadline = time.Now().Add(budget)
		}
		gen, degraded, _, serr := s.serveWireBatch(ws, deadline, tr)
		if serr != nil {
			ws.buf.EncodeError(wire.FlagShed, true)
		} else {
			var flags uint16
			if degraded {
				flags |= wire.FlagDegraded
			}
			ws.buf.EncodeResponse(gen, flags, ws.cards, true)
			s.wireDone(len(ws.cards))
		}
		tr.EnterStage("respond")
		_, _ = w.Write(ws.buf.Out)
		if fl != nil {
			fl.Flush()
		}
		s.rec.tracer.Finish(tr)
	}
}

// wireDone charges the per-batch wire metrics.
func (s *Server) wireDone(rows int) {
	s.met.wireBatches.Inc()
	s.met.wireRows.Add(int64(rows))
	s.met.wireBatchRows.Observe(float64(rows))
}

// EstimateBatchWire answers one (unframed) binary request frame in-process
// — the wire-protocol equivalent of EstimateBudget, exported for embedding
// Warper without HTTP and for the serving benchmark: this is the surface
// the zero-allocation assert runs against. The encoded response frame is
// appended to dst (reuse a sized dst to stay allocation-free). The error
// is a decode sentinel from internal/wire, or the shed outcome.
func (s *Server) EstimateBatchWire(dst []byte, frame []byte, deadline time.Time) ([]byte, error) {
	ws, err := s.wireGet()
	if err != nil {
		return dst, err
	}
	defer s.wirePut(ws)
	b := ws.buf
	//lint:allow hotpathalloc grow-once frame copy; the pooled buffer keeps its high-water capacity
	b.In = append(b.In[:0], frame...)
	if err := s.decodeWire(ws); err != nil {
		s.met.wireDecodeErrors.Inc()
		return dst, err
	}
	gen, degraded, _, serr := s.serveWireBatch(ws, deadline, nil)
	if serr != nil {
		return dst, serr
	}
	var flags uint16
	if degraded {
		flags |= wire.FlagDegraded
	}
	b.EncodeResponse(gen, flags, ws.cards, false)
	s.wireDone(len(ws.cards))
	//lint:allow hotpathalloc caller-owned dst grows once to its high-water capacity
	return append(dst, b.Out...), nil
}

// serveWireBatch answers the decoded batch in ws group by group, writing
// the answers into ws.cards. It returns the serving generation of the last
// full-model group (0 when every row came from cache or fallback), whether
// any group was degraded (with the first degradation reason), and the shed
// error when admission control refused a group — all-or-nothing, per the
// package comment.
func (s *Server) serveWireBatch(ws *wireState, deadline time.Time, tr *obs.Trace) (uint64, bool, string, error) {
	preds := ws.buf.Req.Preds
	rows := len(preds)
	if cap(ws.cards) < rows {
		//lint:allow hotpathalloc grow-once answer slab; bounded by maxWireRows, kept at high-water capacity
		ws.cards = make([]float64, rows)
	}
	ws.cards = ws.cards[:rows]
	var gen uint64
	degraded := false
	reason := ""
	for base := 0; base < rows; base += wireGroupRows {
		n := rows - base
		if n > wireGroupRows {
			n = wireGroupRows
		}
		group := preds[base : base+n]
		out := ws.cards[base : base+n]
		var g uint64
		var deg bool
		var rsn string
		var err error
		if s.cache != nil {
			g, deg, rsn, err = s.wireGroupCached(ws, group, out, deadline, tr)
		} else {
			g, deg, rsn, err = s.wireResolveMisses(group, out, deadline, tr)
		}
		if err != nil {
			return 0, false, rsn, err
		}
		if g != 0 {
			gen = g
		}
		if deg {
			degraded = true
			if reason == "" {
				reason = rsn
			}
		}
	}
	return gen, degraded, reason, nil
}

// wireGroupCached serves one row group with the estimate cache in front:
// probe every row, gather the misses into a packed batch, answer it through
// admission control, scatter the answers back and insert the full-model
// ones. The flush epoch is read before the probes — and therefore before
// the underlying estimates — so inserts racing InvalidateEstimateCache
// stamp the pre-flush epoch and stay conservatively invisible (the same
// ordering cacheLookup documents).
func (s *Server) wireGroupCached(ws *wireState, group []query.Predicate, out []float64, deadline time.Time, tr *obs.Trace) (uint64, bool, string, error) {
	tr.EnterStage("cache")
	c := s.cache
	kl := c.keyLen
	n := len(group)
	epoch := c.epoch.Load()
	gen := s.pool.generation()
	if cap(ws.keys) < n*kl {
		//lint:allow hotpathalloc grow-once key slab; bounded by wireGroupRows×keyLen, kept at high-water capacity
		ws.keys = make([]float64, n*kl)
	}
	keys := ws.keys[:n*kl]
	if cap(ws.hashes) < n {
		//lint:allow hotpathalloc grow-once hash slab; bounded by wireGroupRows
		ws.hashes = make([]uint64, n)
	}
	hashes := ws.hashes[:n]
	if cap(ws.missIdx) < n {
		//lint:allow hotpathalloc grow-once miss-index slab; bounded by wireGroupRows
		ws.missIdx = make([]int, 0, n)
	}
	miss := ws.missIdx[:0]
	for i := range group {
		k := keys[i*kl : (i+1)*kl]
		group[i].FeaturizeInto(s.sch, k)
		hashes[i] = cacheHash(k)
		if card, ok := c.get(k, hashes[i], gen, epoch); ok {
			s.met.cacheHits.Inc()
			out[i] = card
			continue
		}
		s.met.cacheMisses.Inc()
		//lint:allow hotpathalloc append never grows: missIdx was pre-sized to the group length above
		miss = append(miss, i)
	}
	ws.missIdx = miss
	if len(miss) == 0 {
		return 0, false, "", nil
	}
	if cap(ws.missPreds) < len(miss) {
		//lint:allow hotpathalloc grow-once miss-gather slab; bounded by wireGroupRows
		ws.missPreds = make([]query.Predicate, len(miss))
	}
	if cap(ws.missOuts) < len(miss) {
		//lint:allow hotpathalloc grow-once miss-answer slab; bounded by wireGroupRows
		ws.missOuts = make([]float64, len(miss))
	}
	mp := ws.missPreds[:len(miss)]
	mo := ws.missOuts[:len(miss)]
	for j, i := range miss {
		mp[j] = group[i]
	}
	mgen, deg, rsn, err := s.wireResolveMisses(mp, mo, deadline, tr)
	if err != nil {
		return 0, false, rsn, err
	}
	for j, i := range miss {
		out[i] = mo[j]
	}
	if mgen != 0 {
		// Only full-model answers are inserted, stamped with the replica
		// generation that computed them and the pre-probe epoch — fallback
		// answers pass gen 0 here exactly like cacheFill refuses them.
		for j, i := range miss {
			c.put(keys[i*kl:(i+1)*kl], hashes[i], mgen, epoch, mo[j])
		}
	}
	return mgen, deg, rsn, nil
}

// wireResolveMisses answers one packed group of cache misses under the
// same admission rules as estimateBudgetUncached: the health state picks
// the rule, the deadline budgets the replica wait, and the fallback ladder
// (when enabled) keeps budget misses answerable. The returned generation
// is 0 for fallback answers, which must never be cached.
func (s *Server) wireResolveMisses(preds []query.Predicate, out []float64, deadline time.Time, tr *obs.Trace) (uint64, bool, string, error) {
	switch s.health.current() {
	case Shedding:
		tr.EnterStage("checkout")
		if r, ok := s.pool.tryCheckout(); ok {
			return s.wireRunOn(r, preds, out, tr), false, "", nil
		}
		s.met.shedShedding.Inc()
		return 0, false, reasonShedding, errShed
	case Degraded:
		tr.EnterStage("checkout")
		if r, ok := s.pool.tryCheckout(); ok {
			return s.wireRunOn(r, preds, out, tr), false, "", nil
		}
		if s.fb == nil {
			s.met.shedShedding.Inc()
			return 0, false, reasonShedding, errShed
		}
		reason := reasonDegraded
		if s.health.breakerOpen.Load() {
			reason = reasonBreaker
			s.met.fbBreaker.Inc()
		} else {
			s.met.fbDegraded.Inc()
		}
		tr.EnterStage("fallback")
		for i := range preds {
			out[i] = s.fb.estimate(preds[i])
		}
		return 0, true, reason, nil
	}
	// Healthy: the queued path, budgeted by the deadline.
	tr.EnterStage("checkout")
	r, err := s.pool.checkoutDeadline(deadline)
	if err == nil {
		return s.wireRunOn(r, preds, out, tr), false, "", nil
	}
	if err == errShed {
		s.met.shedQueueFull.Inc()
		return 0, false, reasonQueueFull, errShed
	}
	// errCheckoutTimeout: answer from the ladder, or shed when it is off.
	if s.fb != nil {
		tr.EnterStage("fallback")
		s.met.fbTimeout.Inc()
		for i := range preds {
			out[i] = s.fb.estimate(preds[i])
		}
		return 0, true, reasonTimeout, nil
	}
	s.met.shedDeadline.Inc()
	return 0, false, reasonDeadline, err
}

// wireRunOn answers one packed group on a checked-out replica — the batch
// form of runOn, with the same deferred-checkin replica-leak guard. The
// columnar decode means preds already sit in the contiguous layout
// EstimateAll's feature matrix wants; the batched forward pass hits
// nn.InferBatch's 4-row tiles directly.
func (s *Server) wireRunOn(r *replica, preds []query.Predicate, out []float64, tr *obs.Trace) uint64 {
	defer s.pool.checkin(r)
	if tr != nil {
		tr.BatchSize = len(preds)
		tr.Generation = r.gen
	}
	tr.EnterStage("infer")
	if be, ok := r.model.(ce.BatchEstimator); ok {
		be.EstimateAll(preds, out)
		return r.gen
	}
	for i := range preds {
		out[i] = r.model.Estimate(preds[i])
	}
	return r.gen
}
