package serve

import (
	"encoding/json"
	"html/template"
	"net/http"
	"sync"
	"time"

	"warper/internal/obs"
	"warper/internal/warper"
)

// This file wires the obs flight-recorder primitives into the server: the
// sampled request tracer behind /debug/traces, the adaptation event journal
// behind /debug/events, the windowed-telemetry ring and rolling q-error
// drift watch behind /statusz and the warper_drift_* gauges. The recorder
// is pure read-side plumbing — nothing here runs on the estimate hot path
// unless the request was sampled.

// Flight-recorder defaults, overridable through Options.
const (
	defaultTraceBuf    = 64
	defaultJournalCap  = 256
	defaultDriftWindow = 5 * time.Minute
	defaultExemplars   = 8
	// recorderWindow is the recent-metrics window rendered on /statusz.
	recorderWindow = time.Minute
)

// flightRecorder bundles the drift flight recorder's moving parts and their
// HTTP handlers.
type flightRecorder struct {
	tracer    *obs.Tracer
	journal   *obs.Journal
	windows   *obs.Windows
	drift     *obs.DriftWatch
	exemplars *obs.Exemplars
	met       *Metrics

	// onDriftAlarm, when non-nil, runs on every DriftRaised transition.
	// NewWithOptions points it at the estimate-cache flush under
	// Options.CacheFlushOnAlarm: the cached pre-drift answers are exactly
	// what would keep masking the drift the watch just detected.
	onDriftAlarm func()

	// stageMu guards the stage-duration scratch filled by PeriodStage
	// callbacks and drained into the period_end event. handlePeriod holds
	// periodMu around the whole period, so one period's stages never
	// interleave with another's.
	stageMu sync.Mutex
	stages  map[string]float64 // stage -> seconds, pending period
}

// newFlightRecorder builds the recorder from options and registers itself
// on the metric set for lifecycle callbacks.
func newFlightRecorder(met *Metrics, opts Options) *flightRecorder {
	buf := opts.TraceBuf
	if buf <= 0 {
		buf = defaultTraceBuf
	}
	window := opts.DriftWindow
	if window <= 0 {
		window = defaultDriftWindow
	}
	r := &flightRecorder{
		tracer:    obs.NewTracer(opts.TraceSample, buf),
		journal:   obs.NewJournal(defaultJournalCap),
		windows:   obs.NewWindows(met.Reg, recorderWindow),
		drift:     obs.NewDriftWatch(window, opts.DriftAlarmGMQ),
		exemplars: obs.NewExemplars(defaultExemplars),
		met:       met,
		stages:    map[string]float64{},
	}
	met.rec = r
	return r
}

// feedback folds one ground-truth observation into the drift watch and the
// worst-q-error exemplar set, emitting journal events on alarm transitions.
// Called from the feedback handler — never from /estimate.
func (r *flightRecorder) feedback(q float64, ex obs.Exemplar, now time.Time) {
	st, tr := r.drift.Observe(q, now)
	r.applyDriftTransition(st, tr)
	r.exemplars.OfferQError(ex)
	r.windows.Tick(now)
}

// driftState reads the drift watch, rolling its window to now. Rolling can
// itself produce an alarm edge — typically the alarm clearing because
// feedback stopped and the bad slots aged out — so reads apply transitions
// exactly like feedback does: the journal and the alarm gauge stay truthful
// even when the q-error stream goes quiet.
func (r *flightRecorder) driftState(now time.Time) obs.DriftState {
	st, tr := r.drift.State(now)
	r.applyDriftTransition(st, tr)
	return st
}

// applyDriftTransition turns a drift-watch reading into gauge updates and,
// on alarm edges, journal events.
func (r *flightRecorder) applyDriftTransition(st obs.DriftState, tr obs.DriftTransition) {
	r.met.driftGMQ.Set(st.WindowGMQ)
	switch tr {
	case obs.DriftRaised:
		r.met.driftAlarm.Set(1)
		r.journal.Append("drift_alarm", 0, map[string]any{
			"window_gmq": st.WindowGMQ,
			"count":      st.Count,
			"threshold":  st.Threshold,
		})
		if r.onDriftAlarm != nil {
			r.onDriftAlarm()
		}
	case obs.DriftCleared:
		r.met.driftAlarm.Set(0)
		r.journal.Append("drift_clear", 0, map[string]any{
			"window_gmq": st.WindowGMQ,
			"count":      st.Count,
		})
	}
}

// noteStage records one period-stage duration for the upcoming period_end
// event (called by Metrics.PeriodStage).
func (r *flightRecorder) noteStage(stage string, d time.Duration) {
	r.stageMu.Lock()
	r.stages[stage] = d.Seconds()
	r.stageMu.Unlock()
}

// periodDone turns a completed period's summary into journal events: one
// period_end with the stage breakdown, plus one degrade_* event per
// degradation-ladder step the period took (called by Metrics.PeriodDone).
func (r *flightRecorder) periodDone(st warper.PeriodStats) {
	r.stageMu.Lock()
	stages := r.stages
	r.stages = map[string]float64{}
	r.stageMu.Unlock()
	fields := map[string]any{
		"mode":      st.Mode.String(),
		"arrivals":  st.Arrivals,
		"generated": st.Generated,
		"picked":    st.Picked,
		"annotated": st.Annotated,
		"updated":   st.Updated,
		"delta_m":   st.DeltaM,
		"delta_js":  st.DeltaJS,
		"busy_ms":   float64(st.Busy.Microseconds()) / 1000,
	}
	for stage, secs := range stages {
		fields["stage_"+stage+"_seconds"] = secs
	}
	r.journal.Append("period_end", 0, fields)
	if st.Partial {
		r.journal.Append("degrade_partial", 0, map[string]any{"annotate_failed": st.AnnotateFailed})
	}
	if st.UsedFallback {
		r.journal.Append("degrade_fallback", 0, nil)
	}
	if st.TelemetryDegraded {
		r.journal.Append("degrade_telemetry", 0, nil)
	}
}

// handleTraces serves the retained traces as Chrome trace-event JSON,
// loadable in chrome://tracing or Perfetto.
func (r *flightRecorder) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteChromeTrace(w, r.tracer.Snapshot()); err != nil {
		// Headers are gone; nothing to repair. The instrument layer logged
		// worse failures than a half-written debug dump.
		return
	}
}

// eventsResponse is the /debug/events payload.
type eventsResponse struct {
	// Total counts events ever journaled; Total - len(Events) were evicted
	// by the bounded buffer.
	Total  uint64      `json:"total"`
	Events []obs.Event `json:"events"`
}

// handleEvents serves the adaptation event journal, oldest-first.
func (r *flightRecorder) handleEvents(w http.ResponseWriter, _ *http.Request) {
	r.windows.Tick(time.Now())
	w.Header().Set("Content-Type", "application/json")
	resp := eventsResponse{Total: r.journal.Total(), Events: r.journal.Snapshot()}
	if resp.Events == nil {
		resp.Events = []obs.Event{}
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// statuszData feeds the /statusz template.
type statuszData struct {
	Now        time.Time
	Status     statusResponse
	Health     HealthState
	QueueDepth int64
	Window     obs.WindowView
	Drift      obs.DriftState
	WorstQ     []obs.Exemplar
	Slowest    []obs.Exemplar
	Events     []obs.Event
	Traces     int
	Sampled    int64
	Dropped    int64
	Journal    uint64
	Evicted    uint64
	TraceOn    bool
	DriftOn    bool

	// Estimate-cache panel.
	CacheOn            bool
	CacheEntries       int64
	CacheCap           int
	CacheHits          int64
	CacheMisses        int64
	CacheHitPct        float64
	CacheEvictions     int64
	CacheInvalidations int64
}

var statuszTmpl = template.Must(template.New("statusz").Funcs(template.FuncMap{
	"ms":  func(s float64) string { return template.HTMLEscapeString(formatMillis(s)) },
	"ago": func(now, t time.Time) string { return formatAgo(now, t) },
}).Parse(`<!DOCTYPE html>
<html><head><title>warperd statusz</title><style>
body{font-family:monospace;margin:2em;background:#fafafa;color:#222}
h1{font-size:1.3em}h2{font-size:1.1em;margin-top:1.5em;border-bottom:1px solid #ccc}
table{border-collapse:collapse;margin:0.5em 0}
td,th{border:1px solid #ddd;padding:2px 8px;text-align:right}
th{background:#eee}td.l,th.l{text-align:left}
.alarm{color:#b00020;font-weight:bold}.ok{color:#1b5e20}
</style></head><body>
<h1>warperd flight recorder</h1>
<p>model={{.Status.Model}} periods={{.Status.Periods}} buffered={{.Status.Buffered}}
pi={{printf "%.3f" .Status.Pi}} gamma={{.Status.Gamma}}</p>

<h2>Serving health</h2>
<p>state {{if eq .Health 0}}<span class="ok">healthy</span>{{else}}<span class="alarm">{{.Health}}</span>{{end}}
— admission queue depth {{.QueueDepth}}; degraded answers come from the fallback ladder,
sheds answer 429 (see estimate_fallback_total / estimate_shed_total below)</p>

<h2>Estimate cache</h2>
{{if .CacheOn}}<p>entries {{.CacheEntries}}/{{.CacheCap}} — hits {{.CacheHits}}, misses {{.CacheMisses}}
(hit rate {{printf "%.1f" .CacheHitPct}}%), evictions {{.CacheEvictions}},
invalidations {{.CacheInvalidations}} (model swaps + flushes; a swap's generation bump
invalidates every entry without a scan)</p>
{{else}}<p>disabled (set -estimate-cache)</p>{{end}}

<h2>Drift watch</h2>
{{if .DriftOn}}
<p>{{if .Drift.Alarm}}<span class="alarm">ALARM</span> since {{ago .Now .Drift.AlarmSince}}{{else}}<span class="ok">ok</span>{{end}}
— window GMQ {{printf "%.3f" .Drift.WindowGMQ}} over {{.Drift.Count}} obs
(threshold {{printf "%.2f" .Drift.Threshold}}, window {{.Drift.Window}});
q-error p50 {{printf "%.2f" .Drift.P50}} p95 {{printf "%.2f" .Drift.P95}} p99 {{printf "%.2f" .Drift.P99}}</p>
{{else}}<p>disabled (set -drift-alarm-gmq)</p>{{end}}

<h2>Recent window ({{printf "%.0fs" .Window.Seconds}})</h2>
<table><tr><th class="l">metric</th><th>kind</th><th>window</th><th>rate/s</th><th>p50</th><th>p95</th><th>p99</th><th>lifetime</th></tr>
{{range .Window.Stats}}<tr><td class="l">{{.Name}}</td><td>{{.Kind}}</td>
<td>{{if eq .Kind "counter"}}{{.Delta}}{{else if eq .Kind "gauge"}}{{printf "%.4g" .Value}}{{else}}{{.Count}}{{end}}</td>
<td>{{if eq .Kind "counter"}}{{printf "%.2f" .Rate}}{{end}}</td>
<td>{{if eq .Kind "histogram"}}{{printf "%.4g" .P50}}{{end}}</td>
<td>{{if eq .Kind "histogram"}}{{printf "%.4g" .P95}}{{end}}</td>
<td>{{if eq .Kind "histogram"}}{{printf "%.4g" .P99}}{{end}}</td>
<td>{{printf "%.6g" .Lifetime}}</td></tr>
{{end}}</table>

<h2>Worst q-error exemplars</h2>
{{if .WorstQ}}<table><tr><th>q-error</th><th>estimate</th><th>truth</th><th class="l">predicate</th><th class="l">age</th></tr>
{{range .WorstQ}}<tr><td>{{printf "%.2f" .QError}}</td><td>{{printf "%.1f" .Estimate}}</td><td>{{printf "%.1f" .Truth}}</td><td class="l">{{.Predicate}}</td><td class="l">{{ago $.Now .Time}}</td></tr>
{{end}}</table>{{else}}<p>none yet (needs feedback with ground truth)</p>{{end}}

<h2>Slowest sampled requests</h2>
{{if .Slowest}}<table><tr><th>latency</th><th>trace</th><th class="l">predicate</th><th class="l">age</th></tr>
{{range .Slowest}}<tr><td>{{ms .Latency}}</td><td>{{.TraceID}}</td><td class="l">{{.Predicate}}</td><td class="l">{{ago $.Now .Time}}</td></tr>
{{end}}</table>{{else}}<p>none yet{{if not $.TraceOn}} (tracing off; set -trace-sample){{end}}</p>{{end}}

<h2>Request tracing</h2>
<p>{{if .TraceOn}}retained {{.Traces}} traces ({{.Sampled}} sampled, {{.Dropped}} dropped) —
<a href="/debug/traces">/debug/traces</a> loads in chrome://tracing{{else}}off (set -trace-sample){{end}}</p>

<h2>Adaptation journal ({{.Journal}} events, {{.Evicted}} evicted) — <a href="/debug/events">/debug/events</a></h2>
{{if .Events}}<table><tr><th>seq</th><th class="l">age</th><th class="l">kind</th><th>trace</th><th class="l">fields</th></tr>
{{range .Events}}<tr><td>{{.Seq}}</td><td class="l">{{ago $.Now .Time}}</td><td class="l">{{.Kind}}</td><td>{{if .TraceID}}{{.TraceID}}{{end}}</td><td class="l">{{range $k, $v := .Fields}}{{$k}}={{$v}} {{end}}</td></tr>
{{end}}</table>{{else}}<p>no lifecycle events yet</p>{{end}}
</body></html>
`))

// statuszEventTail bounds the journal rows rendered on /statusz (the full
// journal is one click away on /debug/events).
const statuszEventTail = 40

// handleStatusz renders the human-facing flight-recorder page: recent
// window, drift state, exemplars and the journal tail, stdlib-only HTML.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	s.Tick(now)

	s.mu.Lock()
	status := statusResponse{
		Model:    s.status.Model,
		PoolSize: s.status.PoolSize,
		Labeled:  s.status.Labeled,
		Buffered: len(s.buffer),
		Periods:  s.periods,
		Pi:       s.status.Pi,
		Gamma:    s.status.Gamma,
		Costs:    s.status.Costs,
	}
	s.mu.Unlock()

	events := s.rec.journal.Snapshot()
	total := s.rec.journal.Total()
	evicted := total - uint64(len(events))
	if len(events) > statuszEventTail {
		events = events[len(events)-statuszEventTail:]
	}
	// Newest first reads better on a debug page.
	for i, j := 0, len(events)-1; i < j; i, j = i+1, j-1 {
		events[i], events[j] = events[j], events[i]
	}
	traces := s.rec.tracer.Snapshot()
	data := statuszData{
		Now:        now,
		Status:     status,
		Health:     s.health.current(),
		QueueDepth: s.pool.queueDepth(),
		Window:     s.rec.windows.View(now),
		Drift:      s.rec.driftState(now),
		WorstQ:     s.rec.exemplars.WorstQ(),
		Slowest:    s.rec.exemplars.Slowest(),
		Events:     events,
		Traces:     len(traces),
		Sampled:    s.rec.tracer.Sampled.Load(),
		Dropped:    s.rec.tracer.Dropped.Load(),
		Journal:    total,
		Evicted:    evicted,
		TraceOn:    s.rec.tracer.Sampling(),
		DriftOn:    s.rec.drift.Threshold() > 0,
	}
	if s.cache != nil {
		data.CacheOn = true
		data.CacheEntries = s.cache.entries()
		data.CacheCap = s.cache.capacity
		data.CacheHits = s.met.cacheHits.Value()
		data.CacheMisses = s.met.cacheMisses.Value()
		if n := data.CacheHits + data.CacheMisses; n > 0 {
			data.CacheHitPct = 100 * float64(data.CacheHits) / float64(n)
		}
		data.CacheEvictions = s.met.cacheEvictions.Value()
		data.CacheInvalidations = s.met.cacheInvalidations.Value()
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statuszTmpl.Execute(w, data); err != nil {
		s.logger.Error("statusz render failed", "err", err)
	}
}

// withTick wraps a read-side handler so serving it also advances the
// windowed-telemetry ring — the pull-based design's only clock — and lets
// the health machine reconsider on the fresh window.
func (s *Server) withTick(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.Tick(time.Now())
		h.ServeHTTP(w, r)
	})
}

// Tick advances the windowed-telemetry ring and re-evaluates serving health
// as of now. Exported for embedders (and the overload benchmark) that serve
// estimates in-process and therefore never hit the HTTP tick paths; HTTP
// deployments get ticks for free from scrapes, /statusz, feedback and
// period edges. Never called from the estimate hot path.
func (s *Server) Tick(now time.Time) {
	s.rec.windows.Tick(now)
	s.evalHealth(now)
}

// evalHealth runs one (throttled) health evaluation: gather the signals —
// windowed checkout-wait p99, live admission-queue depth, breaker state,
// in-flight swap age — and let the tracker classify them with hysteresis.
func (s *Server) evalHealth(now time.Time) {
	if !s.health.due(now) {
		return
	}
	sig := healthSignals{
		queueDepth:  s.pool.queueDepth(),
		breakerOpen: s.health.breakerOpen.Load(),
	}
	if start := s.health.swapStart.Load(); start != 0 {
		sig.swapAge = now.Sub(time.Unix(0, start))
	}
	// The windowed view walks the whole registry; due() has already bounded
	// how often that happens.
	for _, st := range s.rec.windows.View(now).Stats {
		if st.Name == mCheckoutWait {
			sig.waitP99 = st.P99
			break
		}
	}
	s.health.eval(sig)
}

// formatMillis renders seconds as a millisecond string.
func formatMillis(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// formatAgo renders "how long ago" for the statusz tables.
func formatAgo(now, t time.Time) string {
	if t.IsZero() {
		return "-"
	}
	d := now.Sub(t)
	if d < 0 {
		d = 0
	}
	return d.Round(time.Second).String() + " ago"
}
