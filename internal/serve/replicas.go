package serve

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"warper/internal/ce"
	"warper/internal/obs"
	"warper/internal/query"
	"warper/internal/resilience"
)

// Admission-control outcomes of a deadline-bounded checkout. Sentinels, not
// wrapped errors: the estimate path switches on identity and never formats
// them.
var (
	// errShed: the bounded admission queue is full; the request is load-shed
	// without waiting.
	errShed = errors.New("admission queue full")
	// errCheckoutTimeout: the request queued but no replica freed up within
	// its deadline budget.
	errCheckoutTimeout = errors.New("replica checkout deadline exceeded")
)

// This file implements the replica-pool serving core. PR 1 kept estimates
// behind one serving mutex; that lock is gone from the hot path entirely:
// N independent model clones sit on a channel free-list, each estimate
// checks one out, runs on private scratch, and checks it back in. A model
// swap after an adaptation period is a single atomic generation bump —
// replicas notice the stale generation on their next checkout and lazily
// re-clone from the new source, so a swap never stalls in-flight estimates.

// modelGen is one serving generation: a private clone of the adapter's
// model plus a monotonically increasing generation number.
type modelGen struct {
	model ce.Estimator
	gen   uint64
}

// replica is one checkout-able serving model. Exactly one goroutine owns a
// replica between checkout and checkin, so its model's forward-pass scratch
// is never shared — the property ce.Estimator.Estimate requires.
type replica struct {
	model ce.Estimator
	gen   uint64
}

// replicaPool hands model clones to concurrent estimates via a channel
// free-list. The checkout path is lock-free (a channel receive, an atomic
// load); the only mutex, refreshMu, serializes the rare lazy re-clone after
// a generation bump, because Clone/CloneInto advance the source model's RNG.
// warperlint's lockhygiene rule pins the lock-free property.
type replicaPool struct {
	free chan *replica
	src  atomic.Pointer[modelGen]
	// refreshMu serializes replica refreshes against each other; it is the
	// only lock a checkout may ever take, and only on the post-swap path.
	refreshMu sync.Mutex
	met       *Metrics

	// waiters counts requests parked in checkoutDeadline's bounded admission
	// queue; maxQueue caps it — arrival number maxQueue+1 is shed with
	// errShed instead of queueing. The blocking checkout() path is exempt
	// (no deadline means the caller opted out of admission control).
	waiters  atomic.Int64
	maxQueue int64
	// timers recycles the slow-path deadline timers so a queued checkout
	// does not allocate one per wait.
	timers chan *time.Timer
	// faults, when non-nil, injects the deterministic overload chaos plan
	// (replica starvation, slow swaps) into this pool.
	faults *resilience.ServeFaults
}

// newReplicaPool builds a pool of n replicas cloned from src. src must be a
// private model (never the adapter's own M): the pool owns it, and refreshes
// advance its RNG.
func newReplicaPool(src ce.Estimator, n int, met *Metrics) *replicaPool {
	if n < 1 {
		n = 1
	}
	p := &replicaPool{
		free:     make(chan *replica, n),
		met:      met,
		maxQueue: defaultShedQueue(n),
		timers:   make(chan *time.Timer, n),
	}
	p.src.Store(&modelGen{model: src, gen: 1})
	for i := 0; i < n; i++ {
		p.free <- &replica{model: src.Clone(), gen: 1}
	}
	met.replicas.Set(float64(n))
	return p
}

// checkout acquires a free replica, refreshing it first when a model swap
// made its clone stale. The fast path is one buffered-channel receive.
func (p *replicaPool) checkout() *replica {
	p.met.checkouts.Inc()
	var r *replica
	select {
	case r = <-p.free:
	default:
		// Every replica is busy: this request queues. The wait histogram is
		// the successor of PR 1's estimate-lock wait, renamed to say what it
		// now measures; the old name stays exported as an alias for one
		// release (see metrics.go).
		p.met.checkoutQueue.Add(1)
		sp := obs.StartSpan(p.met.checkoutWait)
		r = <-p.free
		sp.End()
		p.met.checkoutQueue.Add(-1)
	}
	return p.ready(r)
}

// ready finishes a checkout: the chaos starvation hold (a no-op without an
// armed fault plan) and the lazy post-swap refresh.
func (p *replicaPool) ready(r *replica) *replica {
	if p.faults != nil {
		// Chaos only: hold the replica hostage like a slow forward pass
		// would. The injector decides, count-based; this path sleeps so the
		// starvation is real for everyone queued behind the free-list.
		if d := p.faults.CheckoutHold(); d > 0 {
			time.Sleep(d)
		}
	}
	if cur := p.src.Load(); r.gen != cur.gen {
		p.refresh(r) //lint:allow hotpathalloc sanctioned slow branch: one re-clone per model swap, serialized behind refreshMu
	}
	return r
}

// tryCheckout acquires a replica only if one is free right now — the
// admission rule of the degraded and shedding health states, where letting
// requests queue is exactly what the server must stop doing.
func (p *replicaPool) tryCheckout() (*replica, bool) {
	select {
	case r := <-p.free:
		p.met.checkouts.Inc()
		return p.ready(r), true
	default:
		return nil, false
	}
}

// checkoutDeadline is checkout with an admission budget: a free replica is
// taken immediately; otherwise the request joins the bounded admission queue
// and waits until deadline. A full queue sheds with errShed without waiting;
// a missed deadline returns errCheckoutTimeout. A zero deadline preserves
// the legacy contract — wait forever, no queue bound.
func (p *replicaPool) checkoutDeadline(deadline time.Time) (*replica, error) {
	select {
	case r := <-p.free:
		p.met.checkouts.Inc()
		return p.ready(r), nil
	default:
	}
	if deadline.IsZero() {
		return p.checkout(), nil
	}
	if p.waiters.Add(1) > p.maxQueue {
		p.waiters.Add(-1)
		return nil, errShed
	}
	d := time.Until(deadline)
	if d <= 0 {
		p.waiters.Add(-1)
		return nil, errCheckoutTimeout
	}
	p.met.checkoutQueue.Add(1)
	t := p.getTimer(d)
	sp := obs.StartSpan(p.met.checkoutWait)
	select {
	case r := <-p.free:
		p.met.checkouts.Inc()
		sp.End()
		p.met.checkoutQueue.Add(-1)
		p.waiters.Add(-1)
		p.putTimer(t)
		return p.ready(r), nil
	case <-t.C:
		// The wait span still records: a timed-out wait is precisely the
		// signal the health machine's p99 watches.
		sp.End()
		p.met.checkoutQueue.Add(-1)
		p.waiters.Add(-1)
		p.putTimer(t)
		return nil, errCheckoutTimeout
	}
}

// getTimer takes a recycled deadline timer or allocates one on a free-list
// miss.
func (p *replicaPool) getTimer(d time.Duration) *time.Timer {
	select {
	case t := <-p.timers:
		t.Reset(d)
		return t
	default:
	}
	return time.NewTimer(d) //lint:allow hotpathalloc timer free-list miss: at most pool-capacity timers are ever live, then every wait recycles
}

// putTimer returns a timer to the free-list, stopped and drained so the next
// Reset starts clean. Callers that consumed the fire hand over an already
// drained channel; Stop returning false is then benign.
func (p *replicaPool) putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	select {
	case p.timers <- t:
	default:
	}
}

// checkin returns a replica to the free-list.
func (p *replicaPool) checkin(r *replica) { p.free <- r }

// queueDepth reports how many requests sit in the bounded admission queue.
func (p *replicaPool) queueDepth() int64 { return p.waiters.Load() }

// defaultShedQueue derives the admission-queue bound from the pool size:
// room for a healthy burst (16 requests per replica) but never less than 64,
// so small pools still absorb scrape-sized spikes.
func defaultShedQueue(replicas int) int64 {
	q := int64(16 * replicas)
	if q < 64 {
		q = 64
	}
	return q
}

// refresh re-clones a stale replica from the current generation's source.
// Refreshes are serialized because Clone and CloneInto draw from the source
// model's RNG; the source is pool-private, so those draws never perturb the
// adapter's seeded state.
func (p *replicaPool) refresh(r *replica) {
	p.refreshMu.Lock()
	defer p.refreshMu.Unlock()
	cur := p.src.Load()
	if r.gen == cur.gen {
		return
	}
	if ipc, ok := cur.model.(ce.InPlaceCloner); !ok || !ipc.CloneInto(r.model) {
		r.model = cur.model.Clone()
	}
	r.gen = cur.gen
	p.met.refreshes.Inc()
}

// swap installs m as the new serving generation: one private clone, one
// atomic pointer store. In-flight estimates finish on the old generation;
// each replica re-clones lazily at its next checkout. The caller must
// serialize swaps (handlePeriod's periodMu does) and guarantee m is not
// concurrently mutated during the clone.
func (p *replicaPool) swap(m ce.Estimator) {
	sp := obs.StartSpan(p.met.swapSeconds)
	if p.faults != nil {
		// Chaos only: a slow clone of a large model. Inside the span so the
		// injected stall is visible on warper_model_swap_seconds, exactly
		// where a real slow swap would show.
		if d := p.faults.SwapHold(); d > 0 {
			time.Sleep(d)
		}
	}
	src := m.Clone()
	cur := p.src.Load()
	p.src.Store(&modelGen{model: src, gen: cur.gen + 1})
	sp.End()
}

// current returns the serving generation's source model. Callers must treat
// it as read-only: it backs every future replica refresh.
func (p *replicaPool) current() ce.Estimator { return p.src.Load().model }

// generation returns the current serving generation number.
func (p *replicaPool) generation() uint64 { return p.src.Load().gen }

// --- micro-batching coalescer ----------------------------------------------

// batch is one combining buffer of concurrent estimates. Appends happen
// under the coalescer mutex; once the batch is detached (full, or its
// leader's wait ended) no request touches preds again. outs and pv are
// written by the leader before close(done), so every waiter reads them
// race-free after <-done.
type batch struct {
	preds []query.Predicate
	outs  []float64
	done  chan struct{}
	pv    any // model panic, re-raised in every waiting request
	// deadline is the tightest non-zero deadline among the batch's members,
	// maintained under the coalescer mutex while the batch forms (the
	// leader's b.n load after detach is the happens-before edge that lets
	// exec read it lock-free). A shared batch lives or dies on one checkout,
	// so the strictest member budgets it.
	deadline time.Time
	// out is the batch-level outcome, written by exec before close(done):
	// degraded marks a fallback-served batch with its reason; errv carries
	// the admission error (errShed / errCheckoutTimeout) when the batch
	// could not be answered at all.
	out batchOutcome
	// gen is the serving generation that executed the batch, written by exec
	// before close(done) so traced waiters read it race-free.
	gen uint64
	// n mirrors len(preds): stored (under the coalescer mutex) after every
	// append, loaded by the spinning leader without the mutex. The atomic
	// load doubles as the happens-before edge that lets exec read preds
	// lock-free when a follower filled and detached the batch.
	n atomic.Int32
	// refs counts waiters still reading outs; the last one to leave
	// recycles the batch onto the coalescer free-list.
	refs atomic.Int32
}

// coalescer combines concurrent estimate requests into single
// ce.BatchEstimator.EstimateAll calls using a leader/follower scheme: the
// request that opens a batch becomes its leader, yields the processor a few
// times (never longer than `window`) so concurrent requests can join, then
// detaches the batch, runs it on one checked-out replica, and wakes every
// follower with one channel close. There is no dispatcher goroutine and no
// per-request channel hop — the hot path is one short mutex region, one
// park on the batch's done channel, and a slot read. Per the BatchEstimator
// contract the results are bit-identical to per-request Estimate calls;
// what the window trades is a bounded amount of p50 latency for amortized
// inference cost.
// batchOutcome is how one coalesced batch (and hence each of its members)
// was ultimately served: fully (zero value), from the fallback ladder
// (degraded + reason), or not at all (err set to an admission sentinel).
type batchOutcome struct {
	degraded bool
	reason   string
	err      error
}

type coalescer struct {
	pool *replicaPool
	met  *Metrics
	// fb, when non-nil, answers a batch whose replica checkout missed its
	// deadline; nil means such batches fail with the admission error.
	fb *fallbackLadder

	window time.Duration
	max    int

	// mu guards cur and closed. Held only to append to the forming batch —
	// never across inference.
	mu     sync.Mutex
	cur    *batch
	closed bool

	// freeb recycles batch buffers (preds/outs backing arrays) between
	// rounds; the done channel is the only per-batch allocation that
	// survives, because a closed channel cannot be reused.
	freeb chan *batch
}

// newCoalescer builds a combining coalescer over pool. fb may be nil
// (fallback disabled).
func newCoalescer(pool *replicaPool, window time.Duration, max int, met *Metrics, fb *fallbackLadder) *coalescer {
	if max < 1 {
		max = 1
	}
	return &coalescer{pool: pool, met: met, fb: fb, window: window, max: max, freeb: make(chan *batch, 4)}
}

// newBatch takes a recycled batch off the free-list or allocates one.
//
//lint:allow hotpathalloc free-list miss and the per-batch done channel are the documented batch-amortized allocations
func (c *coalescer) newBatch() *batch {
	var b *batch
	select {
	case b = <-c.freeb:
		b.preds = b.preds[:0]
		b.pv = nil
		b.deadline = time.Time{}
		b.out = batchOutcome{}
		b.gen = 0
		b.n.Store(0)
	default:
		b = &batch{preds: make([]query.Predicate, 0, c.max), outs: make([]float64, c.max)}
	}
	b.done = make(chan struct{})
	return b
}

// recycle offers a drained batch back to the free-list.
func (c *coalescer) recycle(b *batch) {
	select {
	case c.freeb <- b:
	default:
	}
}

// estimate joins (or opens) the forming batch and blocks for its batched
// answer. It reports false after Close, telling the caller to fall back to
// the direct checkout path. A non-nil deadline tightens the batch's shared
// admission budget; the returned batchOutcome says whether the answer came
// from the model, the fallback ladder, or nowhere (outcome.err set), and
// the returned generation is the one that executed the batch (0 when no
// replica ever ran it) — the estimate cache stamps its entries with it. A
// non-nil trace records whether this request led or followed, plus the
// executed batch's size and generation.
func (c *coalescer) estimate(p query.Predicate, tr *obs.Trace, deadline time.Time) (float64, uint64, batchOutcome, bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, 0, batchOutcome{}, false
	}
	b := c.cur
	leader := b == nil
	if leader {
		b = c.newBatch()
		c.cur = b
	}
	idx := len(b.preds)
	b.preds = append(b.preds, p) //lint:allow hotpathalloc never grows: capacity is c.max and the batch detaches at max
	if !deadline.IsZero() && (b.deadline.IsZero() || deadline.Before(b.deadline)) {
		b.deadline = deadline
	}
	b.n.Store(int32(len(b.preds)))
	if len(b.preds) >= c.max {
		// Full: detach now so the next arrival opens a fresh batch with its
		// own leader. Two detached batches may run concurrently — that is
		// exactly what the replica pool is for.
		c.cur = nil
	}
	c.mu.Unlock()

	if leader {
		// lead runs exec in this goroutine, which closes done before
		// returning — the leader never parks on it.
		tr.EnterStage("batch_lead")
		c.lead(b, tr)
	} else {
		tr.EnterStage("batch_wait")
		<-b.done
	}
	if tr != nil {
		// Written by exec before close(done) / before lead returned.
		tr.BatchSize = int(b.n.Load())
		tr.Generation = b.gen
	}
	// b.gen must be read in the same pre-release window as outs[idx]: the
	// moment refs hits zero the batch can be recycled and rewritten.
	out, gen, bo, pv := b.outs[idx], b.gen, b.out, b.pv
	if b.refs.Add(-1) == 0 && pv == nil {
		c.recycle(b)
	}
	if pv != nil {
		// Re-raise the model panic in each requesting goroutine so the HTTP
		// recover middleware charges it per request. A panicked batch is
		// never recycled.
		panic(pv) //lint:allow panicfree re-raising a model panic for the per-request recover middleware
	}
	return out, gen, bo, true
}

// lead is the batch leader's accumulation wait: while the batch is still
// forming it yields so runnable requesters can join, and detaches after two
// consecutive yields without a new arrival or once the window is spent — a
// saturated server batches at its concurrency level with no timer stall,
// and a lone request passes straight through. The window is therefore a
// hard cap on accumulation wait, not a mandatory delay.
func (c *coalescer) lead(b *batch, tr *obs.Trace) {
	start := time.Now()
	idle, lastN := 0, 1
	for {
		n := int(b.n.Load())
		if n >= c.max {
			break // a follower filled and detached it
		}
		if n > lastN {
			idle, lastN = 0, n
		} else {
			idle++
		}
		if idle > 2 || time.Since(start) >= c.window {
			c.mu.Lock()
			if c.cur == b {
				c.cur = nil
			}
			c.mu.Unlock()
			break
		}
		runtime.Gosched()
	}
	c.exec(b, tr)
}

// exec runs one detached batch on a checked-out replica and wakes every
// waiter. A model panic is captured into b.pv for the waiters to re-raise;
// the deferred checkin keeps a panicking model from draining the pool
// (forward scratch is overwritten on every call, so the replica stays
// usable), and the deferred close guarantees no waiter is left parked.
func (c *coalescer) exec(b *batch, tr *obs.Trace) {
	defer close(b.done)
	//lint:allow hotpathalloc open-coded defers keep this recover closure off the heap
	defer func() {
		if rec := recover(); rec != nil {
			b.pv = rec
		}
	}()
	n := len(b.preds)
	b.refs.Store(int32(n))
	c.met.batchRows.Observe(float64(n))
	if cap(b.outs) < n {
		b.outs = make([]float64, n) //lint:allow hotpathalloc grow-once output buffer; recycled batches keep their capacity
	}
	b.outs = b.outs[:n]
	tr.EnterStage("checkout")
	r, err := c.pool.checkoutDeadline(b.deadline)
	if err != nil {
		// The whole batch missed its budget together: answer every member
		// from the fallback ladder, or fail them all with the admission
		// sentinel when the queue was full (shedding beats serving stale
		// answers to a queue that is still growing) or fallback is off.
		if c.fb == nil || err == errShed {
			b.out = batchOutcome{err: err}
			return
		}
		tr.EnterStage("fallback")
		b.out = batchOutcome{degraded: true, reason: reasonTimeout}
		for i := range b.preds {
			b.outs[i] = c.fb.estimate(b.preds[i])
		}
		return
	}
	defer c.pool.checkin(r)
	b.gen = r.gen
	tr.EnterStage("infer")
	if be, ok := r.model.(ce.BatchEstimator); ok {
		be.EstimateAll(b.preds, b.outs)
		return
	}
	for i := range b.preds {
		b.outs[i] = r.model.Estimate(b.preds[i])
	}
}

// Close makes every subsequent estimate fall back to the direct checkout
// path. Batches already forming complete normally. Safe to call repeatedly.
func (c *coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}
