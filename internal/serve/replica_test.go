package serve

import (
	"bytes"
	"errors"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
	"warper/internal/warper"
	"warper/internal/workload"
)

// newPoolServer builds a server with explicit serving options over the same
// environment newTestServer uses.
func newPoolServer(t *testing.T, opts Options) (*Server, *query.Schema, workload.Generator) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	tbl := dataset.PRSA(2000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	wopts := workload.Options{MaxConstrained: 2}
	gTrain := workload.New("w1", tbl, sch, wopts)
	train := annAll(t, ann, workload.Generate(gTrain, 300, rng))
	lm := ce.NewLM(ce.LMMLP, sch, 1)
	if err := lm.Train(train); err != nil {
		t.Fatalf("Train: %v", err)
	}
	cfg := warper.DefaultConfig()
	cfg.Hidden = 32
	cfg.Depth = 2
	cfg.NIters = 20
	cfg.Gamma = 100
	cfg.PickSize = 60
	ad, err := warper.New(cfg, lm, sch, ann, train)
	if err != nil {
		t.Fatalf("warper.New: %v", err)
	}
	srv := NewWithOptions(ad, sch, opts)
	t.Cleanup(srv.Close)
	return srv, sch, workload.New("w4", tbl, sch, wopts)
}

// concurrentEstimates fires every predicate through srv.Estimate from nWorkers
// goroutines and returns the results in predicate order.
func concurrentEstimates(srv *Server, preds []query.Predicate, nWorkers int) []float64 {
	got := make([]float64, len(preds))
	var next sync.Mutex
	idx := 0
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := idx
				idx++
				next.Unlock()
				if i >= len(preds) {
					return
				}
				got[i] = srv.Estimate(preds[i])
			}
		}()
	}
	wg.Wait()
	return got
}

// TestConcurrentReplicaEstimatesAreByteIdentical pins the replica-pool
// clone contract: estimates served concurrently from N replicas are
// bit-identical to single-threaded estimates on the adapter's model. Run
// under -race this also proves the checkout path shares no scratch state.
func TestConcurrentReplicaEstimatesAreByteIdentical(t *testing.T) {
	srv, sch, gNew := newPoolServer(t, Options{Replicas: 4})
	rng := rand.New(rand.NewSource(3))
	preds := make([]query.Predicate, 200)
	want := make([]float64, len(preds))
	for i := range preds {
		preds[i] = gNew.Gen(rng).Normalize(sch)
		want[i] = srv.adapter.M.Estimate(preds[i])
	}
	got := concurrentEstimates(srv, preds, 8)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("estimate %d: replica served %v, reference %v", i, got[i], want[i])
		}
	}
}

// TestCoalescedEstimatesAreByteIdentical pins the BatchEstimator contract on
// the serving path: batched answers from the coalescer match per-sample
// estimates bit for bit, and batches actually formed.
func TestCoalescedEstimatesAreByteIdentical(t *testing.T) {
	srv, sch, gNew := newPoolServer(t, Options{
		Replicas:    2,
		BatchWindow: 200 * time.Microsecond,
		BatchMax:    8,
	})
	rng := rand.New(rand.NewSource(5))
	preds := make([]query.Predicate, 300)
	want := make([]float64, len(preds))
	for i := range preds {
		preds[i] = gNew.Gen(rng).Normalize(sch)
		want[i] = srv.adapter.M.Estimate(preds[i])
	}
	got := concurrentEstimates(srv, preds, 8)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("estimate %d: coalesced answer %v, reference %v", i, got[i], want[i])
		}
	}
	if srv.met.batchRows.Count() == 0 {
		t.Error("no coalesced batch was recorded")
	}
	// After Close, the direct checkout path still answers.
	srv.Close()
	if got := srv.Estimate(preds[0]); got != want[0] {
		t.Errorf("post-Close estimate = %v, want %v", got, want[0])
	}
}

// TestModelSwapRefreshesReplicas runs a successful adaptation period and
// checks the swap protocol: the generation bump is recorded, replicas
// refresh lazily, and post-swap estimates come from the repaired model.
func TestModelSwapRefreshesReplicas(t *testing.T) {
	srv, ts, sch, ann, gNew := newTestServer(t)
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 30; i++ {
		p := gNew.Gen(rng)
		card := countOK(t, ann, p)
		postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
			Cardinality:   &card,
		}, nil)
	}
	if r := postJSON(t, ts.URL+"/period", struct{}{}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("period = %d", r.StatusCode)
	}
	if srv.met.swapSeconds.Count() != 1 {
		t.Errorf("swap histogram count = %d, want 1", srv.met.swapSeconds.Count())
	}
	// The next estimate must check out a replica, notice the stale
	// generation, refresh, and answer from the repaired model.
	p := gNew.Gen(rng).Normalize(sch)
	got := srv.Estimate(p)
	if want := srv.adapter.M.Estimate(p); got != want {
		t.Errorf("post-swap estimate = %v, want repaired model's %v", got, want)
	}
	body := metricsBody(t, ts.URL)
	if metricValue(t, body, mRefreshes) == 0 {
		t.Error("no replica refresh recorded after a model swap")
	}
}

// TestFailedPeriodRestoresArrivals is the regression test for the dropped-
// feedback bug: a failed period used to consume the buffered arrivals for
// good, so the evidence of drift silently vanished. They must be
// re-buffered for the next attempt.
func TestFailedPeriodRestoresArrivals(t *testing.T) {
	_, ts, ann, gNew := robustnessEnv(t, func(lm *ce.LM) ce.Estimator {
		return &failUpdateModel{LM: lm}
	})
	rng := rand.New(rand.NewSource(37))
	const n = 30
	feedDrifted(t, ts, ann, gNew, rng, n)

	if r := postJSON(t, ts.URL+"/period", struct{}{}, nil); r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing period = %d, want 500", r.StatusCode)
	}

	body := metricsBody(t, ts.URL)
	if got := metricValue(t, body, mBuffered); got != n {
		t.Errorf("%s = %v after failed period, want %v (arrivals dropped)", mBuffered, got, float64(n))
	}
	// A second failing period consumes the restored arrivals again —
	// proving they were really re-buffered, not just counted.
	if r := postJSON(t, ts.URL+"/period", struct{}{}, nil); r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("second failing period = %d, want 500", r.StatusCode)
	}
	body = metricsBody(t, ts.URL)
	if got := metricValue(t, body, mBuffered); got != n {
		t.Errorf("%s = %v after second failed period, want %v", mBuffered, got, float64(n))
	}
}

// TestPeriodBodyTooLarge is the regression test for the truncated-validation
// bug: an oversize /period body used to have only its first MiB validated,
// silently accepting a truncated request. It must be rejected outright.
func TestPeriodBodyTooLarge(t *testing.T) {
	_, ts, _, _, _ := newTestServer(t)
	// Valid JSON overall — the old code would read a 1 MiB prefix of it,
	// judge the prefix, and run the period anyway.
	huge := `{"pad":"` + strings.Repeat("a", maxPeriodBody) + `"}`
	resp, err := http.Post(ts.URL+"/period", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize period body = %d, want 413", resp.StatusCode)
	}
	// At the cap exactly, the request is still honored.
	pad := strings.Repeat(" ", maxPeriodBody-2)
	resp2, err := http.Post(ts.URL+"/period", "application/json", strings.NewReader("{}"+pad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("at-cap period body = %d, want 200", resp2.StatusCode)
	}
}

// failingWriter fails every body write and records status headers — the
// shape of a client that disconnected mid-response.
type failingWriter struct {
	header http.Header
	codes  []int
}

func (f *failingWriter) Header() http.Header {
	if f.header == nil {
		f.header = http.Header{}
	}
	return f.header
}
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }
func (f *failingWriter) WriteHeader(code int)      { f.codes = append(f.codes, code) }

// TestWriteJSONEncodeFailureDoesNotRewriteStatus is the regression test for
// the double-WriteHeader bug: when encoding the response fails after the
// 200 header is committed, the server used to write a second (500) status
// header into the half-sent body. Now it logs and leaves the wire alone.
func TestWriteJSONEncodeFailureDoesNotRewriteStatus(t *testing.T) {
	var logBuf bytes.Buffer
	s := &Server{logger: slog.New(slog.NewTextHandler(&logBuf, nil))}
	fw := &failingWriter{}
	s.writeJSON(fw, estimateResponse{Cardinality: 42})
	if len(fw.codes) != 0 {
		t.Errorf("writeJSON wrote status headers %v after a failed body write, want none", fw.codes)
	}
	if !strings.Contains(logBuf.String(), "response encode failed") {
		t.Errorf("encode failure was not logged; log: %q", logBuf.String())
	}
}
