package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"warper/internal/obs"
)

// This file implements the serving health state machine: a three-state
// ladder (healthy → degraded → shedding) that decides, per estimate, whether
// the request may queue for a replica, must settle for the fallback
// estimator, or should be shed outright. The paper budgets adaptation so
// serving is never starved (§4.3); the health machine is the same idea
// pointed the other way — it budgets *serving* so overload or a stuck swap
// degrades answers instead of collapsing the process.
//
// The machine is deliberately cheap to read and deliberately slow to move:
// the estimate hot path pays one atomic load to learn the state, and state
// changes happen only on the read-side tick paths (scrapes, /statusz,
// feedback, period edges) with hysteresis, so a single bad sample cannot
// flap the server between modes.

// HealthState is the serving health ladder. The numeric values are exported
// on the serve_health_state gauge, so they are part of the metric contract.
type HealthState int32

const (
	// Healthy serves every estimate from the model, queueing (within the
	// deadline budget) when replicas are busy.
	Healthy HealthState = 0
	// Degraded answers from a replica when one is free immediately and from
	// the fallback ladder otherwise; responses carry "degraded": true.
	Degraded HealthState = 1
	// Shedding admits an estimate only when a replica is free immediately
	// and answers 429 + Retry-After otherwise.
	Shedding HealthState = 2
)

// String names the state for journals and /statusz.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Shedding:
		return "shedding"
	}
	return "unknown"
}

// HealthConfig tunes the health state machine. The zero value means
// "defaults", resolved by withDefaults at server construction.
type HealthConfig struct {
	// DegradeWaitP99 is the windowed replica-checkout-wait p99 above which
	// the server counts an evaluation as degraded. Default 25ms.
	DegradeWaitP99 time.Duration
	// ShedWaitP99 is the checkout-wait p99 above which an evaluation counts
	// as shedding. Default 250ms.
	ShedWaitP99 time.Duration
	// QueueHigh is the admission-queue depth above which an evaluation
	// counts as shedding. Default: half the pool's shed-queue bound.
	QueueHigh int64
	// MaxSwapAge marks the server degraded while an adaptation period (and
	// its eventual model swap) has been in flight longer than this. Default
	// 30s.
	MaxSwapAge time.Duration
	// EscalateAfter is how many consecutive worse-than-current evaluations
	// move the state one step up the ladder. Default 2.
	EscalateAfter int
	// RecoverAfter is how many consecutive better-than-current evaluations
	// move it one step down. Recovery is slower than escalation by default
	// (3) so a brief lull under sustained overload does not bounce the
	// server straight back into the queue it just shed.
	RecoverAfter int
	// EvalInterval throttles evaluations: tick paths fire far more often
	// than the machine needs to think. Default 250ms; negative disables the
	// throttle (used by tests driving the machine step by step).
	EvalInterval time.Duration
}

// withDefaults resolves zero fields. queueBound is the pool's admission
// queue cap, used to derive QueueHigh.
func (c HealthConfig) withDefaults(queueBound int64) HealthConfig {
	if c.DegradeWaitP99 <= 0 {
		c.DegradeWaitP99 = 25 * time.Millisecond
	}
	if c.ShedWaitP99 <= 0 {
		c.ShedWaitP99 = 250 * time.Millisecond
	}
	if c.QueueHigh <= 0 {
		c.QueueHigh = queueBound / 2
		if c.QueueHigh < 1 {
			c.QueueHigh = 1
		}
	}
	if c.MaxSwapAge <= 0 {
		c.MaxSwapAge = 30 * time.Second
	}
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 2
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 3
	}
	if c.EvalInterval == 0 {
		c.EvalInterval = 250 * time.Millisecond
	}
	return c
}

// healthSignals is one evaluation's input: the windowed checkout-wait p99,
// the live admission-queue depth, the annotation breaker state, and how long
// the in-flight adaptation period (if any) has been running.
type healthSignals struct {
	waitP99     float64 // seconds
	queueDepth  int64
	breakerOpen bool
	swapAge     time.Duration
}

// healthTracker runs the state machine. State reads are one atomic load
// (the estimate hot path's only contact with it); evaluations run under a
// mutex but only ever on tick paths.
type healthTracker struct {
	cfg HealthConfig

	state atomic.Int32
	// breakerOpen mirrors the annotation circuit breaker, written by the
	// resilience Events callback and read by evaluations and by the
	// degraded-path reason split.
	breakerOpen atomic.Bool
	// swapStart is the UnixNano start of the in-flight adaptation period
	// (0 when none): a period stuck past MaxSwapAge degrades the server.
	swapStart atomic.Int64
	// lastEval throttles evaluations to EvalInterval (UnixNano, CAS-guarded
	// so concurrent scrapes elect one evaluator).
	lastEval atomic.Int64

	// mu guards the hysteresis streaks; held only inside eval.
	mu         sync.Mutex
	badStreak  int
	goodStreak int

	met     *Metrics
	journal *obs.Journal
}

// newHealthTracker builds a tracker publishing transitions on met's
// serve_health_state gauge and into the journal.
func newHealthTracker(cfg HealthConfig, met *Metrics, journal *obs.Journal) *healthTracker {
	h := &healthTracker{cfg: cfg, met: met, journal: journal}
	met.healthState.Set(float64(Healthy))
	return h
}

// current returns the state with one atomic load.
func (h *healthTracker) current() HealthState { return HealthState(h.state.Load()) }

// due reports whether enough time passed since the last evaluation, electing
// exactly one caller per interval.
func (h *healthTracker) due(now time.Time) bool {
	if h.cfg.EvalInterval < 0 {
		return true
	}
	last := h.lastEval.Load()
	if now.UnixNano()-last < int64(h.cfg.EvalInterval) {
		return false
	}
	return h.lastEval.CompareAndSwap(last, now.UnixNano())
}

// classify maps one signal reading onto the ladder, worst condition wins.
func (h *healthTracker) classify(sig healthSignals) HealthState {
	if sig.waitP99 >= h.cfg.ShedWaitP99.Seconds() || sig.queueDepth >= h.cfg.QueueHigh {
		return Shedding
	}
	if sig.breakerOpen || sig.waitP99 >= h.cfg.DegradeWaitP99.Seconds() ||
		(sig.swapAge > 0 && sig.swapAge >= h.cfg.MaxSwapAge) {
		return Degraded
	}
	return Healthy
}

// eval folds one signal reading into the hysteresis streaks and applies at
// most a single-step transition. Transitions are journaled with the signals
// that caused them, so an operator can replay *why* the server left healthy.
func (h *healthTracker) eval(sig healthSignals) {
	target := h.classify(sig)
	h.mu.Lock()
	cur := h.current()
	next := cur
	switch {
	case target > cur:
		h.badStreak++
		h.goodStreak = 0
		if h.badStreak >= h.cfg.EscalateAfter {
			next = cur + 1 // single step, even when target is two above
			h.badStreak = 0
		}
	case target < cur:
		h.goodStreak++
		h.badStreak = 0
		if h.goodStreak >= h.cfg.RecoverAfter {
			next = cur - 1
			h.goodStreak = 0
		}
	default:
		h.badStreak, h.goodStreak = 0, 0
	}
	if next != cur {
		h.state.Store(int32(next))
	}
	h.mu.Unlock()
	if next == cur {
		return
	}
	h.met.healthState.Set(float64(next))
	h.journal.Append("health", 0, map[string]any{
		"from":         cur.String(),
		"to":           next.String(),
		"wait_p99_ms":  sig.waitP99 * 1000,
		"queue_depth":  sig.queueDepth,
		"breaker_open": sig.breakerOpen,
		"swap_age_ms":  float64(sig.swapAge.Microseconds()) / 1000,
	})
}
