package serve

import (
	"math"
	"sync/atomic"

	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/query"
)

// This file implements the estimator fallback ladder: the cheap,
// always-available tiers an estimate drops to when the learned model cannot
// be reached in budget — checkout missed its deadline, the annotation
// breaker is open, or the health machine has left healthy. CardOOD's thesis
// (PAPERS.md) is that learned CEs need a story for "the model can't be
// trusted"; overload is the sibling problem, "the model can't be *reached*",
// and the answer is the same: keep a classical estimator warm next to the
// learned one.
//
// Tier 1 is a ce.HistogramEstimator built from the live table — data-driven,
// workload-blind, immune to every serving-side failure because it is a plain
// in-memory lookup with no pool, no locks and no allocations. Tier 2, when
// the histogram has no table to build from, is the cached scale prior of the
// last-swapped model: the geometric mean of its answers over a small
// deterministic probe ladder. A prior answer is a bad estimate and a great
// outage response — it keeps joins ordered by table size while the pool
// recovers.

// fallbackBins is the per-column bin count of the histogram tier. 64 bins
// keeps a rebuild in the microsecond range for bench-scale tables while
// matching NewHistogramEstimator's own default.
const fallbackBins = 64

// fallbackLadder holds the fallback tiers behind atomic pointers so the
// estimate hot path reads them lock- and allocation-free. refresh publishes
// fully-built replacements; a published histogram is never mutated again.
type fallbackLadder struct {
	hist atomic.Pointer[ce.HistogramEstimator]
	// priorBits is math.Float64bits of the last-swap model prior (0 bits =
	// no prior yet).
	priorBits atomic.Uint64
}

func newFallbackLadder() *fallbackLadder { return &fallbackLadder{} }

// refresh rebuilds the histogram tier from the live table and recomputes the
// cached model prior from the just-swapped model. Called at construction and
// under periodMu after every successful swap — never on the estimate path —
// so the table is not mid-mutation and the model is not mid-training.
func (f *fallbackLadder) refresh(tbl *dataset.Table, model ce.Estimator, sch *query.Schema) {
	if tbl != nil {
		f.hist.Store(ce.NewHistogramEstimator(tbl, fallbackBins))
	}
	if model != nil && sch != nil {
		f.priorBits.Store(math.Float64bits(modelPrior(model, sch)))
	}
}

// estimate answers from the cheapest available tier. The zero return (no
// histogram, no prior) only happens before the first refresh.
func (f *fallbackLadder) estimate(p query.Predicate) float64 {
	if h := f.hist.Load(); h != nil {
		return h.Estimate(p)
	}
	return math.Float64frombits(f.priorBits.Load())
}

// priorProbes are the quantile windows of the deterministic probe ladder,
// applied to every column: the full domain, each half, and the interquartile
// band. Four probes bound the prior between "everything" and "a selective
// conjunction", which is all a scale summary needs.
var priorProbes = [4][2]float64{{0, 1}, {0, 0.5}, {0.5, 1}, {0.25, 0.75}}

// modelPrior summarizes a model as the geometric mean of its estimates over
// the probe ladder. Deterministic by construction (the probes derive from
// the schema's column ranges, not from any RNG), so the cached prior is a
// pure function of the swapped model and the nondeterminism rule stays
// satisfiable on the serving stack.
func modelPrior(model ce.Estimator, sch *query.Schema) float64 {
	sum, n := 0.0, 0
	for _, fr := range priorProbes {
		p := query.NewFullRange(sch)
		for c := 0; c < sch.NumCols(); c++ {
			span := sch.Maxs[c] - sch.Mins[c]
			p.SetRange(c, sch.Mins[c]+fr[0]*span, sch.Mins[c]+fr[1]*span)
		}
		est := model.Estimate(p)
		if est > 0 && !math.IsInf(est, 1) && !math.IsNaN(est) {
			sum += math.Log(est)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
