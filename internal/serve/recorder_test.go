package serve

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// getBody fetches url and returns (response, body).
func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// chromeTraceDump mirrors the /debug/traces payload for assertions.
type chromeTraceDump struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Tid  uint64         `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestDebugTracesEndpoint(t *testing.T) {
	_, ts, _, _, gNew := newTestServerOpts(t, Options{TraceSample: 1, TraceBuf: 16})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		p := gNew.Gen(rng)
		postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
	}

	resp, body := getBody(t, ts.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var dump chromeTraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("not valid Chrome trace JSON: %v", err)
	}
	if len(dump.TraceEvents) == 0 {
		t.Fatal("no trace events despite sample-every-1")
	}

	// Per trace: the top-level request event must dominate the sum of its
	// stage events (stages nest inside the request).
	reqDur := map[uint64]float64{}
	stageSum := map[uint64]float64{}
	for _, ev := range dump.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.Name == "estimate" {
			reqDur[ev.Tid] = ev.Dur
			if ev.Args["batch_size"] == nil {
				t.Error("request event missing batch_size arg")
			}
		} else {
			stageSum[ev.Tid] += ev.Dur
		}
	}
	if len(reqDur) == 0 {
		t.Fatal("no top-level estimate events")
	}
	for tid, sum := range stageSum {
		total, ok := reqDur[tid]
		if !ok {
			t.Errorf("trace %d has stages but no request event", tid)
			continue
		}
		// Stages cover decode→serve→respond with no blind gaps; allow 1ms
		// of slack for clock rounding.
		if sum > total+1000 {
			t.Errorf("trace %d: stage sum %.0fµs exceeds request %.0fµs", tid, sum, total)
		}
	}
}

func TestDebugTracesWithCoalescer(t *testing.T) {
	_, ts, _, _, gNew := newTestServerOpts(t, Options{
		TraceSample: 1, TraceBuf: 16, BatchWindow: 200 * time.Microsecond, BatchMax: 8,
	})
	rng := rand.New(rand.NewSource(8))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		p := gNew.Gen(rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			pj := predicateJSON{Lows: p.Lows, Highs: p.Highs}
			var buf strings.Builder
			_ = json.NewEncoder(&buf).Encode(pj)
			resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader(buf.String()))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	_, body := getBody(t, ts.URL+"/debug/traces")
	var dump chromeTraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	// Every traced request went through the coalescer: its batch_size arg
	// and a batch_lead or batch_wait stage must be present.
	sawBatchStage := false
	for _, ev := range dump.TraceEvents {
		if ev.Name == "batch_lead" || ev.Name == "batch_wait" {
			sawBatchStage = true
		}
		if ev.Name == "estimate" {
			if bs, ok := ev.Args["batch_size"].(float64); !ok || bs < 1 {
				t.Errorf("coalesced trace has batch_size %v", ev.Args["batch_size"])
			}
			if gen, ok := ev.Args["generation"].(float64); !ok || gen < 1 {
				t.Errorf("coalesced trace has generation %v", ev.Args["generation"])
			}
		}
	}
	if !sawBatchStage {
		t.Error("no batch_lead/batch_wait stage in any trace")
	}
}

func TestDebugEventsCausalOrder(t *testing.T) {
	srv, ts, _, ann, gNew := newTestServerOpts(t, Options{
		DriftWindow:   time.Minute,
		DriftAlarmGMQ: 4,
	})
	rng := rand.New(rand.NewSource(9))

	// Synthetic drift: report ground truth 1000× the served estimate, so
	// every feedback observation carries q-error ≈ 1000 and the windowed
	// GMQ blows through the threshold once the observation floor is met.
	for i := 0; i < 30; i++ {
		p := gNew.Gen(rng)
		var est estimateResponse
		postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &est)
		gt := est.Cardinality*1000 + 1
		postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
			Cardinality:   &gt,
		}, nil)
	}
	if srv.met.driftAlarm.Value() != 1 {
		t.Fatal("drift alarm gauge not raised by synthetic drift")
	}

	// Buffer real labeled feedback so the period has drift evidence, then
	// trigger the adaptation the alarm was asking for.
	for i := 0; i < 30; i++ {
		p := gNew.Gen(rng)
		gt := countOK(t, ann, p.Normalize(srv.sch))
		postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
			Cardinality:   &gt,
		}, nil)
	}
	r := postJSON(t, ts.URL+"/period", nil, nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("period status = %d", r.StatusCode)
	}

	resp, body := getBody(t, ts.URL+"/debug/events")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var events eventsResponse
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("invalid events JSON: %v", err)
	}

	// The flight-recorder story must read in causal order: the drift alarm
	// fired, then a period ran, finished, and swapped the repaired model in.
	seq := map[string]uint64{}
	for _, ev := range events.Events {
		if _, seen := seq[ev.Kind]; !seen {
			seq[ev.Kind] = ev.Seq
		}
	}
	for _, kind := range []string{"drift_alarm", "period_start", "period_end", "model_swap"} {
		if _, ok := seq[kind]; !ok {
			t.Fatalf("journal missing %q; kinds = %v", kind, seq)
		}
	}
	if !(seq["drift_alarm"] < seq["period_start"] &&
		seq["period_start"] < seq["period_end"] &&
		seq["period_end"] < seq["model_swap"]) {
		t.Errorf("events out of causal order: %v", seq)
	}

	// period_end carries the stage breakdown.
	for _, ev := range events.Events {
		if ev.Kind == "period_end" {
			if _, ok := ev.Fields["stage_detect_seconds"]; !ok {
				t.Errorf("period_end missing stage breakdown: %v", ev.Fields)
			}
		}
	}
}

func TestStatuszEndpoint(t *testing.T) {
	_, ts, _, _, gNew := newTestServerOpts(t, Options{TraceSample: 1, DriftAlarmGMQ: 10})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 5; i++ {
		p := gNew.Gen(rng)
		var est estimateResponse
		postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &est)
		gt := est.Cardinality + 1
		postJSON(t, ts.URL+"/feedback", feedbackRequest{
			predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs},
			Cardinality:   &gt,
		}, nil)
	}

	resp, body := getBody(t, ts.URL+"/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content-type = %q", ct)
	}
	page := string(body)
	for _, want := range []string{
		"flight recorder",
		"Drift watch",
		mCheckoutWait, // the recent-window table lists registry metrics
		"/debug/traces",
		"/debug/events",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("statusz missing %q", want)
		}
	}
}

// TestDebugEndpointsBoundedUnderLoad hammers the server with estimates,
// feedback and debug reads concurrently (run with -race to validate the
// recorder's synchronization) and checks every debug surface stays bounded.
func TestDebugEndpointsBoundedUnderLoad(t *testing.T) {
	srv, ts, _, _, gNew := newTestServerOpts(t, Options{
		TraceSample: 1, TraceBuf: 8, DriftWindow: time.Second, DriftAlarmGMQ: 2,
	})
	rng := rand.New(rand.NewSource(11))
	preds := make([]predicateJSON, 8)
	for i := range preds {
		p := gNew.Gen(rng)
		preds[i] = predicateJSON{Lows: p.Lows, Highs: p.Highs}
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				pj := preds[(seed+i)%len(preds)]
				var est estimateResponse
				postJSON(t, ts.URL+"/estimate", pj, &est)
				gt := est.Cardinality*float64(1+i%5) + 1
				postJSON(t, ts.URL+"/feedback", feedbackRequest{predicateJSON: pj, Cardinality: &gt}, nil)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			for _, path := range []string{"/debug/traces", "/debug/events", "/statusz", "/metrics"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s = %d", path, resp.StatusCode)
				}
			}
		}
	}()
	wg.Wait()

	// Bounded retention: the ring and journal never exceed their caps no
	// matter how much traffic flowed.
	if n := len(srv.rec.tracer.Snapshot()); n > 8 {
		t.Errorf("trace ring holds %d, cap 8", n)
	}
	_, body := getBody(t, ts.URL+"/debug/events")
	var events eventsResponse
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("invalid events JSON: %v", err)
	}
	if len(events.Events) > defaultJournalCap {
		t.Errorf("journal holds %d events, cap %d", len(events.Events), defaultJournalCap)
	}
}

// TestMetricRenameAliases pins the one-release rename bridge: both the new
// and the old metric names export, with identical counts.
func TestMetricRenameAliases(t *testing.T) {
	_, ts, _, _, gNew := newTestServer(t)
	rng := rand.New(rand.NewSource(12))
	p := gNew.Gen(rng)
	var est estimateResponse
	postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &est)
	gt := est.Cardinality + 1
	postJSON(t, ts.URL+"/feedback", feedbackRequest{
		predicateJSON: predicateJSON{Lows: p.Lows, Highs: p.Highs}, Cardinality: &gt,
	}, nil)

	_, body := getBody(t, ts.URL+"/metrics")
	text := string(body)
	for _, pair := range [][2]string{
		{mCheckoutWait, mCheckoutWaitOld},
		{mQError, mQErrorOld},
		{mBatchRows, mBatchRowsOld},
	} {
		newCount := extractMetric(t, text, pair[0]+"_count")
		oldCount := extractMetric(t, text, pair[1]+"_count")
		if newCount != oldCount {
			t.Errorf("%s_count = %s but alias %s_count = %s", pair[0], newCount, pair[1], oldCount)
		}
	}
	if !strings.Contains(text, mQError+"_count 1") {
		t.Errorf("feedback did not record under the new q-error name:\n%s", text)
	}
}

// extractMetric returns the value of an exposition line by exact name.
func extractMetric(t *testing.T, text, name string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return ""
}

// TestTracingOffHasNoDebugData confirms the default server traces nothing
// (the zero-cost default) while the journal still records lifecycle events.
func TestTracingOffHasNoDebugData(t *testing.T) {
	srv, ts, _, _, gNew := newTestServer(t)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5; i++ {
		p := gNew.Gen(rng)
		postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
	}
	if n := len(srv.rec.tracer.Snapshot()); n != 0 {
		t.Errorf("tracing off but %d traces retained", n)
	}
	if got := srv.rec.tracer.Sampled.Load(); got != 0 {
		t.Errorf("tracing off but sampled %d", got)
	}
	resp, body := getBody(t, ts.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces = %d", resp.StatusCode)
	}
	var dump chromeTraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("empty trace dump is invalid JSON: %v", err)
	}
	if len(dump.TraceEvents) != 0 {
		t.Errorf("tracing off but %d events exported", len(dump.TraceEvents))
	}
}
