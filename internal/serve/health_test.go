package serve

import (
	"testing"
	"time"

	"warper/internal/obs"
)

// testTracker builds a tracker with the eval throttle disabled so tests can
// drive the machine one evaluation at a time.
func testTracker(cfg HealthConfig) (*healthTracker, *obs.Journal) {
	j := obs.NewJournal(64)
	return newHealthTracker(cfg.withDefaults(64), NewMetrics(), j), j
}

func TestHealthClassify(t *testing.T) {
	h, _ := testTracker(HealthConfig{EvalInterval: -1})
	cases := []struct {
		name string
		sig  healthSignals
		want HealthState
	}{
		{"idle", healthSignals{}, Healthy},
		{"small wait", healthSignals{waitP99: 0.001}, Healthy},
		{"degrade wait", healthSignals{waitP99: 0.025}, Degraded},
		{"shed wait", healthSignals{waitP99: 0.250}, Shedding},
		{"breaker open", healthSignals{breakerOpen: true}, Degraded},
		{"queue high", healthSignals{queueDepth: 32}, Shedding},
		{"queue below high", healthSignals{queueDepth: 31}, Healthy},
		{"young swap", healthSignals{swapAge: time.Second}, Healthy},
		{"stuck swap", healthSignals{swapAge: time.Minute}, Degraded},
		{"worst wins", healthSignals{breakerOpen: true, queueDepth: 32}, Shedding},
	}
	for _, c := range cases {
		if got := h.classify(c.sig); got != c.want {
			t.Errorf("%s: classify = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestHealthHysteresis pins the transition discipline: EscalateAfter
// consecutive bad evaluations move one step up, RecoverAfter good ones move
// one step down, and a mixed sample resets both streaks.
func TestHealthHysteresis(t *testing.T) {
	h, j := testTracker(HealthConfig{EvalInterval: -1})
	bad := healthSignals{queueDepth: 64} // classifies as shedding
	good := healthSignals{}

	// One bad evaluation must not move the state (EscalateAfter = 2).
	h.eval(bad)
	if got := h.current(); got != Healthy {
		t.Fatalf("after 1 bad eval: %v, want healthy", got)
	}
	// The second does — but only a single step, even though the target is
	// shedding, two above.
	h.eval(bad)
	if got := h.current(); got != Degraded {
		t.Fatalf("after 2 bad evals: %v, want degraded (single-step)", got)
	}
	h.eval(bad)
	h.eval(bad)
	if got := h.current(); got != Shedding {
		t.Fatalf("after 4 bad evals: %v, want shedding", got)
	}

	// Recovery is slower: RecoverAfter = 3 good evaluations per step, and a
	// bad sample in between resets the streak.
	h.eval(good)
	h.eval(good)
	h.eval(bad) // resets goodStreak (and counts toward escalation instead)
	h.eval(good)
	h.eval(good)
	if got := h.current(); got != Shedding {
		t.Fatalf("recovery streak not reset by interleaved bad eval: %v", got)
	}
	h.eval(good)
	if got := h.current(); got != Degraded {
		t.Fatalf("after 3 consecutive good evals: %v, want degraded", got)
	}
	h.eval(good)
	h.eval(good)
	h.eval(good)
	if got := h.current(); got != Healthy {
		t.Fatalf("after 6 consecutive good evals: %v, want healthy", got)
	}

	// Every transition was journaled as a single step.
	var steps int
	for _, ev := range j.Snapshot() {
		if ev.Kind != "health" {
			continue
		}
		steps++
		from, to := healthLevel(t, ev.Fields["from"]), healthLevel(t, ev.Fields["to"])
		if d := to - from; d != 1 && d != -1 {
			t.Errorf("journaled transition %v -> %v is not a single step", ev.Fields["from"], ev.Fields["to"])
		}
	}
	if steps != 4 {
		t.Errorf("journaled %d health transitions, want 4", steps)
	}
}

// healthLevel maps a journaled state name back onto the ladder.
func healthLevel(t *testing.T, v any) int {
	t.Helper()
	switch v {
	case "healthy":
		return 0
	case "degraded":
		return 1
	case "shedding":
		return 2
	}
	t.Fatalf("unknown health state in journal: %v", v)
	return -1
}

// TestHealthEvalThrottle pins the CAS election: within one EvalInterval only
// the first caller is due; a negative interval disables the throttle.
func TestHealthEvalThrottle(t *testing.T) {
	h, _ := testTracker(HealthConfig{EvalInterval: time.Minute})
	now := time.Now()
	if !h.due(now) {
		t.Fatal("first caller must be due")
	}
	if h.due(now.Add(time.Second)) {
		t.Fatal("second caller within the interval must not be due")
	}
	if !h.due(now.Add(2 * time.Minute)) {
		t.Fatal("caller after the interval must be due")
	}

	always, _ := testTracker(HealthConfig{EvalInterval: -1})
	if !always.due(now) || !always.due(now) {
		t.Fatal("negative interval must disable the throttle")
	}
}

// TestHealthDefaults pins the derived QueueHigh and the zero-value fills.
func TestHealthDefaults(t *testing.T) {
	c := HealthConfig{}.withDefaults(100)
	if c.QueueHigh != 50 {
		t.Errorf("QueueHigh = %d, want 50 (half the queue bound)", c.QueueHigh)
	}
	if c.DegradeWaitP99 != 25*time.Millisecond || c.ShedWaitP99 != 250*time.Millisecond {
		t.Errorf("wait thresholds = %v/%v", c.DegradeWaitP99, c.ShedWaitP99)
	}
	if c.EscalateAfter != 2 || c.RecoverAfter != 3 {
		t.Errorf("streaks = %d/%d, want 2/3", c.EscalateAfter, c.RecoverAfter)
	}
	if c := (HealthConfig{}).withDefaults(0); c.QueueHigh != 1 {
		t.Errorf("QueueHigh floor = %d, want 1", c.QueueHigh)
	}
}
