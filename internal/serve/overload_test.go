package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warper/internal/ce"
	"warper/internal/query"
	"warper/internal/resilience"
)

// drainReplicas checks out every free replica so the pool looks saturated;
// the caller checks them back in (or restoreReplicas does) to end the
// simulated overload.
func drainReplicas(t *testing.T, srv *Server) []*replica {
	t.Helper()
	var out []*replica
	for {
		r, ok := srv.pool.tryCheckout()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func restoreReplicas(srv *Server, rs []*replica) {
	for _, r := range rs {
		srv.pool.checkin(r)
	}
}

// TestSheddingState429 pins the top of the ladder: in shedding state with no
// replica free, /estimate answers 429 with Retry-After and charges
// estimate_shed_total{reason="shedding"}; once healthy again the same
// request serves normally.
func TestSheddingState429(t *testing.T) {
	srv, ts, _, _, gNew := newTestServerOpts(t, Options{Replicas: 2})
	p := gNew.Gen(rand.New(rand.NewSource(3)))

	srv.health.state.Store(int32(Shedding))
	held := drainReplicas(t, srv)
	r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shedding estimate = %d, want 429", r.StatusCode)
	}
	if ra := r.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	if body := metricsBody(t, ts.URL); !strings.Contains(body, `estimate_shed_total{reason="shedding"} 1`) {
		t.Error("estimate_shed_total{reason=\"shedding\"} not incremented")
	}

	// A free replica is still admitted in shedding state (try-only).
	restoreReplicas(srv, held)
	var est estimateResponse
	if r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &est); r.StatusCode != http.StatusOK {
		t.Fatalf("shedding estimate with free replica = %d, want 200", r.StatusCode)
	}
	if est.Degraded {
		t.Error("replica-served answer marked degraded")
	}
	srv.health.state.Store(int32(Healthy))
}

// TestDegradedStateFallsBack pins the middle rung: degraded state with no
// replica free serves from the histogram ladder, marked "degraded": true with
// the reason, and healthy responses stay byte-identical to the legacy wire
// format (no degraded/reason keys at all).
func TestDegradedStateFallsBack(t *testing.T) {
	srv, ts, _, _, gNew := newTestServerOpts(t, Options{Replicas: 2})
	p := gNew.Gen(rand.New(rand.NewSource(5)))

	srv.health.state.Store(int32(Degraded))
	held := drainReplicas(t, srv)
	var est estimateResponse
	r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &est)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("degraded estimate = %d, want 200", r.StatusCode)
	}
	if !est.Degraded || est.Reason != "degraded" {
		t.Errorf("degraded answer = {degraded:%v reason:%q}, want {true \"degraded\"}", est.Degraded, est.Reason)
	}
	if est.Cardinality <= 0 {
		t.Errorf("fallback cardinality = %v, want > 0", est.Cardinality)
	}

	// With the annotation breaker open the reason is attributed to it.
	srv.health.breakerOpen.Store(true)
	est = estimateResponse{}
	postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &est)
	if est.Reason != "breaker" {
		t.Errorf("breaker-open fallback reason = %q, want \"breaker\"", est.Reason)
	}
	srv.health.breakerOpen.Store(false)

	body := metricsBody(t, ts.URL)
	for _, m := range []string{
		`estimate_fallback_total{reason="degraded"} 1`,
		`estimate_fallback_total{reason="breaker"} 1`,
	} {
		if !strings.Contains(body, m) {
			t.Errorf("metric %s missing from /metrics", m)
		}
	}

	// Back to healthy with replicas free: the response body must not even
	// mention degradation (wire-format byte identity with the legacy path).
	restoreReplicas(srv, held)
	srv.health.state.Store(int32(Healthy))
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(predicateJSON{Lows: p.Lows, Highs: p.Highs}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/estimate", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("degraded")) || bytes.Contains(raw, []byte("reason")) {
		t.Errorf("healthy response leaks degradation fields: %s", raw)
	}
}

// TestDeadlineBudgetFallsBackToLadder pins the healthy-path budget: with
// every replica busy, a request carrying a deadline (server default here)
// waits at most the budget and then answers from the ladder with reason
// "timeout".
func TestDeadlineBudgetFallsBackToLadder(t *testing.T) {
	srv, ts, _, _, gNew := newTestServerOpts(t, Options{Replicas: 2, EstimateTimeout: 30 * time.Millisecond})
	p := gNew.Gen(rand.New(rand.NewSource(7)))

	held := drainReplicas(t, srv)
	defer restoreReplicas(srv, held)
	start := time.Now()
	var est estimateResponse
	r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, &est)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("budget-missed estimate = %d, want 200 (fallback)", r.StatusCode)
	}
	if !est.Degraded || est.Reason != "timeout" {
		t.Errorf("budget miss = {degraded:%v reason:%q}, want {true \"timeout\"}", est.Degraded, est.Reason)
	}
	if wait := time.Since(start); wait > 5*time.Second {
		t.Errorf("budget-missed request took %v, want ~30ms", wait)
	}
	if body := metricsBody(t, ts.URL); !strings.Contains(body, `estimate_fallback_total{reason="timeout"} 1`) {
		t.Error("estimate_fallback_total{reason=\"timeout\"} not incremented")
	}
}

// TestDeadlineHeaderOverride pins the per-request override: a server with no
// default budget honors X-Warper-Deadline-Ms, so a drained pool answers from
// the ladder instead of blocking forever.
func TestDeadlineHeaderOverride(t *testing.T) {
	srv, ts, _, _, gNew := newTestServerOpts(t, Options{Replicas: 2})
	p := gNew.Gen(rand.New(rand.NewSource(9)))

	held := drainReplicas(t, srv)
	defer restoreReplicas(srv, held)
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(predicateJSON{Lows: p.Lows, Highs: p.Highs}); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/estimate", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Warper-Deadline-Ms", "25")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("override estimate = %d, want 200", resp.StatusCode)
	}
	var est estimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	if !est.Degraded || est.Reason != "timeout" {
		t.Errorf("override miss = {degraded:%v reason:%q}, want {true \"timeout\"}", est.Degraded, est.Reason)
	}
}

// TestQueueBoundSheds pins the bounded admission queue: with the only
// replica busy and a one-slot queue, the second queued arrival is shed with
// reason "queue_full" while the first still gets its replica.
func TestQueueBoundSheds(t *testing.T) {
	srv, _, sch, _, gNew := newTestServerOpts(t, Options{
		Replicas:        1,
		EstimateTimeout: time.Second,
		ShedQueue:       1,
	})
	p := gNew.Gen(rand.New(rand.NewSource(11))).Normalize(sch)

	held := drainReplicas(t, srv)
	type res struct {
		card float64
		out  EstimateOutcome
	}
	first := make(chan res, 1)
	go func() {
		c, o := srv.EstimateBudget(p, time.Now().Add(time.Second))
		first <- res{c, o}
	}()
	// Wait for the first request to park in the queue.
	for i := 0; srv.QueueDepth() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if srv.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d, want 1 parked waiter", srv.QueueDepth())
	}

	_, out := srv.EstimateBudget(p, time.Now().Add(time.Second))
	if !out.Shed || out.Reason != "queue_full" {
		t.Errorf("over-bound arrival = %+v, want shed queue_full", out)
	}

	restoreReplicas(srv, held)
	got := <-first
	if got.out != (EstimateOutcome{}) {
		t.Errorf("queued request outcome = %+v, want full-model answer", got.out)
	}
	if want := srv.Estimator().Estimate(p); got.card != want {
		t.Errorf("queued request answer = %v, want %v", got.card, want)
	}
}

// TestNoFallbackShedsOnBudgetMiss pins -fallback=false: a budget miss sheds
// with reason "deadline" instead of serving a histogram answer.
func TestNoFallbackShedsOnBudgetMiss(t *testing.T) {
	srv, ts, _, _, gNew := newTestServerOpts(t, Options{
		Replicas:        2,
		EstimateTimeout: 20 * time.Millisecond,
		NoFallback:      true,
	})
	p := gNew.Gen(rand.New(rand.NewSource(13)))

	held := drainReplicas(t, srv)
	defer restoreReplicas(srv, held)
	r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("no-fallback budget miss = %d, want 429", r.StatusCode)
	}
	if body := metricsBody(t, ts.URL); !strings.Contains(body, `estimate_shed_total{reason="deadline"} 1`) {
		t.Error("estimate_shed_total{reason=\"deadline\"} not incremented")
	}
}

// TestEstimateAndFeedbackBodyCaps pins the request-body satellite: /estimate
// and /feedback reject oversized bodies with 413, like /period always has.
func TestEstimateAndFeedbackBodyCaps(t *testing.T) {
	_, ts, _, _, _ := newTestServer(t)
	huge := `{"pad":"` + strings.Repeat("a", maxPeriodBody) + `"}`
	for _, path := range []string{"/estimate", "/feedback"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized %s = %d, want 413", path, resp.StatusCode)
		}
	}
}

// TestEstimatesSurviveReplicaPanicExhaustion is the checkin-on-panic
// regression: more panicking requests than replicas must not leak the pool
// dry — every replica's deferred checkin returns it even when the model
// panics, so post-panic estimates all succeed.
func TestEstimatesSurviveReplicaPanicExhaustion(t *testing.T) {
	armed := &atomic.Bool{}
	srv, ts, _, gNew := robustnessEnv(t, func(lm *ce.LM) ce.Estimator {
		return &panicModel{LM: lm, armed: armed}
	})
	rng := rand.New(rand.NewSource(17))
	p := gNew.Gen(rng)
	n := cap(srv.pool.free)

	armed.Store(true)
	for i := 0; i < 2*n+2; i++ {
		r := postJSON(t, ts.URL+"/estimate", predicateJSON{Lows: p.Lows, Highs: p.Highs}, nil)
		if r.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking estimate %d = %d, want 500", i, r.StatusCode)
		}
	}
	armed.Store(false)

	// If any panic leaked its replica, one of these n+2 serial estimates
	// would block forever on an empty free list.
	client := &http.Client{Timeout: 15 * time.Second}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(predicateJSON{Lows: p.Lows, Highs: p.Highs}); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()
	for i := 0; i < n+2; i++ {
		resp, err := client.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post-panic estimate %d: %v (replica leaked on panic?)", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-panic estimate %d = %d, want 200", i, resp.StatusCode)
		}
	}
}

// TestOverloadChaosSoak is the env-gated overload soak behind `make chaos`:
// replica starvation, a slow mid-traffic model swap and an open annotation
// breaker, all at once, under -race. Invariants: the admission queue stays
// bounded, every health transition in the journal is a single monotone step,
// and once the chaos stops the server walks back to healthy and serves
// byte-identical full-model answers.
func TestOverloadChaosSoak(t *testing.T) {
	if os.Getenv("WARPER_CHAOS") == "" {
		t.Skip("overload soak is opt-in: set WARPER_CHAOS=1 (or run `make chaos`)")
	}
	const (
		budget   = 10 * time.Millisecond
		maxQueue = 8
		workers  = 12
	)
	faults := resilience.NewServeFaults(resilience.ServeFaultPlan{
		StarveEvery: 2,
		StarveHold:  2 * time.Millisecond,
		SwapDelay:   100 * time.Millisecond,
	})
	// Wait thresholds sit far above anything this run can record: under
	// the race detector a timed-out wait's measured duration includes
	// scheduler delays of hundreds of milliseconds, and those samples live
	// in the 1-minute metrics window long after the chaos ends — they
	// would pin the machine degraded through the whole recovery deadline.
	// Queue depth (QueueHigh = maxQueue/2 = 4 < workers) and the breaker
	// signal drive the ladder here.
	srv, ts, sch, ann, gNew := newTestServerOpts(t, Options{
		Replicas:        2,
		EstimateTimeout: budget,
		ShedQueue:       maxQueue,
		ServeFaults:     faults,
		Health: HealthConfig{
			EvalInterval:   5 * time.Millisecond,
			DegradeWaitP99: 30 * time.Second,
			ShedWaitP99:    time.Minute,
		},
	})
	rng := rand.New(rand.NewSource(19))
	probes := make([]query.Predicate, 8)
	for i := range probes {
		probes[i] = gNew.Gen(rng).Normalize(sch)
	}

	// Chaos phase: open-ended load against starved replicas, the breaker
	// signal forced open, and one adaptation period (with its delayed swap)
	// overlapping the traffic.
	srv.health.breakerOpen.Store(true)
	var ok, degraded, shed, overBound atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, o := srv.EstimateBudget(probes[i%len(probes)], time.Now().Add(budget))
				switch {
				case o.Shed:
					shed.Add(1)
				case o.Degraded:
					degraded.Add(1)
				default:
					ok.Add(1)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				srv.Tick(now)
				// Transient overshoot of `workers` is the reservation
				// window (Add before the bound check rolls back).
				if d := srv.QueueDepth(); d > maxQueue+workers {
					overBound.Add(1)
				}
			}
		}
	}()

	feedDrifted(t, ts, ann, gNew, rng, 25)
	postJSON(t, ts.URL+"/period", struct{}{}, nil) // may fail; overlap is the point
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if overBound.Load() > 0 {
		t.Errorf("admission queue exceeded its bound %d times", overBound.Load())
	}
	if ok.Load()+degraded.Load()+shed.Load() == 0 {
		t.Fatal("soak issued no requests")
	}
	t.Logf("soak outcomes: ok %d, degraded %d, shed %d", ok.Load(), degraded.Load(), shed.Load())

	// Recovery: chaos off, breaker closed, tick until healthy.
	faults.Disable()
	srv.health.breakerOpen.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for srv.HealthState() != Healthy && time.Now().Before(deadline) {
		srv.Estimate(probes[0])
		srv.Tick(time.Now())
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.HealthState(); got != Healthy {
		var waitP99 float64
		for _, st := range srv.rec.windows.View(time.Now()).Stats {
			if st.Name == mCheckoutWait {
				waitP99 = st.P99
			}
		}
		t.Fatalf("server did not recover to healthy, state %v (wait_p99 %.3fs, queue %d, breaker %v, swap_start %d)",
			got, waitP99, srv.QueueDepth(), srv.health.breakerOpen.Load(), srv.health.swapStart.Load())
	}

	// Every journaled health transition is one monotone step.
	var transitions int
	for _, ev := range srv.rec.journal.Snapshot() {
		if ev.Kind != "health" {
			continue
		}
		transitions++
		from, to := healthLevel(t, ev.Fields["from"]), healthLevel(t, ev.Fields["to"])
		if d := to - from; d != 1 && d != -1 {
			t.Errorf("health transition %v -> %v is not a single step", ev.Fields["from"], ev.Fields["to"])
		}
	}
	if transitions == 0 {
		t.Error("soak provoked no health transitions")
	}

	// Byte-identity once healthy: two raw reads agree with each other, with
	// the in-process model, and carry no degradation fields.
	body, err := json.Marshal(predicateJSON{Lows: probes[0].Lows, Highs: probes[0].Highs})
	if err != nil {
		t.Fatal(err)
	}
	read := func() []byte {
		resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-recovery estimate = %d", resp.StatusCode)
		}
		return raw
	}
	a, b := read(), read()
	if !bytes.Equal(a, b) {
		t.Errorf("post-recovery answers differ: %s vs %s", a, b)
	}
	if bytes.Contains(a, []byte("degraded")) {
		t.Errorf("post-recovery answer still degraded: %s", a)
	}
	var est estimateResponse
	if err := json.Unmarshal(a, &est); err != nil {
		t.Fatal(err)
	}
	if want := srv.Estimator().Estimate(probes[0]); est.Cardinality != want {
		t.Errorf("post-recovery answer %v, want full-model %v", est.Cardinality, want)
	}
}
