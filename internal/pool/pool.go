// Package pool implements Warper's query pool (Figure 4): an in-memory
// collection of tuples (q, gt, z, l, l', s') where q is a predicate, gt its
// (possibly missing) ground-truth cardinality, z the encoder embedding, l the
// true source of the predicate (train / new / gen), l' the discriminator's
// predicted source and s' its confidence that the predicate resembles the
// new workload.
package pool

import (
	"warper/internal/query"
)

// Source labels where a predicate came from.
type Source int

// Predicate sources (the paper's l values).
const (
	SrcTrain Source = iota // from the original training workload 𝕀train
	SrcNew                 // newly arrived from the drifted workload
	SrcGen                 // synthesized by the generator 𝔾
)

// String returns the paper's label for the source.
func (s Source) String() string {
	switch s {
	case SrcTrain:
		return "train"
	case SrcNew:
		return "new"
	case SrcGen:
		return "gen"
	default:
		return "unknown"
	}
}

// NoGT marks a missing ground-truth label (the paper stores gt=-1).
const NoGT = -1

// Entry is one pool record.
type Entry struct {
	Pred query.Predicate
	GT   float64 // NoGT when unknown
	Z    []float64
	// Source is the true origin l.
	Source Source
	// PredSource is the discriminator's predicted origin l'.
	PredSource Source
	// Conf is the discriminator's confidence s' that the predicate
	// resembles the new workload.
	Conf float64
	// Stale marks entries whose GT predates a data drift and must be
	// re-annotated before use (c1 handling).
	Stale bool
}

// HasGT reports whether the entry carries a usable, fresh label.
func (e *Entry) HasGT() bool { return e.GT >= 0 && !e.Stale }

// Pool is the query pool.
type Pool struct {
	Entries []*Entry
}

// New returns an empty pool.
func New() *Pool { return &Pool{} }

// InitFromTraining seeds the pool from the original training workload
// 𝕀train, as §3.2 prescribes (l = train, empty z/l'/s').
func InitFromTraining(train []query.Labeled) *Pool {
	p := New()
	for _, lq := range train {
		p.Entries = append(p.Entries, &Entry{Pred: lq.Pred, GT: lq.Card, Source: SrcTrain})
	}
	return p
}

// Add appends an entry and returns it.
func (p *Pool) Add(e *Entry) *Entry {
	p.Entries = append(p.Entries, e)
	return e
}

// AddNew appends a newly arrived query, with or without a label.
func (p *Pool) AddNew(pred query.Predicate, gt float64, hasGT bool) *Entry {
	e := &Entry{Pred: pred, GT: NoGT, Source: SrcNew}
	if hasGT {
		e.GT = gt
	}
	return p.Add(e)
}

// AddGenerated appends a synthesized query (gt unknown).
func (p *Pool) AddGenerated(pred query.Predicate) *Entry {
	return p.Add(&Entry{Pred: pred, GT: NoGT, Source: SrcGen})
}

// Len returns the number of entries.
func (p *Pool) Len() int { return len(p.Entries) }

// BySource returns the entries with the given true source.
func (p *Pool) BySource(s Source) []*Entry {
	var out []*Entry
	for _, e := range p.Entries {
		if e.Source == s {
			out = append(out, e)
		}
	}
	return out
}

// Labeled returns all entries with fresh ground truth as training examples.
func (p *Pool) Labeled() []query.Labeled {
	var out []query.Labeled
	for _, e := range p.Entries {
		if e.HasGT() {
			out = append(out, query.Labeled{Pred: e.Pred, Card: e.GT})
		}
	}
	return out
}

// LabeledBySource returns labeled examples restricted to the given sources.
func (p *Pool) LabeledBySource(sources ...Source) []query.Labeled {
	want := map[Source]bool{}
	for _, s := range sources {
		want[s] = true
	}
	var out []query.Labeled
	for _, e := range p.Entries {
		if e.HasGT() && want[e.Source] {
			out = append(out, query.Labeled{Pred: e.Pred, Card: e.GT})
		}
	}
	return out
}

// Unlabeled returns entries lacking fresh ground truth, restricted to the
// given sources (all sources if none specified).
func (p *Pool) Unlabeled(sources ...Source) []*Entry {
	want := map[Source]bool{}
	for _, s := range sources {
		want[s] = true
	}
	var out []*Entry
	for _, e := range p.Entries {
		if e.HasGT() {
			continue
		}
		if len(want) == 0 || want[e.Source] {
			out = append(out, e)
		}
	}
	return out
}

// MarkAllStale flags every labeled entry's GT as outdated. Called when a
// data drift invalidates cardinality labels (§3.1: "in data drifts, the
// cardinality labels for all queries ... may be outdated").
func (p *Pool) MarkAllStale() {
	for _, e := range p.Entries {
		if e.GT >= 0 {
			e.Stale = true
		}
	}
}

// CountLabeled returns how many entries carry fresh ground truth.
func (p *Pool) CountLabeled() int {
	n := 0
	for _, e := range p.Entries {
		if e.HasGT() {
			n++
		}
	}
	return n
}

// TrimGenerated drops generated entries beyond the keep count, bounding
// pool growth across many adaptation periods.
//
// Eviction is label-aware: annotated generated entries carry ground truth
// the cost ledger paid real annotation budget for, so unlabeled and stale
// generated entries (oldest first) are evicted before any fresh-labeled one.
// Only when the unlabeled/stale supply is exhausted are labeled generated
// entries dropped, again oldest first.
func (p *Pool) TrimGenerated(keep int) {
	nGen := 0
	for _, e := range p.Entries {
		if e.Source == SrcGen {
			nGen++
		}
	}
	need := nGen - keep
	if need <= 0 {
		return
	}
	drop := make(map[*Entry]bool, need)
	// First pass: unlabeled or stale generated entries, oldest first.
	for _, e := range p.Entries {
		if need == 0 {
			break
		}
		if e.Source == SrcGen && !e.HasGT() {
			drop[e] = true
			need--
		}
	}
	// Second pass: labeled generated entries, oldest first, only if needed.
	for _, e := range p.Entries {
		if need == 0 {
			break
		}
		if e.Source == SrcGen && !drop[e] {
			drop[e] = true
			need--
		}
	}
	kept := p.Entries[:0]
	for _, e := range p.Entries {
		if !drop[e] {
			kept = append(kept, e)
		}
	}
	p.Entries = kept
}
