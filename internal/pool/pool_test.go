package pool

import (
	"math/rand"
	"testing"
	"testing/quick"

	"warper/internal/query"
)

func pred(v float64) query.Predicate {
	return query.Predicate{Lows: []float64{v}, Highs: []float64{v + 1}}
}

func TestInitFromTraining(t *testing.T) {
	train := []query.Labeled{{Pred: pred(0), Card: 10}, {Pred: pred(1), Card: 20}}
	p := InitFromTraining(train)
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	for _, e := range p.Entries {
		if e.Source != SrcTrain || !e.HasGT() {
			t.Errorf("entry = %+v", e)
		}
	}
}

func TestAddVariants(t *testing.T) {
	p := New()
	p.AddNew(pred(0), 5, true)
	p.AddNew(pred(1), 0, false)
	p.AddGenerated(pred(2))
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if got := len(p.BySource(SrcNew)); got != 2 {
		t.Errorf("new entries = %d", got)
	}
	if got := len(p.BySource(SrcGen)); got != 1 {
		t.Errorf("gen entries = %d", got)
	}
	if p.CountLabeled() != 1 {
		t.Errorf("labeled = %d", p.CountLabeled())
	}
	unl := p.Unlabeled()
	if len(unl) != 2 {
		t.Errorf("unlabeled = %d", len(unl))
	}
	if got := len(p.Unlabeled(SrcGen)); got != 1 {
		t.Errorf("unlabeled gen = %d", got)
	}
}

func TestLabeledBySource(t *testing.T) {
	p := New()
	p.AddNew(pred(0), 5, true)
	p.Add(&Entry{Pred: pred(1), GT: 7, Source: SrcTrain})
	p.Add(&Entry{Pred: pred(2), GT: 9, Source: SrcGen})
	got := p.LabeledBySource(SrcNew, SrcGen)
	if len(got) != 2 {
		t.Errorf("LabeledBySource = %d entries", len(got))
	}
}

func TestMarkAllStale(t *testing.T) {
	p := InitFromTraining([]query.Labeled{{Pred: pred(0), Card: 10}})
	p.AddNew(pred(1), 0, false)
	p.MarkAllStale()
	if p.CountLabeled() != 0 {
		t.Error("stale entries still counted as labeled")
	}
	// Unlabeled (no-GT) entries should not be marked stale (GT=-1 stays).
	if p.Entries[1].Stale {
		t.Error("entry without GT marked stale")
	}
	// Re-annotating clears usability.
	p.Entries[0].GT = 12
	p.Entries[0].Stale = false
	if p.CountLabeled() != 1 {
		t.Error("re-annotated entry not counted")
	}
}

func TestTrimGenerated(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.AddGenerated(pred(float64(i)))
	}
	p.AddNew(pred(100), 1, true)
	p.TrimGenerated(3)
	if got := len(p.BySource(SrcGen)); got != 3 {
		t.Errorf("gen after trim = %d, want 3", got)
	}
	if got := len(p.BySource(SrcNew)); got != 1 {
		t.Error("trim dropped non-generated entries")
	}
	// Most recent generated entries survive.
	gen := p.BySource(SrcGen)
	if gen[0].Pred.Lows[0] != 7 {
		t.Errorf("kept wrong entries: %v", gen[0].Pred.Lows[0])
	}
}

// TestTrimGeneratedKeepsLabeled is the regression test for label-blind
// eviction: trimming used to drop the oldest generated entries regardless
// of labels, throwing away ground truth the annotation budget paid for
// while keeping unlabeled placeholders.
func TestTrimGeneratedKeepsLabeled(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.AddGenerated(pred(float64(i)))
	}
	// Label three entries and mark one more labeled-but-stale.
	for _, i := range []int{2, 5, 8} {
		p.Entries[i].GT = float64(100 + i)
	}
	p.Entries[3].GT = 50
	p.Entries[3].Stale = true

	p.TrimGenerated(4)
	gen := p.BySource(SrcGen)
	if len(gen) != 4 {
		t.Fatalf("gen after trim = %d, want 4", len(gen))
	}
	// All fresh-labeled entries survive; the rest of the budget keeps the
	// newest unlabeled one. Stale labels rank with unlabeled and go first.
	var lows []float64
	for _, e := range gen {
		lows = append(lows, e.Pred.Lows[0])
	}
	want := []float64{2, 5, 8, 9}
	for i, w := range want {
		if lows[i] != w {
			t.Fatalf("kept entries %v, want lows %v", lows, want)
		}
	}

	// Once the unlabeled supply is exhausted, labeled entries are evicted
	// oldest first.
	p.TrimGenerated(2)
	gen = p.BySource(SrcGen)
	if len(gen) != 2 || gen[0].Pred.Lows[0] != 5 || gen[1].Pred.Lows[0] != 8 {
		t.Errorf("second trim kept %v entries, want labeled 5 and 8", len(gen))
	}
}

func TestTrimGeneratedNoopWhenUnder(t *testing.T) {
	p := New()
	p.AddGenerated(pred(0))
	p.TrimGenerated(5)
	if p.Len() != 1 {
		t.Error("trim removed entries below the cap")
	}
}

// Property: CountLabeled == len(Labeled()) for any mix of operations.
func TestCountLabeledConsistent(t *testing.T) {
	f := func(ops []uint8) bool {
		p := New()
		for i, op := range ops {
			switch op % 4 {
			case 0:
				p.AddNew(pred(float64(i)), float64(i), true)
			case 1:
				p.AddNew(pred(float64(i)), 0, false)
			case 2:
				p.AddGenerated(pred(float64(i)))
			case 3:
				p.MarkAllStale()
			}
		}
		return p.CountLabeled() == len(p.Labeled())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
