package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQErrorIdentities(t *testing.T) {
	if got := QError(100, 100); got != 1 {
		t.Errorf("QError(100,100) = %v, want 1", got)
	}
	if got := QError(200, 100); got != 2 {
		t.Errorf("QError(200,100) = %v, want 2", got)
	}
	if got := QError(100, 200); got != 2 {
		t.Errorf("QError(100,200) = %v, want 2 (symmetric)", got)
	}
}

func TestQErrorThetaFloor(t *testing.T) {
	// Both values below θ=10 → clamped to θ → perfect.
	if got := QError(0, 5); got != 1 {
		t.Errorf("QError(0,5) = %v, want 1 (both under θ)", got)
	}
	if got := QError(0, 100); got != 10 {
		t.Errorf("QError(0,100) = %v, want 10", got)
	}
}

// Property: q-error is always ≥ 1 and symmetric.
func TestQErrorProperties(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		q1, q2 := QError(a, b), QError(b, a)
		return q1 >= 1 && q1 == q2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestGMQ(t *testing.T) {
	// q-errors 2 and 8 → geometric mean 4.
	ests := []float64{200, 800}
	acts := []float64{100, 100}
	if got := GMQ(ests, acts); math.Abs(got-4) > 1e-9 {
		t.Errorf("GMQ = %v, want 4", got)
	}
	if got := GMQ(nil, nil); got != 0 {
		t.Errorf("GMQ(empty) = %v", got)
	}
}

// TestGMQMismatchDoesNotPanic is a regression test: a malformed feedback
// batch (mismatched estimate/actual lengths) must degrade to the neutral
// GMQ 1, never crash the server.
func TestGMQMismatchDoesNotPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("GMQ panicked on length mismatch: %v", r)
		}
	}()
	if got := GMQ([]float64{1}, []float64{1, 2}); got != 1 {
		t.Errorf("GMQ(mismatch) = %v, want neutral 1", got)
	}
	if got := GMQ(nil, []float64{3}); got != 1 {
		t.Errorf("GMQ(nil, one) = %v, want neutral 1", got)
	}
}

func TestCurveQueriesToReach(t *testing.T) {
	c := &Curve{}
	c.Append(0, 10)
	c.Append(100, 6)
	c.Append(200, 2)
	if got := c.QueriesToReach(10); got != 0 {
		t.Errorf("reach 10 at %v, want 0", got)
	}
	if got := c.QueriesToReach(6); got != 100 {
		t.Errorf("reach 6 at %v, want 100", got)
	}
	// Interpolation: target 8 is halfway between 10 and 6 → 50 queries.
	if got := c.QueriesToReach(8); math.Abs(got-50) > 1e-9 {
		t.Errorf("reach 8 at %v, want 50", got)
	}
	if got := c.QueriesToReach(1); !math.IsInf(got, 1) {
		t.Errorf("reach 1 = %v, want +Inf", got)
	}
}

func TestCurveInitialFinal(t *testing.T) {
	c := &Curve{}
	if !math.IsInf(c.Initial(), 1) || !math.IsInf(c.Final(), 1) {
		t.Error("empty curve should report +Inf")
	}
	c.Append(0, 9)
	c.Append(10, 3)
	if c.Initial() != 9 || c.Final() != 3 || c.Len() != 2 {
		t.Errorf("Initial=%v Final=%v Len=%d", c.Initial(), c.Final(), c.Len())
	}
}

func TestSpeedupPaperExample(t *testing.T) {
	// The §4.1 worked example: α=3, β=2, FT needs 100 queries to reach 2.5,
	// method A needs 50 → Δ.5 = 2.
	ft := &Curve{}
	ft.Append(0, 3)
	ft.Append(100, 2.5)
	ft.Append(300, 2)
	a := &Curve{}
	a.Append(0, 3)
	a.Append(50, 2.5)
	a.Append(150, 2)
	if got := Speedup(ft, a, 0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("Δ.5 = %v, want 2", got)
	}
	if got := Speedup(ft, a, 1.0); math.Abs(got-2) > 1e-9 {
		t.Errorf("Δ1 = %v, want 2", got)
	}
}

func TestSpeedupIdenticalCurvesIsOne(t *testing.T) {
	ft := &Curve{}
	ft.Append(0, 5)
	ft.Append(10, 4)
	ft.Append(20, 3)
	if got := Speedup(ft, ft, 0.8); math.Abs(got-1) > 1e-9 {
		t.Errorf("self speedup = %v, want 1", got)
	}
}

func TestSpeedupMethodNeverConverges(t *testing.T) {
	ft := &Curve{}
	ft.Append(0, 5)
	ft.Append(10, 1)
	a := &Curve{}
	a.Append(0, 5)
	a.Append(10, 5)
	if got := Speedup(ft, a, 1.0); got != 0 {
		t.Errorf("speedup of non-converging method = %v, want 0", got)
	}
}

func TestSpeedupTriple(t *testing.T) {
	ft := &Curve{}
	ft.Append(0, 4)
	ft.Append(100, 2)
	a := &Curve{}
	a.Append(0, 4)
	a.Append(25, 2)
	d5, d8, d1 := SpeedupTriple(ft, a)
	if d5 < 1 || d8 < 1 || d1 < 1 {
		t.Errorf("speedups = %v %v %v, all should be >= 1", d5, d8, d1)
	}
	if math.Abs(d1-4) > 1e-9 {
		t.Errorf("Δ1 = %v, want 4", d1)
	}
}

func TestDeltaM(t *testing.T) {
	if got := DeltaM(5, 2); got != 3 {
		t.Errorf("DeltaM = %v, want 3", got)
	}
	if got := DeltaM(2, 5); got != 0 {
		t.Errorf("DeltaM negative gap = %v, want 0", got)
	}
}

// Property: speedup against an everywhere-no-worse method is ≥ 1 when both
// curves are monotone decreasing from the same start.
func TestSpeedupDominanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ft := &Curve{}
		a := &Curve{}
		g := 10.0
		for i := 0; i <= 10; i++ {
			q := float64(i * 10)
			drop := rng.Float64()
			ft.Append(q, g)
			// Method A is always at least as low as FT.
			a.Append(q, g-rng.Float64()*0.2)
			g -= drop
			if g < 1 {
				g = 1
			}
		}
		for _, l := range []float64{0.5, 0.8, 1.0} {
			if Speedup(ft, a, l) < 1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
