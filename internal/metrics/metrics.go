// Package metrics implements the paper's evaluation metrics: the q-error
// with floor θ (§4.1), its geometric mean GMQ, the accuracy-gap drift metric
// δ_m, and the relative adaptation speedup Δ(λ) that Tables 7, 8 and 10
// report.
package metrics

import (
	"log/slog"
	"math"
	"sort"

	"warper/internal/mathx"
)

// Theta is the q-error floor; the paper uses θ=10 following Dutt et al.
const Theta = 10

// QError returns q_θ(est, actual) = max(max(e,θ)/max(a,θ), max(a,θ)/max(e,θ)).
// It is ≥ 1, symmetric in its arguments, and equals 1 for a perfect estimate.
func QError(est, actual float64) float64 {
	return QErrorTheta(est, actual, Theta)
}

// QErrorTheta is QError with an explicit floor θ.
func QErrorTheta(est, actual, theta float64) float64 {
	e := math.Max(est, theta)
	a := math.Max(actual, theta)
	return math.Max(e/a, a/e)
}

// GMQ returns the geometric mean q-error over paired estimates and actuals.
// It returns 0 for empty input. A length mismatch is a malformed batch (a
// bug or bad feedback payload upstream); it is logged and reported as the
// neutral GMQ 1 rather than panicking, so a malformed feedback batch can
// never crash a serving process.
func GMQ(ests, actuals []float64) float64 {
	if len(ests) != len(actuals) {
		slog.Warn("metrics: GMQ length mismatch, reporting neutral GMQ",
			"estimates", len(ests), "actuals", len(actuals))
		return 1
	}
	if len(ests) == 0 {
		return 0
	}
	qs := make([]float64, len(ests))
	for i := range ests {
		qs[i] = QError(ests[i], actuals[i])
	}
	return mathx.GeoMean(qs)
}

// Curve is an adaptation trajectory: GMQ measured after the model has
// consumed Queries[i] new-workload queries. Points must be in increasing
// query order.
type Curve struct {
	Queries []float64
	GMQ     []float64
}

// Append adds a point to the curve.
func (c *Curve) Append(nQueries, gmq float64) {
	c.Queries = append(c.Queries, nQueries)
	c.GMQ = append(c.GMQ, gmq)
}

// Len returns the number of points.
func (c *Curve) Len() int { return len(c.Queries) }

// Final returns the last GMQ value, or +Inf for an empty curve.
func (c *Curve) Final() float64 {
	if len(c.GMQ) == 0 {
		return math.Inf(1)
	}
	return c.GMQ[len(c.GMQ)-1]
}

// Initial returns the first GMQ value (the error right after the drift, α),
// or +Inf for an empty curve.
func (c *Curve) Initial() float64 {
	if len(c.GMQ) == 0 {
		return math.Inf(1)
	}
	return c.GMQ[0]
}

// QueriesToReach returns the smallest number of queries at which the curve's
// GMQ first drops to target or below, linearly interpolating between points.
// It returns +Inf if the curve never reaches the target.
func (c *Curve) QueriesToReach(target float64) float64 {
	for i := range c.GMQ {
		if c.GMQ[i] <= target {
			if i == 0 {
				return c.Queries[0]
			}
			// Interpolate between points i-1 and i.
			g0, g1 := c.GMQ[i-1], c.GMQ[i]
			q0, q1 := c.Queries[i-1], c.Queries[i]
			if g0 == g1 {
				return q1
			}
			frac := (g0 - target) / (g0 - g1)
			return q0 + frac*(q1-q0)
		}
	}
	return math.Inf(1)
}

// MedianSmooth returns a copy of the curve with a centered running-median
// filter of the given odd window applied to the GMQ values (endpoints keep
// shrunken windows). Experiment aggregation uses it to suppress transient
// single-point dips that would otherwise win λ-target crossings on noise.
func (c *Curve) MedianSmooth(window int) *Curve {
	if window < 3 || c.Len() < 3 {
		out := &Curve{}
		out.Queries = append(out.Queries, c.Queries...)
		out.GMQ = append(out.GMQ, c.GMQ...)
		return out
	}
	half := window / 2
	out := &Curve{}
	buf := make([]float64, 0, window)
	for i := range c.GMQ {
		if i == 0 {
			// The first point is α, the post-drift error before any
			// adaptation; it anchors the Δ targets and stays exact.
			out.Append(c.Queries[0], c.GMQ[0])
			continue
		}
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= c.Len() {
			hi = c.Len() - 1
		}
		buf = append(buf[:0], c.GMQ[lo:hi+1]...)
		sort.Float64s(buf)
		m := buf[len(buf)/2]
		if len(buf)%2 == 0 {
			m = (buf[len(buf)/2-1] + buf[len(buf)/2]) / 2
		}
		out.Append(c.Queries[i], m)
	}
	return out
}

// Speedup computes the paper's relative adaptation speedup
// Δ(FT,λ)/Δ(A,λ): how many times fewer new-workload queries method A needs
// than fine-tuning to close a λ-fraction of the accuracy gap. α is taken
// from the FT curve's initial GMQ (the post-drift error) and β from the FT
// curve's final GMQ (the converged error), matching §4.1's definition.
//
// When method A never reaches the target the speedup is reported as the
// ratio with Δ(A)=+Inf, i.e. 0; when FT itself never reaches it (possible
// for λ<1 with a non-monotone curve) the result is clamped to 1.
func Speedup(ft, a *Curve, lambda float64) float64 {
	alpha := ft.Initial()
	beta := ft.Final()
	if math.IsInf(alpha, 1) || math.IsInf(beta, 1) {
		return 1
	}
	// Target GMQ after closing a λ-fraction of the gap: α − λ(α−β). (The
	// paper writes β + λ(α−β) but its worked example and Δ1 ="full
	// improvement" semantics correspond to this orientation.)
	target := alpha - lambda*(alpha-beta)
	dFT := ft.QueriesToReach(target)
	dA := a.QueriesToReach(target)
	if math.IsInf(dFT, 1) {
		return 1
	}
	if math.IsInf(dA, 1) {
		return 0
	}
	if dA <= 0 {
		// Method A starts at or below the target; report the strongest
		// finite speedup observable from the data.
		dA = math.SmallestNonzeroFloat64
		if dFT <= 0 {
			return 1
		}
	}
	s := dFT / dA
	if math.IsInf(s, 1) {
		s = math.MaxFloat64
	}
	return s
}

// SpeedupTriple reports Δ.5, Δ.8 and Δ1, the three operating points used
// throughout the paper's tables.
func SpeedupTriple(ft, a *Curve) (d50, d80, d100 float64) {
	return Speedup(ft, a, 0.5), Speedup(ft, a, 0.8), Speedup(ft, a, 1.0)
}

// DeltaM is the blind drift metric δ_m from §4.1: the gap between the GMQ of
// the unmodified model on the new workload and the GMQ of a model trained
// exclusively on the new data/workload (the achievable error).
func DeltaM(unadaptedGMQ, oracleGMQ float64) float64 {
	d := unadaptedGMQ - oracleGMQ
	if d < 0 {
		return 0
	}
	return d
}
