package metrics

import "testing"

func TestMedianSmoothSuppressesSpike(t *testing.T) {
	c := &Curve{}
	for i, g := range []float64{5, 4, 3.8, 1.0 /* transient dip */, 3.6, 3.4, 3.2} {
		c.Append(float64(i*10), g)
	}
	s := c.MedianSmooth(3)
	if s.GMQ[3] == 1.0 {
		t.Error("transient dip survived smoothing")
	}
	if s.GMQ[3] < 3.0 {
		t.Errorf("dip insufficiently suppressed: %v", s.GMQ[3])
	}
}

func TestMedianSmoothPreservesAlphaAndLength(t *testing.T) {
	c := &Curve{}
	for i, g := range []float64{9, 7, 5, 3, 2} {
		c.Append(float64(i), g)
	}
	s := c.MedianSmooth(3)
	if s.Len() != c.Len() {
		t.Fatalf("length changed: %d vs %d", s.Len(), c.Len())
	}
	if s.Initial() != 9 {
		t.Errorf("α changed: %v", s.Initial())
	}
	// Original untouched.
	if c.GMQ[1] != 7 {
		t.Error("smoothing mutated the input")
	}
}

func TestMedianSmoothSmallInputsPassThrough(t *testing.T) {
	c := &Curve{}
	c.Append(0, 5)
	c.Append(1, 4)
	s := c.MedianSmooth(3)
	if s.GMQ[0] != 5 || s.GMQ[1] != 4 {
		t.Errorf("short curve altered: %v", s.GMQ)
	}
	if got := c.MedianSmooth(1); got.Len() != 2 {
		t.Error("window<3 should copy")
	}
}
