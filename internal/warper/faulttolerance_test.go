package warper

import (
	"context"
	"testing"
	"time"

	"warper/internal/ce"
	"warper/internal/resilience"
)

// TestPartialPeriodStillImprovesGMQ is the golden degradation test: with the
// exact source dropping ~30% of annotation calls — enough to force partial
// periods, not enough to hit the MinLabelFraction floor — adaptation on a
// drifted workload must still improve GMQ, because the labels that did
// arrive are exact.
func TestPartialPeriodStillImprovesGMQ(t *testing.T) {
	e := newAdapterEnv(t, adapterCfg(), 500)
	e.ad.SetSource(resilience.NewFaulty(e.ann, resilience.FaultPlan{ErrRate: 0.3, Seed: 77}))
	testSet := e.newQ[400:]
	before := ce.EvalGMQ(e.lm, testSet)

	sawPartial := false
	failed := 0
	for step := 0; step < 4; step++ {
		rep := periodOK(t, e.ad, arrivalsOf(e.newQ[step*40:(step+1)*40], true))
		sawPartial = sawPartial || rep.Partial
		failed += rep.AnnotateFailed
	}
	if !sawPartial {
		t.Error("no period went partial under a 30% annotation error rate")
	}
	if failed == 0 {
		t.Error("no annotation call failed under a 30% error rate")
	}
	if after := ce.EvalGMQ(e.lm, testSet); after >= before {
		t.Errorf("partial periods did not improve GMQ: before=%v after=%v", before, after)
	}
}

// TestFallbackRescuesBelowFloor pins the second rung of the degradation
// ladder: when exact annotation falls under MinLabelFraction, the sampled
// fallback fills in and the period completes with UsedFallback set instead
// of aborting.
func TestFallbackRescuesBelowFloor(t *testing.T) {
	cfg := adapterCfg()
	cfg.MinLabelFraction = 0.9
	e := newAdapterEnv(t, cfg, 500)
	// Half the exact calls fail: far below the 90% floor, so every
	// annotating period needs the fallback.
	e.ad.SetSource(resilience.NewFaulty(e.ann, resilience.FaultPlan{ErrRate: 0.5, Seed: 78}))

	sawFallback := false
	for step := 0; step < 3 && !sawFallback; step++ {
		rep := periodOK(t, e.ad, arrivalsOf(e.newQ[step*40:(step+1)*40], true))
		if rep.Annotated > 0 {
			sawFallback = rep.UsedFallback
			if sawFallback && !rep.Partial {
				t.Error("UsedFallback without Partial: fallback labels are partial by definition")
			}
		}
	}
	if !sawFallback {
		t.Error("sampled fallback never engaged under a 50% error rate with a 90% floor")
	}
}

// TestAnnotateDeadlineDegrades pins the per-period annotation budget: with
// injected latency far exceeding Config.AnnotateDeadline, exact annotation
// can label only a prefix of the batch before the deadline expires, and the
// fallback — which runs under the parent context, not the expired deadline —
// completes the period rather than letting it abort.
func TestAnnotateDeadlineDegrades(t *testing.T) {
	cfg := adapterCfg()
	cfg.AnnotateDeadline = 30 * time.Millisecond
	// c2 periods at this scale pick only a handful of queries, so pin the
	// floor high enough that the one or two labels landing before the
	// deadline cannot satisfy it on their own.
	cfg.MinLabelFraction = 0.9
	e := newAdapterEnv(t, cfg, 500)
	e.ad.SetSource(resilience.NewFaulty(e.ann, resilience.FaultPlan{Latency: 20 * time.Millisecond, Seed: 79}))

	sawFallback := false
	for step := 0; step < 3 && !sawFallback; step++ {
		rep := periodOK(t, e.ad, arrivalsOf(e.newQ[step*40:(step+1)*40], true))
		sawFallback = rep.UsedFallback
	}
	if !sawFallback {
		t.Error("deadline-starved annotation never degraded to the fallback")
	}
}

// TestCancelledPeriodAborts pins the abort rung: parent-context
// cancellation is the caller giving up, so the period returns the ctx error
// instead of degrading.
func TestCancelledPeriodAborts(t *testing.T) {
	e := newAdapterEnv(t, adapterCfg(), 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ad.PeriodCtx(ctx, arrivalsOf(e.newQ[:40], true)); err == nil {
		t.Fatal("PeriodCtx with a cancelled context returned nil error")
	}
}
