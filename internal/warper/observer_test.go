package warper

import (
	"testing"
	"time"
)

// recordingObserver captures every Observer callback for assertions.
type recordingObserver struct {
	stages []string
	durs   map[string][]time.Duration
	done   []PeriodStats
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{durs: map[string][]time.Duration{}}
}

func (r *recordingObserver) PeriodStage(stage string, d time.Duration) {
	r.stages = append(r.stages, stage)
	r.durs[stage] = append(r.durs[stage], d)
}

func (r *recordingObserver) PeriodDone(stats PeriodStats) { r.done = append(r.done, stats) }

// checkPeriod asserts that period number i (0-based) emitted every stage
// exactly once, in StageNames order.
func (r *recordingObserver) checkPeriod(t *testing.T, i int) {
	t.Helper()
	n := len(StageNames)
	if len(r.stages) < (i+1)*n {
		t.Fatalf("period %d: only %d stage events recorded", i, len(r.stages))
	}
	got := r.stages[i*n : (i+1)*n]
	for j, want := range StageNames {
		if got[j] != want {
			t.Errorf("period %d stage[%d] = %q, want %q", i, j, got[j], want)
		}
	}
}

func TestObserverFiresEveryStageOncePerPeriod(t *testing.T) {
	e := newAdapterEnv(t, adapterCfg(), 500)
	rec := newRecordingObserver()
	e.ad.Obs = rec

	// Period 1: drifted arrivals (c2 path — full pipeline runs).
	rep1 := periodOK(t, e.ad, arrivalsOf(e.newQ[:40], true))
	// Period 2: same-workload arrivals (quiet path — stages still fire).
	g := e.train[:60]
	rep2 := periodOK(t, e.ad, arrivalsOf(g, true))

	if len(rec.done) != 2 {
		t.Fatalf("PeriodDone fired %d times, want 2", len(rec.done))
	}
	if len(rec.stages) != 2*len(StageNames) {
		t.Fatalf("stage events = %d, want %d", len(rec.stages), 2*len(StageNames))
	}
	rec.checkPeriod(t, 0)
	rec.checkPeriod(t, 1)

	// Per-stage event counts: exactly one per period.
	for _, name := range StageNames {
		if got := len(rec.durs[name]); got != 2 {
			t.Errorf("stage %q fired %d times, want 2", name, got)
		}
	}

	// The summary mirrors the Report.
	s1 := rec.done[0]
	if s1.Mode != rep1.Detection.Mode || s1.Arrivals != 40 ||
		s1.Generated != rep1.Generated || s1.Annotated != rep1.Annotated ||
		s1.Picked != rep1.Picked || s1.Updated != rep1.Updated {
		t.Errorf("stats = %+v, report = %+v", s1, rep1)
	}
	if s1.PoolSize == 0 || s1.Labeled == 0 {
		t.Errorf("pool stats missing: %+v", s1)
	}
	if s1.Pi <= 0 || s1.Gamma <= 0 {
		t.Errorf("threshold stats missing: %+v", s1)
	}
	if s1.Busy != rep1.Busy || s1.Busy <= 0 {
		t.Errorf("busy = %v, report busy = %v", s1.Busy, rep1.Busy)
	}
	if rec.done[1].Mode != rep2.Detection.Mode {
		t.Errorf("period 2 mode = %v, want %v", rec.done[1].Mode, rep2.Detection.Mode)
	}

	// The detect stage always does real work; later stages are zero on the
	// quiet path but must still have been reported.
	if rec.durs[StageDetect][1] <= 0 {
		t.Error("quiet-period detect stage has no duration")
	}
	if rep2.Detection.Mode == ModeNone && rec.durs[StageUpdate][1] != 0 {
		t.Error("quiet period should report a zero update stage")
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	e := newAdapterEnv(t, adapterCfg(), 400)
	if e.ad.Obs != nil {
		t.Fatal("observer should default to nil")
	}
	// Must not panic with no observer attached.
	periodOK(t, e.ad, arrivalsOf(e.newQ[:20], true))
}
