package warper

import (
	"math/rand"
	"testing"

	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/pool"
	"warper/internal/query"
	"warper/internal/workload"
)

// adapterEnv builds a trained LM + Adapter over PRSA-like data.
type adapterEnv struct {
	*testEnv
	lm *ce.LM
	ad *Adapter
}

func newAdapterEnv(t *testing.T, cfg Config, nTrain int) *adapterEnv {
	t.Helper()
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	env := newTestEnv(t, nTrain, 600)
	lm := ce.NewLM(ce.LMMLP, env.sch, 31)
	if err := lm.Train(env.train); err != nil {
		t.Fatalf("Train: %v", err)
	}
	ad, err := New(cfg, lm, env.sch, env.ann, env.train)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &adapterEnv{testEnv: env, lm: lm, ad: ad}
}

func adapterCfg() Config {
	c := DefaultConfig()
	c.Hidden = 64
	c.Depth = 2
	c.NIters = 50
	c.Gamma = 150
	c.PickSize = 150
	c.Canaries = 5
	// The w1→w4 drift at this test scale sits near the default detection
	// threshold; pin it lower so drift-handling paths trigger reliably.
	c.JSThreshold = 0.02
	return c
}

func arrivalsOf(lqs []query.Labeled, withGT bool) []Arrival {
	out := make([]Arrival, len(lqs))
	for i, lq := range lqs {
		out[i] = Arrival{Pred: lq.Pred, GT: lq.Card, HasGT: withGT}
	}
	return out
}

func TestNoDriftMeansNoAction(t *testing.T) {
	e := newAdapterEnv(t, adapterCfg(), 500)
	// Arrivals from the SAME workload as training: no drift expected.
	rng := rand.New(rand.NewSource(51))
	g := workload.New("w1", e.tbl, e.sch, workload.Options{MaxConstrained: 2})
	same := annAllT(t, e.ann, workload.Generate(g, 160, rng))
	rep := periodOK(t, e.ad, arrivalsOf(same, true))
	if rep.Detection.Mode != ModeNone {
		t.Errorf("mode = %v, want none (δm=%.2f δjs=%.2f)", rep.Detection.Mode,
			rep.Detection.DeltaM, rep.Detection.DeltaJS)
	}
	if rep.Updated || rep.Generated > 0 || rep.Annotated > 0 {
		t.Errorf("no-drift period took action: %+v", rep)
	}
}

func TestC2WorkloadDriftDetectedAndMitigated(t *testing.T) {
	e := newAdapterEnv(t, adapterCfg(), 500)
	testSet := e.newQ[400:]
	before := ce.EvalGMQ(e.lm, testSet)

	// Few labeled arrivals from the drifted workload (< γ) → c2.
	var gmqAfter float64
	for step := 0; step < 4; step++ {
		batch := arrivalsOf(e.newQ[step*40:(step+1)*40], true)
		rep := periodOK(t, e.ad, batch)
		if step == 0 {
			if !rep.Detection.Mode.Has(C2) {
				t.Fatalf("mode = %v, want c2 (δm=%.2f δjs=%.2f nt=%d)", rep.Detection.Mode,
					rep.Detection.DeltaM, rep.Detection.DeltaJS, rep.Detection.NT)
			}
			if rep.Generated == 0 {
				t.Error("c2 period generated no synthetic queries")
			}
		}
		gmqAfter = ce.EvalGMQ(e.lm, testSet)
	}
	if gmqAfter >= before {
		t.Errorf("adaptation did not improve GMQ: before=%v after=%v", before, gmqAfter)
	}
}

func TestC3LabelStarvedDrift(t *testing.T) {
	e := newAdapterEnv(t, adapterCfg(), 500)
	// Plenty of arrivals (>= γ) but no labels → c3.
	batch := arrivalsOf(e.newQ[:200], false)
	rep := periodOK(t, e.ad, batch)
	if !rep.Detection.Mode.Has(C3) {
		t.Fatalf("mode = %v, want c3 (δjs=%.2f)", rep.Detection.Mode, rep.Detection.DeltaJS)
	}
	if rep.Annotated == 0 {
		t.Error("c3 period annotated nothing")
	}
	// Annotations must stay within the pick budget plus arrivals.
	if rep.Annotated > e.ad.Cfg.PickSize+len(batch) {
		t.Errorf("annotated %d, beyond any reasonable budget", rep.Annotated)
	}
}

func TestC4AdequateLabeledQueries(t *testing.T) {
	cfg := adapterCfg()
	cfg.Gamma = 50 // small γ so 200 labeled arrivals are "adequate"
	e := newAdapterEnv(t, cfg, 500)
	rep := periodOK(t, e.ad, arrivalsOf(e.newQ[:200], true))
	if !rep.Detection.Mode.Has(C4) {
		t.Fatalf("mode = %v, want c4", rep.Detection.Mode)
	}
	if rep.Generated != 0 {
		t.Error("c4 must not generate synthetic queries")
	}
	if rep.Annotated != 0 {
		t.Error("c4 must not spend annotation budget")
	}
	if !rep.Updated {
		t.Error("c4 must still update the model")
	}
}

func TestC1DataDrift(t *testing.T) {
	e := newAdapterEnv(t, adapterCfg(), 500)
	// Mutate the table: labels go stale; the workload stays the same.
	rng := rand.New(rand.NewSource(52))
	dataset.UpdateDrift(e.tbl, 0.6, 1.5, rng)

	g := workload.New("w1", e.tbl, e.sch, workload.Options{MaxConstrained: 2})
	sameWkld := workload.Generate(g, 100, rng)
	arr := make([]Arrival, len(sameWkld))
	for i, p := range sameWkld {
		arr[i] = Arrival{Pred: p} // no labels; detection leans on telemetry
	}
	rep := periodOK(t, e.ad, arr)
	if !rep.Detection.Mode.Has(C1) {
		t.Fatalf("mode = %v, want c1", rep.Detection.Mode)
	}
	if rep.Annotated == 0 {
		t.Error("c1 period re-annotated nothing")
	}
	// The pool's training entries must have been marked stale, then some
	// re-annotated.
	stale, fresh := 0, 0
	for _, pe := range e.ad.Pool.BySource(pool.SrcTrain) {
		if pe.Stale {
			stale++
		} else if pe.GT >= 0 {
			fresh++
		}
	}
	if fresh == 0 {
		t.Error("no training entries re-annotated after data drift")
	}
	if stale == 0 {
		t.Error("expected some entries to remain stale (budget-limited)")
	}
}

func TestEarlyStopRaisesPi(t *testing.T) {
	cfg := adapterCfg()
	cfg.GainEps = 1e9 // every gain counts as "too small"
	e := newAdapterEnv(t, cfg, 500)
	pi0 := e.ad.Pi()
	// The stall counter requires several small-gain adaptation periods
	// (quiet no-drift periods in between do not count) before raising π.
	raised := false
	for i := 0; i < 10 && !raised; i++ {
		periodOK(t, e.ad, arrivalsOf(e.newQ[i*60:(i+1)*60], true))
		raised = e.ad.Pi() > pi0
	}
	if !raised {
		t.Errorf("π never raised by early stop: %v", e.ad.Pi())
	}
}

func TestGammaTunedUpOnSlowC4(t *testing.T) {
	cfg := adapterCfg()
	cfg.Gamma = 40
	cfg.GainEps = 1e9
	e := newAdapterEnv(t, cfg, 500)
	g0 := e.ad.Gamma()
	periodOK(t, e.ad, arrivalsOf(e.newQ[:120], true))
	periodOK(t, e.ad, arrivalsOf(e.newQ[120:240], true))
	if e.ad.Gamma() <= g0 {
		t.Errorf("γ not tuned up: %v -> %v", g0, e.ad.Gamma())
	}
}

func TestLedgerAccumulatesCosts(t *testing.T) {
	e := newAdapterEnv(t, adapterCfg(), 400)
	if e.ad.Ledger.Get("pretrain") == 0 {
		t.Error("pretrain cost not charged")
	}
	// Feed periods until a drift is handled (detection can stay quiet on an
	// individual noisy period).
	for i := 0; i < 6 && e.ad.Ledger.Get("model") == 0; i++ {
		periodOK(t, e.ad, arrivalsOf(e.newQ[i*50:(i+1)*50], true))
	}
	if e.ad.Ledger.Get("model") == 0 {
		t.Error("model update cost not charged")
	}
}

func TestAnnotateBudgetHonored(t *testing.T) {
	cfg := adapterCfg()
	cfg.AnnotateBudget = 7
	e := newAdapterEnv(t, cfg, 400)
	rep := periodOK(t, e.ad, arrivalsOf(e.newQ[:150], false)) // c3: all need labels
	if rep.Annotated > 7 {
		t.Errorf("annotated %d, budget 7", rep.Annotated)
	}
}

func TestReportStringsAndModeBits(t *testing.T) {
	if (C1 | C2).String() != "c1|c2" {
		t.Errorf("mode string = %q", (C1 | C2).String())
	}
	if ModeNone.String() != "none" {
		t.Errorf("none string = %q", ModeNone.String())
	}
	if !C1.Has(C1) || C1.Has(C2) {
		t.Error("Has is wrong")
	}
}

// periodOK unwraps Adapter.Period on fixtures whose repairs cannot fail.
func periodOK(t *testing.T, ad *Adapter, arrivals []Arrival) Report {
	t.Helper()
	rep, err := ad.Period(arrivals)
	if err != nil {
		t.Fatalf("Period: %v", err)
	}
	return rep
}
