package warper

import (
	"context"
	"math/rand"
	"testing"

	"warper/internal/annotator"
	"warper/internal/dataset"
	"warper/internal/drift"
	"warper/internal/pool"
	"warper/internal/query"
	"warper/internal/workload"
)

// testEnv builds a PRSA-like table with train (w1) and new (w4) workloads.
type testEnv struct {
	tbl   *dataset.Table
	sch   *query.Schema
	ann   *annotator.Annotator
	train []query.Labeled
	newQ  []query.Labeled
	rng   *rand.Rand
}

func newTestEnv(t *testing.T, nTrain, nNew int) *testEnv {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	tbl := dataset.PRSA(3000, rng)
	sch := query.SchemaOf(tbl)
	ann := annotator.New(tbl)
	gTrain := workload.New("w1", tbl, sch, workload.Options{MaxConstrained: 2})
	gNew := workload.New("w4", tbl, sch, workload.Options{MaxConstrained: 2})
	return &testEnv{
		tbl: tbl, sch: sch, ann: ann,
		train: annAllT(t, ann, workload.Generate(gTrain, nTrain, rng)),
		newQ:  annAllT(t, ann, workload.Generate(gNew, nNew, rng)),
		rng:   rng,
	}
}

func (env *testEnv) seededPool(nNew int) *pool.Pool {
	p := pool.InitFromTraining(env.train)
	for i := 0; i < nNew && i < len(env.newQ); i++ {
		p.AddNew(env.newQ[i].Pred, env.newQ[i].Card, true)
	}
	return p
}

func smallCfg() Config {
	c := DefaultConfig()
	c.Hidden = 32
	c.Depth = 2
	c.EmbedDim = 8
	c.NIters = 40
	c.Gamma = 100
	c.PickSize = 100
	return c
}

func TestAutoEncoderLossDecreases(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	env := newTestEnv(t, 200, 0)
	p := env.seededPool(0)
	cfg := smallCfg()
	c := newComponents(cfg, env.sch, env.tbl.NumRows(), env.rng)
	first := c.UpdateAutoEncoder(p, 1)
	var last float64
	for i := 0; i < 15; i++ {
		last = c.UpdateAutoEncoder(p, 1)
	}
	if last >= first {
		t.Errorf("AE loss did not decrease: first=%v last=%v", first, last)
	}
}

func TestEmbeddingsHaveConfiguredDim(t *testing.T) {
	env := newTestEnv(t, 50, 10)
	p := env.seededPool(10)
	cfg := smallCfg()
	c := newComponents(cfg, env.sch, env.tbl.NumRows(), env.rng)
	c.EmbedAll(p)
	for _, e := range p.Entries {
		if len(e.Z) != cfg.EmbedDim {
			t.Fatalf("embedding dim = %d, want %d", len(e.Z), cfg.EmbedDim)
		}
	}
}

func TestGeneratedPredicatesAreValid(t *testing.T) {
	env := newTestEnv(t, 150, 50)
	p := env.seededPool(50)
	cfg := smallCfg()
	c := newComponents(cfg, env.sch, env.tbl.NumRows(), env.rng)
	c.UpdateMultiTask(p, 30)
	preds := c.Generate(p, 40)
	if len(preds) != 40 {
		t.Fatalf("generated %d", len(preds))
	}
	for _, pr := range preds {
		for i := range pr.Lows {
			if pr.Lows[i] > pr.Highs[i] {
				t.Fatal("generated predicate with inverted range")
			}
			if pr.Lows[i] < env.sch.Mins[i]-1e-9 || pr.Highs[i] > env.sch.Maxs[i]+1e-9 {
				t.Fatal("generated predicate out of schema range")
			}
		}
	}
}

func TestGenerateFromEmptyNewWorkload(t *testing.T) {
	env := newTestEnv(t, 50, 0)
	p := env.seededPool(0)
	c := newComponents(smallCfg(), env.sch, env.tbl.NumRows(), env.rng)
	if preds := c.Generate(p, 10); preds != nil {
		t.Errorf("expected nil, got %d predicates", len(preds))
	}
}

func TestGANGeneratedResemblesNewWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	// After GAN training, generated queries should be closer (in δ_js) to
	// the new workload than the training workload is.
	env := newTestEnv(t, 300, 120)
	p := env.seededPool(120)
	cfg := DefaultConfig() // the shrunken test config underfits this check
	cfg.NIters = 120
	c := newComponents(cfg, env.sch, env.tbl.NumRows(), env.rng)
	c.UpdateAutoEncoder(p, 60) // offline pre-train
	c.UpdateMultiTask(p, cfg.NIters)
	gen := c.Generate(p, 200)

	var newPreds, trainPreds []query.Predicate
	for _, lq := range env.newQ {
		newPreds = append(newPreds, lq.Pred)
	}
	for _, lq := range env.train {
		trainPreds = append(trainPreds, lq.Pred)
	}
	jsGenNew := drift.DeltaJS(gen, newPreds, env.sch, drift.DefaultJSConfig())
	jsTrainNew := drift.DeltaJS(trainPreds, newPreds, env.sch, drift.DefaultJSConfig())
	if jsGenNew >= jsTrainNew {
		t.Errorf("generated workload no closer to new: δ(gen,new)=%v δ(train,new)=%v", jsGenNew, jsTrainNew)
	}
}

func TestDiscriminatorLearnsSourceClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy; skipped under -short (race pass)")
	}
	env := newTestEnv(t, 300, 120)
	p := env.seededPool(120)
	cfg := smallCfg()
	cfg.NIters = 100
	c := newComponents(cfg, env.sch, env.tbl.NumRows(), env.rng)
	c.UpdateAutoEncoder(p, 5)
	c.UpdateMultiTask(p, cfg.NIters)
	c.EmbedAll(p)
	// The discriminator should separate train from new better than chance.
	correct, total := 0, 0
	for _, e := range p.Entries {
		src, _ := c.Classify(e)
		if e.Source == pool.SrcTrain || e.Source == pool.SrcNew {
			total++
			if src == e.Source {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.5 {
		t.Errorf("discriminator accuracy = %v on train/new, want >= 0.5", acc)
	}
}

func TestClassifySetsConfidence(t *testing.T) {
	env := newTestEnv(t, 60, 20)
	p := env.seededPool(20)
	c := newComponents(smallCfg(), env.sch, env.tbl.NumRows(), env.rng)
	c.EmbedAll(p)
	for _, e := range p.Entries {
		_, conf := c.Classify(e)
		if conf < 0 || conf > 1 {
			t.Fatalf("confidence out of range: %v", conf)
		}
		if e.Conf != conf {
			t.Fatal("Conf not stored on entry")
		}
	}
}

func TestEncoderUsesGTWhenAvailable(t *testing.T) {
	env := newTestEnv(t, 10, 0)
	c := newComponents(smallCfg(), env.sch, env.tbl.NumRows(), env.rng)
	with := &pool.Entry{Pred: env.train[0].Pred, GT: env.train[0].Card, Source: pool.SrcTrain}
	without := &pool.Entry{Pred: env.train[0].Pred, GT: pool.NoGT, Source: pool.SrcTrain}
	zWith := append([]float64(nil), c.Embed(with)...)
	zWithout := c.Embed(without)
	same := true
	for i := range zWith {
		if zWith[i] != zWithout[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("embedding ignores the ground-truth input")
	}
}

func annAllT(t *testing.T, ann *annotator.Annotator, ps []query.Predicate) []query.Labeled {
	t.Helper()
	out, err := ann.AnnotateAll(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
