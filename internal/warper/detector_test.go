package warper

import (
	"context"
	"math/rand"
	"testing"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/drift"
	"warper/internal/query"
	"warper/internal/workload"
)

// detFixture builds a detector with controlled thresholds over the shared
// test environment.
func detFixture(t *testing.T, gamma int) (*testEnv, *detector) {
	t.Helper()
	env := newTestEnv(t, 300, 0)
	var trainPreds []query.Predicate
	for _, lq := range env.train {
		trainPreds = append(trainPreds, lq.Pred)
	}
	cfg := DefaultConfig()
	cfg.JSThreshold = 0.08
	d := &detector{
		cfg:        cfg,
		sch:        env.sch,
		telemetry:  &drift.DataTelemetry{},
		trainPreds: trainPreds,
		trainGMQ:   1.5,
		pi:         cfg.Pi,
		gamma:      gamma,
	}
	return env, d
}

func TestDetectNoArrivalsNoDrift(t *testing.T) {
	env, d := detFixture(t, 100)
	det := detectOK(t, d, nil, nil, env.trainedModel(t), env.ann, 0)
	if det.Mode != ModeNone {
		t.Errorf("mode = %v, want none", det.Mode)
	}
}

// trainedModel returns a real model trained in-distribution so δ_m is small
// for same-workload arrivals.
func (env *testEnv) trainedModel(t *testing.T) *mockModel {
	t.Helper()
	// Answer with the training-set median cardinality: error is moderate
	// everywhere, letting tests control δ_m purely via trainGMQ.
	var sum float64
	for _, lq := range env.train {
		sum += lq.Card
	}
	return &mockModel{v: sum / float64(len(env.train))}
}

type mockModel struct{ v float64 }

func (m *mockModel) Train([]query.Labeled) error      { return nil }
func (m *mockModel) Update([]query.Labeled) error     { return nil }
func (m *mockModel) Estimate(query.Predicate) float64 { return m.v }
func (m *mockModel) Policy() ce.UpdatePolicy          { return ce.FineTune }
func (m *mockModel) Clone() ce.Estimator              { return &mockModel{v: m.v} }
func (m *mockModel) Name() string                     { return "mock" }

func TestDetectC2OnScarceDriftedArrivals(t *testing.T) {
	env, d := detFixture(t, 500)
	gNew := workload.New("w4", env.tbl, env.sch, workload.Options{MaxConstrained: 2})
	rng := rand.New(rand.NewSource(9))
	var arrivals []Arrival
	for i := 0; i < 60; i++ {
		p := gNew.Gen(rng)
		arrivals = append(arrivals, Arrival{Pred: p, GT: countOK(t, env.ann, p), HasGT: true})
	}
	det := detectOK(t, d, arrivals, nil, env.trainedModel(t), env.ann, 0)
	if !det.Mode.Has(C2) {
		t.Errorf("mode = %v (δm=%.2f δjs=%.2f), want c2", det.Mode, det.DeltaM, det.DeltaJS)
	}
	if det.NT != 60 || det.NA != 60 {
		t.Errorf("counts: nt=%d na=%d", det.NT, det.NA)
	}
}

func TestDetectC4WhenAdequate(t *testing.T) {
	env, d := detFixture(t, 30)
	gNew := workload.New("w4", env.tbl, env.sch, workload.Options{MaxConstrained: 2})
	rng := rand.New(rand.NewSource(10))
	var arrivals []Arrival
	for i := 0; i < 60; i++ {
		p := gNew.Gen(rng)
		arrivals = append(arrivals, Arrival{Pred: p, GT: countOK(t, env.ann, p), HasGT: true})
	}
	det := detectOK(t, d, arrivals, nil, env.trainedModel(t), env.ann, 0)
	if !det.Mode.Has(C4) || det.Mode.Has(C2) {
		t.Errorf("mode = %v, want c4 only", det.Mode)
	}
}

func TestDetectC3WhenLabelsMissing(t *testing.T) {
	env, d := detFixture(t, 30)
	gNew := workload.New("w4", env.tbl, env.sch, workload.Options{MaxConstrained: 2})
	rng := rand.New(rand.NewSource(11))
	var arrivals []Arrival
	for i := 0; i < 60; i++ {
		arrivals = append(arrivals, Arrival{Pred: gNew.Gen(rng)})
	}
	det := detectOK(t, d, arrivals, nil, env.trainedModel(t), env.ann, 0)
	if !det.Mode.Has(C3) {
		t.Errorf("mode = %v, want c3", det.Mode)
	}
	if det.NA != 0 {
		t.Errorf("na = %d, want 0", det.NA)
	}
}

func TestDetectDataDriftSuppressesDeltaMWorkloadFlag(t *testing.T) {
	env, d := detFixture(t, 500)
	d.trainGMQ = 0.0 // any error reads as a huge δ_m gap
	// Same workload as training, labels present, telemetry says data drift.
	rng := rand.New(rand.NewSource(12))
	gTrain := workload.New("w1", env.tbl, env.sch, workload.Options{MaxConstrained: 2})
	var arrivals []Arrival
	for i := 0; i < 40; i++ {
		p := gTrain.Gen(rng)
		arrivals = append(arrivals, Arrival{Pred: p, GT: countOK(t, env.ann, p), HasGT: true})
	}
	det := detectOK(t, d, arrivals, nil, env.trainedModel(t), env.ann, 0.5 /* changed rows */)
	if !det.Mode.Has(C1) || !det.FreshC1 {
		t.Fatalf("mode = %v, want fresh c1", det.Mode)
	}
	if det.Mode.Has(C2) || det.Mode.Has(C4) {
		t.Errorf("mode = %v: δ_m during a data drift must not flag a workload drift", det.Mode)
	}
}

func TestDetectPendingC1Persists(t *testing.T) {
	env, d := detFixture(t, 500)
	d.pendingC1 = true
	det := detectOK(t, d, nil, nil, env.trainedModel(t), env.ann, 0)
	if !det.Mode.Has(C1) {
		t.Errorf("mode = %v, want pending c1", det.Mode)
	}
	if det.FreshC1 {
		t.Error("pending continuation must not be marked fresh")
	}
}

// countOK unwraps annotator.Count for fixture predicates.
func countOK(t *testing.T, ann *annotator.Annotator, p query.Predicate) float64 {
	t.Helper()
	c, err := ann.Count(context.Background(), p)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	return c
}

// detectOK unwraps detector.detect on healthy fixtures.
func detectOK(t *testing.T, d *detector, arrivals []Arrival, recent []query.Labeled, m ce.Estimator, ann *annotator.Annotator, changed float64) Detection {
	t.Helper()
	det, err := d.detect(context.Background(), arrivals, recent, m, ann, changed)
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	return det
}
