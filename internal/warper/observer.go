package warper

import "time"

// Stage names reported by Adapter.Period, in emission order. Every period
// reports every stage exactly once — stages skipped by the drift mode (e.g.
// generate during a quiet period) report a zero duration — so downstream
// per-stage histograms stay aligned with the period count.
const (
	StageDetect   = "detect"
	StageGenerate = "generate"
	StagePick     = "pick"
	StageAnnotate = "annotate"
	StageUpdate   = "update"
)

// StageNames lists the period stages in emission order.
var StageNames = [...]string{StageDetect, StageGenerate, StagePick, StageAnnotate, StageUpdate}

// PeriodStats summarizes one completed Period invocation for observers:
// the Report fields plus the adapter state an operator wants on a dashboard
// (thresholds, pool occupancy).
type PeriodStats struct {
	Mode         Mode
	Arrivals     int
	Generated    int
	Picked       int
	Annotated    int
	Updated      bool
	EarlyStopped bool
	DeltaM       float64
	DeltaJS      float64
	Pi           float64
	Gamma        int
	PoolSize     int
	Labeled      int
	// TrainedSamples counts minibatch rows consumed by component training
	// this period; with Busy it gives the training throughput (samples/sec).
	TrainedSamples int
	Busy           time.Duration

	// Degradation outcomes (see Report): a period that lost part of its
	// annotation batch but proceeded, the number of failed annotation
	// calls, whether the sampled fallback supplied labels, and whether
	// canary telemetry was skipped.
	Partial           bool
	AnnotateFailed    int
	UsedFallback      bool
	TelemetryDegraded bool
}

// Observer receives adaptation telemetry from an Adapter. Implementations
// must be safe for use from whichever goroutine runs Period; calls are
// synchronous, so observers should be cheap (atomic metric updates, channel
// sends) and never block. The interface lives here — not in an
// observability package — so internal/warper stays dependency-free and any
// metrics backend can plug in.
type Observer interface {
	// PeriodStage reports the wall-clock duration of one named stage. It is
	// called exactly once per stage per Period, in StageNames order.
	PeriodStage(stage string, d time.Duration)
	// PeriodDone reports the period summary after all stages.
	PeriodDone(stats PeriodStats)
}

// emitPeriod sends the per-stage durations and the summary to the observer,
// if any. stages is indexed like StageNames.
func (a *Adapter) emitPeriod(rep *Report, arrivals int, stages *[len(StageNames)]time.Duration) {
	// Drain the component training counter into the report even when no
	// observer is wired. Samples trained during a period that errored out
	// before emitting are attributed to the next emitted period.
	rep.TrainedSamples = a.comps.TakeTrained()
	if a.Obs == nil {
		return
	}
	for i, name := range StageNames {
		a.Obs.PeriodStage(name, stages[i])
	}
	a.Obs.PeriodDone(PeriodStats{
		Mode:         rep.Detection.Mode,
		Arrivals:     arrivals,
		Generated:    rep.Generated,
		Picked:       rep.Picked,
		Annotated:    rep.Annotated,
		Updated:      rep.Updated,
		EarlyStopped: rep.EarlyStopped,
		DeltaM:       rep.Detection.DeltaM,
		DeltaJS:      rep.Detection.DeltaJS,
		Pi:           a.det.pi,
		Gamma:        a.det.gamma,
		PoolSize:       a.Pool.Len(),
		Labeled:        a.Pool.CountLabeled(),
		TrainedSamples: rep.TrainedSamples,
		Busy:           rep.Busy,

		Partial:           rep.Partial,
		AnnotateFailed:    rep.AnnotateFailed,
		UsedFallback:      rep.UsedFallback,
		TelemetryDegraded: rep.TelemetryDegraded,
	})
}
