package warper

import (
	"math"
	"math/rand"

	"warper/internal/mathx"
	"warper/internal/nn"
	"warper/internal/pool"
	"warper/internal/query"
)

// components bundles the three learned Warper modules of Table 3:
//
//	encoder 𝔼:  (featurized predicate, gt signal) → z
//	generator 𝔾: z (+ noise) → featurized predicate    (also the AE decoder)
//	discriminator 𝔻: z → logits over {gen, new, train}
type components struct {
	enc  *nn.Network
	gen  *nn.Network
	disc *nn.Network

	sch      *query.Schema
	embedDim int
	batch    int

	optEnc  nn.Optimizer
	optGen  nn.Optimizer
	optDisc Optimizer4
	rng     *rand.Rand

	// gtScale normalizes log-cardinality inputs to the encoder.
	gtScale float64

	// trained counts minibatch rows consumed by AE/discriminator/generator
	// steps since the last TakeTrained call (feeds the per-period training
	// throughput in PeriodStats and /metrics).
	trained int
}

// TakeTrained returns the number of samples trained since the last call and
// resets the counter.
func (c *components) TakeTrained() int {
	n := c.trained
	c.trained = 0
	return n
}

// Optimizer4 aliases nn.Optimizer; named to keep struct alignment readable.
type Optimizer4 = nn.Optimizer

// discriminator class indices: the source order {gen, new, train} from §3.3.
const (
	classGen   = 0
	classNew   = 1
	classTrain = 2
	numClasses = 3
)

func classOf(s pool.Source) int {
	switch s {
	case pool.SrcGen:
		return classGen
	case pool.SrcNew:
		return classNew
	default:
		return classTrain
	}
}

// newComponents builds 𝔼, 𝔾, 𝔻 per Table 3 (with configurable width/depth
// for the Figure 10 sweep). nRows scales the encoder's gt input.
func newComponents(cfg Config, sch *query.Schema, nRows int, rng *rand.Rand) *components {
	featDim := sch.FeatureDim()
	encIn := featDim + 2 // features + normalized log-gt + has-gt flag
	c := &components{
		sch:      sch,
		embedDim: cfg.EmbedDim,
		batch:    cfg.Batch,
		rng:      rng,
		gtScale:  math.Log1p(float64(nRows) + 1),
	}
	// A tanh bottleneck bounds z to [-1,1]^k: unbounded embeddings make the
	// decoder brittle under the ε perturbation and destabilize 𝔻 training.
	enc := nn.MLP(encIn, cfg.Hidden, cfg.Depth, cfg.EmbedDim, rng)
	enc.Layers = append(enc.Layers, nn.NewTanh())
	c.enc = enc
	// 𝔾 maps z → m (the featurization consumed by 𝕄). The output layer is
	// linear — query.Unfeaturize clamps into the unit feature box; a sigmoid
	// here would saturate at the (very common) 0/1 feature values and kill
	// the reconstruction gradient exactly where predicates deviate.
	c.gen = nn.MLP(cfg.EmbedDim, cfg.Hidden, cfg.Depth, featDim, rng)
	// 𝔻 is a single FC layer (Table 3).
	c.disc = nn.NewNetwork(nn.NewDense(cfg.EmbedDim, numClasses, rng))

	// §3.5 trains with lr=1e-3; Adam (the sklearn/PyTorch default the paper
	// builds on) converges in the few hundred steps available per
	// invocation, where plain SGD at this rate would not.
	c.optEnc = nn.NewAdam(cfg.LR)
	c.optGen = nn.NewAdam(cfg.LR)
	c.optDisc = nn.NewAdam(cfg.LR)
	return c
}

// encoderInput builds the 𝔼 input for an entry: featurized predicate plus
// the ground-truth signal when available and fresh (§3.2: "embed() uses the
// ground truth labels as an additional input ... whenever they are available
// and up-to-date").
func (c *components) encoderInput(e *pool.Entry) []float64 {
	in := make([]float64, c.sch.FeatureDim()+2)
	c.encoderInputInto(e, in)
	return in
}

// encoderInputInto writes the 𝔼 input for e into dst (len FeatureDim()+2).
func (c *components) encoderInputInto(e *pool.Entry, dst []float64) {
	feat := e.Pred.Featurize(c.sch)
	d := copy(dst, feat)
	if e.HasGT() {
		dst[d] = math.Log1p(e.GT) / c.gtScale
		dst[d+1] = 1
	} else {
		dst[d] = 0
		dst[d+1] = 0
	}
}

// Embed computes z = 𝔼(q, gt) and stores it on the entry.
func (c *components) Embed(e *pool.Entry) []float64 {
	z := c.enc.Forward(c.encoderInput(e))
	e.Z = append(e.Z[:0], z...)
	return e.Z
}

// embedEntries refreshes e.Z for every given entry with one batched 𝔼 pass
// (duplicate entries are simply re-written with the same value).
func (c *components) embedEntries(entries []*pool.Entry) {
	if len(entries) == 0 {
		return
	}
	in := nn.NewMat(len(entries), c.sch.FeatureDim()+2)
	for i, e := range entries {
		c.encoderInputInto(e, in.Row(i))
	}
	z := c.enc.BatchForward(in)
	for i, e := range entries {
		e.Z = append(e.Z[:0], z.Row(i)...)
	}
}

// EmbedAll refreshes the embedding of every entry (each Algorithm-1
// invocation re-embeds so stale z never lingers after 𝔼 updates).
func (c *components) EmbedAll(p *pool.Pool) {
	c.embedEntries(p.Entries)
}

// applyClass stores the classification of one softmax row on the entry.
func applyClass(e *pool.Entry, probs []float64) (pool.Source, float64) {
	best := classGen
	for k := 1; k < numClasses; k++ {
		if probs[k] > probs[best] {
			best = k
		}
	}
	var src pool.Source
	switch best {
	case classGen:
		src = pool.SrcGen
	case classNew:
		src = pool.SrcNew
	default:
		src = pool.SrcTrain
	}
	e.PredSource = src
	e.Conf = probs[classNew]
	return src, probs[classNew]
}

// Classify runs 𝔻 on an entry's embedding, storing l' and the confidence s'
// (the softmax probability that the predicate resembles the new workload).
func (c *components) Classify(e *pool.Entry) (pool.Source, float64) {
	if len(e.Z) != c.embedDim {
		c.Embed(e)
	}
	return applyClass(e, nn.Softmax(c.disc.Forward(e.Z)))
}

// ClassifyAll refreshes l', s' for the given entries with one batched 𝔻 pass
// over their embeddings.
func (c *components) ClassifyAll(entries []*pool.Entry) {
	if len(entries) == 0 {
		return
	}
	var missing []*pool.Entry
	for _, e := range entries {
		if len(e.Z) != c.embedDim {
			missing = append(missing, e)
		}
	}
	c.embedEntries(missing)
	zm := nn.NewMat(len(entries), c.embedDim)
	for i, e := range entries {
		copy(zm.Row(i), e.Z)
	}
	logits := c.disc.BatchForward(zm)
	for i, e := range entries {
		applyClass(e, nn.Softmax(logits.Row(i)))
	}
}

// sampleEntries draws n entries uniformly with replacement.
func sampleEntries(entries []*pool.Entry, n int, rng *rand.Rand) []*pool.Entry {
	if len(entries) == 0 {
		return nil
	}
	out := make([]*pool.Entry, n)
	for i := range out {
		out[i] = entries[rng.Intn(len(entries))]
	}
	return out
}

// aeStep runs one autoencoder minibatch: q → 𝔼 → z → 𝔾 → q̂ with L1
// reconstruction loss (Eq. 1), updating 𝔼 and 𝔾. The whole batch moves
// through both networks as matrices (one batched forward/backward pair per
// network instead of per-sample calls).
func (c *components) aeStep(batch []*pool.Entry) float64 {
	if len(batch) == 0 {
		return 0
	}
	b := len(batch)
	featDim := c.sch.FeatureDim()
	c.enc.ZeroGrad()
	c.gen.ZeroGrad()
	in := nn.NewMat(b, featDim+2)
	for i, e := range batch {
		c.encoderInputInto(e, in.Row(i))
	}
	z := c.enc.BatchForward(in)
	rec := c.gen.BatchForward(z)
	var loss nn.L1
	var total float64
	g := nn.NewMat(b, featDim)
	for r := 0; r < b; r++ {
		target := in.Row(r)[:featDim]
		total += loss.Loss(rec.Row(r), target)
		copy(g.Row(r), loss.Grad(rec.Row(r), target))
	}
	gz := c.gen.BatchBackward(g)
	c.enc.BatchBackward(gz)
	c.trained += b
	scale := 1 / float64(b)
	scaleGrads(c.enc, scale)
	scaleGrads(c.gen, scale)
	c.optEnc.Step(c.enc.Params())
	c.optGen.Step(c.gen.Params())
	return total / float64(b)
}

// UpdateAutoEncoder implements update_AutoEncoder (§3.3) over the whole pool
// for the given number of epochs, regardless of label availability.
func (c *components) UpdateAutoEncoder(p *pool.Pool, epochs int) float64 {
	entries := p.Entries
	if len(entries) == 0 {
		return 0
	}
	var last float64
	for e := 0; e < epochs; e++ {
		perm := c.rng.Perm(len(entries))
		var epochLoss float64
		var batches int
		for start := 0; start < len(perm); start += c.batch {
			end := start + c.batch
			if end > len(perm) {
				end = len(perm)
			}
			batch := make([]*pool.Entry, 0, end-start)
			for _, j := range perm[start:end] {
				batch = append(batch, entries[j])
			}
			epochLoss += c.aeStep(batch)
			batches++
		}
		c.optEnc.EndEpoch()
		c.optGen.EndEpoch()
		last = epochLoss / float64(batches)
	}
	return last
}

// discStep trains 𝔻 on one minibatch with the 3-class cross-entropy
// 𝓛_discr = CE(l, l_d). 𝔼 provides embeddings (one batched forward, fresh so
// post-AE-step weights are used) but is held fixed here; it learns through
// the autoencoder task each iteration.
func (c *components) discStep(batch []*pool.Entry) float64 {
	if len(batch) == 0 {
		return 0
	}
	b := len(batch)
	c.disc.ZeroGrad()
	in := nn.NewMat(b, c.sch.FeatureDim()+2)
	for i, e := range batch {
		c.encoderInputInto(e, in.Row(i))
	}
	z := c.enc.BatchForward(in)
	logits := c.disc.BatchForward(z)
	var loss nn.SoftmaxCrossEntropy
	var total float64
	g := nn.NewMat(b, numClasses)
	for r := 0; r < b; r++ {
		target := nn.OneHot(numClasses, classOf(batch[r].Source))
		total += loss.Loss(logits.Row(r), target)
		copy(g.Row(r), loss.Grad(logits.Row(r), target))
	}
	c.disc.BatchBackward(g)
	c.trained += b
	scaleGrads(c.disc, 1/float64(b))
	c.optDisc.Step(c.disc.Params())
	return total / float64(b)
}

// genAnchorWeight balances the adversarial objective against an L1 anchor to
// the seed predicate's featurization. The anchor keeps 𝔾 a usable decoder:
// without it the adversarial gradient collapses 𝔾 to a single fooling point
// and the generated queries stop resembling any real workload.
const (
	genAnchorWeight = 1.0
	genAdvWeight    = 0.2
)

// genStep trains 𝔾 adversarially: z+ε → 𝔾 → q_gen → 𝔼 → z' → 𝔻 → l', with
// 𝓛_gen = CE(l', new) + anchor·L1(q_gen, q_seed). Gradients flow through 𝔻
// and 𝔼 but only 𝔾 steps.
func (c *components) genStep(seeds []*pool.Entry, sigma []float64) float64 {
	if len(seeds) == 0 {
		return 0
	}
	b := len(seeds)
	featDim := c.sch.FeatureDim()
	c.gen.ZeroGrad()
	var ce nn.SoftmaxCrossEntropy
	var l1 nn.L1
	target := nn.OneHot(numClasses, classNew)

	var missing []*pool.Entry
	for _, seed := range seeds {
		if len(seed.Z) != c.embedDim {
			missing = append(missing, seed)
		}
	}
	c.embedEntries(missing)
	zin := nn.NewMat(b, c.embedDim)
	for i, seed := range seeds {
		copy(zin.Row(i), c.noisy(seed.Z, sigma))
	}
	feat := c.gen.BatchForward(zin)
	// Pad generated featurizations into encoder inputs; the two gt slots
	// stay zero (no ground truth for synthetic queries).
	encIn := nn.NewMat(b, featDim+2)
	for r := 0; r < b; r++ {
		copy(encIn.Row(r), feat.Row(r))
	}
	z2 := c.enc.BatchForward(encIn)
	logits := c.disc.BatchForward(z2)

	anchors := make([][]float64, b)
	var total float64
	gCE := nn.NewMat(b, numClasses)
	for r := 0; r < b; r++ {
		anchors[r] = seeds[r].Pred.Featurize(c.sch)
		total += genAdvWeight*ce.Loss(logits.Row(r), target) + genAnchorWeight*l1.Loss(feat.Row(r), anchors[r])
		g := ce.Grad(logits.Row(r), target)
		row := gCE.Row(r)
		for i := range g {
			row[i] = genAdvWeight * g[i]
		}
	}
	// Gradients flow through 𝔻 and 𝔼 as data only (BatchBackwardData skips
	// parameter-gradient accumulation): only 𝔾 steps here.
	gz2 := c.disc.BatchBackwardData(gCE)
	gEncIn := c.enc.BatchBackwardData(gz2)
	gFeat := nn.NewMat(b, featDim)
	for r := 0; r < b; r++ {
		row := gFeat.Row(r)
		copy(row, gEncIn.Row(r)[:featDim])
		for i, g := range l1.Grad(feat.Row(r), anchors[r]) {
			row[i] += genAnchorWeight * g
		}
	}
	c.gen.BatchBackward(gFeat)
	c.trained += b
	scaleGrads(c.gen, 1/float64(b))
	c.optGen.Step(c.gen.Params())
	return total / float64(b)
}

// noiseScale shrinks the ε noise below the raw per-dimension embedding std:
// seeding with z + N(0, σ²) would double the generated distribution's
// variance relative to the real new workload, which measurably widens it
// (higher δ_js to the target workload).
var noiseScale = 0.4

// noisy returns z + ε with ε ~ N(0, (noiseScale·σ)²) per dimension (§3.2: σ
// derives from the std of the embeddings of previously seen predicates).
func (c *components) noisy(z []float64, sigma []float64) []float64 {
	out := make([]float64, len(z))
	for i := range z {
		out[i] = z[i] + c.rng.NormFloat64()*sigma[i]*noiseScale
	}
	return out
}

// embeddingStd computes the per-dimension std of the given entries'
// embeddings.
func (c *components) embeddingStd(entries []*pool.Entry) []float64 {
	sigma := make([]float64, c.embedDim)
	if len(entries) < 2 {
		for i := range sigma {
			sigma[i] = 0.1
		}
		return sigma
	}
	for d := 0; d < c.embedDim; d++ {
		col := make(mathx.Vector, 0, len(entries))
		for _, e := range entries {
			if len(e.Z) == c.embedDim {
				col = append(col, e.Z[d])
			}
		}
		sigma[d] = col.Std()
		if sigma[d] <= 0 {
			sigma[d] = 0.05
		}
	}
	return sigma
}

// ganLoss is one combined measurement of 𝓛_GAN = 𝓛_gen + 𝓛_discr used for
// the convergence-based early stop in the GAN loop.
type ganLoss struct{ AE, Gen, Disc float64 }

func (g ganLoss) total() float64 { return g.Gen + g.Disc }

// UpdateMultiTask implements update_MultiTask (§3.3): up to nIters GAN
// iterations, each consisting of an autoencoder step (so 𝔼/𝔾 keep adapting
// on the fly), a discriminator step over {gen,new,train} samples, and an
// adversarial generator step from new-workload embeddings. It early-stops
// when 𝓛_GAN converges (§3.5).
func (c *components) UpdateMultiTask(p *pool.Pool, nIters int) ganLoss {
	newEntries := p.BySource(pool.SrcNew)
	if len(newEntries) == 0 {
		// Nothing to imitate; fall back to the autoencoder task.
		c.UpdateAutoEncoder(p, 1)
		return ganLoss{}
	}
	c.EmbedAll(p)
	var last ganLoss
	prev := math.Inf(1)
	stall := 0
	for it := 0; it < nIters; it++ {
		// Task 1: autoencoder minibatch over the whole pool.
		aeBatch := sampleEntries(p.Entries, c.batch, c.rng)
		last.AE = c.aeStep(aeBatch)

		// Task 2: discriminator on real pool entries plus freshly generated
		// fakes so 𝔻 sees all three classes.
		discBatch := sampleEntries(p.Entries, c.batch/2, c.rng)
		sigma := c.embeddingStd(newEntries)
		fakes := c.generateEntries(newEntries, c.batch/2, sigma)
		discBatch = append(discBatch, fakes...)
		last.Disc = c.discStep(discBatch)

		// Task 3: adversarial generator step seeded from new-workload
		// embeddings.
		seedEntries := sampleEntries(newEntries, c.batch/2, c.rng)
		last.Gen = c.genStep(seedEntries, sigma)

		c.optDisc.EndEpoch()

		// Early stop when 𝓛_GAN stops improving.
		if math.Abs(prev-last.total()) < 1e-3 {
			stall++
			if stall >= 5 {
				break
			}
		} else {
			stall = 0
		}
		prev = last.total()
	}
	return last
}

// generateFeats synthesizes n featurizations seeded from random
// new-workload embeddings: one batched 𝔼 refresh over the picks (𝔼 may have
// changed since their Z was cached) plus one batched 𝔾 pass. The returned
// matrix is a scratch view valid until the next 𝔾 batch operation.
func (c *components) generateFeats(newEntries []*pool.Entry, n int, sigma []float64) nn.Mat {
	picks := make([]*pool.Entry, n)
	for i := range picks {
		picks[i] = newEntries[c.rng.Intn(len(newEntries))]
	}
	c.embedEntries(picks)
	zin := nn.NewMat(n, c.embedDim)
	for i, e := range picks {
		copy(zin.Row(i), c.noisy(e.Z, sigma))
	}
	return c.gen.BatchForward(zin)
}

// generateEntries synthesizes n throwaway entries (not added to the pool)
// for discriminator training.
func (c *components) generateEntries(newEntries []*pool.Entry, n int, sigma []float64) []*pool.Entry {
	feats := c.generateFeats(newEntries, n, sigma)
	out := make([]*pool.Entry, n)
	for i := range out {
		pred := query.Unfeaturize(feats.Row(i), c.sch)
		out[i] = &pool.Entry{Pred: pred, GT: pool.NoGT, Source: pool.SrcGen}
	}
	return out
}

// Generate implements pool.gen(𝔾, 𝔼, n): n synthetic predicates seeded from
// the embeddings of newly arrived queries plus Gaussian noise.
func (c *components) Generate(p *pool.Pool, n int) []query.Predicate {
	newEntries := p.BySource(pool.SrcNew)
	if len(newEntries) == 0 || n <= 0 {
		return nil
	}
	sigma := c.embeddingStd(newEntries)
	feats := c.generateFeats(newEntries, n, sigma)
	out := make([]query.Predicate, n)
	for i := range out {
		out[i] = query.Unfeaturize(feats.Row(i), c.sch)
	}
	return out
}

func scaleGrads(n *nn.Network, s float64) {
	for _, p := range n.Params() {
		for i := range p.G {
			p.G[i] *= s
		}
	}
}
