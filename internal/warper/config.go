// Package warper implements the paper's core contribution: a model-agnostic
// adaptation layer that detects data and workload drifts (det_drft, §3.1),
// synthesizes realistic predicates with a 3-class GAN when new queries are
// scarce (𝔼/𝔾/𝔻, §3.3), picks the most useful queries to annotate (ℙ, §3.2)
// and updates the underlying CE model (Algorithm 1), with the early-stopping
// and γ-tuning robustness mechanisms of §3.4.
package warper

import "time"

// Config holds every tunable of the Warper system. Zero values are replaced
// with the paper's defaults by withDefaults.
type Config struct {
	// EmbedDim is |z|, the encoder output width.
	EmbedDim int
	// Hidden and Depth shape 𝔼 and 𝔾 (Table 3 uses 3 hidden FC-128 layers);
	// Figure 10 sweeps these.
	Hidden int
	Depth  int
	// NIters is n_i, the per-invocation cap on GAN update iterations (§3.5
	// uses 100 with early stopping on loss convergence).
	NIters int
	// Batch is the minibatch size for component training.
	Batch int
	// LR is the component learning rate (§3.5: 1e-3, halved every 10
	// epochs).
	LR float64

	// GenFraction sets n_g = GenFraction·n_t generated queries per step
	// (§4.1 uses 10%); the generator is disabled when n_g < 1.
	GenFraction float64
	// PickSize is n_p, the number of queries the picker returns (§4.1 uses
	// a fixed 1K; scaled deployments set it near their γ).
	PickSize int
	// AnnotateBudget caps annotations per invocation (n_a). 0 = unlimited.
	AnnotateBudget int
	// ErrorBuckets is the stratification bucket count for the c1/c3 picker.
	ErrorBuckets int
	// KNN is the neighbor count when assigning unlabeled queries to error
	// buckets by embedding distance.
	KNN int

	// Pi is the initial drift threshold π on the accuracy gap δ_m.
	Pi float64
	// PiBoost multiplies π after an early stop (§3.4).
	PiBoost float64
	// GainEps is the minimum per-step GMQ gain below which Warper early
	// stops.
	GainEps float64
	// JSThreshold flags a workload drift when δ_js exceeds it.
	JSThreshold float64
	// Gamma is γ, the number of annotated queries needed for a robust
	// model, estimated offline from the training curve and tuned online.
	Gamma int

	// MaxPoolGen bounds retained generated entries across periods.
	MaxPoolGen int
	// Canaries is the number of canary predicates for data-drift telemetry.
	Canaries int

	// MinLabelFraction is the smallest fraction of requested annotations a
	// period may proceed with when the ground-truth source partially fails.
	// Below it the adapter retries the missing labels through the sampled
	// fallback; if even that leaves the fraction short, the period aborts
	// cleanly so the caller keeps its pre-period model. Default 0.5.
	MinLabelFraction float64
	// AnnotateDeadline bounds one period's annotation pass in wall-clock
	// time; labels not obtained in time are treated like failed calls
	// (partial-label degradation). 0 = no deadline.
	AnnotateDeadline time.Duration
	// FallbackSampleRate is the row-sample rate of the approximate
	// annotator used when exact annotation loses more than
	// MinLabelFraction of a batch. Default 0.1.
	FallbackSampleRate float64

	// Seed drives all of Warper's internal randomness.
	Seed int64
}

// DefaultConfig returns the §3.5/§4.1 settings scaled to this reproduction.
func DefaultConfig() Config {
	return Config{
		EmbedDim:       16,
		Hidden:         128,
		Depth:          3,
		NIters:         100,
		Batch:          32,
		LR:             1e-3,
		GenFraction:    0.1,
		PickSize:       1000,
		AnnotateBudget: 0,
		ErrorBuckets:   5,
		KNN:            3,
		Pi:             0.2,
		PiBoost:        2.0,
		GainEps:        0.02,
		JSThreshold:    0.04,
		Gamma:          400,
		MaxPoolGen:     4000,
		Canaries:       10,

		MinLabelFraction:   0.5,
		FallbackSampleRate: 0.1,

		Seed: 1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.EmbedDim <= 0 {
		c.EmbedDim = d.EmbedDim
	}
	if c.Hidden <= 0 {
		c.Hidden = d.Hidden
	}
	if c.Depth <= 0 {
		c.Depth = d.Depth
	}
	if c.NIters <= 0 {
		c.NIters = d.NIters
	}
	if c.Batch <= 0 {
		c.Batch = d.Batch
	}
	if c.LR <= 0 {
		c.LR = d.LR
	}
	if c.GenFraction <= 0 {
		c.GenFraction = d.GenFraction
	}
	if c.PickSize <= 0 {
		c.PickSize = d.PickSize
	}
	if c.ErrorBuckets <= 0 {
		c.ErrorBuckets = d.ErrorBuckets
	}
	if c.KNN <= 0 {
		c.KNN = d.KNN
	}
	if c.Pi <= 0 {
		c.Pi = d.Pi
	}
	if c.PiBoost <= 0 {
		c.PiBoost = d.PiBoost
	}
	if c.GainEps <= 0 {
		c.GainEps = d.GainEps
	}
	if c.JSThreshold <= 0 {
		c.JSThreshold = d.JSThreshold
	}
	if c.Gamma <= 0 {
		c.Gamma = d.Gamma
	}
	if c.MaxPoolGen <= 0 {
		c.MaxPoolGen = d.MaxPoolGen
	}
	if c.Canaries <= 0 {
		c.Canaries = d.Canaries
	}
	if c.MinLabelFraction <= 0 || c.MinLabelFraction > 1 {
		c.MinLabelFraction = d.MinLabelFraction
	}
	if c.FallbackSampleRate <= 0 || c.FallbackSampleRate > 1 {
		c.FallbackSampleRate = d.FallbackSampleRate
	}
	return c
}
