package warper

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"warper/internal/annotator"
	"warper/internal/ce"
	"warper/internal/dataset"
	"warper/internal/drift"
	"warper/internal/pool"
	"warper/internal/query"
	"warper/internal/simclock"
)

// Adapter is the Warper system (Figure 4): it owns the query pool, the
// learned components 𝔼/𝔾/𝔻, the picker ℙ, the drift detector, and a
// black-box reference to the CE model 𝕄 and the annotator 𝔸.
type Adapter struct {
	Cfg    Config
	M      ce.Estimator
	Pool   *pool.Pool
	Ledger *simclock.Ledger
	Picker *Picker
	// GenFunc overrides the synthetic-query source (the Table 10 "𝔾→AUG"
	// ablation swaps in Gaussian-noise augmentation). Nil uses the GAN
	// generator 𝔾.
	GenFunc func(p *pool.Pool, n int) []query.Predicate
	// Obs, when non-nil, receives per-stage timings and a summary for every
	// Period invocation. Set it before serving; Period calls it
	// synchronously.
	Obs Observer

	sch   *query.Schema
	ann   *annotator.Annotator
	comps *components
	det   *detector
	rng   *rand.Rand

	// src is the active ground-truth source: a.ann by default, or whatever
	// SetSource installed (typically a resilience.Resilient wrapper, under
	// test a resilience.Faulty). All period-time annotation — picked
	// entries, canary probes, rebase — goes through it.
	src annotator.Source
	// fallback is the lazily built sampled annotator used when src loses
	// more than MinLabelFraction of a batch.
	fallback annotator.Source

	// bestEvalGMQ tracks the best post-update error seen, for the
	// early-stop gain check (§3.4); stall counts consecutive periods with
	// no improvement over that best.
	bestEvalGMQ float64
	haveBest    bool
	stall       int
}

// Early-stop robustness constants: the number of consecutive small-gain
// periods before π is raised, and the cap on π growth (×Config.Pi).
const (
	earlyStopStall = 3
	maxPiGrowth    = 8.0
)

// New builds an Adapter around a previously trained CE model. It fails only
// when the construction-time canary annotation fails (a training workload
// inconsistent with the live table's schema).
//
//   - m is the black-box CE model 𝕄, already trained on trainSet.
//   - ann is the annotator 𝔸 over the live table.
//   - trainSet is 𝕀train, used to seed the pool, pre-train the autoencoder
//     offline (§3.5) and anchor the δ_js reference workload.
func New(cfg Config, m ce.Estimator, sch *query.Schema, ann *annotator.Annotator, trainSet []query.Labeled) (*Adapter, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := &Adapter{
		Cfg:    cfg,
		M:      m,
		Pool:   pool.InitFromTraining(trainSet),
		Ledger: simclock.NewLedger(),
		Picker: &Picker{Strategy: StrategyWarper, Buckets: cfg.ErrorBuckets, KNN: cfg.KNN},
		sch:    sch,
		ann:    ann,
		src:    ann,
		rng:    rng,
	}
	a.comps = newComponents(cfg, sch, ann.Table().NumRows(), rng)

	// Pre-train 𝔼 and 𝔾 offline as an autoencoder on 𝕀train (§3.5); this
	// one-time cost mirrors training the LM model offline.
	w := simclock.StartWatch()
	a.comps.UpdateAutoEncoder(a.Pool, 60)
	a.comps.EmbedAll(a.Pool)
	a.Ledger.Charge("pretrain", w.Stop())

	// Training-time error baseline for δ_m and the detector state.
	trainGMQ := ce.EvalGMQ(m, trainSet)
	var trainPreds []query.Predicate
	for _, lq := range trainSet {
		trainPreds = append(trainPreds, lq.Pred)
	}
	canaryCount := cfg.Canaries
	if canaryCount > len(trainSet) {
		canaryCount = len(trainSet)
	}
	canaries := &drift.Canaries{}
	if canaryCount > 0 {
		var err error
		canaries, err = drift.NewCanaries(context.Background(), canaryCount, staticGen(trainPreds), ann, rng)
		if err != nil {
			return nil, err
		}
	}
	a.det = &detector{
		cfg:        cfg,
		sch:        sch,
		telemetry:  &drift.DataTelemetry{Canaries: canaries},
		trainPreds: trainPreds,
		trainGMQ:   trainGMQ,
		pi:         cfg.Pi,
		gamma:      cfg.Gamma,
	}
	return a, nil
}

// staticGen adapts a fixed predicate list to the workload.Generator shape
// needed by drift.NewCanaries without importing the workload package.
type staticGenT struct{ preds []query.Predicate }

func staticGen(preds []query.Predicate) staticGenT { return staticGenT{preds} }

func (s staticGenT) Gen(rng *rand.Rand) query.Predicate {
	return s.preds[rng.Intn(len(s.preds))].Clone()
}
func (s staticGenT) Name() string { return "canary" }

// Report summarizes one Algorithm-1 invocation.
type Report struct {
	Detection Detection
	// Generated is the number of synthetic queries added to the pool.
	Generated int
	// Annotated is the number of ground-truth computations spent (n_a).
	Annotated int
	// Picked is the number of distinct queries selected by ℙ.
	Picked int
	// Updated is true when 𝕄 was updated this period.
	Updated bool
	// EarlyStopped is true when the gain check raised π instead of adapting
	// further.
	EarlyStopped bool
	// GANLoss carries the last GAN losses when update_MultiTask ran.
	GANLoss ganLoss
	// TrainedSamples is the number of minibatch rows the learned components
	// (𝔼/𝔾/𝔻) consumed this period; TrainedSamples/Busy is the training
	// throughput an operator watches when sizing the adaptation budget.
	TrainedSamples int
	// Busy is the compute charged to the virtual clock this period.
	Busy time.Duration

	// Partial is true when the ground-truth source lost part of the
	// annotation batch but the period proceeded with the labels it got
	// (≥ Config.MinLabelFraction of the request).
	Partial bool
	// AnnotateFailed counts annotation calls that failed this period
	// (after the source's own retries, if it wraps any).
	AnnotateFailed int
	// UsedFallback is true when the sampled fallback annotator supplied
	// labels because exact annotation fell below MinLabelFraction.
	UsedFallback bool
	// TelemetryDegraded is true when canary telemetry or its rebase failed
	// and was skipped; detection ran on the remaining signals.
	TelemetryDegraded bool
}

// Period runs one Warper invocation (Figure 3 + Algorithm 1) over the
// queries that arrived in the current adaptation period, without a deadline.
// Serving callers use PeriodCtx so a request deadline bounds the period.
func (a *Adapter) Period(arrivals []Arrival) (Report, error) {
	return a.PeriodCtx(context.Background(), arrivals)
}

// Table returns the live table behind the adapter's annotator. Serving
// layers use it to build data-driven fallback estimators (equi-depth
// histograms) that stay answerable when the learned model cannot be
// reached; treat it as read-owned by the annotation pipeline.
func (a *Adapter) Table() *dataset.Table { return a.ann.Table() }

// ModelSnapshot returns a private deep copy of the current model M, the
// swap seam serving layers build their replica pools from: the snapshot
// shares no mutable state with M, so it can serve estimates while a period
// mutates M. It must not be called concurrently with a running Period or
// another snapshot — both clone from (and advance the RNG of) the same M.
func (a *Adapter) ModelSnapshot() ce.Estimator { return a.M.Clone() }

// PeriodCtx runs one Warper invocation (Figure 3 + Algorithm 1) over the
// queries that arrived in the current adaptation period.
//
// Annotation faults degrade before they abort: failed calls are skipped
// while at least Config.MinLabelFraction of the requested labels arrive;
// below that the sampled fallback fills in; only when even the fallback
// cannot reach the floor — or ctx is cancelled — does the period return an
// error. A non-nil error means the repair failed partway and the adapter's
// model may be partially updated: callers that serve traffic should discard
// a.M in favor of a pre-period clone so the previous model keeps serving.
func (a *Adapter) PeriodCtx(ctx context.Context, arrivals []Arrival) (Report, error) {
	w := simclock.StartWatch()
	// stages collects per-stage wall-clock, indexed like StageNames.
	var stages [len(StageNames)]time.Duration
	stageW := simclock.StartWatch()

	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	tbl := a.ann.Table()
	recent := lastN(a.Pool.LabeledBySource(pool.SrcNew), 90)
	det, err := a.det.detect(ctx, arrivals, recent, a.M, a.src, tbl.ChangedFraction())
	rep := Report{Detection: det, TelemetryDegraded: det.TelemetryDegraded}
	if err != nil {
		rep.Busy = w.Stop()
		return rep, err
	}

	// Line 1: inject arrivals into the pool regardless of mode.
	var newEntries []*pool.Entry
	for _, ar := range arrivals {
		newEntries = append(newEntries, a.Pool.AddNew(ar.Pred, ar.GT, ar.HasGT))
	}

	if det.Mode == ModeNone {
		// Quiet period: relax an early-stop-raised π back toward its base
		// value so a later real drift (or resumed progress) re-triggers
		// detection rather than staying silenced forever.
		if a.det.pi > a.Cfg.Pi {
			a.det.pi = maxF(a.Cfg.Pi, a.det.pi*0.8)
		}
		rep.Busy = w.Stop()
		a.Ledger.Charge("detect", rep.Busy)
		stages[0] = stageW.Stop()
		a.emitPeriod(&rep, len(arrivals), &stages)
		return rep, nil
	}

	if det.FreshC1 {
		// A new data drift: every stored label may be outdated. (A pending
		// c1 continuation must not re-stale freshly re-annotated entries.)
		a.Pool.MarkAllStale()
		// Fresh arrivals with execution feedback are current by definition.
		for i, ar := range arrivals {
			if ar.HasGT {
				newEntries[i].GT = ar.GT
				newEntries[i].Stale = false
			}
		}
		tbl.ResetChangeTracking()
	}

	stages[0] = stageW.Stop()
	stageW = simclock.StartWatch()

	// Lines 3–8: update the learned components; generate when in c2.
	if det.Mode.Has(C2) {
		gw := simclock.StartWatch()
		rep.GANLoss = a.comps.UpdateMultiTask(a.Pool, a.Cfg.NIters)
		a.Ledger.Charge("gan", gw.Stop())

		nGen := int(a.Cfg.GenFraction * float64(maxI(det.NT, 1)))
		if nGen >= 1 { // §4.3: generator disabled when n_g < 1
			genW := simclock.StartWatch()
			genFn := a.GenFunc
			if genFn == nil {
				genFn = a.comps.Generate
			}
			preds := genFn(a.Pool, nGen)
			for _, p := range preds {
				e := a.Pool.AddGenerated(p)
				a.comps.Embed(e)
				a.comps.Classify(e)
			}
			rep.Generated = len(preds)
			a.Ledger.Charge("gen", genW.Stop())
		}
	} else {
		aw := simclock.StartWatch()
		a.comps.UpdateAutoEncoder(a.Pool, 2)
		a.Ledger.Charge("ae", aw.Stop())
	}

	// Refresh embeddings so the picker sees current z.
	a.comps.EmbedAll(a.Pool)
	a.comps.ClassifyAll(a.Pool.BySource(pool.SrcGen))
	stages[1] = stageW.Stop()

	// Line 9: pick queries and annotate them.
	pw := simclock.StartWatch()
	picked := a.pick(det.Mode)
	rep.Picked = len(picked)
	stages[2] = pw.Stop()
	a.Ledger.Charge("pick", stages[2])

	anW := simclock.StartWatch()
	rep.Annotated, err = a.annotate(ctx, picked, &rep)
	stages[3] = anW.Stop()
	a.Ledger.Charge("annotate", stages[3])
	if err != nil {
		rep.Busy = w.Stop()
		return rep, err
	}

	// Line 10: update 𝕄 from the pool. The update stage also covers the
	// early-stop evaluation and pool maintenance below. A failed update
	// aborts the period: the caller keeps its pre-period model, and the
	// pool/detector state stays consistent for the next attempt.
	stageW = simclock.StartWatch()
	mw := simclock.StartWatch()
	err = a.updateModel(picked)
	a.Ledger.Charge("model", mw.Stop())
	if err != nil {
		rep.Busy = w.Stop()
		return rep, err
	}
	rep.Updated = true

	// Early stop (§3.4): when the model stops improving on its best
	// observed error for several consecutive periods, raise π so det_drft
	// goes quiet until a larger drift appears. Comparing against the best
	// (not the previous period) makes the check robust to evaluation
	// noise, and π growth is capped so a real new drift can always
	// re-trigger detection.
	evalSet := a.Pool.LabeledBySource(pool.SrcNew)
	if len(evalSet) >= 10 {
		cur := ce.EvalGMQ(a.M, lastN(evalSet, 200))
		if !a.haveBest || cur < a.bestEvalGMQ-a.Cfg.GainEps {
			if !a.haveBest || cur < a.bestEvalGMQ {
				a.bestEvalGMQ = cur
			}
			a.haveBest = true
			a.stall = 0
			a.det.pi = a.Cfg.Pi
		} else {
			a.stall++
			if a.stall >= earlyStopStall {
				if a.det.pi < a.Cfg.Pi*maxPiGrowth {
					a.det.pi *= a.Cfg.PiBoost
				}
				rep.EarlyStopped = true
			}
			// γ online tuning: slow improvement under c4 suggests γ was
			// underestimated (§3.4).
			if det.Mode.Has(C4) {
				a.det.gamma = a.det.gamma * 3 / 2
			}
		}
	}

	a.Pool.TrimGenerated(a.Cfg.MaxPoolGen)
	if det.Mode.Has(C1) {
		// Rebase is best-effort: a flaky source must not abort a period
		// whose model update already succeeded. A skipped rebase leaves
		// the canary baselines stale, so the c1 signal may re-fire next
		// period and the rebase retries then.
		if err := a.det.telemetry.Canaries.Rebase(ctx, a.src); err != nil {
			if ctx.Err() != nil {
				rep.Busy = w.Stop()
				return rep, ctx.Err()
			}
			rep.TelemetryDegraded = true
		}
		// Keep c1 pending while stale labels remain (unless the early stop
		// decided further adaptation is not worth it).
		staleLeft := false
		for _, pe := range a.Pool.Entries {
			if pe.Stale {
				staleLeft = true
				break
			}
		}
		a.det.pendingC1 = staleLeft && !rep.EarlyStopped
	}
	stages[4] = stageW.Stop()
	rep.Busy = w.Stop()
	a.emitPeriod(&rep, len(arrivals), &stages)
	return rep, nil
}

// pick runs ℙ according to the drift mode (Table 2).
func (a *Adapter) pick(mode Mode) []*pool.Entry {
	n := a.Cfg.PickSize
	switch {
	case mode.Has(C2):
		// Generated queries weighted by discriminator confidence — labeled
		// ones included, so previously annotated synthetic queries are
		// re-used only while they still resemble the new workload; freshly
		// arrived unlabeled queries ride along (they are the signal).
		cands := a.Pool.BySource(pool.SrcGen)
		picked := a.Picker.PickGenerated(cands, n, a.rng)
		return append(picked, a.Pool.Unlabeled(pool.SrcNew)...)
	case mode.Has(C1):
		// Re-annotate the most useful training-set queries.
		labeled := a.entriesWithAnyGT()
		return a.Picker.PickStratified(a.M, labeled, a.Pool.BySource(pool.SrcTrain), n, a.rng)
	case mode.Has(C3):
		// Annotate the most useful unlabeled new queries.
		labeled := a.entriesWithAnyGT()
		return a.Picker.PickStratified(a.M, labeled, a.Pool.Unlabeled(pool.SrcNew), n, a.rng)
	default: // c4: adequate labeled queries; nothing to pick.
		return nil
	}
}

// entriesWithAnyGT returns entries carrying a label, fresh or stale — stale
// labels still inform the error stratification.
func (a *Adapter) entriesWithAnyGT() []*pool.Entry {
	var out []*pool.Entry
	for _, e := range a.Pool.Entries {
		if e.GT >= 0 {
			out = append(out, e)
		}
	}
	return out
}

// annotate computes ground truth for picked entries that lack a fresh label,
// honoring the annotation budget and deadline. It returns the number of
// labels obtained and records degradation in rep.
//
// The ladder: failed exact calls are skipped; when at least
// MinLabelFraction of the requested labels arrive, the period proceeds
// partial. Below the floor, the sampled fallback annotator labels the
// remainder (noisy labels beat no labels, §2); its labels are committed only
// if they lift the fraction over the floor, so an abort never leaves
// approximate cardinalities in the pool. Cancellation of the parent ctx
// aborts immediately — that is the caller giving up, not the source failing.
func (a *Adapter) annotate(ctx context.Context, picked []*pool.Entry, rep *Report) (int, error) {
	budget := a.Cfg.AnnotateBudget
	var todo []*pool.Entry
	for _, e := range picked {
		if e.HasGT() {
			continue
		}
		if budget > 0 && len(todo) >= budget {
			break
		}
		todo = append(todo, e)
	}
	if len(todo) == 0 {
		return 0, nil
	}

	actx := ctx
	cancel := func() {}
	if a.Cfg.AnnotateDeadline > 0 {
		actx, cancel = context.WithTimeout(ctx, a.Cfg.AnnotateDeadline)
	}
	defer cancel()

	count := 0
	for _, e := range todo {
		if ctx.Err() != nil {
			return count, ctx.Err()
		}
		if actx.Err() != nil {
			break // annotation deadline expired: degrade with what we have
		}
		card, err := a.src.Count(actx, e.Pred)
		if err != nil {
			if ctx.Err() != nil {
				return count, ctx.Err()
			}
			rep.AnnotateFailed++
			continue
		}
		e.GT = card
		e.Stale = false
		count++
	}
	if count == len(todo) {
		return count, nil
	}
	if frac := float64(count) / float64(len(todo)); frac >= a.Cfg.MinLabelFraction {
		rep.Partial = true
		return count, nil
	}

	// Exact annotation fell below the floor: try the sampled fallback for
	// the still-missing labels, staging them so a failed rescue leaves no
	// noisy labels behind.
	type staged struct {
		e    *pool.Entry
		card float64
	}
	var rescue []staged
	if fb, err := a.fallbackSource(); err == nil {
		for _, e := range todo {
			if e.HasGT() {
				continue
			}
			if ctx.Err() != nil {
				return count, ctx.Err()
			}
			card, ferr := fb.Count(ctx, e.Pred)
			if ferr != nil {
				if ctx.Err() != nil {
					return count, ctx.Err()
				}
				continue
			}
			rescue = append(rescue, staged{e, card})
		}
	}
	if frac := float64(count+len(rescue)) / float64(len(todo)); frac >= a.Cfg.MinLabelFraction {
		for _, s := range rescue {
			s.e.GT = s.card
			s.e.Stale = false
		}
		count += len(rescue)
		rep.Partial = true
		rep.UsedFallback = true
		return count, nil
	}
	return count, fmt.Errorf("warper: annotation got %d/%d labels, below the %.0f%% floor: aborting period",
		count, len(todo), a.Cfg.MinLabelFraction*100)
}

// fallbackSource lazily builds the sampled fallback annotator over the live
// table. It is seeded from the adapter's RNG, so the sampled rows — and
// with them the fallback labels — are a deterministic function of Config.
func (a *Adapter) fallbackSource() (annotator.Source, error) {
	if a.fallback == nil {
		s, err := annotator.NewSampled(a.ann.Table(), a.Cfg.FallbackSampleRate, a.rng)
		if err != nil {
			return nil, err
		}
		a.fallback = s
	}
	return a.fallback, nil
}

// SetSource installs the active ground-truth source — typically the exact
// annotator behind a resilience.Resilient wrapper. A nil src restores the
// raw exact annotator.
func (a *Adapter) SetSource(src annotator.Source) {
	if src == nil {
		a.src = a.ann
		return
	}
	a.src = src
}

// Source returns the active ground-truth source.
func (a *Adapter) Source() annotator.Source { return a.src }

// updateModel runs line 10 of Algorithm 1: fine-tuning models get the
// labeled picked/new queries; re-training models get the full labeled pool.
// A backend that cannot produce a model (e.g. a failed kernel solve)
// surfaces as an error.
func (a *Adapter) updateModel(picked []*pool.Entry) error {
	if a.M.Policy() == ce.Retrain {
		all := a.Pool.Labeled()
		if len(all) > 0 {
			return a.M.Update(all)
		}
		return nil
	}
	// Fine-tune on the labeled picked set (which re-samples the useful
	// generated queries by current discriminator confidence) plus every
	// labeled new arrival accumulated in the pool — the pool is Warper's
	// advantage over plain fine-tuning, which only ever sees the fresh
	// arrivals.
	seen := map[*pool.Entry]bool{}
	var examples []query.Labeled
	add := func(e *pool.Entry) {
		if e.HasGT() && !seen[e] {
			seen[e] = true
			examples = append(examples, query.Labeled{Pred: e.Pred, Card: e.GT})
		}
	}
	for _, e := range picked {
		add(e)
	}
	for _, e := range a.Pool.BySource(pool.SrcNew) {
		add(e)
	}
	if len(examples) > 0 {
		return a.M.Update(examples)
	}
	return nil
}

// Gamma exposes the current (online-tuned) γ.
func (a *Adapter) Gamma() int { return a.det.gamma }

// Pi exposes the current drift threshold π.
func (a *Adapter) Pi() float64 { return a.det.pi }

// Components returns the learned modules for inspection (visualization,
// tests). The returned struct is live.
func (a *Adapter) Components() *components { return a.comps }

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func lastN(xs []query.Labeled, n int) []query.Labeled {
	if len(xs) <= n {
		return xs
	}
	return xs[len(xs)-n:]
}
