package warper

import (
	"math/rand"
	"testing"

	"warper/internal/ce"
	"warper/internal/pool"
	"warper/internal/query"
)

// constEstimator always predicts the same cardinality.
type constEstimator struct{ v float64 }

func (c constEstimator) Train([]query.Labeled) error      { return nil }
func (c constEstimator) Update([]query.Labeled) error     { return nil }
func (c constEstimator) Estimate(query.Predicate) float64 { return c.v }
func (c constEstimator) Policy() ce.UpdatePolicy          { return ce.FineTune }
func (c constEstimator) Clone() ce.Estimator              { return c }
func (c constEstimator) Name() string                     { return "const" }

func genEntry(conf float64, z ...float64) *pool.Entry {
	return &pool.Entry{
		Pred:   query.Predicate{Lows: []float64{0}, Highs: []float64{1}},
		GT:     pool.NoGT,
		Source: pool.SrcGen,
		Conf:   conf,
		Z:      z,
	}
}

func TestPickGeneratedPrefersHighConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pk := &Picker{Strategy: StrategyWarper}
	low := genEntry(0.01)
	high := genEntry(0.99)
	cands := []*pool.Entry{low, high}
	highCount := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		picked := pk.PickGenerated(cands, 1, rng)
		if len(picked) == 1 && picked[0] == high {
			highCount++
		}
	}
	if float64(highCount)/trials < 0.9 {
		t.Errorf("high-confidence entry picked only %d/%d times", highCount, trials)
	}
}

func TestPickGeneratedEmptyAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pk := &Picker{Strategy: StrategyWarper}
	if got := pk.PickGenerated(nil, 5, rng); got != nil {
		t.Error("expected nil for no candidates")
	}
	if got := pk.PickGenerated([]*pool.Entry{genEntry(1)}, 0, rng); got != nil {
		t.Error("expected nil for zero pick count")
	}
}

func TestPickGeneratedDeduplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pk := &Picker{Strategy: StrategyWarper}
	e := genEntry(1)
	picked := pk.PickGenerated([]*pool.Entry{e}, 50, rng)
	if len(picked) != 1 {
		t.Errorf("picked %d entries from a single candidate", len(picked))
	}
}

func TestPickRandomStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pk := &Picker{Strategy: StrategyRandom}
	cands := []*pool.Entry{genEntry(0.0), genEntry(0.0), genEntry(1.0)}
	picked := pk.PickGenerated(cands, 10, rng)
	if len(picked) == 0 || len(picked) > 3 {
		t.Errorf("random pick returned %d", len(picked))
	}
}

func TestPickStratifiedSpansErrorRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pk := &Picker{Strategy: StrategyWarper, Buckets: 3, KNN: 1}
	m := constEstimator{v: 100}
	// Labeled references with widely varying errors: gt 100 (q=1),
	// gt 1000 (q=10), gt 10000 (q=100).
	mkLabeled := func(gt float64, z float64) *pool.Entry {
		return &pool.Entry{
			Pred:   query.Predicate{Lows: []float64{z}, Highs: []float64{z + 1}},
			GT:     gt,
			Source: pool.SrcTrain,
			Z:      []float64{z},
		}
	}
	labeled := []*pool.Entry{
		mkLabeled(100, 0), mkLabeled(110, 0.1),
		mkLabeled(1000, 5), mkLabeled(1100, 5.1),
		mkLabeled(10000, 10), mkLabeled(11000, 10.1),
	}
	// Unlabeled candidates cluster near each error regime in z-space.
	var cands []*pool.Entry
	for _, z := range []float64{0.05, 5.05, 10.05} {
		for i := 0; i < 5; i++ {
			cands = append(cands, &pool.Entry{
				Pred:   query.Predicate{Lows: []float64{z}, Highs: []float64{z + 1}},
				GT:     pool.NoGT,
				Source: pool.SrcNew,
				Z:      []float64{z + float64(i)*0.001},
			})
		}
	}
	picked := pk.PickStratified(m, labeled, cands, 30, rng)
	if len(picked) == 0 {
		t.Fatal("nothing picked")
	}
	// All three z-regions (error strata) should be represented.
	regions := map[int]bool{}
	for _, e := range picked {
		switch {
		case e.Z[0] < 2:
			regions[0] = true
		case e.Z[0] < 8:
			regions[1] = true
		default:
			regions[2] = true
		}
	}
	if len(regions) != 3 {
		t.Errorf("stratified pick covered %d/3 error regions", len(regions))
	}
}

func TestPickStratifiedLabeledCandidatesBucketDirectly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pk := &Picker{Strategy: StrategyWarper, Buckets: 2, KNN: 1}
	m := constEstimator{v: 100}
	labeled := []*pool.Entry{
		{Pred: query.Predicate{Lows: []float64{0}, Highs: []float64{1}}, GT: 100, Z: []float64{0}},
		{Pred: query.Predicate{Lows: []float64{1}, Highs: []float64{2}}, GT: 10000, Z: []float64{1}},
	}
	// Candidates carry stale labels (c1): bucketed by own error, no kNN.
	cands := []*pool.Entry{
		{Pred: query.Predicate{Lows: []float64{0}, Highs: []float64{1}}, GT: 100, Stale: true, Z: []float64{0}},
		{Pred: query.Predicate{Lows: []float64{1}, Highs: []float64{2}}, GT: 9000, Stale: true, Z: []float64{1}},
	}
	picked := pk.PickStratified(m, labeled, cands, 10, rng)
	if len(picked) != 2 {
		t.Errorf("picked %d, want both candidates across buckets", len(picked))
	}
}

func TestPickStratifiedNoLabeledFallsBackToRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pk := &Picker{Strategy: StrategyWarper}
	cands := []*pool.Entry{genEntry(0.5, 1), genEntry(0.5, 2)}
	picked := pk.PickStratified(constEstimator{v: 1}, nil, cands, 5, rng)
	if len(picked) == 0 {
		t.Error("fallback pick returned nothing")
	}
}

func TestPickEntropyStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pk := &Picker{Strategy: StrategyEntropy}
	certain := genEntry(0.999)
	uncertain := genEntry(0.5)
	counts := map[*pool.Entry]int{}
	for i := 0; i < 300; i++ {
		for _, e := range pk.PickGenerated([]*pool.Entry{certain, uncertain}, 1, rng) {
			counts[e]++
		}
	}
	if counts[uncertain] <= counts[certain] {
		t.Errorf("entropy picker favored certain entry: %v", counts)
	}
}

func TestDiscEntropyBounds(t *testing.T) {
	if h := discEntropy([]float64{0, 0, 0}); h < 1.58 || h > 1.59 {
		t.Errorf("uniform 3-class entropy = %v, want log2(3)", h)
	}
	if h := discEntropy([]float64{100, 0, 0}); h > 0.01 {
		t.Errorf("peaked entropy = %v, want ~0", h)
	}
}
