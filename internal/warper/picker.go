package warper

import (
	"math"
	"math/rand"
	"sort"

	"warper/internal/ce"
	"warper/internal/metrics"
	"warper/internal/nn"
	"warper/internal/pool"
)

// Picker selects the queries worth spending annotation and training budget
// on — the ℙ module of Figure 4. Strategy selects among the paper's picker
// and the Table 10 ablation alternatives.
type Picker struct {
	Strategy PickStrategy
	// Buckets is the stratification bucket count k for the error-stratified
	// mode; KNN the neighbor count for assigning unlabeled queries.
	Buckets int
	KNN     int
}

// PickStrategy selects a picker implementation.
type PickStrategy int

// Picker strategies: the paper's picker plus the Table 10 ablations.
const (
	// StrategyWarper is the paper's picker: confidence-weighted over
	// generated queries (c2) or error-stratified (c1/c3).
	StrategyWarper PickStrategy = iota
	// StrategyRandom picks uniformly at random (ablation "ℙ → rnd pick").
	StrategyRandom
	// StrategyEntropy picks by uncertainty sampling on discriminator
	// entropy (ablation "ℙ → entropy").
	StrategyEntropy
)

// String returns the strategy name.
func (s PickStrategy) String() string {
	switch s {
	case StrategyRandom:
		return "random"
	case StrategyEntropy:
		return "entropy"
	default:
		return "warper"
	}
}

// PickGenerated selects n entries from the generated candidates for
// annotation, weighted by the discriminator confidence s' that each
// resembles the new workload (sampling with replacement, then deduplicated —
// annotation of the same predicate twice is free).
func (pk *Picker) PickGenerated(cands []*pool.Entry, n int, rng *rand.Rand) []*pool.Entry {
	if len(cands) == 0 || n <= 0 {
		return nil
	}
	switch pk.Strategy {
	case StrategyRandom:
		return dedup(sampleEntries(cands, n, rng))
	case StrategyEntropy:
		return pk.pickByEntropy(cands, n, rng)
	}
	weights := make([]float64, len(cands))
	var total float64
	for i, e := range cands {
		w := e.Conf
		if w <= 0 {
			w = 1e-6
		}
		weights[i] = w
		total += w
	}
	picked := make([]*pool.Entry, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64() * total
		acc := 0.0
		for j, w := range weights {
			acc += w
			if r <= acc {
				picked = append(picked, cands[j])
				break
			}
		}
	}
	return dedup(picked)
}

// pickByEntropy implements the uncertainty-sampling ablation: queries whose
// discriminator distribution has higher entropy are more likely picked.
func (pk *Picker) pickByEntropy(cands []*pool.Entry, n int, rng *rand.Rand) []*pool.Entry {
	weights := make([]float64, len(cands))
	var total float64
	for i, e := range cands {
		// Entropy of the (s', 1-s') confidence split; entries never
		// classified get maximal weight.
		h := 1.0
		if e.Conf > 0 && e.Conf < 1 {
			h = -(e.Conf*math.Log(e.Conf) + (1-e.Conf)*math.Log(1-e.Conf)) / math.Ln2
		}
		weights[i] = h + 1e-6
		total += weights[i]
	}
	picked := make([]*pool.Entry, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64() * total
		acc := 0.0
		for j, w := range weights {
			acc += w
			if r <= acc {
				picked = append(picked, cands[j])
				break
			}
		}
	}
	return dedup(picked)
}

// PickStratified implements the c1/c3 picker (§3.2): cluster the labeled
// pool records into k buckets by the CE model's evaluation error, assign
// each unlabeled candidate to a bucket by k-nearest-neighbor over
// embeddings, then sample candidates across buckets with replacement so the
// picked set spans a wide range of CE errors.
//
// labeled supplies the bucket structure (its entries may carry stale labels
// — the error estimate is still informative); cands is the set to pick from.
// Candidates that carry their own (possibly stale) label are bucketed
// directly by their own error.
func (pk *Picker) PickStratified(m ce.Estimator, labeled, cands []*pool.Entry, n int, rng *rand.Rand) []*pool.Entry {
	if len(cands) == 0 || n <= 0 {
		return nil
	}
	if pk.Strategy == StrategyRandom {
		return dedup(sampleEntries(cands, n, rng))
	}
	k := pk.Buckets
	if k <= 0 {
		k = 5
	}
	// Bucket boundaries: error quantiles over the labeled records.
	var ref []refEntry
	for _, e := range labeled {
		if e.GT < 0 {
			continue
		}
		ref = append(ref, refEntry{e, metrics.QError(m.Estimate(e.Pred), e.GT)})
	}
	if len(ref) == 0 {
		return dedup(sampleEntries(cands, n, rng))
	}
	errs := make([]float64, len(ref))
	for i, s := range ref {
		errs[i] = s.err
	}
	sort.Float64s(errs)
	bounds := make([]float64, k-1)
	for i := 1; i < k; i++ {
		bounds[i-1] = quantileSorted(errs, float64(i)/float64(k))
	}
	bucketOf := func(err float64) int {
		b := sort.SearchFloat64s(bounds, err)
		if b >= k {
			b = k - 1
		}
		return b
	}
	// Pre-bucket the labeled reference entries for kNN voting.
	refBuckets := make([]int, len(ref))
	for i, s := range ref {
		refBuckets[i] = bucketOf(s.err)
	}

	if pk.Strategy == StrategyEntropy {
		return pk.pickByEntropy(cands, n, rng)
	}

	// Assign each candidate to a bucket.
	buckets := make([][]*pool.Entry, k)
	knn := pk.KNN
	if knn <= 0 {
		knn = 3
	}
	for _, e := range cands {
		var b int
		if e.GT >= 0 {
			b = bucketOf(metrics.QError(m.Estimate(e.Pred), e.GT))
		} else {
			b = knnBucket(e, ref, refBuckets, knn, k)
		}
		buckets[b] = append(buckets[b], e)
	}
	// Round-robin stratified sample with replacement.
	var nonEmpty []int
	for b := range buckets {
		if len(buckets[b]) > 0 {
			nonEmpty = append(nonEmpty, b)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	picked := make([]*pool.Entry, 0, n)
	for i := 0; i < n; i++ {
		b := nonEmpty[i%len(nonEmpty)]
		bk := buckets[b]
		picked = append(picked, bk[rng.Intn(len(bk))])
	}
	return dedup(picked)
}

// refEntry is a labeled reference record with its current CE q-error.
type refEntry struct {
	e   *pool.Entry
	err float64
}

// knnBucket votes the candidate into the majority bucket of its k nearest
// labeled reference entries by embedding distance.
func knnBucket(e *pool.Entry, ref []refEntry, refBuckets []int, knn, k int) int {
	type dist struct {
		d float64
		b int
	}
	ds := make([]dist, 0, len(ref))
	for i, r := range ref {
		ds = append(ds, dist{embedDist(e.Z, r.e.Z), refBuckets[i]})
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	if knn > len(ds) {
		knn = len(ds)
	}
	votes := make([]int, k)
	for i := 0; i < knn; i++ {
		votes[ds[i].b]++
	}
	best := 0
	for b, v := range votes {
		if v > votes[best] {
			best = b
		}
	}
	return best
}

func embedDist(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.Inf(1)
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// dedup removes duplicate entries while preserving order.
func dedup(entries []*pool.Entry) []*pool.Entry {
	seen := make(map[*pool.Entry]bool, len(entries))
	out := entries[:0]
	for _, e := range entries {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// entropy helper kept close to the discriminator's 3-class output for tests.
func discEntropy(logits []float64) float64 {
	probs := nn.Softmax(logits)
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}
