package warper

import (
	"context"
	"strings"

	"warper/internal/ce"
	"warper/internal/drift"
	"warper/internal/metrics"
	"warper/internal/query"
)

// Mode is the det_drft output: a bitmask of the drift cases from Table 2.
type Mode uint8

// Drift modes. Multiple bits may be set when drifts co-occur.
const (
	// ModeNone means no drift detected; Warper keeps using 𝕄 as-is.
	ModeNone Mode = 0
	// C1 is a data drift: cardinality labels are outdated.
	C1 Mode = 1 << iota
	// C2 is a workload drift with inadequate incoming queries (n_t < γ).
	C2
	// C3 is a workload drift with inadequate labels (n_a < γ).
	C3
	// C4 is a workload drift with adequate labeled queries.
	C4
)

// Has reports whether every bit of m2 is set in m.
func (m Mode) Has(m2 Mode) bool { return m&m2 == m2 }

// String renders the mode as the paper's case labels.
func (m Mode) String() string {
	if m == ModeNone {
		return "none"
	}
	var parts []string
	if m.Has(C1) {
		parts = append(parts, "c1")
	}
	if m.Has(C2) {
		parts = append(parts, "c2")
	}
	if m.Has(C3) {
		parts = append(parts, "c3")
	}
	if m.Has(C4) {
		parts = append(parts, "c4")
	}
	return strings.Join(parts, "|")
}

// Arrival is one newly observed query: a predicate with an optional
// execution-feedback cardinality.
type Arrival struct {
	Pred  query.Predicate
	GT    float64
	HasGT bool
}

// detector implements det_drft (§3.1).
type detector struct {
	cfg       Config
	sch       *query.Schema
	telemetry *drift.DataTelemetry
	// trainPreds is the reference workload 𝕀train for δ_js.
	trainPreds []query.Predicate
	// trainGMQ is the error observed during training; the δ_m gap is
	// measured against it.
	trainGMQ float64
	// pi is the adaptive threshold π.
	pi float64
	// gamma is the adaptive γ.
	gamma int
	// pendingC1 keeps the c1 bit set across periods while the pool still
	// holds stale labels from an earlier data drift; a single annotation
	// budget rarely refreshes them all.
	pendingC1 bool
	// floorCache memoizes the same-distribution δ_js noise floor by sample
	// size.
	floorCache map[int]float64
}

// Detection carries everything det_drft measured, for reporting.
type Detection struct {
	Mode    Mode
	DeltaM  float64
	DeltaJS float64
	NT      int // arrivals this period (n_t)
	NA      int // labeled arrivals this period
	// FreshC1 is true when telemetry newly detected the data drift this
	// period (as opposed to a pending continuation); only a fresh c1
	// invalidates the pool's labels.
	FreshC1 bool
	// TelemetryDegraded is true when the canary probes failed and data-drift
	// detection fell back to the changed-row signal alone.
	TelemetryDegraded bool
}

// detect classifies the ongoing drift from this period's arrivals. recent
// holds earlier labeled arrivals still representative of the new workload;
// they widen the δ_m evaluation window so a 10-query period does not decide
// drift presence alone. Canary-probe failures degrade (detection proceeds on
// the δ_m/δ_js/changed-row signals, with Detection.TelemetryDegraded set);
// only a cancelled ctx aborts.
func (d *detector) detect(ctx context.Context, arrivals []Arrival, recent []query.Labeled, m ce.Estimator, cnt drift.Counter, changedFraction float64) (Detection, error) {
	det := Detection{NT: len(arrivals)}
	// δ_m: evaluation error of 𝕄 on arrivals that carry execution feedback,
	// padded with the recent-arrival window.
	var ests, acts []float64
	var newPreds []query.Predicate
	for _, a := range arrivals {
		newPreds = append(newPreds, a.Pred)
		if a.HasGT {
			det.NA++
			ests = append(ests, m.Estimate(a.Pred))
			acts = append(acts, a.GT)
		}
	}
	for _, lq := range recent {
		ests = append(ests, m.Estimate(lq.Pred))
		acts = append(acts, lq.Card)
	}
	if len(ests) > 0 {
		gmq := gmqOf(ests, acts)
		det.DeltaM = gmq - d.trainGMQ
		if det.DeltaM < 0 {
			det.DeltaM = 0
		}
	}
	// δ_js against the original training workload. Small samples bias δ_js
	// upward (sparse histograms), so the observed divergence is compared
	// against a same-distribution noise floor measured between two disjoint
	// training subsets, with all three sets subsampled to a common size so
	// the bias cancels.
	var jsExcess float64
	if len(newPreds) > 0 && len(d.trainPreds) >= 4 {
		m := len(newPreds)
		if half := len(d.trainPreds) / 2; m > half {
			m = half
		}
		if m > 200 {
			m = 200
		}
		half1 := d.trainPreds[:m]
		half2 := d.trainPreds[len(d.trainPreds)-m:]
		obsNew := newPreds
		if len(obsNew) > m {
			obsNew = obsNew[:m]
		}
		det.DeltaJS = drift.DeltaJS(obsNew, half1, d.sch, drift.DefaultJSConfig())
		jsExcess = det.DeltaJS - d.jsNoiseFloor(m, half1, half2)
		if jsExcess < 0 {
			jsExcess = 0
		}
	}

	// Data drift from telemetry (changed rows and/or canaries), or a
	// pending data drift whose stale labels are still being re-annotated
	// across periods.
	freshC1 := false
	if d.telemetry != nil {
		var err error
		freshC1, err = d.telemetry.Detect(ctx, changedFraction, cnt)
		if err != nil {
			if ctx.Err() != nil {
				return det, ctx.Err()
			}
			// Best effort: a flaky source must not silence the whole
			// detector — the changed-row fraction already fired inside
			// Detect if it crossed its threshold, and δ_m/δ_js below
			// need no annotation.
			det.TelemetryDegraded = true
			freshC1 = false
		}
	}
	det.FreshC1 = freshC1
	dataDrift := freshC1 || d.pendingC1
	// Workload drift: the model's error gap exceeds π, or the intrinsic
	// distribution distance is large. During a data drift a high δ_m is
	// explained by the outdated labels, so only δ_js indicates a
	// simultaneous workload change (Table 2: c1 is "unchanged workload").
	wkldDrift := jsExcess > d.cfg.JSThreshold
	if !dataDrift && det.DeltaM > d.pi {
		wkldDrift = true
	}

	if dataDrift {
		det.Mode |= C1
	}
	if wkldDrift {
		switch {
		case det.NT < d.gamma && det.NA < d.gamma:
			det.Mode |= C2
			if det.NA < det.NT {
				// Labels also lag behind the (already scarce) arrivals.
				det.Mode |= C3
			}
		case det.NA < d.gamma:
			det.Mode |= C3
		default:
			det.Mode |= C4
		}
	}
	return det, nil
}

func gmqOf(ests, acts []float64) float64 { return metrics.GMQ(ests, acts) }

// jsNoiseFloor returns the δ_js expected between two same-distribution
// samples of size m, measured on disjoint training subsets and cached per
// sample size.
func (d *detector) jsNoiseFloor(m int, half1, half2 []query.Predicate) float64 {
	if d.floorCache == nil {
		d.floorCache = map[int]float64{}
	}
	if v, ok := d.floorCache[m]; ok {
		return v
	}
	v := drift.DeltaJS(half1, half2, d.sch, drift.DefaultJSConfig())
	d.floorCache[m] = v
	return v
}
