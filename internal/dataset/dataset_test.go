package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableBasics(t *testing.T) {
	tbl := NewTable("t",
		&Column{Name: "a", Type: Real, Vals: []float64{1, 2, 3}},
		&Column{Name: "b", Type: Categorical, Vals: []float64{0, 1, 0}},
	)
	if tbl.NumRows() != 3 || tbl.NumCols() != 2 {
		t.Fatalf("dims = %d,%d", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Col("a") == nil || tbl.Col("z") != nil {
		t.Error("Col lookup wrong")
	}
	if tbl.ColIndex("b") != 1 || tbl.ColIndex("z") != -1 {
		t.Error("ColIndex wrong")
	}
	row := tbl.Row(1, nil)
	if row[0] != 2 || row[1] != 1 {
		t.Errorf("Row = %v", row)
	}
	mins, maxs := tbl.Ranges()
	if mins[0] != 1 || maxs[0] != 3 || mins[1] != 0 || maxs[1] != 1 {
		t.Errorf("Ranges = %v %v", mins, maxs)
	}
}

func TestNewTableRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("t",
		&Column{Name: "a", Vals: []float64{1}},
		&Column{Name: "b", Vals: []float64{1, 2}},
	)
}

func TestColumnStats(t *testing.T) {
	c := &Column{Name: "x", Vals: []float64{5, 1, 5, 3}}
	if c.Min() != 1 || c.Max() != 5 {
		t.Errorf("min/max = %v/%v", c.Min(), c.Max())
	}
	if c.DistinctCount() != 3 {
		t.Errorf("distinct = %d", c.DistinctCount())
	}
	empty := &Column{Name: "e"}
	if empty.Min() != 0 || empty.Max() != 0 || empty.DistinctCount() != 0 {
		t.Error("empty column stats wrong")
	}
}

func TestSortByColumn(t *testing.T) {
	tbl := NewTable("t",
		&Column{Name: "k", Vals: []float64{3, 1, 2}},
		&Column{Name: "v", Vals: []float64{30, 10, 20}},
	)
	v0 := tbl.Version
	tbl.SortByColumn(0)
	if tbl.Cols[0].Vals[0] != 1 || tbl.Cols[0].Vals[2] != 3 {
		t.Errorf("sort keys = %v", tbl.Cols[0].Vals)
	}
	// Row alignment preserved.
	if tbl.Cols[1].Vals[0] != 10 || tbl.Cols[1].Vals[2] != 30 {
		t.Errorf("sort values = %v", tbl.Cols[1].Vals)
	}
	if tbl.Version == v0 {
		t.Error("Version not bumped")
	}
}

func TestTruncateAndAppend(t *testing.T) {
	tbl := NewTable("t", &Column{Name: "a", Vals: []float64{1, 2, 3, 4}})
	tbl.Truncate(2)
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.ChangedRows != 2 {
		t.Errorf("ChangedRows = %d, want 2", tbl.ChangedRows)
	}
	tbl.AppendRow([]float64{9})
	if tbl.NumRows() != 3 || tbl.Cols[0].Vals[2] != 9 {
		t.Error("append failed")
	}
	tbl.ResetChangeTracking()
	if tbl.ChangedFraction() != 0 {
		t.Error("reset failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	tbl := NewTable("t", &Column{Name: "a", Vals: []float64{1, 2}})
	c := tbl.Clone()
	c.Cols[0].Vals[0] = 99
	if tbl.Cols[0].Vals[0] != 1 {
		t.Error("Clone aliases data")
	}
}

func TestHiggsProfile(t *testing.T) {
	tbl := Higgs(5000, rand.New(rand.NewSource(1)))
	if tbl.NumCols() != 8 {
		t.Fatalf("higgs cols = %d, want 8", tbl.NumCols())
	}
	if tbl.NumRows() != 5000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	for _, c := range tbl.Cols {
		if c.Type != Real {
			t.Errorf("col %s type = %v, want real", c.Name, c.Type)
		}
		// Continuous columns should have very high distinctness.
		if c.DistinctCount() < 4000 {
			t.Errorf("col %s distinct = %d, want near-unique", c.Name, c.DistinctCount())
		}
	}
}

func TestPRSAProfile(t *testing.T) {
	tbl := PRSA(5000, rand.New(rand.NewSource(2)))
	if tbl.NumCols() != 9 {
		t.Fatalf("prsa cols = %d, want 9", tbl.NumCols())
	}
	var nReal, nCat, nDate int
	for _, c := range tbl.Cols {
		switch c.Type {
		case Real:
			nReal++
		case Categorical:
			nCat++
		case Date:
			nDate++
		}
	}
	if nReal != 6 || nCat != 2 || nDate != 1 {
		t.Errorf("type mix = %d real, %d cat, %d date; want 6/2/1", nReal, nCat, nDate)
	}
	if d := tbl.Col("station").DistinctCount(); d > 5 {
		t.Errorf("station distinct = %d, want <=5", d)
	}
	// Seasonality: temperature range should span tens of degrees.
	temp := tbl.Col("temp")
	if temp.Max()-temp.Min() < 20 {
		t.Errorf("temp range = %v, want seasonal spread", temp.Max()-temp.Min())
	}
}

func TestPokerProfile(t *testing.T) {
	tbl := Poker(5000, rand.New(rand.NewSource(3)))
	if tbl.NumCols() != 11 {
		t.Fatalf("poker cols = %d, want 11", tbl.NumCols())
	}
	for _, c := range tbl.Cols {
		if c.Type != Categorical {
			t.Errorf("col %s type = %v, want categorical", c.Name, c.Type)
		}
		if d := c.DistinctCount(); d > 13 {
			t.Errorf("col %s distinct = %d, want <=13", c.Name, d)
		}
	}
	// Hand classes concentrate on high-card/pair as in the real dataset.
	class := tbl.Col("class")
	low := 0
	for _, v := range class.Vals {
		if v <= 1 {
			low++
		}
	}
	if float64(low)/float64(len(class.Vals)) < 0.8 {
		t.Errorf("only %d/%d hands are class<=1", low, len(class.Vals))
	}
}

func TestByName(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, name := range []string{"higgs", "prsa", "poker"} {
		tbl := ByName(name, rng)
		if tbl.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, tbl.Name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown name")
		}
	}()
	ByName("nope", rng)
}

func TestAppendDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := PRSA(2000, rng)
	n0 := tbl.NumRows()
	AppendDrift(tbl, 0.2, 1.0, rng)
	if tbl.NumRows() != n0+n0/5 {
		t.Errorf("rows after append = %d, want %d", tbl.NumRows(), n0+n0/5)
	}
	if tbl.ChangedFraction() < 0.15 {
		t.Errorf("ChangedFraction = %v", tbl.ChangedFraction())
	}
}

func TestUpdateDriftShiftsValues(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tbl := Higgs(2000, rng)
	before := tbl.Clone()
	UpdateDrift(tbl, 1.0, 1.0, rng)
	diff := 0
	for i, v := range tbl.Cols[0].Vals {
		if v != before.Cols[0].Vals[i] {
			diff++
		}
	}
	if diff < 1000 {
		t.Errorf("only %d rows changed after full update drift", diff)
	}
	if tbl.ChangedFraction() < 0.5 {
		t.Errorf("ChangedFraction = %v", tbl.ChangedFraction())
	}
}

func TestSortTruncateHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := Higgs(1000, rng)
	maxBefore := tbl.Cols[0].Max()
	SortTruncateHalf(tbl, 0)
	if tbl.NumRows() != 500 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// Kept the lower half → max of sort column must drop.
	if tbl.Cols[0].Max() >= maxBefore {
		t.Error("truncation did not change data distribution")
	}
}

// Property: generated tables always have rectangular shape and finite values.
func TestGeneratorsRectangular(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		names := []string{"higgs", "prsa", "poker"}
		var tbl *Table
		switch names[int(pick)%3] {
		case "higgs":
			tbl = Higgs(200, rng)
		case "prsa":
			tbl = PRSA(200, rng)
		default:
			tbl = Poker(200, rng)
		}
		n := tbl.NumRows()
		for _, c := range tbl.Cols {
			if len(c.Vals) != n {
				return false
			}
			for _, v := range c.Vals {
				if v != v { // NaN
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}
