// Package dataset provides the in-memory columnar tables that Warper's
// annotator scans for ground-truth cardinalities, plus synthetic generators
// whose column-type signatures match the paper's evaluation datasets
// (Table 4: Higgs, PRSA, Poker) and data-drift operators (append, update,
// sort-and-truncate) used in the c1 experiments.
package dataset

import (
	"fmt"
	"sort"
)

// ColType classifies a column. Dates are stored as numeric day offsets and
// categorical values as integer dictionary identifiers, following §4.1 of the
// paper ("for columns with categorical values, predicates are integer
// dictionary identifiers").
type ColType int

// Column types.
const (
	Real ColType = iota
	Categorical
	Date
)

// String returns a human-readable column type.
func (t ColType) String() string {
	switch t {
	case Real:
		return "real"
	case Categorical:
		return "categorical"
	case Date:
		return "date"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column is a single named column stored densely as float64.
type Column struct {
	Name string
	Type ColType
	Vals []float64
}

// Min returns the minimum value; 0 for an empty column.
func (c *Column) Min() float64 {
	if len(c.Vals) == 0 {
		return 0
	}
	m := c.Vals[0]
	for _, v := range c.Vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum value; 0 for an empty column.
func (c *Column) Max() float64 {
	if len(c.Vals) == 0 {
		return 0
	}
	m := c.Vals[0]
	for _, v := range c.Vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// DistinctCount returns the number of distinct values in the column.
func (c *Column) DistinctCount() int {
	seen := make(map[float64]struct{}, 64)
	for _, v := range c.Vals {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name string
	Cols []*Column
	// Version increments on every mutation, giving the drift detector the
	// "database telemetry" signal from §3.1.
	Version int
	// ChangedRows counts rows appended or updated since the last
	// ResetChangeTracking, as a fraction feed for data-drift detection.
	ChangedRows int
}

// NewTable builds a table and validates that all columns have equal length.
func NewTable(name string, cols ...*Column) *Table {
	t := &Table{Name: name, Cols: cols}
	if len(cols) > 0 {
		n := len(cols[0].Vals)
		for _, c := range cols[1:] {
			if len(c.Vals) != n {
				panic(fmt.Sprintf("dataset: column %q has %d rows, want %d", c.Name, len(c.Vals), n))
			}
		}
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return len(t.Cols[0].Vals)
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Cols) }

// Col returns the column with the given name, or nil.
func (t *Table) Col(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Ranges returns per-column (min, max) pairs, used to normalize predicates.
func (t *Table) Ranges() (mins, maxs []float64) {
	mins = make([]float64, len(t.Cols))
	maxs = make([]float64, len(t.Cols))
	for i, c := range t.Cols {
		mins[i] = c.Min()
		maxs[i] = c.Max()
	}
	return mins, maxs
}

// Row copies row i into dst (allocated if nil) and returns it.
func (t *Table) Row(i int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(t.Cols))
	}
	for j, c := range t.Cols {
		dst[j] = c.Vals[i]
	}
	return dst
}

// ResetChangeTracking clears the changed-row counter after the drift
// detector has consumed it.
func (t *Table) ResetChangeTracking() { t.ChangedRows = 0 }

// ChangedFraction reports the fraction of current rows changed since the
// last reset.
func (t *Table) ChangedFraction() float64 {
	n := t.NumRows()
	if n == 0 {
		return 0
	}
	f := float64(t.ChangedRows) / float64(n)
	if f > 1 {
		f = 1
	}
	return f
}

// SortByColumn stably sorts all rows of the table by the given column index,
// ascending. Used by the paper's c1 data-drift construction.
func (t *Table) SortByColumn(col int) {
	n := t.NumRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	key := t.Cols[col].Vals
	sort.SliceStable(idx, func(a, b int) bool { return key[idx[a]] < key[idx[b]] })
	for _, c := range t.Cols {
		out := make([]float64, n)
		for i, j := range idx {
			out[i] = c.Vals[j]
		}
		c.Vals = out
	}
	t.Version++
}

// Truncate keeps only the first n rows.
func (t *Table) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	cur := t.NumRows()
	if n >= cur {
		return
	}
	for _, c := range t.Cols {
		c.Vals = c.Vals[:n]
	}
	t.Version++
	t.ChangedRows += cur - n
}

// AppendRow appends one row (len must equal NumCols).
func (t *Table) AppendRow(row []float64) {
	if len(row) != len(t.Cols) {
		panic(fmt.Sprintf("dataset: AppendRow got %d values for %d columns", len(row), len(t.Cols)))
	}
	for j, c := range t.Cols {
		c.Vals = append(c.Vals, row[j])
	}
	t.Version++
	t.ChangedRows++
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	cols := make([]*Column, len(t.Cols))
	for i, c := range t.Cols {
		vals := make([]float64, len(c.Vals))
		copy(vals, c.Vals)
		cols[i] = &Column{Name: c.Name, Type: c.Type, Vals: vals}
	}
	return &Table{Name: t.Name, Cols: cols, Version: t.Version}
}
