package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV loading lets users run the library on their own data: the original
// UCI datasets the paper evaluates (Higgs, PRSA, Poker) ship as CSV, so a
// deployment with those files reproduces the paper's exact setup.

// CSVOptions controls parsing.
type CSVOptions struct {
	// HasHeader treats the first row as column names (default true when the
	// first row fails to parse as numbers).
	HasHeader bool
	// Types assigns column types by name; unlisted columns default to Real,
	// except that non-numeric columns are dictionary-encoded as Categorical
	// automatically.
	Types map[string]ColType
	// MaxRows truncates the load (0 = unlimited).
	MaxRows int
}

// FromCSV reads a table from CSV. Non-numeric column values are
// dictionary-encoded into integer categorical ids, matching §4.1 of the
// paper ("for columns with categorical values, predicates are integer
// dictionary identifiers").
func FromCSV(name string, r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	header := make([]string, len(first))
	var pending [][]string
	if opts.HasHeader || !allNumeric(first) {
		copy(header, first)
	} else {
		for i := range header {
			header[i] = fmt.Sprintf("col%d", i)
		}
		pending = append(pending, first)
	}

	nCols := len(header)
	raw := make([][]string, nCols)
	addRow := func(rec []string) error {
		if len(rec) != nCols {
			return fmt.Errorf("dataset: row has %d fields, want %d", len(rec), nCols)
		}
		for i, v := range rec {
			raw[i] = append(raw[i], strings.TrimSpace(v))
		}
		return nil
	}
	for _, rec := range pending {
		if err := addRow(rec); err != nil {
			return nil, err
		}
	}
	rows := len(pending)
	for opts.MaxRows == 0 || rows < opts.MaxRows {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv: %w", err)
		}
		if err := addRow(rec); err != nil {
			return nil, err
		}
		rows++
	}

	cols := make([]*Column, nCols)
	for i := 0; i < nCols; i++ {
		wantType, typed := Real, false
		if opts.Types != nil {
			if t, ok := opts.Types[header[i]]; ok {
				wantType, typed = t, true
			}
		}
		vals, numeric := parseNumeric(raw[i])
		switch {
		case typed && wantType == Categorical, !numeric:
			cols[i] = &Column{Name: header[i], Type: Categorical, Vals: dictEncode(raw[i])}
		case typed:
			cols[i] = &Column{Name: header[i], Type: wantType, Vals: vals}
		default:
			cols[i] = &Column{Name: header[i], Type: Real, Vals: vals}
		}
	}
	return NewTable(name, cols...), nil
}

func allNumeric(rec []string) bool {
	for _, v := range rec {
		if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err != nil {
			return false
		}
	}
	return true
}

func parseNumeric(vals []string) ([]float64, bool) {
	out := make([]float64, len(vals))
	for i, v := range vals {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, false
		}
		out[i] = f
	}
	return out, true
}

// dictEncode maps distinct strings to integer ids in first-seen order.
func dictEncode(vals []string) []float64 {
	dict := make(map[string]float64)
	out := make([]float64, len(vals))
	for i, v := range vals {
		id, ok := dict[v]
		if !ok {
			id = float64(len(dict))
			dict[v] = id
		}
		out[i] = id
	}
	return out
}
