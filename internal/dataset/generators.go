package dataset

import (
	"math"
	"math/rand"
)

// The generators below synthesize tables whose column-type signature,
// correlation structure, skew and distinct-count profile mirror the paper's
// Table 4 datasets. Row counts are scaled down (documented substitution in
// DESIGN.md): the adaptation experiments compare methods on the *same* table,
// so uniformly scaling rows preserves every relative result while keeping
// ground-truth annotation laptop-fast.

// DefaultRows are the scaled row counts used across experiments.
const (
	HiggsRows = 40000
	PRSARows  = 20000
	PokerRows = 30000
)

// Higgs generates a Higgs-like table: 8 real-valued physics features with
// heavy tails and pairwise correlations (the original has 11M rows of
// continuous collider features with distinct counts up to 290K).
func Higgs(rows int, rng *rand.Rand) *Table {
	if rows <= 0 {
		rows = HiggsRows
	}
	cols := make([]*Column, 8)
	names := []string{"lepton_pt", "lepton_eta", "missing_energy", "jet1_pt",
		"jet1_eta", "m_jj", "m_jjj", "m_bb"}
	for i := range cols {
		cols[i] = &Column{Name: names[i], Type: Real, Vals: make([]float64, rows)}
	}
	for r := 0; r < rows; r++ {
		// Two latent event classes (signal/background) induce correlations.
		signal := rng.Float64() < 0.5
		base := rng.NormFloat64()
		shift := 0.0
		if signal {
			shift = 1.2
		}
		// Transverse momenta: log-normal-ish heavy tails.
		leptonPt := math.Exp(0.5*base + 0.4*rng.NormFloat64() + shift*0.3)
		jetPt := math.Exp(0.5*base + 0.5*rng.NormFloat64() + shift*0.2)
		missing := math.Abs(2*base + rng.NormFloat64() + shift)
		eta1 := rng.NormFloat64() * 1.2
		eta2 := eta1*0.4 + rng.NormFloat64()
		mjj := 1 + math.Abs(jetPt*0.8+rng.NormFloat64()*0.7)
		mjjj := mjj + math.Abs(rng.NormFloat64())
		mbb := 0.5*leptonPt + math.Abs(rng.NormFloat64())*1.5 + shift

		vals := []float64{leptonPt, eta1, missing, jetPt, eta2, mjj, mjjj, mbb}
		for i := range cols {
			cols[i].Vals[r] = vals[i]
		}
	}
	return NewTable("higgs", cols...)
}

// PRSA generates a PRSA-like (Beijing air-quality) table: one date column,
// six real measurement columns with strong seasonality and autocorrelation,
// and two categorical columns (station, wind direction) — matching the
// original's 1 date + 6 real + 2 categorical signature.
func PRSA(rows int, rng *rand.Rand) *Table {
	if rows <= 0 {
		rows = PRSARows
	}
	mk := func(name string, t ColType) *Column {
		return &Column{Name: name, Type: t, Vals: make([]float64, rows)}
	}
	day := mk("day", Date)
	pm25 := mk("pm25", Real)
	dewp := mk("dewp", Real)
	temp := mk("temp", Real)
	pres := mk("pres", Real)
	wspd := mk("wspd", Real)
	rain := mk("rain", Real)
	station := mk("station", Categorical)
	winddir := mk("wind_dir", Categorical)

	pollution := 60.0 // AR(1) latent pollution level
	for r := 0; r < rows; r++ {
		d := float64(r) / float64(rows) * 1460 // four simulated years
		season := math.Sin(2 * math.Pi * d / 365)
		pollution = 0.95*pollution + 0.05*(80-40*season) + rng.NormFloat64()*8
		if pollution < 1 {
			pollution = 1
		}
		day.Vals[r] = math.Floor(d)
		pm25.Vals[r] = pollution * math.Exp(rng.NormFloat64()*0.3)
		temp.Vals[r] = 12 + 14*season + rng.NormFloat64()*4
		dewp.Vals[r] = temp.Vals[r] - 5 - math.Abs(rng.NormFloat64()*4)
		pres.Vals[r] = 1015 - 8*season + rng.NormFloat64()*4
		wspd.Vals[r] = math.Abs(rng.NormFloat64() * 12)
		if rng.Float64() < 0.85 {
			rain.Vals[r] = 0
		} else {
			rain.Vals[r] = math.Abs(rng.NormFloat64() * 5)
		}
		station.Vals[r] = float64(rng.Intn(5))
		// Wind direction correlates with season.
		if season > 0 {
			winddir.Vals[r] = float64(rng.Intn(8))
		} else {
			winddir.Vals[r] = float64(rng.Intn(4))
		}
	}
	return NewTable("prsa", day, pm25, dewp, temp, pres, wspd, rain, station, winddir)
}

// Poker generates a Poker-hand-like table: 11 categorical columns — five
// (suit, rank) card pairs plus the hand class — with the original's tiny
// distinct counts (4 suits, 13 ranks, 10 classes).
func Poker(rows int, rng *rand.Rand) *Table {
	if rows <= 0 {
		rows = PokerRows
	}
	cols := make([]*Column, 11)
	for i := 0; i < 5; i++ {
		cols[2*i] = &Column{Name: suitName(i), Type: Categorical, Vals: make([]float64, rows)}
		cols[2*i+1] = &Column{Name: rankName(i), Type: Categorical, Vals: make([]float64, rows)}
	}
	cols[10] = &Column{Name: "class", Type: Categorical, Vals: make([]float64, rows)}
	for r := 0; r < rows; r++ {
		ranks := make([]int, 5)
		suits := make([]int, 5)
		for i := 0; i < 5; i++ {
			suits[i] = rng.Intn(4) + 1
			ranks[i] = rng.Intn(13) + 1
			cols[2*i].Vals[r] = float64(suits[i])
			cols[2*i+1].Vals[r] = float64(ranks[i])
		}
		cols[10].Vals[r] = float64(pokerClass(suits, ranks))
	}
	return NewTable("poker", cols...)
}

func suitName(i int) string { return "s" + string(rune('1'+i)) }
func rankName(i int) string { return "c" + string(rune('1'+i)) }

// pokerClass assigns a coarse hand class (0 = high card .. 9) using a
// simplified ranking; only the distribution shape matters here.
func pokerClass(suits, ranks []int) int {
	counts := map[int]int{}
	for _, r := range ranks {
		counts[r]++
	}
	flush := true
	for _, s := range suits[1:] {
		if s != suits[0] {
			flush = false
			break
		}
	}
	pairs, trips, quads := 0, 0, 0
	for _, c := range counts {
		switch c {
		case 2:
			pairs++
		case 3:
			trips++
		case 4:
			quads++
		}
	}
	switch {
	case quads == 1:
		return 7
	case trips == 1 && pairs == 1:
		return 6
	case flush:
		return 5
	case trips == 1:
		return 3
	case pairs == 2:
		return 2
	case pairs == 1:
		return 1
	default:
		return 0
	}
}

// ByName builds one of the three evaluation tables by dataset name
// ("higgs", "prsa", "poker") with the default scaled row count.
func ByName(name string, rng *rand.Rand) *Table {
	switch name {
	case "higgs":
		return Higgs(0, rng)
	case "prsa":
		return PRSA(0, rng)
	case "poker":
		return Poker(0, rng)
	default:
		panic("dataset: unknown dataset " + name)
	}
}
