package dataset

import (
	"strings"
	"testing"
)

func TestFromCSVWithHeader(t *testing.T) {
	in := "a,b,city\n1,2.5,rome\n3,4.5,oslo\n5,6.5,rome\n"
	tbl, err := FromCSV("t", strings.NewReader(in), CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 || tbl.NumCols() != 3 {
		t.Fatalf("dims = %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Col("a").Type != Real || tbl.Col("city").Type != Categorical {
		t.Error("type inference wrong")
	}
	// Dictionary encoding: rome=0, oslo=1, rome=0.
	city := tbl.Col("city").Vals
	if city[0] != 0 || city[1] != 1 || city[2] != 0 {
		t.Errorf("dict encoding = %v", city)
	}
	if tbl.Col("b").Vals[1] != 4.5 {
		t.Error("numeric parse wrong")
	}
}

func TestFromCSVHeaderAutodetect(t *testing.T) {
	// No header: the first all-numeric row is data.
	in := "1,2\n3,4\n"
	tbl, err := FromCSV("t", strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", tbl.NumRows())
	}
	if tbl.Cols[0].Name != "col0" {
		t.Errorf("generated name = %q", tbl.Cols[0].Name)
	}
}

func TestFromCSVExplicitTypes(t *testing.T) {
	in := "day,kind\n100,1\n101,2\n"
	tbl, err := FromCSV("t", strings.NewReader(in), CSVOptions{
		HasHeader: true,
		Types:     map[string]ColType{"day": Date, "kind": Categorical},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Col("day").Type != Date {
		t.Error("explicit Date type ignored")
	}
	if tbl.Col("kind").Type != Categorical {
		t.Error("explicit Categorical type ignored")
	}
	// Numeric categorical values are dictionary-encoded.
	if tbl.Col("kind").Vals[0] != 0 || tbl.Col("kind").Vals[1] != 1 {
		t.Errorf("categorical encoding = %v", tbl.Col("kind").Vals)
	}
}

func TestFromCSVMaxRows(t *testing.T) {
	in := "a\n1\n2\n3\n4\n"
	tbl, err := FromCSV("t", strings.NewReader(in), CSVOptions{HasHeader: true, MaxRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", tbl.NumRows())
	}
}

func TestFromCSVRaggedRowFails(t *testing.T) {
	in := "a,b\n1,2\n3\n"
	if _, err := FromCSV("t", strings.NewReader(in), CSVOptions{HasHeader: true}); err == nil {
		t.Fatal("expected error for ragged row")
	}
}

func TestFromCSVEmptyInputFails(t *testing.T) {
	if _, err := FromCSV("t", strings.NewReader(""), CSVOptions{}); err == nil {
		t.Fatal("expected error for empty input")
	}
}
