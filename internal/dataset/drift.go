package dataset

import (
	"math"
	"math/rand"
)

// Data-drift operators implementing the constructions in §2 and §4.1.2 of
// the paper: appends, in-place updates, and the sort-then-truncate-half
// construction used for the c1 experiments.

// AppendDrift appends frac·NumRows new rows drawn by resampling existing rows
// and shifting real columns by `shift` standard deviations, modelling the
// paper's "20% of the rows are appended" scenario.
func AppendDrift(t *Table, frac, shift float64, rng *rand.Rand) {
	n := t.NumRows()
	if n == 0 || frac <= 0 {
		return
	}
	// Precompute per-column std for the shift.
	stds := make([]float64, len(t.Cols))
	for j, c := range t.Cols {
		stds[j] = colStd(c.Vals)
	}
	add := int(float64(n) * frac)
	row := make([]float64, len(t.Cols))
	for i := 0; i < add; i++ {
		src := rng.Intn(n)
		t.Row(src, row)
		for j, c := range t.Cols {
			if c.Type == Real || c.Type == Date {
				row[j] += shift * stds[j] * (0.5 + rng.Float64())
			} else if rng.Float64() < 0.3 {
				// Occasionally remap categorical values.
				row[j] = c.Vals[rng.Intn(n)]
			}
		}
		t.AppendRow(row)
	}
}

// UpdateDrift perturbs frac·NumRows randomly chosen rows in place: real
// columns get Gaussian noise scaled by their std, categorical columns are
// resampled. This models the paper's "100% of the rows are updated" scenario.
func UpdateDrift(t *Table, frac, noise float64, rng *rand.Rand) {
	n := t.NumRows()
	if n == 0 || frac <= 0 {
		return
	}
	stds := make([]float64, len(t.Cols))
	for j, c := range t.Cols {
		stds[j] = colStd(c.Vals)
	}
	count := int(float64(n) * frac)
	for i := 0; i < count; i++ {
		r := rng.Intn(n)
		for j, c := range t.Cols {
			if c.Type == Real || c.Type == Date {
				c.Vals[r] += rng.NormFloat64() * noise * stds[j]
			} else if rng.Float64() < 0.5 {
				c.Vals[r] = c.Vals[rng.Intn(n)]
			}
		}
		t.ChangedRows++
	}
	t.Version++
}

// SortTruncateHalf sorts the table by the given column and keeps the lower
// half — the exact c1 data-drift construction from §4.1.2 ("we sort the
// dataset by one column and truncate the table in half to differentiate the
// data distributions").
func SortTruncateHalf(t *Table, col int) {
	t.SortByColumn(col)
	t.Truncate(t.NumRows() / 2)
}

func colStd(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var s float64
	for _, v := range vals {
		d := v - mean
		s += d * d
	}
	return math.Sqrt(s / float64(len(vals)))
}
