// Package kernel implements kernel ridge regression (KRR) with polynomial
// and radial-basis-function kernels. It backs the LM-ply and LM-rbf
// cardinality-estimator variants from §4.1.2 of the Warper paper.
//
// Substitution note (documented in DESIGN.md): the paper uses sklearn SVR
// with 5-degree polynomial and RBF kernels. KRR is the least-squares sibling
// of SVR over the same kernels — a kernel regressor that must be re-trained
// from scratch on model updates, which is the only property Warper's
// adaptation loop depends on.
package kernel

import (
	"fmt"
	"math"
	"math/rand"

	"warper/internal/parallel"
)

// Kernel computes k(x, y) for two feature vectors.
type Kernel interface {
	Eval(x, y []float64) float64
	Name() string
}

// RBF is the Gaussian kernel exp(−γ‖x−y‖²).
type RBF struct{ Gamma float64 }

// Eval implements Kernel.
func (k RBF) Eval(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Exp(-k.Gamma * s)
}

// Name implements Kernel.
func (k RBF) Name() string { return "rbf" }

// Polynomial is (γ·x·y + c)^d. The paper's LM-ply uses degree 5.
type Polynomial struct {
	Degree int
	Gamma  float64
	Coef0  float64
}

// Eval implements Kernel.
func (k Polynomial) Eval(x, y []float64) float64 {
	var dot float64
	for i := range x {
		dot += x[i] * y[i]
	}
	return math.Pow(k.Gamma*dot+k.Coef0, float64(k.Degree))
}

// Name implements Kernel.
func (k Polynomial) Name() string { return "poly" }

// Config controls KRR fitting.
type Config struct {
	Kernel     Kernel
	Lambda     float64 // ridge regularization strength
	MaxAnchors int     // subsample cap on support points (0 = no cap)
}

// DefaultRBFConfig mirrors LM-rbf: RBF kernel with a moderate bandwidth.
func DefaultRBFConfig() Config {
	return Config{Kernel: RBF{Gamma: 1.0}, Lambda: 1e-3, MaxAnchors: 1000}
}

// DefaultPolyConfig mirrors LM-ply: 5-degree polynomial kernel.
func DefaultPolyConfig() Config {
	return Config{Kernel: Polynomial{Degree: 5, Gamma: 1.0, Coef0: 1.0}, Lambda: 1e-3, MaxAnchors: 1000}
}

// Regressor is a fitted kernel ridge regression model:
// f(x) = Σ_i α_i k(x_i, x).
type Regressor struct {
	cfg     Config
	anchors [][]float64
	alpha   []float64
}

// Fit solves (K + λI)α = y on (a subsample of) the training set. rng is used
// only when subsampling; pass nil to keep the first MaxAnchors rows.
func Fit(X [][]float64, y []float64, cfg Config, rng *rand.Rand) (*Regressor, error) {
	if len(X) != len(y) {
		return nil, fmt.Errorf("kernel: X has %d rows but y has %d", len(X), len(y))
	}
	if cfg.Kernel == nil {
		return nil, fmt.Errorf("kernel: nil kernel")
	}
	n := len(X)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if cfg.MaxAnchors > 0 && n > cfg.MaxAnchors {
		if rng != nil {
			rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
		idx = idx[:cfg.MaxAnchors]
		n = cfg.MaxAnchors
	}
	r := &Regressor{cfg: cfg}
	if n == 0 {
		return r, nil
	}
	r.anchors = make([][]float64, n)
	ys := make([]float64, n)
	for i, j := range idx {
		r.anchors[i] = X[j]
		ys[i] = y[j]
	}
	// Build K + λI. Rows are filled in parallel: row i computes the upper
	// triangle K[i][j≥i] and mirrors into K[j][i]. Every element is written
	// exactly once (writes are element-disjoint across rows) and each value
	// depends only on its own Eval call, so the matrix is identical at any
	// worker count.
	K := make([]float64, n*n)
	parallel.For(n, func(i int) {
		for j := i; j < n; j++ {
			v := cfg.Kernel.Eval(r.anchors[i], r.anchors[j])
			K[i*n+j] = v
			K[j*n+i] = v
		}
		K[i*n+i] += cfg.Lambda
	})
	alpha, err := solveCholesky(K, ys, n)
	if err != nil {
		return nil, err
	}
	r.alpha = alpha
	return r, nil
}

// Predict returns f(x) = Σ α_i k(anchor_i, x).
func (r *Regressor) Predict(x []float64) float64 {
	var s float64
	for i, a := range r.anchors {
		s += r.alpha[i] * r.cfg.Kernel.Eval(a, x)
	}
	return s
}

// NumAnchors returns the number of support points retained.
func (r *Regressor) NumAnchors() int { return len(r.anchors) }

// solveCholesky solves the symmetric positive-definite system A x = b where A
// is n×n row-major. A is destroyed.
func solveCholesky(A, b []float64, n int) ([]float64, error) {
	// Factor A = L·Lᵀ in place (lower triangle).
	for j := 0; j < n; j++ {
		d := A[j*n+j]
		for k := 0; k < j; k++ {
			d -= A[j*n+k] * A[j*n+k]
		}
		if d <= 0 {
			return nil, fmt.Errorf("kernel: matrix not positive definite at pivot %d (%g); increase Lambda", j, d)
		}
		ljj := math.Sqrt(d)
		A[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			s := A[i*n+j]
			for k := 0; k < j; k++ {
				s -= A[i*n+k] * A[j*n+k]
			}
			A[i*n+j] = s / ljj
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= A[i*n+k] * y[k]
		}
		y[i] = s / A[i*n+i]
	}
	// Back substitution Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= A[k*n+i] * x[k]
		}
		x[i] = s / A[i*n+i]
	}
	return x, nil
}
