package kernel

import (
	"math"
	"math/rand"
	"testing"
)

func TestRBFKernelIdentities(t *testing.T) {
	k := RBF{Gamma: 0.5}
	x := []float64{1, 2, 3}
	if got := k.Eval(x, x); math.Abs(got-1) > 1e-12 {
		t.Errorf("k(x,x) = %v, want 1", got)
	}
	y := []float64{4, 5, 6}
	if k.Eval(x, y) != k.Eval(y, x) {
		t.Error("RBF not symmetric")
	}
	if v := k.Eval(x, y); v <= 0 || v >= 1 {
		t.Errorf("RBF value out of (0,1): %v", v)
	}
}

func TestPolynomialKernel(t *testing.T) {
	k := Polynomial{Degree: 2, Gamma: 1, Coef0: 0}
	x := []float64{1, 2}
	y := []float64{3, 4}
	// (1*3 + 2*4)^2 = 121.
	if got := k.Eval(x, y); math.Abs(got-121) > 1e-12 {
		t.Errorf("poly = %v, want 121", got)
	}
	if k.Eval(x, y) != k.Eval(y, x) {
		t.Error("poly not symmetric")
	}
}

func TestCholeskySolveKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 9]  →  x = [1.5, 2].
	A := []float64{4, 2, 2, 3}
	b := []float64{10, 9}
	x, err := solveCholesky(A, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.5) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Errorf("x = %v, want [1.5 2]", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	A := []float64{1, 2, 2, 1} // eigenvalues 3 and -1
	if _, err := solveCholesky(A, []float64{1, 1}, 2); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestKRRInterpolatesWithTinyLambda(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{1, 3, 2, 5}
	r, err := Fit(X, y, Config{Kernel: RBF{Gamma: 2}, Lambda: 1e-10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if got := r.Predict(X[i]); math.Abs(got-y[i]) > 1e-3 {
			t.Errorf("f(%v) = %v, want %v", X[i], got, y[i])
		}
	}
}

func TestKRRGeneralizesSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(x float64) float64 { return math.Sin(3 * x) }
	var X [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		x := rng.Float64() * 2
		X = append(X, []float64{x})
		y = append(y, f(x))
	}
	r, err := Fit(X, y, Config{Kernel: RBF{Gamma: 4}, Lambda: 1e-6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := 0; i < 50; i++ {
		x := rng.Float64() * 2
		d := r.Predict([]float64{x}) - f(x)
		mse += d * d
	}
	if mse/50 > 1e-3 {
		t.Errorf("test MSE = %v", mse/50)
	}
}

func TestKRRPolynomialFitsQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x := rng.Float64()*2 - 1
		X = append(X, []float64{x})
		y = append(y, x*x)
	}
	r, err := Fit(X, y, Config{Kernel: Polynomial{Degree: 2, Gamma: 1, Coef0: 1}, Lambda: 1e-8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-0.5, 0, 0.5} {
		if got := r.Predict([]float64{x}); math.Abs(got-x*x) > 1e-3 {
			t.Errorf("f(%v) = %v, want %v", x, got, x*x)
		}
	}
}

func TestKRRSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		X = append(X, []float64{x})
		y = append(y, 2*x)
	}
	r, err := Fit(X, y, Config{Kernel: RBF{Gamma: 1}, Lambda: 1e-4, MaxAnchors: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumAnchors() != 100 {
		t.Errorf("NumAnchors = %d, want 100", r.NumAnchors())
	}
	if got := r.Predict([]float64{0.5}); math.Abs(got-1) > 0.1 {
		t.Errorf("f(0.5) = %v, want ~1", got)
	}
}

func TestKRREmptyData(t *testing.T) {
	r, err := Fit(nil, nil, DefaultRBFConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict([]float64{1}); got != 0 {
		t.Errorf("empty model predicts %v", got)
	}
}

func TestFitLengthMismatch(t *testing.T) {
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, DefaultRBFConfig(), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestFitNilKernel(t *testing.T) {
	if _, err := Fit([][]float64{{1}}, []float64{1}, Config{Lambda: 1}, nil); err == nil {
		t.Fatal("expected error")
	}
}
