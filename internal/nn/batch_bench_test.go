package nn

import (
	"math/rand"
	"testing"
)

// Paper Table 3 shape: 3 hidden FC-128 layers, 18 query features, 16 model
// outputs, minibatch 32.
func benchNet() (*Network, [][]float64, [][]float64) {
	rng := rand.New(rand.NewSource(1))
	n := MLP(18, 128, 3, 16, rng)
	xs, ys := randBatch(rng, 32, 18, 16)
	return n, xs, ys
}

// BenchmarkTrainStepBatched is the optimized path: sharded batched
// forward/loss/backward with the scratch arena and (on AVX2 hardware) the
// assembly Dense kernels. Steady state must report 0 allocs/op.
func BenchmarkTrainStepBatched(b *testing.B) {
	n, xs, ys := benchNet()
	opt := NewAdam(0.001)
	if _, err := n.TrainBatch(xs, ys, MSE{}, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.TrainBatch(xs, ys, MSE{}, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStepReference is the frozen seed implementation the speedup
// ratio is measured against.
func BenchmarkTrainStepReference(b *testing.B) {
	n, xs, ys := benchNet()
	opt := NewAdam(0.001)
	ReferenceTrainBatch(n, xs, ys, MSE{}, opt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReferenceTrainBatch(n, xs, ys, MSE{}, opt)
	}
}

// BenchmarkBatchForward measures batched inference at the same shape.
func BenchmarkBatchForward(b *testing.B) {
	n, xs, _ := benchNet()
	x := NewMat(len(xs), len(xs[0]))
	x.CopyFromRows(xs)
	n.BatchForward(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.BatchForward(x)
	}
}

// BenchmarkForwardReference is per-sample inference via the frozen reference.
func BenchmarkForwardReference(b *testing.B) {
	n, xs, _ := benchNet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			ReferenceForward(n, x)
		}
	}
}
